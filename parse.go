package monomi

import (
	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// parseSQL parses one SELECT statement.
func parseSQL(sql string) (*ast.Query, error) { return sqlparser.Parse(sql) }

// ValidateSQL reports whether the dialect accepts the statement, returning
// the parse error if not. Useful for pre-flighting workload files.
func ValidateSQL(sql string) error {
	_, err := sqlparser.Parse(sql)
	return err
}
