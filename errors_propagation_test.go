package monomi

// Regression tests for the error-wrapping contract the wraperr analyzer
// (internal/lint) enforces statically: the typed sentinels the storage and
// transport layers export must survive every fmt.Errorf wrap between where
// they originate and where the application finally calls errors.Is/As —
// a single %v anywhere in the chain would silently break these matches.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/transport"
)

// TestCorruptSegmentSurvivesClientStack corrupts a disk-backed encrypted
// segment under a live System and checks the failure surfaces at the top
// of the client stack — System.Query, through engine, server, and client
// wrapping — still errors.Is-matchable as storage.ErrCorruptSegment.
func TestCorruptSegmentSurvivesClientStack(t *testing.T) {
	db := NewDatabase()
	db.MustCreateTable("orders",
		Col("o_id", Int), Col("o_cust", String), Col("o_total", Int))
	for i := 0; i < 300; i++ {
		db.MustInsert("orders", i, fmt.Sprintf("cust-%d", i%7), 10+i%90)
	}
	opts := DefaultOptions()
	opts.PaillierBits = 256
	opts.Backend = "disk"
	opts.DataDir = t.TempDir()
	opts.PageBytes = 512
	opts.BlockCacheBytes = 1024 // ~2 pages: reads after corruption hit disk
	sys, err := Encrypt(db, Workload{
		"totals": "SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if _, err := sys.Query("SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust"); err != nil {
		t.Fatalf("pre-corruption query: %v", err)
	}

	// Smash a 64-byte run in the middle of every encrypted segment: far
	// past the header and metadata pages, inside scanned data pages.
	segs, err := filepath.Glob(filepath.Join(opts.DataDir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in %s (err=%v)", opts.DataDir, err)
	}
	for _, seg := range segs {
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 64)
		for i := range junk {
			junk[i] = 0xff
		}
		if _, err := f.WriteAt(junk, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	_, err = sys.Query("SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust")
	if err == nil {
		t.Fatal("query over corrupted segments succeeded")
	}
	if !errors.Is(err, storage.ErrCorruptSegment) {
		t.Fatalf("top-level error no longer wraps ErrCorruptSegment: %v", err)
	}
	var se *storage.SegmentError
	if !errors.As(err, &se) {
		t.Fatalf("top-level error lost the *SegmentError detail: %v", err)
	}
}

// TestRejectErrorSurvivesClientStack drives a real admission-control
// rejection through the network client and checks it stays matchable —
// by monomi.IsRejected and by errors.As — after every layer's wrapping.
func TestRejectErrorSurvivesClientStack(t *testing.T) {
	sys := exampleSystem(t)
	defer sys.Close()
	srv, err := sys.Serve("127.0.0.1:0", ServeConfig{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first, err := sys.ConnectRemote(srv.Addr().String())
	if err != nil {
		t.Fatalf("first connection: %v", err)
	}
	defer first.Close()

	_, err = sys.ConnectRemote(srv.Addr().String())
	if err == nil {
		t.Fatal("connection beyond MaxConns accepted")
	}
	if !IsRejected(err) {
		t.Fatalf("rejection not IsRejected-matchable: %v", err)
	}
	var re *transport.RejectError
	if !errors.As(err, &re) || re.Code != transport.CodeConnRejected {
		t.Fatalf("rejection lost its typed code: %v", err)
	}

	// The client layers wrap remote failures with %w ("client: remote x:
	// %w"); the sentinel must survive arbitrary depth of that discipline.
	wrapped := fmt.Errorf("client: remote scan: %w", fmt.Errorf("session: %w", err))
	if !IsRejected(wrapped) {
		t.Fatalf("IsRejected lost through %%w wrapping: %v", wrapped)
	}
}
