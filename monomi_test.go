package monomi

import (
	"fmt"
	"strings"
	"testing"
)

func exampleDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	db.MustCreateTable("orders",
		Col("o_id", Int), Col("o_cust", String), Col("o_total", Int), Col("o_date", Date))
	rows := []struct {
		id    int
		cust  string
		total int
		date  string
	}{
		{1, "alice", 120, "1995-01-15"},
		{2, "bob", 80, "1995-06-01"},
		{3, "alice", 300, "1996-02-20"},
		{4, "carol", 50, "1996-07-04"},
	}
	for _, r := range rows {
		db.MustInsert("orders", r.id, r.cust, r.total, r.date)
	}
	return db
}

func exampleSystem(t testing.TB) *System {
	t.Helper()
	opts := DefaultOptions()
	opts.PaillierBits = 256 // fast tests
	sys, err := Encrypt(exampleDB(t), Workload{
		"totals": "SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust",
		"range":  "SELECT o_id FROM orders WHERE o_total > 100",
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeQueryMatchesPlaintext(t *testing.T) {
	sys := exampleSystem(t)
	sql := "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust ORDER BY t DESC"
	encRes, err := sys.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.QueryPlaintext(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(encRes.Data) != len(plain.Data) {
		t.Fatalf("rows: %d vs %d", len(encRes.Data), len(plain.Data))
	}
	for i := range plain.Data {
		for j := range plain.Data[i] {
			if encRes.Data[i][j] != plain.Data[i][j] {
				t.Errorf("row %d col %d: %v vs %v", i, j, encRes.Data[i][j], plain.Data[i][j])
			}
		}
	}
	if encRes.Data[0][0] != "alice" || encRes.Data[0][1] != int64(420) {
		t.Errorf("top row = %v", encRes.Data[0])
	}
	if encRes.PlanText == "" || encRes.Total() <= 0 {
		t.Error("timings and plan text should be populated")
	}
}

func TestFacadeDesignCensus(t *testing.T) {
	sys := exampleSystem(t)
	census := sys.Design()
	if len(census) == 0 {
		t.Fatal("design should not be empty")
	}
	schemes := map[string]bool{}
	for _, c := range census {
		schemes[c.Scheme] = true
		if c.Table != "orders" {
			t.Errorf("unexpected table %q", c.Table)
		}
	}
	// At four rows the cost model may rightly skip HOM (client-side
	// folding is cheaper); DET and OPE are unconditional here.
	for _, want := range []string{"DET", "OPE"} {
		if !schemes[want] {
			t.Errorf("design should contain a %s item (workload needs it)", want)
		}
	}
	vars, cons, plain, encBytes := sys.DesignStats()
	if plain <= 0 || encBytes <= plain {
		t.Errorf("sizes: plain=%d enc=%d", plain, encBytes)
	}
	_ = vars
	_ = cons
}

func TestFacadeErrors(t *testing.T) {
	db := exampleDB(t)
	if _, err := Encrypt(db, Workload{}, Options{}); err == nil {
		t.Error("missing master key should fail")
	}
	if err := db.Insert("missing", 1); err == nil {
		t.Error("unknown table should fail")
	}
	if err := db.Insert("orders", 1); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := db.Insert("orders", "x", "y", "z", "w"); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := ValidateSQL("SELECT FROM"); err == nil {
		t.Error("bad SQL should fail validation")
	}
	if err := ValidateSQL("SELECT 1 FROM t"); err != nil {
		t.Errorf("good SQL rejected: %v", err)
	}
	sys := exampleSystem(t)
	if _, err := sys.Query("SELECT nope FROM orders"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, ok := TPCHQuery(13); ok {
		t.Error("Q13 is unsupported")
	}
	if q, ok := TPCHQuery(1); !ok || !strings.Contains(q, "lineitem") {
		t.Error("Q1 text expected")
	}
	if len(TPCHQueries()) != 19 {
		t.Error("19 supported queries")
	}
}

func TestFacadeTPCH(t *testing.T) {
	db, err := TPCH(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.PaillierBits = 256
	sys, err := Encrypt(db, Workload{"q6": mustTPCH(6)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	encRes, err := sys.Query(mustTPCH(6))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.QueryPlaintext(mustTPCH(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(encRes.Data) != 1 || encRes.Data[0][0] != plain.Data[0][0] {
		t.Errorf("Q6: %v vs %v", encRes.Data, plain.Data)
	}
}

func mustTPCH(n int) string {
	q, ok := TPCHQuery(n)
	if !ok {
		panic("unsupported query")
	}
	return q
}

// TestFacadeStats checks the observability surface: a selective query over
// an indexed system charges IndexLookups and RowsSkippedByIndex, interning
// never inflates storage (ratio >= 1), and SetIndexes(false) stops the
// charging without changing results.
func TestFacadeStats(t *testing.T) {
	db := NewDatabase()
	db.MustCreateTable("ev", Col("e_id", Int), Col("e_cat", String))
	for i := 0; i < 200; i++ {
		cat := "common"
		if i == 77 {
			cat = "rare"
		}
		db.MustInsert("ev", i, cat)
	}
	opts := DefaultOptions()
	opts.PaillierBits = 256
	sys, err := Encrypt(db, Workload{
		"probe": `SELECT COUNT(*) FROM ev WHERE e_cat = 'rare'`,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if st := sys.Stats(); st.IndexLookups != 0 {
		t.Errorf("fresh system already charged %d lookups", st.IndexLookups)
	}
	r, err := sys.Query(`SELECT COUNT(*) FROM ev WHERE e_cat = 'rare'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 1 || r.Data[0][0] != int64(1) {
		t.Fatalf("count = %v", r.Data)
	}
	st := sys.Stats()
	if st.IndexLookups == 0 {
		t.Error("selective equality did not probe the index")
	}
	if st.RowsSkippedByIndex != 199 {
		t.Errorf("RowsSkippedByIndex = %d, want 199", st.RowsSkippedByIndex)
	}
	if st.EncBytes <= 0 || st.EncRawBytes < st.EncBytes {
		t.Errorf("interning accounting: raw %d, stored %d", st.EncRawBytes, st.EncBytes)
	}
	if st.InternRatio() < 1 {
		t.Errorf("InternRatio = %g, want >= 1", st.InternRatio())
	}

	sys.SetIndexes(false)
	if _, err := sys.Query(`SELECT COUNT(*) FROM ev WHERE e_cat = 'rare'`); err != nil {
		t.Fatal(err)
	}
	if again := sys.Stats(); again.IndexLookups != st.IndexLookups {
		t.Errorf("lookups moved with indexes off: %d -> %d", st.IndexLookups, again.IndexLookups)
	}
}

// TestFacadeStatsIndexedInParams pins the index-served IN fast path end to
// end: a prepared `IN (:a, :b)` statement runs warm through the plan cache,
// which hoists the encrypted literals into :cpN wire params — and the DET
// hash index must still probe once per IN element on every warm execution,
// in-process and over the transport.
func TestFacadeStatsIndexedInParams(t *testing.T) {
	db := NewDatabase()
	db.MustCreateTable("ev", Col("e_id", Int), Col("e_cat", String))
	rare := []string{"emerald", "ruby", "topaz"}
	for i := 0; i < 300; i++ {
		cat := "common"
		if i%50 == 0 {
			cat = rare[(i/50)%len(rare)]
		}
		db.MustInsert("ev", i, cat)
	}
	opts := DefaultOptions()
	opts.PaillierBits = 256
	sys, err := Encrypt(db, Workload{
		"probe": `SELECT COUNT(*) FROM ev WHERE e_cat IN ('emerald', 'ruby')`,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv, err := sys.Serve("127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rem, err := sys.ConnectRemote(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rem.Close()

	bindings := [][2]string{{"emerald", "ruby"}, {"ruby", "topaz"}, {"topaz", "emerald"}}
	for _, d := range []struct {
		name string
		s    *System
	}{{"inproc", sys}, {"wire", rem}} {
		stmt, err := d.s.Prepare(`SELECT e_id FROM ev WHERE e_cat IN (:a, :b) ORDER BY e_id`)
		if err != nil {
			t.Fatalf("%s prepare: %v", d.name, err)
		}
		d.s.ResetPlanCache()
		prev := sys.Stats().IndexLookups
		for i, b := range bindings {
			res, err := stmt.Query(map[string]any{"a": b[0], "b": b[1]})
			if err != nil {
				t.Fatalf("%s exec %d: %v", d.name, i, err)
			}
			plain, err := sys.QueryPlaintext(fmt.Sprintf(
				`SELECT e_id FROM ev WHERE e_cat IN ('%s', '%s') ORDER BY e_id`, b[0], b[1]))
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalRows(t, res.Data, true)
			want := canonicalRows(t, plain.Data, true)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("%s exec %d diverges from plaintext:\n%v\nvs\n%v", d.name, i, got, want)
			}
			if i > 0 && !res.PlanCacheHit {
				t.Errorf("%s exec %d: warm IN execution missed the plan cache", d.name, i)
			}
			st := sys.Stats()
			if st.IndexLookups < prev+2 {
				t.Errorf("%s exec %d: IndexLookups %d -> %d, want one probe per IN element",
					d.name, i, prev, st.IndexLookups)
			}
			prev = st.IndexLookups
		}
		stmt.Close()
	}
}
