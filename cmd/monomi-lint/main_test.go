package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// buildOnce compiles the monomi-lint binary a single time per test run.
var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "monomi-lint")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "monomi-lint")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/monomi-lint")
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building monomi-lint: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// runLint executes the binary and returns stdout, stderr, and exit code.
func runLint(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running monomi-lint: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

// TestVetHandshake checks the two probes cmd/go sends a vettool before
// trusting it: -V=full must print a versioned identity, -flags a JSON
// flag description.
func TestVetHandshake(t *testing.T) {
	stdout, _, code := runLint(t, moduleRoot(t), "-V=full")
	if code != 0 || !strings.HasPrefix(stdout, "monomi-lint version ") || strings.Contains(stdout, "devel") {
		t.Errorf("-V=full handshake: exit %d, output %q", code, stdout)
	}
	stdout, _, code = runLint(t, moduleRoot(t), "-flags")
	if code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal([]byte(stdout), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, stdout)
	}
	if len(flags) == 0 {
		t.Error("-flags reported no flags")
	}
}

// TestCleanTreeJSON runs the suite over the whole repository with -json:
// the tree must be clean (exit 0) and the output a well-formed, empty
// JSON array — never null.
func TestCleanTreeJSON(t *testing.T) {
	stdout, stderr, code := runLint(t, moduleRoot(t), "-json", "./...")
	if code != 0 {
		t.Fatalf("monomi-lint -json ./... exited %d\nstderr: %s\nstdout: %s", code, stderr, stdout)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostics array: %v\n%s", err, stdout)
	}
	if diags == nil {
		t.Error("-json emitted null instead of []")
	}
	if len(diags) != 0 {
		t.Errorf("clean tree reported %d findings", len(diags))
	}
}

// TestGoVetVettool drives the binary through the real cmd/go protocol:
// `go vet -vettool=...` hands it a vet.cfg per package (including
// test-only variants it must skip) and expects the facts file written.
func TestGoVetVettool(t *testing.T) {
	cmd := exec.Command("go", "vet", "-vettool="+binary(t),
		"./internal/packing", "./internal/storage/...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestVetConfigViolation feeds the binary a hand-built vet.cfg that
// compiles the trustflow violations fixture at an untrusted import path:
// the run must report findings (exit 1) and still write the facts file
// cmd/go caches on.
func TestVetConfigViolation(t *testing.T) {
	root := moduleRoot(t)
	exports, err := lint.ModuleExports(root)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	fixtureDir := filepath.Join(root, "internal/lint/testdata/trustflow/violations")
	cfg := lint.VetConfig{
		ID:          "repro/internal/engine/lintfixture",
		Compiler:    "gc",
		Dir:         fixtureDir,
		ImportPath:  "repro/internal/engine/lintfixture",
		GoFiles:     []string{filepath.Join(fixtureDir, "fixture.go")},
		PackageFile: exports,
		VetxOutput:  filepath.Join(tmp, "fixture.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(tmp, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	_, stderr, code := runLint(t, root, cfgPath)
	if code != 1 {
		t.Fatalf("planted violation: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[trustflow]") {
		t.Errorf("stderr lacks trustflow findings:\n%s", stderr)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}
