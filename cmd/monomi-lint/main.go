// Command monomi-lint is the MONOMI static-analysis multichecker: it runs
// the internal/lint suite (trustflow, wraperr, atomicstats, lockcrypt)
// over the repository and fails when an invariant of the paper's trust
// model or of the repo's concurrency/error contracts is violated.
//
// Standalone (package patterns, as in CI):
//
//	go run ./cmd/monomi-lint ./...
//	go run ./cmd/monomi-lint -json ./internal/...
//	go run ./cmd/monomi-lint -run trustflow,wraperr ./internal/server
//
// As a go vet tool (cmd/go drives one invocation per package):
//
//	go build -o /tmp/monomi-lint ./cmd/monomi-lint
//	go vet -vettool=/tmp/monomi-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage/load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// version participates in the go vet tool-ID handshake (`monomi-lint
// -V=full` must print "<name> version <non-devel version>"); bump it when
// analyzer semantics change so go vet's result cache invalidates.
const version = "1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("monomi-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	runList := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	printVersion := fs.String("V", "", "print version ('full' for the go vet handshake)")
	printFlags := fs.Bool("flags", false, "print the flag set as JSON (go vet handshake)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: monomi-lint [-json] [-run a,b] <packages|vet.cfg>\n\nAnalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// go vet handshakes: tool identity, then supported flags.
	if *printVersion != "" {
		fmt.Printf("monomi-lint version %s\n", version)
		return 0
	}
	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		flags := []jsonFlag{
			{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
			{Name: "run", Bool: false, Usage: "comma-separated analyzer subset"},
		}
		out, _ := json.Marshal(flags)
		fmt.Println(string(out))
		return 0
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	// go vet mode: a single argument naming a vet.cfg file.
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVetConfig(fs.Arg(0), analyzers, *jsonOut)
	}
	return runPatterns(fs.Args(), analyzers, *jsonOut)
}

// selectAnalyzers resolves a -run list ("" means the full suite).
func selectAnalyzers(runList string) ([]*lint.Analyzer, error) {
	if runList == "" {
		return lint.All, nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("monomi-lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runPatterns is standalone mode: load every matching package of the
// module rooted at the working directory and analyze each.
func runPatterns(patterns []string, analyzers []*lint.Analyzer, jsonOut bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := lint.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Analyze(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		all = append(all, diags...)
	}
	return report(all, jsonOut)
}

// runVetConfig is go vet mode: analyze the one package a vet.cfg
// describes. Dependency passes (VetxOnly) succeed immediately — the suite
// computes no cross-package facts.
func runVetConfig(cfgPath string, analyzers []*lint.Analyzer, jsonOut bool) int {
	pkg, cfg, err := lint.LoadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if cfg != nil && cfg.VetxOutput != "" {
		// cmd/go caches the tool's per-package output via this file; an
		// empty facts file is valid for a fact-free suite.
		_ = os.WriteFile(cfg.VetxOutput, []byte("monomi-lint: no facts\n"), 0o666)
	}
	if pkg == nil {
		return 0
	}
	diags, err := lint.Analyze(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	return report(diags, jsonOut)
}

// report prints diagnostics (plain to stderr in the familiar
// file:line:col form, or JSON to stdout) and returns the exit status.
func report(diags []lint.Diagnostic, jsonOut bool) int {
	if jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // render as [], never null
		}
		out, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Println(string(out))
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "monomi-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
