// tpchgen generates the TPC-H substrate's tables and either summarizes them
// or dumps one table as CSV.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 = 6M lineitem rows)")
	seed := flag.Int64("seed", 1, "generator seed")
	dump := flag.String("dump", "", "table to dump as CSV (empty = summary)")
	flag.Parse()

	cat, err := tpch.Generate(tpch.ScaleFactor(*sf), *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *dump == "" {
		fmt.Printf("%-10s %10s %14s\n", "table", "rows", "bytes")
		var rows, bytes int64
		for _, name := range cat.Names() {
			t, _ := cat.Table(name)
			fmt.Printf("%-10s %10d %14d\n", name, t.NumRows(), t.Bytes)
			rows += int64(t.NumRows())
			bytes += t.Bytes
		}
		fmt.Printf("%-10s %10d %14d\n", "total", rows, bytes)
		return
	}

	t, err := cat.Table(*dump)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, c := range t.Schema.Cols {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c.Name)
	}
	fmt.Fprintln(w)
	allRows, _, err := t.ScanRows(0, t.NumRows())
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range allRows {
		for i, v := range row {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprint(w, v.String())
		}
		fmt.Fprintln(w)
	}
}
