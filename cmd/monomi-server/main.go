// monomi-server runs the untrusted half of the MONOMI split as a
// standalone network service: it generates the TPC-H substrate at the
// given scale factor, re-derives the encrypted design from the same master
// key and workload the trusted side uses (the design is deterministic, so
// both ends agree without ever shipping keys), encrypts the database, and
// serves transport sessions over TCP (optionally TLS).
//
// Remote clients connect with System.ConnectRemote after building their
// own System from the identical -masterkey / -sf / -seed / -paillier
// configuration. Admission control is -maxconns / -maxinflight /
// -querywait; per-session accounting is logged on shutdown.
//
//	monomi-server -addr :7077 -sf 0.002 -parallelism 4 -batchsize 64
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	monomi "repro"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "data generator seed")
	masterKey := flag.String("masterkey", "monomi-default-master-key", "master key (clients must use the same)")
	bits := flag.Int("paillier", 512, "Paillier modulus bits (paper: 1024)")
	par := flag.Int("parallelism", 0, "sharded-execution workers (0 = GOMAXPROCS)")
	batch := flag.Int("batchsize", 64, "streamed-execution batch size (0 = materialized)")
	maxConns := flag.Int("maxconns", 64, "concurrent session cap (0 = unlimited)")
	maxInFlight := flag.Int("maxinflight", 16, "concurrent query cap (0 = unlimited)")
	queryWait := flag.Duration("querywait", 0, "how long a query may wait for an in-flight slot (0 = fail fast)")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file (with -tls-key; empty = plain TCP)")
	tlsKey := flag.String("tls-key", "", "TLS private key file")
	backend := flag.String("backend", "mem", "storage backend for the encrypted tables: mem or disk")
	dataDir := flag.String("data", "", "segment-file directory for -backend disk")
	flag.Parse()

	sys, err := buildSystem(*sf, *seed, *masterKey, *bits, *par, *batch, *backend, *dataDir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := monomi.ServeConfig{
		MaxConns:    *maxConns,
		MaxInFlight: *maxInFlight,
		QueryWait:   *queryWait,
	}
	if *tlsCert != "" || *tlsKey != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			log.Fatalf("loading TLS keypair: %v", err)
		}
		cfg.TLS = &tls.Config{Certificates: []tls.Certificate{cert}}
	}

	srv, err := sys.Serve(*addr, cfg)
	if err != nil {
		log.Fatal(err)
	}
	scheme := "tcp"
	if cfg.TLS != nil {
		scheme = "tls"
	}
	log.Printf("monomi-server listening on %s (%s), maxconns=%d maxinflight=%d querywait=%v",
		srv.Addr(), scheme, *maxConns, *maxInFlight, *queryWait)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down...")
	start := time.Now()
	srv.Close()
	defer sys.Close()
	st := srv.Stats()
	log.Printf("drained in %v: %d sessions (%d rejected), %d queries (%d rejected, %d cancelled, %d errors)",
		time.Since(start).Round(time.Millisecond),
		st.Accepted, st.RejectedConns, st.Queries, st.RejectedQs, st.Cancelled, st.Errors)
}

// buildSystem stands up the encrypted deployment the server hosts. The
// workload is every supported TPC-H query, so the design covers whatever
// the remote trusted side plans.
func buildSystem(sf float64, seed int64, masterKey string, bits, par, batch int, backend, dataDir string) (*monomi.System, error) {
	log.Printf("generating TPC-H at SF %g (seed %d) and encrypting (paillier %d bits)...", sf, seed, bits)
	db, err := monomi.TPCH(sf, seed)
	if err != nil {
		return nil, err
	}
	workload := monomi.Workload{}
	for _, n := range monomi.TPCHQueries() {
		q, _ := monomi.TPCHQuery(n)
		workload[fmt.Sprintf("q%d", n)] = q
	}
	opts := monomi.DefaultOptions()
	opts.MasterKey = []byte(masterKey)
	opts.PaillierBits = bits
	opts.Parallelism = par
	opts.BatchSize = batch
	opts.Backend = backend
	opts.DataDir = dataDir
	sys, err := monomi.Encrypt(db, workload, opts)
	if err != nil {
		return nil, err
	}
	_, _, plainBytes, encBytes := sys.DesignStats()
	log.Printf("encrypted: %d plaintext bytes -> %d encrypted bytes", plainBytes, encBytes)
	return sys, nil
}
