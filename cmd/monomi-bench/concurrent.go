package main

// The concurrent scenario (-exp concurrent) measures the multi-client
// server over real loopback TCP: one served deployment, N remote trusted
// clients issuing a mix of query shapes concurrently, reporting throughput
// and wall-clock latency percentiles per client count. This is the
// experiment the transport layer exists for — in-process execution can
// only ever serve one trusted library at a time; a served deployment
// multiplexes sessions onto the shared engine under admission control.

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	monomi "repro"
)

// concurrentScenario builds ev(e_id, e_grp, e_val) with `rows` rows,
// serves it on loopback, and sweeps client counts up to maxClients.
func concurrentScenario(rows, maxClients, par, batch int, sink *jsonSink) error {
	if batch <= 0 {
		batch = 64
	}
	if maxClients <= 0 {
		maxClients = 8
	}
	fmt.Fprintf(os.Stderr, "concurrent scenario: encrypting %d rows (batch %d, parallelism %d)...\n",
		rows, batch, par)
	db := monomi.NewDatabase()
	db.MustCreateTable("ev",
		monomi.Col("e_id", monomi.Int), monomi.Col("e_grp", monomi.Int), monomi.Col("e_val", monomi.Int))
	for i := 0; i < rows; i++ {
		db.MustInsert("ev", i, i%200, i%1000)
	}
	shapes := []string{
		`SELECT e_id, e_val FROM ev WHERE e_val >= 900`,
		`SELECT e_grp, SUM(e_val), COUNT(*) FROM ev GROUP BY e_grp`,
		`SELECT DISTINCT e_grp FROM ev`,
	}
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.Parallelism = par
	opts.BatchSize = batch
	opts.StreamWire = true
	workload := monomi.Workload{}
	for i, q := range shapes {
		workload[fmt.Sprintf("q%d", i)] = q
	}
	sys, err := monomi.Encrypt(db, workload, opts)
	if err != nil {
		return err
	}
	srv, err := sys.Serve("127.0.0.1:0", monomi.ServeConfig{})
	if err != nil {
		return err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// Warm plans and decrypt caches once through the wire.
	warm, err := sys.ConnectRemote(addr)
	if err != nil {
		return err
	}
	for _, q := range shapes {
		if _, err := warm.Query(q); err != nil {
			warm.Close()
			return err
		}
	}
	warm.Close()

	const queriesPerClient = 12
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "clients", "queries", "qps", "p50(ms)", "p99(ms)")
	for n := 1; n <= maxClients; n *= 2 {
		qps, p50, p99, err := runConcurrent(sys, addr, shapes, n, queriesPerClient)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10d %12.1f %12.2f %12.2f\n",
			n, n*queriesPerClient, qps, p50, p99)
		sink.add(map[string]any{
			"exp": "concurrent", "clients": n, "queries": n * queriesPerClient,
			"qps": qps, "p50_ms": p50, "p99_ms": p99,
		})
	}
	return nil
}

// runConcurrent drives n remote clients issuing perClient queries each and
// returns throughput plus wall-latency percentiles in milliseconds.
func runConcurrent(sys *monomi.System, addr string, shapes []string, n, perClient int) (qps, p50, p99 float64, err error) {
	clients := make([]*monomi.System, n)
	for i := range clients {
		clients[i], err = sys.ConnectRemote(addr)
		if err != nil {
			return 0, 0, 0, err
		}
		defer clients[i].Close()
	}
	latencies := make([]time.Duration, n*perClient)
	errs := make(chan error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *monomi.System) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				q := shapes[(id+r)%len(shapes)]
				t0 := time.Now()
				if _, qerr := c.Query(q); qerr != nil {
					errs <- fmt.Errorf("client %d: %w", id, qerr)
					return
				}
				latencies[id*perClient+r] = time.Since(t0)
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for e := range errs {
		return 0, 0, 0, e
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	return float64(n*perClient) / elapsed.Seconds(), pct(0.50), pct(0.99), nil
}
