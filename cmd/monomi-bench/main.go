// monomi-bench reruns the paper's evaluation (§8): every figure and table
// over the TPC-H substrate.
//
// Usage:
//
//	monomi-bench -exp fig4            # Figure 4: per-query slowdowns
//	monomi-bench -exp fig5            # Figure 5/6: cumulative techniques
//	monomi-bench -exp fig7            # Figure 7: client CPU ratio
//	monomi-bench -exp fig8            # Figure 8: designer input sensitivity
//	monomi-bench -exp fig9            # Figure 9: space budgets
//	monomi-bench -exp table2          # Table 2: server space
//	monomi-bench -exp table3          # Table 3: security census
//	monomi-bench -exp join            # streamed hash-join probe scenario
//	monomi-bench -exp stream          # grouped + DISTINCT streamed-wire scenario
//	monomi-bench -exp concurrent      # multi-client served deployment over loopback TCP
//	monomi-bench -exp repeat          # warm-vs-cold repeated-query hot path
//	monomi-bench -exp index           # secondary-index selectivity sweep vs full scans
//	monomi-bench -exp backend         # mem vs disk storage backend, cold vs warm block cache
//	monomi-bench -exp all
//
// -json <file> additionally writes the index/repeat/concurrent/backend
// scenario results as a machine-readable JSON array.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/tpch"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig5|fig7|fig8|fig9|table2|table3|stats|join|stream|concurrent|repeat|index|backend|all")
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	seed := flag.Int64("seed", 1, "data generator seed")
	bits := flag.Int("paillier", 512, "Paillier modulus bits (paper: 1024)")
	maxK := flag.Int("maxk", 4, "maximum designer subset size for fig8")
	par := flag.Int("parallelism", 0, "sharded-execution workers (0 = GOMAXPROCS, 1 = sequential)")
	batch := flag.Int("batchsize", 0, "streamed-execution batch size for suite experiments (0 = materialized)")
	stream := flag.Bool("streamwire", false, "stream encrypted result batches to the client mid-scan (suite experiments)")
	joinRows := flag.Int("joinrows", 50000, "probe-side rows for the join scenario (-exp join)")
	streamRows := flag.Int("streamrows", 60000, "input rows for the grouped+DISTINCT streamed-wire scenario (-exp stream)")
	clients := flag.Int("clients", 8, "maximum concurrent remote clients for the served-deployment scenario (-exp concurrent)")
	concRows := flag.Int("concrows", 20000, "input rows for the served-deployment scenario (-exp concurrent)")
	repeatRows := flag.Int("repeatrows", 20000, "input rows for the repeated-query scenario (-exp repeat)")
	repeatIters := flag.Int("repeatiters", 30, "timed executions per mode for the repeated-query scenario (-exp repeat)")
	repeatPool := flag.Bool("paillierpool", true, "precompute Paillier randomness in a background pool (-exp repeat)")
	indexRows := flag.Int("indexrows", 200000, "table rows for the index selectivity sweep (-exp index)")
	indexIters := flag.Int("indexiters", 7, "timed executions per sweep point (-exp index)")
	backendRows := flag.Int("backendrows", 20000, "table rows for the storage-backend scenario (-exp backend)")
	backendIters := flag.Int("backenditers", 6, "timed executions per backend (-exp backend)")
	pageBytes := flag.Int("pagebytes", 4096, "disk-backend page size in bytes (-exp backend)")
	cacheBytes := flag.Int64("cachebytes", 128<<10, "disk-backend block-cache budget in bytes (-exp backend)")
	jsonPath := flag.String("json", "", "write index/repeat/concurrent results to this file as JSON")
	flag.Parse()

	sink := newJSONSink(*jsonPath)

	scale := tpch.ScaleFactor(*sf)
	needSuite := map[string]bool{"fig4": true, "fig7": true, "table2": true, "table3": true, "stats": true, "all": true}

	var suite *experiments.Suite
	if needSuite[*exp] {
		fmt.Fprintf(os.Stderr, "setting up CryptDB+Client / Execution-Greedy / MONOMI at SF %g...\n", *sf)
		var err error
		suite, err = experiments.NewSuite(scale, *seed, *bits)
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range []*experiments.Bench{suite.Monomi, suite.Greedy, suite.CryptDB} {
			b.SetParallelism(*par)
			b.SetBatchSize(*batch)
			b.SetStreamWire(*stream)
		}
	}

	run := func(name string) {
		switch name {
		case "fig4":
			fig, err := suite.Figure4()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(fig.String())
		case "fig5":
			fig, err := experiments.Figure5(scale, *seed, *bits, *par)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(fig.String())
			fmt.Println(experiments.FormatFigure6(fig.Figure6()))
		case "fig7":
			rows, err := suite.Figure7()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.FormatFigure7(rows))
		case "fig8":
			fig, err := experiments.Figure8(scale, *seed, *bits, *maxK)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(fig.String())
		case "fig9":
			fig, err := experiments.Figure9(scale, *seed, *bits, *par)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(fig.String())
		case "table2":
			fmt.Println(experiments.FormatTable2(suite.Table2()))
		case "table3":
			rows := experiments.Table3(suite.Monomi.Design.Design)
			fmt.Println(experiments.FormatTable3(rows))
			summary, _ := experiments.SecuritySummary(rows)
			fmt.Println(summary)
		case "stats":
			fmt.Println(suite.Stats().String())
		case "join":
			if err := joinScenario(*joinRows, *par, *batch); err != nil {
				log.Fatal(err)
			}
		case "stream":
			if err := streamScenario(*streamRows, *par, *batch); err != nil {
				log.Fatal(err)
			}
		case "concurrent":
			if err := concurrentScenario(*concRows, *clients, *par, *batch, sink); err != nil {
				log.Fatal(err)
			}
		case "repeat":
			if err := repeatScenario(*repeatRows, *repeatIters, *par, *batch, *repeatPool, sink); err != nil {
				log.Fatal(err)
			}
		case "index":
			if err := indexScenario(*indexRows, *indexIters, *par, *batch, sink); err != nil {
				log.Fatal(err)
			}
		case "backend":
			if err := backendScenario(*backendRows, *backendIters, *par, *batch, *pageBytes, *cacheBytes, sink); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig4", "table2", "table3", "stats", "fig7", "fig9", "fig5", "fig8"} {
			fmt.Printf("==== %s ====\n", name)
			run(name)
		}
	} else {
		run(*exp)
	}
	if err := sink.flush(); err != nil {
		log.Fatal(err)
	}
}
