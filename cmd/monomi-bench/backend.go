package main

// The backend scenario (-exp backend) measures the storage seam: the same
// encrypted aggregate workload on the in-memory backend versus the
// disk-backed paged store, with the encrypted table deliberately larger
// than the configured block cache so the disk runs pay real page reads.
// Each backend is timed cold (first execution after load: every page
// misses) and warm (steady state under cache pressure), and correctness is
// asserted per run: both backends must return identical aggregate rows.

import (
	"fmt"
	"os"
	"sort"
	"time"

	monomi "repro"
)

// backendMeasure is one backend's timing and I/O over the scenario queries.
type backendMeasure struct {
	coldMS        float64
	qps, p50, p99 float64
	pageReadsPerQ int64
	pageBytesPerQ int64
	hitRate       float64
	hotQPS        float64
	hotHitRate    float64
	hotReadsPerQ  int64
	rows          string
}

// backendScenario builds bk(b_id, b_grp, b_val, b_pad) with per-row-unique
// padding (so interning cannot shrink the table under the cache budget) and
// sweeps the same grouped aggregate over both backends.
func backendScenario(rows, iters, par, batch, pageBytes int, cacheBytes int64, sink *jsonSink) error {
	if rows < 1000 {
		rows = 1000
	}
	if iters <= 0 {
		iters = 6
	}
	fmt.Fprintf(os.Stderr, "backend scenario: encrypting %d rows twice (page %dB, cache %dB)...\n",
		rows, pageBytes, cacheBytes)

	db := monomi.NewDatabase()
	db.MustCreateTable("bk",
		monomi.Col("b_id", monomi.Int), monomi.Col("b_grp", monomi.Int),
		monomi.Col("b_val", monomi.Int), monomi.Col("b_pad", monomi.String))
	for i := 0; i < rows; i++ {
		pad := fmt.Sprintf("pad-%06d-%07d-%07d", i, i*7%1000003, i*13%999983)
		db.MustInsert("bk", i, i%16, i%997, pad)
	}
	// Two access regimes: the full-table aggregate thrashes an LRU cache
	// smaller than the table (every scan pays real reads), while the hot
	// range touches a page working set that fits, so warm executions hit.
	const sql = `SELECT b_grp, SUM(b_val), COUNT(*) FROM bk GROUP BY b_grp ORDER BY b_grp`
	hotSQL := fmt.Sprintf(`SELECT COUNT(*), SUM(b_val) FROM bk WHERE b_id < %d`, rows/40)

	build := func(backend string) (*monomi.System, func(), error) {
		opts := monomi.DefaultOptions()
		opts.PaillierBits = 256
		opts.SpaceBudget = 0
		opts.Parallelism = par
		opts.BatchSize = batch
		cleanup := func() {}
		if backend == "disk" {
			dir, err := os.MkdirTemp("", "monomi-bench-backend-")
			if err != nil {
				return nil, nil, err
			}
			cleanup = func() { os.RemoveAll(dir) }
			opts.Backend = "disk"
			opts.DataDir = dir
			opts.PageBytes = pageBytes
			opts.BlockCacheBytes = cacheBytes
		}
		sys, err := monomi.Encrypt(db, monomi.Workload{"agg": sql, "hot": hotSQL}, opts)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return sys, cleanup, nil
	}

	measure := func(sys *monomi.System) (backendMeasure, error) {
		st0 := sys.Stats()
		t0 := time.Now()
		r, err := sys.Query(sql)
		if err != nil {
			return backendMeasure{}, err
		}
		cold := time.Since(t0)
		stCold := sys.Stats()
		latencies := make([]time.Duration, iters)
		start := time.Now()
		for i := 0; i < iters; i++ {
			t1 := time.Now()
			if _, err := sys.Query(sql); err != nil {
				return backendMeasure{}, err
			}
			latencies[i] = time.Since(t1)
		}
		elapsed := time.Since(start)
		stWarm := sys.Stats()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			return float64(latencies[int(p*float64(len(latencies)-1))].Microseconds()) / 1000
		}
		hitRate := func(a, b monomi.Stats) float64 {
			dh := b.CacheHits - a.CacheHits
			dm := b.CacheMisses - a.CacheMisses
			if dh+dm == 0 {
				return 0
			}
			return float64(dh) / float64(dh+dm)
		}
		// Hot phase: prime the cache with the short range once, then time
		// repeated executions of a working set that fits.
		hr, err := sys.Query(hotSQL)
		if err != nil {
			return backendMeasure{}, err
		}
		stHot0 := sys.Stats()
		hotStart := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sys.Query(hotSQL); err != nil {
				return backendMeasure{}, err
			}
		}
		hotElapsed := time.Since(hotStart)
		stHot := sys.Stats()
		_ = st0
		return backendMeasure{
			coldMS:        float64(cold.Microseconds()) / 1000,
			qps:           float64(iters) / elapsed.Seconds(),
			p50:           pct(0.50),
			p99:           pct(0.99),
			pageReadsPerQ: (stWarm.PageReads - stCold.PageReads) / int64(iters),
			pageBytesPerQ: (stWarm.PageBytesRead - stCold.PageBytesRead) / int64(iters),
			hitRate:       hitRate(stCold, stWarm),
			hotQPS:        float64(iters) / hotElapsed.Seconds(),
			hotHitRate:    hitRate(stHot0, stHot),
			hotReadsPerQ:  (stHot.PageReads - stHot0.PageReads) / int64(iters),
			rows:          fmt.Sprintf("%v %v", r.Data, hr.Data),
		}, nil
	}

	results := map[string]backendMeasure{}
	var encBytes int64
	var diskStats monomi.Stats
	for _, backend := range []string{"mem", "disk"} {
		sys, cleanup, err := build(backend)
		if err != nil {
			return err
		}
		m, err := measure(sys)
		if err != nil {
			sys.Close()
			cleanup()
			return err
		}
		if backend == "disk" {
			diskStats = sys.Stats()
			encBytes = diskStats.EncBytes
		}
		sys.Close()
		cleanup()
		results[backend] = m
	}
	if results["mem"].rows != results["disk"].rows {
		return fmt.Errorf("backend scenario: disk result diverges from mem:\n%s\nvs\n%s",
			results["disk"].rows, results["mem"].rows)
	}
	if encBytes <= cacheBytes {
		return fmt.Errorf("backend scenario: encrypted table (%d bytes) fits the block cache (%d bytes); lower -cachebytes or raise -backendrows",
			encBytes, cacheBytes)
	}
	if diskStats.PageReads == 0 {
		return fmt.Errorf("backend scenario: disk backend charged no page reads")
	}

	fmt.Printf("%-8s %9s %9s %9s %9s %12s %14s %9s %9s %9s\n",
		"backend", "cold-ms", "qps", "p50-ms", "p99-ms", "reads/query", "KB-read/query", "hit-rate", "hot-qps", "hot-hit")
	for _, backend := range []string{"mem", "disk"} {
		m := results[backend]
		fmt.Printf("%-8s %9.1f %9.1f %9.2f %9.2f %12d %14.1f %9.3f %9.1f %9.3f\n",
			backend, m.coldMS, m.qps, m.p50, m.p99,
			m.pageReadsPerQ, float64(m.pageBytesPerQ)/1024, m.hitRate, m.hotQPS, m.hotHitRate)
		sink.add(map[string]any{
			"exp": "backend", "backend": backend,
			"cold_ms": m.coldMS, "qps": m.qps, "p50_ms": m.p50, "p99_ms": m.p99,
			"page_reads_per_query": m.pageReadsPerQ, "page_bytes_per_query": m.pageBytesPerQ,
			"cache_hit_rate": m.hitRate,
			"hot_qps":        m.hotQPS, "hot_cache_hit_rate": m.hotHitRate,
			"hot_page_reads_per_query": m.hotReadsPerQ,
		})
	}
	penalty := results["mem"].qps / results["disk"].qps
	fmt.Printf("\nencrypted table %d bytes vs %d-byte block cache (%.1fx over)\n",
		encBytes, cacheBytes, float64(encBytes)/float64(cacheBytes))
	fmt.Printf("disk totals: %d page reads, %d bytes, hit rate %.3f; mem/disk qps ratio %.2fx\n",
		diskStats.PageReads, diskStats.PageBytesRead, diskStats.CacheHitRate(), penalty)
	sink.add(map[string]any{
		"exp": "backend-summary", "rows": rows,
		"enc_bytes": encBytes, "cache_bytes": cacheBytes, "page_bytes": pageBytes,
		"disk_page_reads": diskStats.PageReads, "disk_page_bytes_read": diskStats.PageBytesRead,
		"disk_cache_hit_rate": diskStats.CacheHitRate(),
		"mem_qps":             results["mem"].qps, "disk_qps": results["disk"].qps,
		"mem_over_disk_qps": penalty,
	})
	return nil
}
