package main

// The stream scenario (-exp stream) exercises the two operator families
// PR 5 taught the streamed wire to pipeline: grouped aggregation (Paillier
// sums finalized and shipped batch-at-a-time once accumulation ends,
// instead of all-at-once) and DISTINCT (seen-set emission instead of a
// materialized keep-bitmap). For each, it reports the latency shape over
// both wire modes — time-to-first-row is the number the streamed wire
// exists to shrink, and before this PR it equaled full server time for
// exactly these two shapes.

import (
	"fmt"
	"os"

	monomi "repro"
)

// streamScenario builds ev(e_id, e_grp, e_val) with `rows` rows across 600
// groups, encrypts it under a grouped-sum + distinct workload, and runs a
// grouped Paillier aggregation and a DISTINCT projection over both wire
// modes at the given parallelism.
func streamScenario(rows, par, batch int) error {
	if batch <= 0 {
		batch = 64
	}
	fmt.Fprintf(os.Stderr, "stream scenario: encrypting %d rows / 600 groups (batch %d)...\n", rows, batch)
	db := monomi.NewDatabase()
	db.MustCreateTable("ev",
		monomi.Col("e_id", monomi.Int), monomi.Col("e_grp", monomi.Int), monomi.Col("e_val", monomi.Int))
	for i := 0; i < rows; i++ {
		db.MustInsert("ev", i, i%600, i%1000)
	}
	const groupedQ = `SELECT e_grp, SUM(e_val), COUNT(*) FROM ev GROUP BY e_grp`
	const distinctQ = `SELECT DISTINCT e_grp FROM ev`
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.Parallelism = par
	opts.BatchSize = batch
	sys, err := monomi.Encrypt(db, monomi.Workload{"grouped": groupedQ, "distinct": distinctQ}, opts)
	if err != nil {
		return err
	}
	// Warm the client's decrypt caches once so both wire modes measure
	// steady state.
	for _, q := range []string{groupedQ, distinctQ} {
		if _, err := sys.Query(q); err != nil {
			return err
		}
	}
	fmt.Printf("%-10s %-14s %8s %12s %12s %12s %14s\n",
		"query", "wire", "rows", "server(s)", "transfer(s)", "client(s)", "firstrow(s)")
	for _, tc := range []struct{ name, sql string }{
		{"grouped", groupedQ},
		{"distinct", distinctQ},
	} {
		for _, sw := range []bool{false, true} {
			sys.SetStreamWire(sw)
			res, err := sys.Query(tc.sql)
			if err != nil {
				return err
			}
			mode := "materialized"
			if sw {
				mode = "streamed"
			}
			fmt.Printf("%-10s %-14s %8d %12.6f %12.6f %12.6f %14.6f\n",
				tc.name, mode, len(res.Data), res.ServerTime, res.TransferTime, res.ClientTime, res.TimeToFirstRow)
		}
	}
	return nil
}
