package main

// The index scenario (-exp index) sweeps predicate selectivity over one
// table and measures the secondary-index access paths against full scans:
// the same COUNT query, indexes off (SetIndexes(false), every execution
// scans the whole encrypted table) versus on (the DET hash index serves
// the equality probe, the OPE ordered index the 100% range point). The
// planted value frequencies put one point at each decade from 0.001% to
// 10%, plus a 100% range predicate where both the planner's estimate and
// the engine's exact-count rule must fall back to the scan. Correctness is
// asserted per point: both modes must return the planted match count.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	monomi "repro"
)

// indexPoint is one selectivity sweep point: a parameterized COUNT query
// and the number of rows its predicate matches.
type indexPoint struct {
	name  string
	sql   string
	param map[string]any
	match int
}

// indexScenario builds ix(x_id, x_sel, x_val) with planted x_sel
// frequencies and sweeps scan-vs-index across selectivities.
func indexScenario(rows, iters, par, batch int, sink *jsonSink) error {
	if rows < 1000 {
		rows = 1000
	}
	if iters <= 0 {
		iters = 7
	}
	fmt.Fprintf(os.Stderr, "index scenario: encrypting %d rows (batch %d, parallelism %d)...\n",
		rows, batch, par)

	// Planted frequencies: value j+1 occurs counts[j] times (one point per
	// selectivity decade), value 0 fills the remainder.
	sels := []float64{0.00001, 0.0001, 0.001, 0.01, 0.1}
	counts := make([]int, len(sels))
	cum := make([]int, len(sels))
	total := 0
	for j, s := range sels {
		c := int(float64(rows) * s)
		if c < 1 {
			c = 1
		}
		counts[j] = c
		total += c
		cum[j] = total
	}

	db := monomi.NewDatabase()
	db.MustCreateTable("ix",
		monomi.Col("x_id", monomi.Int), monomi.Col("x_sel", monomi.Int), monomi.Col("x_val", monomi.Int))
	for i := 0; i < rows; i++ {
		val := 0
		for j := range cum {
			if i < cum[j] {
				val = j + 1
				break
			}
		}
		db.MustInsert("ix", i, val, i%1000)
	}

	points := make([]indexPoint, 0, len(sels)+1)
	for j, c := range counts {
		points = append(points, indexPoint{
			name:  fmt.Sprintf("%.3g%%", sels[j]*100),
			sql:   `SELECT COUNT(*) FROM ix WHERE x_sel = :v`,
			param: map[string]any{"v": j + 1},
			match: c,
		})
	}
	points = append(points, indexPoint{
		name:  "100%",
		sql:   `SELECT COUNT(*) FROM ix WHERE x_sel >= :v`,
		param: map[string]any{"v": 0},
		match: rows,
	})

	opts := monomi.DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.Parallelism = par
	opts.BatchSize = batch
	sys, err := monomi.Encrypt(db, monomi.Workload{
		"eq":    `SELECT COUNT(*) FROM ix WHERE x_sel = 3`,
		"range": `SELECT COUNT(*) FROM ix WHERE x_sel >= 0`,
	}, opts)
	if err != nil {
		return err
	}
	defer sys.Close()

	fmt.Printf("%-12s %9s %11s %11s %9s %14s  %s\n",
		"selectivity", "match", "scan-qps", "index-qps", "speedup", "skipped/query", "access")
	var lowSelSpeedup float64
	scanAt100 := false
	for _, p := range points {
		sys.SetIndexes(false)
		scan, _, err := runIndexPoint(sys, p, iters)
		if err != nil {
			return err
		}
		sys.SetIndexes(true)
		before := sys.Stats()
		idx, plan, err := runIndexPoint(sys, p, iters)
		if err != nil {
			return err
		}
		after := sys.Stats()
		// iters timed executions plus runIndexPoint's one priming execution.
		skipped := (after.RowsSkippedByIndex - before.RowsSkippedByIndex) / int64(iters+1)
		access := planAccess(plan)
		speedup := idx.qps / scan.qps
		fmt.Printf("%-12s %9d %11.1f %11.1f %8.1fx %14d  %s\n",
			p.name, p.match, scan.qps, idx.qps, speedup, skipped, access)
		if p.match <= rows/1000 && (lowSelSpeedup == 0 || speedup < lowSelSpeedup) {
			lowSelSpeedup = speedup
		}
		if p.match == rows {
			scanAt100 = strings.HasPrefix(access, "scan")
		}
		sink.add(map[string]any{
			"exp": "index", "selectivity": p.name, "match": p.match,
			"scan_qps": scan.qps, "index_qps": idx.qps, "speedup": speedup,
			"scan_p50_ms": scan.p50, "scan_p99_ms": scan.p99,
			"index_p50_ms": idx.p50, "index_p99_ms": idx.p99,
			"rows_skipped_per_query": skipped, "access": access,
		})
	}
	st := sys.Stats()
	fmt.Printf("\nworst speedup at <=0.1%% selectivity: %.1fx (target >=10x)\n", lowSelSpeedup)
	fmt.Printf("planner chose scan at 100%% selectivity: %v\n", scanAt100)
	fmt.Printf("index lookups %d, rows skipped %d, intern ratio %.2fx (%d -> %d bytes)\n",
		st.IndexLookups, st.RowsSkippedByIndex, st.InternRatio(), st.EncRawBytes, st.EncBytes)
	sink.add(map[string]any{
		"exp": "index-summary", "rows": rows,
		"low_sel_speedup": lowSelSpeedup, "scan_at_100pct": scanAt100,
		"index_lookups": st.IndexLookups, "rows_skipped": st.RowsSkippedByIndex,
		"enc_bytes": st.EncBytes, "enc_raw_bytes": st.EncRawBytes,
		"intern_ratio": st.InternRatio(),
	})
	return nil
}

// indexMeasure is one mode's timing over a sweep point.
type indexMeasure struct {
	qps, p50, p99 float64
}

// runIndexPoint primes the plan cache, asserts the COUNT result, and times
// iters executions.
func runIndexPoint(sys *monomi.System, p indexPoint, iters int) (indexMeasure, string, error) {
	stmt, err := sys.Prepare(p.sql)
	if err != nil {
		return indexMeasure{}, "", err
	}
	defer stmt.Close()
	r, err := stmt.Query(p.param)
	if err != nil {
		return indexMeasure{}, "", err
	}
	if got := countOf(r); got != int64(p.match) {
		return indexMeasure{}, "", fmt.Errorf("point %s: COUNT returned %d, want %d", p.name, got, p.match)
	}
	latencies := make([]time.Duration, iters)
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if _, err := stmt.Query(p.param); err != nil {
			return indexMeasure{}, "", err
		}
		latencies[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	return indexMeasure{
		qps: float64(iters) / elapsed.Seconds(),
		p50: pct(0.50),
		p99: pct(0.99),
	}, r.PlanText, nil
}

// countOf extracts the single COUNT cell from a result.
func countOf(r *monomi.Rows) int64 {
	if len(r.Data) != 1 || len(r.Data[0]) != 1 {
		return -1
	}
	switch x := r.Data[0][0].(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	}
	return -1
}

// planAccess pulls the costed access-path annotation out of a plan
// rendering ("-" when the plan carries none, e.g. with indexes off).
func planAccess(plan string) string {
	for _, line := range strings.Split(plan, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "access "); ok {
			return rest
		}
	}
	return "-"
}
