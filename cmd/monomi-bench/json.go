package main

// Machine-readable benchmark output (-json <file>): scenarios append flat
// records to a shared sink, and main writes them as one JSON array when the
// run finishes. Each record carries an "exp" tag plus the scenario's own
// fields (qps, latency percentiles, index stats, ...), so downstream
// tooling can diff runs without scraping the human tables.

import (
	"encoding/json"
	"os"
)

// jsonSink collects benchmark records. A nil sink (no -json flag) is valid
// and drops everything, so scenarios call add unconditionally.
type jsonSink struct {
	path string
	rows []map[string]any
}

func newJSONSink(path string) *jsonSink {
	if path == "" {
		return nil
	}
	return &jsonSink{path: path}
}

func (s *jsonSink) add(row map[string]any) {
	if s == nil {
		return
	}
	s.rows = append(s.rows, row)
}

func (s *jsonSink) flush() error {
	if s == nil {
		return nil
	}
	b, err := json.MarshalIndent(s.rows, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(s.path, b, 0o644)
}
