package main

// The repeat scenario (-exp repeat) measures the repeated-query hot path:
// the same parameterized shapes executed over and over with different
// values, cold (plan cache reset before every execution, so each one pays
// parse + prepare + rewrite + costing) versus warm (plan cached after the
// first execution, later ones only re-encrypt parameters — and, over the
// wire, re-execute a server-side prepared statement by id instead of
// re-shipping SQL). Reported per mode: throughput, wall-clock latency
// percentiles, and the plan-cache hit rate observed during the sweep.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	monomi "repro"
)

// repeatShape is one parameterized query plus a generator for its i-th
// parameter binding.
type repeatShape struct {
	name   string
	sql    string
	params func(i int) map[string]any
}

// repeatScenario builds ev(e_id, e_grp, e_val) with `rows` rows and sweeps
// cold/warm × in-process/wire over parameterized shapes.
func repeatScenario(rows, iters, par, batch int, pool bool, sink *jsonSink) error {
	if batch < 0 {
		batch = 0
	}
	if iters <= 0 {
		iters = 30
	}
	fmt.Fprintf(os.Stderr, "repeat scenario: encrypting %d rows (batch %d, parallelism %d, paillier pool %v)...\n",
		rows, batch, par, pool)
	db := monomi.NewDatabase()
	db.MustCreateTable("ev",
		monomi.Col("e_id", monomi.Int), monomi.Col("e_grp", monomi.Int), monomi.Col("e_val", monomi.Int))
	for i := 0; i < rows; i++ {
		db.MustInsert("ev", i, i%200, i%1000)
	}
	shapes := []repeatShape{
		{
			name: "point",
			sql:  `SELECT e_id, e_val FROM ev WHERE e_id = :id`,
			params: func(i int) map[string]any {
				return map[string]any{"id": (i * 37) % rows}
			},
		},
		{
			name: "filter",
			sql:  `SELECT e_id, e_val FROM ev WHERE e_val >= :lo`,
			params: func(i int) map[string]any {
				return map[string]any{"lo": 850 + i%100}
			},
		},
		{
			name: "groupsum",
			sql:  `SELECT e_grp, SUM(e_val), COUNT(*) FROM ev WHERE e_val < :hi GROUP BY e_grp`,
			params: func(i int) map[string]any {
				return map[string]any{"hi": 400 + i%200}
			},
		},
	}
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.Parallelism = par
	opts.BatchSize = batch
	opts.PaillierPool = pool
	workload := monomi.Workload{}
	for _, sh := range shapes {
		// The designer sees the shape with a representative literal bound in.
		r, err := sh.paramsBound(0)
		if err != nil {
			return err
		}
		workload[sh.name] = r
	}
	sys, err := monomi.Encrypt(db, workload, opts)
	if err != nil {
		return err
	}
	defer sys.Close()

	srv, err := sys.Serve("127.0.0.1:0", monomi.ServeConfig{})
	if err != nil {
		return err
	}
	defer srv.Close()
	remote, err := sys.ConnectRemote(srv.Addr().String())
	if err != nil {
		return err
	}
	defer remote.Close()

	fmt.Printf("%-10s %-10s %-6s %10s %12s %12s %10s\n",
		"shape", "deploy", "path", "qps", "p50(ms)", "p99(ms)", "hit-rate")
	for _, sh := range shapes {
		for _, d := range []struct {
			name string
			sys  *monomi.System
		}{{"inproc", sys}, {"wire", remote}} {
			cold, err := runRepeat(d.sys, sh, iters, true)
			if err != nil {
				return err
			}
			warm, err := runRepeat(d.sys, sh, iters, false)
			if err != nil {
				return err
			}
			for _, r := range []struct {
				path string
				m    repeatMeasure
			}{{"cold", cold}, {"warm", warm}} {
				fmt.Printf("%-10s %-10s %-6s %10.1f %12.2f %12.2f %9.0f%%\n",
					sh.name, d.name, r.path, r.m.qps, r.m.p50, r.m.p99, r.m.hitRate*100)
				sink.add(map[string]any{
					"exp": "repeat", "shape": sh.name, "deploy": d.name, "path": r.path,
					"qps": r.m.qps, "p50_ms": r.m.p50, "p99_ms": r.m.p99, "hit_rate": r.m.hitRate,
				})
			}
		}
	}
	return nil
}

// paramsBound substitutes the i-th parameter binding into the shape's SQL
// textually (for the designer workload, which takes plain SQL).
func (sh repeatShape) paramsBound(i int) (string, error) {
	sql := sh.sql
	for name, v := range sh.params(i) {
		sql = strings.ReplaceAll(sql, ":"+name, fmt.Sprint(v))
	}
	return sql, nil
}

type repeatMeasure struct {
	qps, p50, p99 float64
	hitRate       float64
}

// runRepeat executes the shape iters times with varying parameters. cold
// resets the plan cache before every execution; warm runs one untimed
// priming execution first so every timed one can hit the cache.
func runRepeat(sys *monomi.System, sh repeatShape, iters int, cold bool) (repeatMeasure, error) {
	stmt, err := sys.Prepare(sh.sql)
	if err != nil {
		return repeatMeasure{}, err
	}
	defer stmt.Close()
	if cold {
		sys.ResetPlanCache()
	} else {
		if _, err := stmt.Query(sh.params(0)); err != nil {
			return repeatMeasure{}, err
		}
	}
	before := sys.PlanCacheStats()
	latencies := make([]time.Duration, iters)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if cold {
			sys.ResetPlanCache()
		}
		t0 := time.Now()
		if _, err := stmt.Query(sh.params(i)); err != nil {
			return repeatMeasure{}, err
		}
		latencies[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	after := sys.PlanCacheStats()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx].Microseconds()) / 1000
	}
	total := float64(after.Hits + after.Misses - before.Hits - before.Misses)
	m := repeatMeasure{
		qps: float64(iters) / elapsed.Seconds(),
		p50: pct(0.50),
		p99: pct(0.99),
	}
	if total > 0 {
		m.hitRate = float64(after.Hits-before.Hits) / total
	}
	return m, nil
}
