package main

// The join scenario (-exp join) exercises the layer the paper's figures
// never isolate: an encrypted multi-table query end to end. The planner
// pushes the equi-join to the untrusted server (shared-key DET join
// group), the server runs the sharded hash-join build and — with the
// streamed wire — ships joined encrypted batches mid-probe, so
// time-to-first-row is batch-proportional while the materialized wire
// waits for the whole probe scan.

import (
	"fmt"
	"os"

	monomi "repro"
)

// joinScenario builds fact(probe side, `rows` rows) ⋈ dim(997 rows),
// encrypts them under a join workload, and reports the latency shape of
// the equi-join over both wire modes.
func joinScenario(rows, par, batch int) error {
	if batch <= 0 {
		batch = 1024
	}
	fmt.Fprintf(os.Stderr, "join scenario: encrypting %d-row probe side (batch %d)...\n", rows, batch)
	db := monomi.NewDatabase()
	db.MustCreateTable("fact",
		monomi.Col("f_id", monomi.Int), monomi.Col("f_key", monomi.Int), monomi.Col("f_val", monomi.Int))
	for i := 0; i < rows; i++ {
		db.MustInsert("fact", i, i%997, i%1000)
	}
	db.MustCreateTable("dim",
		monomi.Col("d_key", monomi.Int), monomi.Col("d_tier", monomi.Int))
	for i := 0; i < 997; i++ {
		db.MustInsert("dim", i, i%7)
	}
	const query = `SELECT f_id, d_tier FROM fact, dim WHERE f_key = d_key AND f_val > 500`
	opts := monomi.DefaultOptions()
	opts.PaillierBits = 256
	opts.SpaceBudget = 0
	opts.Parallelism = par
	opts.BatchSize = batch
	sys, err := monomi.Encrypt(db, monomi.Workload{"join": query}, opts)
	if err != nil {
		return err
	}
	// Warm the client's decrypt caches once so both wire modes measure
	// steady state — otherwise whichever mode runs second inherits the
	// first run's cache hits and reports an understated client time.
	if _, err := sys.Query(query); err != nil {
		return err
	}
	fmt.Printf("%-14s %10s %12s %12s %12s %14s\n",
		"wire", "rows", "server(s)", "transfer(s)", "client(s)", "firstrow(s)")
	for _, sw := range []bool{false, true} {
		sys.SetStreamWire(sw)
		res, err := sys.Query(query)
		if err != nil {
			return err
		}
		mode := "materialized"
		if sw {
			mode = "streamed"
		}
		fmt.Printf("%-14s %10d %12.6f %12.6f %12.6f %14.6f\n",
			mode, len(res.Data), res.ServerTime, res.TransferTime, res.ClientTime, res.TimeToFirstRow)
	}
	return nil
}
