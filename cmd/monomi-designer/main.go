// monomi-designer runs the physical database designer (§6) over the TPC-H
// workload and prints the chosen encrypted design, its ILP statistics, and
// the per-query plan costs — the setup-phase tool of Figure 1.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/designer"
	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor (data sample for statistics)")
	seed := flag.Int64("seed", 1, "generator seed")
	budget := flag.Float64("s", 2.0, "space budget factor S (0 = unconstrained)")
	spaceGreedy := flag.Bool("space-greedy", false, "use the Space-Greedy heuristic instead of the ILP")
	bits := flag.Int("paillier", 512, "Paillier modulus bits")
	flag.Parse()

	cat, err := tpch.Generate(tpch.ScaleFactor(*sf), *seed)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := enc.NewKeyStore([]byte("monomi-designer"), *bits)
	if err != nil {
		log.Fatal(err)
	}
	cost := planner.DefaultCostModel(netsim.Default())
	cost.HomCipherBytes = ks.Paillier().CiphertextSize()

	labeled := map[string]string{}
	for _, qn := range tpch.SupportedQueries() {
		labeled[fmt.Sprintf("Q%02d", qn)] = tpch.Queries[qn]
	}
	w, err := designer.ParseWorkload(labeled)
	if err != nil {
		log.Fatal(err)
	}
	opts := designer.MonomiOptions()
	opts.SpaceBudget = *budget
	opts.SpaceGreedy = *spaceGreedy
	res, err := designer.Run(cat, w, ks, cost, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Designer finished in %s: %d ILP variables, %d constraints, %d B&B nodes\n",
		res.Elapsed.Round(1e6), res.Vars, res.Constraints, res.Nodes)
	fmt.Printf("Plaintext %0.f B; estimated encrypted footprint %.0f B (%.2fx)\n\n",
		res.PlainBytes, res.EstBytes, res.EstBytes/res.PlainBytes)

	fmt.Println("Per-query plan choices (BestSet items beyond the DET baseline):")
	for _, info := range res.PerQuery {
		fmt.Printf("  %-4s est %8.3fs  (%d candidates)", info.Label, info.EstCost, info.NumCands)
		if len(info.Items) > 0 {
			fmt.Printf("  items:")
			for _, it := range info.Items {
				fmt.Printf(" %s(%s)", it.ColumnName(), it.Scheme)
			}
		}
		fmt.Println()
	}

	fmt.Println("\nPhysical design:")
	byTable := map[string][]string{}
	for _, it := range res.Design.Items {
		pre := ""
		if it.IsPrecomputed() {
			pre = " [precomputed: " + it.ExprSQL() + "]"
		}
		byTable[it.Table] = append(byTable[it.Table], fmt.Sprintf("%-28s %s%s", it.ColumnName(), it.Scheme, pre))
	}
	var tables []string
	for t := range byTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		fmt.Printf("  %s:\n", t)
		sort.Strings(byTable[t])
		for _, line := range byTable[t] {
			fmt.Printf("    %s\n", line)
		}
	}
}
