// Package ilp solves MONOMI's physical-design integer program (§6.5):
//
//	minimize   Σ_i Σ_j cost(i,j) · x_{i,j}
//	subject to Σ_j x_{i,j} = 1                       (one plan per query)
//	           Σ_k e_k · size(k) ≤ budget            (server space)
//	           |cand(i,j)| · x_{i,j} − Σ_{k∈cand(i,j)} e_k ≤ 0   (linking)
//	           x, e ∈ {0,1}
//
// The formulation's structure — pick one candidate per query, pay for the
// union of the items the chosen candidates need, subject to a knapsack on
// that union — admits an exact branch-and-bound: queries are decision
// levels, candidates are branches ordered by cost, the bound adds each
// remaining query's cheapest candidate, and a branch dies as soon as its
// item union exceeds the budget (sizes are non-negative, so the union's
// size grows monotonically). The solution is the ILP optimum.
package ilp

import (
	"math"
	"sort"
)

// Candidate is one plan alternative for a query: its estimated cost and the
// (globally indexed) encrypted items it requires beyond the baseline.
type Candidate struct {
	Cost  float64
	Items []int
}

// Problem is a full design problem.
type Problem struct {
	// Candidates[i] lists query i's alternatives. Every query must have at
	// least one candidate; feasibility is guaranteed when each query has a
	// candidate with no extra items (the DET-baseline plan).
	Candidates [][]Candidate
	// Sizes[k] is item k's estimated server footprint in bytes.
	Sizes []float64
	// Budget is the extra space allowance beyond the baseline.
	Budget float64
}

// Vars reports the ILP's variable count (x's plus e's), for §8.1-style
// reporting.
func (p *Problem) Vars() int {
	n := len(p.Sizes)
	for _, c := range p.Candidates {
		n += len(c)
	}
	return n
}

// Constraints reports the ILP's constraint count: one choice constraint per
// query, the space constraint, and one linking constraint per candidate.
func (p *Problem) Constraints() int {
	n := len(p.Candidates) + 1
	for _, c := range p.Candidates {
		n += len(c)
	}
	return n
}

// Solution is the optimizer's output.
type Solution struct {
	Choice    []int // chosen candidate index per query
	Cost      float64
	SpaceUsed float64
	Items     []int // union of chosen items
	Nodes     int   // search nodes explored
}

// Solve finds the optimal assignment, or ok=false if no assignment fits the
// budget.
func Solve(p *Problem) (*Solution, bool) {
	n := len(p.Candidates)
	if n == 0 {
		return &Solution{}, true
	}

	// Order each query's candidates by cost so DFS tries cheap ones first.
	type order struct {
		idx  []int
		minC float64
	}
	orders := make([]order, n)
	for i, cands := range p.Candidates {
		o := order{idx: make([]int, len(cands)), minC: math.Inf(1)}
		for j := range cands {
			o.idx[j] = j
			if cands[j].Cost < o.minC {
				o.minC = cands[j].Cost
			}
		}
		sort.Slice(o.idx, func(a, b int) bool {
			return cands[o.idx[a]].Cost < cands[o.idx[b]].Cost
		})
		orders[i] = o
	}
	// Suffix of minimum remaining cost for bounding.
	suffixMin := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixMin[i] = suffixMin[i+1] + orders[i].minC
	}

	best := &Solution{Cost: math.Inf(1)}
	chosen := make([]int, n)
	inSet := make([]bool, len(p.Sizes))
	var nodes int

	var dfs func(i int, cost, space float64)
	dfs = func(i int, cost, space float64) {
		nodes++
		if cost+suffixMin[i] >= best.Cost {
			return
		}
		if i == n {
			best.Cost = cost
			best.SpaceUsed = space
			best.Choice = append(best.Choice[:0], chosen...)
			return
		}
		for _, j := range orders[i].idx {
			cand := &p.Candidates[i][j]
			if cost+cand.Cost+suffixMin[i+1] >= best.Cost {
				break // candidates are cost-sorted
			}
			var added []int
			extra := 0.0
			for _, k := range cand.Items {
				if !inSet[k] {
					extra += p.Sizes[k]
					added = append(added, k)
				}
			}
			if space+extra > p.Budget {
				continue
			}
			for _, k := range added {
				inSet[k] = true
			}
			chosen[i] = j
			dfs(i+1, cost+cand.Cost, space+extra)
			for _, k := range added {
				inSet[k] = false
			}
		}
	}
	dfs(0, 0, 0)
	best.Nodes = nodes
	if math.IsInf(best.Cost, 1) {
		return nil, false
	}
	// Reconstruct the chosen item union.
	itemSet := make(map[int]bool)
	for i, j := range best.Choice {
		for _, k := range p.Candidates[i][j].Items {
			itemSet[k] = true
		}
	}
	for k := range itemSet {
		best.Items = append(best.Items, k)
	}
	sort.Ints(best.Items)
	return best, true
}
