package ilp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleQueryPicksCheapestFeasible(t *testing.T) {
	p := &Problem{
		Candidates: [][]Candidate{{
			{Cost: 1, Items: []int{0}}, // needs a big item
			{Cost: 5, Items: nil},      // baseline
		}},
		Sizes:  []float64{100},
		Budget: 50,
	}
	sol, ok := Solve(p)
	if !ok {
		t.Fatal("should be feasible")
	}
	if sol.Choice[0] != 1 || sol.Cost != 5 {
		t.Errorf("choice = %v cost = %v; cheapest candidate exceeds budget", sol.Choice, sol.Cost)
	}
	p.Budget = 200
	sol, _ = Solve(p)
	if sol.Choice[0] != 0 || sol.Cost != 1 {
		t.Errorf("with budget, should pick cheapest: %v", sol)
	}
}

func TestSharedItemCountedOnce(t *testing.T) {
	// Two queries both want item 0 (size 80, budget 100): sharing must be
	// feasible even though 2×80 > 100.
	p := &Problem{
		Candidates: [][]Candidate{
			{{Cost: 1, Items: []int{0}}, {Cost: 10}},
			{{Cost: 1, Items: []int{0}}, {Cost: 10}},
		},
		Sizes:  []float64{80},
		Budget: 100,
	}
	sol, ok := Solve(p)
	if !ok {
		t.Fatal("feasible")
	}
	if sol.Cost != 2 {
		t.Errorf("cost = %v, want 2 (item shared)", sol.Cost)
	}
	if sol.SpaceUsed != 80 {
		t.Errorf("space = %v, want 80", sol.SpaceUsed)
	}
}

func TestTradeoffAcrossQueries(t *testing.T) {
	// Budget admits item 0 xor item 1. Item 0 saves query A 100s; item 1
	// saves query B 10s. The optimum funds item 0.
	p := &Problem{
		Candidates: [][]Candidate{
			{{Cost: 1, Items: []int{0}}, {Cost: 101}},
			{{Cost: 1, Items: []int{1}}, {Cost: 11}},
		},
		Sizes:  []float64{60, 60},
		Budget: 100,
	}
	sol, ok := Solve(p)
	if !ok {
		t.Fatal("feasible")
	}
	if sol.Choice[0] != 0 || sol.Choice[1] != 1 {
		t.Errorf("choice = %v, want item 0 funded", sol.Choice)
	}
	if sol.Cost != 12 {
		t.Errorf("cost = %v, want 12", sol.Cost)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		Candidates: [][]Candidate{{{Cost: 1, Items: []int{0}}}},
		Sizes:      []float64{100},
		Budget:     10,
	}
	if _, ok := Solve(p); ok {
		t.Error("should be infeasible: the only candidate exceeds the budget")
	}
}

func TestEmptyProblem(t *testing.T) {
	sol, ok := Solve(&Problem{})
	if !ok || sol.Cost != 0 {
		t.Error("empty problem solves trivially")
	}
}

func TestVarsAndConstraints(t *testing.T) {
	p := &Problem{
		Candidates: [][]Candidate{
			{{Cost: 1}, {Cost: 2}},
			{{Cost: 1}, {Cost: 2}, {Cost: 3}},
		},
		Sizes: []float64{1, 2, 3},
	}
	if p.Vars() != 5+3 {
		t.Errorf("vars = %d", p.Vars())
	}
	if p.Constraints() != 2+1+5 {
		t.Errorf("constraints = %d", p.Constraints())
	}
}

// Property: branch-and-bound matches brute force on small random problems.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seedCosts [6]uint8, seedItems [6]uint8, budgetRaw uint8) bool {
		// Two queries × three candidates over four items.
		var p Problem
		p.Sizes = []float64{10, 20, 30, 40}
		p.Budget = float64(budgetRaw%120) + 1
		idx := 0
		for q := 0; q < 2; q++ {
			var cands []Candidate
			for c := 0; c < 3; c++ {
				cand := Candidate{Cost: float64(seedCosts[idx]%50) + 1}
				mask := seedItems[idx] % 16
				for k := 0; k < 4; k++ {
					if mask&(1<<k) != 0 {
						cand.Items = append(cand.Items, k)
					}
				}
				cands = append(cands, cand)
				idx++
			}
			// Guarantee feasibility with a baseline candidate.
			cands = append(cands, Candidate{Cost: 100})
			p.Candidates = append(p.Candidates, cands)
		}
		got, ok := Solve(&p)
		if !ok {
			return false
		}
		// Brute force.
		best := math.Inf(1)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				space := 0.0
				seen := map[int]bool{}
				for _, k := range append(append([]int{}, p.Candidates[0][a].Items...), p.Candidates[1][b].Items...) {
					if !seen[k] {
						seen[k] = true
						space += p.Sizes[k]
					}
				}
				if space > p.Budget {
					continue
				}
				if c := p.Candidates[0][a].Cost + p.Candidates[1][b].Cost; c < best {
					best = c
				}
			}
		}
		return got.Cost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
