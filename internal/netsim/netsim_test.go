package netsim

import (
	"testing"
	"time"
)

func TestTransferTimeAtTenMbit(t *testing.T) {
	cfg := Default()
	// 10 Mbit/s = 1.25 MB/s: 1.25 MB should take ~1 s.
	got := cfg.TransferTime(1250000)
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("transfer time = %v, want ~1s", got)
	}
	if cfg.TransferTime(0) != 0 || cfg.TransferTime(-5) != 0 {
		t.Error("non-positive sizes cost nothing")
	}
}

func TestCompressionScalesTransfer(t *testing.T) {
	cfg := Default()
	cfg.CompressionRatio = 0.5
	if cfg.TransferTime(1000) >= Default().TransferTime(1000) {
		t.Error("compression should shorten transfers")
	}
}

func TestScanTime(t *testing.T) {
	cfg := Default()
	got := cfg.ScanTime(int64(cfg.DiskBytesPerSec))
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Errorf("scanning one second of disk = %v", got)
	}
	if cfg.ScanTime(0) != 0 {
		t.Error("zero bytes scan instantly")
	}
}

func TestWallTimeDividesByWorkers(t *testing.T) {
	cfg := Default()
	serial := 8 * time.Second
	if got := cfg.WallTime(serial, 4); got != 2*time.Second {
		t.Errorf("WallTime(8s, 4) = %v, want 2s", got)
	}
	if got := cfg.WallTime(serial, 1); got != serial {
		t.Errorf("WallTime at one worker = %v, want the serial charge", got)
	}
	if got := cfg.WallTime(serial, 0); got != serial {
		t.Errorf("WallTime(workers=0) = %v, want the serial charge", got)
	}
}

func TestWallTimeCoreBound(t *testing.T) {
	cfg := Default()
	cfg.ServerCores = 2
	serial := 8 * time.Second
	// More workers than cores: the division saturates at the core count.
	if got := cfg.WallTime(serial, 16); got != 4*time.Second {
		t.Errorf("WallTime(8s, 16 workers, 2 cores) = %v, want 4s", got)
	}
	cfg.ServerCores = 0 // unbounded
	if got := cfg.WallTime(serial, 16); got != serial/16 {
		t.Errorf("WallTime with no core limit = %v, want %v", got, serial/16)
	}
}

func TestRowTime(t *testing.T) {
	cfg := Default()
	if cfg.RowTime(1e6) != time.Duration(1e6*cfg.ServerRowNanos) {
		t.Error("row CPU time")
	}
	if cfg.RowTime(0) != 0 {
		t.Error("zero rows cost nothing")
	}
}
