// Package netsim models the physical resources of the paper's testbed that
// a laptop-scale reproduction cannot replicate directly: the disk subsystem
// that makes analytical scans I/O-bound (§8.1 flushes caches and limits RAM
// to force disk reads) and the 10 Mbit/s client↔server WAN link (throttled
// with tc in the paper).
//
// Query cost = server scan time (bytes/disk-throughput) + server CPU
// (per-row work plus measured crypto-UDF time) + network transfer
// (bytes/bandwidth) + client CPU (measured decrypt time). The simulated
// components make runs deterministic and machine-independent; the measured
// components (bignum arithmetic, AES) use real CPU time so that, e.g.,
// Paillier decryption being expensive — the fact that drives the planner's
// client-vs-server aggregation choice — is real, not assumed.
package netsim

import "time"

// Config fixes the simulated hardware.
type Config struct {
	// NetBitsPerSec is the client↔server link bandwidth (paper: 10 Mbit/s).
	NetBitsPerSec float64
	// CompressionRatio scales transferred bytes (paper compresses with
	// ssh -C; ciphertext is mostly incompressible, so default 1.0).
	CompressionRatio float64
	// DiskBytesPerSec is sequential scan throughput on the server.
	DiskBytesPerSec float64
	// ServerRowNanos is per-row CPU cost of scan/join/aggregate processing.
	ServerRowNanos float64
	// ServerCores bounds how far CPU work can parallelize on the simulated
	// server: WallTime divides a serial CPU charge by min(workers,
	// ServerCores). 0 means no core limit (the charge divides by the full
	// worker count). Disk throughput is NOT scaled by cores — the array's
	// sequential bandwidth is an aggregate figure shared by all workers.
	ServerCores int
}

// Default returns the configuration used by the experiments: the paper's
// 10 Mbit/s link and a RAID-5 array of 7,200 RPM disks (~120 MB/s
// aggregate sequential throughput, which is what makes scans I/O-bound).
func Default() Config {
	return Config{
		NetBitsPerSec:    10e6,
		CompressionRatio: 1.0,
		DiskBytesPerSec:  120e6,
		ServerRowNanos:   100,
		ServerCores:      16,
	}
}

// TransferTime is the network time to ship n bytes to the client.
func (c Config) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	bits := float64(n) * 8 * c.CompressionRatio
	return time.Duration(bits / c.NetBitsPerSec * float64(time.Second))
}

// ScanTime is the disk time to read n bytes sequentially on the server.
func (c Config) ScanTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / c.DiskBytesPerSec * float64(time.Second))
}

// RowTime is the server CPU time to process n rows.
func (c Config) RowTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(n) * c.ServerRowNanos)
}

// WallTime converts a serially-accumulated CPU charge into the wall-clock
// time of `workers` workers sharing it: the charge divides by
// min(workers, ServerCores). The engine's stats always accumulate serial
// charges (per-shard work sums, it never overlaps in the accounting), so
// the serial figure is what a one-core server would take and WallTime is
// what the sharded execution actually delivers — the number a real
// multi-core deployment's clock shows. Scan I/O should stay serial (the
// disk array is shared); apply WallTime to CPU components only.
func (c Config) WallTime(cpu time.Duration, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	if c.ServerCores > 0 && workers > c.ServerCores {
		workers = c.ServerCores
	}
	if workers == 1 || cpu <= 0 {
		return cpu
	}
	return cpu / time.Duration(workers)
}
