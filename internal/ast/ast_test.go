package ast

import (
	"testing"

	"repro/internal/value"
)

func col(name string) *ColumnRef { return &ColumnRef{Column: name} }
func lit(i int64) *Literal       { return &Literal{Val: value.NewInt(i)} }

func TestConjunctsAndAndAll(t *testing.T) {
	a := &BinaryExpr{Op: OpEq, Left: col("a"), Right: lit(1)}
	b := &BinaryExpr{Op: OpGt, Left: col("b"), Right: lit(2)}
	c := &BinaryExpr{Op: OpLt, Left: col("c"), Right: lit(3)}
	conj := AndAll([]Expr{a, b, c})
	parts := Conjuncts(conj)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	if parts[0] != a || parts[2] != c {
		t.Error("order must be preserved")
	}
	if Conjuncts(nil) != nil {
		t.Error("nil predicate has no conjuncts")
	}
	if AndAll(nil) != nil {
		t.Error("empty AndAll is nil")
	}
	if AndAll([]Expr{nil, a, nil}) != a {
		t.Error("single non-nil collapses")
	}
	// OR is not split.
	or := &BinaryExpr{Op: OpOr, Left: a, Right: b}
	if len(Conjuncts(or)) != 1 {
		t.Error("OR must stay one conjunct")
	}
}

func TestWalkAndColumns(t *testing.T) {
	e := &BinaryExpr{
		Op:   OpAnd,
		Left: &BinaryExpr{Op: OpEq, Left: col("x"), Right: col("y")},
		Right: &InExpr{
			E:    col("z"),
			List: []Expr{lit(1), lit(2)},
		},
	}
	cols := Columns(e)
	if len(cols) != 3 {
		t.Fatalf("columns = %d", len(cols))
	}
	n := 0
	Walk(e, func(Expr) { n++ })
	if n < 7 {
		t.Errorf("walk visited %d nodes", n)
	}
}

func TestSubqueriesNotDescended(t *testing.T) {
	sub := NewQuery()
	sub.Projections = []SelectItem{{Expr: col("inner")}}
	sub.From = []TableRef{{Name: "t"}}
	e := &ExistsExpr{Sub: sub}
	if len(Columns(e)) != 0 {
		t.Error("Columns must not descend into subqueries")
	}
	if len(Subqueries(e)) != 1 {
		t.Error("Subqueries must find the EXISTS body")
	}
	if !HasSubquery(e) || HasSubquery(col("x")) {
		t.Error("HasSubquery")
	}
}

func TestAggregateDetection(t *testing.T) {
	agg := &AggExpr{Func: AggSum, Arg: col("v")}
	e := &BinaryExpr{Op: OpGt, Left: agg, Right: lit(10)}
	if !HasAggregate(e) {
		t.Error("aggregate inside comparison")
	}
	if HasAggregate(col("v")) {
		t.Error("plain column is not an aggregate")
	}
	if len(Aggregates(e)) != 1 {
		t.Error("Aggregates count")
	}
}

func TestEqualExprCanonicalizesParens(t *testing.T) {
	a := &BinaryExpr{Op: OpMul, Left: col("a"), Right: col("b")}
	b := &BinaryExpr{Op: OpMul, Left: col("a"), Right: col("b")}
	if !EqualExpr(a, b) {
		t.Error("structurally equal expressions must compare equal")
	}
	c := &BinaryExpr{Op: OpMul, Left: col("b"), Right: col("a")}
	if EqualExpr(a, c) {
		t.Error("operand order matters")
	}
	if !EqualExpr(nil, nil) || EqualExpr(a, nil) {
		t.Error("nil handling")
	}
}

func TestRewriteExprBottomUp(t *testing.T) {
	e := &BinaryExpr{Op: OpAdd, Left: col("x"), Right: &BinaryExpr{Op: OpMul, Left: col("x"), Right: lit(2)}}
	out := RewriteExpr(e, func(x Expr) Expr {
		if c, ok := x.(*ColumnRef); ok && c.Column == "x" {
			return col("y")
		}
		return nil
	})
	if len(Columns(out)) != 2 {
		t.Fatal("rewrite lost columns")
	}
	for _, c := range Columns(out) {
		if c.Column != "y" {
			t.Errorf("column %q not rewritten", c.Column)
		}
	}
	// Original untouched.
	if Columns(e)[0].Column != "x" {
		t.Error("rewrite must not mutate the input")
	}
}

func TestQuerySQLRendering(t *testing.T) {
	q := NewQuery()
	q.Projections = []SelectItem{{Expr: &AggExpr{Func: AggSum, Arg: col("v")}, Alias: "s"}}
	q.From = []TableRef{{Name: "t", Alias: "x"}}
	q.Where = &BetweenExpr{E: col("d"), Lo: lit(1), Hi: lit(9)}
	q.GroupBy = []Expr{col("k")}
	q.Having = &BinaryExpr{Op: OpGt, Left: &AggExpr{Func: AggSum, Arg: col("v")}, Right: lit(5)}
	q.OrderBy = []OrderItem{{Expr: col("s"), Desc: true}}
	q.Limit = 7
	sql := q.SQL()
	for _, want := range []string{"SELECT SUM(v) AS s", "FROM t x", "BETWEEN 1 AND 9",
		"GROUP BY k", "HAVING", "ORDER BY s DESC", "LIMIT 7"} {
		if !contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLiteralSQLQuoting(t *testing.T) {
	l := &Literal{Val: value.NewStr("O'Brien")}
	if l.SQL() != "'O''Brien'" {
		t.Errorf("quoted = %s", l.SQL())
	}
	d := &Literal{Val: value.NewDate(value.MustParseDate("1994-01-01"))}
	if d.SQL() != "date '1994-01-01'" {
		t.Errorf("date literal = %s", d.SQL())
	}
}

func TestTableRefName(t *testing.T) {
	r := TableRef{Name: "orders"}
	if r.RefName() != "orders" {
		t.Error("base name")
	}
	r.Alias = "o"
	if r.RefName() != "o" {
		t.Error("alias wins")
	}
}

func TestBinOpPredicates(t *testing.T) {
	if !OpEq.IsComparison() || !OpGe.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison")
	}
	if !OpMul.IsArith() || OpLt.IsArith() {
		t.Error("IsArith")
	}
}
