package ast

// Traversal and structural utilities used by the engine and the planner.

// VisitChildren calls fn on each direct child expression of e. Subqueries
// are not descended into; callers that care use Subqueries.
func VisitChildren(e Expr, fn func(Expr)) {
	switch x := e.(type) {
	case *BinaryExpr:
		fn(x.Left)
		fn(x.Right)
	case *UnaryExpr:
		fn(x.E)
	case *FuncCall:
		for _, a := range x.Args {
			fn(a)
		}
	case *AggExpr:
		if x.Arg != nil {
			fn(x.Arg)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			fn(w.Cond)
			fn(w.Then)
		}
		if x.Else != nil {
			fn(x.Else)
		}
	case *InExpr:
		fn(x.E)
		for _, l := range x.List {
			fn(l)
		}
	case *SubqueryExpr, *ExistsExpr:
		// children live in the subquery
	case *BetweenExpr:
		fn(x.E)
		fn(x.Lo)
		fn(x.Hi)
	case *LikeExpr:
		fn(x.E)
	case *IsNullExpr:
		fn(x.E)
	}
}

// Walk applies fn to e and every descendant expression (pre-order),
// not descending into subqueries.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	VisitChildren(e, func(c Expr) { Walk(c, fn) })
}

// Subqueries returns all subqueries directly referenced by e (IN, EXISTS,
// scalar), at any expression depth but without recursing into the
// subqueries themselves.
func Subqueries(e Expr) []*Query {
	var out []*Query
	Walk(e, func(x Expr) {
		switch s := x.(type) {
		case *InExpr:
			if s.Sub != nil {
				out = append(out, s.Sub)
			}
		case *ExistsExpr:
			out = append(out, s.Sub)
		case *SubqueryExpr:
			out = append(out, s.Sub)
		}
	})
	return out
}

// HasSubquery reports whether e contains any subquery.
func HasSubquery(e Expr) bool { return len(Subqueries(e)) > 0 }

// HasAggregate reports whether e contains an aggregate call (outside
// subqueries).
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) {
		if _, ok := x.(*AggExpr); ok {
			found = true
		}
	})
	return found
}

// Columns returns every column reference in e (outside subqueries),
// in traversal order with duplicates preserved.
func Columns(e Expr) []*ColumnRef {
	var out []*ColumnRef
	Walk(e, func(x Expr) {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
	})
	return out
}

// Conjuncts splits a predicate into its top-level AND terms. A nil
// predicate yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.Left), Conjuncts(b.Right)...)
	}
	return []Expr{e}
}

// AndAll combines predicates into a conjunction; nil for an empty slice.
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}

// EqualExpr reports structural equality of two expressions. The planner
// uses it to match precomputed-expression columns against query
// sub-expressions, so it compares by rendered SQL, which canonicalizes
// parenthesization.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.SQL() == b.SQL()
}

// Aggregates returns all aggregate expressions in e (outside subqueries).
func Aggregates(e Expr) []*AggExpr {
	var out []*AggExpr
	Walk(e, func(x Expr) {
		if a, ok := x.(*AggExpr); ok {
			out = append(out, a)
		}
	})
	return out
}

// RewriteExpr rebuilds e bottom-up, replacing each node with fn(node) after
// its children have been rewritten. fn returning nil keeps the node.
// Subqueries are left untouched.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		e = &BinaryExpr{Op: x.Op, Left: RewriteExpr(x.Left, fn), Right: RewriteExpr(x.Right, fn)}
	case *UnaryExpr:
		e = &UnaryExpr{Neg: x.Neg, E: RewriteExpr(x.E, fn)}
	case *FuncCall:
		n := &FuncCall{Name: x.Name}
		for _, a := range x.Args {
			n.Args = append(n.Args, RewriteExpr(a, fn))
		}
		e = n
	case *AggExpr:
		n := &AggExpr{Func: x.Func, Star: x.Star, Distinct: x.Distinct}
		if x.Arg != nil {
			n.Arg = RewriteExpr(x.Arg, fn)
		}
		e = n
	case *CaseExpr:
		n := &CaseExpr{}
		for _, w := range x.Whens {
			n.Whens = append(n.Whens, CaseWhen{Cond: RewriteExpr(w.Cond, fn), Then: RewriteExpr(w.Then, fn)})
		}
		if x.Else != nil {
			n.Else = RewriteExpr(x.Else, fn)
		}
		e = n
	case *InExpr:
		n := &InExpr{E: RewriteExpr(x.E, fn), Sub: x.Sub, Not: x.Not}
		for _, l := range x.List {
			n.List = append(n.List, RewriteExpr(l, fn))
		}
		e = n
	case *BetweenExpr:
		e = &BetweenExpr{E: RewriteExpr(x.E, fn), Lo: RewriteExpr(x.Lo, fn), Hi: RewriteExpr(x.Hi, fn), Not: x.Not}
	case *LikeExpr:
		e = &LikeExpr{E: RewriteExpr(x.E, fn), Pattern: x.Pattern, Not: x.Not}
	case *IsNullExpr:
		e = &IsNullExpr{E: RewriteExpr(x.E, fn), Not: x.Not}
	}
	if r := fn(e); r != nil {
		return r
	}
	return e
}
