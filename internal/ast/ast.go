// Package ast defines the SQL abstract syntax tree shared by the parser,
// the plaintext engine, and MONOMI's split client/server planner.
//
// The planner (Algorithm 1 in the paper) rewrites query trees: it clones the
// query, replaces expressions with encrypted-column references, strips
// clauses that must run on the client, and injects crypto UDF calls. The
// node types here therefore all support deep cloning and structural
// traversal.
package ast

import (
	"strings"

	"repro/internal/value"
)

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = [...]string{"AND", "OR", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/"}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether op is one of = <> < <= > >=.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsArith reports whether op is one of + - * /.
func (op BinOp) IsArith() bool { return op >= OpAdd }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"SUM", "COUNT", "AVG", "MIN", "MAX"}

func (f AggFunc) String() string { return aggNames[f] }

// Expr is a SQL expression node.
type Expr interface {
	// Clone returns a deep copy of the expression.
	Clone() Expr
	// SQL renders the expression in the dialect the engine parses.
	SQL() string
	isExpr()
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
	// Src, when non-empty, is the parameter slot this literal's value was
	// bound from — plan-cache provenance. A cached plan template replaces
	// Src-tagged literals with Param references so a later execution of the
	// same query shape can rebind fresh values; passes that combine or
	// absorb a literal (constant folding, design-item matching) emit
	// untagged results, which is what marks a shape uncacheable. Src never
	// affects SQL rendering or evaluation.
	Src string
	// EncBy, when non-nil, records the key item this literal was encrypted
	// under (an *enc.Item, typed opaquely — the enc package sits above ast).
	// Set together with Src by the planner's constant encryption so a plan
	// template knows how to re-encrypt the slot's future values.
	EncBy any
}

// Param is a named query parameter such as :1.
type Param struct {
	Name string
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op    BinOp
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT e or -e.
type UnaryExpr struct {
	Neg bool // true: arithmetic negation; false: logical NOT
	E   Expr
}

// FuncCall invokes a scalar function or server-side UDF by name.
// Recognized names include EXTRACT_YEAR, SUBSTRING, and the crypto UDFs
// PAILLIER_SUM / GROUP_CONCAT installed on the untrusted server.
type FuncCall struct {
	Name string
	Args []Expr
}

// AggExpr is an aggregate invocation. Star marks COUNT(*).
type AggExpr struct {
	Func     AggFunc
	Arg      Expr // nil when Star
	Star     bool
	Distinct bool
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // may be nil (NULL)
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// InExpr is e [NOT] IN (list...) or e [NOT] IN (subquery).
type InExpr struct {
	E    Expr
	List []Expr // nil when Sub is set
	Sub  *Query
	Not  bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *Query
	Not bool
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct {
	Sub *Query
}

// BetweenExpr is e [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// LikeExpr is e [NOT] LIKE 'pattern' with % and _ wildcards.
type LikeExpr struct {
	E       Expr
	Pattern string
	Not     bool
}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// IntervalExpr is INTERVAL 'n' unit, combined with dates via + and -.
type IntervalExpr struct {
	N    int64
	Unit string // "year" | "month" | "day"
}

func (*ColumnRef) isExpr()    {}
func (*Literal) isExpr()      {}
func (*Param) isExpr()        {}
func (*BinaryExpr) isExpr()   {}
func (*UnaryExpr) isExpr()    {}
func (*FuncCall) isExpr()     {}
func (*AggExpr) isExpr()      {}
func (*CaseExpr) isExpr()     {}
func (*InExpr) isExpr()       {}
func (*ExistsExpr) isExpr()   {}
func (*SubqueryExpr) isExpr() {}
func (*BetweenExpr) isExpr()  {}
func (*LikeExpr) isExpr()     {}
func (*IsNullExpr) isExpr()   {}
func (*IntervalExpr) isExpr() {}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM entry: a base table or a derived subquery.
type TableRef struct {
	Name  string // base table name; empty when Sub != nil
	Alias string
	Sub   *Query
}

// RefName returns the name the table is addressed by in the query scope.
func (t *TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Query is a SELECT statement. Joins are expressed TPC-H style: multiple
// FROM entries with equality predicates in WHERE.
type Query struct {
	Distinct    bool
	Projections []SelectItem
	From        []TableRef
	Where       Expr // nil when absent; conjunctions are BinaryExpr{OpAnd}
	GroupBy     []Expr
	Having      Expr
	OrderBy     []OrderItem
	Limit       int         // -1 when absent
	Hint        *AccessHint // planner access-path annotation; nil = engine decides
}

// Access-path hint values.
const (
	// AccessScan tells the engine to skip index resolution for this block.
	AccessScan = "scan"
	// AccessIndex records that the planner expects an index to pay off; the
	// engine still applies its own cost rule with exact cardinalities.
	AccessIndex = "index"
)

// AccessHint is the planner's advisory index-vs-scan annotation. It rides
// the AST only — SQL rendering ignores it, so a hint never crosses the wire
// (a remote server re-derives its own access path from exact index
// cardinalities) — and it can never change results, only which physical
// path produces them.
type AccessHint struct {
	Path   string // AccessScan or AccessIndex
	Column string // the column whose index the planner costed (informational)
}

// NewQuery returns an empty query with Limit unset.
func NewQuery() *Query { return &Query{Limit: -1} }

// Clone deep-copies the query.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	c := &Query{
		Distinct: q.Distinct,
		Limit:    q.Limit,
	}
	if q.Hint != nil {
		h := *q.Hint
		c.Hint = &h
	}
	for _, p := range q.Projections {
		c.Projections = append(c.Projections, SelectItem{Expr: cloneExpr(p.Expr), Alias: p.Alias})
	}
	for _, f := range q.From {
		c.From = append(c.From, TableRef{Name: f.Name, Alias: f.Alias, Sub: f.Sub.Clone()})
	}
	c.Where = cloneExpr(q.Where)
	for _, g := range q.GroupBy {
		c.GroupBy = append(c.GroupBy, cloneExpr(g))
	}
	c.Having = cloneExpr(q.Having)
	for _, o := range q.OrderBy {
		c.OrderBy = append(c.OrderBy, OrderItem{Expr: cloneExpr(o.Expr), Desc: o.Desc})
	}
	return c
}

func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return e.Clone()
}

// Clone implementations.

// Clone returns a copy of the column reference.
func (e *ColumnRef) Clone() Expr { c := *e; return &c }

// Clone returns a copy of the literal.
func (e *Literal) Clone() Expr { c := *e; return &c }

// Clone returns a copy of the parameter.
func (e *Param) Clone() Expr { c := *e; return &c }

// Clone returns a deep copy of the binary expression.
func (e *BinaryExpr) Clone() Expr {
	return &BinaryExpr{Op: e.Op, Left: e.Left.Clone(), Right: e.Right.Clone()}
}

// Clone returns a deep copy of the unary expression.
func (e *UnaryExpr) Clone() Expr { return &UnaryExpr{Neg: e.Neg, E: e.E.Clone()} }

// Clone returns a deep copy of the function call.
func (e *FuncCall) Clone() Expr {
	c := &FuncCall{Name: e.Name}
	for _, a := range e.Args {
		c.Args = append(c.Args, a.Clone())
	}
	return c
}

// Clone returns a deep copy of the aggregate.
func (e *AggExpr) Clone() Expr {
	c := &AggExpr{Func: e.Func, Star: e.Star, Distinct: e.Distinct}
	if e.Arg != nil {
		c.Arg = e.Arg.Clone()
	}
	return c
}

// Clone returns a deep copy of the CASE expression.
func (e *CaseExpr) Clone() Expr {
	c := &CaseExpr{}
	for _, w := range e.Whens {
		c.Whens = append(c.Whens, CaseWhen{Cond: w.Cond.Clone(), Then: w.Then.Clone()})
	}
	if e.Else != nil {
		c.Else = e.Else.Clone()
	}
	return c
}

// Clone returns a deep copy of the IN expression.
func (e *InExpr) Clone() Expr {
	c := &InExpr{E: e.E.Clone(), Not: e.Not, Sub: e.Sub.Clone()}
	for _, l := range e.List {
		c.List = append(c.List, l.Clone())
	}
	return c
}

// Clone returns a deep copy of the EXISTS expression.
func (e *ExistsExpr) Clone() Expr { return &ExistsExpr{Sub: e.Sub.Clone(), Not: e.Not} }

// Clone returns a deep copy of the scalar subquery.
func (e *SubqueryExpr) Clone() Expr { return &SubqueryExpr{Sub: e.Sub.Clone()} }

// Clone returns a deep copy of the BETWEEN expression.
func (e *BetweenExpr) Clone() Expr {
	return &BetweenExpr{E: e.E.Clone(), Lo: e.Lo.Clone(), Hi: e.Hi.Clone(), Not: e.Not}
}

// Clone returns a deep copy of the LIKE expression.
func (e *LikeExpr) Clone() Expr { return &LikeExpr{E: e.E.Clone(), Pattern: e.Pattern, Not: e.Not} }

// Clone returns a deep copy of the IS NULL expression.
func (e *IsNullExpr) Clone() Expr { return &IsNullExpr{E: e.E.Clone(), Not: e.Not} }

// Clone returns a copy of the interval literal.
func (e *IntervalExpr) Clone() Expr { c := *e; return &c }

// SQL rendering. The output parses back through the project's parser, which
// the planner relies on when materializing RemoteSQL text for logs.

// SQL renders the column reference.
func (e *ColumnRef) SQL() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

// SQL renders the literal.
func (e *Literal) SQL() string {
	switch e.Val.K {
	case value.Str:
		return "'" + strings.ReplaceAll(e.Val.S, "'", "''") + "'"
	case value.Date:
		return "date '" + value.FormatDate(e.Val.I) + "'"
	case value.Bytes:
		return e.Val.String()
	}
	return e.Val.String()
}

// SQL renders the parameter.
func (e *Param) SQL() string { return ":" + e.Name }

// SQL renders the binary expression with explicit parentheses.
func (e *BinaryExpr) SQL() string {
	return "(" + e.Left.SQL() + " " + e.Op.String() + " " + e.Right.SQL() + ")"
}

// SQL renders the unary expression.
func (e *UnaryExpr) SQL() string {
	if e.Neg {
		return "(-" + e.E.SQL() + ")"
	}
	return "(NOT " + e.E.SQL() + ")"
}

// SQL renders the function call.
func (e *FuncCall) SQL() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.SQL()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

// SQL renders the aggregate.
func (e *AggExpr) SQL() string {
	if e.Star {
		return "COUNT(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Func.String() + "(" + d + e.Arg.SQL() + ")"
}

// SQL renders the CASE expression.
func (e *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		b.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		b.WriteString(" ELSE " + e.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// SQL renders the IN expression.
func (e *InExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	if e.Sub != nil {
		return e.E.SQL() + not + " IN (" + e.Sub.SQL() + ")"
	}
	items := make([]string, len(e.List))
	for i, l := range e.List {
		items[i] = l.SQL()
	}
	return e.E.SQL() + not + " IN (" + strings.Join(items, ", ") + ")"
}

// SQL renders the EXISTS expression.
func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return not + "EXISTS (" + e.Sub.SQL() + ")"
}

// SQL renders the scalar subquery.
func (e *SubqueryExpr) SQL() string { return "(" + e.Sub.SQL() + ")" }

// SQL renders the BETWEEN expression.
func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.E.SQL() + not + " BETWEEN " + e.Lo.SQL() + " AND " + e.Hi.SQL()
}

// SQL renders the LIKE expression.
func (e *LikeExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.E.SQL() + not + " LIKE '" + e.Pattern + "'"
}

// SQL renders the IS NULL expression.
func (e *IsNullExpr) SQL() string {
	if e.Not {
		return e.E.SQL() + " IS NOT NULL"
	}
	return e.E.SQL() + " IS NULL"
}

// SQL renders the interval literal.
func (e *IntervalExpr) SQL() string {
	n := e.N
	return "interval '" + itoa(n) + "' " + e.Unit
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SQL renders the full query.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, p := range q.Projections {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Expr.SQL())
		if p.Alias != "" {
			b.WriteString(" AS " + p.Alias)
		}
	}
	b.WriteString(" FROM ")
	for i, f := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		if f.Sub != nil {
			b.WriteString("(" + f.Sub.SQL() + ")")
		} else {
			b.WriteString(f.Name)
		}
		if f.Alias != "" && f.Alias != f.Name {
			b.WriteString(" " + f.Alias)
		}
	}
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.SQL())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if q.Having != nil {
		b.WriteString(" HAVING " + q.Having.SQL())
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT " + itoa(int64(q.Limit)))
	}
	return b.String()
}
