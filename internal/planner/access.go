package planner

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Access-path costing. When Context.Indexes is on, the untrusted server
// maintains a DET hash index and an OPE ordered index over every encrypted
// column that carries those schemes, so a RemoteSQL part's scan cost is no
// longer fixed at "read the whole table": a sargable conjunct — `=`/`IN`
// on a `_det` column, `<`/`<=`/`>`/`>=`/`BETWEEN` on an `_ope` column —
// can restrict the scan to an estimated sel*rows row fetch.
//
// The crossover uses the same random-access penalty as the engine
// (engine.indexRowCost): an index row fetch costs IndexRowCost sequential
// rows, so the index wins iff sel*IndexRowCost < 1. The planner annotates
// the part (RemotePart.Access) and sets an advisory AccessHint on the
// remote query; the engine re-checks with exact posting counts, so a
// mis-estimate here can cost performance but never correctness. The hint
// rides the AST only — it does not render into SQL, and a remote server
// derives its own access path.

// IndexRowCost is the planner's charged ratio of an index row fetch to a
// sequential scan row, mirroring the engine's cost rule.
const IndexRowCost = 4

// annotateAccess picks the access path for one single-table RemoteSQL part
// and returns the factor to apply to its scan-byte estimate (1 = full
// scan). It records the decision on the part and, when an index is chosen,
// hints the query.
func (e *estimator) annotateAccess(part *RemotePart, s *scope, conjuncts []ast.Expr) float64 {
	col, sel, ok := e.bestIndexConjunct(s, conjuncts)
	if !ok || sel*IndexRowCost >= 1 {
		part.Access = "scan"
		return 1
	}
	part.Access = fmt.Sprintf("index(%s) est-sel=%.3g", col, sel)
	part.Query.Hint = &ast.AccessHint{Path: ast.AccessIndex, Column: col}
	return sel * IndexRowCost
}

// bestIndexConjunct returns the most selective index-answerable WHERE
// conjunct: the encrypted column it probes and its estimated selectivity.
func (e *estimator) bestIndexConjunct(s *scope, conjuncts []ast.Expr) (string, float64, bool) {
	bestCol, bestSel, found := "", 0.0, false
	for _, c := range conjuncts {
		col, ok := e.sargableCol(s, c)
		if !ok {
			continue
		}
		sel := e.selectivity(s, c)
		if !found || sel < bestSel {
			bestCol, bestSel, found = col, sel, true
		}
	}
	return bestCol, bestSel, found
}

// sargableCol reports the indexed column a conjunct can probe: `=`/`IN`
// need a DET hash index, ranges an OPE ordered index.
func (e *estimator) sargableCol(s *scope, c ast.Expr) (string, bool) {
	if s.singleEntry(c) == nil {
		return "", false
	}
	switch x := c.(type) {
	case *ast.BinaryExpr:
		var suffix string
		switch x.Op {
		case ast.OpEq:
			suffix = "_det"
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			suffix = "_ope"
		default:
			return "", false
		}
		if col, ok := encColConst(x.Left, x.Right, suffix); ok {
			return col, true
		}
		return encColConst(x.Right, x.Left, suffix)
	case *ast.BetweenExpr:
		if x.Not || !isConst(x.Lo) || !isConst(x.Hi) {
			return "", false
		}
		return encCol(x.E, "_ope")
	case *ast.InExpr:
		if x.Not || x.Sub != nil {
			return "", false
		}
		for _, el := range x.List {
			if !isConst(el) {
				return "", false
			}
		}
		return encCol(x.E, "_det")
	}
	return "", false
}

// encCol extracts a bare encrypted-column reference with the given scheme
// suffix.
func encCol(e ast.Expr, suffix string) (string, bool) {
	cr, ok := e.(*ast.ColumnRef)
	if !ok || !strings.HasSuffix(cr.Column, suffix) {
		return "", false
	}
	return cr.Column, true
}

// encColConst matches (column with suffix, constant) operand pair.
func encColConst(colSide, constSide ast.Expr, suffix string) (string, bool) {
	col, ok := encCol(colSide, suffix)
	if !ok || !isConst(constSide) {
		return "", false
	}
	return col, true
}

// isConst reports a literal or parameter operand — the forms the engine's
// own sargable extraction accepts.
func isConst(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Literal, *ast.Param:
		return true
	}
	return false
}
