package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/enc"
)

// Top-level planning: enumerate candidate unit subsets (§6.3 pruning keeps
// this tractable — the paper reports ~30 candidates per query), generate a
// plan for each with Algorithm 1, cost them with §6.4, and keep the best.

// Candidate is one costed plan alternative.
type Candidate struct {
	Plan     *Plan
	Units    []Unit // units enabled for this plan
	UnitMask uint64
}

// choiceUnit reports whether a unit represents a genuine runtime choice
// (aggregation strategy, pre-filtering) rather than a filter that is always
// worth pushing when available.
func choiceUnit(u *Unit) bool {
	switch {
	case u.ID == "agg:hom", u.ID == "agg:ope", u.ID == "agg:det",
		u.ID == "prefilter", u.ID == "groupby":
		return true
	case strings.HasSuffix(u.ID, "/sub:hom"), strings.HasSuffix(u.ID, "/sub:prefilter"):
		return true
	}
	return false
}

// unitAvailable reports whether every item of the unit exists in the design.
func unitAvailable(d *enc.Design, u *Unit) bool {
	for _, it := range u.Items {
		if !d.Contains(it) {
			return false
		}
	}
	return true
}

// hideable reports whether disabling a unit may remove this item from the
// trial design. Base-column DET/RND items are never hidden: they are the
// fetch baseline, cost no extra space, and disabling a filter unit must
// only disable the predicate pushdown, not the column's existence.
func hideable(it *enc.Item) bool {
	if it.IsPrecomputed() {
		return true
	}
	return it.Scheme != enc.DET && it.Scheme != enc.RND
}

// hiddenSignature canonically names the hideable-item set a unit-enabling
// assignment removes, so equivalent assignments plan only once.
func hiddenSignature(units []Unit, enabled func(int) bool) string {
	hidden := make(map[string]bool)
	for i := range units {
		if !enabled(i) {
			for j := range units[i].Items {
				if hideable(&units[i].Items[j]) {
					hidden[units[i].Items[j].Key()] = true
				}
			}
		}
	}
	for i := range units {
		if enabled(i) {
			for j := range units[i].Items {
				delete(hidden, units[i].Items[j].Key())
			}
		}
	}
	keys := make([]string, 0, len(hidden))
	for k := range hidden {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// trialDesign hides the items claimed exclusively by disabled units.
func trialDesign(d *enc.Design, units []Unit, enabled func(int) bool) *enc.Design {
	hidden := make(map[string]bool)
	for i := range units {
		if !enabled(i) {
			for j := range units[i].Items {
				if hideable(&units[i].Items[j]) {
					hidden[units[i].Items[j].Key()] = true
				}
			}
		}
	}
	for i := range units {
		if enabled(i) {
			for _, it := range units[i].Items {
				delete(hidden, it.Key())
			}
		}
	}
	trial := &enc.Design{
		GroupedAddition: d.GroupedAddition,
		MultiRowPacking: d.MultiRowPacking,
	}
	for _, it := range d.Items {
		if !hidden[it.Key()] {
			trial.Items = append(trial.Items, it)
		}
	}
	return trial
}

// BestPlan plans a prepared query against the context's design: filter
// units are pushed whenever available; choice units are enumerated.
func (ctx *Context) BestPlan(q *ast.Query) (*Plan, error) {
	units, err := ctx.ExtractUnits(q)
	if err != nil {
		return nil, err
	}
	// Only units whose items the design actually has participate.
	avail := make([]bool, len(units))
	var choices []int
	for i := range units {
		avail[i] = unitAvailable(ctx.Design, &units[i])
		if avail[i] && choiceUnit(&units[i]) {
			choices = append(choices, i)
		}
	}
	if len(choices) > 8 {
		choices = choices[:8]
	}

	var best *Plan
	bestCost := math.Inf(1)
	seen := make(map[string]bool)
	for mask := 0; mask < 1<<len(choices); mask++ {
		enabled := func(i int) bool {
			if !avail[i] {
				return false
			}
			for bi, ui := range choices {
				if ui == i {
					return mask&(1<<bi) != 0
				}
			}
			return true
		}
		// Distinct masks can induce the same trial design (units whose
		// items are all non-hideable); plan each design once.
		sig := hiddenSignature(units, enabled)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		plan, err := ctx.planWith(q, units, enabled)
		if err != nil {
			continue
		}
		if c := plan.EstTotal(); c < bestCost {
			bestCost = c
			best = plan
		}
	}
	if best == nil {
		return nil, fmt.Errorf("planner: no feasible plan (is the baseline DET design present?)")
	}
	return best, nil
}

// planWith generates and costs one plan for a unit-enabling assignment.
func (ctx *Context) planWith(q *ast.Query, units []Unit, enabled func(int) bool) (*Plan, error) {
	trial := trialDesign(ctx.Design, units, enabled)
	tctx := ctx.WithDesign(trial)
	plan, err := tctx.Generate(q)
	if err != nil {
		return nil, err
	}
	tctx.costPlan(plan)
	return plan, nil
}

// Candidates enumerates the designer's per-query plan alternatives
// (PowSet_i with the §6.3 pruning): the power set of choice units crossed
// with filter-unit drop patterns (all on, each off, all off).
func (ctx *Context) Candidates(q *ast.Query, units []Unit) []Candidate {
	var choices, filters []int
	for i := range units {
		if choiceUnit(&units[i]) {
			choices = append(choices, i)
		} else {
			filters = append(filters, i)
		}
	}
	if len(choices) > 8 {
		choices = choices[:8]
	}

	// Filter patterns: all-on, each-one-off, all-off.
	patterns := [][]bool{allPattern(len(filters), true)}
	for i := range filters {
		p := allPattern(len(filters), true)
		p[i] = false
		patterns = append(patterns, p)
	}
	if len(filters) > 0 {
		patterns = append(patterns, allPattern(len(filters), false))
	}

	var out []Candidate
	seen := make(map[string]bool)
	for mask := 0; mask < 1<<len(choices); mask++ {
		for _, fp := range patterns {
			var full uint64
			enabled := func(i int) bool {
				for bi, ci := range choices {
					if ci == i {
						return mask&(1<<bi) != 0
					}
				}
				for fi, fj := range filters {
					if fj == i {
						return fp[fi]
					}
				}
				return false
			}
			for i := range units {
				if enabled(i) {
					full |= 1 << uint(i)
				}
			}
			sig := hiddenSignature(units, enabled)
			if seen[sig] {
				continue
			}
			seen[sig] = true
			plan, err := ctx.planWith(q, units, enabled)
			if err != nil {
				continue
			}
			var en []Unit
			for i := range units {
				if enabled(i) {
					en = append(en, units[i])
				}
			}
			out = append(out, Candidate{Plan: plan, Units: en, UnitMask: full})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Plan.EstTotal() < out[j].Plan.EstTotal() })
	return out
}

func allPattern(n int, v bool) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = v
	}
	return p
}

// CostPlan fills the plan's §6.4 estimates, including subplans.
func (ctx *Context) CostPlan(p *Plan) { ctx.costPlan(p) }

// costPlan fills the plan's §6.4 estimates, including subplans.
func (ctx *Context) costPlan(p *Plan) {
	est := &estimator{ctx: ctx}
	p.EstServer, p.EstTransfer, p.EstClient = 0, 0, 0
	for _, sp := range p.Subplans {
		ctx.costPlan(sp.Plan)
		p.EstServer += sp.Plan.EstServer
		p.EstTransfer += sp.Plan.EstTransfer
		p.EstClient += sp.Plan.EstClient
	}
	if p.Remote != nil {
		server, transfer, client := est.costPart(p.Remote, p.Prefilter)
		p.EstServer += server
		p.EstTransfer += transfer
		p.EstClient += client
	}
}

// costPart estimates one RemoteSQL part.
func (e *estimator) costPart(part *RemotePart, prefilter bool) (server, transfer, client float64) {
	ctx := e.ctx
	q := part.Query
	s, err := ctx.newScope(q)
	if err != nil {
		return 0, 0, 0
	}
	conjuncts := ast.Conjuncts(q.Where)
	inputRows := e.joinEstimate(s, q.From, conjuncts)
	coverage := 1.0
	for _, c := range conjuncts {
		if entry := s.singleEntry(c); entry != nil {
			coverage *= e.selectivity(s, c)
		}
	}

	var scanBytes float64
	for _, f := range q.From {
		scanBytes += e.encTableBytes(f.Name)
	}
	if ctx.Indexes && len(q.From) == 1 {
		// Index-vs-scan: a sargable conjunct can shrink the scan to an
		// index fetch of the estimated matching rows (access.go).
		scanBytes *= e.annotateAccess(part, s, conjuncts)
	}
	server = scanBytes/e.ctx.Cost.Cfg.DiskBytesPerSec +
		inputRows*e.ctx.Cost.Cfg.ServerRowNanos/1e9

	if len(q.GroupBy) > 0 {
		groups := 1.0
		for _, k := range q.GroupBy {
			if ndv := e.exprNDV(s, k); ndv > 0 {
				groups *= float64(ndv)
			} else {
				groups *= 50
			}
		}
		groups = math.Min(groups, math.Max(1, inputRows/2))
		rowsPerGroup := math.Max(1, inputRows/groups)
		for i := range part.Outputs {
			o := &part.Outputs[i]
			switch o.Mode {
			case OutHomSum:
				rpc := e.homRowsPerCipher(o.HomTable)
				packs := math.Ceil(rowsPerGroup / rpc)
				partials := packs
				if coverage >= 0.95 {
					partials = math.Min(packs, 2)
				}
				cb := float64(ctx.Cost.HomCipherBytes)
				transfer += groups * (cb + partials*(cb+8) + 6)
				client += groups * (1 + partials) * ctx.Cost.HomDec
				server += inputRows / rpc * ctx.Cost.HomMul
				// Pack reads from the ciphertext file.
				server += inputRows / rpc * cb / ctx.Cost.Cfg.DiskBytesPerSec
			case OutConcatAgg:
				w := ctx.valueWidth(&Output{Mode: OutDecrypt, Item: o.Item})
				transfer += inputRows * (w + 6)
				client += inputRows * ctx.Cost.decCost(o)
			default:
				transfer += groups * ctx.valueWidth(o)
				client += groups * ctx.Cost.decCost(o)
			}
		}
		if prefilter && q.Having != nil {
			// The conservative filter drops most non-qualifying groups
			// before transfer/decryption.
			transfer *= 0.2
			client *= 0.2
		}
		part.EstRows = groups
	} else {
		var width, dec float64
		for i := range part.Outputs {
			width += ctx.valueWidth(&part.Outputs[i])
			dec += ctx.Cost.decCost(&part.Outputs[i])
		}
		transfer += inputRows * (width + 4)
		client += inputRows * dec
		part.EstRows = inputRows
	}
	part.EstBytes = transfer
	transfer = transfer * 8 * ctx.Cost.Cfg.CompressionRatio / ctx.Cost.Cfg.NetBitsPerSec
	return server, transfer, client
}

// homRowsPerCipher estimates rows per Paillier ciphertext for a table.
func (e *estimator) homRowsPerCipher(table string) float64 {
	if !e.ctx.Design.MultiRowPacking {
		return 1
	}
	k := 0
	for _, it := range e.ctx.Design.TableItems(table) {
		if it.Scheme == enc.HOM {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	plainBits := float64(e.ctx.Cost.HomCipherBytes) * 8 / 2
	rowBits := float64(k) * 45 // ~24 value bits + ~21 padding per field
	return math.Max(1, math.Floor(plainBits/rowBits))
}
