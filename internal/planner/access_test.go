package planner

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

// TestAccessAnnotationEquality checks that with Context.Indexes on, a
// selective DET equality conjunct is costed as an index probe: the part is
// annotated and the remote query carries an advisory AccessIndex hint —
// which must not leak into the rendered SQL.
func TestAccessAnnotationEquality(t *testing.T) {
	ctx := testContext(t)
	ctx.Indexes = true
	q := prep(t, `SELECT o_id FROM orders WHERE o_cust = 'ca'`)
	plan, err := ctx.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Remote == nil {
		t.Fatal("no remote part")
	}
	if !strings.HasPrefix(plan.Remote.Access, "index(o_cust_det") {
		t.Errorf("Access = %q, want index(o_cust_det...)", plan.Remote.Access)
	}
	h := plan.Remote.Query.Hint
	if h == nil || h.Path != ast.AccessIndex || h.Column != "o_cust_det" {
		t.Errorf("Hint = %+v, want AccessIndex on o_cust_det", h)
	}
	if sql := plan.Remote.Query.SQL(); strings.Contains(sql, "index") || strings.Contains(sql, "hint") {
		t.Errorf("hint leaked into SQL: %s", sql)
	}
	if !strings.Contains(plan.Describe(), "access index(") {
		t.Errorf("Describe misses access line:\n%s", plan.Describe())
	}
}

// TestAccessAnnotationOff checks the default: with Context.Indexes off, no
// part is annotated and no hint is attached, so designer and experiment
// cost figures are untouched.
func TestAccessAnnotationOff(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_id FROM orders WHERE o_cust = 'ca'`)
	plan, err := ctx.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Remote.Access != "" {
		t.Errorf("Access = %q, want empty with Indexes off", plan.Remote.Access)
	}
	if plan.Remote.Query.Hint != nil {
		t.Errorf("Hint = %+v, want nil with Indexes off", plan.Remote.Query.Hint)
	}
}

// TestAccessScanForUnselective checks the crossover: a bare comparison
// (estimated selectivity 1/3, above the 1/IndexRowCost crossover) is
// costed as a scan with no hint.
func TestAccessScanForUnselective(t *testing.T) {
	ctx := testContext(t)
	ctx.Indexes = true
	q := prep(t, `SELECT o_id FROM orders WHERE o_total > 100`)
	plan, err := ctx.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Remote.Access != "scan" {
		t.Errorf("Access = %q, want scan", plan.Remote.Access)
	}
	if plan.Remote.Query.Hint != nil {
		t.Errorf("Hint = %+v, want nil for a scan", plan.Remote.Query.Hint)
	}
}

// TestAccessAnnotationBetween checks the OPE side: BETWEEN (estimated
// selectivity 0.15) crosses below 1/IndexRowCost and is costed as an
// ordered-index range probe.
func TestAccessAnnotationBetween(t *testing.T) {
	ctx := testContext(t)
	ctx.Indexes = true
	q := prep(t, `SELECT o_id FROM orders WHERE o_total BETWEEN 100 AND 200`)
	plan, err := ctx.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(plan.Remote.Access, "index(o_total_ope") {
		t.Errorf("Access = %q, want index(o_total_ope...)", plan.Remote.Access)
	}
}

// TestAccessLowersServerCost checks the cost model's output moves: the same
// selective query must cost less server time with index costing on.
func TestAccessLowersServerCost(t *testing.T) {
	off := testContext(t)
	q := prep(t, `SELECT o_id FROM orders WHERE o_id = 7`)
	planOff, err := off.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	on := testContext(t)
	on.Indexes = true
	planOn, err := on.BestPlan(prep(t, `SELECT o_id FROM orders WHERE o_id = 7`))
	if err != nil {
		t.Fatal(err)
	}
	if planOn.EstServer >= planOff.EstServer {
		t.Errorf("EstServer with index %g, without %g — index costing did not lower it",
			planOn.EstServer, planOff.EstServer)
	}
}

// TestAccessHintSurvivesClone checks the hint rides plan-template cloning
// (the plan cache rebinds parameters on cloned queries).
func TestAccessHintSurvivesClone(t *testing.T) {
	q := &ast.Query{Hint: &ast.AccessHint{Path: ast.AccessIndex, Column: "x_det"}}
	c := q.Clone()
	if c.Hint == nil || c.Hint.Column != "x_det" {
		t.Fatalf("Clone dropped hint: %+v", c.Hint)
	}
	c.Hint.Column = "y_det"
	if q.Hint.Column != "x_det" {
		t.Error("Clone aliased the hint")
	}
}
