package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/enc"
)

// Plan generation — GENERATEQUERYPLAN (Algorithm 1). Given a prepared
// query and a (trial) design, build the split execution plan:
//
//   - every WHERE conjunct that REWRITESERVER can translate moves into the
//     RemoteSQL query; the rest stay in the client-side residual query and
//     force their referenced columns into the fetch list (lines 6-13);
//   - GROUP BY moves to the server when every key has a DET encryption and
//     every aggregate has a server representation — PAILLIER_SUM, a
//     server-side MIN/MAX over OPE, COUNT, or GROUP_CONCAT with a
//     client-side fold (lines 14-31);
//   - otherwise the server returns filtered raw rows and the client
//     groups/aggregates locally;
//   - subqueries that cannot be pushed are fetched by their own sub-plans
//     and evaluated in the residual query (the recursion of line 2 /
//     Figure 3's second RemoteSQL branch).

// genState carries naming counters through one plan generation.
type genState struct {
	ctx     *Context
	nTemp   int
	used    *enc.Design // items actually used (BestSet accumulator)
	failure error
}

func (g *genState) tempName() string {
	n := fmt.Sprintf("r%d", g.nTemp)
	g.nTemp++
	return n
}

// note records that an item was used by the plan.
func (g *genState) note(items ...*enc.Item) {
	for _, it := range items {
		if it != nil {
			g.used.Add(*it)
		}
	}
}

// Generate builds a plan for a prepared query against ctx.Design.
func (ctx *Context) Generate(q *ast.Query) (*Plan, error) {
	g := &genState{ctx: ctx, used: &enc.Design{}}
	plan, err := g.genQuery(q)
	if err != nil {
		return nil, err
	}
	plan.UsedItems = g.used.Items
	return plan, nil
}

// genQuery plans one query block.
func (g *genState) genQuery(q *ast.Query) (*Plan, error) {
	ctx := g.ctx
	s, err := ctx.newScope(q)
	if err != nil {
		return nil, err
	}

	// Derived tables that survived flattening (grouped subqueries like
	// Q17's avg-per-part) become subplans; their aliases resolve locally.
	plan := &Plan{}
	localOnly := make(map[string]bool) // FROM refs evaluated locally
	aliasToTemp := make(map[string]string)
	var remoteFrom []ast.TableRef
	for i := range q.From {
		f := &q.From[i]
		if f.Sub != nil {
			sub, err := g.genQuery(f.Sub)
			if err != nil {
				return nil, err
			}
			name := g.tempName()
			plan.Subplans = append(plan.Subplans, &Subplan{Name: name, Plan: sub})
			localOnly[f.RefName()] = true
			aliasToTemp[f.RefName()] = name
			continue
		}
		remoteFrom = append(remoteFrom, ast.TableRef{Name: f.Name, Alias: f.RefName()})
	}

	// Classify WHERE conjuncts: pushable to the server, or local.
	var pushed []ast.Expr
	var local []ast.Expr
	for _, c := range ast.Conjuncts(q.Where) {
		if touchesLocalRef(c, localOnly) || ast.HasSubquery(c) {
			// Subquery predicates and predicates over local derived
			// tables are evaluated client-side. (Fully-pushable EXISTS/IN
			// are the exception, handled below.)
			if !ast.HasSubquery(c) || touchesLocalRef(c, localOnly) {
				local = append(local, c)
				continue
			}
			if sc, ok := ctx.rewritePred(s, c); ok {
				pushed = append(pushed, sc)
				g.notePredItems(s, c)
				continue
			}
			local = append(local, c)
			continue
		}
		if sc, ok := ctx.rewritePred(s, c); ok {
			pushed = append(pushed, sc)
			g.notePredItems(s, c)
			continue
		}
		local = append(local, c)
	}

	// Decide server vs. client grouping.
	grouped := len(q.GroupBy) > 0 || len(queryAggregates(q).sums) > 0 ||
		len(queryAggregates(q).minmax) > 0 || len(queryAggregates(q).counts) > 0 ||
		hasAnyAggregate(q)
	serverGroup := false
	if grouped && len(local) == 0 && len(localOnly) == 0 {
		serverGroup = g.canServerGroup(s, q)
	}

	if serverGroup {
		return g.genServerGrouped(plan, s, q, remoteFrom, pushed)
	}
	return g.genClientResidual(plan, s, q, remoteFrom, pushed, local, aliasToTemp, localOnly)
}

// hasAnyAggregate reports whether the query needs an aggregation phase.
func hasAnyAggregate(q *ast.Query) bool {
	for _, p := range q.Projections {
		if ast.HasAggregate(p.Expr) {
			return true
		}
	}
	return q.Having != nil || len(q.GroupBy) > 0
}

// touchesLocalRef reports whether an expression references a FROM entry
// that is evaluated locally (derived-table subplan).
func touchesLocalRef(e ast.Expr, localOnly map[string]bool) bool {
	if len(localOnly) == 0 {
		return false
	}
	found := false
	ast.Walk(e, func(x ast.Expr) {
		if c, ok := x.(*ast.ColumnRef); ok && c.Table != "" && localOnly[c.Table] {
			found = true
		}
	})
	return found
}

// notePredItems records the items a pushed predicate used (re-running the
// candidate collector; the rewrite itself already validated feasibility).
func (g *genState) notePredItems(s *scope, c ast.Expr) {
	if items, ok := g.ctx.candidatePred(s, c); ok {
		for i := range items {
			g.note(&items[i])
		}
	}
}

// canServerGroup checks Algorithm 1's lines 14-21: every GROUP BY key has
// a DET form and every aggregate has a server representation.
func (g *genState) canServerGroup(s *scope, q *ast.Query) bool {
	ctx := g.ctx
	for _, k := range q.GroupBy {
		if _, _, ok := ctx.rewriteValue(s, k, enc.DET); !ok {
			return false
		}
	}
	aggs := queryAggregates(q)
	for _, a := range aggs.sums {
		if _, ok := g.sumRepresentation(s, a); !ok {
			return false
		}
	}
	for _, a := range aggs.minmax {
		if _, _, ok := ctx.rewriteValue(s, a.Arg, enc.OPE); !ok {
			// MIN/MAX can also ride GROUP_CONCAT if a decryptable form
			// exists.
			if _, _, ok := ctx.rewriteValue(s, a.Arg, anySchemes...); !ok {
				return false
			}
		}
	}
	for _, a := range aggs.counts {
		if a.Star {
			continue
		}
		if a.Distinct {
			if _, _, ok := ctx.rewriteValue(s, a.Arg, enc.DET); !ok {
				return false
			}
			continue
		}
		if _, _, ok := ctx.rewriteValue(s, a.Arg, anySchemes...); !ok {
			return false
		}
	}
	// Non-aggregate projection/having/order expressions must be functions
	// of the group keys.
	keySQL := make(map[string]bool)
	for _, k := range q.GroupBy {
		keySQL[k.SQL()] = true
	}
	check := func(e ast.Expr) bool { return coveredByKeys(e, keySQL) }
	for _, p := range q.Projections {
		if !check(p.Expr) {
			return false
		}
	}
	if q.Having != nil && !check(q.Having) {
		return false
	}
	for _, o := range q.OrderBy {
		if !check(o.Expr) {
			return false
		}
	}
	return true
}

// coveredByKeys reports whether every column reference in e sits beneath a
// group key or inside an aggregate.
func coveredByKeys(e ast.Expr, keySQL map[string]bool) bool {
	if e == nil {
		return true
	}
	if keySQL[e.SQL()] {
		return true
	}
	switch x := e.(type) {
	case *ast.ColumnRef:
		return false
	case *ast.AggExpr:
		return true
	case *ast.SubqueryExpr, *ast.ExistsExpr:
		return true // subqueries are evaluated locally with their own scope
	case *ast.InExpr:
		if !coveredByKeys(x.E, keySQL) {
			return false
		}
		for _, l := range x.List {
			if !coveredByKeys(l, keySQL) {
				return false
			}
		}
		return true
	}
	ok := true
	ast.VisitChildren(e, func(c ast.Expr) {
		if !coveredByKeys(c, keySQL) {
			ok = false
		}
	})
	return ok
}

// sumRep describes how one SUM aggregate runs on the server.
type sumRep struct {
	mode     OutputMode // OutHomSum, OutConcatAgg, or OutPlain (const sums)
	arg      ast.Expr   // unwrapped argument (single-table expression)
	cond     ast.Expr   // optional rewritten condition (conditional sums)
	item     *enc.Item  // HOM item (homsum) or decryptable item (concat)
	homTable string
	entryRef string // FROM alias owning the argument
}

// sumRepresentation chooses the server form of SUM(a): grouped homomorphic
// addition when a HOM item is available; GROUP_CONCAT of a decryptable
// encryption otherwise; and plain server arithmetic for constant summands
// (SUM(CASE WHEN p THEN 1 ELSE 0 END) is a conditional count — the count
// is no more revealing than COUNT(*)).
func (g *genState) sumRepresentation(s *scope, a *ast.AggExpr) (*sumRep, bool) {
	ctx := g.ctx
	arg := a.Arg
	var cond ast.Expr
	if e, p := caseSumShape(arg); e != nil {
		pc, ok := ctx.rewritePred(s, p)
		if !ok {
			return nil, false
		}
		cond = pc
		arg = e
		g.notePredItems(s, p)
	}
	if lit, ok := arg.(*ast.Literal); ok && lit.Val.IsNumeric() {
		return &sumRep{mode: OutPlain, arg: arg, cond: cond}, true
	}
	entry := s.singleEntry(arg)
	if entry == nil {
		return nil, false
	}
	if it, ok := ctx.findItem(entry.table, arg, enc.HOM); ok {
		g.note(it)
		return &sumRep{mode: OutHomSum, arg: arg, cond: cond, item: it, homTable: entry.table, entryRef: entry.ref}, true
	}
	if _, it, ok := ctx.rewriteValue(s, arg, enc.DET, enc.RND); ok {
		g.note(it)
		return &sumRep{mode: OutConcatAgg, arg: arg, cond: cond, item: it, entryRef: entry.ref}, true
	}
	return nil, false
}
