package planner

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/value"
)

// OutputMode says how the client turns one RemoteSQL output column into a
// plaintext value.
type OutputMode uint8

// Output modes.
const (
	// OutPlain passes the server value through (COUNT results, row counts).
	OutPlain OutputMode = iota
	// OutDecrypt decrypts a single ciphertext with the item's key.
	OutDecrypt
	// OutHomSum decodes a PAILLIER_SUM wire blob and extracts one packed
	// column's total (grouped homomorphic addition, §5.3).
	OutHomSum
	// OutConcatAgg decodes a GROUP_CONCAT blob, decrypts each element, and
	// folds them with Agg — the paper's GROUP() operator with client-side
	// aggregation.
	OutConcatAgg
)

func (m OutputMode) String() string {
	switch m {
	case OutPlain:
		return "plain"
	case OutDecrypt:
		return "decrypt"
	case OutHomSum:
		return "homsum"
	case OutConcatAgg:
		return "concat"
	}
	return "?"
}

// Output describes one column of a RemoteSQL result.
type Output struct {
	Name string // column name in the client-side temp table
	Mode OutputMode
	Item *enc.Item   // OutDecrypt / OutConcatAgg: decryption key item
	Agg  ast.AggFunc // OutConcatAgg: client-side fold
	// OutHomSum: which packed expression to extract.
	HomTable string
	HomExpr  string
	Kind     value.Kind // plaintext kind of the produced column
}

// RemotePart is one RemoteSQL operator: a query the untrusted server
// executes over encrypted data, whose decrypted output materializes as a
// client-side temp table.
type RemotePart struct {
	Name    string // temp table name ("r0", "r1", ...)
	Query   *ast.Query
	Outputs []Output

	// Cost-model estimates, filled by costPlan.
	EstRows  float64
	EstBytes float64
	// Access is the costed access path ("scan" or "index(col) est-sel=…"),
	// filled by costPlan when Context.Indexes is on; empty otherwise.
	Access string
}

// Plan is a split client/server execution plan.
type Plan struct {
	// Subplans materialize temp tables needed by Local (sub-fetches for
	// locally-evaluated subqueries, unflattenable derived tables). They
	// run before Remote.
	Subplans []*Subplan
	// Remote is the main RemoteSQL part (nil only for pathological plans).
	Remote *RemotePart
	// Local is the residual query over the temp tables; nil when the
	// decrypted remote output is the final result.
	Local *ast.Query

	// UsedItems is the BestSet: every ⟨value, scheme⟩ item the plan relies
	// on (the designer unions these across queries).
	UsedItems []enc.Item
	// Prefilter notes that §5.4 conservative pre-filtering was applied.
	Prefilter bool
	// NoCache marks the plan untemplatable: some pass baked a
	// parameter-derived constant into the plan in a form rebinding cannot
	// reproduce (e.g. the §5.4 pre-filter's count threshold). The plan is
	// still valid for this execution; it just must not be cached by shape.
	NoCache bool

	// Cost-model estimates (seconds), filled by costPlan.
	EstServer   float64
	EstTransfer float64
	EstClient   float64
}

// EstTotal is the plan's total estimated time.
func (p *Plan) EstTotal() float64 { return p.EstServer + p.EstTransfer + p.EstClient }

// EstCost returns the total cost as a duration.
func (p *Plan) EstCost() time.Duration {
	return time.Duration(p.EstTotal() * float64(time.Second))
}

// Subplan is a named child plan whose result becomes a temp table.
type Subplan struct {
	Name string
	Plan *Plan
}

// Describe renders a human-readable plan tree (for logs and the examples).
func (p *Plan) Describe() string {
	var b strings.Builder
	p.describe(&b, 0)
	return b.String()
}

func (p *Plan) describe(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, sp := range p.Subplans {
		fmt.Fprintf(b, "%sSubplan %s:\n", ind, sp.Name)
		sp.Plan.describe(b, depth+1)
	}
	if p.Remote != nil {
		fmt.Fprintf(b, "%sRemoteSQL [%s]: %s\n", ind, p.Remote.Name, p.Remote.Query.SQL())
		if p.Remote.Access != "" {
			fmt.Fprintf(b, "%s  access %s\n", ind, p.Remote.Access)
		}
		for _, o := range p.Remote.Outputs {
			fmt.Fprintf(b, "%s  out %s (%s)\n", ind, o.Name, o.Mode)
		}
	}
	if p.Local != nil {
		fmt.Fprintf(b, "%sLocal: %s\n", ind, p.Local.SQL())
	}
	if p.Prefilter {
		fmt.Fprintf(b, "%sPre-filter: enabled\n", ind)
	}
}

// AllParts returns every RemotePart in the plan tree (subplans first).
func (p *Plan) AllParts() []*RemotePart {
	var parts []*RemotePart
	for _, sp := range p.Subplans {
		parts = append(parts, sp.Plan.AllParts()...)
	}
	if p.Remote != nil {
		parts = append(parts, p.Remote)
	}
	return parts
}
