package planner

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/value"
)

// genServerGrouped builds the plan when GROUP BY executes on the server
// (Algorithm 1 lines 14-26): the RemoteSQL groups by DET keys and computes
// each aggregate's server representation; the client decrypts one row per
// group and applies HAVING/ORDER BY/LIMIT locally.
func (g *genState) genServerGrouped(plan *Plan, s *scope, q *ast.Query, remoteFrom []ast.TableRef, pushed []ast.Expr) (*Plan, error) {
	ctx := g.ctx
	remote := ast.NewQuery()
	remote.From = remoteFrom
	remote.Where = ast.AndAll(pushed)

	part := &RemotePart{Name: g.tempName(), Query: remote}
	mapping := make(map[string]string) // plaintext expr SQL -> temp column

	// Group keys.
	for i, k := range q.GroupBy {
		sv, it, ok := ctx.rewriteValue(s, k, enc.DET)
		if !ok {
			return nil, fmt.Errorf("planner: group key %s lost its DET form", k.SQL())
		}
		g.note(it)
		name := fmt.Sprintf("k%d", i)
		remote.GroupBy = append(remote.GroupBy, sv)
		remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv.Clone(), Alias: name})
		part.Outputs = append(part.Outputs, Output{Name: name, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
		mapping[k.SQL()] = name
	}

	// Aggregates.
	aggs := queryAggregates(q)
	nAgg := 0
	addOut := func(srcSQL string, proj ast.Expr, out Output) {
		out.Name = fmt.Sprintf("a%d", nAgg)
		nAgg++
		remote.Projections = append(remote.Projections, ast.SelectItem{Expr: proj, Alias: out.Name})
		part.Outputs = append(part.Outputs, out)
		mapping[srcSQL] = out.Name
	}

	for _, a := range aggs.sums {
		rep, ok := g.sumRepresentation(s, a)
		if !ok {
			return nil, fmt.Errorf("planner: sum %s lost its server form", a.SQL())
		}
		switch rep.mode {
		case OutPlain:
			// Constant summand: the server sums literals guarded by the
			// rewritten predicate.
			summand := rep.arg.Clone()
			if rep.cond != nil {
				summand = &ast.CaseExpr{
					Whens: []ast.CaseWhen{{Cond: rep.cond, Then: summand}},
					Else:  &ast.Literal{Val: value.NewInt(0)},
				}
			}
			addOut(a.SQL(), &ast.AggExpr{Func: ast.AggSum, Arg: summand}, Output{Mode: OutPlain, Kind: value.Int})
		case OutHomSum:
			rowID := ast.Expr(&ast.ColumnRef{Table: rep.entryRef, Column: enc.RowIDColumn})
			if rep.cond != nil {
				rowID = &ast.CaseExpr{
					Whens: []ast.CaseWhen{{Cond: rep.cond, Then: rowID}},
					Else:  &ast.Literal{Val: value.NewNull()},
				}
			}
			homExpr := stripQualifiers(rep.arg).SQL()
			call := &ast.FuncCall{Name: "paillier_sum", Args: []ast.Expr{
				&ast.Literal{Val: value.NewStr(homPlaceholder(rep.homTable, homExpr))},
				rowID,
			}}
			addOut(a.SQL(), call, Output{
				Mode: OutHomSum, HomTable: rep.homTable, HomExpr: homExpr, Kind: value.Int,
			})
		case OutConcatAgg:
			encArg, _, ok := ctx.rewriteValue(s, rep.arg, enc.DET, enc.RND)
			if !ok {
				return nil, fmt.Errorf("planner: concat arg %s lost its form", rep.arg.SQL())
			}
			arg := encArg
			if rep.cond != nil {
				arg = &ast.CaseExpr{
					Whens: []ast.CaseWhen{{Cond: rep.cond, Then: encArg}},
					Else:  &ast.Literal{Val: value.NewNull()},
				}
			}
			call := &ast.FuncCall{Name: "group_concat", Args: []ast.Expr{arg}}
			addOut(a.SQL(), call, Output{
				Mode: OutConcatAgg, Item: rep.item, Agg: ast.AggSum, Kind: rep.item.PlainKind,
			})
		}
	}

	for _, a := range aggs.minmax {
		if sv, it, ok := ctx.rewriteValue(s, a.Arg, enc.OPE); ok {
			g.note(it)
			addOut(a.SQL(), &ast.AggExpr{Func: a.Func, Arg: sv}, Output{
				Mode: OutDecrypt, Item: it, Kind: it.PlainKind,
			})
			continue
		}
		sv, it, ok := ctx.rewriteValue(s, a.Arg, enc.DET, enc.RND)
		if !ok {
			return nil, fmt.Errorf("planner: min/max %s lost its form", a.SQL())
		}
		g.note(it)
		addOut(a.SQL(), &ast.FuncCall{Name: "group_concat", Args: []ast.Expr{sv}}, Output{
			Mode: OutConcatAgg, Item: it, Agg: a.Func, Kind: it.PlainKind,
		})
	}

	for _, a := range aggs.counts {
		switch {
		case a.Star:
			addOut(a.SQL(), &ast.AggExpr{Func: ast.AggCount, Star: true}, Output{Mode: OutPlain, Kind: value.Int})
		case a.Distinct:
			sv, it, ok := ctx.rewriteValue(s, a.Arg, enc.DET)
			if !ok {
				return nil, fmt.Errorf("planner: count distinct %s lost its form", a.SQL())
			}
			g.note(it)
			addOut(a.SQL(), &ast.AggExpr{Func: ast.AggCount, Arg: sv, Distinct: true}, Output{Mode: OutPlain, Kind: value.Int})
		default:
			sv, it, ok := ctx.rewriteValue(s, a.Arg, anySchemes...)
			if !ok {
				return nil, fmt.Errorf("planner: count %s lost its form", a.SQL())
			}
			g.note(it)
			addOut(a.SQL(), &ast.AggExpr{Func: ast.AggCount, Arg: sv}, Output{Mode: OutPlain, Kind: value.Int})
		}
	}

	// Conservative pre-filtering (§5.4): HAVING SUM(e) > const becomes a
	// server-side superset filter MAX(e_ope) > Enc(m) OR COUNT(*) > c/m.
	if e, ok := prefilterTarget(q); ok && ctx.EnablePrefilter {
		if lit, isLit := q.Having.(*ast.BinaryExpr).Right.(*ast.Literal); isLit && lit.Val.IsNumeric() {
			if sv, it, pok := ctx.rewriteValue(s, e, enc.OPE); pok {
				m := g.prefilterM(s, e)
				if m > 0 {
					encM, eok := ctx.encConst(it, value.NewInt(m), "")
					if eok {
						if lit.Src != "" {
							// The count threshold below derives from the HAVING
							// literal's value; a template could not recompute it
							// by re-encrypting parameters alone.
							plan.NoCache = true
						}
						g.note(it)
						// A qualifying group either has a value above m, or
						// its count must exceed c/m (sum <= count*m); floor
						// keeps the integer comparison conservative.
						threshold := int64(math.Floor(lit.Val.AsFloat() / float64(m)))
						remote.Having = &ast.BinaryExpr{
							Op: ast.OpOr,
							Left: &ast.BinaryExpr{
								Op: ast.OpGt, Left: &ast.AggExpr{Func: ast.AggMax, Arg: sv}, Right: encM,
							},
							Right: &ast.BinaryExpr{
								Op: ast.OpGt, Left: &ast.AggExpr{Func: ast.AggCount, Star: true},
								Right: &ast.Literal{Val: value.NewInt(threshold)},
							},
						}
						plan.Prefilter = true
					}
				}
			}
		}
	}

	plan.Remote = part

	// Local residual: HAVING (exact), projections, ORDER BY, LIMIT.
	local := ast.NewQuery()
	local.From = []ast.TableRef{{Name: part.Name}}
	local.Distinct = q.Distinct
	local.Limit = q.Limit
	for _, p := range q.Projections {
		local.Projections = append(local.Projections, ast.SelectItem{
			Expr: substituteMapped(p.Expr, mapping), Alias: p.Alias,
		})
	}
	if q.Having != nil {
		h := substituteMapped(q.Having, mapping)
		h, err := g.localizeSubqueries(plan, h, s)
		if err != nil {
			return nil, err
		}
		local.Where = h
	}
	for _, o := range q.OrderBy {
		local.OrderBy = append(local.OrderBy, ast.OrderItem{Expr: substituteMapped(o.Expr, mapping), Desc: o.Desc})
	}
	// Hoist localized-subquery subplans built for HAVING.
	plan.Local = local
	return plan, nil
}

// homPlaceholder is the group-name placeholder the client resolves against
// the encrypted DB's metadata before sending the RemoteSQL.
func homPlaceholder(table, exprSQL string) string { return "@hom:" + table + ":" + exprSQL }

// ParseHomPlaceholder inverts homPlaceholder.
func ParseHomPlaceholder(s string) (table, exprSQL string, ok bool) {
	const prefix = "@hom:"
	if len(s) < len(prefix) || s[:len(prefix)] != prefix {
		return "", "", false
	}
	rest := s[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			return rest[:i], rest[i+1:], true
		}
	}
	return "", "", false
}

// prefilterM estimates m, the per-row maximum of e (§5.4 uses the column's
// max collected during setup).
func (g *genState) prefilterM(s *scope, e ast.Expr) int64 {
	entry := s.singleEntry(e)
	if entry == nil {
		return 0
	}
	if cr, ok := e.(*ast.ColumnRef); ok {
		return g.ctx.Stats.Table(entry.table).Col(cr.Column).Max
	}
	return 0
}

// substituteMapped replaces (top-down) any subexpression whose SQL is in
// the mapping with a reference to the corresponding temp column.
func substituteMapped(e ast.Expr, mapping map[string]string) ast.Expr {
	if e == nil {
		return nil
	}
	if name, ok := mapping[e.SQL()]; ok {
		return &ast.ColumnRef{Column: name}
	}
	// Clone-with-substituted-children via RewriteExpr is bottom-up, which
	// would miss parent matches; recurse manually top-down instead.
	switch x := e.(type) {
	case *ast.BinaryExpr:
		return &ast.BinaryExpr{Op: x.Op, Left: substituteMapped(x.Left, mapping), Right: substituteMapped(x.Right, mapping)}
	case *ast.UnaryExpr:
		return &ast.UnaryExpr{Neg: x.Neg, E: substituteMapped(x.E, mapping)}
	case *ast.FuncCall:
		n := &ast.FuncCall{Name: x.Name}
		for _, a := range x.Args {
			n.Args = append(n.Args, substituteMapped(a, mapping))
		}
		return n
	case *ast.CaseExpr:
		n := &ast.CaseExpr{}
		for _, w := range x.Whens {
			n.Whens = append(n.Whens, ast.CaseWhen{Cond: substituteMapped(w.Cond, mapping), Then: substituteMapped(w.Then, mapping)})
		}
		if x.Else != nil {
			n.Else = substituteMapped(x.Else, mapping)
		}
		return n
	case *ast.BetweenExpr:
		return &ast.BetweenExpr{E: substituteMapped(x.E, mapping), Lo: substituteMapped(x.Lo, mapping), Hi: substituteMapped(x.Hi, mapping), Not: x.Not}
	case *ast.InExpr:
		n := &ast.InExpr{E: substituteMapped(x.E, mapping), Sub: x.Sub, Not: x.Not}
		for _, l := range x.List {
			n.List = append(n.List, substituteMapped(l, mapping))
		}
		return n
	case *ast.IsNullExpr:
		return &ast.IsNullExpr{E: substituteMapped(x.E, mapping), Not: x.Not}
	}
	return e.Clone()
}
