package planner

import (
	"math"

	"time"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/value"
)

// CostModel implements §6.4: plan cost = server execution time + network
// transfer time + client post-processing (decryption) time. Per-operation
// decryption costs are profiled with the real schemes when the client
// starts (the paper runs a profiler "when MONOMI is first launched").
type CostModel struct {
	Cfg netsim.Config

	// Client-side per-operation decryption costs, seconds.
	DetInt float64 // DET integer (Feistel)
	DetStr float64 // DET string (wide-block)
	Ope    float64 // OPE (binary-search replay)
	Rnd    float64 // RND (AES-CTR)
	HomDec float64 // Paillier decryption (modular exponentiation)

	// Server-side Paillier modular multiplication cost, seconds.
	HomMul float64

	// HomCipherBytes is the serialized Paillier ciphertext width.
	HomCipherBytes int
}

// DefaultCostModel returns calibrated constants for a modern x86 core with
// a 1,024-bit Paillier modulus; use ProfileCostModel for measured values.
func DefaultCostModel(cfg netsim.Config) *CostModel {
	return &CostModel{
		Cfg:            cfg,
		DetInt:         300e-9,
		DetStr:         1e-6,
		Ope:            40e-6,
		Rnd:            500e-9,
		HomDec:         2e-3,
		HomMul:         5e-6,
		HomCipherBytes: 256,
	}
}

// ProfileCostModel measures the per-operation costs with the key store's
// actual schemes (§6.4's startup profiler).
func ProfileCostModel(ks *enc.KeyStore, cfg netsim.Config) *CostModel {
	m := DefaultCostModel(cfg)
	m.HomCipherBytes = ks.Paillier().CiphertextSize()

	it := enc.ColumnItem("prof", "x", enc.DET, value.Int)
	det := ks.Det(&it)
	m.DetInt = timeOp(2000, func(i int) { det.DecryptInt64(uint64(i)) })

	itS := enc.ColumnItem("prof", "s", enc.DET, value.Str)
	detS := ks.Det(&itS)
	ct := detS.EncryptString("sixteen byte str")
	m.DetStr = timeOp(1000, func(i int) { detS.DecryptBytes(ct) })

	itO := enc.ColumnItem("prof", "o", enc.OPE, value.Int)
	opeS := ks.Ope(&itO)
	oct := opeS.MustEncrypt(123456)
	m.Ope = timeOp(200, func(i int) { opeS.Decrypt(oct) }) //nolint:errcheck

	itR := enc.ColumnItem("prof", "r", enc.RND, value.Int)
	rnd, err := ks.Rnd(&itR)
	if err == nil {
		rct, _ := rnd.Encrypt(make([]byte, 8))
		m.Rnd = timeOp(2000, func(i int) { rnd.Decrypt(rct) }) //nolint:errcheck
	}

	pk := ks.Paillier()
	hct, err := pk.EncryptInt64(42)
	if err == nil {
		m.HomDec = timeOp(20, func(i int) { pk.Decrypt(hct) }) //nolint:errcheck
		m.HomMul = timeOp(200, func(i int) { pk.AddCipher(hct, hct) })
	}
	return m
}

func timeOp(n int, f func(int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f(i)
	}
	return time.Since(start).Seconds() / float64(n)
}

// decCost returns the client cost of producing one plaintext value from an
// output column (ConcatAgg and HomSum are charged per element/decryption by
// the callers).
func (m *CostModel) decCost(o *Output) float64 {
	switch o.Mode {
	case OutPlain:
		return 0
	case OutDecrypt, OutConcatAgg:
		if o.Item == nil {
			return 0
		}
		switch o.Item.Scheme {
		case enc.DET:
			if o.Item.PlainKind == value.Str {
				return m.DetStr
			}
			return m.DetInt
		case enc.OPE:
			return m.Ope
		case enc.RND:
			return m.Rnd
		}
		return m.DetInt
	case OutHomSum:
		return m.HomDec
	}
	return 0
}

// valueWidth estimates the wire width of one output value.
func (ctx *Context) valueWidth(o *Output) float64 {
	switch o.Mode {
	case OutPlain:
		return 8
	case OutDecrypt:
		if o.Item == nil {
			return 8
		}
		switch o.Item.Scheme {
		case enc.DET:
			if o.Item.PlainKind == value.Str {
				return float64(ctx.itemAvgLen(o.Item))
			}
			return 8
		case enc.OPE:
			return 16
		case enc.RND:
			return float64(ctx.itemAvgLen(o.Item)) + 16
		}
	}
	return 8
}

// itemAvgLen estimates an item's plaintext width from column stats.
func (ctx *Context) itemAvgLen(it *enc.Item) int {
	if cr, ok := it.Expr.(*ast.ColumnRef); ok {
		return maxInt(8, ctx.Stats.Table(it.Table).Col(cr.Column).AvgLen)
	}
	return 8
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// estimator produces cardinality and size estimates from plaintext stats.
type estimator struct{ ctx *Context }

// selectivity estimates the fraction of rows a plaintext predicate keeps.
func (e *estimator) selectivity(s *scope, pred ast.Expr) float64 {
	switch x := pred.(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case ast.OpAnd:
			return e.selectivity(s, x.Left) * e.selectivity(s, x.Right)
		case ast.OpOr:
			a, b := e.selectivity(s, x.Left), e.selectivity(s, x.Right)
			return a + b - a*b
		case ast.OpEq:
			if ndv := e.sideNDV(s, x.Left, x.Right); ndv > 0 {
				return 1 / float64(ndv)
			}
			return 0.05
		case ast.OpNe:
			return 0.9
		default:
			return 0.33
		}
	case *ast.BetweenExpr:
		return 0.15
	case *ast.InExpr:
		if x.Sub != nil {
			return 0.3
		}
		sel := 0.0
		for range x.List {
			if ndv := e.exprNDV(s, x.E); ndv > 0 {
				sel += 1 / float64(ndv)
			} else {
				sel += 0.05
			}
		}
		return math.Min(sel, 1)
	case *ast.LikeExpr:
		return 0.05
	case *ast.IsNullExpr:
		return 0.05
	case *ast.ExistsExpr:
		if x.Not {
			return 0.25
		}
		return 0.75
	case *ast.UnaryExpr:
		if !x.Neg {
			return 1 - e.selectivity(s, x.E)
		}
	}
	return 0.33
}

// sideNDV finds the NDV of the column side of a comparison.
func (e *estimator) sideNDV(s *scope, l, r ast.Expr) int64 {
	if n := e.exprNDV(s, l); n > 0 {
		return n
	}
	return e.exprNDV(s, r)
}

// exprNDV estimates an expression's distinct-value count.
func (e *estimator) exprNDV(s *scope, x ast.Expr) int64 {
	switch n := x.(type) {
	case *ast.ColumnRef:
		if entry, ok := s.entryFor(n); ok && entry.table != "" {
			base, _ := StripEncSuffix(n.Column)
			return e.ctx.Stats.Table(entry.table).Col(base).NDV
		}
	case *ast.FuncCall:
		if n.Name == "extract_year" {
			return 7 // TPC-H date range spans 1992-1998
		}
		if n.Name == "substring" {
			return 25
		}
	}
	return 0
}

// joinEstimate approximates the row count of a FROM join after applying
// the pushed single/multi-table filters: TPC-H joins are foreign-key
// chains, so the filtered fact table dominates.
func (e *estimator) joinEstimate(s *scope, from []ast.TableRef, conjuncts []ast.Expr) float64 {
	// Per-table selectivity for single-table conjuncts; cross-table
	// non-join predicates multiply the result.
	perTable := make(map[string]float64)
	cross := 1.0
	for _, c := range conjuncts {
		entry := s.singleEntry(c)
		if entry != nil {
			perTable[entry.ref] = orDefault(perTable[entry.ref], 1) * e.selectivity(s, c)
			continue
		}
		if b, ok := c.(*ast.BinaryExpr); ok && b.Op == ast.OpEq {
			_, lIsCol := b.Left.(*ast.ColumnRef)
			_, rIsCol := b.Right.(*ast.ColumnRef)
			if lIsCol && rIsCol {
				continue // FK join edge: absorbed by the max() below
			}
		}
		cross *= e.selectivity(s, c)
	}
	est := 0.0
	for _, f := range from {
		rows := float64(e.ctx.Stats.Table(f.Name).Rows)
		sel := orDefault(perTable[f.RefName()], 1)
		if v := rows * sel; v > est {
			est = v
		}
	}
	return math.Max(1, est*cross)
}

func orDefault(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

// encTableBytes estimates a table's encrypted heap size under the current
// design (row items only; HOM packs live in the ciphertext files).
func (e *estimator) encTableBytes(table string) float64 {
	ts := e.ctx.Stats.Table(table)
	rowBytes := 24.0 // per-row overhead
	hasHom := false
	for _, it := range e.ctx.Design.TableItems(table) {
		switch it.Scheme {
		case enc.HOM:
			hasHom = true
		case enc.DET:
			rowBytes += float64(e.ctx.itemAvgLen(&it))
		case enc.OPE:
			rowBytes += 16
		case enc.RND:
			rowBytes += float64(e.ctx.itemAvgLen(&it)) + 16
		case enc.SEARCH:
			rowBytes += float64(e.ctx.itemAvgLen(&it)) * 1.4
		}
	}
	if hasHom {
		rowBytes += 8 // row_id
	}
	return rowBytes * float64(ts.Rows)
}
