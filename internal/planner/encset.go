package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/value"
)

// EncSet extraction (§6.2 step 1): for every operation in a query, the
// ⟨value, scheme⟩ items that would let it run on the server. Items are
// grouped into *units* (§6.3): a unit's items are useful only all together
// — an OPE column for half of an OR clause cannot avoid fetching the whole
// table — so both the designer and the runtime planner enumerate subsets at
// unit granularity instead of the full power set of items.

// Unit is one independently-toggleable group of encrypted items.
type Unit struct {
	ID    string
	Items []enc.Item
}

// ExtractUnits computes the query's units. The query must be prepared
// (parameters bound, constants folded, AVG lowered, derived tables
// flattened).
func (ctx *Context) ExtractUnits(q *ast.Query) ([]Unit, error) {
	s, err := ctx.newScope(q)
	if err != nil {
		return nil, err
	}
	var units []Unit
	add := func(id string, items []enc.Item, ok bool) {
		if ok && len(items) > 0 {
			units = append(units, Unit{ID: id, Items: dedupItems(items)})
		}
	}

	// WHERE conjuncts: one unit each (top-level conjunctions are separate
	// units; anything inside an OR lives or dies as a whole).
	for i, c := range ast.Conjuncts(q.Where) {
		items, ok := ctx.candidatePred(s, c)
		add(fmt.Sprintf("where:%d", i), items, ok)
		// Subqueries inside the conjunct contribute their own units
		// (their fetch filters benefit even when the conjunct itself
		// stays on the client).
		for _, sub := range ast.Subqueries(c) {
			subUnits, err := ctx.extractSubqueryUnits(sub, s, fmt.Sprintf("where:%d", i))
			if err != nil {
				return nil, err
			}
			units = append(units, subUnits...)
		}
	}

	// GROUP BY unit: DET for every key.
	if len(q.GroupBy) > 0 {
		var items []enc.Item
		ok := true
		for _, k := range q.GroupBy {
			it, kok := ctx.candidateValue(s, k, enc.DET)
			if !kok {
				ok = false
				break
			}
			items = append(items, it)
		}
		add("groupby", items, ok)
	}

	// Aggregates.
	aggs := queryAggregates(q)
	var homItems, opeItems, detItems []enc.Item
	homOK := len(aggs.sums) > 0
	for _, a := range aggs.sums {
		items, ok := ctx.candidateSum(s, a)
		if !ok {
			homOK = false
			break
		}
		homItems = append(homItems, items...)
	}
	add("agg:hom", homItems, homOK)
	for _, a := range aggs.minmax {
		if it, ok := ctx.candidateValue(s, a.Arg, enc.OPE); ok {
			opeItems = append(opeItems, it)
		}
	}
	add("agg:ope", opeItems, len(opeItems) > 0)
	// DET precomputations of aggregate arguments enable GROUP_CONCAT
	// (client-side aggregation) for compound arguments.
	for _, a := range aggs.sums {
		arg := sumArgExpr(a)
		if _, isCol := arg.(*ast.ColumnRef); isCol {
			continue // base columns have baseline DET already
		}
		if it, ok := ctx.candidateValue(s, arg, enc.DET); ok {
			detItems = append(detItems, it)
		}
	}
	add("agg:det", detItems, len(detItems) > 0)

	// Pre-filter unit (§5.4): HAVING SUM(e) > const wants an OPE of e.
	if e, ok := prefilterTarget(q); ok {
		if it, pok := ctx.candidateValue(s, e, enc.OPE); pok {
			add("prefilter", []enc.Item{it}, true)
		}
	}
	return units, nil
}

// extractSubqueryUnits recurses into an expression subquery: its own WHERE
// conjuncts form units (pushable into the sub-fetch or the server-side
// EXISTS), qualified by the parent unit id.
func (ctx *Context) extractSubqueryUnits(sub *ast.Query, outer *scope, prefix string) ([]Unit, error) {
	inner, err := ctx.newScope(sub)
	if err != nil {
		return nil, err
	}
	s := inner.chain(outer)
	var units []Unit
	for i, c := range ast.Conjuncts(sub.Where) {
		if items, ok := ctx.candidatePred(s, c); ok && len(items) > 0 {
			units = append(units, Unit{ID: fmt.Sprintf("%s/sub:%d", prefix, i), Items: dedupItems(items)})
		}
		for _, nested := range ast.Subqueries(c) {
			nu, err := ctx.extractSubqueryUnits(nested, s, fmt.Sprintf("%s/sub:%d", prefix, i))
			if err != nil {
				return nil, err
			}
			units = append(units, nu...)
		}
	}
	// Aggregated scalar subqueries benefit from HOM of their sum args.
	var homItems []enc.Item
	ok := false
	for _, a := range queryAggregates(sub).sums {
		if items, sok := ctx.candidateSum(s, a); sok {
			homItems = append(homItems, items...)
			ok = true
		}
	}
	if ok {
		units = append(units, Unit{ID: prefix + "/sub:hom", Items: dedupItems(homItems)})
	}
	// Grouped subqueries with HAVING SUM(e) > const want the §5.4
	// pre-filter's OPE item (Q18's IN-subquery is the paper's showcase).
	if e, pok := prefilterTarget(sub); pok {
		if it, cok := ctx.candidateValue(s, e, enc.OPE); cok {
			units = append(units, Unit{ID: prefix + "/sub:prefilter", Items: []enc.Item{it}})
		}
	}
	// DET items of the subquery's group keys let its GROUP BY run on the
	// server when the subquery is planned as an independent query.
	if len(sub.GroupBy) > 0 {
		var keys []enc.Item
		kok := true
		for _, k := range sub.GroupBy {
			it, o := ctx.candidateValue(s, k, enc.DET)
			if !o {
				kok = false
				break
			}
			keys = append(keys, it)
		}
		if kok {
			units = append(units, Unit{ID: prefix + "/sub:groupby", Items: dedupItems(keys)})
		}
	}
	return units, nil
}

// aggSet partitions a query's aggregates.
type aggSet struct {
	sums   []*ast.AggExpr // SUM (AVG already lowered)
	minmax []*ast.AggExpr
	counts []*ast.AggExpr
}

// queryAggregates collects the aggregates of a query block.
func queryAggregates(q *ast.Query) aggSet {
	var out aggSet
	seen := make(map[string]bool)
	collect := func(e ast.Expr) {
		for _, a := range ast.Aggregates(e) {
			if seen[a.SQL()] {
				continue
			}
			seen[a.SQL()] = true
			switch a.Func {
			case ast.AggSum:
				out.sums = append(out.sums, a)
			case ast.AggMin, ast.AggMax:
				out.minmax = append(out.minmax, a)
			case ast.AggCount, ast.AggAvg:
				out.counts = append(out.counts, a)
			}
		}
	}
	for _, p := range q.Projections {
		collect(p.Expr)
	}
	if q.Having != nil {
		collect(q.Having)
	}
	for _, o := range q.OrderBy {
		collect(o.Expr)
	}
	return out
}

// sumArgExpr unwraps SUM(CASE WHEN p THEN e ELSE 0 END) to e; otherwise
// returns the argument itself.
func sumArgExpr(a *ast.AggExpr) ast.Expr {
	if c, p := caseSumShape(a.Arg); c != nil {
		_ = p
		return c
	}
	return a.Arg
}

// caseSumShape matches CASE WHEN p THEN e [ELSE 0] END, returning (e, p).
func caseSumShape(arg ast.Expr) (ast.Expr, ast.Expr) {
	c, ok := arg.(*ast.CaseExpr)
	if !ok || len(c.Whens) != 1 {
		return nil, nil
	}
	if c.Else != nil {
		l, ok := c.Else.(*ast.Literal)
		if !ok || l.Val.AsInt() != 0 {
			return nil, nil
		}
	}
	return c.Whens[0].Then, c.Whens[0].Cond
}

// candidateSum returns the items that let SUM(arg) run under grouped
// homomorphic addition: a HOM item of the (unwrapped) argument plus, for
// conditional sums, the predicate's items.
func (ctx *Context) candidateSum(s *scope, a *ast.AggExpr) ([]enc.Item, bool) {
	arg := a.Arg
	var items []enc.Item
	if e, p := caseSumShape(arg); e != nil {
		predItems, ok := ctx.candidatePred(s, p)
		if !ok {
			return nil, false
		}
		items = append(items, predItems...)
		arg = e
	}
	if lit, ok := arg.(*ast.Literal); ok && lit.Val.IsNumeric() {
		return items, true // constant summand: predicate items suffice
	}
	it, ok := ctx.candidateValue(s, arg, enc.HOM)
	if !ok {
		return nil, false
	}
	return append(items, it), true
}

// prefilterTarget matches HAVING SUM(e) > const (possibly const is a scalar
// subquery that the client computes first), the §5.4 pre-filtering shape.
func prefilterTarget(q *ast.Query) (ast.Expr, bool) {
	if q.Having == nil || len(q.GroupBy) == 0 {
		return nil, false
	}
	b, ok := q.Having.(*ast.BinaryExpr)
	if !ok || (b.Op != ast.OpGt && b.Op != ast.OpGe) {
		return nil, false
	}
	sum, ok := b.Left.(*ast.AggExpr)
	if !ok || sum.Func != ast.AggSum || sum.Arg == nil {
		return nil, false
	}
	switch b.Right.(type) {
	case *ast.Literal, *ast.SubqueryExpr, *ast.Param:
		return sum.Arg, true
	}
	return nil, false
}

// candidateValue proposes the item that would encrypt a value expression
// under the given scheme (creating precomputed-expression items for
// compound single-table expressions).
func (ctx *Context) candidateValue(s *scope, e ast.Expr, scheme enc.Scheme) (enc.Item, bool) {
	entry := s.singleEntry(e)
	if entry == nil {
		return enc.Item{}, false
	}
	kind := ctx.inferKind(s, e)
	switch scheme {
	case enc.OPE, enc.HOM:
		if kind != value.Int && kind != value.Date {
			return enc.Item{}, false
		}
		// Packed Paillier plaintexts hold non-negative integers only;
		// columns with negative values (c_acctbal) cannot be HOM items.
		if scheme == enc.HOM {
			if cr, ok := e.(*ast.ColumnRef); ok {
				if ctx.Stats.Table(entry.table).Col(cr.Column).Min < 0 {
					return enc.Item{}, false
				}
			}
		}
	case enc.SEARCH:
		if kind != value.Str {
			return enc.Item{}, false
		}
	}
	it := enc.Item{
		Table:     entry.table,
		Expr:      stripQualifiers(e),
		Scheme:    scheme,
		PlainKind: kind,
	}
	if scheme == enc.DET {
		if cr, ok := it.Expr.(*ast.ColumnRef); ok {
			if g, ok := ctx.joinGroup(entry.table, cr.Column); ok {
				it.JoinGroup = g
			}
		}
	}
	return it, true
}

// candidatePred mirrors rewritePred, returning the items that would make
// the predicate server-evaluable.
func (ctx *Context) candidatePred(s *scope, e ast.Expr) ([]enc.Item, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		return nil, x.Val.K == value.Bool

	case *ast.BinaryExpr:
		switch x.Op {
		case ast.OpAnd, ast.OpOr:
			l, ok := ctx.candidatePred(s, x.Left)
			if !ok {
				return nil, false
			}
			r, ok := ctx.candidatePred(s, x.Right)
			if !ok {
				return nil, false
			}
			return append(l, r...), true
		case ast.OpEq, ast.OpNe:
			if items, ok := ctx.candidateCompare(s, x, enc.DET); ok {
				return items, true
			}
			return ctx.candidateWholePred(s, e)
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			if items, ok := ctx.candidateCompare(s, x, enc.OPE); ok {
				return items, true
			}
			return ctx.candidateWholePred(s, e)
		}
		return nil, false

	case *ast.UnaryExpr:
		if x.Neg {
			return nil, false
		}
		return ctx.candidatePred(s, x.E)

	case *ast.BetweenExpr:
		if _, lok := constVal(x.Lo); !lok {
			return nil, false
		}
		if _, hok := constVal(x.Hi); !hok {
			return nil, false
		}
		if it, ok := ctx.candidateValue(s, x.E, enc.OPE); ok {
			return []enc.Item{it}, true
		}
		return ctx.candidateWholePred(s, e)

	case *ast.InExpr:
		if x.Sub != nil {
			return ctx.candidateInSubquery(s, x)
		}
		for _, item := range x.List {
			if _, ok := constVal(item); !ok {
				return nil, false
			}
		}
		if it, ok := ctx.candidateValue(s, x.E, enc.DET); ok {
			return []enc.Item{it}, true
		}
		return nil, false

	case *ast.LikeExpr:
		if _, ok := patternWord(x.Pattern); !ok {
			return nil, false
		}
		if it, ok := ctx.candidateValue(s, x.E, enc.SEARCH); ok {
			return []enc.Item{it}, true
		}
		return nil, false

	case *ast.IsNullExpr:
		if it, ok := ctx.candidateValue(s, x.E, enc.DET); ok {
			return []enc.Item{it}, true
		}
		return nil, false

	case *ast.ExistsExpr:
		return ctx.candidateExists(s, x.Sub)
	}
	return nil, false
}

// candidateCompare proposes items for a binary comparison.
func (ctx *Context) candidateCompare(s *scope, x *ast.BinaryExpr, scheme enc.Scheme) ([]enc.Item, bool) {
	_, lok := constVal(x.Left)
	_, rok := constVal(x.Right)
	// A scalar subquery side behaves like a constant: the client computes
	// it first and re-plans with the literal substituted (multi-round
	// execution, §8.2's "intermediate results several times").
	if _, ok := x.Left.(*ast.SubqueryExpr); ok {
		lok = true
	}
	if _, ok := x.Right.(*ast.SubqueryExpr); ok {
		rok = true
	}
	switch {
	case lok && rok:
		return nil, false
	case lok || rok:
		side := x.Left
		if lok {
			side = x.Right
		}
		if ast.HasAggregate(side) {
			return nil, false // HAVING SUM(..) > c is never directly pushable
		}
		if it, ok := ctx.candidateValue(s, side, scheme); ok {
			return []enc.Item{it}, true
		}
		return nil, false
	default:
		lcr, lok := x.Left.(*ast.ColumnRef)
		rcr, rok := x.Right.(*ast.ColumnRef)
		if scheme != enc.DET || !lok || !rok {
			return nil, false
		}
		lit, ok := ctx.candidateValue(s, lcr, enc.DET)
		if !ok {
			return nil, false
		}
		rit, ok := ctx.candidateValue(s, rcr, enc.DET)
		if !ok {
			return nil, false
		}
		if lit.KeyLabel() != rit.KeyLabel() {
			return nil, false // no join group registered for this pair
		}
		return []enc.Item{lit, rit}, true
	}
}

// candidateWholePred proposes a DET-encrypted precomputed boolean for a
// single-table predicate (§5.1).
func (ctx *Context) candidateWholePred(s *scope, e ast.Expr) ([]enc.Item, bool) {
	if ast.HasSubquery(e) || ast.HasAggregate(e) {
		return nil, false
	}
	entry := s.singleEntry(e)
	if entry == nil {
		return nil, false
	}
	// Every non-column leaf must be constant for per-row precomputation.
	it := enc.Item{Table: entry.table, Expr: stripQualifiers(e), Scheme: enc.DET, PlainKind: value.Bool}
	return []enc.Item{it}, true
}

// candidateExists proposes items for pushing a whole EXISTS subquery.
func (ctx *Context) candidateExists(outer *scope, sub *ast.Query) ([]enc.Item, bool) {
	if len(sub.GroupBy) > 0 || sub.Having != nil {
		return nil, false
	}
	inner, err := ctx.newScope(sub)
	if err != nil {
		return nil, false
	}
	for _, en := range inner.entries {
		if en.table == "" {
			return nil, false
		}
	}
	s := inner.chain(outer)
	var items []enc.Item
	for _, c := range ast.Conjuncts(sub.Where) {
		ci, ok := ctx.candidatePred(s, c)
		if !ok {
			return nil, false
		}
		items = append(items, ci...)
	}
	return items, true
}

// candidateInSubquery proposes items for pushing e IN (subquery).
func (ctx *Context) candidateInSubquery(s *scope, x *ast.InExpr) ([]enc.Item, bool) {
	lhsIt, ok := ctx.candidateValue(s, x.E, enc.DET)
	if !ok {
		return nil, false
	}
	sub := x.Sub
	if len(sub.Projections) != 1 || len(sub.GroupBy) > 0 || sub.Having != nil {
		// Aggregated IN subqueries (Q18) are handled by pre-filtering and
		// client-side evaluation, not direct pushdown.
		return nil, false
	}
	items, ok := ctx.candidateExists(s, sub)
	if !ok {
		return nil, false
	}
	inner, err := ctx.newScope(sub)
	if err != nil {
		return nil, false
	}
	projIt, ok := ctx.candidateValue(inner.chain(s), sub.Projections[0].Expr, enc.DET)
	if !ok || projIt.KeyLabel() != lhsIt.KeyLabel() {
		return nil, false
	}
	return append(items, lhsIt, projIt), true
}

// inferKind derives the plaintext kind of an expression.
func (ctx *Context) inferKind(s *scope, e ast.Expr) value.Kind {
	switch x := e.(type) {
	case *ast.ColumnRef:
		return s.kindOfChained(x)
	case *ast.Literal:
		return x.Val.K
	case *ast.BinaryExpr:
		if x.Op.IsComparison() || x.Op == ast.OpAnd || x.Op == ast.OpOr {
			return value.Bool
		}
		if x.Op == ast.OpDiv {
			return value.Float
		}
		lk := ctx.inferKind(s, x.Left)
		rk := ctx.inferKind(s, x.Right)
		if lk == value.Float || rk == value.Float {
			return value.Float
		}
		return value.Int
	case *ast.UnaryExpr:
		if x.Neg {
			return ctx.inferKind(s, x.E)
		}
		return value.Bool
	case *ast.FuncCall:
		switch x.Name {
		case "extract_year", "extract_month", "extract_day":
			return value.Int
		case "substring":
			return value.Str
		}
		return value.Int
	case *ast.CaseExpr:
		return ctx.inferKind(s, x.Whens[0].Then)
	case *ast.BetweenExpr, *ast.LikeExpr, *ast.IsNullExpr, *ast.InExpr, *ast.ExistsExpr:
		return value.Bool
	case *ast.AggExpr:
		if x.Func == ast.AggCount {
			return value.Int
		}
		if x.Arg != nil {
			return ctx.inferKind(s, x.Arg)
		}
		return value.Int
	}
	return value.Int
}

// kindOfChained resolves a column kind walking outer scopes.
func (s *scope) kindOfChained(c *ast.ColumnRef) value.Kind {
	for cur := s; cur != nil; cur = cur.parent {
		if k := cur.kindOf(c); k != value.Null {
			return k
		}
	}
	return value.Null
}

// joinGroup looks up the registered join group for table.col.
func (ctx *Context) joinGroup(table, col string) (string, bool) {
	g, ok := ctx.JoinGroups[table+"."+col]
	return g, ok
}

// dedupItems removes duplicate items (by identity key).
func dedupItems(items []enc.Item) []enc.Item {
	seen := make(map[string]bool, len(items))
	var out []enc.Item
	for _, it := range items {
		k := it.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, it)
		}
	}
	return out
}
