// Package planner implements MONOMI's core contribution: split
// client/server execution of analytical queries over encrypted data.
//
// GENERATEQUERYPLAN (Algorithm 1 in the paper) partitions a query into a
// RemoteSQL part that the untrusted server can evaluate over ciphertexts
// with the available encryption schemes, plus local operators (decrypt,
// filter, group, sort) on the trusted client. The planner enumerates the
// power set of the query's encryption units (§6.3 pruning), costs each
// resulting plan with the §6.4 model (server I/O + network transfer +
// client decryption), and picks the cheapest — which is also the inner loop
// of the physical designer (§6.2).
package planner

import (
	"repro/internal/storage"
	"repro/internal/value"
)

// ColStats summarizes one plaintext column for selectivity and width
// estimation (the paper collects these from a user-supplied data sample).
type ColStats struct {
	Kind     value.Kind
	NDV      int64 // number of distinct values
	Min, Max int64 // numeric bounds (valid for int/date columns)
	AvgLen   int   // average encoded width in bytes
}

// TableStats summarizes one table.
type TableStats struct {
	Rows  int64
	Bytes int64
	Cols  map[string]*ColStats
}

// Stats holds per-table statistics for the whole plaintext schema.
type Stats struct {
	Tables map[string]*TableStats
}

// CollectStats derives the statistics the planner and designer need from
// each table's insert-time column metadata (an NDV sketch plus width and
// numeric bounds, maintained by storage on every Insert) — no row
// enumeration, so it costs the same whether the backend is a Go slice or a
// paged segment file on disk. In the paper this runs over a representative
// sample during setup; here the catalog is the sample.
func CollectStats(cat *storage.Catalog) *Stats {
	s := &Stats{Tables: make(map[string]*TableStats)}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue
		}
		ts := &TableStats{
			Rows:  int64(t.NumRows()),
			Bytes: t.Bytes,
			Cols:  make(map[string]*ColStats),
		}
		for ci, col := range t.Schema.Cols {
			cm := t.ColMeta(ci)
			cs := &ColStats{Kind: colKind(col.Type), NDV: cm.NDV}
			if cs.NDV == 0 {
				cs.NDV = 1
			}
			if cm.HasNum {
				cs.Min, cs.Max = cm.Min, cm.Max
			}
			if ts.Rows > 0 {
				cs.AvgLen = int(cm.TotalLen / ts.Rows)
			}
			ts.Cols[col.Name] = cs
		}
		s.Tables[name] = ts
	}
	return s
}

// colKind maps a storage column type to a value kind.
func colKind(t storage.ColType) value.Kind {
	switch t {
	case storage.TInt:
		return value.Int
	case storage.TFloat:
		return value.Float
	case storage.TStr:
		return value.Str
	case storage.TDate:
		return value.Date
	case storage.TBytes:
		return value.Bytes
	case storage.TBool:
		return value.Bool
	}
	return value.Null
}

// Table returns the stats for a table, or an empty default.
func (s *Stats) Table(name string) *TableStats {
	if ts, ok := s.Tables[name]; ok {
		return ts
	}
	return &TableStats{Rows: 1000, Bytes: 100000, Cols: map[string]*ColStats{}}
}

// Col returns the stats for a column, or a generic default.
func (ts *TableStats) Col(name string) *ColStats {
	if cs, ok := ts.Cols[name]; ok {
		return cs
	}
	return &ColStats{Kind: value.Int, NDV: 100, AvgLen: 8}
}
