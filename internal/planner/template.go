package planner

// Plan templates back the client's repeated-query fast path. MONOMI's
// designer/planner split makes the plan for a query *shape* deterministic
// given the design, so two executions of the same shape differ only in the
// constants they bind. A Template captures that: the generated plan tree
// with every parameter-derived literal lifted back out into a named
// parameter, plus the rebind sites saying how each future value re-enters
// the plan (encrypted under a specific item for RemoteSQL, plaintext for
// the local residual). Executing a cached shape is then Rebind + run; no
// parsing, no rewriting, no costing.
//
// Soundness rests on provenance tags: PrepareTagged stamps every bound
// literal occurrence with a unique Literal.Src, the rewriter propagates the
// tag through encryption (encConst), and Parameterize refuses to build a
// template unless every occurrence survives planning as a rebindable site.
// Passes that absorb a constant irrecoverably — constant folding, design
// expression matching, HOM packing placeholders, the §5.4 pre-filter's
// derived threshold (Plan.NoCache) — therefore make the shape uncacheable
// rather than silently wrong.

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/value"
)

// EncSite is one rebindable encrypted-constant site in a template's remote
// queries: each execution encrypts the source parameter's value under Item
// and binds it to Param. Encryption is deterministic for the DET/OPE
// constants the rewriter plants, so a rebound query is byte-identical to a
// from-scratch plan of the same values.
type EncSite struct {
	Tag      string    // provenance tag of the bound occurrence
	SrcParam string    // caller-visible parameter name
	Param    string    // parameter slot in the templated query (":cpN")
	Item     *enc.Item // key item the constant encrypts under
}

// LocalSite is one rebindable plaintext-constant site in a template's local
// (client-side residual) queries.
type LocalSite struct {
	Tag      string
	SrcParam string
	Param    string // ":lpN"
}

// Template is a reusable plan for a query shape.
type Template struct {
	Plan  *Plan
	Enc   []EncSite
	Local []LocalSite
}

// Parameterize converts a freshly generated plan into a template. It deep-
// clones the plan tree, replaces every provenance-tagged literal with a
// parameter node, and checks coverage: every slot PrepareTagged bound must
// reappear at one or more sites. Returns ok=false when the shape is not
// soundly templatable; the caller then runs (and caches nothing for) the
// concrete plan.
func Parameterize(plan *Plan, slots []BoundSlot) (*Template, bool) {
	if plan == nil || plan.NoCache {
		return nil, false
	}
	srcOf := make(map[string]string, len(slots))
	for _, s := range slots {
		srcOf[s.Tag] = s.Param
	}
	t := &Template{Plan: clonePlan(plan)}
	if !t.parameterizePlan(t.Plan, srcOf) {
		return nil, false
	}
	covered := make(map[string]bool, len(t.Enc)+len(t.Local))
	for _, s := range t.Enc {
		covered[s.Tag] = true
	}
	for _, s := range t.Local {
		covered[s.Tag] = true
	}
	for _, s := range slots {
		if !covered[s.Tag] {
			return nil, false
		}
	}
	return t, true
}

func (t *Template) parameterizePlan(p *Plan, srcOf map[string]string) bool {
	ok := true
	for _, sp := range p.Subplans {
		if !t.parameterizePlan(sp.Plan, srcOf) {
			ok = false
		}
	}
	if p.Remote != nil {
		t.liftQuery(p.Remote.Query, true, srcOf, &ok)
	}
	if p.Local != nil {
		t.liftQuery(p.Local, false, srcOf, &ok)
	}
	return ok
}

// liftQuery replaces tagged literals with parameter nodes, recording a
// rebind site per occurrence. In remote queries the literal must carry its
// encrypting item (a tagged plaintext constant in RemoteSQL has no sound
// rebind story); in local queries it must not.
func (t *Template) liftQuery(q *ast.Query, remote bool, srcOf map[string]string, ok *bool) {
	mapQueryExprs(q, func(e ast.Expr) ast.Expr {
		return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			lit, isLit := x.(*ast.Literal)
			if !isLit || lit.Src == "" {
				return nil
			}
			src, known := srcOf[lit.Src]
			if !known {
				*ok = false
				return nil
			}
			if remote {
				it, _ := lit.EncBy.(*enc.Item)
				if it == nil {
					*ok = false
					return nil
				}
				name := fmt.Sprintf("cp%d", len(t.Enc))
				t.Enc = append(t.Enc, EncSite{Tag: lit.Src, SrcParam: src, Param: name, Item: it})
				return &ast.Param{Name: name}
			}
			if lit.EncBy != nil {
				*ok = false
				return nil
			}
			name := fmt.Sprintf("lp%d", len(t.Local))
			t.Local = append(t.Local, LocalSite{Tag: lit.Src, SrcParam: src, Param: name})
			return &ast.Param{Name: name}
		})
	})
}

// Rebind computes one execution's parameter bindings: encp binds every
// remote (":cpN") slot to its freshly encrypted value, localp every local
// (":lpN") slot to the plaintext. vals is keyed by caller-visible parameter
// name; a missing or unencryptable value fails the rebind (the caller falls
// back to a full plan).
func (t *Template) Rebind(keys *enc.KeyStore, vals map[string]value.Value) (encp, localp map[string]value.Value, err error) {
	encp = make(map[string]value.Value, len(t.Enc))
	for _, s := range t.Enc {
		v, ok := vals[s.SrcParam]
		if !ok {
			return nil, nil, fmt.Errorf("planner: template missing parameter :%s", s.SrcParam)
		}
		cv, err := keys.EncryptValue(s.Item, v)
		if err != nil {
			return nil, nil, fmt.Errorf("planner: template rebind :%s: %w", s.SrcParam, err)
		}
		encp[s.Param] = cv
	}
	localp = make(map[string]value.Value, len(t.Local))
	for _, s := range t.Local {
		v, ok := vals[s.SrcParam]
		if !ok {
			return nil, nil, fmt.Errorf("planner: template missing parameter :%s", s.SrcParam)
		}
		localp[s.Param] = v
	}
	return encp, localp, nil
}

// clonePlan deep-clones the plan tree's queries (templates must not alias
// the caller's plan, and cached plans are shared across goroutines).
func clonePlan(p *Plan) *Plan {
	if p == nil {
		return nil
	}
	c := *p
	c.Subplans = make([]*Subplan, len(p.Subplans))
	for i, sp := range p.Subplans {
		c.Subplans[i] = &Subplan{Name: sp.Name, Plan: clonePlan(sp.Plan)}
	}
	if p.Remote != nil {
		r := *p.Remote
		r.Query = p.Remote.Query.Clone()
		r.Outputs = append([]Output(nil), p.Remote.Outputs...)
		c.Remote = &r
	}
	if p.Local != nil {
		c.Local = p.Local.Clone()
	}
	c.UsedItems = append([]enc.Item(nil), p.UsedItems...)
	return &c
}
