package planner

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// testContext builds a two-table context with a rich design.
func testContext(t testing.TB) *Context {
	t.Helper()
	cat := storage.NewCatalog()
	o, err := cat.Create(storage.Schema{
		Name: "orders",
		Cols: []storage.Column{
			{Name: "o_id", Type: storage.TInt},
			{Name: "o_cust", Type: storage.TStr},
			{Name: "o_total", Type: storage.TInt},
			{Name: "o_date", Type: storage.TDate},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	items, err := cat.Create(storage.Schema{
		Name: "items",
		Cols: []storage.Column{
			{Name: "i_order", Type: storage.TInt},
			{Name: "i_qty", Type: storage.TInt},
			{Name: "i_tag", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 50; i++ {
		o.MustInsert([]value.Value{
			value.NewInt(i), value.NewStr("c" + string(rune('a'+i%5))),
			value.NewInt(i * 10), value.NewDate(9000 + i),
		})
		items.MustInsert([]value.Value{
			value.NewInt(i), value.NewInt(i % 7), value.NewStr("tag word"),
		})
	}
	ks, err := enc.NewKeyStore([]byte("planner-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{GroupedAddition: true, MultiRowPacking: true}
	add := func(it enc.Item) { design.Add(it) }
	jg := "orderkey"
	det := func(tbl, col string, kind value.Kind, group string) {
		it := enc.ColumnItem(tbl, col, enc.DET, kind)
		it.JoinGroup = group
		add(it)
	}
	det("orders", "o_id", value.Int, jg)
	det("orders", "o_cust", value.Str, "")
	det("orders", "o_total", value.Int, "")
	det("orders", "o_date", value.Date, "")
	det("items", "i_order", value.Int, jg)
	det("items", "i_qty", value.Int, "")
	det("items", "i_tag", value.Str, "")
	add(enc.ColumnItem("orders", "o_total", enc.OPE, value.Int))
	add(enc.ColumnItem("orders", "o_total", enc.HOM, value.Int))
	add(enc.ColumnItem("items", "i_tag", enc.SEARCH, value.Str))

	ctx := NewContext(cat, design, ks, DefaultCostModel(netsim.Default()))
	ctx.JoinGroups["orders.o_id"] = jg
	ctx.JoinGroups["items.i_order"] = jg
	ctx.EnablePrefilter = true
	return ctx
}

func prep(t testing.TB, sql string) *ast.Query {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExtractUnitsShapes(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_cust, SUM(o_total) FROM orders
		WHERE o_total > 100 AND o_cust = 'ca'
		GROUP BY o_cust HAVING SUM(o_total) > 500`)
	units, err := ctx.ExtractUnits(q)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, u := range units {
		ids[u.ID] = true
	}
	for _, want := range []string{"where:0", "where:1", "groupby", "agg:hom", "prefilter"} {
		if !ids[want] {
			t.Errorf("missing unit %q (got %v)", want, ids)
		}
	}
}

func TestUnitItemsMatchOperations(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_id FROM orders WHERE o_total BETWEEN 10 AND 90`)
	units, err := ctx.ExtractUnits(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	if units[0].Items[0].Scheme != enc.OPE {
		t.Errorf("between should want OPE, got %v", units[0].Items[0].Scheme)
	}
}

func TestJoinUnitRequiresSharedGroup(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_id FROM orders, items WHERE o_id = i_order`)
	units, err := ctx.ExtractUnits(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 {
		t.Fatalf("units = %d", len(units))
	}
	for _, it := range units[0].Items {
		if it.JoinGroup != "orderkey" {
			t.Errorf("join items must share the group, got %q", it.JoinGroup)
		}
	}
	// Without a registered group, the join is not pushable as a unit.
	ctx2 := testContext(t)
	ctx2.JoinGroups = map[string]string{}
	units2, err := ctx2.ExtractUnits(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(units2) != 0 {
		t.Errorf("join without group should yield no pushable unit, got %v", units2)
	}
}

func TestGenerateGreedyPushesEverything(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_cust, SUM(o_total) AS s FROM orders WHERE o_total > 100 GROUP BY o_cust ORDER BY s DESC`)
	plan, err := ctx.Generate(q)
	if err != nil {
		t.Fatal(err)
	}
	sql := plan.Remote.Query.SQL()
	if !strings.Contains(sql, "o_total_ope") {
		t.Errorf("filter not pushed: %s", sql)
	}
	if !strings.Contains(sql, "GROUP BY") || !strings.Contains(sql, "paillier_sum") {
		t.Errorf("grouping/hom not pushed: %s", sql)
	}
	if len(plan.UsedItems) == 0 {
		t.Error("plan should record its BestSet items")
	}
}

func TestBestPlanFeasibleWithoutUnits(t *testing.T) {
	// A design with only DET fetch columns still plans everything
	// (client-side residual).
	ctx := testContext(t)
	bare := &enc.Design{}
	for _, it := range ctx.Design.Items {
		if it.Scheme == enc.DET {
			bare.Add(it)
		}
	}
	ctx2 := ctx.WithDesign(bare)
	q := prep(t, `SELECT o_cust, SUM(o_total) FROM orders WHERE o_total > 100 GROUP BY o_cust`)
	plan, err := ctx2.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.Remote.Query.SQL(), "ope") {
		t.Error("bare design cannot use OPE")
	}
	if plan.Local == nil {
		t.Error("residual local query expected")
	}
}

func TestBestPlanCostMonotonicity(t *testing.T) {
	// The chosen plan must never cost more than the greedy plan.
	ctx := testContext(t)
	q := prep(t, `SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust`)
	best, err := ctx.BestPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := ctx.Generate(q)
	if err != nil {
		t.Fatal(err)
	}
	ctx.CostPlan(greedy)
	if best.EstTotal() > greedy.EstTotal()+1e-9 {
		t.Errorf("best (%v) costs more than greedy (%v)", best.EstTotal(), greedy.EstTotal())
	}
}

func TestPrepareFoldsAndLowers(t *testing.T) {
	q := prep(t, `SELECT AVG(o_total) FROM orders WHERE o_date < date '1995-01-01' + interval '1' year`)
	// AVG lowered to SUM/COUNT.
	if strings.Contains(q.SQL(), "AVG") {
		t.Errorf("AVG not lowered: %s", q.SQL())
	}
	if !strings.Contains(q.SQL(), "date '1996-01-01'") {
		t.Errorf("interval not folded: %s", q.SQL())
	}
}

func TestPrepareResolvesAliases(t *testing.T) {
	q := prep(t, `SELECT o_cust, SUM(o_total) AS rev FROM orders GROUP BY o_cust HAVING rev > 10 ORDER BY rev`)
	if !strings.Contains(q.Having.SQL(), "SUM") {
		t.Errorf("alias not inlined in HAVING: %s", q.Having.SQL())
	}
	if !strings.Contains(q.OrderBy[0].Expr.SQL(), "SUM") {
		t.Errorf("alias not inlined in ORDER BY: %s", q.OrderBy[0].Expr.SQL())
	}
}

func TestPrepareFlattensDerived(t *testing.T) {
	q := prep(t, `SELECT x, SUM(v) FROM (SELECT o_cust AS x, o_total AS v FROM orders WHERE o_total > 5) t GROUP BY x`)
	if len(q.From) != 1 || q.From[0].Sub != nil {
		t.Fatalf("derived table not flattened: %s", q.SQL())
	}
	if !strings.Contains(q.SQL(), "o_total") {
		t.Errorf("projection substitution missing: %s", q.SQL())
	}
}

func TestPrepareKeepsGroupedDerived(t *testing.T) {
	q := prep(t, `SELECT m FROM (SELECT MAX(o_total) AS m FROM orders GROUP BY o_cust) t`)
	if q.From[0].Sub == nil {
		t.Error("grouped derived table must not flatten")
	}
}

func TestBindParams(t *testing.T) {
	raw := sqlparser.MustParse(`SELECT o_id FROM orders WHERE o_cust = :1`)
	q, err := Prepare(raw, map[string]value.Value{"1": value.NewStr("ca")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.SQL(), "'ca'") {
		t.Errorf("param not bound: %s", q.SQL())
	}
	if _, err := Prepare(raw, nil); err == nil {
		t.Error("unbound param must fail")
	}
}

func TestRewritePredForms(t *testing.T) {
	ctx := testContext(t)
	q := prep(t, `SELECT o_id FROM orders, items WHERE o_id = i_order`)
	s, err := ctx.newScope(q)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sql  string
		want string // substring expected in the rewritten predicate
	}{
		{"o_cust = 'ca'", "o_cust_det"},
		{"o_total > 100", "o_total_ope"},
		{"o_total BETWEEN 10 AND 20", "o_total_ope"},
		{"o_cust IN ('a','b')", "o_cust_det"},
		{"i_tag LIKE '%word%'", "search_match"},
		{"o_id = i_order", "i_order_det"},
	}
	for _, c := range cases {
		e, err := sqlparser.ParseExpr(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		out, ok := ctx.rewritePred(s, e)
		if !ok {
			t.Errorf("rewrite %q failed", c.sql)
			continue
		}
		if !strings.Contains(out.SQL(), c.want) {
			t.Errorf("rewrite %q = %s, want %q inside", c.sql, out.SQL(), c.want)
		}
	}
	// Negative cases: not rewritable with this design.
	for _, bad := range []string{
		"o_total + i_qty > 5", // cross-table arithmetic
		"i_tag LIKE 'word%'",  // anchored pattern
		"o_cust > 'a'",        // OPE over strings unsupported
		"o_total * 2 = 10",    // no precomputed expression item
	} {
		e, err := sqlparser.ParseExpr(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ctx.rewritePred(s, e); ok {
			t.Errorf("rewrite %q should fail", bad)
		}
	}
}

func TestBuildJoinGroupsUnionFind(t *testing.T) {
	ctx := testContext(t)
	queries := []*ast.Query{
		prep(t, `SELECT o_id FROM orders, items WHERE o_id = i_order`),
	}
	jg := BuildJoinGroups(ctx, queries)
	if jg["orders.o_id"] == "" || jg["orders.o_id"] != jg["items.i_order"] {
		t.Errorf("join groups = %v", jg)
	}
	// Correlated predicate inside EXISTS also unions.
	queries = append(queries, prep(t,
		`SELECT o_id FROM orders WHERE EXISTS (SELECT 1 FROM items WHERE i_order = o_id)`))
	jg = BuildJoinGroups(ctx, queries)
	if jg["orders.o_id"] != jg["items.i_order"] {
		t.Error("correlation should union the same group")
	}
}

func TestStatsCollection(t *testing.T) {
	ctx := testContext(t)
	ts := ctx.Stats.Table("orders")
	if ts.Rows != 50 {
		t.Errorf("rows = %d", ts.Rows)
	}
	cs := ts.Col("o_cust")
	if cs.NDV != 5 {
		t.Errorf("ndv(o_cust) = %d", cs.NDV)
	}
	tot := ts.Col("o_total")
	if tot.Min != 10 || tot.Max != 500 {
		t.Errorf("o_total range = [%d,%d]", tot.Min, tot.Max)
	}
	// Defaults for unknown names.
	if ctx.Stats.Table("nope").Rows == 0 {
		t.Error("unknown table gets defaults")
	}
	if ts.Col("nope").NDV == 0 {
		t.Error("unknown column gets defaults")
	}
}

func TestStripEncSuffix(t *testing.T) {
	cases := map[string][2]any{
		"o_total_ope": {"o_total", true},
		"o_cust_det":  {"o_cust", true},
		"x_rnd":       {"x", true},
		"y_srch":      {"y", true},
		"plain":       {"plain", false},
		"_det":        {"_det", false},
	}
	for in, want := range cases {
		got, ok := StripEncSuffix(in)
		if got != want[0].(string) || ok != want[1].(bool) {
			t.Errorf("StripEncSuffix(%q) = (%q,%v)", in, got, ok)
		}
	}
}

func TestHomPlaceholderRoundTrip(t *testing.T) {
	s := homPlaceholder("lineitem", "(a * b)")
	tbl, expr, ok := ParseHomPlaceholder(s)
	if !ok || tbl != "lineitem" || expr != "(a * b)" {
		t.Errorf("round trip = %q %q %v", tbl, expr, ok)
	}
	if _, _, ok := ParseHomPlaceholder("nope"); ok {
		t.Error("non-placeholder must not parse")
	}
}
