package planner

import (
	"sort"

	"repro/internal/ast"
)

// BuildJoinGroups infers which columns must share a DET key from the
// workload's equi-join predicates (including correlation predicates inside
// subqueries), via union-find over column identities. The designer feeds
// the result into Context.JoinGroups; CryptDB's JOIN onions solved the same
// problem by adjusting keys at query time.
func BuildJoinGroups(ctx *Context, queries []*ast.Query) map[string]string {
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			// Deterministic root: lexicographic minimum.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	var visitQuery func(q *ast.Query, outer *scope)
	visitExpr := func(e ast.Expr, s *scope) {
		ast.Walk(e, func(x ast.Expr) {
			b, ok := x.(*ast.BinaryExpr)
			if !ok || b.Op != ast.OpEq {
				return
			}
			lcr, lok := b.Left.(*ast.ColumnRef)
			rcr, rok := b.Right.(*ast.ColumnRef)
			if !lok || !rok {
				return
			}
			le, lok := s.entryFor(lcr)
			re, rok := s.entryFor(rcr)
			if !lok || !rok || le.table == "" || re.table == "" {
				return
			}
			lid := le.table + "." + lcr.Column
			rid := re.table + "." + rcr.Column
			if lid != rid {
				union(lid, rid)
			}
		})
	}
	visitQuery = func(q *ast.Query, outer *scope) {
		inner, err := ctx.newScope(q)
		if err != nil {
			return
		}
		s := inner.chain(outer)
		if q.Where != nil {
			visitExpr(q.Where, s)
			ast.Walk(q.Where, func(x ast.Expr) {
				for _, sub := range ast.Subqueries(x) {
					visitQuery(sub, s)
				}
			})
		}
		if q.Having != nil {
			ast.Walk(q.Having, func(x ast.Expr) {
				for _, sub := range ast.Subqueries(x) {
					visitQuery(sub, s)
				}
			})
		}
		for i := range q.From {
			if q.From[i].Sub != nil {
				visitQuery(q.From[i].Sub, s)
			}
		}
	}
	for _, q := range queries {
		visitQuery(q, nil)
	}

	// Collapse to root names; only multi-member groups matter.
	members := make(map[string][]string)
	for x := range parent {
		members[find(x)] = append(members[find(x)], x)
	}
	out := make(map[string]string)
	for root, ms := range members {
		if len(ms) < 2 {
			continue
		}
		sort.Strings(ms)
		for _, m := range ms {
			out[m] = root
		}
	}
	return out
}
