package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/value"
)

// Preparation passes run before planning:
//
//  1. bind query parameters to literal values (the runtime planner plans
//     per-execution, so parameter values are known — the paper's planner
//     likewise sees the concrete query),
//  2. fold constant arithmetic (date '1994-01-01' + interval '1' year
//     becomes a date literal the rewriter can encrypt),
//  3. rewrite AVG(x) into SUM(x)/COUNT(*) so a HOM sum plus a plain count
//     covers averages,
//  4. flatten simple derived tables (the SELECT-only wrappers TPC-H Q7/8/9
//     use) into the parent query.

// Prepare applies all passes, returning a transformed clone.
func Prepare(q *ast.Query, params map[string]value.Value) (*ast.Query, error) {
	out, _, err := PrepareTagged(q, params)
	return out, err
}

// BoundSlot records one parameter occurrence bound by PrepareTagged: Tag is
// the unique provenance tag stamped on the bound literal (Literal.Src),
// Param the parameter it was bound from. A plan template is sound for a
// query shape only if every bound occurrence survives planning as a
// rebindable site — the template coverage check (template.go) verifies each
// Tag against this list.
type BoundSlot struct {
	Tag   string
	Param string
}

// PrepareTagged is Prepare with plan-cache provenance: every literal bound
// from a parameter carries a unique per-occurrence Src tag, and the full
// occurrence list is returned for the template coverage check.
func PrepareTagged(q *ast.Query, params map[string]value.Value) (*ast.Query, []BoundSlot, error) {
	out := q.Clone()
	slots, err := bindParams(out, params)
	if err != nil {
		return nil, nil, err
	}
	mapQueryExprs(out, foldConstants)
	mapQueryExprs(out, rewriteAvg)
	if err := flattenDerived(out); err != nil {
		return nil, nil, err
	}
	resolveAliases(out)
	return out, slots, nil
}

// resolveAliases inlines SELECT-list aliases referenced from HAVING and
// ORDER BY (e.g. ORDER BY revenue DESC), so the planner reasons about the
// underlying expressions. Applied per block, recursively.
func resolveAliases(q *ast.Query) {
	aliases := make(map[string]ast.Expr)
	for _, p := range q.Projections {
		if p.Alias == "" {
			continue
		}
		if cr, ok := p.Expr.(*ast.ColumnRef); ok && cr.Column == p.Alias {
			continue
		}
		aliases[p.Alias] = p.Expr
	}
	subst := func(e ast.Expr) ast.Expr {
		return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			if cr, ok := x.(*ast.ColumnRef); ok && cr.Table == "" {
				if repl, ok := aliases[cr.Column]; ok {
					return repl.Clone()
				}
			}
			return nil
		})
	}
	if len(aliases) > 0 {
		if q.Having != nil {
			q.Having = subst(q.Having)
		}
		for i := range q.OrderBy {
			q.OrderBy[i].Expr = subst(q.OrderBy[i].Expr)
		}
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			resolveAliases(q.From[i].Sub)
		}
	}
	visit := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) {
			for _, s := range ast.Subqueries(x) {
				resolveAliases(s)
			}
		})
	}
	for _, p := range q.Projections {
		visit(p.Expr)
	}
	if q.Where != nil {
		visit(q.Where)
	}
	if q.Having != nil {
		visit(q.Having)
	}
}

// mapQueryExprs rewrites every expression of q (and nested subqueries) with
// fn.
func mapQueryExprs(q *ast.Query, fn func(ast.Expr) ast.Expr) {
	rewrite := func(e ast.Expr) ast.Expr {
		if e == nil {
			return nil
		}
		return fn(e)
	}
	for i := range q.Projections {
		q.Projections[i].Expr = rewrite(q.Projections[i].Expr)
	}
	q.Where = rewrite(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = rewrite(q.GroupBy[i])
	}
	q.Having = rewrite(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = rewrite(q.OrderBy[i].Expr)
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			mapQueryExprs(q.From[i].Sub, fn)
		}
	}
	// Recurse into expression subqueries.
	visit := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Walk(e, func(x ast.Expr) {
			for _, s := range ast.Subqueries(x) {
				mapQueryExprs(s, fn)
			}
		})
	}
	for _, p := range q.Projections {
		visit(p.Expr)
	}
	visit(q.Where)
	visit(q.Having)
}

// bindParams replaces Param nodes with literal values, stamping each bound
// literal with a unique per-occurrence provenance tag (Literal.Src). A
// parameter used at two syntactic sites yields two distinct tags, so the
// template coverage check can tell "every occurrence survived" from "one
// copy survived, another was folded into an untagged constant".
func bindParams(q *ast.Query, params map[string]value.Value) ([]BoundSlot, error) {
	var missing error
	var slots []BoundSlot
	mapQueryExprs(q, func(e ast.Expr) ast.Expr {
		return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
			if p, ok := x.(*ast.Param); ok {
				if v, ok := params[p.Name]; ok {
					tag := p.Name + "\x00" + fmt.Sprint(len(slots))
					slots = append(slots, BoundSlot{Tag: tag, Param: p.Name})
					return &ast.Literal{Val: v, Src: tag}
				}
				if missing == nil {
					missing = fmt.Errorf("planner: unbound parameter :%s", p.Name)
				}
			}
			return nil
		})
	})
	return slots, missing
}

// foldConstants evaluates constant subexpressions bottom-up.
func foldConstants(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		switch n := x.(type) {
		case *ast.BinaryExpr:
			// date ± interval with a literal date folds to a date literal.
			if iv, ok := n.Right.(*ast.IntervalExpr); ok && (n.Op == ast.OpAdd || n.Op == ast.OpSub) {
				if l, ok := n.Left.(*ast.Literal); ok && (l.Val.K == value.Date || l.Val.K == value.Int) {
					k := iv.N
					if n.Op == ast.OpSub {
						k = -k
					}
					return &ast.Literal{Val: value.NewDate(value.AddInterval(l.Val.AsInt(), k, iv.Unit))}
				}
				return nil
			}
			l, lok := n.Left.(*ast.Literal)
			r, rok := n.Right.(*ast.Literal)
			if !lok || !rok {
				return nil
			}
			switch n.Op {
			case ast.OpAdd:
				return &ast.Literal{Val: value.Add(l.Val, r.Val)}
			case ast.OpSub:
				return &ast.Literal{Val: value.Sub(l.Val, r.Val)}
			case ast.OpMul:
				return &ast.Literal{Val: value.Mul(l.Val, r.Val)}
			case ast.OpDiv:
				return &ast.Literal{Val: value.Div(l.Val, r.Val)}
			}
			return nil
		case *ast.UnaryExpr:
			if !n.Neg {
				return nil
			}
			if l, ok := n.E.(*ast.Literal); ok {
				return &ast.Literal{Val: value.Neg(l.Val)}
			}
		}
		return nil
	})
}

// rewriteAvg lowers AVG(x) to SUM(x)/COUNT(*). Valid on NULL-free data
// (TPC-H); it lets the planner cover averages with a HOM sum and a plain
// count.
func rewriteAvg(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if a, ok := x.(*ast.AggExpr); ok && a.Func == ast.AggAvg && !a.Distinct {
			return &ast.BinaryExpr{
				Op:    ast.OpDiv,
				Left:  &ast.AggExpr{Func: ast.AggSum, Arg: a.Arg},
				Right: &ast.AggExpr{Func: ast.AggCount, Star: true},
			}
		}
		return nil
	})
}

// flattenDerived merges simple derived tables (projection/join/filter only)
// into the parent query, substituting the subquery's projection expressions
// for references to its output columns.
func flattenDerived(q *ast.Query) error {
	for i := 0; i < len(q.From); i++ {
		f := q.From[i]
		if f.Sub == nil {
			continue
		}
		sub := f.Sub
		if !flattenable(sub) {
			continue
		}
		// alias -> projection expression
		subs := make(map[string]ast.Expr)
		for _, p := range sub.Projections {
			name := p.Alias
			if name == "" {
				if cr, ok := p.Expr.(*ast.ColumnRef); ok {
					name = cr.Column
				} else {
					return fmt.Errorf("planner: derived table %s has unnamed projection %s", f.RefName(), p.Expr.SQL())
				}
			}
			subs[name] = p.Expr
		}
		alias := f.RefName()
		replace := func(e ast.Expr) ast.Expr {
			return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
				cr, ok := x.(*ast.ColumnRef)
				if !ok {
					return nil
				}
				if cr.Table != "" && cr.Table != alias {
					return nil
				}
				if repl, ok := subs[cr.Column]; ok {
					return repl.Clone()
				}
				return nil
			})
		}
		mapQueryExprs(q, replace)
		// Splice the subquery's FROM and WHERE into the parent.
		newFrom := append([]ast.TableRef{}, q.From[:i]...)
		newFrom = append(newFrom, sub.From...)
		newFrom = append(newFrom, q.From[i+1:]...)
		q.From = newFrom
		q.Where = ast.AndAll([]ast.Expr{q.Where, sub.Where})
		i += len(sub.From) - 1
	}
	return nil
}

// flattenable reports whether a derived table is a pure
// select/project/join block.
func flattenable(sub *ast.Query) bool {
	if len(sub.GroupBy) > 0 || sub.Having != nil || sub.Distinct ||
		sub.Limit >= 0 || len(sub.OrderBy) > 0 {
		return false
	}
	for _, p := range sub.Projections {
		if ast.HasAggregate(p.Expr) {
			return false
		}
	}
	for _, f := range sub.From {
		if f.Sub != nil {
			return false
		}
	}
	return true
}
