package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/storage"
	"repro/internal/value"
)

// TableInfo is the plaintext schema of one table as the planner sees it.
type TableInfo struct {
	Name string
	Cols []storage.Column
}

// Kind returns a column's plaintext value kind, or Null if absent. Names
// carrying encrypted-column suffixes (x_det, x_ope, ...) resolve to their
// base column so the cost model can resolve RemoteSQL queries against
// plaintext statistics; plaintext queries never use such names.
func (ti *TableInfo) Kind(col string) value.Kind {
	for _, c := range ti.Cols {
		if c.Name == col {
			return colKind(c.Type)
		}
	}
	if base, ok := StripEncSuffix(col); ok {
		for _, c := range ti.Cols {
			if c.Name == base {
				return colKind(c.Type)
			}
		}
	}
	return value.Null
}

// Has reports whether the table has the named column.
func (ti *TableInfo) Has(col string) bool { return ti.Kind(col) != value.Null }

// StripEncSuffix removes a trailing encrypted-column suffix, reporting
// whether one was present.
func StripEncSuffix(col string) (string, bool) {
	for _, suf := range []string{"_det", "_ope", "_rnd", "_srch"} {
		if len(col) > len(suf) && col[len(col)-len(suf):] == suf {
			return col[:len(col)-len(suf)], true
		}
	}
	return col, false
}

// Context is everything the planner needs: the plaintext schema, data
// statistics, the physical design (available encrypted items), and the key
// store (the planner runs inside the trusted client library and encrypts
// query constants).
type Context struct {
	Tables map[string]*TableInfo
	Stats  *Stats
	Design *enc.Design
	Keys   *enc.KeyStore
	Cost   *CostModel
	// JoinGroups maps "table.column" to the shared-DET-key group that
	// makes equi-joins on that column server-evaluable (built by the
	// designer from the workload's join predicates).
	JoinGroups map[string]string
	// EnablePrefilter turns on §5.4 conservative pre-filtering. It is one
	// of the cumulative techniques Figure 5 ("+Other") measures, so it is
	// toggleable independently of the design.
	EnablePrefilter bool
	// Indexes tells the cost model the untrusted server maintains
	// secondary indexes over DET/OPE columns: costPart then compares an
	// index probe against the full scan and annotates the chosen access
	// path (see access.go). Default false so designer and experiment cost
	// figures are unchanged unless the execution layer actually has the
	// indexes (monomi.Options.Indexes wires it up).
	Indexes bool
}

// WithDesign returns a shallow copy of the context planning against a
// different (trial) design.
func (ctx *Context) WithDesign(d *enc.Design) *Context {
	c := *ctx
	c.Design = d
	return &c
}

// NewContext builds a planning context from the plaintext catalog.
func NewContext(cat *storage.Catalog, design *enc.Design, keys *enc.KeyStore, cost *CostModel) *Context {
	ctx := &Context{
		Tables:     make(map[string]*TableInfo),
		Stats:      CollectStats(cat),
		Design:     design,
		Keys:       keys,
		Cost:       cost,
		JoinGroups: make(map[string]string),
	}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue
		}
		ctx.Tables[name] = &TableInfo{Name: name, Cols: t.Schema.Cols}
	}
	return ctx
}

// scope resolves column references within one query block: alias -> table.
// parent chains to the enclosing block for correlated subqueries.
type scope struct {
	ctx     *Context
	entries []scopeEntry
	parent  *scope
}

type scopeEntry struct {
	ref   string // alias or table name used in the query
	table string // underlying base table ("" for derived tables)
	info  *TableInfo
}

// newScope builds the resolution scope for a query's FROM list. Derived
// tables resolve to a synthetic TableInfo built from their projections.
func (ctx *Context) newScope(q *ast.Query) (*scope, error) {
	s := &scope{ctx: ctx}
	for i := range q.From {
		f := &q.From[i]
		if f.Sub != nil {
			info := &TableInfo{Name: f.RefName()}
			for _, p := range f.Sub.Projections {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*ast.ColumnRef); ok {
						name = cr.Column
					}
				}
				info.Cols = append(info.Cols, storage.Column{Name: name, Type: storage.TInt})
			}
			s.entries = append(s.entries, scopeEntry{ref: f.RefName(), info: info})
			continue
		}
		info, ok := ctx.Tables[f.Name]
		if !ok {
			return nil, fmt.Errorf("planner: unknown table %s", f.Name)
		}
		s.entries = append(s.entries, scopeEntry{ref: f.RefName(), table: f.Name, info: info})
	}
	return s, nil
}

// resolve maps a column reference to its base table name, or "" if it is a
// derived-table or unresolvable (outer) reference.
func (s *scope) resolve(c *ast.ColumnRef) (table string, ok bool) {
	if c.Table != "" {
		for _, e := range s.entries {
			if e.ref == c.Table {
				return e.table, e.info.Has(c.Column)
			}
		}
		return "", false
	}
	for _, e := range s.entries {
		if e.info.Has(c.Column) {
			return e.table, true
		}
	}
	return "", false
}

// kindOf returns the plaintext kind of a column reference.
func (s *scope) kindOf(c *ast.ColumnRef) value.Kind {
	if c.Table != "" {
		for _, e := range s.entries {
			if e.ref == c.Table {
				return e.info.Kind(c.Column)
			}
		}
		return value.Null
	}
	for _, e := range s.entries {
		if k := e.info.Kind(c.Column); k != value.Null {
			return k
		}
	}
	return value.Null
}

// singleTable returns the one base table an expression's columns all belong
// to, or "" if they span tables, hit derived tables, or there are none.
func (s *scope) singleTable(e ast.Expr) string {
	table := ""
	for _, c := range ast.Columns(e) {
		t, ok := s.resolve(c)
		if !ok || t == "" {
			return ""
		}
		if table != "" && table != t {
			return ""
		}
		table = t
	}
	return table
}

// stripQualifiers clones e with table qualifiers removed, the canonical
// form used for matching design items (items are per-table).
func stripQualifiers(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e.Clone(), func(x ast.Expr) ast.Expr {
		if c, ok := x.(*ast.ColumnRef); ok && c.Table != "" {
			return &ast.ColumnRef{Column: c.Column}
		}
		return nil
	})
}

// findItem looks up a design item for (the unqualified form of) expr on the
// given table.
func (ctx *Context) findItem(table string, e ast.Expr, scheme enc.Scheme) (*enc.Item, bool) {
	return ctx.Design.Find(table, stripQualifiers(e).SQL(), scheme)
}

// IsUncorrelated reports whether every column a subquery references
// resolves within its own FROM tables.
func IsUncorrelated(ctx *Context, sub *ast.Query) bool {
	inner, err := ctx.newScope(sub)
	if err != nil {
		return false
	}
	free := false
	check := func(e ast.Expr) {
		collectRefsFree(ctx, e, inner, &free)
	}
	for _, p := range sub.Projections {
		check(p.Expr)
	}
	check(sub.Where)
	for _, k := range sub.GroupBy {
		check(k)
	}
	check(sub.Having)
	return !free
}

// collectRefsFree sets *free when a reference fails to resolve in the
// given scope chain (descending into nested subqueries with their scopes).
func collectRefsFree(ctx *Context, e ast.Expr, s *scope, free *bool) {
	if e == nil || *free {
		return
	}
	switch x := e.(type) {
	case *ast.ColumnRef:
		if x.Column == "*" {
			return
		}
		if _, ok := s.entryFor(x); !ok {
			*free = true
		}
		return
	case *ast.SubqueryExpr:
		collectQueryRefsFree(ctx, x.Sub, s, free)
		return
	case *ast.ExistsExpr:
		collectQueryRefsFree(ctx, x.Sub, s, free)
		return
	case *ast.InExpr:
		collectRefsFree(ctx, x.E, s, free)
		for _, l := range x.List {
			collectRefsFree(ctx, l, s, free)
		}
		if x.Sub != nil {
			collectQueryRefsFree(ctx, x.Sub, s, free)
		}
		return
	}
	ast.VisitChildren(e, func(c ast.Expr) { collectRefsFree(ctx, c, s, free) })
}

func collectQueryRefsFree(ctx *Context, q *ast.Query, outer *scope, free *bool) {
	inner, err := ctx.newScope(q)
	if err != nil {
		*free = true
		return
	}
	s := inner.chain(outer)
	for _, p := range q.Projections {
		collectRefsFree(ctx, p.Expr, s, free)
	}
	collectRefsFree(ctx, q.Where, s, free)
	for _, k := range q.GroupBy {
		collectRefsFree(ctx, k, s, free)
	}
	collectRefsFree(ctx, q.Having, s, free)
}
