package planner

import (
	"repro/internal/ast"
	"repro/internal/crypto/search"
	"repro/internal/enc"
	"repro/internal/value"
)

// patternWord extracts the keyword of a single-word LIKE pattern.
func patternWord(pattern string) (string, bool) { return search.PatternWord(pattern) }

// REWRITESERVER (Algorithm 1): translate plaintext expressions into
// expressions over the encrypted schema that the untrusted server can
// evaluate. Three modes mirror the paper's enctype argument:
//
//   - rewritePred   (enctype=PLAIN): predicates whose boolean result the
//     server may learn — equality via DET, ranges via OPE, keyword LIKE via
//     SEARCH, and whole single-table comparisons via precomputed DET
//     booleans; EXISTS/IN subqueries recurse.
//   - rewriteValue  (enctype=DET/OPE/ANY): value expressions that must
//     arrive encrypted under a specific scheme (GROUP BY keys need DET;
//     fetched projections accept ANY).
//
// All rewrites are conditional on the needed ⟨value, scheme⟩ items being
// present in the design — the planner's unit enumeration toggles them.

// chain links a scope to an enclosing one for correlated subqueries.
func (s *scope) chain(parent *scope) *scope {
	c := *s
	c.parent = parent
	return &c
}

// entryFor finds the scope entry resolving a column, walking outward.
func (s *scope) entryFor(c *ast.ColumnRef) (*scopeEntry, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if c.Table != "" {
			for i := range cur.entries {
				if cur.entries[i].ref == c.Table {
					return &cur.entries[i], cur.entries[i].info.Has(c.Column)
				}
			}
			continue
		}
		for i := range cur.entries {
			if cur.entries[i].info.Has(c.Column) {
				return &cur.entries[i], true
			}
		}
	}
	return nil, false
}

// singleEntry returns the one scope entry all of e's columns resolve to,
// or nil (multi-table expressions, derived tables, no columns).
func (s *scope) singleEntry(e ast.Expr) *scopeEntry {
	var entry *scopeEntry
	for _, c := range ast.Columns(e) {
		en, ok := s.entryFor(c)
		if !ok || en == nil || en.table == "" {
			return nil
		}
		if entry != nil && entry != en {
			return nil
		}
		entry = en
	}
	return entry
}

// encConst encrypts a constant under an item's key as a server literal.
// src carries the plaintext literal's provenance tag (empty for constants
// the planner itself synthesizes): the encrypted literal keeps the tag and
// records the item, so a plan template can re-encrypt the slot's future
// values (template.go).
func (ctx *Context) encConst(it *enc.Item, v value.Value, src string) (ast.Expr, bool) {
	cv, err := ctx.Keys.EncryptValue(it, v)
	if err != nil {
		return nil, false
	}
	lit := &ast.Literal{Val: cv, Src: src}
	if src != "" {
		lit.EncBy = it
	}
	return lit, true
}

// constVal evaluates a constant expression (literals and folded
// arithmetic); the planner folds constants before rewriting, so anything
// still non-literal is not constant.
func constVal(e ast.Expr) (value.Value, bool) {
	if l, ok := e.(*ast.Literal); ok {
		return l.Val, true
	}
	return value.Value{}, false
}

// constSrc returns a constant expression's provenance tag ("" when the
// expression is not a tagged literal).
func constSrc(e ast.Expr) string {
	if l, ok := e.(*ast.Literal); ok {
		return l.Src
	}
	return ""
}

// rewriteValue rewrites a value expression to an encrypted column reference
// under one of the preferred schemes (tried in order). Returns the server
// expression and the item that encrypts it.
func (ctx *Context) rewriteValue(s *scope, e ast.Expr, schemes ...enc.Scheme) (ast.Expr, *enc.Item, bool) {
	entry := s.singleEntry(e)
	if entry == nil {
		return nil, nil, false
	}
	for _, scheme := range schemes {
		if it, ok := ctx.findItem(entry.table, e, scheme); ok {
			return &ast.ColumnRef{Table: entry.ref, Column: it.ColumnName()}, it, true
		}
	}
	return nil, nil, false
}

// anySchemes is the fetch preference order: DET integers decrypt fastest,
// then RND, then OPE (whose decryption replays a 48-step binary search).
var anySchemes = []enc.Scheme{enc.DET, enc.RND, enc.OPE}

// rewritePred rewrites a predicate for server evaluation (enctype=PLAIN).
func (ctx *Context) rewritePred(s *scope, e ast.Expr) (ast.Expr, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		if x.Val.K == value.Bool {
			return x.Clone(), true
		}
		return nil, false

	case *ast.BinaryExpr:
		switch x.Op {
		case ast.OpAnd, ast.OpOr:
			l, ok := ctx.rewritePred(s, x.Left)
			if !ok {
				return nil, false
			}
			r, ok := ctx.rewritePred(s, x.Right)
			if !ok {
				return nil, false
			}
			return &ast.BinaryExpr{Op: x.Op, Left: l, Right: r}, true
		case ast.OpEq, ast.OpNe:
			if out, ok := ctx.rewriteCompare(s, x, enc.DET); ok {
				return out, true
			}
			return ctx.rewriteWholePredicate(s, e)
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			if out, ok := ctx.rewriteCompare(s, x, enc.OPE); ok {
				return out, true
			}
			return ctx.rewriteWholePredicate(s, e)
		}
		return nil, false

	case *ast.UnaryExpr:
		if x.Neg {
			return nil, false
		}
		inner, ok := ctx.rewritePred(s, x.E)
		if !ok {
			return nil, false
		}
		return &ast.UnaryExpr{E: inner}, true

	case *ast.BetweenExpr:
		sv, it, ok := ctx.rewriteValue(s, x.E, enc.OPE)
		if !ok {
			return ctx.rewriteWholePredicate(s, e)
		}
		loV, ok1 := constVal(x.Lo)
		hiV, ok2 := constVal(x.Hi)
		if !ok1 || !ok2 {
			return nil, false
		}
		lo, ok1 := ctx.encConst(it, loV, constSrc(x.Lo))
		hi, ok2 := ctx.encConst(it, hiV, constSrc(x.Hi))
		if !ok1 || !ok2 {
			return nil, false
		}
		return &ast.BetweenExpr{E: sv, Lo: lo, Hi: hi, Not: x.Not}, true

	case *ast.InExpr:
		if x.Sub != nil {
			return ctx.rewriteInSubquery(s, x)
		}
		sv, it, ok := ctx.rewriteValue(s, x.E, enc.DET)
		if !ok {
			return nil, false
		}
		out := &ast.InExpr{E: sv, Not: x.Not}
		for _, item := range x.List {
			v, ok := constVal(item)
			if !ok {
				return nil, false
			}
			ev, ok := ctx.encConst(it, v, constSrc(item))
			if !ok {
				return nil, false
			}
			out.List = append(out.List, ev)
		}
		return out, true

	case *ast.LikeExpr:
		return ctx.rewriteLike(s, x)

	case *ast.IsNullExpr:
		sv, _, ok := ctx.rewriteValue(s, x.E, anySchemes...)
		if !ok {
			return nil, false
		}
		return &ast.IsNullExpr{E: sv, Not: x.Not}, true

	case *ast.ExistsExpr:
		sub, ok := ctx.rewriteSubqueryServer(s, x.Sub, false)
		if !ok {
			return nil, false
		}
		return &ast.ExistsExpr{Sub: sub, Not: x.Not}, true
	}
	return nil, false
}

// rewriteCompare handles binary comparisons: column-vs-constant under the
// column's item key, or column-vs-column when both sides share a key (DET
// join groups make equi-join keys compatible, as CryptDB's JOIN onions do).
func (ctx *Context) rewriteCompare(s *scope, x *ast.BinaryExpr, scheme enc.Scheme) (ast.Expr, bool) {
	lv, lok := constVal(x.Left)
	rv, rok := constVal(x.Right)
	switch {
	case lok && rok:
		return nil, false // constant-only predicates are folded earlier
	case rok: // expr OP const
		sv, it, ok := ctx.rewriteValue(s, x.Left, scheme)
		if !ok {
			return nil, false
		}
		ev, ok := ctx.encConst(it, rv, constSrc(x.Right))
		if !ok {
			return nil, false
		}
		return &ast.BinaryExpr{Op: x.Op, Left: sv, Right: ev}, true
	case lok: // const OP expr
		sv, it, ok := ctx.rewriteValue(s, x.Right, scheme)
		if !ok {
			return nil, false
		}
		ev, ok := ctx.encConst(it, lv, constSrc(x.Left))
		if !ok {
			return nil, false
		}
		return &ast.BinaryExpr{Op: x.Op, Left: ev, Right: sv}, true
	default: // expr OP expr: both sides must encrypt under the same key
		lsv, lit, ok := ctx.rewriteValue(s, x.Left, scheme)
		if !ok {
			return nil, false
		}
		rsv, rit, ok := ctx.rewriteValue(s, x.Right, scheme)
		if !ok {
			return nil, false
		}
		if lit.KeyLabel() != rit.KeyLabel() {
			return nil, false
		}
		return &ast.BinaryExpr{Op: x.Op, Left: lsv, Right: rsv}, true
	}
}

// rewriteWholePredicate tries the per-row precomputation fallback (§5.1):
// the entire single-table predicate is materialized as a DET-encrypted
// boolean column, and the server filters on pc = Enc(true).
func (ctx *Context) rewriteWholePredicate(s *scope, e ast.Expr) (ast.Expr, bool) {
	entry := s.singleEntry(e)
	if entry == nil {
		return nil, false
	}
	it, ok := ctx.findItem(entry.table, e, enc.DET)
	if !ok {
		return nil, false
	}
	ev, ok := ctx.encConst(it, value.NewBool(true), "")
	if !ok {
		return nil, false
	}
	return &ast.BinaryExpr{
		Op:    ast.OpEq,
		Left:  &ast.ColumnRef{Table: entry.ref, Column: it.ColumnName()},
		Right: ev,
	}, true
}

// rewriteLike rewrites single-keyword LIKE via SEARCH_MATCH.
func (ctx *Context) rewriteLike(s *scope, x *ast.LikeExpr) (ast.Expr, bool) {
	word, ok := patternWord(x.Pattern)
	if !ok {
		return nil, false
	}
	sv, it, ok := ctx.rewriteValue(s, x.E, enc.SEARCH)
	if !ok {
		return nil, false
	}
	token := ctx.Keys.Search(it).Trapdoor(word)
	call := &ast.FuncCall{Name: "search_match", Args: []ast.Expr{sv, &ast.Literal{Val: value.NewBytes(token)}}}
	if x.Not {
		return &ast.UnaryExpr{E: call}, true
	}
	return call, true
}

// rewriteInSubquery pushes `e IN (SELECT k FROM ...)` to the server when
// the subquery is fully rewritable and both sides share a DET key.
func (ctx *Context) rewriteInSubquery(s *scope, x *ast.InExpr) (ast.Expr, bool) {
	sv, lit, ok := ctx.rewriteValue(s, x.E, enc.DET)
	if !ok {
		return nil, false
	}
	sub, projItem, ok := ctx.rewriteSubqueryProjection(s, x.Sub)
	if !ok || projItem == nil || projItem.KeyLabel() != lit.KeyLabel() {
		return nil, false
	}
	return &ast.InExpr{E: sv, Sub: sub, Not: x.Not}, true
}

// rewriteSubqueryServer rewrites a (possibly correlated) subquery so it can
// run entirely on the server inside EXISTS. Correlated references resolve
// against the enclosing scope's encrypted columns.
func (ctx *Context) rewriteSubqueryServer(outer *scope, q *ast.Query, needProj bool) (*ast.Query, bool) {
	if len(q.GroupBy) > 0 || q.Having != nil || len(q.OrderBy) > 0 || q.Distinct {
		return nil, false
	}
	inner, err := ctx.newScope(q)
	if err != nil {
		return nil, false
	}
	for _, en := range inner.entries {
		if en.table == "" {
			return nil, false // derived tables do not push into EXISTS
		}
	}
	s := inner.chain(outer)
	out := ast.NewQuery()
	for i := range q.From {
		out.From = append(out.From, ast.TableRef{Name: q.From[i].Name, Alias: q.From[i].RefName()})
	}
	if q.Where != nil {
		w, ok := ctx.rewritePred(s, q.Where)
		if !ok {
			return nil, false
		}
		out.Where = w
	}
	if !needProj {
		out.Projections = []ast.SelectItem{{Expr: &ast.Literal{Val: value.NewInt(1)}}}
	}
	return out, true
}

// rewriteSubqueryProjection rewrites an IN-subquery: like
// rewriteSubqueryServer but the single projection must be a DET item.
func (ctx *Context) rewriteSubqueryProjection(outer *scope, q *ast.Query) (*ast.Query, *enc.Item, bool) {
	if len(q.Projections) != 1 {
		return nil, nil, false
	}
	out, ok := ctx.rewriteSubqueryServer(outer, q, true)
	if !ok {
		return nil, nil, false
	}
	inner, err := ctx.newScope(q)
	if err != nil {
		return nil, nil, false
	}
	s := inner.chain(outer)
	sv, it, ok := ctx.rewriteValue(s, q.Projections[0].Expr, enc.DET)
	if !ok {
		return nil, nil, false
	}
	out.Projections = []ast.SelectItem{{Expr: sv}}
	return out, it, true
}
