package planner

// Literal hoisting: rewrite every literal constant in a query — at any
// depth, including subqueries — into a named parameter reference, returning
// the values separately. Two layers depend on it:
//
//   - the client's plan cache normalizes a query to its *shape* this way
//     (SELECT ... WHERE p > 100 and ... WHERE p > 250 share one plan), and
//   - the transport renders RemoteSQL for the wire this way (ciphertext
//     byte-string literals have no re-parsable SQL spelling).
//
// Each literal occurrence gets its own slot, so a slot name identifies one
// syntactic site exactly — the property the plan template's coverage check
// relies on (template.go).

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/value"
)

// HoistLiterals returns a copy of q with every literal replaced by a
// parameter reference :<prefix>N, the parameter values, and their slot
// order (deterministic: query traversal order).
func HoistLiterals(q *ast.Query, prefix string) (*ast.Query, map[string]value.Value, []string) {
	h := &hoister{prefix: prefix, params: make(map[string]value.Value)}
	out := h.query(q.Clone())
	return out, h.params, h.order
}

type hoister struct {
	prefix string
	params map[string]value.Value
	order  []string
	n      int
}

func (h *hoister) query(q *ast.Query) *ast.Query {
	if q == nil {
		return nil
	}
	for i := range q.Projections {
		q.Projections[i].Expr = h.expr(q.Projections[i].Expr)
	}
	for i := range q.From {
		q.From[i].Sub = h.query(q.From[i].Sub)
	}
	q.Where = h.expr(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = h.expr(q.GroupBy[i])
	}
	q.Having = h.expr(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = h.expr(q.OrderBy[i].Expr)
	}
	return q
}

func (h *hoister) expr(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		switch n := x.(type) {
		case *ast.Literal:
			name := h.prefix + strconv.Itoa(h.n)
			h.n++
			h.params[name] = n.Val
			h.order = append(h.order, name)
			return &ast.Param{Name: name}
		case *ast.SubqueryExpr:
			return &ast.SubqueryExpr{Sub: h.query(n.Sub)}
		case *ast.ExistsExpr:
			return &ast.ExistsExpr{Sub: h.query(n.Sub), Not: n.Not}
		case *ast.InExpr:
			if n.Sub != nil {
				n.Sub = h.query(n.Sub)
			}
			return n
		}
		return nil
	})
}
