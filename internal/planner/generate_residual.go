package planner

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// genClientResidual builds the plan when part of the query must run on the
// client: the RemoteSQL fetches the (filtered, joined) encrypted rows the
// residual needs, and the client decrypts them and runs the rest of the
// query — local filters, grouping, HAVING, ORDER BY — over the temp table
// (Algorithm 1 lines 27-44).
func (g *genState) genClientResidual(plan *Plan, s *scope, q *ast.Query,
	remoteFrom []ast.TableRef, pushed []ast.Expr, local []ast.Expr,
	aliasToTemp map[string]string, localOnly map[string]bool) (*Plan, error) {

	main := make(map[*scopeEntry]bool)
	for i := range s.entries {
		e := &s.entries[i]
		if e.table != "" && !localOnly[e.ref] {
			main[e] = true
		}
	}

	// Columns the residual needs from the main fetch.
	needed := make(map[string][2]string) // "ref__col" -> (ref, col)
	note := func(entry *scopeEntry, col string) {
		if main[entry] {
			needed[entry.ref+"__"+col] = [2]string{entry.ref, col}
		}
	}
	for _, p := range q.Projections {
		collectRefs(g.ctx, p.Expr, s, note)
	}
	for _, k := range q.GroupBy {
		collectRefs(g.ctx, k, s, note)
	}
	collectRefs(g.ctx, q.Having, s, note)
	for _, o := range q.OrderBy {
		collectRefs(g.ctx, o.Expr, s, note)
	}
	for _, c := range local {
		collectRefs(g.ctx, c, s, note)
	}

	// A query over only derived tables (all subplans) has no main fetch.
	if len(remoteFrom) == 0 {
		return g.finishResidualLocalOnly(plan, s, q, local, aliasToTemp, main)
	}

	// Main RemoteSQL: join + pushed filters, projecting the needed columns.
	remote := ast.NewQuery()
	remote.From = remoteFrom
	remote.Where = ast.AndAll(pushed)
	part := &RemotePart{Name: g.tempName(), Query: remote}
	names := make([]string, 0, len(needed))
	for n := range needed {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rc := needed[n]
		colExpr := &ast.ColumnRef{Table: rc[0], Column: rc[1]}
		sv, it, ok := g.ctx.rewriteValue(s, colExpr, anySchemes...)
		if !ok {
			return nil, fmt.Errorf("planner: no decryptable encryption of %s.%s", rc[0], rc[1])
		}
		g.note(it)
		remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv, Alias: n})
		part.Outputs = append(part.Outputs, Output{Name: n, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
	}
	if len(remote.Projections) == 0 {
		// Residual references no main columns (e.g. SELECT COUNT(*) with
		// all filters pushed): fetch some column so rows can be counted.
		for i := range s.entries {
			en := &s.entries[i]
			if !main[en] || len(en.info.Cols) == 0 {
				continue
			}
			col := en.info.Cols[0].Name
			sv, it, ok := g.ctx.rewriteValue(s, &ast.ColumnRef{Table: en.ref, Column: col}, anySchemes...)
			if !ok {
				continue
			}
			g.note(it)
			name := en.ref + "__" + col
			remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv, Alias: name})
			part.Outputs = append(part.Outputs, Output{Name: name, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
			break
		}
		if len(remote.Projections) == 0 {
			return nil, fmt.Errorf("planner: residual plan needs at least one fetched column")
		}
	}
	plan.Remote = part

	// Build the residual local query.
	lq := ast.NewQuery()
	lq.From = []ast.TableRef{{Name: part.Name}}
	for ref, temp := range aliasToTemp {
		lq.From = append(lq.From, ast.TableRef{Name: temp, Alias: ref})
	}
	lq.Distinct = q.Distinct
	lq.Limit = q.Limit
	var err error
	for _, p := range q.Projections {
		e, terr := g.transformLocalExpr(plan, p.Expr, s, main)
		if terr != nil {
			return nil, terr
		}
		lq.Projections = append(lq.Projections, ast.SelectItem{Expr: e, Alias: p.Alias})
	}
	var localT []ast.Expr
	for _, c := range local {
		e, terr := g.transformLocalExpr(plan, c, s, main)
		if terr != nil {
			return nil, terr
		}
		localT = append(localT, e)
	}
	lq.Where = ast.AndAll(localT)
	for _, k := range q.GroupBy {
		e, terr := g.transformLocalExpr(plan, k, s, main)
		if terr != nil {
			return nil, terr
		}
		lq.GroupBy = append(lq.GroupBy, e)
	}
	if q.Having != nil {
		lq.Having, err = g.transformLocalExpr(plan, q.Having, s, main)
		if err != nil {
			return nil, err
		}
	}
	for _, o := range q.OrderBy {
		e, terr := g.transformLocalExpr(plan, o.Expr, s, main)
		if terr != nil {
			return nil, terr
		}
		lq.OrderBy = append(lq.OrderBy, ast.OrderItem{Expr: e, Desc: o.Desc})
	}
	plan.Local = lq
	return plan, nil
}

// finishResidualLocalOnly builds the residual query when every FROM entry
// is a locally-materialized derived table.
func (g *genState) finishResidualLocalOnly(plan *Plan, s *scope, q *ast.Query,
	local []ast.Expr, aliasToTemp map[string]string, main map[*scopeEntry]bool) (*Plan, error) {
	lq := ast.NewQuery()
	for ref, temp := range aliasToTemp {
		lq.From = append(lq.From, ast.TableRef{Name: temp, Alias: ref})
	}
	lq.Distinct = q.Distinct
	lq.Limit = q.Limit
	for _, p := range q.Projections {
		e, err := g.transformLocalExpr(plan, p.Expr, s, main)
		if err != nil {
			return nil, err
		}
		lq.Projections = append(lq.Projections, ast.SelectItem{Expr: e, Alias: p.Alias})
	}
	var localT []ast.Expr
	for _, c := range local {
		e, err := g.transformLocalExpr(plan, c, s, main)
		if err != nil {
			return nil, err
		}
		localT = append(localT, e)
	}
	lq.Where = ast.AndAll(localT)
	for _, k := range q.GroupBy {
		e, err := g.transformLocalExpr(plan, k, s, main)
		if err != nil {
			return nil, err
		}
		lq.GroupBy = append(lq.GroupBy, e)
	}
	if q.Having != nil {
		h, err := g.transformLocalExpr(plan, q.Having, s, main)
		if err != nil {
			return nil, err
		}
		lq.Having = h
	}
	for _, o := range q.OrderBy {
		e, err := g.transformLocalExpr(plan, o.Expr, s, main)
		if err != nil {
			return nil, err
		}
		lq.OrderBy = append(lq.OrderBy, ast.OrderItem{Expr: e, Desc: o.Desc})
	}
	plan.Local = lq
	return plan, nil
}

// collectRefs walks an expression (descending into subqueries with chained
// scopes) and reports every column reference with its resolved entry.
func collectRefs(ctx *Context, e ast.Expr, s *scope, fn func(*scopeEntry, string)) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.ColumnRef:
		if x.Column == "*" {
			return
		}
		if entry, ok := s.entryFor(x); ok {
			fn(entry, x.Column)
		}
		return
	case *ast.SubqueryExpr:
		collectQueryRefs(ctx, x.Sub, s, fn)
		return
	case *ast.ExistsExpr:
		collectQueryRefs(ctx, x.Sub, s, fn)
		return
	case *ast.InExpr:
		collectRefs(ctx, x.E, s, fn)
		for _, l := range x.List {
			collectRefs(ctx, l, s, fn)
		}
		if x.Sub != nil {
			collectQueryRefs(ctx, x.Sub, s, fn)
		}
		return
	}
	ast.VisitChildren(e, func(c ast.Expr) { collectRefs(ctx, c, s, fn) })
}

// collectQueryRefs applies collectRefs to every clause of a subquery, with
// the subquery's scope chained over the enclosing one.
func collectQueryRefs(ctx *Context, q *ast.Query, outer *scope, fn func(*scopeEntry, string)) {
	inner, err := ctx.newScope(q)
	if err != nil {
		return
	}
	s := inner.chain(outer)
	for _, p := range q.Projections {
		collectRefs(ctx, p.Expr, s, fn)
	}
	collectRefs(ctx, q.Where, s, fn)
	for _, k := range q.GroupBy {
		collectRefs(ctx, k, s, fn)
	}
	collectRefs(ctx, q.Having, s, fn)
	for _, o := range q.OrderBy {
		collectRefs(ctx, o.Expr, s, fn)
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			collectQueryRefs(ctx, q.From[i].Sub, s, fn)
		}
	}
}

// transformLocalExpr rewrites an expression for the residual query:
// references to main-fetch entries become `ref__col` temp columns, and
// subqueries are localized (their base tables replaced by sub-fetch temps).
func (g *genState) transformLocalExpr(plan *Plan, e ast.Expr, s *scope, main map[*scopeEntry]bool) (ast.Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch x := e.(type) {
	case *ast.ColumnRef:
		if entry, ok := s.entryFor(x); ok && main[entry] {
			return &ast.ColumnRef{Column: entry.ref + "__" + x.Column}, nil
		}
		return x.Clone(), nil
	case *ast.SubqueryExpr:
		sub, err := g.localizeSub(plan, x.Sub, s, main, nil)
		if err != nil {
			return nil, err
		}
		return &ast.SubqueryExpr{Sub: sub}, nil
	case *ast.ExistsExpr:
		sub, err := g.localizeSub(plan, x.Sub, s, main, nil)
		if err != nil {
			return nil, err
		}
		return &ast.ExistsExpr{Sub: sub, Not: x.Not}, nil
	case *ast.InExpr:
		n := &ast.InExpr{Not: x.Not}
		var err error
		n.E, err = g.transformLocalExpr(plan, x.E, s, main)
		if err != nil {
			return nil, err
		}
		for _, l := range x.List {
			le, err := g.transformLocalExpr(plan, l, s, main)
			if err != nil {
				return nil, err
			}
			n.List = append(n.List, le)
		}
		if x.Sub != nil {
			n.Sub, err = g.localizeSub(plan, x.Sub, s, main, nil)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *ast.BinaryExpr:
		l, err := g.transformLocalExpr(plan, x.Left, s, main)
		if err != nil {
			return nil, err
		}
		r, err := g.transformLocalExpr(plan, x.Right, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case *ast.UnaryExpr:
		inner, err := g.transformLocalExpr(plan, x.E, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Neg: x.Neg, E: inner}, nil
	case *ast.FuncCall:
		n := &ast.FuncCall{Name: x.Name}
		for _, a := range x.Args {
			ae, err := g.transformLocalExpr(plan, a, s, main)
			if err != nil {
				return nil, err
			}
			n.Args = append(n.Args, ae)
		}
		return n, nil
	case *ast.AggExpr:
		if x.Arg == nil {
			return x.Clone(), nil
		}
		arg, err := g.transformLocalExpr(plan, x.Arg, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.AggExpr{Func: x.Func, Arg: arg, Distinct: x.Distinct}, nil
	case *ast.CaseExpr:
		n := &ast.CaseExpr{}
		for _, w := range x.Whens {
			c, err := g.transformLocalExpr(plan, w.Cond, s, main)
			if err != nil {
				return nil, err
			}
			t, err := g.transformLocalExpr(plan, w.Then, s, main)
			if err != nil {
				return nil, err
			}
			n.Whens = append(n.Whens, ast.CaseWhen{Cond: c, Then: t})
		}
		if x.Else != nil {
			var err error
			n.Else, err = g.transformLocalExpr(plan, x.Else, s, main)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	case *ast.BetweenExpr:
		eE, err := g.transformLocalExpr(plan, x.E, s, main)
		if err != nil {
			return nil, err
		}
		lo, err := g.transformLocalExpr(plan, x.Lo, s, main)
		if err != nil {
			return nil, err
		}
		hi, err := g.transformLocalExpr(plan, x.Hi, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.BetweenExpr{E: eE, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *ast.LikeExpr:
		inner, err := g.transformLocalExpr(plan, x.E, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.LikeExpr{E: inner, Pattern: x.Pattern, Not: x.Not}, nil
	case *ast.IsNullExpr:
		inner, err := g.transformLocalExpr(plan, x.E, s, main)
		if err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{E: inner, Not: x.Not}, nil
	}
	return e.Clone(), nil
}

// localizeSubqueries transforms the subqueries of a standalone expression
// (used for HAVING under server grouping, where main refs are already
// substituted by temp columns).
func (g *genState) localizeSubqueries(plan *Plan, e ast.Expr, s *scope) (ast.Expr, error) {
	return g.transformLocalExpr(plan, e, s, map[*scopeEntry]bool{})
}

// localizeSub plans the client-side evaluation of one subquery: its base
// tables are fetched by sub-plans (with the server applying every
// non-correlated predicate it can), and the subquery is rewritten to run
// over the temp tables.
func (g *genState) localizeSub(plan *Plan, sub *ast.Query, outer *scope, outerMain map[*scopeEntry]bool, outerRenames map[*scopeEntry]string) (*ast.Query, error) {
	ctx := g.ctx

	// An uncorrelated subquery is an independent query: recurse the whole
	// of Algorithm 1 on it, so it gets its own split plan — server-side
	// grouping, PAILLIER_SUM, and §5.4 pre-filtering included. This is how
	// Q18's IN-subquery keeps its aggregation on the server.
	if IsUncorrelated(ctx, sub) && (len(sub.GroupBy) > 0 || sub.Having != nil || hasAnyAggregate(sub)) {
		subPlan, err := g.genQuery(sub)
		if err == nil {
			name := g.tempName()
			plan.Subplans = append(plan.Subplans, &Subplan{Name: name, Plan: subPlan})
			out := ast.NewQuery()
			out.From = []ast.TableRef{{Name: name}}
			for _, col := range planOutputCols(subPlan) {
				out.Projections = append(out.Projections, ast.SelectItem{Expr: &ast.ColumnRef{Column: col}})
			}
			return out, nil
		}
	}

	inner, err := ctx.newScope(sub)
	if err != nil {
		return nil, err
	}
	chained := inner.chain(outer)

	// Nested derived tables inside locally-evaluated subqueries stay rare
	// (TPC-H has none after flattening); plan them recursively.
	for i := range sub.From {
		if sub.From[i].Sub != nil {
			return nil, fmt.Errorf("planner: derived table inside local subquery %s unsupported", sub.From[i].RefName())
		}
	}

	// Partition the subquery's conjuncts: pushable into the fetch (only
	// inner references, rewritable) vs. kept (correlated or unrewritable).
	var pushed []ast.Expr
	var kept []ast.Expr
	var keptOrig []ast.Expr
	for _, c := range ast.Conjuncts(sub.Where) {
		if !ast.HasSubquery(c) {
			if sc, ok := ctx.rewritePred(inner, c); ok { // unchained: outer refs fail
				pushed = append(pushed, sc)
				g.notePredItems(inner, c)
				continue
			}
		}
		keptOrig = append(keptOrig, c)
	}

	// Can the fetch include the join, or must tables ship separately?
	jointJoin := true
	for _, c := range keptOrig {
		n := 0
		seen := map[*scopeEntry]bool{}
		collectRefs(ctx, c, chained, func(en *scopeEntry, col string) {
			for i := range inner.entries {
				if en == &inner.entries[i] && !seen[en] {
					seen[en] = true
					n++
				}
			}
		})
		if n >= 2 {
			jointJoin = false // an unpushable inner join predicate
		}
	}

	// Columns of the subquery's own tables that the local evaluation needs.
	neededByEntry := make(map[*scopeEntry]map[string]bool)
	isInner := func(en *scopeEntry) bool {
		for i := range inner.entries {
			if en == &inner.entries[i] {
				return true
			}
		}
		return false
	}
	note := func(en *scopeEntry, col string) {
		if !isInner(en) {
			return
		}
		m := neededByEntry[en]
		if m == nil {
			m = make(map[string]bool)
			neededByEntry[en] = m
		}
		m[col] = true
	}
	for _, p := range sub.Projections {
		collectRefs(ctx, p.Expr, chained, note)
	}
	for _, k := range sub.GroupBy {
		collectRefs(ctx, k, chained, note)
	}
	collectRefs(ctx, sub.Having, chained, note)
	for _, c := range keptOrig {
		collectRefs(ctx, c, chained, note)
	}

	// Build the fetch(es).
	out := ast.NewQuery()
	// Renames seen by this subquery's body: its own fetched entries plus
	// every enclosing localized subquery's renames (nested correlation).
	renames := make(map[*scopeEntry]string, len(outerRenames)+2)
	for k, v := range outerRenames {
		renames[k] = v
	}
	if jointJoin && len(inner.entries) >= 1 {
		remote := ast.NewQuery()
		for i := range sub.From {
			remote.From = append(remote.From, ast.TableRef{Name: sub.From[i].Name, Alias: sub.From[i].RefName()})
		}
		remote.Where = ast.AndAll(pushed)
		part := &RemotePart{Name: g.tempName(), Query: remote}
		var entryOrder []*scopeEntry
		for i := range inner.entries {
			entryOrder = append(entryOrder, &inner.entries[i])
		}
		added := 0
		for _, en := range entryOrder {
			cols := sortedKeys(neededByEntry[en])
			for _, col := range cols {
				sv, it, ok := ctx.rewriteValue(inner, &ast.ColumnRef{Table: en.ref, Column: col}, anySchemes...)
				if !ok {
					return nil, fmt.Errorf("planner: no decryptable encryption of %s.%s", en.ref, col)
				}
				g.note(it)
				name := en.ref + "__" + col
				remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv, Alias: name})
				part.Outputs = append(part.Outputs, Output{Name: name, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
				added++
			}
			renames[en] = en.ref + "__"
		}
		if added == 0 {
			// EXISTS(SELECT 1 ...) needs at least one column to count rows.
			en := entryOrder[0]
			ti := en.info
			col := ti.Cols[0].Name
			sv, it, ok := ctx.rewriteValue(inner, &ast.ColumnRef{Table: en.ref, Column: col}, anySchemes...)
			if !ok {
				return nil, fmt.Errorf("planner: no decryptable encryption of %s.%s", en.ref, col)
			}
			g.note(it)
			name := en.ref + "__" + col
			remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv, Alias: name})
			part.Outputs = append(part.Outputs, Output{Name: name, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
		}
		plan.Subplans = append(plan.Subplans, &Subplan{Name: part.Name, Plan: &Plan{Remote: part}})
		out.From = []ast.TableRef{{Name: part.Name}}
	} else {
		// Per-table fetches; unpushable join predicates run locally.
		for i := range inner.entries {
			en := &inner.entries[i]
			remote := ast.NewQuery()
			remote.From = []ast.TableRef{{Name: en.table, Alias: en.ref}}
			// Push the single-table subset of pushed conjuncts for this
			// entry; re-derive from the originals for safety.
			var tPush []ast.Expr
			for _, c := range ast.Conjuncts(sub.Where) {
				if ast.HasSubquery(c) {
					continue
				}
				single := inner.singleEntry(c)
				if single != en {
					continue
				}
				if sc, ok := ctx.rewritePred(inner, c); ok {
					tPush = append(tPush, sc)
				}
			}
			remote.Where = ast.AndAll(tPush)
			part := &RemotePart{Name: g.tempName(), Query: remote}
			cols := sortedKeys(neededByEntry[en])
			if len(cols) == 0 {
				cols = []string{en.info.Cols[0].Name}
			}
			for _, col := range cols {
				sv, it, ok := ctx.rewriteValue(inner, &ast.ColumnRef{Table: en.ref, Column: col}, anySchemes...)
				if !ok {
					return nil, fmt.Errorf("planner: no decryptable encryption of %s.%s", en.ref, col)
				}
				g.note(it)
				name := en.ref + "__" + col
				remote.Projections = append(remote.Projections, ast.SelectItem{Expr: sv, Alias: name})
				part.Outputs = append(part.Outputs, Output{Name: name, Mode: OutDecrypt, Item: it, Kind: it.PlainKind})
			}
			plan.Subplans = append(plan.Subplans, &Subplan{Name: part.Name, Plan: &Plan{Remote: part}})
			out.From = append(out.From, ast.TableRef{Name: part.Name, Alias: en.ref + "_f"})
			renames[en] = en.ref + "__"
			// Those conjuncts pushed per-table must not be re-kept.
			_ = tPush
		}
		// Re-partition: with per-table fetches, multi-table pushed
		// conjuncts were not pushed after all; keep them locally.
		kept = kept[:0]
		keptOrig = keptOrig[:0]
		for _, c := range ast.Conjuncts(sub.Where) {
			if ast.HasSubquery(c) {
				keptOrig = append(keptOrig, c)
				continue
			}
			single := inner.singleEntry(c)
			if single != nil {
				if _, ok := ctx.rewritePred(inner, c); ok {
					continue // pushed per-table
				}
			}
			keptOrig = append(keptOrig, c)
		}
	}

	// Rewrite the subquery body over the temp table(s): inner refs take
	// their ref__col names, outer-main refs take the outer renaming, and
	// nested subqueries localize recursively.
	renameFn := func(e ast.Expr) (ast.Expr, error) {
		return g.transformLocalRenamed(plan, e, chained, outerMain, renames)
	}
	for _, p := range sub.Projections {
		e, err := renameFn(p.Expr)
		if err != nil {
			return nil, err
		}
		out.Projections = append(out.Projections, ast.SelectItem{Expr: e, Alias: p.Alias})
	}
	for _, c := range keptOrig {
		e, err := renameFn(c)
		if err != nil {
			return nil, err
		}
		kept = append(kept, e)
	}
	out.Where = ast.AndAll(kept)
	for _, k := range sub.GroupBy {
		e, err := renameFn(k)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, e)
	}
	if sub.Having != nil {
		h, err := renameFn(sub.Having)
		if err != nil {
			return nil, err
		}
		out.Having = h
	}
	for _, o := range sub.OrderBy {
		e, err := renameFn(o.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, ast.OrderItem{Expr: e, Desc: o.Desc})
	}
	out.Distinct = sub.Distinct
	out.Limit = sub.Limit
	return out, nil
}

// transformLocalRenamed is transformLocalExpr extended with per-entry
// rename prefixes for a localized subquery's own tables.
func (g *genState) transformLocalRenamed(plan *Plan, e ast.Expr, s *scope,
	outerMain map[*scopeEntry]bool, renames map[*scopeEntry]string) (ast.Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch x := e.(type) {
	case *ast.ColumnRef:
		if entry, ok := s.entryFor(x); ok {
			if prefix, ok := renames[entry]; ok {
				return &ast.ColumnRef{Column: prefix + x.Column}, nil
			}
			if outerMain[entry] {
				return &ast.ColumnRef{Column: entry.ref + "__" + x.Column}, nil
			}
		}
		return x.Clone(), nil
	case *ast.SubqueryExpr:
		sub, err := g.localizeSub(plan, x.Sub, s, outerMain, renames)
		if err != nil {
			return nil, err
		}
		return &ast.SubqueryExpr{Sub: sub}, nil
	case *ast.ExistsExpr:
		sub, err := g.localizeSub(plan, x.Sub, s, outerMain, renames)
		if err != nil {
			return nil, err
		}
		return &ast.ExistsExpr{Sub: sub, Not: x.Not}, nil
	case *ast.InExpr:
		n := &ast.InExpr{Not: x.Not}
		var err error
		n.E, err = g.transformLocalRenamed(plan, x.E, s, outerMain, renames)
		if err != nil {
			return nil, err
		}
		for _, l := range x.List {
			le, err := g.transformLocalRenamed(plan, l, s, outerMain, renames)
			if err != nil {
				return nil, err
			}
			n.List = append(n.List, le)
		}
		if x.Sub != nil {
			n.Sub, err = g.localizeSub(plan, x.Sub, s, outerMain, renames)
			if err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	// Generic recursion via transformLocalExpr shape: rebuild children.
	var firstErr error
	out := ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		if firstErr != nil {
			return nil
		}
		switch c := x.(type) {
		case *ast.ColumnRef:
			if entry, ok := s.entryFor(c); ok {
				if prefix, ok := renames[entry]; ok {
					return &ast.ColumnRef{Column: prefix + c.Column}
				}
				if outerMain[entry] {
					return &ast.ColumnRef{Column: entry.ref + "__" + c.Column}
				}
			}
		case *ast.SubqueryExpr:
			sub, err := g.localizeSub(plan, c.Sub, s, outerMain, renames)
			if err != nil {
				firstErr = err
				return nil
			}
			return &ast.SubqueryExpr{Sub: sub}
		case *ast.ExistsExpr:
			sub, err := g.localizeSub(plan, c.Sub, s, outerMain, renames)
			if err != nil {
				firstErr = err
				return nil
			}
			return &ast.ExistsExpr{Sub: sub, Not: c.Not}
		case *ast.InExpr:
			if c.Sub != nil {
				sub, err := g.localizeSub(plan, c.Sub, s, outerMain, renames)
				if err != nil {
					firstErr = err
					return nil
				}
				return &ast.InExpr{E: c.E, List: c.List, Sub: sub, Not: c.Not}
			}
		}
		return nil
	})
	return out, firstErr
}

// planOutputCols derives the output column names of a completed plan.
func planOutputCols(p *Plan) []string {
	if p.Local != nil {
		var out []string
		for _, pr := range p.Local.Projections {
			name := pr.Alias
			if name == "" {
				if cr, ok := pr.Expr.(*ast.ColumnRef); ok {
					name = cr.Column
				} else {
					name = pr.Expr.SQL()
				}
			}
			out = append(out, name)
		}
		return out
	}
	var out []string
	if p.Remote != nil {
		for _, o := range p.Remote.Outputs {
			out = append(out, o.Name)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
