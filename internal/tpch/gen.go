// Package tpch is a deterministic TPC-H substrate: a scaled-down dbgen for
// the eight benchmark tables and the texts of the 19 queries the paper's
// prototype supports (Q13/Q15/Q16 are excluded there for views and
// multi-pattern LIKE; we inherit the same limitation).
//
// Following §8.1 of the paper, DECIMAL columns are stored as integers:
// money in cents, percentages (discount, tax) as whole points. The query
// texts are adapted accordingly (l_extendedprice * (1 - l_discount)
// becomes l_extendedprice * (100 - l_discount)); this rescales reported
// aggregates by constant factors without changing any comparison.
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/storage"
	"repro/internal/value"
)

// ScaleFactor controls generated data volume. SF=1 is the canonical TPC-H
// size (6M lineitem rows); experiments here run at small fractions.
type ScaleFactor float64

// Base table cardinalities at SF=1.
const (
	baseSupplier = 10000
	baseCustomer = 150000
	basePart     = 200000
	baseOrders   = 1500000
)

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
	"lemon", "light", "lime", "linen", "magenta", "maroon",
}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyllable1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyllable2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var lexicon = []string{
	"furiously", "express", "regular", "special", "requests", "deposits",
	"packages", "accounts", "pending", "ironic", "final", "bold", "carefully",
	"quickly", "blithely", "even", "silent", "unusual", "slyly", "daring",
}

// Generate builds the eight TPC-H tables at the given scale factor into a
// fresh catalog. Generation is deterministic for a given (sf, seed).
func Generate(sf ScaleFactor, seed int64) (*storage.Catalog, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	cat := storage.NewCatalog()
	g := &gen{cat: cat, rng: rng, sf: float64(sf)}
	if err := g.regionNation(); err != nil {
		return nil, err
	}
	if err := g.supplier(); err != nil {
		return nil, err
	}
	if err := g.customer(); err != nil {
		return nil, err
	}
	if err := g.partAndPartsupp(); err != nil {
		return nil, err
	}
	if err := g.ordersAndLineitem(); err != nil {
		return nil, err
	}
	return cat, nil
}

type gen struct {
	cat *storage.Catalog
	rng *rand.Rand
	sf  float64

	nSupplier, nCustomer, nPart int
}

func (g *gen) scaled(base int) int {
	n := int(float64(base) * g.sf)
	if n < 2 {
		n = 2
	}
	return n
}

func (g *gen) comment(words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += lexicon[g.rng.Intn(len(lexicon))]
	}
	return out
}

func (g *gen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// dateRange is [1992-01-01, 1998-08-02], the TPC-H order-date span.
var dateLo = value.MustParseDate("1992-01-01")
var dateHi = value.MustParseDate("1998-08-02")

func (g *gen) date(lo, hi int64) int64 { return lo + g.rng.Int63n(hi-lo+1) }

func (g *gen) regionNation() error {
	region, err := g.cat.Create(storage.Schema{
		Name: "region",
		Cols: []storage.Column{
			{Name: "r_regionkey", Type: storage.TInt},
			{Name: "r_name", Type: storage.TStr},
			{Name: "r_comment", Type: storage.TStr},
		},
		Key: []string{"r_regionkey"},
	})
	if err != nil {
		return err
	}
	for i, name := range regions {
		region.MustInsert([]value.Value{
			value.NewInt(int64(i)), value.NewStr(name), value.NewStr(g.comment(4)),
		})
	}
	nation, err := g.cat.Create(storage.Schema{
		Name: "nation",
		Cols: []storage.Column{
			{Name: "n_nationkey", Type: storage.TInt},
			{Name: "n_name", Type: storage.TStr},
			{Name: "n_regionkey", Type: storage.TInt},
			{Name: "n_comment", Type: storage.TStr},
		},
		Key: []string{"n_nationkey"},
	})
	if err != nil {
		return err
	}
	for i, n := range nations {
		nation.MustInsert([]value.Value{
			value.NewInt(int64(i)), value.NewStr(n.name), value.NewInt(int64(n.region)),
			value.NewStr(g.comment(4)),
		})
	}
	return nil
}

func (g *gen) supplier() error {
	t, err := g.cat.Create(storage.Schema{
		Name: "supplier",
		Cols: []storage.Column{
			{Name: "s_suppkey", Type: storage.TInt},
			{Name: "s_name", Type: storage.TStr},
			{Name: "s_address", Type: storage.TStr},
			{Name: "s_nationkey", Type: storage.TInt},
			{Name: "s_phone", Type: storage.TStr},
			{Name: "s_acctbal", Type: storage.TInt},
			{Name: "s_comment", Type: storage.TStr},
		},
		Key: []string{"s_suppkey"},
	})
	if err != nil {
		return err
	}
	g.nSupplier = g.scaled(baseSupplier)
	for i := 1; i <= g.nSupplier; i++ {
		nk := g.rng.Intn(len(nations))
		t.MustInsert([]value.Value{
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("Supplier#%09d", i)),
			value.NewStr(g.comment(2)),
			value.NewInt(int64(nk)),
			value.NewStr(g.phone(nk)),
			value.NewInt(g.rng.Int63n(1099998) - 99999), // cents: [-999.99, 9999.99]
			value.NewStr(g.comment(6)),
		})
	}
	return nil
}

func (g *gen) phone(nationkey int) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nationkey,
		g.rng.Intn(900)+100, g.rng.Intn(900)+100, g.rng.Intn(9000)+1000)
}

func (g *gen) customer() error {
	t, err := g.cat.Create(storage.Schema{
		Name: "customer",
		Cols: []storage.Column{
			{Name: "c_custkey", Type: storage.TInt},
			{Name: "c_name", Type: storage.TStr},
			{Name: "c_address", Type: storage.TStr},
			{Name: "c_nationkey", Type: storage.TInt},
			{Name: "c_phone", Type: storage.TStr},
			{Name: "c_acctbal", Type: storage.TInt},
			{Name: "c_mktsegment", Type: storage.TStr},
			{Name: "c_comment", Type: storage.TStr},
		},
		Key: []string{"c_custkey"},
	})
	if err != nil {
		return err
	}
	g.nCustomer = g.scaled(baseCustomer)
	for i := 1; i <= g.nCustomer; i++ {
		nk := g.rng.Intn(len(nations))
		t.MustInsert([]value.Value{
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("Customer#%09d", i)),
			value.NewStr(g.comment(2)),
			value.NewInt(int64(nk)),
			value.NewStr(g.phone(nk)),
			value.NewInt(g.rng.Int63n(1099998) - 99999),
			value.NewStr(g.pick(segments)),
			value.NewStr(g.comment(8)),
		})
	}
	return nil
}

func (g *gen) partAndPartsupp() error {
	part, err := g.cat.Create(storage.Schema{
		Name: "part",
		Cols: []storage.Column{
			{Name: "p_partkey", Type: storage.TInt},
			{Name: "p_name", Type: storage.TStr},
			{Name: "p_mfgr", Type: storage.TStr},
			{Name: "p_brand", Type: storage.TStr},
			{Name: "p_type", Type: storage.TStr},
			{Name: "p_size", Type: storage.TInt},
			{Name: "p_container", Type: storage.TStr},
			{Name: "p_retailprice", Type: storage.TInt},
			{Name: "p_comment", Type: storage.TStr},
		},
		Key: []string{"p_partkey"},
	})
	if err != nil {
		return err
	}
	partsupp, err := g.cat.Create(storage.Schema{
		Name: "partsupp",
		Cols: []storage.Column{
			{Name: "ps_partkey", Type: storage.TInt},
			{Name: "ps_suppkey", Type: storage.TInt},
			{Name: "ps_availqty", Type: storage.TInt},
			{Name: "ps_supplycost", Type: storage.TInt},
			{Name: "ps_comment", Type: storage.TStr},
		},
		Key: []string{"ps_partkey", "ps_suppkey"},
	})
	if err != nil {
		return err
	}
	g.nPart = g.scaled(basePart)
	for i := 1; i <= g.nPart; i++ {
		mfgr := g.rng.Intn(5) + 1
		brand := mfgr*10 + g.rng.Intn(5) + 1
		name := g.pick(colors) + " " + g.pick(colors) + " " + g.pick(colors) + " " +
			g.pick(colors) + " " + g.pick(colors)
		part.MustInsert([]value.Value{
			value.NewInt(int64(i)),
			value.NewStr(name),
			value.NewStr(fmt.Sprintf("Manufacturer#%d", mfgr)),
			value.NewStr(fmt.Sprintf("Brand#%d", brand)),
			value.NewStr(g.pick(typeSyllable1) + " " + g.pick(typeSyllable2) + " " + g.pick(typeSyllable3)),
			value.NewInt(int64(g.rng.Intn(50) + 1)),
			value.NewStr(g.pick(containerSyllable1) + " " + g.pick(containerSyllable2)),
			value.NewInt(90000 + int64(i%200)*100 + int64(g.rng.Intn(1000))), // cents
			value.NewStr(g.comment(3)),
		})
		for s := 0; s < 4; s++ {
			suppkey := (i+s*(g.nSupplier/4+1))%g.nSupplier + 1
			partsupp.MustInsert([]value.Value{
				value.NewInt(int64(i)),
				value.NewInt(int64(suppkey)),
				value.NewInt(int64(g.rng.Intn(9999) + 1)),
				value.NewInt(int64(g.rng.Intn(99900) + 100)), // cents
				value.NewStr(g.comment(10)),
			})
		}
	}
	return nil
}

func (g *gen) ordersAndLineitem() error {
	orders, err := g.cat.Create(storage.Schema{
		Name: "orders",
		Cols: []storage.Column{
			{Name: "o_orderkey", Type: storage.TInt},
			{Name: "o_custkey", Type: storage.TInt},
			{Name: "o_orderstatus", Type: storage.TStr},
			{Name: "o_totalprice", Type: storage.TInt},
			{Name: "o_orderdate", Type: storage.TDate},
			{Name: "o_orderpriority", Type: storage.TStr},
			{Name: "o_clerk", Type: storage.TStr},
			{Name: "o_shippriority", Type: storage.TInt},
			{Name: "o_comment", Type: storage.TStr},
		},
		Key: []string{"o_orderkey"},
	})
	if err != nil {
		return err
	}
	lineitem, err := g.cat.Create(storage.Schema{
		Name: "lineitem",
		Cols: []storage.Column{
			{Name: "l_orderkey", Type: storage.TInt},
			{Name: "l_partkey", Type: storage.TInt},
			{Name: "l_suppkey", Type: storage.TInt},
			{Name: "l_linenumber", Type: storage.TInt},
			{Name: "l_quantity", Type: storage.TInt},
			{Name: "l_extendedprice", Type: storage.TInt},
			{Name: "l_discount", Type: storage.TInt},
			{Name: "l_tax", Type: storage.TInt},
			{Name: "l_returnflag", Type: storage.TStr},
			{Name: "l_linestatus", Type: storage.TStr},
			{Name: "l_shipdate", Type: storage.TDate},
			{Name: "l_commitdate", Type: storage.TDate},
			{Name: "l_receiptdate", Type: storage.TDate},
			{Name: "l_shipinstruct", Type: storage.TStr},
			{Name: "l_shipmode", Type: storage.TStr},
			{Name: "l_comment", Type: storage.TStr},
		},
		Key: []string{"l_orderkey", "l_linenumber"},
	})
	if err != nil {
		return err
	}
	nOrders := g.scaled(baseOrders)
	cutoff := value.MustParseDate("1995-06-17") // currentdate in dbgen
	for o := 1; o <= nOrders; o++ {
		odate := g.date(dateLo, dateHi-151)
		nLines := g.rng.Intn(7) + 1
		var total int64
		status := "O"
		allShipped, noneShipped := true, true
		type line struct {
			part, supp, qty, price, disc, tax int64
			ship, commit, receipt             int64
			rf, ls                            string
		}
		lines := make([]line, nLines)
		for ln := 0; ln < nLines; ln++ {
			partkey := int64(g.rng.Intn(g.nPart) + 1)
			suppkey := (partkey+int64(g.rng.Intn(4))*int64(g.nSupplier/4+1))%int64(g.nSupplier) + 1
			qty := int64(g.rng.Intn(50) + 1)
			price := (90000 + (partkey%200)*100 + int64(g.rng.Intn(1000))) * qty / 10
			disc := int64(g.rng.Intn(11))
			tax := int64(g.rng.Intn(9))
			ship := odate + int64(g.rng.Intn(121)+1)
			commit := odate + int64(g.rng.Intn(91)+30)
			receipt := ship + int64(g.rng.Intn(30)+1)
			rf := "N"
			if receipt <= cutoff {
				if g.rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= cutoff {
				ls = "F"
				noneShipped = false
			} else {
				allShipped = false
			}
			total += price * (100 - disc) * (100 + tax) / 10000
			lines[ln] = line{partkey, suppkey, qty, price, disc, tax, ship, commit, receipt, rf, ls}
		}
		switch {
		case !noneShipped && allShipped:
			status = "F"
		case !noneShipped:
			status = "P"
		}
		// Like dbgen, a third of customers (custkey divisible by 3) never
		// place orders, so Q22's NOT EXISTS finds prospects.
		custkey := g.rng.Intn(g.nCustomer) + 1
		for custkey%3 == 0 {
			custkey = g.rng.Intn(g.nCustomer) + 1
		}
		orders.MustInsert([]value.Value{
			value.NewInt(int64(o)),
			value.NewInt(int64(custkey)),
			value.NewStr(status),
			value.NewInt(total),
			value.NewDate(odate),
			value.NewStr(g.pick(priorities)),
			value.NewStr(fmt.Sprintf("Clerk#%09d", g.rng.Intn(1000)+1)),
			value.NewInt(0),
			value.NewStr(g.comment(6)),
		})
		for ln, l := range lines {
			lineitem.MustInsert([]value.Value{
				value.NewInt(int64(o)),
				value.NewInt(l.part),
				value.NewInt(l.supp),
				value.NewInt(int64(ln + 1)),
				value.NewInt(l.qty),
				value.NewInt(l.price),
				value.NewInt(l.disc),
				value.NewInt(l.tax),
				value.NewStr(l.rf),
				value.NewStr(l.ls),
				value.NewDate(l.ship),
				value.NewDate(l.commit),
				value.NewDate(l.receipt),
				value.NewStr(g.pick(shipInstructs)),
				value.NewStr(g.pick(shipModes)),
				value.NewStr(g.comment(5)),
			})
		}
	}
	return nil
}

// JoinGroups returns the schema's key relationships: columns that equi-join
// must share a DET key (the designer hands this to the planner context).
func JoinGroups() map[string]string {
	return map[string]string{
		"part.p_partkey":       "partkey",
		"partsupp.ps_partkey":  "partkey",
		"lineitem.l_partkey":   "partkey",
		"supplier.s_suppkey":   "suppkey",
		"partsupp.ps_suppkey":  "suppkey",
		"lineitem.l_suppkey":   "suppkey",
		"orders.o_orderkey":    "orderkey",
		"lineitem.l_orderkey":  "orderkey",
		"customer.c_custkey":   "custkey",
		"orders.o_custkey":     "custkey",
		"nation.n_nationkey":   "nationkey",
		"supplier.s_nationkey": "nationkey",
		"customer.c_nationkey": "nationkey",
		"region.r_regionkey":   "regionkey",
		"nation.n_regionkey":   "regionkey",
	}
}
