package tpch

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Names() {
		ta, _ := a.Table(name)
		tb, _ := b.Table(name)
		if ta.NumRows() != tb.NumRows() || ta.Bytes != tb.Bytes {
			t.Errorf("table %s differs across identical seeds", name)
		}
	}
	c, err := Generate(0.001, 43)
	if err != nil {
		t.Fatal(err)
	}
	li1, _ := a.Table("lineitem")
	li2, _ := c.Table("lineitem")
	if value.Equal(li1.Row(0)[5], li2.Row(0)[5]) &&
		value.Equal(li1.Row(1)[5], li2.Row(1)[5]) &&
		value.Equal(li1.Row(2)[5], li2.Row(2)[5]) {
		t.Error("different seeds should produce different prices")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	cat, err := Generate(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	expect := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 10,
		"customer": 150,
		"part":     200,
		"partsupp": 800,
		"orders":   1500,
	}
	for name, want := range expect {
		tb, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tb.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", name, tb.NumRows(), want)
		}
	}
	li, _ := cat.Table("lineitem")
	if li.NumRows() < 1500 || li.NumRows() > 1500*7 {
		t.Errorf("lineitem rows = %d, want within [1500, 10500]", li.NumRows())
	}
	if _, err := Generate(0, 1); err == nil {
		t.Error("zero scale factor should fail")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	cat, err := Generate(0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat)
	checks := []struct {
		name string
		sql  string
	}{
		{"lineitem->orders", `SELECT COUNT(*) FROM lineitem WHERE l_orderkey NOT IN (SELECT o_orderkey FROM orders)`},
		{"lineitem->part", `SELECT COUNT(*) FROM lineitem WHERE l_partkey NOT IN (SELECT p_partkey FROM part)`},
		{"lineitem->supplier", `SELECT COUNT(*) FROM lineitem WHERE l_suppkey NOT IN (SELECT s_suppkey FROM supplier)`},
		{"orders->customer", `SELECT COUNT(*) FROM orders WHERE o_custkey NOT IN (SELECT c_custkey FROM customer)`},
		{"partsupp->part", `SELECT COUNT(*) FROM partsupp WHERE ps_partkey NOT IN (SELECT p_partkey FROM part)`},
		{"partsupp->supplier", `SELECT COUNT(*) FROM partsupp WHERE ps_suppkey NOT IN (SELECT s_suppkey FROM supplier)`},
		{"supplier->nation", `SELECT COUNT(*) FROM supplier WHERE s_nationkey NOT IN (SELECT n_nationkey FROM nation)`},
		{"nation->region", `SELECT COUNT(*) FROM nation WHERE n_regionkey NOT IN (SELECT r_regionkey FROM region)`},
	}
	for _, c := range checks {
		res, err := eng.Execute(sqlparser.MustParse(c.sql), nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Rows[0][0].AsInt() != 0 {
			t.Errorf("%s: %d dangling keys", c.name, res.Rows[0][0].AsInt())
		}
	}
}

func TestValueDomains(t *testing.T) {
	cat, err := Generate(0.001, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat)
	res, err := eng.Execute(sqlparser.MustParse(
		`SELECT MIN(l_quantity), MAX(l_quantity), MIN(l_discount), MAX(l_discount), MIN(l_tax), MAX(l_tax) FROM lineitem`), nil)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].AsInt() < 1 || row[1].AsInt() > 50 {
		t.Errorf("quantity out of [1,50]: %v..%v", row[0], row[1])
	}
	if row[2].AsInt() < 0 || row[3].AsInt() > 10 {
		t.Errorf("discount out of [0,10]: %v..%v", row[2], row[3])
	}
	if row[4].AsInt() < 0 || row[5].AsInt() > 8 {
		t.Errorf("tax out of [0,8]: %v..%v", row[4], row[5])
	}
	// Ship/commit/receipt ordering.
	res, err = eng.Execute(sqlparser.MustParse(
		`SELECT COUNT(*) FROM lineitem WHERE l_receiptdate <= l_shipdate`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Error("receipt date must follow ship date")
	}
}

// TestAllQueriesParseAndExecutePlaintext is the substrate gate: every
// supported query must parse and run on the plaintext engine.
func TestAllQueriesParseAndExecutePlaintext(t *testing.T) {
	cat, err := Generate(0.002, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat)
	for _, qn := range SupportedQueries() {
		q, err := sqlparser.Parse(Queries[qn])
		if err != nil {
			t.Errorf("Q%d parse: %v", qn, err)
			continue
		}
		res, err := eng.Execute(q, nil)
		if err != nil {
			t.Errorf("Q%d execute: %v", qn, err)
			continue
		}
		_ = res
	}
}

// Queries that should return rows at small scale (sanity on distributions).
func TestKeyQueriesNonEmpty(t *testing.T) {
	cat, err := Generate(0.002, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(cat)
	for _, qn := range []int{1, 3, 4, 5, 6, 10, 12, 22} {
		res, err := eng.Execute(sqlparser.MustParse(Queries[qn]), nil)
		if err != nil {
			t.Fatalf("Q%d: %v", qn, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("Q%d returned no rows at SF 0.002", qn)
		}
	}
}

func TestJoinGroupsCoverSchema(t *testing.T) {
	jg := JoinGroups()
	if jg["lineitem.l_orderkey"] != jg["orders.o_orderkey"] {
		t.Error("orderkey join group mismatch")
	}
	if jg["lineitem.l_partkey"] != jg["part.p_partkey"] {
		t.Error("partkey join group mismatch")
	}
	if jg["customer.c_nationkey"] != jg["nation.n_nationkey"] {
		t.Error("nationkey join group mismatch")
	}
}

func TestSupportedQueriesList(t *testing.T) {
	qs := SupportedQueries()
	if len(qs) != 19 {
		t.Fatalf("supported queries = %d, want 19", len(qs))
	}
	for _, bad := range []int{13, 15, 16} {
		if _, ok := Queries[bad]; ok {
			t.Errorf("Q%d should be unsupported", bad)
		}
		if _, ok := Unsupported[bad]; !ok {
			t.Errorf("Q%d missing from Unsupported", bad)
		}
	}
}
