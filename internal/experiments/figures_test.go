package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tpch"
)

// The experiment harness tests assert the paper's qualitative shapes, not
// absolute numbers: MONOMI beats CryptDB+Client, never loses to
// Execution-Greedy (§8.3), stays within a small factor of plaintext, and
// the space ordering CryptDB > Greedy >= MONOMI > plaintext holds.

var suiteCache = struct {
	sync.Mutex
	s *Suite
}{}

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if suiteCache.s == nil {
		s, err := NewSuite(testSF, testSeed, 512)
		if err != nil {
			t.Fatal(err)
		}
		suiteCache.s = s
	}
	return suiteCache.s
}

func TestFigure4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness run")
	}
	s := testSuite(t)
	fig, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(tpch.SupportedQueries()) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	mc, mg, mm := fig.Medians()
	t.Logf("median slowdowns: CryptDB+Client %.2fx, Execution-Greedy %.2fx, MONOMI %.2fx", mc, mg, mm)
	t.Logf("\n%s", fig.String())
	if mm >= mc {
		t.Errorf("MONOMI median (%.2fx) should beat CryptDB+Client (%.2fx)", mm, mc)
	}
	if mm > mg*1.05 {
		t.Errorf("MONOMI median (%.2fx) should not lose to Execution-Greedy (%.2fx)", mm, mg)
	}
	// The paper reports 1.24x median; shapes, not absolutes — but the
	// overhead must stay moderate.
	if mm > 8 {
		t.Errorf("MONOMI median slowdown %.2fx is out of the expected band", mm)
	}
	// Per-query: the planner should never lose badly to greedy (§8.3:
	// "never worse than Execution-Greedy"). Figure4 times each query with
	// a single shot, so on a loaded host a scheduling hiccup during one
	// MONOMI run can fake a violation; confirm with a re-measurement of
	// both sides before failing.
	exceeds := func(monomi, greedy time.Duration) bool {
		return monomi > greedy*12/10+10*time.Millisecond
	}
	for _, row := range fig.Rows {
		if !exceeds(row.Monomi, row.Greedy) {
			continue
		}
		rg, err := s.Greedy.RunEncrypted(row.Query)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := s.Monomi.RunEncrypted(row.Query)
		if err != nil {
			t.Fatal(err)
		}
		if exceeds(rm.Total(), rg.Total()) {
			t.Errorf("Q%d: MONOMI %v worse than Execution-Greedy %v (confirmed %v vs %v)",
				row.Query, row.Monomi, row.Greedy, rm.Total(), rg.Total())
		} else {
			t.Logf("Q%d: single-shot outlier %v vs %v not confirmed (%v vs %v)",
				row.Query, row.Monomi, row.Greedy, rm.Total(), rg.Total())
		}
	}
}

func TestTable2SpaceOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness run")
	}
	s := testSuite(t)
	rows := s.Table2()
	t.Logf("\n%s", FormatTable2(rows))
	plain, cdb, greedy, monomi := rows[0].Bytes, rows[1].Bytes, rows[2].Bytes, rows[3].Bytes
	if monomi <= plain {
		t.Error("encryption must cost space")
	}
	if cdb <= monomi {
		t.Errorf("CryptDB+Client (%d) should be larger than MONOMI (%d)", cdb, monomi)
	}
	if monomi > greedy {
		t.Errorf("MONOMI (%d) should not exceed Execution-Greedy (%d)", monomi, greedy)
	}
	ratio := float64(monomi) / float64(plain)
	if ratio < 1.1 || ratio > 3.2 {
		t.Errorf("MONOMI space ratio %.2fx outside expected band (paper: 1.72x)", ratio)
	}
	cratio := float64(cdb) / float64(plain)
	if cratio < 2.0 {
		t.Errorf("CryptDB+Client ratio %.2fx should be large (paper: 4.21x)", cratio)
	}
}

func TestTable3Census(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness run")
	}
	s := testSuite(t)
	rows := Table3(s.Monomi.Design.Design)
	out := FormatTable3(rows)
	t.Logf("\n%s", out)
	if len(rows) != 8 {
		t.Fatalf("tables = %d, want 8", len(rows))
	}
	summary, opeCols := SecuritySummary(rows)
	t.Log(summary)
	total := 0
	for _, r := range rows {
		total += r.BaseCols + r.PrecompCols
	}
	if opeCols == 0 {
		t.Error("some OPE columns expected (range filters)")
	}
	if float64(opeCols) > 0.35*float64(total) {
		t.Errorf("OPE on %d/%d columns: should be the minority", opeCols, total)
	}
	if !strings.Contains(out, "lineitem") {
		t.Error("census must include lineitem")
	}
}

func TestFigure7ClientCPU(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness run")
	}
	s := testSuite(t)
	rows, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFigure7(rows))
	if len(rows) != 19 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestDesignerStats(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness run")
	}
	s := testSuite(t)
	st := s.Stats()
	t.Log(st.String())
	if st.Vars == 0 || st.Constraints == 0 {
		t.Error("ILP should have variables and constraints")
	}
}
