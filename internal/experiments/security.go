package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/enc"
)

// Table 3: the security census — for each TPC-H table, how many distinct
// columns end up at each weakest scheme (OPE reveals order; DET reveals
// duplicates; RND/HOM/SEARCH reveal nothing beyond size/matching). Numbers
// after a plus sign are encryptions of precomputed expressions, as in the
// paper.

// Table3Row is one table's census.
type Table3Row struct {
	Table       string
	BaseCols    int // distinct base columns encrypted
	PrecompCols int // distinct precomputed expressions
	// Counts by weakest scheme: [strong (RND/HOM/SEARCH), DET, OPE],
	// split base/precomputed.
	Strong, StrongPre int
	Det, DetPre       int
	Ope, OpePre       int
}

// Table3 computes the census from a design.
func Table3(design *enc.Design) []Table3Row {
	type colInfo struct {
		weakest enc.Scheme
		precomp bool
	}
	perTable := make(map[string]map[string]*colInfo)
	rank := func(s enc.Scheme) int {
		switch s {
		case enc.OPE:
			return 2
		case enc.DET:
			return 1
		default:
			return 0 // RND, HOM, SEARCH
		}
	}
	for _, it := range design.Items {
		cols := perTable[it.Table]
		if cols == nil {
			cols = make(map[string]*colInfo)
			perTable[it.Table] = cols
		}
		key := it.ExprSQL()
		ci := cols[key]
		if ci == nil {
			ci = &colInfo{weakest: it.Scheme, precomp: it.IsPrecomputed()}
			cols[key] = ci
		}
		if rank(it.Scheme) > rank(ci.weakest) {
			ci.weakest = it.Scheme
		}
	}
	var tables []string
	for t := range perTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var rows []Table3Row
	for _, t := range tables {
		row := Table3Row{Table: t}
		for _, ci := range perTable[t] {
			bump := func(base, pre *int) {
				if ci.precomp {
					*pre++
				} else {
					*base++
				}
			}
			if ci.precomp {
				row.PrecompCols++
			} else {
				row.BaseCols++
			}
			switch rank(ci.weakest) {
			case 2:
				bump(&row.Ope, &row.OpePre)
			case 1:
				bump(&row.Det, &row.DetPre)
			default:
				bump(&row.Strong, &row.StrongPre)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable3 renders the census in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: columns by weakest encryption scheme\n")
	fmt.Fprintf(&b, "%-10s %10s %18s %8s %8s\n", "table", "total", "RND/HOM/SEARCH", "DET", "OPE")
	pm := func(base, pre int) string {
		if pre > 0 {
			return fmt.Sprintf("%d+%d", base, pre)
		}
		return fmt.Sprintf("%d", base)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10s %18s %8s %8s\n", r.Table,
			pm(r.BaseCols, r.PrecompCols),
			pm(r.Strong, r.StrongPre), pm(r.Det, r.DetPre), pm(r.Ope, r.OpePre))
	}
	return b.String()
}

// SecuritySummary asserts the paper's qualitative claims: no plaintext on
// the server, OPE used sparingly. It returns a human-readable report and
// the OPE column count.
func SecuritySummary(rows []Table3Row) (string, int) {
	totalCols, opeCols := 0, 0
	for _, r := range rows {
		totalCols += r.BaseCols + r.PrecompCols
		opeCols += r.Ope + r.OpePre
	}
	return fmt.Sprintf("All %d columns encrypted; OPE (weakest) on %d (%.0f%%)",
		totalCols, opeCols, 100*float64(opeCols)/float64(totalCols)), opeCols
}
