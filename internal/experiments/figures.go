package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/tpch"
)

// Figure 4: per-query execution time of the 19 supported TPC-H queries,
// normalized to plaintext, under CryptDB+Client, Execution-Greedy, and
// MONOMI.

// Fig4Row is one query's timings.
type Fig4Row struct {
	Query   int
	Plain   time.Duration
	CryptDB time.Duration
	Greedy  time.Duration
	Monomi  time.Duration
}

// Ratio helpers.
func ratio(x, base time.Duration) float64 {
	if base <= 0 {
		return math.NaN()
	}
	return float64(x) / float64(base)
}

// Fig4Result is the full figure.
type Fig4Result struct {
	Rows []Fig4Row
}

// Medians returns the median slowdown per system.
func (r *Fig4Result) Medians() (cryptdb, greedy, monomi float64) {
	var a, b, c []float64
	for _, row := range r.Rows {
		a = append(a, ratio(row.CryptDB, row.Plain))
		b = append(b, ratio(row.Greedy, row.Plain))
		c = append(c, ratio(row.Monomi, row.Plain))
	}
	return median(a), median(b), median(c)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// String renders the figure as the paper's bar data.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: TPC-H execution time normalized to plaintext\n")
	fmt.Fprintf(&b, "%-5s %12s %16s %18s %10s\n", "query", "plaintext", "CryptDB+Client", "Execution-Greedy", "MONOMI")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "Q%-4d %12s %15.2fx %17.2fx %9.2fx\n",
			row.Query, row.Plain.Round(time.Millisecond),
			ratio(row.CryptDB, row.Plain), ratio(row.Greedy, row.Plain), ratio(row.Monomi, row.Plain))
	}
	mc, mg, mm := r.Medians()
	fmt.Fprintf(&b, "%-5s %12s %15.2fx %17.2fx %9.2fx\n", "med", "", mc, mg, mm)
	return b.String()
}

// Suite shares the three standard benches plus timing helpers.
type Suite struct {
	SF           tpch.ScaleFactor
	Seed         int64
	PaillierBits int

	Monomi  *Bench
	Greedy  *Bench
	CryptDB *Bench
}

// NewSuite stands up the three standard configurations.
func NewSuite(sf tpch.ScaleFactor, seed int64, paillierBits int) (*Suite, error) {
	s := &Suite{SF: sf, Seed: seed, PaillierBits: paillierBits}
	mk := func(c Config) (*Bench, error) {
		c.Seed = seed
		c.PaillierBits = paillierBits
		return Setup(c)
	}
	var err error
	if s.Monomi, err = mk(MonomiConfig(sf)); err != nil {
		return nil, fmt.Errorf("monomi: %w", err)
	}
	if s.Greedy, err = mk(ExecutionGreedyConfig(sf)); err != nil {
		return nil, fmt.Errorf("greedy: %w", err)
	}
	if s.CryptDB, err = mk(CryptDBClientConfig(sf)); err != nil {
		return nil, fmt.Errorf("cryptdb: %w", err)
	}
	return s, nil
}

// Figure4 measures all queries under the three systems.
func (s *Suite) Figure4() (*Fig4Result, error) {
	out := &Fig4Result{}
	for _, qn := range tpch.SupportedQueries() {
		plain, err := s.Monomi.RunPlain(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d plain: %w", qn, err)
		}
		rc, err := s.CryptDB.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d cryptdb: %w", qn, err)
		}
		rg, err := s.Greedy.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d greedy: %w", qn, err)
		}
		rm, err := s.Monomi.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d monomi: %w", qn, err)
		}
		out.Rows = append(out.Rows, Fig4Row{
			Query:   qn,
			Plain:   plain.Total,
			CryptDB: rc.Total(),
			Greedy:  rg.Total(),
			Monomi:  rm.Total(),
		})
	}
	return out, nil
}

// Figure 5/6: cumulative technique levels. Each level is a configuration;
// Figure 5 reports mean and geometric-mean runtime per level, Figure 6 the
// query that benefits the most at each step.

// Level names in paper order.
var Fig5Levels = []string{
	"CryptDB+Client", "+Col packing", "+Precomputation", "+Columnar agg", "+Other", "+Planner",
}

// levelConfig builds the configuration for one cumulative level.
func levelConfig(level int, sf tpch.ScaleFactor, seed int64, bits int) Config {
	cfg := Config{SF: sf, Seed: seed, PaillierBits: bits, GreedyExecution: true, DisablePrefilter: true}
	cfg.Name = Fig5Levels[level]
	cfg.Designer.AllItems = true
	cfg.Designer.NoPrecomputation = true
	cfg.Designer.OnionBaseline = true
	if level >= 1 { // +Col packing: grouped homomorphic columns
		cfg.Designer.GroupedAddition = true
	}
	if level >= 2 { // +Precomputation (and MONOMI's leaner RND baseline)
		cfg.Designer.NoPrecomputation = false
		cfg.Designer.OnionBaseline = false
	}
	if level >= 3 { // +Columnar agg: multi-row packing
		cfg.Designer.MultiRowPacking = true
	}
	if level >= 4 { // +Other: pre-filtering
		cfg.DisablePrefilter = false
	}
	if level >= 5 { // +Planner
		cfg.GreedyExecution = false
	}
	return cfg
}

// Fig5Result holds per-level aggregate runtimes and the per-query detail.
type Fig5Result struct {
	Levels   []string
	Mean     []time.Duration
	GeoMean  []time.Duration
	PerQuery map[int][]time.Duration // query -> per-level time
}

// Figure5 runs every query at every cumulative level. par is the
// sharded-execution worker count for every level's system (0 =
// GOMAXPROCS, 1 = sequential).
func Figure5(sf tpch.ScaleFactor, seed int64, bits, par int) (*Fig5Result, error) {
	res := &Fig5Result{Levels: Fig5Levels, PerQuery: make(map[int][]time.Duration)}
	for level := range Fig5Levels {
		cfg := levelConfig(level, sf, seed, bits)
		cfg.Parallelism = par
		b, err := Setup(cfg)
		if err != nil {
			return nil, fmt.Errorf("level %q: %w", Fig5Levels[level], err)
		}
		var sum float64
		var logSum float64
		n := 0
		for _, qn := range tpch.SupportedQueries() {
			r, err := b.RunEncrypted(qn)
			if err != nil {
				return nil, fmt.Errorf("level %q Q%d: %w", Fig5Levels[level], qn, err)
			}
			d := r.Total()
			res.PerQuery[qn] = append(res.PerQuery[qn], d)
			sum += d.Seconds()
			logSum += math.Log(math.Max(d.Seconds(), 1e-9))
			n++
		}
		res.Mean = append(res.Mean, time.Duration(sum/float64(n)*float64(time.Second)))
		res.GeoMean = append(res.GeoMean, time.Duration(math.Exp(logSum/float64(n))*float64(time.Second)))
	}
	return res, nil
}

// String renders Figure 5.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: aggregate execution time per cumulative technique\n")
	fmt.Fprintf(&b, "%-16s %12s %12s\n", "level", "mean", "geo-mean")
	for i, l := range r.Levels {
		fmt.Fprintf(&b, "%-16s %12s %12s\n", l,
			r.Mean[i].Round(time.Millisecond), r.GeoMean[i].Round(time.Millisecond))
	}
	return b.String()
}

// Fig6Row is the paper's before/after highlight for one technique.
type Fig6Row struct {
	Level  string
	Query  int
	Before time.Duration
	After  time.Duration
}

// Figure6 extracts from Figure 5's per-query data the query that benefits
// the most from each added technique (the paper highlights Q17, Q1, Q5,
// Q18, Q18).
func (r *Fig5Result) Figure6() []Fig6Row {
	var rows []Fig6Row
	for level := 1; level < len(r.Levels); level++ {
		bestQ, bestGain := 0, 0.0
		for qn, times := range r.PerQuery {
			if len(times) <= level {
				continue
			}
			gain := times[level-1].Seconds() - times[level].Seconds()
			if gain > bestGain {
				bestGain = gain
				bestQ = qn
			}
		}
		if bestQ == 0 {
			continue
		}
		rows = append(rows, Fig6Row{
			Level:  r.Levels[level],
			Query:  bestQ,
			Before: r.PerQuery[bestQ][level-1],
			After:  r.PerQuery[bestQ][level],
		})
	}
	return rows
}

// FormatFigure6 renders the rows.
func FormatFigure6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: best-benefiting query per technique\n")
	fmt.Fprintf(&b, "%-16s %-6s %12s %12s %8s\n", "technique", "query", "before", "after", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s Q%-5d %12s %12s %7.1fx\n", r.Level, r.Query,
			r.Before.Round(time.Millisecond), r.After.Round(time.Millisecond),
			r.Before.Seconds()/math.Max(r.After.Seconds(), 1e-9))
	}
	return b.String()
}

// Figure 7: ratio of MONOMI client CPU time to the CPU time of running the
// query on a local plaintext database.

// Fig7Row is one query's client-CPU ratio.
type Fig7Row struct {
	Query     int
	ClientCPU time.Duration
	LocalCPU  time.Duration
}

// Figure7 measures the ratios on the MONOMI bench.
func (s *Suite) Figure7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, qn := range tpch.SupportedQueries() {
		plain, err := s.Monomi.RunPlain(qn)
		if err != nil {
			return nil, err
		}
		encRes, err := s.Monomi.RunEncrypted(qn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{Query: qn, ClientCPU: encRes.ClientTime, LocalCPU: plain.CPUTime})
	}
	return rows, nil
}

// FormatFigure7 renders the ratios.
func FormatFigure7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: client CPU time relative to local plaintext execution\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %8s\n", "query", "client", "local", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "Q%-5d %12s %12s %8.3f\n", r.Query,
			r.ClientCPU.Round(time.Microsecond), r.LocalCPU.Round(time.Microsecond),
			r.ClientCPU.Seconds()/math.Max(r.LocalCPU.Seconds(), 1e-9))
	}
	return b.String()
}
