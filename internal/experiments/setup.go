// Package experiments is the harness that reproduces every table and
// figure of the paper's evaluation (§8) over the TPC-H substrate:
//
//	Figure 4 — per-query slowdown vs. plaintext (CryptDB+Client /
//	           Execution-Greedy / MONOMI)
//	Figure 5 — mean and geometric-mean runtime as §5 techniques stack
//	Figure 6 — the single best-benefiting query per technique
//	Figure 7 — client CPU ratio vs. local plaintext execution
//	Figure 8 — designer quality with the best k input queries
//	Figure 9 — space budget S=2 vs S=1.4, Space-Greedy vs ILP
//	Table 2  — server space by configuration
//	Table 3  — per-table scheme census (security report)
//
// Absolute times differ from the paper's testbed (our substrate is a
// simulator plus real crypto on the local CPU); the comparisons preserve
// the shapes: who wins, by what factor, where the crossovers fall.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/designer"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/server"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/value"
)

// Config selects a system configuration to benchmark.
type Config struct {
	Name         string
	SF           tpch.ScaleFactor
	Seed         int64
	PaillierBits int
	Designer     designer.Options
	// GreedyExecution disables the runtime planner (Execution-Greedy).
	GreedyExecution bool
	// DisablePrefilter turns §5.4 off (Figure 5's pre-"+Other" levels).
	DisablePrefilter bool
	// Queries restricts the designer's input workload (Figure 8); nil
	// means all supported queries.
	Queries []int
	// Net overrides the simulated link/disk; zero value uses Default.
	Net netsim.Config
	// Parallelism is the sharded-execution worker count for the server,
	// the client's local operators, and the plaintext baseline; 0 means
	// GOMAXPROCS, 1 forces sequential execution.
	Parallelism int
	// BatchSize streams eligible scans batch-at-a-time on the same three
	// engines when > 0; 0 keeps materialized execution.
	BatchSize int
	// StreamWire ships encrypted results to the client as framed batches
	// mid-scan, decrypted by Parallelism workers (results identical to the
	// materialized wire; time-to-first-row drops to O(batch)).
	StreamWire bool
}

// MonomiConfig is the full system at the given scale.
func MonomiConfig(sf tpch.ScaleFactor) Config {
	opts := designer.MonomiOptions()
	opts.SpaceBudget = 2.0
	return Config{
		Name: "MONOMI", SF: sf, Seed: 1, PaillierBits: 1024,
		Designer: opts,
	}
}

// ExecutionGreedyConfig applies every technique greedily (§8.3's
// Execution-Greedy): all candidate items materialized, no runtime planner.
func ExecutionGreedyConfig(sf tpch.ScaleFactor) Config {
	return Config{
		Name: "Execution-Greedy", SF: sf, Seed: 1, PaillierBits: 1024,
		Designer: designer.Options{
			AllItems: true, GroupedAddition: true, MultiRowPacking: true,
		},
		GreedyExecution: true,
	}
}

// CryptDBClientConfig is the paper's modified-CryptDB baseline: only
// whole-column encryptions (no precomputation), per-row per-column Paillier
// (no packing), greedy execution.
func CryptDBClientConfig(sf tpch.ScaleFactor) Config {
	return Config{
		Name: "CryptDB+Client", SF: sf, Seed: 1, PaillierBits: 1024,
		Designer: designer.Options{
			AllItems: true, NoPrecomputation: true, OnionBaseline: true,
		},
		GreedyExecution:  true,
		DisablePrefilter: true, // pre-filtering is a MONOMI technique
	}
}

// Bench is a fully constructed system under test.
type Bench struct {
	Config Config
	Plain  *storage.Catalog
	Engine *engine.Engine // plaintext engine (the unencrypted baseline)
	Keys   *enc.KeyStore
	Design *designer.Result
	DB     *enc.DB
	Client *client.Client
	Net    netsim.Config
}

// Setup generates data, runs the designer, encrypts the database, and
// stands up the client/server pair.
func Setup(cfg Config) (*Bench, error) {
	if cfg.PaillierBits == 0 {
		cfg.PaillierBits = 1024
	}
	if cfg.Net == (netsim.Config{}) {
		cfg.Net = netsim.Default()
	}
	cat, err := tpch.Generate(cfg.SF, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ks, err := enc.NewKeyStore([]byte("monomi-experiments"), cfg.PaillierBits)
	if err != nil {
		return nil, err
	}
	cost := planner.DefaultCostModel(cfg.Net)
	cost.HomCipherBytes = ks.Paillier().CiphertextSize()

	qnums := cfg.Queries
	if qnums == nil {
		qnums = tpch.SupportedQueries()
	}
	labeled := make(map[string]string, len(qnums))
	for _, qn := range qnums {
		labeled[fmt.Sprintf("Q%02d", qn)] = tpch.Queries[qn]
	}
	w, err := designer.ParseWorkload(labeled)
	if err != nil {
		return nil, err
	}
	dres, err := designer.Run(cat, w, ks, cost, cfg.Designer)
	if err != nil {
		return nil, err
	}
	db, err := enc.EncryptDatabaseParallel(cat, dres.Design, ks, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	srv := server.New(db, cfg.Net)
	dres.Context.EnablePrefilter = !cfg.DisablePrefilter
	cl := client.New(ks, srv, dres.Context, cfg.Net)
	cl.Greedy = cfg.GreedyExecution
	b := &Bench{
		Config: cfg,
		Plain:  cat,
		Engine: engine.New(cat),
		Keys:   ks,
		Design: dres,
		DB:     db,
		Client: cl,
		Net:    cfg.Net,
	}
	b.SetParallelism(cfg.Parallelism)
	b.SetBatchSize(cfg.BatchSize)
	b.SetStreamWire(cfg.StreamWire)
	return b, nil
}

// SetParallelism sets the sharded-execution worker count on the encrypted
// client/server pair and the plaintext baseline engine (see
// Config.Parallelism). Not safe while queries are in flight.
func (b *Bench) SetParallelism(p int) {
	b.Client.Srv.SetParallelism(p)
	b.Client.Parallelism = p
	b.Engine.Parallelism = p
}

// SetBatchSize sets the streamed-execution batch size on the encrypted
// client/server pair and the plaintext baseline engine (see
// Config.BatchSize; 0 = materialized). Not safe while queries are in
// flight.
func (b *Bench) SetBatchSize(bs int) {
	b.Client.Srv.SetBatchSize(bs)
	b.Client.BatchSize = bs
	b.Engine.BatchSize = bs
}

// SetStreamWire toggles the streamed wire protocol on the encrypted
// client/server pair (see Config.StreamWire). Not safe while queries are
// in flight.
func (b *Bench) SetStreamWire(on bool) {
	b.Client.StreamWire = on
}

// PlainResult is a plaintext-baseline execution with simulated timings.
type PlainResult struct {
	Cols       []string
	Rows       [][]value.Value
	ServerTime time.Duration
	Transfer   time.Duration
	Total      time.Duration
	CPUTime    time.Duration // measured executor CPU (Figure 7 denominator)
}

// RunPlain executes a TPC-H query on the unencrypted database, modeling the
// same disk and link.
func (b *Bench) RunPlain(qn int) (*PlainResult, error) {
	q, err := sqlparser.Parse(tpch.Queries[qn])
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := b.Engine.Execute(q, nil)
	if err != nil {
		return nil, err
	}
	cpu := time.Since(start)
	serverTime := b.Net.ScanTime(res.Stats.BytesScanned) + b.Net.RowTime(res.Stats.RowsScanned)
	transfer := b.Net.TransferTime(res.Bytes())
	return &PlainResult{
		Cols:       res.Cols,
		Rows:       res.Rows,
		ServerTime: serverTime,
		Transfer:   transfer,
		Total:      serverTime + transfer,
		CPUTime:    cpu,
	}, nil
}

// RunEncrypted executes a TPC-H query through the split client/server path.
func (b *Bench) RunEncrypted(qn int) (*client.Result, error) {
	return b.Client.Query(tpch.Queries[qn], nil)
}
