package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/designer"
	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/tpch"
)

// Figure 8: designer sensitivity to the input workload. The paper
// enumerates all n-choose-k query subsets and picks the one whose design
// minimizes the cost estimate over the full workload; we use greedy forward
// selection (k=1 best, then the best addition, ...), which finds the same
// kind of representative queries at a fraction of the planning effort —
// the deviation is documented in EXPERIMENTS.md.

// Fig8Row is one k's outcome.
type Fig8Row struct {
	K        int
	Chosen   []int
	Estimate float64       // designer cost estimate over all 19 queries
	Runtime  time.Duration // measured total workload runtime
}

// Fig8Result is the full sensitivity sweep.
type Fig8Result struct {
	Rows []Fig8Row
}

// Figure8 runs the sweep for k = 0..maxK plus k = all.
func Figure8(sf tpch.ScaleFactor, seed int64, bits int, maxK int) (*Fig8Result, error) {
	all := tpch.SupportedQueries()

	// estimate builds a design from the subset and sums the §6.4 cost of
	// the best plan for every workload query under that design.
	estimate := func(subset []int) (float64, error) {
		cfg := MonomiConfig(sf)
		cfg.Seed = seed
		cfg.PaillierBits = bits
		cfg.Designer.SpaceBudget = 0 // unconstrained, as in the paper's §8.5
		ctx, err := designContext(cfg, subset)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, qn := range all {
			q, err := sqlparser.Parse(tpch.Queries[qn])
			if err != nil {
				return 0, err
			}
			prepared, err := planner.Prepare(q, nil)
			if err != nil {
				return 0, err
			}
			plan, err := ctx.BestPlan(prepared)
			if err != nil {
				return 0, err
			}
			total += plan.EstTotal()
		}
		return total, nil
	}

	// Greedy forward selection of the best k queries.
	var chosen []int
	res := &Fig8Result{}
	for k := 0; k <= maxK; k++ {
		if k > 0 {
			bestQ, bestEst := -1, math.Inf(1)
			for _, qn := range all {
				if contains(chosen, qn) {
					continue
				}
				est, err := estimate(append(append([]int{}, chosen...), qn))
				if err != nil {
					continue
				}
				if est < bestEst {
					bestEst = est
					bestQ = qn
				}
			}
			if bestQ < 0 {
				return nil, fmt.Errorf("figure8: no feasible addition at k=%d", k)
			}
			chosen = append(chosen, bestQ)
		}
		est, err := estimate(chosen)
		if err != nil {
			return nil, err
		}
		rt, err := measureWorkload(sf, seed, bits, chosen, all)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig8Row{
			K: k, Chosen: append([]int{}, chosen...), Estimate: est, Runtime: rt,
		})
	}
	// k = all.
	est, err := estimate(all)
	if err != nil {
		return nil, err
	}
	rt, err := measureWorkload(sf, seed, bits, all, all)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Fig8Row{K: len(all), Chosen: all, Estimate: est, Runtime: rt})
	return res, nil
}

// EstimateSweep is Figure 8's designer-side half: greedy forward selection
// of the best k input queries by full-workload cost estimate, without
// building the encrypted systems (the measurement half is measureWorkload).
// Used by the benchmark harness, where repeated full system builds exceed
// modest memory limits.
func EstimateSweep(sf tpch.ScaleFactor, seed int64, bits int, maxK int) ([]Fig8Row, error) {
	all := tpch.SupportedQueries()
	estimate := func(subset []int) (float64, error) {
		cfg := MonomiConfig(sf)
		cfg.Seed = seed
		cfg.PaillierBits = bits
		cfg.Designer.SpaceBudget = 0
		ctx, err := designContext(cfg, subset)
		if err != nil {
			return 0, err
		}
		total := 0.0
		for _, qn := range all {
			q, err := sqlparser.Parse(tpch.Queries[qn])
			if err != nil {
				return 0, err
			}
			prepared, err := planner.Prepare(q, nil)
			if err != nil {
				return 0, err
			}
			plan, err := ctx.BestPlan(prepared)
			if err != nil {
				return 0, err
			}
			total += plan.EstTotal()
		}
		return total, nil
	}
	var chosen []int
	var rows []Fig8Row
	for k := 0; k <= maxK; k++ {
		if k > 0 {
			bestQ, bestEst := -1, math.Inf(1)
			for _, qn := range all {
				if contains(chosen, qn) {
					continue
				}
				est, err := estimate(append(append([]int{}, chosen...), qn))
				if err != nil {
					continue
				}
				if est < bestEst {
					bestEst = est
					bestQ = qn
				}
			}
			if bestQ < 0 {
				return nil, fmt.Errorf("estimate sweep: no feasible addition at k=%d", k)
			}
			chosen = append(chosen, bestQ)
		}
		est, err := estimate(chosen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{K: k, Chosen: append([]int{}, chosen...), Estimate: est})
	}
	est, err := estimate(all)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig8Row{K: len(all), Chosen: all, Estimate: est})
	return rows, nil
}

// designContext runs the designer on a workload subset and returns the
// planning context bound to the resulting design (no encryption).
func designContext(cfg Config, subset []int) (*planner.Context, error) {
	cat, err := tpch.Generate(cfg.SF, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ks, err := enc.NewKeyStore([]byte("monomi-experiments"), cfg.PaillierBits)
	if err != nil {
		return nil, err
	}
	net := cfg.Net
	if net == (netsim.Config{}) {
		net = netsim.Default()
	}
	cost := planner.DefaultCostModel(net)
	labeled := make(map[string]string, len(subset))
	for _, qn := range subset {
		labeled[fmt.Sprintf("Q%02d", qn)] = tpch.Queries[qn]
	}
	if len(subset) == 0 {
		// k=0: baseline-only design.
		base := planner.NewContext(cat, &enc.Design{}, ks, cost)
		base.JoinGroups = planner.BuildJoinGroups(base, nil)
		d := designer.BaselineDesign(cat, base.JoinGroups, false)
		ctx := base.WithDesign(d)
		ctx.EnablePrefilter = true
		return ctx, nil
	}
	w, err := designer.ParseWorkload(labeled)
	if err != nil {
		return nil, err
	}
	dres, err := designer.Run(cat, w, ks, cost, cfg.Designer)
	if err != nil {
		return nil, err
	}
	dres.Context.EnablePrefilter = true
	return dres.Context, nil
}

// measureWorkload builds the encrypted system for a designer subset and
// measures the total runtime of the full workload.
func measureWorkload(sf tpch.ScaleFactor, seed int64, bits int, subset, all []int) (time.Duration, error) {
	cfg := MonomiConfig(sf)
	cfg.Seed = seed
	cfg.PaillierBits = bits
	cfg.Designer.SpaceBudget = 0
	cfg.Queries = subset
	if len(subset) == 0 {
		cfg.Queries = []int{} // designer still runs; baseline-only design
	}
	b, err := Setup(cfg)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for _, qn := range all {
		r, err := b.RunEncrypted(qn)
		if err != nil {
			return 0, fmt.Errorf("Q%d: %w", qn, err)
		}
		total += r.Total()
	}
	return total, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// String renders Figure 8.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: designer quality with the best k input queries\n")
	fmt.Fprintf(&b, "%-4s %-24s %14s %14s\n", "k", "chosen", "cost estimate", "total runtime")
	for _, row := range r.Rows {
		names := make([]string, len(row.Chosen))
		for i, q := range row.Chosen {
			names[i] = fmt.Sprintf("Q%d", q)
		}
		label := strings.Join(names, ",")
		if len(label) > 24 {
			label = label[:21] + "..."
		}
		fmt.Fprintf(&b, "%-4d %-24s %14.2f %14s\n", row.K, label, row.Estimate,
			row.Runtime.Round(time.Millisecond))
	}
	return b.String()
}
