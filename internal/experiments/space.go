package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/designer"
	"repro/internal/tpch"
)

// Table 2: server space by configuration.

// Table2Row is one configuration's footprint.
type Table2Row struct {
	System string
	Bytes  int64
}

// Table2 measures the actual encrypted database sizes of the suite's three
// configurations against the plaintext database.
func (s *Suite) Table2() []Table2Row {
	plain := s.Monomi.Plain.TotalBytes()
	return []Table2Row{
		{System: "Plaintext", Bytes: plain},
		{System: "CryptDB+Client", Bytes: s.CryptDB.DB.TotalBytes()},
		{System: "Execution-Greedy", Bytes: s.Greedy.DB.TotalBytes()},
		{System: "MONOMI", Bytes: s.Monomi.DB.TotalBytes()},
	}
}

// FormatTable2 renders the table with relative factors.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: server space requirements\n")
	fmt.Fprintf(&b, "%-18s %12s %10s\n", "system", "size", "relative")
	plain := float64(rows[0].Bytes)
	for _, r := range rows {
		rel := "-"
		if r.System != "Plaintext" {
			rel = fmt.Sprintf("%.2fx", float64(r.Bytes)/plain)
		}
		fmt.Fprintf(&b, "%-18s %12s %10s\n", r.System, fmtBytes(r.Bytes), rel)
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// Figure 9: queries affected by shrinking the space budget from S=2 to
// S=1.4, under the ILP designer vs. the Space-Greedy heuristic.

// Fig9Row is one query's runtime under the three budget configurations.
type Fig9Row struct {
	Query       int
	S2          time.Duration
	S14Greedy   time.Duration
	S14ILP      time.Duration
	AffectedAny bool
}

// Fig9Result is the full experiment.
type Fig9Result struct {
	Rows []Fig9Row
}

// Figure9 builds the three designs and measures every query, flagging those
// whose runtime moved by more than 10% (the paper plots Q1, Q6, Q14, Q18).
// par is the sharded-execution worker count for each system (0 =
// GOMAXPROCS, 1 = sequential).
func Figure9(sf tpch.ScaleFactor, seed int64, bits, par int) (*Fig9Result, error) {
	mk := func(budget float64, greedy bool) (*Bench, error) {
		cfg := MonomiConfig(sf)
		cfg.Seed = seed
		cfg.PaillierBits = bits
		cfg.Designer.SpaceBudget = budget
		cfg.Designer.SpaceGreedy = greedy
		cfg.Name = fmt.Sprintf("S=%.1f greedy=%v", budget, greedy)
		cfg.Parallelism = par
		return Setup(cfg)
	}
	s2, err := mk(2.0, false)
	if err != nil {
		return nil, fmt.Errorf("S=2: %w", err)
	}
	s14g, err := mk(1.4, true)
	if err != nil {
		return nil, fmt.Errorf("S=1.4 greedy: %w", err)
	}
	s14i, err := mk(1.4, false)
	if err != nil {
		return nil, fmt.Errorf("S=1.4 ilp: %w", err)
	}
	out := &Fig9Result{}
	for _, qn := range tpch.SupportedQueries() {
		r2, err := s2.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d S=2: %w", qn, err)
		}
		rg, err := s14g.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d S=1.4 greedy: %w", qn, err)
		}
		ri, err := s14i.RunEncrypted(qn)
		if err != nil {
			return nil, fmt.Errorf("Q%d S=1.4 ilp: %w", qn, err)
		}
		row := Fig9Row{Query: qn, S2: r2.Total(), S14Greedy: rg.Total(), S14ILP: ri.Total()}
		base := row.S2.Seconds()
		if base > 0 &&
			(row.S14Greedy.Seconds() > base*1.1 || row.S14ILP.Seconds() > base*1.1) {
			row.AffectedAny = true
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// String renders the affected queries (and a summary of the rest).
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: queries affected by space budget S=2 -> S=1.4\n")
	fmt.Fprintf(&b, "%-6s %12s %18s %14s\n", "query", "S=2", "S=1.4 SpaceGreedy", "S=1.4 MONOMI")
	unaffected := 0
	for _, row := range r.Rows {
		if !row.AffectedAny {
			unaffected++
			continue
		}
		fmt.Fprintf(&b, "Q%-5d %12s %18s %14s\n", row.Query,
			row.S2.Round(time.Millisecond), row.S14Greedy.Round(time.Millisecond),
			row.S14ILP.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "(%d queries unaffected by the budget change)\n", unaffected)
	return b.String()
}

// DesignerStats reports the ILP's scale and solve effort (§8.1 mentions
// 713 variables and 612 constraints, 52 s setup).
type DesignerStats struct {
	Vars, Constraints, Nodes int
	Elapsed                  time.Duration
}

// Stats extracts designer statistics from the MONOMI bench.
func (s *Suite) Stats() DesignerStats {
	d := s.Monomi.Design
	return DesignerStats{Vars: d.Vars, Constraints: d.Constraints, Nodes: d.Nodes, Elapsed: d.Elapsed}
}

// String renders the stats.
func (d DesignerStats) String() string {
	return fmt.Sprintf("Designer: %d ILP variables, %d constraints, %d B&B nodes, %s setup",
		d.Vars, d.Constraints, d.Nodes, d.Elapsed.Round(time.Millisecond))
}

var _ = designer.Options{} // keep the import for documentation references
