package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/tpch"
	"repro/internal/value"
)

// The correctness gate: every supported TPC-H query must produce identical
// results on the plaintext engine and through encrypted split execution,
// under each system configuration.

const (
	testSF   = tpch.ScaleFactor(0.002)
	testSeed = 11
)

var benchCache = struct {
	sync.Mutex
	m map[string]*Bench
}{m: make(map[string]*Bench)}

func cachedSetup(t testing.TB, cfg Config) *Bench {
	t.Helper()
	benchCache.Lock()
	defer benchCache.Unlock()
	if b, ok := benchCache.m[cfg.Name]; ok {
		return b
	}
	b, err := Setup(cfg)
	if err != nil {
		t.Fatalf("setup %s: %v", cfg.Name, err)
	}
	benchCache.m[cfg.Name] = b
	return b
}

func monomiBench(t testing.TB) *Bench {
	cfg := MonomiConfig(testSF)
	cfg.Seed = testSeed
	cfg.PaillierBits = 512 // faster keygen/encryption in tests
	return cachedSetup(t, cfg)
}

func canonical(rows [][]value.Value, ordered bool) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			if v.K == value.Float {
				parts[j] = fmt.Sprintf("%.4f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(out)
	}
	return out
}

func checkTPCHQuery(t *testing.T, b *Bench, qn int) {
	t.Helper()
	plain, err := b.RunPlain(qn)
	if err != nil {
		t.Fatalf("Q%d plaintext: %v", qn, err)
	}
	encRes, err := b.RunEncrypted(qn)
	if err != nil {
		t.Fatalf("Q%d encrypted: %v", qn, err)
	}
	// TPC-H ORDER BY keys do not always determine a total order (ties);
	// compare order-insensitively, which still catches value errors.
	w := canonical(plain.Rows, false)
	g := canonical(encRes.Rows, false)
	if len(w) != len(g) {
		t.Fatalf("Q%d: got %d rows, want %d\nplan:\n%s", qn, len(g), len(w), encRes.Plan.Describe())
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("Q%d row %d:\n got  %s\n want %s\nplan:\n%s", qn, i, g[i], w[i], encRes.Plan.Describe())
		}
	}
}

func TestMonomiTPCHCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H correctness run")
	}
	b := monomiBench(t)
	for _, qn := range tpch.SupportedQueries() {
		qn := qn
		t.Run(fmt.Sprintf("Q%02d", qn), func(t *testing.T) {
			checkTPCHQuery(t, b, qn)
		})
	}
}

func TestCryptDBClientTPCHCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H correctness run")
	}
	cfg := CryptDBClientConfig(testSF)
	cfg.Seed = testSeed
	cfg.PaillierBits = 512
	b := cachedSetup(t, cfg)
	for _, qn := range tpch.SupportedQueries() {
		qn := qn
		t.Run(fmt.Sprintf("Q%02d", qn), func(t *testing.T) {
			checkTPCHQuery(t, b, qn)
		})
	}
}

func TestExecutionGreedyTPCHCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("full TPC-H correctness run")
	}
	cfg := ExecutionGreedyConfig(testSF)
	cfg.Seed = testSeed
	cfg.PaillierBits = 512
	b := cachedSetup(t, cfg)
	for _, qn := range tpch.SupportedQueries() {
		qn := qn
		t.Run(fmt.Sprintf("Q%02d", qn), func(t *testing.T) {
			checkTPCHQuery(t, b, qn)
		})
	}
}
