// Package search implements word-level searchable encryption in the style
// of Song–Wagner–Perrig (SWP), the SEARCH scheme of Table 1. It lets the
// untrusted server evaluate `col LIKE '%word%'` without learning the word
// or the text: the column stores a blob of per-word trapdoor MACs and the
// client hands the server the trapdoor of the searched word.
//
// Leakage: the server learns which rows match a given search token (as the
// paper notes in §3), and the number of distinct words per value, but
// nothing about unqueried words.
package search

import (
	"bytes"
	"strings"

	"repro/internal/crypto/prf"
)

// TokenSize is the per-word token size in bytes. 8 bytes keeps the blobs
// compact; collisions across ~10⁵ distinct words are negligible and only
// cause spurious matches that the client-side exact filter removes.
const TokenSize = 8

// Scheme is a searchable-encryption key for one column.
type Scheme struct {
	f *prf.PRF
}

// New creates a SEARCH scheme from a 16-byte key.
func New(key []byte) (*Scheme, error) {
	f, err := prf.New(key)
	if err != nil {
		return nil, err
	}
	return &Scheme{f: f}, nil
}

// MustNew is New for keys known to be valid.
func MustNew(key []byte) *Scheme {
	s, err := New(key)
	if err != nil {
		panic(err)
	}
	return s
}

// Trapdoor computes the search token for one lowercase word.
func (s *Scheme) Trapdoor(word string) []byte {
	h := s.f.EvalBytes(0x77, []byte(strings.ToLower(word)))
	out := make([]byte, TokenSize)
	copy(out, h[:TokenSize])
	return out
}

// EncryptText produces the searchable blob for a text value: the sorted,
// deduplicated concatenation of per-word trapdoors. Sorting removes word-
// order leakage.
func (s *Scheme) EncryptText(text string) []byte {
	words := Tokenize(text)
	seen := make(map[string]bool, len(words))
	toks := make([][]byte, 0, len(words))
	for _, w := range words {
		t := s.Trapdoor(w)
		k := string(t)
		if !seen[k] {
			seen[k] = true
			toks = append(toks, t)
		}
	}
	sortTokens(toks)
	out := make([]byte, 0, len(toks)*TokenSize)
	for _, t := range toks {
		out = append(out, t...)
	}
	return out
}

// Match reports whether the blob contains the trapdoor token. This is the
// computation the server-side SEARCH_MATCH UDF performs.
func Match(blob, token []byte) bool {
	if len(token) != TokenSize {
		return false
	}
	for i := 0; i+TokenSize <= len(blob); i += TokenSize {
		if bytes.Equal(blob[i:i+TokenSize], token) {
			return true
		}
	}
	return false
}

// Tokenize splits a text into lowercase alphanumeric words.
func Tokenize(text string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return words
}

// PatternWord extracts the single word of a '%word%' LIKE pattern, or
// returns false if the pattern is not of that exact shape. Prefix/suffix
// patterns ('word%') are rejected: a word-level trapdoor matches the word
// anywhere in the text, which over-approximates anchored patterns, so those
// run on the client instead. (Multi-pattern LIKE is unsupported, as in the
// paper's prototype.)
func PatternWord(pattern string) (string, bool) {
	if len(pattern) < 3 || pattern[0] != '%' || pattern[len(pattern)-1] != '%' {
		return "", false
	}
	trimmed := strings.TrimPrefix(pattern, "%")
	trimmed = strings.TrimSuffix(trimmed, "%")
	if trimmed == "" {
		return "", false
	}
	words := Tokenize(trimmed)
	if len(words) != 1 || len(words[0]) != len(trimmed) {
		return "", false
	}
	return words[0], true
}

func sortTokens(toks [][]byte) {
	// insertion sort: blobs are tiny (a handful of words per value)
	for i := 1; i < len(toks); i++ {
		for j := i; j > 0 && bytes.Compare(toks[j-1], toks[j]) > 0; j-- {
			toks[j-1], toks[j] = toks[j], toks[j-1]
		}
	}
}

// BlobSize returns the searchable-blob size for a word count, used by the
// designer's space model.
func BlobSize(distinctWords int) int { return distinctWords * TokenSize }
