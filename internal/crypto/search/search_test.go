package search

import (
	"bytes"
	"testing"

	"repro/internal/crypto/prf"
)

func scheme() *Scheme { return MustNew(prf.DeriveKey([]byte("k"), "search/test")) }

func TestMatchPresentWord(t *testing.T) {
	s := scheme()
	blob := s.EncryptText("the quick BROWN fox jumps")
	for _, w := range []string{"quick", "brown", "fox", "QUICK"} {
		if !Match(blob, s.Trapdoor(w)) {
			t.Errorf("word %q should match", w)
		}
	}
	for _, w := range []string{"slow", "foxes", "quic"} {
		if Match(blob, s.Trapdoor(w)) {
			t.Errorf("word %q should not match", w)
		}
	}
}

func TestBlobDeduplicatesAndSorts(t *testing.T) {
	s := scheme()
	a := s.EncryptText("red red red widget")
	b := s.EncryptText("widget red")
	if !bytes.Equal(a, b) {
		t.Error("same word set should give same blob regardless of order/repeats")
	}
	if len(a) != 2*TokenSize {
		t.Errorf("blob size = %d, want %d", len(a), 2*TokenSize)
	}
}

func TestDifferentKeysUnlinkable(t *testing.T) {
	s1 := scheme()
	s2 := MustNew(prf.DeriveKey([]byte("k"), "search/other"))
	if bytes.Equal(s1.Trapdoor("word"), s2.Trapdoor("word")) {
		t.Error("trapdoors under different keys must differ")
	}
	if Match(s1.EncryptText("word"), s2.Trapdoor("word")) {
		t.Error("cross-key match should fail")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 42nd st.")
	want := []string{"hello", "world", "42nd", "st"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Error("empty text has no tokens")
	}
}

func TestPatternWord(t *testing.T) {
	cases := []struct {
		pat  string
		word string
		ok   bool
	}{
		{"%green%", "green", true},
		{"%special requests%", "", false}, // two words is fine actually? no: space is allowed
		{"%foo%bar%", "", false},
		{"%", "", false},
		{"%a_c%", "", false},
		{"plain", "", false},   // unanchored: not a word search
		{"prefix%", "", false}, // anchored prefix over-matches as a token
		{"%suffix", "", false},
	}
	for _, c := range cases {
		w, ok := PatternWord(c.pat)
		if ok != c.ok {
			t.Errorf("PatternWord(%q) ok = %v, want %v", c.pat, ok, c.ok)
			continue
		}
		if ok && c.word != "" && w != c.word {
			t.Errorf("PatternWord(%q) = %q, want %q", c.pat, w, c.word)
		}
	}
}

func TestMatchRejectsBadToken(t *testing.T) {
	s := scheme()
	blob := s.EncryptText("hello")
	if Match(blob, []byte{1, 2, 3}) {
		t.Error("wrong-size token must not match")
	}
	if Match(nil, s.Trapdoor("hello")) {
		t.Error("empty blob must not match")
	}
}

func TestBlobSize(t *testing.T) {
	if BlobSize(5) != 5*TokenSize {
		t.Error("blob size arithmetic")
	}
}
