package ope

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prf"
)

func scheme() *Scheme { return MustNew(prf.DeriveKey([]byte("k"), "ope/test")) }

// clamp maps arbitrary int64s into the supported plaintext domain.
func clamp(x int64) int64 {
	const lim = int64(1) << (PlainBits - 1)
	m := x % lim
	return m
}

func TestOrderPreservationProperty(t *testing.T) {
	s := scheme()
	f := func(a, b int64) bool {
		a, b = clamp(a), clamp(b)
		ca := s.MustEncrypt(a)
		cb := s.MustEncrypt(b)
		switch {
		case a < b:
			return bytes.Compare(ca, cb) < 0
		case a > b:
			return bytes.Compare(ca, cb) > 0
		default:
			return bytes.Equal(ca, cb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := scheme()
	f := func(x int64) bool {
		x = clamp(x)
		got, err := s.Decrypt(s.MustEncrypt(x))
		return err == nil && got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacentValuesDistinct(t *testing.T) {
	s := scheme()
	prev := s.MustEncrypt(-500)
	for x := int64(-499); x < 500; x++ {
		c := s.MustEncrypt(x)
		if bytes.Compare(prev, c) >= 0 {
			t.Fatalf("ciphertext for %d not strictly greater than for %d", x, x-1)
		}
		prev = c
	}
}

func TestDomainBounds(t *testing.T) {
	s := scheme()
	maxOK := int64(1)<<(PlainBits-1) - 1
	minOK := -(int64(1) << (PlainBits - 1))
	for _, x := range []int64{maxOK, minOK, 0} {
		c, err := s.Encrypt(x)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", x, err)
		}
		got, err := s.Decrypt(c)
		if err != nil || got != x {
			t.Fatalf("round trip %d -> %d (%v)", x, got, err)
		}
	}
	if _, err := s.Encrypt(maxOK + 1); err == nil {
		t.Error("out-of-domain high should fail")
	}
	if _, err := s.Encrypt(minOK - 1); err == nil {
		t.Error("out-of-domain low should fail")
	}
}

func TestDeterminism(t *testing.T) {
	s := scheme()
	if !bytes.Equal(s.MustEncrypt(12345), s.MustEncrypt(12345)) {
		t.Error("OPE must be deterministic")
	}
	s2 := MustNew(prf.DeriveKey([]byte("k"), "ope/other"))
	if bytes.Equal(s.MustEncrypt(12345), s2.MustEncrypt(12345)) {
		t.Error("different keys should map differently")
	}
}

func TestCiphertextSize(t *testing.T) {
	s := scheme()
	if len(s.MustEncrypt(7)) != CiphertextSize {
		t.Errorf("size = %d", len(s.MustEncrypt(7)))
	}
	if _, err := s.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Error("wrong-size ciphertext should fail")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	s := scheme()
	for i := 0; i < b.N; i++ {
		s.MustEncrypt(int64(i % 100000))
	}
}
