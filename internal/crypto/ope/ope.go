// Package ope implements order-preserving encryption: x < y implies
// Enc(x) < Enc(y) bytewise, which lets the untrusted server evaluate range
// predicates, ORDER BY, and MIN/MAX over ciphertexts. Per Table 1 of the
// paper this is MONOMI's weakest scheme — it reveals order and (like the
// Boldyreva scheme the paper uses) partial plaintext information.
//
// The construction is the keyed lazy-sampled random monotone function:
// encryption walks the plaintext's bits from most significant to least,
// splitting the ciphertext interval at a pseudorandom point each step. The
// split point is a PRF of the bit path, so the mapping is deterministic for
// a fixed key, and it is confined to the middle half of the interval so the
// interval provably never collapses: each side keeps ≥ gap/4, and with a
// 126-bit ciphertext space and 48 plaintext bits the final gap is ≥ 2^30.
//
// Domain: signed plaintexts in [-2^47, 2^47) map to 16-byte big-endian
// ciphertexts whose lexicographic byte order equals the plaintext order.
package ope

import (
	"fmt"
	"math/big"

	"repro/internal/crypto/prf"
)

// PlainBits is the supported plaintext domain width in bits.
const PlainBits = 48

// CipherBits is the ciphertext range width in bits.
const CipherBits = 126

// CiphertextSize is the OPE ciphertext size in bytes.
const CiphertextSize = 16

// bias converts signed plaintexts into the unsigned domain.
const bias = int64(1) << (PlainBits - 1)

// Scheme is an OPE key for one column.
type Scheme struct {
	f *prf.PRF
}

// New creates an OPE scheme from a 16-byte key.
func New(key []byte) (*Scheme, error) {
	f, err := prf.New(key)
	if err != nil {
		return nil, err
	}
	return &Scheme{f: f}, nil
}

// MustNew is New for keys known to be valid.
func MustNew(key []byte) *Scheme {
	s, err := New(key)
	if err != nil {
		panic(err)
	}
	return s
}

// split computes the pseudorandom split point of [lo, hi] for the given bit
// path: lo + gap/4 + (PRF(path) mod gap/2), i.e. within the middle half.
func (s *Scheme) split(lo, hi *big.Int, depth int, path uint64) *big.Int {
	gap := new(big.Int).Sub(hi, lo)
	quarter := new(big.Int).Rsh(gap, 2)
	half := new(big.Int).Rsh(gap, 1)
	r := s.f.Eval64(uint32(depth), path)
	off := new(big.Int).Mod(new(big.Int).SetUint64(r), half)
	sp := new(big.Int).Add(lo, quarter)
	sp.Add(sp, off)
	return sp
}

// Encrypt maps a signed plaintext to its order-preserving ciphertext,
// a CiphertextSize-byte big-endian value.
func (s *Scheme) Encrypt(x int64) ([]byte, error) {
	u := x + bias
	if u < 0 || u >= int64(1)<<PlainBits {
		return nil, fmt.Errorf("ope: plaintext %d outside ±2^%d domain", x, PlainBits-1)
	}
	lo := big.NewInt(0)
	hi := new(big.Int).Lsh(big.NewInt(1), CipherBits)
	path := uint64(1) // bit path with a leading sentinel 1
	one := big.NewInt(1)
	for i := PlainBits - 1; i >= 0; i-- {
		sp := s.split(lo, hi, i, path)
		bit := (uint64(u) >> uint(i)) & 1
		if bit == 0 {
			hi = sp
		} else {
			lo = new(big.Int).Add(sp, one)
		}
		path = path<<1 | bit
	}
	out := make([]byte, CiphertextSize)
	lo.FillBytes(out)
	return out, nil
}

// MustEncrypt is Encrypt for values known to be in-domain.
func (s *Scheme) MustEncrypt(x int64) []byte {
	c, err := s.Encrypt(x)
	if err != nil {
		panic(err)
	}
	return c
}

// Decrypt inverts Encrypt by replaying the binary search on the ciphertext.
func (s *Scheme) Decrypt(ct []byte) (int64, error) {
	if len(ct) != CiphertextSize {
		return 0, fmt.Errorf("ope: ciphertext must be %d bytes, got %d", CiphertextSize, len(ct))
	}
	c := new(big.Int).SetBytes(ct)
	lo := big.NewInt(0)
	hi := new(big.Int).Lsh(big.NewInt(1), CipherBits)
	path := uint64(1)
	one := big.NewInt(1)
	var u uint64
	for i := PlainBits - 1; i >= 0; i-- {
		sp := s.split(lo, hi, i, path)
		var bit uint64
		if c.Cmp(sp) > 0 {
			bit = 1
			lo = new(big.Int).Add(sp, one)
		} else {
			hi = sp
		}
		u |= bit << uint(i)
		path = path<<1 | bit
	}
	return int64(u) - bias, nil
}
