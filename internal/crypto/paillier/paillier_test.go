package paillier

import (
	"math/big"
	"testing"
	"testing/quick"
)

// testBits keeps keygen fast in tests; production uses 1024.
const testBits = 256

func testKey(t testing.TB) *Key {
	t.Helper()
	k, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := testKey(t)
	for _, m := range []int64{0, 1, 2, 12345, 1 << 40} {
		c, err := k.EncryptInt64(m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := k.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %v", m, got)
		}
	}
}

func TestHomomorphicAdditionProperty(t *testing.T) {
	k := testKey(t)
	f := func(a, b uint32) bool {
		ca, err1 := k.EncryptInt64(int64(a))
		cb, err2 := k.EncryptInt64(int64(b))
		if err1 != nil || err2 != nil {
			return false
		}
		sum, err := k.Decrypt(k.AddCipher(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	cfg := &quick.Config{MaxCount: 20} // bignum ops are not free
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestProductCipherMatchesFold(t *testing.T) {
	k := testKey(t)
	var cs []*big.Int
	sum := int64(0)
	for i := int64(1); i <= 9; i++ {
		c, err := k.EncryptInt64(i * 11)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		sum += i * 11
	}
	if k.ProductCipher(nil) != nil {
		t.Error("empty product should be nil")
	}
	one := k.ProductCipher(cs[:1])
	if one.Cmp(cs[0]) != 0 {
		t.Error("singleton product should equal its element")
	}
	prod := k.ProductCipher(cs)
	fold := new(big.Int).Set(cs[0])
	for _, c := range cs[1:] {
		fold = k.AddCipher(fold, c)
	}
	if prod.Cmp(fold) != 0 {
		t.Error("batched product diverges from AddCipher fold")
	}
	m, err := k.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != sum {
		t.Errorf("product decrypts to %v, want %d", m, sum)
	}
}

func TestCiphertextsRandomized(t *testing.T) {
	k := testKey(t)
	c1, _ := k.EncryptInt64(7)
	c2, _ := k.EncryptInt64(7)
	if c1.Cmp(c2) == 0 {
		t.Error("Paillier is probabilistic: equal plaintexts must give different ciphertexts")
	}
}

func TestMulConst(t *testing.T) {
	k := testKey(t)
	c, _ := k.EncryptInt64(21)
	got, err := k.Decrypt(k.MulConst(c, big.NewInt(3)))
	if err != nil || got.Int64() != 63 {
		t.Errorf("3*21 = %v (%v)", got, err)
	}
}

func TestEncryptZeroIsIdentity(t *testing.T) {
	k := testKey(t)
	z, err := k.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	c, _ := k.EncryptInt64(99)
	got, _ := k.Decrypt(k.AddCipher(c, z))
	if got.Int64() != 99 {
		t.Errorf("x + 0 = %v", got)
	}
}

func TestRangeErrors(t *testing.T) {
	k := testKey(t)
	if _, err := k.Encrypt(new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Error("negative plaintext should fail")
	}
	if _, err := k.Encrypt(k.N); err == nil {
		t.Error("plaintext >= N should fail")
	}
	if _, err := k.EncryptInt64(-5); err == nil {
		t.Error("negative int should fail")
	}
	if _, err := k.Decrypt(big.NewInt(0)); err == nil {
		t.Error("zero ciphertext should fail")
	}
	if _, err := GenerateKey(32); err == nil {
		t.Error("tiny modulus should fail")
	}
}

func TestCiphertextSerialization(t *testing.T) {
	k := testKey(t)
	c, _ := k.EncryptInt64(424242)
	b := k.CiphertextBytes(c)
	if len(b) != k.CiphertextSize() {
		t.Errorf("serialized size = %d, want %d", len(b), k.CiphertextSize())
	}
	got, err := k.Decrypt(k.CiphertextFromBytes(b))
	if err != nil || got.Int64() != 424242 {
		t.Errorf("round trip through bytes = %v (%v)", got, err)
	}
}

func TestPlaintextBits(t *testing.T) {
	k := testKey(t)
	bits := k.PlaintextBits()
	if bits < testBits-2 || bits >= testBits {
		t.Errorf("plaintext bits = %d for %d-bit modulus", bits, testBits)
	}
	// A plaintext that fills the usable width must round trip.
	m := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	c, err := k.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := k.Decrypt(c)
	if got.Cmp(m) != 0 {
		t.Error("wide plaintext round trip failed")
	}
}

func BenchmarkEncrypt1024(b *testing.B) {
	k, err := GenerateKey(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.EncryptInt64(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddCipher1024(b *testing.B) {
	k, err := GenerateKey(1024)
	if err != nil {
		b.Fatal(err)
	}
	c1, _ := k.EncryptInt64(1)
	c2, _ := k.EncryptInt64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c1 = k.AddCipher(c1, c2)
	}
}
