package paillier

import (
	"math/big"
	"runtime"
	"testing"
	"time"
)

// TestPooledEncryptDecrypts: pooled encryptions must decrypt to the same
// plaintexts, and homomorphic addition must keep working across pooled and
// unpooled ciphertexts (they are the same construction, only the blinding
// factor's computation time moves).
func TestPooledEncryptDecrypts(t *testing.T) {
	k, err := GenerateKey(256)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(k, 16, 2)
	defer pool.Close()
	if err := k.UsePool(pool); err != nil {
		t.Fatal(err)
	}
	defer k.UsePool(nil)

	var sum int64
	acc, err := k.EncryptZero()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 40; i++ {
		c, err := k.EncryptInt64(i * 13)
		if err != nil {
			t.Fatal(err)
		}
		m, err := k.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if m.Int64() != i*13 {
			t.Fatalf("pooled encrypt(%d) decrypted to %v", i*13, m)
		}
		acc = k.AddCipher(acc, c)
		sum += i * 13
	}
	m, err := k.Decrypt(acc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Int64() != sum {
		t.Fatalf("homomorphic sum = %v, want %d", m, sum)
	}
}

// TestPoolDrainRefill: encrypting faster than the fillers refill must not
// block or fail (inline fallback), and an idle pool must refill to
// capacity.
func TestPoolDrainRefill(t *testing.T) {
	k, err := GenerateKey(128)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(k, 8, 1)
	defer pool.Close()
	if err := k.UsePool(pool); err != nil {
		t.Fatal(err)
	}
	defer k.UsePool(nil)
	// Burst: far more encryptions than the pool holds. Every one must
	// succeed whether it drew from the pool or fell back inline.
	for i := 0; i < 100; i++ {
		c, err := k.EncryptInt64(int64(i))
		if err != nil {
			t.Fatalf("encrypt %d: %v", i, err)
		}
		m, err := k.Decrypt(c)
		if err != nil || m.Int64() != int64(i) {
			t.Fatalf("decrypt %d: %v %v", i, m, err)
		}
	}
	// Idle: the filler must restock to capacity.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Ready() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("pool only refilled to %d/8", pool.Ready())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolCloseJoinsWorkers: Close must terminate the filler goroutines —
// including ones blocked on a full channel — and be idempotent.
func TestPoolCloseJoinsWorkers(t *testing.T) {
	k, err := GenerateKey(128)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	pools := make([]*Pool, 5)
	for i := range pools {
		pools[i] = NewPool(k, 4, 3)
	}
	// Let the fillers reach the blocked-on-full state.
	deadline := time.Now().Add(5 * time.Second)
	for pools[0].Ready() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("pool never filled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range pools {
		p.Close()
		p.Close() // idempotent
	}
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPoolWrongKeyRefused: a pool precomputes factors mod one key's N² and
// must not attach to another key.
func TestPoolWrongKeyRefused(t *testing.T) {
	k1, err := GenerateKey(128)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateKey(128)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(k1, 2, 1)
	defer pool.Close()
	if err := k2.UsePool(pool); err == nil {
		t.Fatal("attaching a pool built for another key must fail")
	}
}

// TestPooledCiphertextUniform: two pooled encryptions of the same plaintext
// must differ (fresh blinding factors), and a pooled ciphertext must stay
// in range.
func TestPooledCiphertextUniform(t *testing.T) {
	k, err := GenerateKey(128)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(k, 4, 1)
	defer pool.Close()
	if err := k.UsePool(pool); err != nil {
		t.Fatal(err)
	}
	defer k.UsePool(nil)
	a, err := k.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Encrypt(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cmp(b) == 0 {
		t.Fatal("two encryptions of the same plaintext must not collide")
	}
	if a.Sign() <= 0 || a.Cmp(k.N2) >= 0 {
		t.Fatal("pooled ciphertext out of range")
	}
}
