package paillier

// Randomness pooling for the encryption hot path. A Paillier encryption is
// c = g^m · r^N mod N², and the expensive factor — r^N mod N², a full
// modular exponentiation — does not depend on the plaintext at all. A Pool
// precomputes those blinding factors on background workers; a pooled
// Encrypt then costs one multiply-and-reduce (g^m for g = N+1 is the
// linear form 1 + m·N). Ciphertexts are byte-compatible with unpooled
// encryption: both are g^m·r^N for a fresh uniform r ∈ Z*_N, the pool only
// moves *when* r^N is computed.

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"
)

// Pool precomputes r^N mod N² blinding factors for one key.
type Pool struct {
	key *Key

	factors chan *big.Int
	stop    chan struct{}
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPool starts a pool of capacity precomputed factors, refilled by
// workers background goroutines (≥ 1). Close must be called to release
// them.
func NewPool(key *Key, capacity, workers int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		key:     key,
		factors: make(chan *big.Int, capacity),
		stop:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fillLoop()
	}
	return p
}

// fillLoop computes blinding factors until the channel is full, blocking
// while it stays full, and exits on Close.
func (p *Pool) fillLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		f, err := p.key.blindingFactor()
		if err != nil {
			// crypto/rand failing is unrecoverable; stop refilling and let
			// Encrypt fall back to inline computation (which will surface
			// the same error).
			return
		}
		select {
		case p.factors <- f:
		case <-p.stop:
			return
		}
	}
}

// take returns a precomputed factor, or nil when the pool is momentarily
// drained (the caller computes inline rather than blocking the hot path).
func (p *Pool) take() *big.Int {
	select {
	case f := <-p.factors:
		return f
	default:
		return nil
	}
}

// Ready reports how many precomputed factors are currently pooled.
func (p *Pool) Ready() int { return len(p.factors) }

// Close stops the refill workers and joins them. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	p.mu.Unlock()
	// Drain so a worker blocked on a full channel sees stop.
	for {
		select {
		case <-p.factors:
		default:
			p.wg.Wait()
			return
		}
	}
}

// blindingFactor computes r^N mod N² for a fresh uniform r ∈ Z*_N.
func (k *Key) blindingFactor() (*big.Int, error) {
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(k.randSrc, k.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, k.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	return new(big.Int).Exp(r, k.N, k.N2), nil
}

// UsePool attaches a pool to the key: subsequent Encrypt calls consume
// precomputed blinding factors when available and compute inline when the
// pool is drained. Pass nil to detach. The pool must have been created for
// this key.
func (k *Key) UsePool(p *Pool) error {
	if p != nil && p.key != k {
		return fmt.Errorf("paillier: pool belongs to a different key")
	}
	k.pmu.Lock()
	k.pool = p
	k.pmu.Unlock()
	return nil
}

// pooledFactor returns a precomputed blinding factor if a pool is attached
// and stocked.
func (k *Key) pooledFactor() *big.Int {
	k.pmu.RLock()
	p := k.pool
	k.pmu.RUnlock()
	if p == nil {
		return nil
	}
	return p.take()
}
