// Package paillier implements the Paillier additively homomorphic
// cryptosystem (Paillier, EUROCRYPT '99) used by MONOMI to compute SUM and
// AVG on the untrusted server: E(a) * E(b) mod n² = E(a+b).
//
// Plaintexts are elements of Z_n where n is the public modulus (1,024 bits
// in the paper's configuration, giving 2,048-bit ciphertexts). MONOMI packs
// multiple column values and multiple rows into a single plaintext (§5.2,
// §5.3); that packing lives in internal/packing — this package provides the
// raw cryptosystem.
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// PublicKey is the public half of a Paillier keypair: (N, G) plus the
// cached N². It supports every operation the untrusted server performs —
// the homomorphic fold (ProductCipher/AddCipher), constant
// multiplication, and ciphertext (de)serialization — and nothing that
// produces plaintext. Per MONOMI's trust model (§3), server-side state
// (packing.Store, the engine's crypto UDFs) holds a *PublicKey only; the
// trustflow analyzer (internal/lint) enforces that the full Key never
// crosses into an untrusted package.
type PublicKey struct {
	N  *big.Int // modulus (public)
	N2 *big.Int // N² (public, cached)
	G  *big.Int // generator, N+1 (public)
}

// Key is a Paillier keypair: the embedded public half plus the private
// decryption exponents (Lambda, Mu). Only the trusted client holds one.
type Key struct {
	PublicKey
	Lambda  *big.Int // lcm(p-1, q-1) (private)
	Mu      *big.Int // (L(G^Lambda mod N²))⁻¹ mod N (private)
	randSrc io.Reader

	pmu  sync.RWMutex
	pool *Pool // optional precomputed blinding factors (see pool.go)
}

// Public returns the shareable public half of the keypair.
func (k *Key) Public() *PublicKey { return &k.PublicKey }

// GenerateKey creates a keypair with an n-bit modulus. The paper uses 1,024
// bits; tests use smaller moduli for speed.
func GenerateKey(bits int) (*Key, error) {
	return generateKey(rand.Reader, bits)
}

func generateKey(src io.Reader, bits int) (*Key, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: modulus must be at least 64 bits")
	}
	for {
		p, err := rand.Prime(src, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(src, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		p1 := new(big.Int).Sub(p, big.NewInt(1))
		q1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, p1, q1)
		lambda := new(big.Int).Div(new(big.Int).Mul(p1, q1), gcd)
		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, big.NewInt(1))
		// mu = (L(g^lambda mod n²))⁻¹ mod n
		u := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(u, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue
		}
		return &Key{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			Lambda:    lambda, Mu: mu, randSrc: src,
		}, nil
	}
}

// lFunc is L(u) = (u - 1) / n.
func lFunc(u, n *big.Int) *big.Int {
	return new(big.Int).Div(new(big.Int).Sub(u, big.NewInt(1)), n)
}

// PlaintextBits returns the usable plaintext width in bits (slightly under
// the modulus width to avoid wraparound).
func (k *PublicKey) PlaintextBits() int { return k.N.BitLen() - 2 }

// Encrypt encrypts m ∈ [0, N).
func (k *Key) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(k.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, N)")
	}
	// The blinding factor r^N mod N² (r uniform in Z*_N) is plaintext-
	// independent; take a precomputed one when a pool is attached and
	// stocked, else compute inline.
	rn := k.pooledFactor()
	if rn == nil {
		var err error
		rn, err = k.blindingFactor()
		if err != nil {
			return nil, err
		}
	}
	// c = g^m * r^N mod N². With g = N+1, g^m = 1 + m*N (mod N²).
	gm := new(big.Int).Mul(m, k.N)
	gm.Add(gm, big.NewInt(1))
	gm.Mod(gm, k.N2)
	c := new(big.Int).Mul(gm, rn)
	c.Mod(c, k.N2)
	return c, nil
}

// EncryptInt64 encrypts a non-negative small integer.
func (k *Key) EncryptInt64(m int64) (*big.Int, error) {
	if m < 0 {
		return nil, fmt.Errorf("paillier: negative plaintext %d", m)
	}
	return k.Encrypt(big.NewInt(m))
}

// Decrypt recovers the plaintext of c.
func (k *Key) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(k.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	u := new(big.Int).Exp(c, k.Lambda, k.N2)
	m := lFunc(u, k.N)
	m.Mul(m, k.Mu)
	m.Mod(m, k.N)
	return m, nil
}

// AddCipher homomorphically adds two ciphertexts: E(a+b) = E(a)·E(b) mod N².
func (k *PublicKey) AddCipher(a, b *big.Int) *big.Int {
	c := new(big.Int).Mul(a, b)
	return c.Mod(c, k.N2)
}

// ProductCipher homomorphically adds a batch of ciphertexts:
// E(Σaᵢ) = Πᵢ E(aᵢ) mod N². It reuses one accumulator and one scratch
// big.Int across the whole batch, unlike repeated AddCipher calls which
// allocate per multiplication. Returns nil for an empty batch.
func (k *PublicKey) ProductCipher(cs []*big.Int) *big.Int {
	if len(cs) == 0 {
		return nil
	}
	acc := new(big.Int).Set(cs[0])
	tmp := new(big.Int)
	for _, c := range cs[1:] {
		tmp.Mul(acc, c)
		acc.Mod(tmp, k.N2)
	}
	return acc
}

// MulConst homomorphically multiplies a ciphertext's plaintext by a
// constant: E(s·a) = E(a)^s mod N².
func (k *PublicKey) MulConst(a *big.Int, s *big.Int) *big.Int {
	return new(big.Int).Exp(a, s, k.N2)
}

// EncryptZero returns a fresh encryption of zero (the multiplicative
// identity for homomorphic accumulation).
func (k *Key) EncryptZero() (*big.Int, error) { return k.Encrypt(big.NewInt(0)) }

// CiphertextSize returns the ciphertext size in bytes (2× modulus).
func (k *PublicKey) CiphertextSize() int { return (k.N2.BitLen() + 7) / 8 }

// CiphertextBytes serializes a ciphertext as fixed-width big-endian bytes.
func (k *PublicKey) CiphertextBytes(c *big.Int) []byte {
	out := make([]byte, k.CiphertextSize())
	c.FillBytes(out)
	return out
}

// CiphertextFromBytes parses a serialized ciphertext.
func (k *PublicKey) CiphertextFromBytes(b []byte) *big.Int { return new(big.Int).SetBytes(b) }
