package prf

import (
	"bytes"
	"testing"
)

func key() []byte { return DeriveKey([]byte("master"), "test") }

func TestDeriveKeyIndependence(t *testing.T) {
	k1 := DeriveKey([]byte("master"), "det/col1")
	k2 := DeriveKey([]byte("master"), "det/col2")
	k3 := DeriveKey([]byte("other"), "det/col1")
	if bytes.Equal(k1, k2) || bytes.Equal(k1, k3) {
		t.Error("derived keys must differ across labels and masters")
	}
	if !bytes.Equal(k1, DeriveKey([]byte("master"), "det/col1")) {
		t.Error("derivation must be deterministic")
	}
	if len(k1) != KeySize {
		t.Errorf("key size = %d", len(k1))
	}
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New([]byte("short")); err == nil {
		t.Error("expected error for wrong key size")
	}
}

func TestEval64Deterministic(t *testing.T) {
	p := MustNew(key())
	a := p.Eval64(1, 42)
	if a != p.Eval64(1, 42) {
		t.Error("PRF must be deterministic")
	}
	if a == p.Eval64(2, 42) {
		t.Error("different tweaks should (overwhelmingly) differ")
	}
	if a == p.Eval64(1, 43) {
		t.Error("different inputs should (overwhelmingly) differ")
	}
}

func TestEvalBytesLengthSeparation(t *testing.T) {
	p := MustNew(key())
	// "a" vs "a\x00" would collide without length folding.
	a := p.EvalBytes(0, []byte("a"))
	b := p.EvalBytes(0, []byte("a\x00"))
	if a == b {
		t.Error("length must be folded into the MAC")
	}
}

func TestStreamDeterministic(t *testing.T) {
	p := MustNew(key())
	a := make([]byte, 64)
	b := make([]byte, 64)
	p.Stream(3, []byte("seed"), a)
	p.Stream(3, []byte("seed"), b)
	if !bytes.Equal(a, b) {
		t.Error("stream must be deterministic")
	}
	p.Stream(3, []byte("seed2"), b)
	if bytes.Equal(a, b) {
		t.Error("different seeds should differ")
	}
	allZero := true
	for _, x := range a {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("stream should not be all zeros")
	}
}

func TestPerm256IsPermutation(t *testing.T) {
	p := MustNew(key())
	perm, inv := p.Perm256(9)
	seen := [256]bool{}
	for i := 0; i < 256; i++ {
		seen[perm[i]] = true
		if inv[perm[i]] != byte(i) {
			t.Fatalf("inv[perm[%d]] = %d", i, inv[perm[i]])
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d missing from permutation", i)
		}
	}
}
