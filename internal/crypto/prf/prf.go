// Package prf provides the keyed pseudorandom-function and key-derivation
// primitives shared by MONOMI's encryption schemes (DET, OPE, SEARCH).
//
// All schemes in this reproduction are built from AES-128 (via crypto/aes)
// and SHA-256 (for key derivation), mirroring the paper's use of OpenSSL
// primitives. A single master key is expanded into independent per-scheme,
// per-column subkeys so that, e.g., the DET encryption of a value in one
// column is unlinkable to the DET encryption of the same value in another.
package prf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// KeySize is the subkey size in bytes (AES-128).
const KeySize = 16

// DeriveKey derives an independent subkey from a master key and a purpose
// label (e.g. "det/lineitem.l_shipdate"). HMAC-SHA256 truncated to 128 bits.
func DeriveKey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(label))
	return mac.Sum(nil)[:KeySize]
}

// PRF is an AES-based pseudorandom function from 64-bit tweaked inputs to
// 128-bit outputs. It is deterministic for a fixed key.
type PRF struct {
	block cipher.Block
}

// New creates a PRF from a 16-byte key.
func New(key []byte) (*PRF, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("prf: key must be %d bytes, got %d", KeySize, len(key))
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &PRF{block: b}, nil
}

// MustNew is New for keys known to be valid.
func MustNew(key []byte) *PRF {
	p, err := New(key)
	if err != nil {
		panic(err)
	}
	return p
}

// Eval64 evaluates the PRF on (tweak, x) and returns a uint64.
func (p *PRF) Eval64(tweak uint32, x uint64) uint64 {
	var in, out [16]byte
	binary.BigEndian.PutUint32(in[0:], tweak)
	binary.BigEndian.PutUint64(in[8:], x)
	p.block.Encrypt(out[:], in[:])
	return binary.BigEndian.Uint64(out[:8])
}

// EvalBytes evaluates the PRF on arbitrary bytes (CBC-MAC style) and returns
// a 16-byte output. Inputs of different lengths never collide because the
// length is folded into the first block.
func (p *PRF) EvalBytes(tweak uint32, data []byte) [16]byte {
	var acc [16]byte
	binary.BigEndian.PutUint32(acc[0:], tweak)
	binary.BigEndian.PutUint64(acc[8:], uint64(len(data)))
	p.block.Encrypt(acc[:], acc[:])
	var blk [16]byte
	for len(data) > 0 {
		n := copy(blk[:], data)
		for i := n; i < 16; i++ {
			blk[i] = 0
		}
		for i := 0; i < 16; i++ {
			acc[i] ^= blk[i]
		}
		p.block.Encrypt(acc[:], acc[:])
		data = data[n:]
	}
	return acc
}

// Stream fills dst with a deterministic keystream derived from (tweak, seed).
// Used for Feistel round functions over long byte strings.
func (p *PRF) Stream(tweak uint32, seed []byte, dst []byte) {
	iv := p.EvalBytes(tweak, seed)
	ctr := cipher.NewCTR(p.block, iv[:])
	for i := range dst {
		dst[i] = 0
	}
	ctr.XORKeyStream(dst, dst)
}

// Perm256 builds a keyed permutation of the byte domain [0,256), used for
// format-preserving encryption of single-byte values. The permutation is a
// Fisher–Yates shuffle driven by the PRF.
func (p *PRF) Perm256(tweak uint32) (perm, inv [256]byte) {
	for i := 0; i < 256; i++ {
		perm[i] = byte(i)
	}
	for i := 255; i > 0; i-- {
		j := int(p.Eval64(tweak, uint64(i)) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < 256; i++ {
		inv[perm[i]] = byte(i)
	}
	return perm, inv
}
