// Package det implements deterministic encryption, the scheme that lets the
// untrusted server evaluate equality (a = const, IN, GROUP BY, equi-join)
// over ciphertexts. Equal plaintexts produce equal ciphertexts; the only
// leakage is duplicates (Table 1 of the paper).
//
// Two constructions are used, both length-preserving as in the paper's
// space-efficient encryption (§5.2):
//
//   - Integers (incl. dates) use an FFX-style balanced Feistel network over
//     the 64-bit domain keyed by AES, so an 8-byte plaintext maps to an
//     8-byte ciphertext (vs. a 16-byte AES block).
//   - Byte strings use a CMC-style wide-block Feistel: 4 rounds of
//     stream-XOR over the two halves, giving a length-preserving strong
//     pseudorandom permutation over {0,1}^8n for n ≥ 2; 1-byte inputs use a
//     keyed byte permutation; empty input maps to itself.
package det

import (
	"repro/internal/crypto/prf"
)

// Scheme is a deterministic encryption key for one column.
type Scheme struct {
	f *prf.PRF
}

// feistelRounds for the integer FFX network. 10 rounds of a balanced
// Feistel with a PRF round function is the FFX recommendation.
const feistelRounds = 10

// wideRounds for the byte-string wide-block cipher (CMC uses a 2-pass
// structure; an unbalanced 4-round Feistel gives the same SPRP interface).
const wideRounds = 4

// New creates a DET scheme from a 16-byte key.
func New(key []byte) (*Scheme, error) {
	f, err := prf.New(key)
	if err != nil {
		return nil, err
	}
	return &Scheme{f: f}, nil
}

// MustNew is New for keys known to be valid.
func MustNew(key []byte) *Scheme {
	s, err := New(key)
	if err != nil {
		panic(err)
	}
	return s
}

// EncryptUint64 applies the FFX Feistel network to a 64-bit value.
// Signed integers are passed through their two's-complement bits.
func (s *Scheme) EncryptUint64(x uint64) uint64 {
	l := uint32(x >> 32)
	r := uint32(x)
	for i := 0; i < feistelRounds; i++ {
		l, r = r, l^uint32(s.f.Eval64(uint32(i), uint64(r)))
	}
	return uint64(l)<<32 | uint64(r)
}

// DecryptUint64 inverts EncryptUint64.
func (s *Scheme) DecryptUint64(x uint64) uint64 {
	l := uint32(x >> 32)
	r := uint32(x)
	for i := feistelRounds - 1; i >= 0; i-- {
		l, r = r^uint32(s.f.Eval64(uint32(i), uint64(l))), l
	}
	return uint64(l)<<32 | uint64(r)
}

// EncryptInt64 encrypts a signed integer (dates, scaled decimals, keys).
func (s *Scheme) EncryptInt64(x int64) uint64 { return s.EncryptUint64(uint64(x)) }

// DecryptInt64 inverts EncryptInt64.
func (s *Scheme) DecryptInt64(c uint64) int64 { return int64(s.DecryptUint64(c)) }

// EncryptBytes applies the length-preserving wide-block cipher to a byte
// string. The result has exactly len(pt) bytes.
func (s *Scheme) EncryptBytes(pt []byte) []byte {
	n := len(pt)
	out := make([]byte, n)
	copy(out, pt)
	switch {
	case n == 0:
		return out
	case n == 1:
		perm, _ := s.f.Perm256(0x5eed)
		out[0] = perm[out[0]]
		return out
	}
	half := n / 2
	l, r := out[:half], out[half:]
	tmp := make([]byte, n)
	for i := 0; i < wideRounds; i++ {
		// l ^= F_i(r); swap
		ks := tmp[:len(l)]
		s.f.Stream(uint32(i), r, ks)
		for j := range l {
			l[j] ^= ks[j]
		}
		if i < wideRounds-1 {
			l, r = r, l
		}
	}
	return out
}

// DecryptBytes inverts EncryptBytes.
func (s *Scheme) DecryptBytes(ct []byte) []byte {
	n := len(ct)
	out := make([]byte, n)
	copy(out, ct)
	switch {
	case n == 0:
		return out
	case n == 1:
		_, inv := s.f.Perm256(0x5eed)
		out[0] = inv[out[0]]
		return out
	}
	half := n / 2
	l, r := out[:half], out[half:]
	// Recreate the final (l, r) views after the forward swaps.
	views := make([][2][]byte, wideRounds)
	cl, cr := l, r
	for i := 0; i < wideRounds; i++ {
		views[i] = [2][]byte{cl, cr}
		if i < wideRounds-1 {
			cl, cr = cr, cl
		}
	}
	tmp := make([]byte, n)
	for i := wideRounds - 1; i >= 0; i-- {
		vl, vr := views[i][0], views[i][1]
		ks := tmp[:len(vl)]
		s.f.Stream(uint32(i), vr, ks)
		for j := range vl {
			vl[j] ^= ks[j]
		}
	}
	return out
}

// EncryptString is EncryptBytes over a string's bytes.
func (s *Scheme) EncryptString(v string) []byte { return s.EncryptBytes([]byte(v)) }

// DecryptString inverts EncryptString.
func (s *Scheme) DecryptString(ct []byte) string { return string(s.DecryptBytes(ct)) }

// CiphertextSize returns the DET ciphertext size for a plaintext length:
// length-preserving, the point of §5.2.
func CiphertextSize(ptLen int) int { return ptLen }
