package det

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prf"
)

func scheme() *Scheme { return MustNew(prf.DeriveKey([]byte("k"), "det/test")) }

func TestUint64RoundTripProperty(t *testing.T) {
	s := scheme()
	f := func(x uint64) bool { return s.DecryptUint64(s.EncryptUint64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64RoundTripProperty(t *testing.T) {
	s := scheme()
	f := func(x int64) bool { return s.DecryptInt64(s.EncryptInt64(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	s := scheme()
	if s.EncryptUint64(7) != s.EncryptUint64(7) {
		t.Error("DET must be deterministic")
	}
	s2 := MustNew(prf.DeriveKey([]byte("k"), "det/other"))
	if s.EncryptUint64(7) == s2.EncryptUint64(7) {
		t.Error("different keys should give different ciphertexts")
	}
}

func TestIntCiphertextsDiffer(t *testing.T) {
	s := scheme()
	seen := make(map[uint64]uint64)
	for x := uint64(0); x < 1000; x++ {
		c := s.EncryptUint64(x)
		if prev, ok := seen[c]; ok {
			t.Fatalf("collision: %d and %d -> %d", prev, x, c)
		}
		seen[c] = x
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	s := scheme()
	f := func(pt []byte) bool {
		ct := s.EncryptBytes(pt)
		if len(ct) != len(pt) {
			return false // must be length-preserving
		}
		return bytes.Equal(s.DecryptBytes(ct), pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesEdgeLengths(t *testing.T) {
	s := scheme()
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 31, 32, 33, 255} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 7)
		}
		ct := s.EncryptBytes(pt)
		if len(ct) != n {
			t.Fatalf("len %d: ciphertext length %d", n, len(ct))
		}
		if n >= 2 && bytes.Equal(ct, pt) {
			t.Errorf("len %d: ciphertext equals plaintext", n)
		}
		if got := s.DecryptBytes(ct); !bytes.Equal(got, pt) {
			t.Fatalf("len %d: round trip failed", n)
		}
	}
}

func TestStringHelpers(t *testing.T) {
	s := scheme()
	ct := s.EncryptString("FRANCE")
	if s.DecryptString(ct) != "FRANCE" {
		t.Error("string round trip")
	}
	if !bytes.Equal(ct, s.EncryptString("FRANCE")) {
		t.Error("string DET must be deterministic")
	}
	if bytes.Equal(ct, s.EncryptString("GREECE")) {
		t.Error("distinct strings should encrypt differently")
	}
}

func TestInputNotMutated(t *testing.T) {
	s := scheme()
	pt := []byte("hello world")
	cp := append([]byte(nil), pt...)
	_ = s.EncryptBytes(pt)
	if !bytes.Equal(pt, cp) {
		t.Error("EncryptBytes must not mutate its input")
	}
}

func TestCiphertextSizeIsLengthPreserving(t *testing.T) {
	if CiphertextSize(10) != 10 || CiphertextSize(0) != 0 {
		t.Error("DET is length-preserving")
	}
}
