// Package rnd implements randomized (probabilistic) encryption — the paper's
// strongest scheme ("Randomized AES + CBC" in Table 1). Ciphertexts of equal
// plaintexts are unlinkable; the server can perform no computation on them.
//
// The construction is AES-CTR with a fresh random IV prepended to the
// ciphertext, which matches AES-CBC's security for this purpose while
// avoiding padding (the IV is the only expansion: 16 bytes per value).
package rnd

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// Scheme is a randomized encryption key.
type Scheme struct {
	block cipher.Block
	// randSource is swappable for deterministic tests.
	randSource io.Reader
}

// ivSize is the per-ciphertext expansion in bytes.
const ivSize = 16

// New creates a randomized scheme from a 16-byte key.
func New(key []byte) (*Scheme, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Scheme{block: b, randSource: rand.Reader}, nil
}

// Encrypt encrypts pt under a fresh IV. Output layout: IV || CT.
func (s *Scheme) Encrypt(pt []byte) ([]byte, error) {
	out := make([]byte, ivSize+len(pt))
	if _, err := io.ReadFull(s.randSource, out[:ivSize]); err != nil {
		return nil, fmt.Errorf("rnd: iv: %w", err)
	}
	cipher.NewCTR(s.block, out[:ivSize]).XORKeyStream(out[ivSize:], pt)
	return out, nil
}

// Decrypt reverses Encrypt.
func (s *Scheme) Decrypt(ct []byte) ([]byte, error) {
	if len(ct) < ivSize {
		return nil, fmt.Errorf("rnd: ciphertext too short (%d bytes)", len(ct))
	}
	pt := make([]byte, len(ct)-ivSize)
	cipher.NewCTR(s.block, ct[:ivSize]).XORKeyStream(pt, ct[ivSize:])
	return pt, nil
}

// CiphertextSize returns the ciphertext length for a plaintext length,
// used by the designer's space model.
func CiphertextSize(ptLen int) int { return ivSize + ptLen }
