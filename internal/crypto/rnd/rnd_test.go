package rnd

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/crypto/prf"
)

func scheme(t *testing.T) *Scheme {
	t.Helper()
	s, err := New(prf.DeriveKey([]byte("k"), "rnd/test"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTripProperty(t *testing.T) {
	s := scheme(t)
	f := func(pt []byte) bool {
		ct, err := s.Encrypt(pt)
		if err != nil {
			return false
		}
		got, err := s.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbabilistic(t *testing.T) {
	s := scheme(t)
	c1, _ := s.Encrypt([]byte("secret"))
	c2, _ := s.Encrypt([]byte("secret"))
	if bytes.Equal(c1, c2) {
		t.Error("RND must produce distinct ciphertexts for equal plaintexts")
	}
}

func TestExpansionIsIVOnly(t *testing.T) {
	s := scheme(t)
	ct, _ := s.Encrypt(make([]byte, 100))
	if len(ct) != CiphertextSize(100) || len(ct) != 116 {
		t.Errorf("ciphertext size = %d", len(ct))
	}
}

func TestDecryptErrors(t *testing.T) {
	s := scheme(t)
	if _, err := s.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Error("short ciphertext should fail")
	}
}

func TestBadKey(t *testing.T) {
	if _, err := New([]byte("nope")); err == nil {
		t.Error("bad key size should fail")
	}
}
