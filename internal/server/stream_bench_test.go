package server

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/value"
	"repro/internal/wire"
)

// Peak-heap benchmarks for the wire protocols: the materialized wire holds
// the whole engine.Result and its framed encoding alongside the consumer's
// decoded output; the streamed wire frames and drops one batch at a time
// (and the engine releases emitted rows), so peak memory tracks the batch
// size, not the result size. Run with -bench StreamedWirePeakHeap; the
// peakMB metric is the high-water HeapAlloc delta over the run.

// consume is the benchmark's stand-in for client-side decode work: touch
// every value, decoding GROUP_CONCAT blobs like the client would.
func consume(b *testing.B, rows [][]value.Value) int64 {
	var n int64
	for _, row := range rows {
		for _, v := range row {
			if v.K == value.Bytes {
				vals, err := wire.DecodeAll(v.B)
				if err != nil {
					b.Fatal(err)
				}
				n += int64(len(vals))
			} else {
				n += v.I
			}
		}
	}
	return n
}

// heapSampler tracks the high-water HeapAlloc over a run.
type heapSampler struct {
	base uint64
	peak uint64
}

func newHeapSampler() *heapSampler {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return &heapSampler{base: m.HeapAlloc}
}

func (h *heapSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > h.peak {
		h.peak = m.HeapAlloc
	}
}

func (h *heapSampler) deltaMB() float64 {
	if h.peak < h.base {
		return 0
	}
	return float64(h.peak-h.base) / 1e6
}

func benchWirePeakHeap(b *testing.B, sql string, streamed bool) {
	const rows = 200000
	srv := bigFixture(b, rows)
	srv.SetBatchSize(1024)
	q := sqlparser.MustParse(sql)
	var peakMB float64
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := newHeapSampler()
		if streamed {
			pr, pw := io.Pipe()
			errc := make(chan error, 1)
			go func() {
				_, err := srv.ExecuteStream(q, nil, pw)
				pw.CloseWithError(err)
				errc <- err
			}()
			br, err := wire.NewBatchReader(pr)
			if err != nil {
				b.Fatal(err)
			}
			for {
				batch, err := br.Next()
				if err != nil {
					b.Fatal(err)
				}
				if batch == nil {
					break
				}
				sink += consume(b, batch)
				h.sample()
			}
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		} else {
			resp, err := srv.Execute(q, nil)
			if err != nil {
				b.Fatal(err)
			}
			// The materialized wire frames the whole result before any of
			// it ships; the Result stays alive until the client has decoded
			// the last byte.
			var buf bytes.Buffer
			bw, err := wire.NewBatchWriter(&buf, resp.Result.Cols)
			if err != nil {
				b.Fatal(err)
			}
			if err := bw.WriteBatch(resp.Result.Rows); err != nil {
				b.Fatal(err)
			}
			if err := bw.Close(); err != nil {
				b.Fatal(err)
			}
			h.sample()
			br, err := wire.NewBatchReader(&buf)
			if err != nil {
				b.Fatal(err)
			}
			for {
				batch, err := br.Next()
				if err != nil {
					b.Fatal(err)
				}
				if batch == nil {
					break
				}
				sink += consume(b, batch)
				h.sample()
			}
			runtime.KeepAlive(resp)
		}
		peakMB = h.deltaMB()
	}
	if sink == 0 {
		b.Log("empty result")
	}
	b.ReportMetric(peakMB, "peakMB")
}

// BenchmarkStreamedWirePeakHeap200k compares peak heap while shipping a
// 200k-row result: the GROUP_CONCAT shape (every row carries a framed
// ciphertext blob — the paper's GROUP() operator) and the plain projection
// shape, over both wires.
func BenchmarkStreamedWirePeakHeap200k(b *testing.B) {
	shapes := []struct {
		name string
		sql  string
	}{
		{"group_concat", `SELECT a_det, group_concat(b_det) FROM big GROUP BY a_det`},
		{"projection", `SELECT a_det, b_det FROM big`},
	}
	for _, sh := range shapes {
		for _, mode := range []struct {
			name     string
			streamed bool
		}{{"materialized", false}, {"streamed", true}} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode.name), func(b *testing.B) {
				benchWirePeakHeap(b, sh.sql, mode.streamed)
			})
		}
	}
}
