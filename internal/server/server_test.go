package server

import (
	"strings"
	"testing"

	"repro/internal/crypto/search"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/packing"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// fixture builds a small encrypted DB with one HOM group and SEARCH blobs.
func fixture(t *testing.T) (*Server, *enc.KeyStore) {
	t.Helper()
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "t",
		Cols: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
			{Name: "s", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"red widget", "green widget", "red gadget", "blue thing"}
	for i := int64(0); i < 4; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(i % 2), value.NewInt((i + 1) * 10), value.NewStr(words[i])})
	}
	ks, err := enc.NewKeyStore([]byte("server-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{GroupedAddition: true, MultiRowPacking: false}
	design.Add(enc.ColumnItem("t", "k", enc.DET, value.Int))
	design.Add(enc.ColumnItem("t", "v", enc.HOM, value.Int))
	design.Add(enc.ColumnItem("t", "s", enc.SEARCH, value.Str))
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, netsim.Default()), ks
}

func TestPaillierSumUDF(t *testing.T) {
	srv, ks := fixture(t)
	group := srv.DB.Meta["t"].Groups[0]
	q := sqlparser.MustParse(
		`SELECT k_det, paillier_sum('` + group.Name + `', row_id) FROM t GROUP BY k_det`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 2 {
		t.Fatalf("groups = %d", len(resp.Result.Rows))
	}
	total := int64(0)
	for _, row := range resp.Result.Rows {
		sum, decErr := packing.DecodeSumResult(row[1].B, ks.Paillier().CiphertextSize())
		if decErr != nil {
			t.Fatal(decErr)
		}
		sums, _, decErr2 := packing.ClientSums(ks.Paillier(), group.Layout, sum, nil)
		if decErr2 != nil {
			t.Fatal(decErr2)
		}
		total += sums[0]
	}
	if total != 10+20+30+40 {
		t.Errorf("total = %d", total)
	}
	if resp.ServerTime <= 0 || resp.WireBytes <= 0 {
		t.Error("timing accounting missing")
	}
}

func TestPaillierSumUnknownGroup(t *testing.T) {
	srv, _ := fixture(t)
	q := sqlparser.MustParse(`SELECT paillier_sum('nope', row_id) FROM t`)
	if _, err := srv.Execute(q, nil); err == nil || !strings.Contains(err.Error(), "no ciphertext group") {
		t.Errorf("expected group error, got %v", err)
	}
}

func TestGroupConcatUDF(t *testing.T) {
	srv, _ := fixture(t)
	q := sqlparser.MustParse(`SELECT k_det, group_concat(k_det) FROM t GROUP BY k_det`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range resp.Result.Rows {
		vals, err := wire.DecodeAll(row[1].B)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Errorf("concat elements = %d, want 2 per group", len(vals))
		}
	}
}

func TestSearchMatchUDF(t *testing.T) {
	srv, ks := fixture(t)
	item := enc.ColumnItem("t", "s", enc.SEARCH, value.Str)
	token := ks.Search(&item).Trapdoor("widget")
	q := sqlparser.MustParse(`SELECT COUNT(*) FROM t WHERE search_match(s_srch, :1)`)
	resp, err := srv.Execute(q, map[string]value.Value{"1": value.NewBytes(token)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].AsInt() != 2 {
		t.Errorf("widget matches = %v, want 2", resp.Result.Rows[0][0])
	}
	// Wrong-key token matches nothing.
	other := search.MustNew(make([]byte, 16)).Trapdoor("widget")
	resp, err = srv.Execute(q, map[string]value.Value{"1": value.NewBytes(other)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].AsInt() != 0 {
		t.Error("cross-key token must not match")
	}
}

// TestAggStateMerge exercises the shard-partial Merge path of both server
// UDAF states, including type-mismatch and cross-group errors.
func TestAggStateMerge(t *testing.T) {
	srv, _ := fixture(t)
	st := &engine.Stats{}

	a := srv.newPaillierSum(st).(*paillierSumState)
	b := srv.newPaillierSum(st).(*paillierSumState)
	g := value.NewStr("g1")
	if err := a.Add([]value.Value{g, value.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]value.Value{g, value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]value.Value{g, value.NewNull()}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if len(a.rowIDs) != 2 || a.rowIDs[0] != 0 || a.rowIDs[1] != 1 {
		t.Errorf("merged rowIDs = %v", a.rowIDs)
	}
	if !a.sawRows || a.group != "g1" {
		t.Errorf("merged state = %+v", a)
	}
	// Empty receiver adopts the partial's group.
	empty := srv.newPaillierSum(st).(*paillierSumState)
	if err := empty.Merge(a); err != nil || empty.group != "g1" || len(empty.rowIDs) != 2 {
		t.Errorf("empty merge: err=%v state=%+v", err, empty)
	}
	// Cross-group merges are a sharding bug and must fail loudly.
	other := srv.newPaillierSum(st).(*paillierSumState)
	if err := other.Add([]value.Value{value.NewStr("g2"), value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Error("cross-group merge should fail")
	}
	if err := a.Merge(newGroupConcat(st)); err == nil {
		t.Error("cross-type merge should fail")
	}

	// GROUP_CONCAT merge preserves frame order: shard 1 then shard 2.
	c1 := newGroupConcat(st).(*groupConcatState)
	c2 := newGroupConcat(st).(*groupConcatState)
	for i, s := range []*groupConcatState{c1, c1, c2} {
		if err := s.Add([]value.Value{value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Merge(c2); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Result()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := wire.DecodeAll(res.B)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0].AsInt() != 0 || vals[1].AsInt() != 1 || vals[2].AsInt() != 2 {
		t.Errorf("merged concat = %v", vals)
	}
	if err := c1.Merge(a); err == nil {
		t.Error("cross-type concat merge should fail")
	}
}

// TestServerParallelMatchesSequential runs the UDAF queries at several
// parallelism levels and requires identical wire results.
func TestServerParallelMatchesSequential(t *testing.T) {
	srv, _ := fixture(t)
	group := srv.DB.Meta["t"].Groups[0]
	queries := []string{
		`SELECT k_det, paillier_sum('` + group.Name + `', row_id) FROM t GROUP BY k_det`,
		`SELECT k_det, group_concat(s_srch) FROM t GROUP BY k_det`,
	}
	for _, sql := range queries {
		q := sqlparser.MustParse(sql)
		srv.SetParallelism(1)
		want, err := srv.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8} {
			srv.SetParallelism(p)
			got, err := srv.Execute(q, nil)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			if len(got.Result.Rows) != len(want.Result.Rows) {
				t.Fatalf("p=%d: %d rows, want %d", p, len(got.Result.Rows), len(want.Result.Rows))
			}
			for i := range want.Result.Rows {
				for j := range want.Result.Rows[i] {
					if want.Result.Rows[i][j].String() != got.Result.Rows[i][j].String() {
						t.Errorf("p=%d: row %d col %d diverges", p, i, j)
					}
				}
			}
		}
	}
}

func TestEmptyConditionalSumSawRows(t *testing.T) {
	srv, ks := fixture(t)
	group := srv.DB.Meta["t"].Groups[0]
	// Condition never matches: rows seen, zero matched.
	q := sqlparser.MustParse(
		`SELECT paillier_sum('` + group.Name + `', CASE WHEN k_det = 12345 THEN row_id ELSE NULL END) FROM t`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := packing.DecodeSumResult(resp.Result.Rows[0][0].B, ks.Paillier().CiphertextSize())
	if err != nil {
		t.Fatal(err)
	}
	if !sum.SawRows || sum.Product != nil || len(sum.Partials) != 0 {
		t.Errorf("conditional no-match should be empty-but-saw-rows: %+v", sum)
	}
}
