package server

import (
	"strings"
	"testing"

	"repro/internal/crypto/search"
	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/packing"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// fixture builds a small encrypted DB with one HOM group and SEARCH blobs.
func fixture(t *testing.T) (*Server, *enc.KeyStore) {
	t.Helper()
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "t",
		Cols: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
			{Name: "s", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"red widget", "green widget", "red gadget", "blue thing"}
	for i := int64(0); i < 4; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(i % 2), value.NewInt((i + 1) * 10), value.NewStr(words[i])})
	}
	ks, err := enc.NewKeyStore([]byte("server-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{GroupedAddition: true, MultiRowPacking: false}
	design.Add(enc.ColumnItem("t", "k", enc.DET, value.Int))
	design.Add(enc.ColumnItem("t", "v", enc.HOM, value.Int))
	design.Add(enc.ColumnItem("t", "s", enc.SEARCH, value.Str))
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, netsim.Default()), ks
}

func TestPaillierSumUDF(t *testing.T) {
	srv, ks := fixture(t)
	group := srv.DB.Meta["t"].Groups[0]
	q := sqlparser.MustParse(
		`SELECT k_det, paillier_sum('` + group.Name + `', row_id) FROM t GROUP BY k_det`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != 2 {
		t.Fatalf("groups = %d", len(resp.Result.Rows))
	}
	total := int64(0)
	for _, row := range resp.Result.Rows {
		sum, decErr := packing.DecodeSumResult(row[1].B, ks.Paillier().CiphertextSize())
		if decErr != nil {
			t.Fatal(decErr)
		}
		sums, _, decErr2 := packing.ClientSums(ks.Paillier(), group.Layout, sum, nil)
		if decErr2 != nil {
			t.Fatal(decErr2)
		}
		total += sums[0]
	}
	if total != 10+20+30+40 {
		t.Errorf("total = %d", total)
	}
	if resp.ServerTime <= 0 || resp.WireBytes <= 0 {
		t.Error("timing accounting missing")
	}
}

func TestPaillierSumUnknownGroup(t *testing.T) {
	srv, _ := fixture(t)
	q := sqlparser.MustParse(`SELECT paillier_sum('nope', row_id) FROM t`)
	if _, err := srv.Execute(q, nil); err == nil || !strings.Contains(err.Error(), "no ciphertext group") {
		t.Errorf("expected group error, got %v", err)
	}
}

func TestGroupConcatUDF(t *testing.T) {
	srv, _ := fixture(t)
	q := sqlparser.MustParse(`SELECT k_det, group_concat(k_det) FROM t GROUP BY k_det`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range resp.Result.Rows {
		vals, err := wire.DecodeAll(row[1].B)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 {
			t.Errorf("concat elements = %d, want 2 per group", len(vals))
		}
	}
}

func TestSearchMatchUDF(t *testing.T) {
	srv, ks := fixture(t)
	item := enc.ColumnItem("t", "s", enc.SEARCH, value.Str)
	token := ks.Search(&item).Trapdoor("widget")
	q := sqlparser.MustParse(`SELECT COUNT(*) FROM t WHERE search_match(s_srch, :1)`)
	resp, err := srv.Execute(q, map[string]value.Value{"1": value.NewBytes(token)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].AsInt() != 2 {
		t.Errorf("widget matches = %v, want 2", resp.Result.Rows[0][0])
	}
	// Wrong-key token matches nothing.
	other := search.MustNew(make([]byte, 16)).Trapdoor("widget")
	resp, err = srv.Execute(q, map[string]value.Value{"1": value.NewBytes(other)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Rows[0][0].AsInt() != 0 {
		t.Error("cross-key token must not match")
	}
}

func TestEmptyConditionalSumSawRows(t *testing.T) {
	srv, ks := fixture(t)
	group := srv.DB.Meta["t"].Groups[0]
	// Condition never matches: rows seen, zero matched.
	q := sqlparser.MustParse(
		`SELECT paillier_sum('` + group.Name + `', CASE WHEN k_det = 12345 THEN row_id ELSE NULL END) FROM t`)
	resp, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := packing.DecodeSumResult(resp.Result.Rows[0][0].B, ks.Paillier().CiphertextSize())
	if err != nil {
		t.Fatal(err)
	}
	if !sum.SawRows || sum.Product != nil || len(sum.Partials) != 0 {
		t.Errorf("conditional no-match should be empty-but-saw-rows: %+v", sum)
	}
}
