package server

// Streamed execution: the server ships encrypted batches mid-scan. Where
// Execute materializes a whole engine.Result before the first byte crosses
// the trust boundary, ExecuteStream pulls row batches from the engine's
// streaming pipeline and frames each one onto the wire as it is produced —
// the producer half of the paper's split execution turned into a pipeline
// (Figure 1's "send encrypted intermediate results to the client" without
// the wait). The stream the server pulls may itself be produced by
// Parallelism workers behind the engine's shard-order merger; nothing here
// changes, because the engine folds each worker's charges into the
// stream's statistics only as their batches are emitted — the Stats
// snapshot taken after a batch is framed remains single-writer and
// reflects exactly the work whose output has shipped. The simulated cost
// model charges accordingly: each batch leaves the server at the simulated
// time its share of scan I/O, per-row CPU, and crypto-UDF work completes,
// so TimeToFirstBatch is O(batch) for pipeline-eligible queries — now
// including streamed DISTINCT (seen-set emission) and grouped queries
// (batch-at-a-time group finalization after accumulation) — while
// ServerTime remains time-to-last-batch: for a drained stream, exactly
// the materialized Execute's charge at every parallelism level.

import (
	"context"
	"io"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/value"
	"repro/internal/wire"
)

// StreamStats reports the timing and size of one streamed execution.
type StreamStats struct {
	// TimeToFirstBatch is the simulated server-side time at which the
	// first batch had been produced and framed — the earliest moment any
	// result data could leave the server. For a pipeline-eligible scan it
	// is far below ServerTime; for materialized-fallback shapes the first
	// batch only exists once the whole result does.
	TimeToFirstBatch time.Duration
	// ServerTime is time-to-last-batch: the simulated scan I/O + per-row
	// CPU + measured crypto-UDF time of the work performed (for a drained
	// stream, identical to Execute's ServerTime for the same query; for an
	// abandoned stream, only what was actually scanned). The charge is
	// serial: per-shard work sums, it never overlaps in the accounting.
	ServerTime time.Duration
	// WallServerTime is the wall-clock counterpart of ServerTime: scan I/O
	// stays serial (the disk array is shared) but the CPU components divide
	// across min(Parallelism, netsim cores) — the time a multi-core
	// deployment's clock actually shows (netsim.Config.WallTime).
	WallServerTime time.Duration
	// FirstFrameBytes is the wire size of the header plus the first batch
	// frame (what must cross the link before the client can start
	// decrypting).
	FirstFrameBytes int64
	// WireBytes is the total framed size of the stream.
	WireBytes int64
	// Batches counts the batch frames written.
	Batches int64
	// Rows counts the result rows shipped.
	Rows int64
}

// ExecuteStream runs one RemoteSQL query and writes its result onto w as a
// framed batch stream (header, batches, end frame). It returns when the
// stream has been fully written, the consumer's writer fails (an abandoned
// pipe aborts the scan mid-way), or execution errors. The returned
// StreamStats is valid in all three cases and reflects the work actually
// performed.
func (s *Server) ExecuteStream(q *ast.Query, params map[string]value.Value, w io.Writer) (*StreamStats, error) {
	return s.ExecuteStreamCtx(context.Background(), q, params, w)
}

// ExecuteStreamCtx is ExecuteStream with per-query cancellation: ctx is
// checked between batches, so cancelling it aborts the scan at the next
// batch boundary (the engine's Close cancels and joins any sharded
// producers) and returns ctx's error with the stats of the work actually
// performed. The transport's session layer drives every query through
// this entry point, wiring the protocol's cancel frame to ctx.
func (s *Server) ExecuteStreamCtx(ctx context.Context, q *ast.Query, params map[string]value.Value, w io.Writer) (*StreamStats, error) {
	st := &StreamStats{}
	es, err := s.Engine.ExecuteStream(q, params)
	if err != nil {
		return st, err
	}
	defer es.Close()
	defer func() {
		st.ServerTime = s.simulatedTime(es.Stats())
		st.WallServerTime = s.simulatedWallTime(es.Stats())
	}()
	bw, err := wire.NewBatchWriter(w, es.Cols())
	if err != nil {
		return st, err
	}
	defer func() { st.WireBytes = bw.BytesWritten() }()
	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		rows, err := es.Next()
		if err != nil {
			return st, err
		}
		if rows == nil {
			break
		}
		if err := bw.WriteBatch(rows); err != nil {
			return st, err
		}
		st.Batches++
		st.Rows += int64(len(rows))
		if st.Batches == 1 {
			st.TimeToFirstBatch = s.simulatedTime(es.Stats())
			st.FirstFrameBytes = bw.BytesWritten()
		}
	}
	if err := bw.Close(); err != nil {
		return st, err
	}
	if st.Batches == 0 {
		// Empty result: the end frame is the first thing that can ship.
		st.TimeToFirstBatch = s.simulatedTime(es.Stats())
		st.FirstFrameBytes = bw.BytesWritten()
	}
	return st, nil
}

// simulatedTime converts engine statistics into the simulated server time
// of the cost model: scan I/O + per-row CPU + measured crypto-UDF time —
// the same formula Execute charges, applied to a mid-stream snapshot.
func (s *Server) simulatedTime(stats engine.Stats) time.Duration {
	return s.Cfg.ScanTime(stats.BytesScanned+stats.ExtraBytes) +
		s.Cfg.RowTime(stats.RowsScanned) +
		time.Duration(stats.UDFNanos)
}

// simulatedWallTime is simulatedTime with the CPU components divided
// across the server's workers (netsim.Config.WallTime): scan I/O stays
// serial — the disk array's throughput is shared — while per-row CPU and
// measured UDF time parallelize up to the simulated core count.
func (s *Server) simulatedWallTime(stats engine.Stats) time.Duration {
	cpu := s.Cfg.RowTime(stats.RowsScanned) + time.Duration(stats.UDFNanos)
	return s.Cfg.ScanTime(stats.BytesScanned+stats.ExtraBytes) +
		s.Cfg.WallTime(cpu, s.parallelism())
}
