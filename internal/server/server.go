// Package server is MONOMI's untrusted database server (Figure 1): an
// unmodified DBMS (our internal/engine) hosting the encrypted tables and
// ciphertext files, extended with the crypto UDFs that operate on
// ciphertexts without any access to decryption keys:
//
//   - PAILLIER_SUM(group, row_id) — grouped homomorphic addition (§5.3):
//     multiplies the packed Paillier ciphertexts of the matching rows.
//   - GROUP_CONCAT(x) — the paper's GROUP() operator: concatenates a
//     group's ciphertexts for client-side decryption and aggregation.
//   - SEARCH_MATCH(blob, token) — SWP keyword match for LIKE '%word%'.
//
// The server never sees plaintext: everything it stores and computes on is
// ciphertext, and the only key material it holds is the Paillier *public*
// modulus needed for homomorphic multiplication.
package server

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/crypto/search"
	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/packing"
	"repro/internal/value"
	"repro/internal/wire"
)

// packingHomSum batches a group's Paillier ciphertext multiplications,
// sharding the modular products across the server's workers. The grouped
// finalization loop may run several groups' Result calls concurrently
// (engine fan-out), so the per-group worker budget divides by the number
// of in-flight sums — total concurrency stays ~Parallelism instead of
// oversubscribing to Parallelism² goroutines of bignum arithmetic. The
// sum's wire encoding is worker-count-independent, so this never affects
// results.
func (s *Server) packingHomSum(store *packing.Store, rowIDs []int) (*packing.SumResult, error) {
	inflight := atomic.AddInt64(&s.homInFlight, 1)
	defer atomic.AddInt64(&s.homInFlight, -1)
	p := s.parallelism() / int(inflight)
	if p < 1 {
		p = 1
	}
	return packing.HomSumParallel(store, rowIDs, p)
}

// Server hosts one encrypted database.
//
// Parallelism is the worker count for sharded query execution and batched
// Paillier multiplication; values < 1 mean GOMAXPROCS, 1 forces sequential
// execution. BatchSize > 0 streams eligible remote scans batch-at-a-time
// through the embedded engine's pipeline — the common RemoteSQL shape, a
// single-table scan with encrypted filters feeding PAILLIER_SUM /
// GROUP_CONCAT aggregation, streams end to end — while 0 keeps execution
// materialized. Set both via their setters so the embedded engine stays in
// sync.
type Server struct {
	DB          *enc.DB
	Engine      *engine.Engine
	Cfg         netsim.Config
	Parallelism int
	BatchSize   int

	// homInFlight counts concurrently running grouped homomorphic sums
	// (see packingHomSum).
	homInFlight int64
}

// New creates a server over an encrypted database.
func New(db *enc.DB, cfg netsim.Config) *Server {
	s := &Server{DB: db, Engine: engine.New(db.Cat), Cfg: cfg}
	s.Engine.RegisterAgg("paillier_sum", s.newPaillierSum)
	s.Engine.RegisterAgg("group_concat", newGroupConcat)
	s.Engine.RegisterScalar("search_match", searchMatch)
	return s
}

// SetParallelism sets the worker count for the server and its engine.
func (s *Server) SetParallelism(p int) {
	s.Parallelism = p
	s.Engine.Parallelism = p
}

// SetBatchSize sets the streamed-scan batch size for the server and its
// engine (0 = materialized execution).
func (s *Server) SetBatchSize(b int) {
	s.BatchSize = b
	s.Engine.BatchSize = b
}

// SetIndexes turns the engine's secondary-index access paths on or off.
// Results are byte-identical either way; only scan cost changes.
func (s *Server) SetIndexes(on bool) {
	s.Engine.UseIndexes = on
}

// parallelism resolves the knob (values < 1 mean GOMAXPROCS).
func (s *Server) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Response carries an executed RemoteSQL result plus its simulated timings.
type Response struct {
	Result     *engine.Result
	ServerTime time.Duration // simulated scan I/O + CPU + measured UDF time (serial charge)
	// WallServerTime is the wall-clock counterpart: CPU components divided
	// across min(Parallelism, netsim cores), scan I/O serial (shared disk).
	WallServerTime time.Duration
	WireBytes      int64 // result size on the wire
}

// Execute runs one RemoteSQL query over the encrypted data.
func (s *Server) Execute(q *ast.Query, params map[string]value.Value) (*Response, error) {
	res, err := s.Engine.Execute(q, params)
	if err != nil {
		return nil, err
	}
	return &Response{
		Result:         res,
		ServerTime:     s.simulatedTime(res.Stats),
		WallServerTime: s.simulatedWallTime(res.Stats),
		WireBytes:      res.Bytes(),
	}, nil
}

// paillierSumState accumulates one group's row IDs for grouped homomorphic
// addition; Result performs the modular multiplications.
type paillierSumState struct {
	srv     *Server
	stats   *engine.Stats
	group   string
	rowIDs  []int
	sawRows bool // some input row arrived, even if its row_id was NULL
}

func (s *Server) newPaillierSum(st *engine.Stats) engine.AggState {
	return &paillierSumState{srv: s, stats: st}
}

// Add receives (group_name, row_id).
func (p *paillierSumState) Add(args []value.Value) error {
	if len(args) != 2 {
		return fmt.Errorf("server: PAILLIER_SUM expects (group, row_id)")
	}
	if p.group == "" {
		p.group = args[0].S
	}
	p.sawRows = true
	if args[1].IsNull() {
		// Conditional sums pass NULL for non-matching rows: the row
		// exists (sum is 0, not NULL) but contributes nothing.
		return nil
	}
	p.rowIDs = append(p.rowIDs, int(args[1].AsInt()))
	return nil
}

// Merge folds a shard partial into p: row-ID lists over disjoint row
// ranges simply concatenate, deferring all modular multiplication to
// Result.
func (p *paillierSumState) Merge(other engine.AggState) error {
	o, ok := other.(*paillierSumState)
	if !ok {
		return fmt.Errorf("server: PAILLIER_SUM merge of %T", other)
	}
	if p.group == "" {
		p.group = o.group
	} else if o.group != "" && o.group != p.group {
		return fmt.Errorf("server: PAILLIER_SUM merge across groups %q and %q", p.group, o.group)
	}
	p.sawRows = p.sawRows || o.sawRows
	if len(p.rowIDs) == 0 {
		p.rowIDs = o.rowIDs
	} else {
		p.rowIDs = append(p.rowIDs, o.rowIDs...)
	}
	return nil
}

// Result multiplies the matching ciphertexts and returns the wire blob.
func (p *paillierSumState) Result() (value.Value, error) {
	if p.group == "" || len(p.rowIDs) == 0 {
		// No matching rows: an empty sum result — no product, no
		// partials. SawRows tells the client whether the group was truly
		// empty (SUM = NULL) or merely unmatched (conditional SUM = 0).
		empty := &packing.SumResult{SawRows: p.sawRows}
		return value.NewBytes(empty.Encode(0)), nil
	}
	store, ok := p.srv.DB.Stores[p.group]
	if !ok {
		return value.Value{}, fmt.Errorf("server: no ciphertext group %q", p.group)
	}
	start := time.Now()
	res, err := p.srv.packingHomSum(store, p.rowIDs)
	if err != nil {
		return value.Value{}, err
	}
	// Atomic: grouped finalization fans Result calls across workers, and
	// every group's state shares the one execution-context Stats sink (see
	// the engine.AggState contract).
	atomic.AddInt64(&p.stats.UDFNanos, time.Since(start).Nanoseconds())
	atomic.AddInt64(&p.stats.ExtraBytes, res.ReadSize)
	return value.NewBytes(res.Encode(store.CipherBytes())), nil
}

// groupConcatState implements GROUP(): framed concatenation of a group's
// values.
type groupConcatState struct {
	buf []byte
}

func newGroupConcat(st *engine.Stats) engine.AggState { return &groupConcatState{} }

// Add appends one value.
func (g *groupConcatState) Add(args []value.Value) error {
	if len(args) != 1 {
		return fmt.Errorf("server: GROUP_CONCAT expects 1 argument")
	}
	var err error
	g.buf, err = wire.AppendValue(g.buf, args[0])
	return err
}

// Merge appends a shard partial's frames. Shards merge in row order, so the
// concatenation matches a sequential scan.
func (g *groupConcatState) Merge(other engine.AggState) error {
	o, ok := other.(*groupConcatState)
	if !ok {
		return fmt.Errorf("server: GROUP_CONCAT merge of %T", other)
	}
	if len(g.buf) == 0 {
		g.buf = o.buf
	} else {
		g.buf = append(g.buf, o.buf...)
	}
	return nil
}

// Result returns the framed blob.
func (g *groupConcatState) Result() (value.Value, error) {
	return value.NewBytes(g.buf), nil
}

// searchMatch implements SEARCH_MATCH(blob, token).
func searchMatch(st *engine.Stats, args []value.Value) (value.Value, error) {
	if len(args) != 2 {
		return value.Value{}, fmt.Errorf("server: SEARCH_MATCH expects (blob, token)")
	}
	if args[0].IsNull() || args[1].IsNull() {
		return value.NewBool(false), nil
	}
	return value.NewBool(search.Match(args[0].B, args[1].B)), nil
}
