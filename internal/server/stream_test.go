package server

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// bigFixture encrypts a scan-heavy table (DET columns only, so setup stays
// fast) for streaming-latency tests.
func bigFixture(t testing.TB, rows int) *Server {
	t.Helper()
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "big",
		Cols: []storage.Column{
			{Name: "a", Type: storage.TInt},
			{Name: "b", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 97))})
	}
	ks, err := enc.NewKeyStore([]byte("stream-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{}
	design.Add(enc.ColumnItem("big", "a", enc.DET, value.Int))
	design.Add(enc.ColumnItem("big", "b", enc.DET, value.Int))
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, netsim.Default())
}

// drainWire decodes a full batch stream from buf.
func drainWire(t testing.TB, r io.Reader) ([]string, [][]value.Value) {
	t.Helper()
	br, err := wire.NewBatchReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]value.Value
	for {
		b, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return br.Cols(), rows
		}
		rows = append(rows, b...)
	}
}

// TestExecuteStreamMatchesExecute: the streamed wire must carry exactly
// the rows the materialized Execute returns — same columns, same order,
// same encodings — across plain scans, crypto-UDF aggregation, and empty
// results, and its drained ServerTime must equal Execute's.
func TestExecuteStreamMatchesExecute(t *testing.T) {
	srv, _ := fixture(t)
	srv.SetBatchSize(2)
	group := srv.DB.Meta["t"].Groups[0]
	queries := []string{
		`SELECT k_det, row_id FROM t`,
		`SELECT k_det, group_concat(k_det) FROM t GROUP BY k_det`,
		`SELECT k_det, paillier_sum('` + group.Name + `', row_id) FROM t GROUP BY k_det`,
		`SELECT k_det FROM t WHERE k_det = 123456789`, // empty result
	}
	for _, sql := range queries {
		q := sqlparser.MustParse(sql)
		want, err := srv.Execute(q, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var buf bytes.Buffer
		st, err := srv.ExecuteStream(q, nil, &buf)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		wireLen := int64(buf.Len())
		cols, rows := drainWire(t, &buf)
		if len(cols) != len(want.Result.Cols) {
			t.Fatalf("%s: stream has %d cols, want %d", sql, len(cols), len(want.Result.Cols))
		}
		if len(rows) != len(want.Result.Rows) {
			t.Fatalf("%s: stream has %d rows, want %d", sql, len(rows), len(want.Result.Rows))
		}
		for i, wrow := range want.Result.Rows {
			for j, wv := range wrow {
				gv := rows[i][j]
				if wv.IsNull() != gv.IsNull() || (!wv.IsNull() && value.Compare(wv, gv) != 0) {
					t.Fatalf("%s: row %d col %d: %v != %v", sql, i, j, gv, wv)
				}
			}
		}
		if st.WireBytes != wireLen {
			t.Errorf("%s: StreamStats.WireBytes = %d, stream is %d", sql, st.WireBytes, wireLen)
		}
		if st.Rows != int64(len(rows)) {
			t.Errorf("%s: StreamStats.Rows = %d, shipped %d", sql, st.Rows, len(rows))
		}
		// UDF nanos are measured wall time, not simulated, so the two
		// executions of a crypto-aggregate query legitimately differ;
		// scan-only charges must match exactly.
		if !strings.Contains(sql, "paillier_sum") && !strings.Contains(sql, "group_concat") &&
			st.ServerTime != want.ServerTime {
			t.Errorf("%s: streamed ServerTime %v != materialized %v", sql, st.ServerTime, want.ServerTime)
		}
	}
}

// TestTimeToFirstBatchBeatsServerTime is the pipelining acceptance test:
// with streaming enabled and netsim charging per batch, the first
// encrypted batch leaves the server long before the simulated scan
// completes — TimeToFirstBatch < ServerTime, by roughly the batch/table
// ratio.
func TestTimeToFirstBatchBeatsServerTime(t *testing.T) {
	const rows = 4000
	srv := bigFixture(t, rows)
	srv.SetBatchSize(64)
	q := sqlparser.MustParse(`SELECT a_det, b_det FROM big`)
	var buf bytes.Buffer
	st, err := srv.ExecuteStream(q, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches < rows/64 {
		t.Fatalf("stream produced %d batches over %d rows at batch 64", st.Batches, rows)
	}
	if st.TimeToFirstBatch <= 0 || st.ServerTime <= 0 {
		t.Fatalf("timings not charged: ttfb=%v server=%v", st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch >= st.ServerTime {
		t.Fatalf("TimeToFirstBatch %v >= ServerTime %v: no pipelining", st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch > st.ServerTime/8 {
		t.Errorf("TimeToFirstBatch %v is not batch-proportional (ServerTime %v)",
			st.TimeToFirstBatch, st.ServerTime)
	}
	// Drained, the streamed ServerTime equals the materialized charge.
	want, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerTime != want.ServerTime {
		t.Errorf("streamed ServerTime %v != materialized %v", st.ServerTime, want.ServerTime)
	}
}

// joinBigFixture extends bigFixture with a dimension table whose DET join
// key shares big.b's key (same join group — the designer's JoinGroups do
// this for workload join columns), so the server can hash-join the two
// encrypted tables.
func joinBigFixture(t testing.TB, rows int) *Server {
	t.Helper()
	cat := storage.NewCatalog()
	big, err := cat.Create(storage.Schema{
		Name: "big",
		Cols: []storage.Column{
			{Name: "a", Type: storage.TInt},
			{Name: "b", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		big.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 97))})
	}
	dim, err := cat.Create(storage.Schema{
		Name: "dim",
		Cols: []storage.Column{
			{Name: "d_id", Type: storage.TInt},
			{Name: "d_tag", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 97; i++ {
		dim.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(i * 7))})
	}
	ks, err := enc.NewKeyStore([]byte("stream-join-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{}
	design.Add(enc.ColumnItem("big", "a", enc.DET, value.Int))
	bKey := enc.ColumnItem("big", "b", enc.DET, value.Int)
	bKey.JoinGroup = "jk"
	design.Add(bKey)
	dKey := enc.ColumnItem("dim", "d_id", enc.DET, value.Int)
	dKey.JoinGroup = "jk"
	design.Add(dKey)
	design.Add(enc.ColumnItem("dim", "d_tag", enc.DET, value.Int))
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, netsim.Default())
}

// TestJoinTimeToFirstBatchBeatsServerTime is the multi-table pipelining
// acceptance test (the join-layer mirror of the single-table one above):
// with the streamed hash-join probe, the first joined encrypted batch
// leaves the server long before the simulated probe scan completes —
// TimeToFirstBatch < ServerTime — and the drained stream carries exactly
// the rows the materialized Execute returns.
func TestJoinTimeToFirstBatchBeatsServerTime(t *testing.T) {
	const rows = 4000
	srv := joinBigFixture(t, rows)
	srv.SetBatchSize(64)
	q := sqlparser.MustParse(`SELECT a_det, d_tag_det FROM big, dim WHERE b_det = d_id_det`)
	var buf bytes.Buffer
	st, err := srv.ExecuteStream(q, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != rows {
		t.Fatalf("join stream shipped %d rows, want %d (every probe row matches one dim row)", st.Rows, rows)
	}
	if st.Batches < rows/64 {
		t.Fatalf("stream produced %d batches over %d rows at batch 64", st.Batches, rows)
	}
	if st.TimeToFirstBatch <= 0 || st.ServerTime <= 0 {
		t.Fatalf("timings not charged: ttfb=%v server=%v", st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch >= st.ServerTime {
		t.Fatalf("TimeToFirstBatch %v >= ServerTime %v: join probe is not pipelined", st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch > st.ServerTime/8 {
		t.Errorf("TimeToFirstBatch %v is not batch-proportional (ServerTime %v)",
			st.TimeToFirstBatch, st.ServerTime)
	}
	want, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rowsGot := drainWire(t, &buf)
	if len(rowsGot) != len(want.Result.Rows) {
		t.Fatalf("stream has %d rows, Execute has %d", len(rowsGot), len(want.Result.Rows))
	}
	for i, wrow := range want.Result.Rows {
		for j, wv := range wrow {
			if value.Compare(wv, rowsGot[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, j, rowsGot[i][j], wv)
			}
		}
	}
	if st.ServerTime != want.ServerTime {
		t.Errorf("streamed ServerTime %v != materialized %v", st.ServerTime, want.ServerTime)
	}
}

// TestExecuteStreamAbandoned: a client that stops reading mid-stream (its
// LIMIT satisfied) closes the pipe; the server's scan must abort promptly,
// charge only the work done, and leave no goroutine behind.
func TestExecuteStreamAbandoned(t *testing.T) {
	const rows = 8000
	srv := bigFixture(t, rows)
	srv.SetBatchSize(16)
	q := sqlparser.MustParse(`SELECT a_det FROM big`)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		pr, pw := io.Pipe()
		done := make(chan *StreamStats, 1)
		errc := make(chan error, 1)
		go func() {
			st, err := srv.ExecuteStream(q, nil, pw)
			errc <- err
			done <- st
			pw.CloseWithError(err)
		}()
		br, err := wire.NewBatchReader(pr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := br.Next(); err != nil {
			t.Fatal(err)
		}
		// Abandon: one batch was enough.
		pr.CloseWithError(fmt.Errorf("client satisfied"))
		if err := <-errc; err == nil {
			t.Fatal("abandoned stream returned no error")
		}
		st := <-done
		if st.Rows >= rows {
			t.Fatalf("abandoned stream still shipped all %d rows", st.Rows)
		}
		if st.ServerTime <= 0 {
			t.Error("abandoned stream charged no server time")
		}
	}
	var after int
	for i := 0; i < 20; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: abandoned streams leak", before, after)
	}
}

// groupedFixture encrypts a table with many groups and one HOM column, so
// grouped streamed-wire queries have real per-group Paillier finalization
// work to pipeline.
func groupedFixture(t testing.TB, rows, groups int) *Server {
	t.Helper()
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "grp",
		Cols: []storage.Column{
			{Name: "g", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tbl.MustInsert([]value.Value{value.NewInt(int64(i % groups)), value.NewInt(int64(i))})
	}
	ks, err := enc.NewKeyStore([]byte("grouped-stream-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	design := &enc.Design{GroupedAddition: true}
	design.Add(enc.ColumnItem("grp", "g", enc.DET, value.Int))
	design.Add(enc.ColumnItem("grp", "v", enc.HOM, value.Int))
	db, err := enc.EncryptDatabase(cat, design, ks)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, netsim.Default())
}

// TestGroupedTimeToFirstBatchBeatsServerTime is the grouped-emission
// acceptance test (the ROADMAP's "TimeToFirstBatch ≈ ServerTime for
// grouped queries" gap): with streamed grouped emission, the first batch
// of finalized groups — each carrying expensive Paillier Result work —
// leaves the server after one batch of finalization, not after all of it,
// so TimeToFirstBatch < ServerTime at last. The drained stream must still
// carry exactly the rows Execute returns.
func TestGroupedTimeToFirstBatchBeatsServerTime(t *testing.T) {
	const rows, groups = 1800, 600
	srv := groupedFixture(t, rows, groups)
	srv.SetBatchSize(32)
	group := srv.DB.Meta["grp"].Groups[0]
	q := sqlparser.MustParse(
		`SELECT g_det, paillier_sum('` + group.Name + `', row_id) FROM grp GROUP BY g_det`)
	var buf bytes.Buffer
	st, err := srv.ExecuteStream(q, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != groups {
		t.Fatalf("grouped stream shipped %d rows, want %d groups", st.Rows, groups)
	}
	if st.Batches < groups/32 {
		t.Fatalf("grouped stream produced %d batches over %d groups at batch 32", st.Batches, groups)
	}
	if st.TimeToFirstBatch <= 0 || st.ServerTime <= 0 {
		t.Fatalf("timings not charged: ttfb=%v server=%v", st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch >= st.ServerTime {
		t.Fatalf("TimeToFirstBatch %v >= ServerTime %v: grouped emission is not pipelined",
			st.TimeToFirstBatch, st.ServerTime)
	}
	// The accumulation (full scan) is shared; the gap comes from the
	// 600-group Paillier finalization arriving one 32-group batch at a
	// time. Even with measured-time jitter the first batch must land well
	// inside the first half of the stream's work.
	if st.TimeToFirstBatch > st.ServerTime/2 {
		t.Errorf("TimeToFirstBatch %v is not finalization-batch-proportional (ServerTime %v)",
			st.TimeToFirstBatch, st.ServerTime)
	}
	t.Logf("grouped paillier stream: TimeToFirstBatch=%v ServerTime=%v (%d groups, batch 32)",
		st.TimeToFirstBatch, st.ServerTime, groups)
	want, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rowsGot := drainWire(t, &buf)
	if len(rowsGot) != len(want.Result.Rows) {
		t.Fatalf("stream has %d rows, Execute has %d", len(rowsGot), len(want.Result.Rows))
	}
	for i, wrow := range want.Result.Rows {
		for j, wv := range wrow {
			if value.Compare(wv, rowsGot[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, j, rowsGot[i][j], wv)
			}
		}
	}
}

// TestDistinctTimeToFirstBatchBeatsServerTime: streamed DISTINCT emits
// first occurrences as the scan discovers them (seen-set, not a
// materialized keep-bitmap), so the first encrypted batch of distinct
// rows leaves the server batch-proportionally early — at parallelism 4,
// where the sharded producer feeds the merger, with drained charges equal
// to the materialized execution's.
func TestDistinctTimeToFirstBatchBeatsServerTime(t *testing.T) {
	const rows = 4000
	srv := bigFixture(t, rows)
	srv.SetBatchSize(64)
	srv.SetParallelism(4)
	q := sqlparser.MustParse(`SELECT DISTINCT b_det FROM big`)
	var buf bytes.Buffer
	st, err := srv.ExecuteStream(q, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 97 { // b = i % 97
		t.Fatalf("DISTINCT stream shipped %d rows, want 97", st.Rows)
	}
	if st.TimeToFirstBatch <= 0 || st.TimeToFirstBatch >= st.ServerTime {
		t.Fatalf("TimeToFirstBatch %v vs ServerTime %v: streamed DISTINCT is not pipelined",
			st.TimeToFirstBatch, st.ServerTime)
	}
	if st.TimeToFirstBatch > st.ServerTime/8 {
		t.Errorf("TimeToFirstBatch %v is not batch-proportional (ServerTime %v)",
			st.TimeToFirstBatch, st.ServerTime)
	}
	t.Logf("streamed DISTINCT at p=4: TimeToFirstBatch=%v ServerTime=%v (%d rows, batch 64)",
		st.TimeToFirstBatch, st.ServerTime, rows)
	want, err := srv.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerTime != want.ServerTime {
		t.Errorf("drained sharded DISTINCT ServerTime %v != materialized %v", st.ServerTime, want.ServerTime)
	}
	_, rowsGot := drainWire(t, &buf)
	if len(rowsGot) != len(want.Result.Rows) {
		t.Fatalf("stream has %d rows, Execute has %d", len(rowsGot), len(want.Result.Rows))
	}
	for i, wrow := range want.Result.Rows {
		if value.Compare(wrow[0], rowsGot[i][0]) != 0 {
			t.Fatalf("row %d: %v != %v", i, rowsGot[i][0], wrow[0])
		}
	}
}

// TestShardedWireStreamMatchesSequential pins the wire-level contract of
// the sharded producer: the framed byte stream at parallelism 4 must be
// identical — byte for byte — to the sequential puller's, across plain,
// filtered, DISTINCT, and grouped shapes (shard bounds sit on the batch
// grid, so even frame boundaries coincide).
func TestShardedWireStreamMatchesSequential(t *testing.T) {
	const rows = 4000
	srv := bigFixture(t, rows)
	srv.SetBatchSize(64)
	for _, sql := range []string{
		`SELECT a_det, b_det FROM big`,
		`SELECT a_det FROM big WHERE b_det = 13`,
		`SELECT DISTINCT b_det FROM big`,
		`SELECT b_det, COUNT(*) FROM big GROUP BY b_det`,
	} {
		q := sqlparser.MustParse(sql)
		srv.SetParallelism(1)
		var seq bytes.Buffer
		seqSt, err := srv.ExecuteStream(q, nil, &seq)
		if err != nil {
			t.Fatalf("p=1 %s: %v", sql, err)
		}
		for _, p := range []int{2, 4} {
			srv.SetParallelism(p)
			var got bytes.Buffer
			st, err := srv.ExecuteStream(q, nil, &got)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, sql, err)
			}
			if !bytes.Equal(got.Bytes(), seq.Bytes()) {
				t.Errorf("p=%d %s: wire stream differs from sequential puller (%d vs %d bytes)",
					p, sql, got.Len(), seq.Len())
			}
			if st.ServerTime != seqSt.ServerTime || st.Batches != seqSt.Batches {
				t.Errorf("p=%d %s: stream stats (%v, %d batches) != sequential (%v, %d)",
					p, sql, st.ServerTime, st.Batches, seqSt.ServerTime, seqSt.Batches)
			}
		}
	}
	srv.SetParallelism(0)
}
