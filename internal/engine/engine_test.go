package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// fixture builds a small two-table database:
//
//	orders(o_id, o_cust, o_total, o_date)
//	items(i_order, i_qty, i_price, i_tag)
func fixture(t *testing.T) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	orders, err := cat.Create(storage.Schema{
		Name: "orders",
		Cols: []storage.Column{
			{Name: "o_id", Type: storage.TInt},
			{Name: "o_cust", Type: storage.TStr},
			{Name: "o_total", Type: storage.TInt},
			{Name: "o_date", Type: storage.TDate},
		},
		Key: []string{"o_id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	day := value.MustParseDate
	rows := []struct {
		id    int64
		cust  string
		total int64
		date  string
	}{
		{1, "alice", 100, "1995-01-15"},
		{2, "bob", 250, "1995-06-01"},
		{3, "alice", 40, "1996-02-20"},
		{4, "carol", 900, "1996-07-04"},
		{5, "bob", 10, "1997-03-30"},
	}
	for _, r := range rows {
		orders.MustInsert([]value.Value{
			value.NewInt(r.id), value.NewStr(r.cust), value.NewInt(r.total), value.NewDate(day(r.date)),
		})
	}
	items, err := cat.Create(storage.Schema{
		Name: "items",
		Cols: []storage.Column{
			{Name: "i_order", Type: storage.TInt},
			{Name: "i_qty", Type: storage.TInt},
			{Name: "i_price", Type: storage.TInt},
			{Name: "i_tag", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	irows := []struct {
		order, qty, price int64
		tag               string
	}{
		{1, 2, 30, "red widget"},
		{1, 1, 40, "green gadget"},
		{2, 5, 50, "red gadget"},
		{3, 1, 40, "blue widget"},
		{4, 10, 90, "green widget"},
		{4, 3, 10, "red trinket"},
		{5, 1, 10, "blue trinket"},
	}
	for _, r := range irows {
		items.MustInsert([]value.Value{
			value.NewInt(r.order), value.NewInt(r.qty), value.NewInt(r.price), value.NewStr(r.tag),
		})
	}
	return New(cat)
}

func run(t *testing.T, e *Engine, sql string, params map[string]value.Value) *Result {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := e.Execute(q, params)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func TestScanAndFilter(t *testing.T) {
	e := fixture(t)
	res := run(t, e, "SELECT o_id FROM orders WHERE o_total > 100", nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Stats.BytesScanned == 0 || res.Stats.RowsScanned != 5 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestProjectionExpressions(t *testing.T) {
	e := fixture(t)
	res := run(t, e, "SELECT o_id, o_total * 2 AS dbl FROM orders WHERE o_id = 1", nil)
	if res.Rows[0][1].AsInt() != 200 {
		t.Errorf("dbl = %v", res.Rows[0][1])
	}
	if res.Cols[1] != "dbl" {
		t.Errorf("col name = %q", res.Cols[1])
	}
}

func TestHashJoin(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_cust, i_tag FROM orders, items WHERE o_id = i_order AND o_total >= 100`, nil)
	// orders 1,2,4 qualify -> items 2+1+2 = 5 rows
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
}

func TestJoinQualifiedColumns(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o.o_id, i.i_qty FROM orders o, items i WHERE o.o_id = i.i_order AND i.i_qty > 4`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestGroupByHaving(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_cust, SUM(o_total) AS s FROM orders GROUP BY o_cust HAVING SUM(o_total) > 100 ORDER BY s DESC`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (carol 900, bob 260, alice 140)", len(res.Rows))
	}
	if res.Rows[0][0].S != "carol" || res.Rows[0][1].AsInt() != 900 {
		t.Errorf("first = %v", res.Rows[0])
	}
	if res.Rows[2][0].S != "alice" || res.Rows[2][1].AsInt() != 140 {
		t.Errorf("last = %v", res.Rows[2])
	}
}

func TestHavingAliasReference(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_cust, SUM(o_total) AS total FROM orders GROUP BY o_cust HAVING total > 200`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestAggregatesOverEmptyInput(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT COUNT(*), SUM(o_total), AVG(o_total), MIN(o_total) FROM orders WHERE o_total > 99999`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].AsInt() != 0 {
		t.Errorf("count = %v", row[0])
	}
	for i := 1; i < 4; i++ {
		if !row[i].IsNull() {
			t.Errorf("agg %d over empty input = %v, want NULL", i, row[i])
		}
	}
}

func TestCountDistinct(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT COUNT(DISTINCT o_cust) FROM orders`, nil)
	if res.Rows[0][0].AsInt() != 3 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
}

func TestAvgMinMax(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT AVG(o_total), MIN(o_total), MAX(o_total) FROM orders`, nil)
	if got := res.Rows[0][0].AsFloat(); got != 260 {
		t.Errorf("avg = %v", got)
	}
	if res.Rows[0][1].AsInt() != 10 || res.Rows[0][2].AsInt() != 900 {
		t.Errorf("min/max = %v %v", res.Rows[0][1], res.Rows[0][2])
	}
}

func TestOrderByLimit(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders ORDER BY o_total DESC LIMIT 2`, nil)
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 4 || res.Rows[1][0].AsInt() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT DISTINCT o_cust FROM orders`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestLikeAndInList(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT i_tag FROM items WHERE i_tag LIKE '%widget%' AND i_qty IN (1, 2)`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (red widget qty 2, blue widget qty 1)", len(res.Rows))
	}
	res = run(t, e, `SELECT i_tag FROM items WHERE i_tag NOT LIKE 'red%'`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("not like rows = %d, want 4", len(res.Rows))
	}
}

func TestBetweenDates(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE o_date BETWEEN date '1995-01-01' AND date '1995-12-31'`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestDateIntervalArithmetic(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE o_date >= date '1995-01-01' AND o_date < date '1995-01-01' + interval '1' year`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestExtractYearGrouping(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT extract(year from o_date) AS y, COUNT(*) FROM orders GROUP BY extract(year from o_date) ORDER BY y`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 1995 || res.Rows[0][1].AsInt() != 2 {
		t.Errorf("1995 group = %v", res.Rows[0])
	}
}

func TestCaseExpression(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT SUM(CASE WHEN o_cust = 'alice' THEN o_total ELSE 0 END) FROM orders`, nil)
	if res.Rows[0][0].AsInt() != 140 {
		t.Errorf("case sum = %v", res.Rows[0][0])
	}
}

func TestParamsBinding(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE o_cust = :1`, map[string]value.Value{"1": value.NewStr("bob")})
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	q := sqlparser.MustParse(`SELECT o_id FROM orders WHERE o_cust = :1`)
	if _, err := e.Execute(q, nil); err == nil {
		t.Error("unbound param should error")
	}
}

func TestScalarSubqueryUncorrelated(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE o_total > (SELECT AVG(o_total) FROM orders)`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	e := fixture(t)
	// Orders whose total exceeds the sum of their item prices.
	res := run(t, e, `SELECT o_id FROM orders WHERE o_total > (SELECT SUM(i_price * i_qty) FROM items WHERE i_order = o_id) ORDER BY o_id`, nil)
	// order 1: 100 vs 2*30+1*40=100 no; order 2: 250 vs 250 no; order 3: 40 vs 40 no;
	// order 4: 900 vs 10*90+3*10=930 no; order 5: 10 vs 10 no
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v, want none", res.Rows)
	}
	res = run(t, e, `SELECT o_id FROM orders WHERE o_total >= (SELECT SUM(i_price * i_qty) FROM items WHERE i_order = o_id) ORDER BY o_id`, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (all but order 4)", len(res.Rows))
	}
}

func TestInSubqueryUncorrelated(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE o_id IN (SELECT i_order FROM items WHERE i_qty >= 5)`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (orders 2 and 4)", len(res.Rows))
	}
}

func TestExistsDecorrelated(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders WHERE EXISTS (SELECT 1 FROM items WHERE i_order = o_id AND i_tag LIKE 'red%') ORDER BY o_id`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (orders 1,2,4)", len(res.Rows))
	}
	before := res.Stats.SubqueryRuns
	if before == 0 {
		t.Error("expected decorrelated subquery to be counted")
	}
	// Decorrelated: one subquery run regardless of outer cardinality.
	if before > 1 {
		t.Errorf("subquery runs = %d, want 1 (decorrelated)", before)
	}
}

func TestNotExistsWithResidualPredicate(t *testing.T) {
	e := fixture(t)
	// Orders with no *other* item sharing the same order (i.e. exactly the
	// multi-item orders fail the NOT EXISTS).
	res := run(t, e, `SELECT o_id FROM orders WHERE NOT EXISTS (
		SELECT 1 FROM items i2 WHERE i2.i_order = o_id AND i2.i_price <> 40
	) ORDER BY o_id`, nil)
	// order 1 has prices {30,40} -> exists(price<>40) -> excluded
	// order 2 {50} excluded; order 3 {40} kept; order 4 {90,10} excluded; order 5 {10} excluded
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("rows = %v, want [3]", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT c, s FROM (SELECT o_cust AS c, SUM(o_total) AS s FROM orders GROUP BY o_cust) t WHERE s > 200 ORDER BY s DESC`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][0].S != "carol" {
		t.Errorf("first = %v", res.Rows[0])
	}
}

func TestCrossJoinFallback(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT COUNT(*) FROM orders, items WHERE o_total > 500`, nil)
	// 1 order × 7 items
	if res.Rows[0][0].AsInt() != 7 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestMultiTableResidualPredicate(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT COUNT(*) FROM orders, items WHERE o_id = i_order AND o_total > i_price * i_qty`, nil)
	// order1: 100>60 T, 100>40 T; order2: 250>250 F; order3: 40>40 F;
	// order4: 900>900 F, 900>30 T; order5: 10>10 F  => 3
	if res.Rows[0][0].AsInt() != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestScalarUDF(t *testing.T) {
	e := fixture(t)
	e.RegisterScalar("double_it", func(st *Stats, args []value.Value) (value.Value, error) {
		return value.NewInt(args[0].AsInt() * 2), nil
	})
	res := run(t, e, `SELECT double_it(o_total) FROM orders WHERE o_id = 1`, nil)
	if res.Rows[0][0].AsInt() != 200 {
		t.Errorf("udf = %v", res.Rows[0][0])
	}
}

type sumUDF struct{ n int64 }

func (s *sumUDF) Add(args []value.Value) error {
	s.n += args[0].AsInt()
	return nil
}
func (s *sumUDF) Merge(other AggState) error {
	o, ok := other.(*sumUDF)
	if !ok {
		return fmt.Errorf("merge of mismatched state %T", other)
	}
	s.n += o.n
	return nil
}

func (s *sumUDF) Result() (value.Value, error) { return value.NewInt(s.n), nil }

func TestAggregateUDF(t *testing.T) {
	e := fixture(t)
	e.RegisterAgg("my_sum", func(st *Stats) AggState { return &sumUDF{} })
	res := run(t, e, `SELECT o_cust, my_sum(o_total) FROM orders GROUP BY o_cust ORDER BY o_cust`, nil)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].S != "alice" || res.Rows[0][1].AsInt() != 140 {
		t.Errorf("alice = %v", res.Rows[0])
	}
}

func TestSubstring(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT substring(i_tag from 1 for 3) FROM items WHERE i_order = 2`, nil)
	if res.Rows[0][0].S != "red" {
		t.Errorf("substring = %v", res.Rows[0][0])
	}
}

func TestUnknownColumnError(t *testing.T) {
	e := fixture(t)
	q := sqlparser.MustParse(`SELECT nope FROM orders`)
	if _, err := e.Execute(q, nil); err == nil {
		t.Error("expected unknown column error")
	}
}

func TestUnknownTableError(t *testing.T) {
	e := fixture(t)
	q := sqlparser.MustParse(`SELECT x FROM missing`)
	if _, err := e.Execute(q, nil); err == nil {
		t.Error("expected unknown table error")
	}
}

func TestUnknownFunctionError(t *testing.T) {
	e := fixture(t)
	q := sqlparser.MustParse(`SELECT nosuchfn(o_id) FROM orders`)
	if _, err := e.Execute(q, nil); err == nil {
		t.Error("expected unknown function error")
	}
}

func TestResultBytes(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders`, nil)
	// 5 rows × (8 bytes int + 4 framing)
	if res.Bytes() != 5*12 {
		t.Errorf("bytes = %d", res.Bytes())
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_ll", false},
		{"hello", "%x%", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "", false},
		{"green widget", "%green%", true},
		{"a%b", "a%b", true}, // % in pattern is wildcard, still matches
		{"foobarbaz", "%foo%baz", true},
		{"foobarbaz", "%bar%foo%", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestGroupByExpressionKey(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_total / 100, COUNT(*) FROM orders GROUP BY o_total / 100`, nil)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestOrderByExpressionNotProjected(t *testing.T) {
	e := fixture(t)
	res := run(t, e, `SELECT o_id FROM orders ORDER BY o_date DESC`, nil)
	if res.Rows[0][0].AsInt() != 5 {
		t.Errorf("first by date desc = %v", res.Rows[0][0])
	}
}
