package engine

import (
	"math"
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// Access-path selection. When Engine.UseIndexes is on, a single-table scan
// may be served by a secondary index instead of reading every row: a DET
// hash index answers `=` and `IN` conjuncts, an OPE ordered index answers
// `<`/`<=`/`>`/`>=`/`BETWEEN` and single-key prefix ORDER BY. The index
// yields an ascending row-id list that is always a SUPERSET of the rows the
// chosen conjunct matches (NULL keys are never indexed and every sargable
// predicate is non-true on NULL), and the full WHERE clause is re-applied
// as a residual filter over the fetched rows — so rows, row order, and
// therefore the final result are byte-identical to the full-scan path at
// every parallelism level, batch size, and wire mode. What changes is the
// charged I/O: an index scan pays bytes in proportion to the rows it
// actually fetches.
//
// Selection is cost-based with exact cardinalities: the index knows the
// true posting/range size k before any row is read, and the scan reads n
// rows, so the index wins iff k*indexRowCost < n. The planner's
// AccessHint is advisory — "scan" suppresses index resolution (it encodes
// a planner decision that the stats said the index cannot pay off), while
// "index" still passes through this cost rule, so a stale hint from a
// cached plan can never change results or regress below the scan path by
// more than the probe cost.

// indexRowCost is the charged cost ratio of an index row fetch to a
// sequential scan row: index access is random, so the crossover sits at
// 1/indexRowCost selectivity (25%), far above the selectivities where
// indexes matter and safely below the region where a scan's locality wins.
const indexRowCost = 4

// rowSource is the row supply of one single-table scan: the whole table
// (ids == nil), or an index-restricted ascending row-id list.
type rowSource struct {
	t   *storage.Table
	ids []int32 // nil = every row; else ascending ids, superset of matches
}

// n returns the number of scannable rows.
func (s *rowSource) n() int {
	if s.ids == nil {
		return s.t.NumRows()
	}
	return len(s.ids)
}

// rowID maps a scan position to the global table row id — the stability
// tiebreaker streamed top-N ranks by. Positions are monotone in row id
// either way, so per-shard candidates stay comparable across shard counts.
func (s *rowSource) rowID(pos int) int {
	if s.ids == nil {
		return pos
	}
	return int(s.ids[pos])
}

// newSourceIterator streams src's rows at positions [lo,hi) in batches:
// the plain telescoping scan for a full source, the id-list scan for an
// index-restricted one.
func newSourceIterator(st *Stats, src *rowSource, lo, hi, size int) batchIterator {
	if src.ids == nil {
		return newScanIterator(st, src.t, lo, hi, size)
	}
	return &idScanIterator{st: st, t: src.t, ids: src.ids[lo:hi], off: lo, size: size}
}

// idScanIterator streams the rows named by an ascending id list, charging
// bytes in proportion to the rows actually fetched — the model-visible
// saving of an index scan. The byte prefix telescopes over id positions, so
// draining k of the table's n rows charges exactly t.Bytes*k/n at any batch
// size and shard count, and an early-exited scan charges only what it read.
type idScanIterator struct {
	st     *Stats
	t      *storage.Table
	ids    []int32 // restricted to positions [off, off+len)
	off    int     // global position of ids[0] in the full id list
	size   int
	pos    int
	closed bool
}

// bytePrefix is the scan-byte charge for fetching the first p listed rows.
func (it *idScanIterator) bytePrefix(p int) int64 {
	return it.t.Bytes * int64(p) / int64(it.t.NumRows())
}

func (it *idScanIterator) next() ([][]value.Value, error) {
	if it.closed || it.pos >= len(it.ids) {
		return nil, nil
	}
	end := it.pos + it.size
	if end > len(it.ids) {
		end = len(it.ids)
	}
	b, phys, err := it.t.FetchRows(it.ids[it.pos:end])
	if err != nil {
		return nil, err
	}
	if it.t.Paged() {
		it.st.BytesScanned += phys
	} else {
		it.st.BytesScanned += it.bytePrefix(it.off+end) - it.bytePrefix(it.off+it.pos)
	}
	it.st.RowsScanned += int64(end - it.pos)
	it.st.RowsStreamed += int64(end - it.pos)
	it.st.BatchesStreamed++
	it.pos = end
	return b, nil
}

func (it *idScanIterator) close() { it.closed = true }

// indexSource chooses the access path for a single-table scan: every
// index-answerable WHERE conjunct contributes its ascending id list, and
// the lists are intersected (each is a superset of its conjunct's matches,
// so the intersection is a superset of the rows where the whole AND can
// hold) before the residual filter. The intersection is used when it beats
// the cost rule, else the full table. Index stats are charged here, once,
// on the resolving context — resolution happens before any sharding.
func (c *execCtx) indexSource(q *ast.Query, t *storage.Table, refName string) *rowSource {
	full := &rowSource{t: t}
	n := t.NumRows()
	if !c.useIdx || q.Where == nil || n == 0 {
		return full
	}
	if q.Hint != nil && q.Hint.Path == ast.AccessScan {
		return full
	}
	var ids []int32
	var lookups int64
	found := false
	for _, e := range ast.Conjuncts(q.Where) {
		cids, clk, ok := c.sargIDs(t, refName, e)
		if !ok {
			continue
		}
		lookups += clk
		if !found {
			ids, found = cids, true
		} else {
			ids = intersectIDs(ids, cids)
		}
		if len(ids) == 0 {
			break // the AND can match nothing; later conjuncts can't grow it
		}
	}
	if !found || len(ids)*indexRowCost >= n {
		return full
	}
	c.chargeIndex(lookups, int64(n-len(ids)))
	return &rowSource{t: t, ids: ids}
}

// intersectIDs merges two ascending id lists into their intersection
// (two-pointer; never aliases either input, which may be live posting
// lists).
func intersectIDs(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// chargeIndex records index usage on the per-query stats and the engine's
// cumulative counters (the monomi layer reads the cumulative side: per-query
// engine stats do not cross the remote wire).
func (c *execCtx) chargeIndex(lookups, skipped int64) {
	c.stats.IndexLookups += lookups
	c.stats.RowsSkippedByIndex += skipped
	c.eng.cumIndexLookups.Add(lookups)
	c.eng.cumRowsSkipped.Add(skipped)
}

// sargIDs resolves one WHERE conjunct against t's indexes. ok=true means
// ids (never nil) is an ascending superset of the rows where the conjunct
// can hold, obtained with the returned number of index probes.
func (c *execCtx) sargIDs(t *storage.Table, refName string, e ast.Expr) ([]int32, int64, bool) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		col, lit, op, ok := colOpConst(c, t, refName, x)
		if !ok || isNaN(lit) {
			return nil, 0, false
		}
		if op == ast.OpEq {
			ix := t.Index(col, storage.HashIndex)
			if ix == nil {
				return nil, 0, false
			}
			if lit.IsNull() {
				return []int32{}, 0, true // `= NULL` is never true
			}
			if !ix.Usable(lit.K) {
				return nil, 0, false
			}
			return notNil(ix.Postings(lit)), 1, true
		}
		ix := t.Index(col, storage.OrderedIndex)
		if ix == nil {
			return nil, 0, false
		}
		if lit.IsNull() {
			return []int32{}, 0, true // comparisons against NULL are never true
		}
		if !ix.Usable(lit.K) {
			return nil, 0, false
		}
		var lo, hi *value.Value
		var loIncl, hiIncl bool
		switch op {
		case ast.OpLt:
			hi = &lit
		case ast.OpLe:
			hi, hiIncl = &lit, true
		case ast.OpGt:
			lo = &lit
		case ast.OpGe:
			lo, loIncl = &lit, true
		default:
			return nil, 0, false
		}
		// Count first (two binary searches): an unselective range would fail
		// the cost rule anyway, so don't pay for materializing its ids.
		if ix.RangeCount(lo, hi, loIncl, hiIncl)*indexRowCost >= t.NumRows() {
			return nil, 0, false
		}
		return notNil(ix.Range(lo, hi, loIncl, hiIncl)), 1, true

	case *ast.BetweenExpr:
		if x.Not {
			return nil, 0, false
		}
		col, ok := bareCol(t, refName, x.E)
		if !ok {
			return nil, 0, false
		}
		ix := t.Index(col, storage.OrderedIndex)
		if ix == nil {
			return nil, 0, false
		}
		lo, ok := c.constVal(x.Lo)
		if !ok || isNaN(lo) {
			return nil, 0, false
		}
		hi, ok := c.constVal(x.Hi)
		if !ok || isNaN(hi) {
			return nil, 0, false
		}
		if lo.IsNull() || hi.IsNull() {
			return []int32{}, 0, true // BETWEEN with a NULL bound is never true
		}
		if !ix.Usable(lo.K) || !ix.Usable(hi.K) {
			return nil, 0, false
		}
		if ix.RangeCount(&lo, &hi, true, true)*indexRowCost >= t.NumRows() {
			return nil, 0, false
		}
		return notNil(ix.Range(&lo, &hi, true, true)), 1, true

	case *ast.InExpr:
		if x.Not || x.Sub != nil {
			return nil, 0, false
		}
		col, ok := bareCol(t, refName, x.E)
		if !ok {
			return nil, 0, false
		}
		ix := t.Index(col, storage.HashIndex)
		if ix == nil {
			return nil, 0, false
		}
		var union []int32
		var lookups int64
		for _, el := range x.List {
			v, ok := c.constVal(el)
			if !ok || isNaN(v) {
				return nil, 0, false
			}
			if v.IsNull() {
				continue // a NULL element matches nothing
			}
			if !ix.Usable(v.K) {
				return nil, 0, false
			}
			union = append(union, ix.Postings(v)...)
			lookups++
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		// Dedup: two IN elements can share a posting (e.g. 2 and 2.0).
		dst := 0
		for i, id := range union {
			if i == 0 || id != union[dst-1] {
				union[dst] = id
				dst++
			}
		}
		return notNil(union[:dst]), lookups, true
	}
	return nil, 0, false
}

// notNil normalizes an empty id list: nil means "no index" to rowSource.
func notNil(ids []int32) []int32 {
	if ids == nil {
		return []int32{}
	}
	return ids
}

// isNaN reports a float NaN constant. NaN Compare-equals every numeric but
// hashes uniquely, so no index lookup can mirror the evaluator on it.
func isNaN(v value.Value) bool {
	return v.K == value.Float && math.IsNaN(v.F)
}

// bareCol resolves e as a reference to one of t's columns (optionally
// qualified by the scan's alias) and returns the schema column name.
func bareCol(t *storage.Table, refName string, e ast.Expr) (string, bool) {
	cr, ok := e.(*ast.ColumnRef)
	if !ok || cr.Column == "*" {
		return "", false
	}
	if cr.Table != "" && cr.Table != refName {
		return "", false
	}
	if t.Schema.ColIndex(cr.Column) < 0 {
		return "", false
	}
	return cr.Column, true
}

// constVal resolves e as a constant: a literal or a bound parameter.
func (c *execCtx) constVal(e ast.Expr) (value.Value, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, true
	case *ast.Param:
		v, ok := c.params[x.Name]
		return v, ok
	}
	return value.Value{}, false
}

// colOpConst decomposes a comparison into (indexable column, constant,
// operator), flipping `const op col` into the mirrored `col op' const`.
func colOpConst(c *execCtx, t *storage.Table, refName string, x *ast.BinaryExpr) (string, value.Value, ast.BinOp, bool) {
	if !x.Op.IsComparison() || x.Op == ast.OpNe {
		return "", value.Value{}, 0, false
	}
	if col, ok := bareCol(t, refName, x.Left); ok {
		if lit, ok := c.constVal(x.Right); ok {
			return col, lit, x.Op, true
		}
		return "", value.Value{}, 0, false
	}
	col, ok := bareCol(t, refName, x.Right)
	if !ok {
		return "", value.Value{}, 0, false
	}
	lit, ok := c.constVal(x.Left)
	if !ok {
		return "", value.Value{}, 0, false
	}
	op := x.Op
	switch x.Op {
	case ast.OpLt:
		op = ast.OpGt
	case ast.OpLe:
		op = ast.OpGe
	case ast.OpGt:
		op = ast.OpLt
	case ast.OpGe:
		op = ast.OpLe
	}
	return col, lit, op, true
}

// execIndexed is the materialized-mode index hook: a single-table,
// subquery-free query whose WHERE restricts through an index — or whose
// single-key ORDER BY an ordered index can emit pre-sorted — materializes
// only the fetched rows and skips the full scan (and, for ordered emission,
// the sort). Streaming mode resolves its own source inside execStreamed.
func (c *execCtx) execIndexed(q *ast.Query, outer *env) (*relation, bool, error) {
	if !c.useIdx || outer != nil || len(q.From) != 1 || q.From[0].Sub != nil || streamBlocked(q) {
		return nil, false, nil
	}
	f := &q.From[0]
	t, err := c.eng.Cat.Table(f.Name)
	if err != nil {
		// Let the materialized path report the unknown table consistently.
		return nil, false, nil
	}
	refName := f.RefName()
	ordered := false
	src := c.indexSource(q, t, refName)
	ids := src.ids
	if ids == nil {
		if ids, ordered = c.orderedEmission(q, t, refName); !ordered {
			return nil, false, nil
		}
	}
	rows, phys, err := t.FetchRows(ids)
	if err != nil {
		return nil, true, err
	}
	if t.Paged() {
		c.stats.BytesScanned += phys
	} else if n := t.NumRows(); n > 0 {
		c.stats.BytesScanned += t.Bytes * int64(len(ids)) / int64(n)
	}
	c.stats.RowsScanned += int64(len(ids))
	rel := &relation{cols: tableLayout(t, refName).cols, rows: rows}
	if q.Where != nil {
		if rel, err = c.filter(rel, q.Where, outer); err != nil {
			return nil, true, err
		}
	}
	if c.isGrouped(q) {
		out, err := c.execGrouped(q, rel, outer)
		return out, true, err
	}
	qq := q
	if ordered {
		// The emission already is the sort order; strip ORDER BY so
		// execProject's stable sort (a no-op here) never reorders.
		cp := *q
		cp.OrderBy = nil
		qq = &cp
	}
	out, err := c.execProject(qq, rel, outer)
	return out, true, err
}

// orderedEmission serves a single-key ORDER BY on a bare indexed column
// from the ordered index: rows emit in exactly the stable-sort order
// (NULLS first ascending, last descending, row id breaking ties), so the
// materialized sort disappears. Grouped and DISTINCT queries order their
// own outputs and are excluded; multi-key ORDER BY cannot use a one-column
// run (a later key reorders within equal-prefix groups).
func (c *execCtx) orderedEmission(q *ast.Query, t *storage.Table, refName string) ([]int32, bool) {
	if len(q.OrderBy) != 1 || q.Distinct || c.isGrouped(q) {
		return nil, false
	}
	col, ok := bareCol(t, refName, q.OrderBy[0].Expr)
	if !ok {
		return nil, false
	}
	ix := t.Index(col, storage.OrderedIndex)
	if ix == nil {
		return nil, false
	}
	ids := ix.EmitOrdered(q.OrderBy[0].Desc)
	if ids == nil {
		return nil, false // mixed-class run: no total order
	}
	c.chargeIndex(1, 0)
	return ids, true
}

// indexedBuild serves a hash-join build side straight from the base table's
// hash index instead of materializing a partitioned map: posting lists are
// ascending row ids — exactly build-side row order — so probe output is
// byte-identical to the map-based build. Only an unfiltered single-key
// base-table scan qualifies; a filtered build side is a fresh relation with
// no base, which disables this path automatically.
func (c *execCtx) indexedBuild(right *relation, rightKeys []ast.Expr) *joinBuild {
	if !c.useIdx || right.base == nil || len(rightKeys) != 1 {
		return nil
	}
	cr, ok := rightKeys[0].(*ast.ColumnRef)
	if !ok {
		return nil
	}
	ci, err := right.indexOf(cr.Table, cr.Column)
	if err != nil || ci < 0 || ci >= len(right.base.Schema.Cols) {
		return nil
	}
	ix := right.base.Index(right.base.Schema.Cols[ci].Name, storage.HashIndex)
	if ix == nil {
		return nil
	}
	// The build side was already scan-charged by execFrom; the saving here
	// is the skipped map construction, recorded as one lookup.
	c.chargeIndex(1, 0)
	return &joinBuild{cols: right.cols, rows: right.rows, ix: ix}
}
