package engine

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// env is the evaluation environment for one row (or one group).
type env struct {
	rel     *relation              // current relation; nil in pure-agg envs
	row     []value.Value          // current row of rel
	outer   *env                   // enclosing query's env (correlation)
	aggs    map[string]value.Value // aggregate SQL -> value for the group
	aliases map[string]ast.Expr    // SELECT-list aliases (HAVING/ORDER BY)
	ctx     *execCtx
}

// lookup resolves a column reference, walking outward for correlated refs.
func (en *env) lookup(table, col string) (value.Value, bool, error) {
	for e := en; e != nil; e = e.outer {
		if e.rel == nil {
			continue
		}
		idx, err := e.rel.indexOf(table, col)
		if err != nil {
			return value.Value{}, false, err
		}
		if idx >= 0 {
			return e.row[idx], true, nil
		}
	}
	return value.Value{}, false, nil
}

// eval evaluates an expression in the environment.
func eval(en *env, e ast.Expr) (value.Value, error) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, nil

	case *ast.Param:
		if en.ctx.params != nil {
			if v, ok := en.ctx.params[x.Name]; ok {
				return v, nil
			}
		}
		return value.Value{}, fmt.Errorf("engine: unbound parameter :%s", x.Name)

	case *ast.ColumnRef:
		v, ok, err := en.lookup(x.Table, x.Column)
		if err != nil {
			return value.Value{}, err
		}
		if ok {
			return v, nil
		}
		// Alias fallback for HAVING/ORDER BY referencing SELECT aliases.
		if x.Table == "" {
			for e2 := en; e2 != nil; e2 = e2.outer {
				if e2.aliases != nil {
					if ae, ok := e2.aliases[x.Column]; ok {
						return eval(e2, ae)
					}
				}
			}
		}
		return value.Value{}, fmt.Errorf("engine: unknown column %s", x.SQL())

	case *ast.AggExpr:
		if en.aggs != nil {
			if v, ok := en.aggs[x.SQL()]; ok {
				return v, nil
			}
		}
		return value.Value{}, fmt.Errorf("engine: aggregate %s outside grouping context", x.SQL())

	case *ast.BinaryExpr:
		return evalBinary(en, x)

	case *ast.UnaryExpr:
		v, err := eval(en, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if x.Neg {
			return value.Neg(v), nil
		}
		if v.IsNull() {
			return v, nil
		}
		return value.NewBool(!v.AsBool()), nil

	case *ast.FuncCall:
		return evalFunc(en, x)

	case *ast.CaseExpr:
		for _, w := range x.Whens {
			ok, err := evalBool(en, w.Cond)
			if err != nil {
				return value.Value{}, err
			}
			if ok {
				return eval(en, w.Then)
			}
		}
		if x.Else != nil {
			return eval(en, x.Else)
		}
		return value.NewNull(), nil

	case *ast.BetweenExpr:
		v, err := eval(en, x.E)
		if err != nil {
			return value.Value{}, err
		}
		lo, err := eval(en, x.Lo)
		if err != nil {
			return value.Value{}, err
		}
		hi, err := eval(en, x.Hi)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.NewNull(), nil
		}
		in := value.Compare(v, lo) >= 0 && value.Compare(v, hi) <= 0
		return value.NewBool(in != x.Not), nil

	case *ast.LikeExpr:
		v, err := eval(en, x.E)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			return value.NewNull(), nil
		}
		m := MatchLike(v.S, x.Pattern)
		return value.NewBool(m != x.Not), nil

	case *ast.IsNullExpr:
		v, err := eval(en, x.E)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(v.IsNull() != x.Not), nil

	case *ast.IntervalExpr:
		// Intervals only appear as operands of +/- with dates; binary eval
		// handles them there. A bare interval evaluates to its day count
		// only for the "day" unit.
		if x.Unit == "day" {
			return value.NewInt(x.N), nil
		}
		return value.Value{}, fmt.Errorf("engine: interval '%d' %s outside date arithmetic", x.N, x.Unit)

	case *ast.SubqueryExpr:
		return en.ctx.scalarSubquery(en, x.Sub)

	case *ast.InExpr:
		return en.ctx.evalIn(en, x)

	case *ast.ExistsExpr:
		ok, err := en.ctx.evalExists(en, x)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(ok), nil
	}
	return value.Value{}, fmt.Errorf("engine: cannot evaluate %T", e)
}

// evalBinary handles arithmetic, comparison, and boolean connectives,
// including date±interval arithmetic.
func evalBinary(en *env, x *ast.BinaryExpr) (value.Value, error) {
	// Short-circuit booleans with SQL three-valued logic approximated as
	// NULL==false (adequate for TPC-H, which is NULL-free).
	switch x.Op {
	case ast.OpAnd:
		l, err := evalBool(en, x.Left)
		if err != nil {
			return value.Value{}, err
		}
		if !l {
			return value.NewBool(false), nil
		}
		r, err := evalBool(en, x.Right)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(r), nil
	case ast.OpOr:
		l, err := evalBool(en, x.Left)
		if err != nil {
			return value.Value{}, err
		}
		if l {
			return value.NewBool(true), nil
		}
		r, err := evalBool(en, x.Right)
		if err != nil {
			return value.Value{}, err
		}
		return value.NewBool(r), nil
	}

	// Date ± interval.
	if iv, ok := x.Right.(*ast.IntervalExpr); ok && (x.Op == ast.OpAdd || x.Op == ast.OpSub) {
		l, err := eval(en, x.Left)
		if err != nil {
			return value.Value{}, err
		}
		if l.IsNull() {
			return l, nil
		}
		n := iv.N
		if x.Op == ast.OpSub {
			n = -n
		}
		return value.NewDate(value.AddInterval(l.AsInt(), n, iv.Unit)), nil
	}

	l, err := eval(en, x.Left)
	if err != nil {
		return value.Value{}, err
	}
	r, err := eval(en, x.Right)
	if err != nil {
		return value.Value{}, err
	}
	switch x.Op {
	case ast.OpAdd:
		return value.Add(l, r), nil
	case ast.OpSub:
		return value.Sub(l, r), nil
	case ast.OpMul:
		return value.Mul(l, r), nil
	case ast.OpDiv:
		return value.Div(l, r), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.NewNull(), nil
	}
	cmp := value.Compare(l, r)
	switch x.Op {
	case ast.OpEq:
		return value.NewBool(cmp == 0), nil
	case ast.OpNe:
		return value.NewBool(cmp != 0), nil
	case ast.OpLt:
		return value.NewBool(cmp < 0), nil
	case ast.OpLe:
		return value.NewBool(cmp <= 0), nil
	case ast.OpGt:
		return value.NewBool(cmp > 0), nil
	case ast.OpGe:
		return value.NewBool(cmp >= 0), nil
	}
	return value.Value{}, fmt.Errorf("engine: bad operator %v", x.Op)
}

// evalBool evaluates a predicate; NULL counts as false.
func evalBool(en *env, e ast.Expr) (bool, error) {
	v, err := eval(en, e)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

// evalFunc dispatches builtin scalar functions and scalar UDFs.
func evalFunc(en *env, x *ast.FuncCall) (value.Value, error) {
	name := strings.ToLower(x.Name)
	// Aggregate UDFs are computed by the grouping path and stashed in aggs.
	if en.ctx.eng.IsAggUDF(name) {
		if en.aggs != nil {
			if v, ok := en.aggs[x.SQL()]; ok {
				return v, nil
			}
		}
		return value.Value{}, fmt.Errorf("engine: aggregate UDF %s outside grouping context", x.Name)
	}

	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(en, a)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}

	switch name {
	case "extract_year", "extract_month", "extract_day":
		if len(args) != 1 {
			return value.Value{}, fmt.Errorf("engine: %s expects 1 argument", name)
		}
		if args[0].IsNull() {
			return value.NewNull(), nil
		}
		d := args[0].AsInt()
		switch name {
		case "extract_year":
			return value.NewInt(value.ExtractYear(d)), nil
		case "extract_month":
			return value.NewInt(value.ExtractMonth(d)), nil
		default:
			return value.NewInt(value.ExtractDay(d)), nil
		}
	case "substring":
		if len(args) < 2 {
			return value.Value{}, fmt.Errorf("engine: substring expects at least 2 arguments")
		}
		if args[0].IsNull() {
			return value.NewNull(), nil
		}
		s := args[0].S
		from := int(args[1].AsInt()) // 1-based
		if from < 1 {
			from = 1
		}
		start := from - 1
		if start > len(s) {
			return value.NewStr(""), nil
		}
		end := len(s)
		if len(args) >= 3 {
			if n := int(args[2].AsInt()); start+n < end {
				end = start + n
			}
		}
		return value.NewStr(s[start:end]), nil
	}

	if fn, ok := en.ctx.eng.scalars[name]; ok {
		return fn(en.ctx.stats, args)
	}
	return value.Value{}, fmt.Errorf("engine: unknown function %s", x.Name)
}

// MatchLike implements SQL LIKE with % (any run) and _ (any single char).
func MatchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer wildcard match (the classic glob algorithm).
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
