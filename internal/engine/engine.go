// Package engine is a from-scratch analytical SQL executor. It plays the
// role Postgres plays in the paper: an unmodified DBMS that scans, joins,
// groups, and sorts — extended with user-defined functions (UDFs) so the
// untrusted server can operate on ciphertexts (PAILLIER_SUM, GROUP_CONCAT).
//
// The executor has two modes. The materialized mode (each operator
// produces a full relation) handles everything: comma joins with hash-join
// extraction, correlated and uncorrelated subqueries (with automatic
// decorrelation of equality-correlated EXISTS/IN/scalar-aggregate
// subqueries), GROUP BY/HAVING, DISTINCT, ORDER BY and LIMIT. The
// streaming mode (Engine.BatchSize > 0; see stream.go) runs single-table
// scan → filter → projection/aggregation pipelines batch-at-a-time without
// materializing intermediates — in the spirit of vectorized analytical
// scan engines such as Polynesia's — and falls back to the materialized
// operators for everything else. Both modes shard their row loops across
// Engine.Parallelism workers (see parallel.go) and produce byte-identical
// results. The engine reports byte-accurate scan statistics that the
// MONOMI cost model converts to simulated I/O time.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// Stats accumulates execution statistics for one query.
//
// A row is RowsScanned exactly once no matter which path reads it: the
// materialized scan charges the whole table up front, while a streamed scan
// charges batch by batch as it is pulled — and a streamed pipeline that
// falls back to a materialized operator mid-query (ORDER BY, DISTINCT)
// hands over the already-charged rows without re-scanning them.
type Stats struct {
	BytesScanned       int64 // heap-table bytes read by sequential scans
	ExtraBytes         int64 // bytes read outside tables (Paillier pack files)
	RowsScanned        int64 // rows produced by scans
	RowsOut            int64 // rows in the final result
	UDFNanos           int64 // wall time spent inside crypto UDFs
	SubqueryRuns       int64 // number of subquery executions (incl. decorrelated)
	RowsStreamed       int64 // rows that entered a batch pipeline from a streamed scan
	BatchesStreamed    int64 // batches emitted by streamed scans
	IndexLookups       int64 // secondary-index probes (point, range, IN element, build)
	RowsSkippedByIndex int64 // rows an index scan avoided reading vs the full scan
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.BytesScanned += o.BytesScanned
	s.ExtraBytes += o.ExtraBytes
	s.RowsScanned += o.RowsScanned
	s.RowsOut += o.RowsOut
	s.UDFNanos += o.UDFNanos
	s.SubqueryRuns += o.SubqueryRuns
	s.RowsStreamed += o.RowsStreamed
	s.BatchesStreamed += o.BatchesStreamed
	s.IndexLookups += o.IndexLookups
	s.RowsSkippedByIndex += o.RowsSkippedByIndex
}

// Sub subtracts other from s — the delta between two cumulative snapshots
// of the same accumulator (how multi-producer streams fold each worker's
// progress exactly once).
func (s *Stats) Sub(o Stats) {
	s.BytesScanned -= o.BytesScanned
	s.ExtraBytes -= o.ExtraBytes
	s.RowsScanned -= o.RowsScanned
	s.RowsOut -= o.RowsOut
	s.UDFNanos -= o.UDFNanos
	s.SubqueryRuns -= o.SubqueryRuns
	s.RowsStreamed -= o.RowsStreamed
	s.BatchesStreamed -= o.BatchesStreamed
	s.IndexLookups -= o.IndexLookups
	s.RowsSkippedByIndex -= o.RowsSkippedByIndex
}

// Result is a fully materialized query result.
type Result struct {
	Cols  []string
	Rows  [][]value.Value
	Stats Stats
}

// Bytes returns the total encoded size of the result rows, used to model
// network transfer of intermediate results to the client.
func (r *Result) Bytes() int64 {
	var n int64
	for _, row := range r.Rows {
		for _, v := range row {
			n += int64(v.Size())
		}
		n += 4 // per-row framing
	}
	return n
}

// Engine executes queries against a catalog.
//
// Parallelism sets the worker count for sharded execution: scans, filters,
// hash-join probes, projection, and grouped aggregation are partitioned
// into contiguous row-range shards executed concurrently, with per-shard
// aggregation states combined by AggState.Merge. Values < 1 mean
// GOMAXPROCS; 1 forces the fully sequential path.
//
// BatchSize enables the streaming batch-at-a-time pipeline (see stream.go):
// values > 0 run eligible single-table queries as scan → filter →
// projection/aggregation over row batches of that size without
// materializing intermediates (1 degenerates to row-at-a-time streaming);
// 0, the default, keeps every operator materialized. Results are
// byte-identical either way. Both knobs must not be changed while queries
// are in flight; concurrent Execute calls on one engine are otherwise safe
// (execution state is per-call, and catalogs are read-only during
// execution).
type Engine struct {
	Cat         *storage.Catalog
	Parallelism int
	BatchSize   int
	// UseIndexes enables cost-based access-path selection (see access.go):
	// single-table scans may restrict through a secondary index and join
	// builds may serve probes from a hash index. Off by default — results
	// are byte-identical either way, but scan statistics (and therefore
	// simulated I/O time) shrink when an index path is taken. Like the
	// other knobs, it must not change while queries are in flight.
	UseIndexes bool
	scalars    map[string]ScalarUDF
	aggs       map[string]AggUDFFactory

	// Cumulative index counters across every query this engine executed.
	// The monomi layer surfaces these: per-query engine Stats never cross
	// the remote wire, but the untrusted server's engine is long-lived.
	cumIndexLookups atomic.Int64
	cumRowsSkipped  atomic.Int64
}

// IndexStats returns the engine-lifetime index counters: total index
// probes and total rows that index scans avoided reading.
func (e *Engine) IndexStats() (lookups, rowsSkipped int64) {
	return e.cumIndexLookups.Load(), e.cumRowsSkipped.Load()
}

// New creates an engine over the catalog.
func New(cat *storage.Catalog) *Engine {
	return &Engine{
		Cat:     cat,
		scalars: make(map[string]ScalarUDF),
		aggs:    make(map[string]AggUDFFactory),
	}
}

// ScalarUDF is a custom scalar function callable from SQL.
type ScalarUDF func(st *Stats, args []value.Value) (value.Value, error)

// AggState accumulates one group's values for an aggregate UDF.
//
// Merge folds a partial state — produced by the same factory over a
// disjoint, earlier-or-later row shard of the same group — into the
// receiver. Sharded grouped aggregation accumulates one state per
// (shard, group) and merges them in shard order, so an implementation that
// is order-sensitive (e.g. concatenation) sees its inputs in the original
// row order. After a state has been merged from, it is discarded; Merge
// may therefore steal its buffers.
//
// Result finalizes the group. When UDF aggregates are present and the
// engine runs parallel, finalization fans groups across workers, so Result
// may be invoked concurrently with other states' Result calls (never
// concurrently on one state). An implementation that writes to shared
// state — typically the *Stats sink its factory captured — must make those
// writes atomic.
type AggState interface {
	Add(args []value.Value) error
	Merge(other AggState) error
	Result() (value.Value, error)
}

// AggUDFFactory creates a fresh per-group state for an aggregate UDF.
type AggUDFFactory func(st *Stats) AggState

// RegisterScalar installs a scalar UDF under the given (lowercase) name.
func (e *Engine) RegisterScalar(name string, fn ScalarUDF) { e.scalars[strings.ToLower(name)] = fn }

// RegisterAgg installs an aggregate UDF under the given (lowercase) name.
func (e *Engine) RegisterAgg(name string, f AggUDFFactory) { e.aggs[strings.ToLower(name)] = f }

// IsAggUDF reports whether name is a registered aggregate UDF.
func (e *Engine) IsAggUDF(name string) bool {
	_, ok := e.aggs[strings.ToLower(name)]
	return ok
}

// Execute runs q with the given parameter bindings.
func (e *Engine) Execute(q *ast.Query, params map[string]value.Value) (*Result, error) {
	ctx := &execCtx{
		eng: e, params: params, stats: &Stats{},
		subq:   make(map[*ast.Query]*subqPlan),
		par:    e.effectiveParallelism(),
		batch:  e.BatchSize,
		useIdx: e.UseIndexes,
	}
	rel, err := ctx.execQuery(q, nil)
	if err != nil {
		return nil, err
	}
	res := &Result{Rows: rel.rows, Stats: *ctx.stats}
	for _, c := range rel.cols {
		res.Cols = append(res.Cols, c.name)
	}
	res.Stats.RowsOut = int64(len(res.Rows))
	return res, nil
}

// execCtx carries per-execution state.
type execCtx struct {
	eng    *Engine
	params map[string]value.Value
	stats  *Stats
	subq   map[*ast.Query]*subqPlan
	par    int  // worker count for sharded loops (1 = sequential)
	batch  int  // streamed-scan batch size (<= 0 = materialized)
	useIdx bool // cost-based index access paths enabled (access.go)
}

// colInfo names one relation column.
type colInfo struct {
	table string // alias qualifier; empty for computed columns
	name  string
}

// relation is a materialized set of rows with named columns.
type relation struct {
	cols []colInfo
	rows [][]value.Value
	// base is non-nil only for an unfiltered base-table scan (rows aliases
	// the table's rows 1:1); join builds may then use the table's indexes.
	base *storage.Table
}

// indexOf resolves a (possibly qualified) column name. It returns -1 if the
// column is absent, and an error only on ambiguity.
func (r *relation) indexOf(table, col string) (int, error) {
	found := -1
	for i, c := range r.cols {
		if c.name != col {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("engine: ambiguous column %s", col)
		}
		found = i
	}
	return found, nil
}

// execQuery runs a full SELECT and returns its output relation. outer is the
// enclosing row environment for correlated subqueries (nil at top level).
func (c *execCtx) execQuery(q *ast.Query, outer *env) (*relation, error) {
	// Streaming batch-at-a-time path (BatchSize > 0, base tables,
	// subquery-free); not handled means fall through to the materialized
	// operators. deduped reports that the streamed path already applied
	// DISTINCT (the streaming seen-set emission), so the materialized
	// keep-bitmap pass below must not run again.
	out, handled, deduped, err := c.execStreamed(q, outer)
	if err != nil {
		return nil, err
	}
	if !handled {
		// Materialized-mode index hook: a single-table query whose WHERE
		// restricts through an index (or whose ORDER BY an ordered index
		// can emit pre-sorted) fetches only the listed rows (access.go).
		out, handled, err = c.execIndexed(q, outer)
		if err != nil {
			return nil, err
		}
	}
	if !handled {
		joined, err := c.execSource(q, outer)
		if err != nil {
			return nil, err
		}

		// Aggregate or project.
		if c.isGrouped(q) {
			out, err = c.execGrouped(q, joined, outer)
		} else {
			out, err = c.execProject(q, joined, outer)
		}
		if err != nil {
			return nil, err
		}
	}

	if q.Distinct && !deduped {
		out = c.distinct(out)
	}
	if q.Limit >= 0 && len(out.rows) > q.Limit {
		out.rows = out.rows[:q.Limit]
	}
	return out, nil
}

// execSource materializes the FROM/WHERE portion of a query: scans, joins,
// and all filters — the relation that feeds aggregation or projection. The
// decorrelator also uses it directly to bucket inner rows for EXISTS.
func (c *execCtx) execSource(q *ast.Query, outer *env) (*relation, error) {
	rels := make([]*relation, len(q.From))
	for i, f := range q.From {
		r, err := c.execFrom(&f, outer)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("engine: query with empty FROM")
	}

	joined, residual, err := c.joinAll(q, rels, outer)
	if err != nil {
		return nil, err
	}

	// Residual filters (multi-table non-equi predicates, subqueries).
	if len(residual) > 0 {
		joined, err = c.filter(joined, ast.AndAll(residual), outer)
		if err != nil {
			return nil, err
		}
	}
	return joined, nil
}

// execFrom materializes one FROM entry.
func (c *execCtx) execFrom(f *ast.TableRef, outer *env) (*relation, error) {
	if f.Sub != nil {
		sub, err := c.execQuery(f.Sub, outer)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's columns under its alias.
		cols := make([]colInfo, len(sub.cols))
		for i, col := range sub.cols {
			cols[i] = colInfo{table: f.RefName(), name: col.name}
		}
		return &relation{cols: cols, rows: sub.rows}, nil
	}
	t, err := c.eng.Cat.Table(f.Name)
	if err != nil {
		return nil, err
	}
	n := t.NumRows()
	rows, phys, err := t.ScanRows(0, n)
	if err != nil {
		return nil, err
	}
	if t.Paged() {
		c.stats.BytesScanned += phys
	} else {
		c.stats.BytesScanned += t.Bytes
	}
	c.stats.RowsScanned += int64(n)
	cols := make([]colInfo, len(t.Schema.Cols))
	for i, col := range t.Schema.Cols {
		cols[i] = colInfo{table: f.RefName(), name: col.Name}
	}
	return &relation{cols: cols, rows: rows, base: t}, nil
}

// isGrouped reports whether the query needs the aggregation path.
func (c *execCtx) isGrouped(q *ast.Query) bool {
	if len(q.GroupBy) > 0 || q.Having != nil {
		return true
	}
	for _, p := range q.Projections {
		if c.hasAggLike(p.Expr) {
			return true
		}
	}
	return false
}

// hasAggLike reports whether e contains a built-in aggregate or an
// aggregate UDF call.
func (c *execCtx) hasAggLike(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) {
		switch n := x.(type) {
		case *ast.AggExpr:
			found = true
		case *ast.FuncCall:
			if c.eng.IsAggUDF(n.Name) {
				found = true
			}
		}
	})
	return found
}

// distinctKey renders one row's dedup key.
func distinctKey(row []value.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.HashKey())
		b.WriteByte(0)
	}
	return b.String()
}

// distinct removes duplicate rows, preserving first occurrence order. Large
// inputs dedup in parallel with partitioned seen-sets: row-range workers
// render every row's key, then one worker per key-hash partition marks the
// first occurrence of each key it owns (a key lives entirely in one
// partition, so no two workers touch the same keep slot), and the survivors
// collect in row order — byte-identical to the sequential pass.
func (c *execCtx) distinct(r *relation) *relation {
	n := len(r.rows)
	shards := c.shardCount(n)
	if shards <= 1 {
		seen := make(map[string]bool, n)
		out := r.rows[:0:0]
		for _, row := range r.rows {
			k := distinctKey(row)
			if !seen[k] {
				seen[k] = true
				out = append(out, row)
			}
		}
		return &relation{cols: r.cols, rows: out}
	}

	keys := make([]string, n)
	partIDs := make([]int32, n)
	bounds := shardBounds(n, shards)
	// Keys are pure renders of row values; no stats, no env — plain
	// worker fan-out suffices (errors impossible). Each key is hashed to
	// its partition once, here, so the partition pass below is an integer
	// compare per row instead of a rehash per (row, worker).
	_ = parallelDo(shards, func(s int) error {
		for i := bounds[s][0]; i < bounds[s][1]; i++ {
			keys[i] = distinctKey(r.rows[i])
			partIDs[i] = int32(joinPartition(keys[i], shards))
		}
		return nil
	})
	keep := make([]bool, n)
	_ = parallelDo(shards, func(p int) error {
		seen := make(map[string]bool, n/shards+1)
		for i, id := range partIDs {
			if id != int32(p) {
				continue
			}
			k := keys[i]
			if !seen[k] {
				seen[k] = true
				keep[i] = true
			}
		}
		return nil
	})
	out := r.rows[:0:0]
	for i, row := range r.rows {
		if keep[i] {
			out = append(out, row)
		}
	}
	return &relation{cols: r.cols, rows: out}
}

// execProject handles the non-aggregated path: projection, ORDER BY, LIMIT.
func (c *execCtx) execProject(q *ast.Query, in *relation, outer *env) (*relation, error) {
	outCols := projectionCols(q)
	aliases := aliasMap(q)
	nOrder := len(q.OrderBy)
	projectShard := func(sc *execCtx, out []keyedRow, lo, hi int) error {
		for i := lo; i < hi; i++ {
			en := &env{rel: in, row: in.rows[i], outer: outer, aliases: aliases, ctx: sc}
			vals, err := projectRow(en, q)
			if err != nil {
				return err
			}
			k := keyedRow{row: vals}
			if nOrder > 0 {
				k.keys = make([]value.Value, nOrder)
				for j, o := range q.OrderBy {
					v, err := eval(en, o.Expr)
					if err != nil {
						return err
					}
					k.keys[j] = v
				}
			}
			out[i-lo] = k
		}
		return nil
	}

	outRows := make([]keyedRow, len(in.rows))
	shards := c.shardCount(len(in.rows))
	if shards > 1 && parallelSafe(outer, projectionExprs(q)...) {
		if _, err := shardedCollect(c, shards, len(in.rows), func(sc *execCtx, lo, hi int) (struct{}, error) {
			return struct{}{}, projectShard(sc, outRows[lo:hi], lo, hi)
		}); err != nil {
			return nil, err
		}
	} else if err := projectShard(c, outRows, 0, len(in.rows)); err != nil {
		return nil, err
	}
	sortKeyed(outRows, q.OrderBy)
	rows := make([][]value.Value, len(outRows))
	for i, k := range outRows {
		rows[i] = k.row
	}
	return &relation{cols: outCols, rows: rows}, nil
}

// projectionExprs gathers every expression execProject evaluates per row:
// the SELECT list plus ORDER BY keys (which may expand SELECT aliases).
func projectionExprs(q *ast.Query) []ast.Expr {
	var out []ast.Expr
	for _, p := range q.Projections {
		out = append(out, p.Expr)
	}
	for _, o := range q.OrderBy {
		out = append(out, o.Expr)
	}
	return out
}

// projectionCols derives output column names from the SELECT list.
func projectionCols(q *ast.Query) []colInfo {
	cols := make([]colInfo, len(q.Projections))
	for i, p := range q.Projections {
		name := p.Alias
		if name == "" {
			if cr, ok := p.Expr.(*ast.ColumnRef); ok {
				name = cr.Column
			} else {
				name = p.Expr.SQL()
			}
		}
		cols[i] = colInfo{name: name}
	}
	return cols
}

// aliasMap exposes SELECT-list aliases to HAVING/ORDER BY resolution.
func aliasMap(q *ast.Query) map[string]ast.Expr {
	m := make(map[string]ast.Expr)
	for _, p := range q.Projections {
		if p.Alias != "" {
			m[p.Alias] = p.Expr
		}
	}
	return m
}

// projectRow evaluates the SELECT list for one input row or group.
func projectRow(en *env, q *ast.Query) ([]value.Value, error) {
	vals := make([]value.Value, len(q.Projections))
	for i, p := range q.Projections {
		// SELECT * expands all input columns; only valid un-aggregated.
		if cr, ok := p.Expr.(*ast.ColumnRef); ok && cr.Column == "*" {
			return append([]value.Value(nil), en.row...), nil
		}
		v, err := eval(en, p.Expr)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return vals, nil
}

// keyedRow pairs a projected output row with its ORDER BY key values.
type keyedRow struct {
	row  []value.Value
	keys []value.Value
}

// sortKeyed sorts projected rows by their ORDER BY key values.
func sortKeyed(rows []keyedRow, order []ast.OrderItem) {
	if len(order) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k, o := range order {
			cmp := value.Compare(a.keys[k], b.keys[k])
			if cmp == 0 {
				continue
			}
			if o.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
}
