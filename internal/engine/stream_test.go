package engine

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Streaming-execution equivalence and edge cases: every streamable query
// shape must produce results byte-identical to the materialized path at
// every batch size and parallelism level; LIMIT early exit must cut the
// scan short without leaking worker goroutines; and a streamed pipeline
// that falls back to a materialized operator mid-query must charge the
// scan exactly once.

// streamQueries covers the fully streamed pipeline (projection, filter,
// LIMIT early exit, grouped aggregation incl. DISTINCT aggregates, UDF
// aggregates, HAVING, star counts, SELECT *), the partial-stream fallback
// (ORDER BY, DISTINCT), and shapes that must fall back entirely (joins,
// subqueries) yet still agree.
var streamQueries = []string{
	`SELECT f_id, f_val FROM facts`,
	`SELECT * FROM facts WHERE f_val > 500`,
	`SELECT f_id, f_val * 2 + 1 FROM facts WHERE f_val < 900`,
	`SELECT f_id FROM facts WHERE f_val > 500 LIMIT 17`,
	`SELECT f_id FROM facts LIMIT 0`,
	`SELECT f_tag FROM facts WHERE f_val BETWEEN 100 AND 101`,
	`SELECT f_dim, SUM(f_val), COUNT(*), AVG(f_val), MIN(f_val), MAX(f_val)
	   FROM facts GROUP BY f_dim ORDER BY f_dim`,
	`SELECT COUNT(DISTINCT f_val), SUM(DISTINCT f_val) FROM facts`,
	`SELECT f_tag, COUNT(DISTINCT f_dim) FROM facts WHERE f_id < 700 GROUP BY f_tag ORDER BY f_tag`,
	`SELECT SUM(f_val), COUNT(*) FROM facts WHERE f_id < 700`,
	`SELECT SUM(f_val) FROM facts WHERE f_val > 100000`,
	`SELECT f_dim, SUM(f_val) s FROM facts GROUP BY f_dim HAVING s > 3000 ORDER BY s DESC, f_dim`,
	`SELECT f_dim, my_sum(f_val) FROM facts GROUP BY f_dim ORDER BY f_dim`,
	`SELECT f_id, f_val FROM facts WHERE f_val < 900 ORDER BY f_val DESC, f_id LIMIT 37`,
	`SELECT DISTINCT f_tag FROM facts`,
	`SELECT DISTINCT f_tag FROM facts ORDER BY f_tag`,
	`SELECT d_name, SUM(f_val) FROM facts, dims
	   WHERE f_dim = d_id AND f_val > 250 GROUP BY d_name ORDER BY d_name`,
	`SELECT f_dim FROM facts WHERE f_val = (SELECT MAX(f_val) FROM facts)`,
}

func TestStreamedMatchesMaterialized(t *testing.T) {
	e := parallelFixture(t, 2000)
	registerMySum(e)
	for _, sql := range streamQueries {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		want, seqErr := e.Execute(q, nil)
		for _, bs := range []int{1, 7, 64, DefaultBatchSize} {
			for _, p := range []int{1, 2, 4} {
				e.Parallelism, e.BatchSize = p, bs
				res, err := e.Execute(q, nil)
				if (err == nil) != (seqErr == nil) {
					t.Fatalf("bs=%d p=%d err=%v, materialized err=%v\n%s", bs, p, err, seqErr, sql)
				}
				if err != nil {
					continue
				}
				if got, wantS := renderResult(t, res), renderResult(t, want); got != wantS {
					t.Errorf("bs=%d p=%d diverges on %s\ngot:\n%s\nwant:\n%s", bs, p, sql, got, wantS)
				}
			}
		}
	}
}

// TestStreamedFullScanStats pins the cost-model inputs: a streamed full
// scan must charge exactly the same bytes and rows as the materialized
// scan, at every batch size and shard count (the per-batch byte charges
// telescope to the table total).
func TestStreamedFullScanStats(t *testing.T) {
	e := parallelFixture(t, 2000)
	q := sqlparser.MustParse(`SELECT f_dim, SUM(f_val) FROM facts WHERE f_val > 250 GROUP BY f_dim`)
	e.Parallelism, e.BatchSize = 1, 0
	want, err := e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 3, 64, 1024, 5000} {
		for _, p := range []int{1, 2, 4} {
			e.Parallelism, e.BatchSize = p, bs
			res, err := e.Execute(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.BytesScanned != want.Stats.BytesScanned ||
				res.Stats.RowsScanned != want.Stats.RowsScanned ||
				res.Stats.RowsOut != want.Stats.RowsOut {
				t.Errorf("bs=%d p=%d stats diverge: %+v vs %+v", bs, p, res.Stats, want.Stats)
			}
			if res.Stats.RowsStreamed != 2000 {
				t.Errorf("bs=%d p=%d RowsStreamed = %d, want 2000", bs, p, res.Stats.RowsStreamed)
			}
			if res.Stats.BatchesStreamed == 0 {
				t.Errorf("bs=%d p=%d BatchesStreamed = 0", bs, p)
			}
		}
	}
}

// TestStreamFallbackNoDoubleCount is the regression test for scan
// accounting when a streamed pipeline falls back to a materialized
// operator mid-query (ORDER BY / DISTINCT): the scan is charged by the
// streaming front exactly once, never re-charged by the materialized
// rest.
func TestStreamFallbackNoDoubleCount(t *testing.T) {
	const rows = 500
	e := parallelFixture(t, rows)
	tbl, err := e.Cat.Table("facts")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`SELECT f_id FROM facts WHERE f_val > 100 ORDER BY f_id`,
		`SELECT DISTINCT f_tag FROM facts`,
		`SELECT f_tag, COUNT(*) FROM facts GROUP BY f_tag ORDER BY f_tag`,
	} {
		q := sqlparser.MustParse(sql)
		for _, p := range []int{1, 4} {
			e.Parallelism, e.BatchSize = p, 64
			res, err := e.Execute(q, nil)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			if res.Stats.RowsScanned != rows {
				t.Errorf("p=%d %s: RowsScanned = %d, want exactly %d (double count?)",
					p, sql, res.Stats.RowsScanned, rows)
			}
			if res.Stats.BytesScanned != tbl.Bytes {
				t.Errorf("p=%d %s: BytesScanned = %d, want exactly %d",
					p, sql, res.Stats.BytesScanned, tbl.Bytes)
			}
			if res.Stats.RowsStreamed != rows {
				t.Errorf("p=%d %s: RowsStreamed = %d, want %d", p, sql, res.Stats.RowsStreamed, rows)
			}
			if res.Stats.RowsOut != int64(len(res.Rows)) {
				t.Errorf("p=%d %s: RowsOut = %d, result has %d rows",
					p, sql, res.Stats.RowsOut, len(res.Rows))
			}
		}
	}
}

// TestStreamEmptyTable covers the zero-row edge: empty scans, empty
// grouped output, and the aggregates-without-GROUP-BY single NULL/0 row.
func TestStreamEmptyTable(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := cat.Create(storage.Schema{
		Name: "void",
		Cols: []storage.Column{
			{Name: "v_id", Type: storage.TInt},
			{Name: "v_val", Type: storage.TInt},
		},
	}); err != nil {
		t.Fatal(err)
	}
	e := New(cat)
	for _, tc := range []struct {
		sql  string
		rows int
	}{
		{`SELECT v_id FROM void`, 0},
		{`SELECT v_id FROM void WHERE v_val > 10`, 0},
		{`SELECT v_id, v_val FROM void LIMIT 5`, 0},
		{`SELECT v_val, COUNT(*) FROM void GROUP BY v_val`, 0},
		{`SELECT SUM(v_val), COUNT(*) FROM void`, 1}, // NULL, 0
	} {
		q := sqlparser.MustParse(tc.sql)
		for _, bs := range []int{0, 1, 8} {
			for _, p := range []int{1, 4} {
				e.Parallelism, e.BatchSize = p, bs
				res, err := e.Execute(q, nil)
				if err != nil {
					t.Fatalf("bs=%d p=%d %s: %v", bs, p, tc.sql, err)
				}
				if len(res.Rows) != tc.rows {
					t.Errorf("bs=%d p=%d %s: %d rows, want %d", bs, p, tc.sql, len(res.Rows), tc.rows)
				}
			}
		}
	}
}

// TestStreamBatchBoundaryFilters aims predicates exactly at batch
// boundaries: selections starting/ending on a boundary, straddling one,
// and emptying entire batches must all agree with the materialized path.
func TestStreamBatchBoundaryFilters(t *testing.T) {
	e := parallelFixture(t, 200)
	const bs = 16
	for _, sql := range []string{
		`SELECT f_id FROM facts WHERE f_id BETWEEN 16 AND 31`,  // exactly batch 2
		`SELECT f_id FROM facts WHERE f_id BETWEEN 15 AND 16`,  // straddles 1|2
		`SELECT f_id FROM facts WHERE f_id BETWEEN 30 AND 33`,  // straddles 2|3
		`SELECT f_id FROM facts WHERE f_id >= 192`,             // final short batch
		`SELECT f_id FROM facts WHERE f_id < 0`,                // every batch empties
		`SELECT f_id FROM facts WHERE f_id = 48 OR f_id = 175`, // sparse survivors
		`SELECT SUM(f_val) FROM facts WHERE f_id BETWEEN 47 AND 48`,
	} {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		want, err := e.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4} {
			e.Parallelism, e.BatchSize = p, bs
			res, err := e.Execute(q, nil)
			if err != nil {
				t.Fatalf("p=%d %s: %v", p, sql, err)
			}
			if got, wantS := renderResult(t, res), renderResult(t, want); got != wantS {
				t.Errorf("p=%d %s diverges\ngot:\n%s\nwant:\n%s", p, sql, got, wantS)
			}
		}
	}
}

// TestStreamLimitEarlyExit checks that LIMIT without ORDER BY stops the
// pipeline partway through the table: the streamed scan must charge fewer
// rows/bytes than a full materialized scan.
func TestStreamLimitEarlyExit(t *testing.T) {
	const rows = 10000
	e := parallelFixture(t, rows)
	q := sqlparser.MustParse(`SELECT f_id FROM facts LIMIT 5`)

	e.Parallelism, e.BatchSize = 1, 32
	res, err := e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].AsInt() != int64(i) {
			t.Fatalf("row %d = %v, want %d (row order broken)", i, row[0], i)
		}
	}
	// One batch satisfies the limit; a second pull never happens.
	if res.Stats.RowsScanned != 32 {
		t.Errorf("sequential early exit scanned %d rows, want 32", res.Stats.RowsScanned)
	}
	tbl, _ := e.Cat.Table("facts")
	if res.Stats.BytesScanned >= tbl.Bytes {
		t.Errorf("early exit charged a full scan: %d bytes", res.Stats.BytesScanned)
	}

	// A limit forces the sequential drain even at p=4 (only the global
	// prefix matters), so the scan work and charged stats are identical
	// to the sequential run.
	e.Parallelism = 4
	res, err = e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || res.Rows[4][0].AsInt() != 4 {
		t.Fatalf("p=4 LIMIT 5 returned wrong rows: %v", res.Rows)
	}
	if res.Stats.RowsScanned != 32 {
		t.Errorf("p=4 early exit scanned %d rows, want 32 (same as sequential)", res.Stats.RowsScanned)
	}
}

// TestStreamLimitNoGoroutineLeak asserts streamed pipelines join all
// their workers before Execute returns: repeated early-exiting LIMIT
// queries interleaved with sharded streamed scans must not grow the
// process's goroutine count (run with -race to also catch unsynchronized
// stragglers).
func TestStreamLimitNoGoroutineLeak(t *testing.T) {
	e := parallelFixture(t, 5000)
	e.Parallelism, e.BatchSize = 4, 8
	queries := []string{
		`SELECT f_id FROM facts LIMIT 3`,
		`SELECT f_id FROM facts WHERE f_val > 500 LIMIT 9`,
		`SELECT f_id FROM facts LIMIT 0`,
		`SELECT f_dim, SUM(f_val) FROM facts GROUP BY f_dim`, // sharded workers
		`SELECT f_id FROM facts WHERE f_val > 900`,           // sharded workers
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		for _, sql := range queries {
			if _, err := e.Execute(sqlparser.MustParse(sql), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Give any (buggy) stragglers a moment to show up, then compare.
	var after int
	for i := 0; i < 20; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: early exit leaks workers", before, after)
	}
}

// TestStreamParamsAndScalarUDF checks parameter binding and scalar UDFs
// evaluate identically inside the streamed pipeline.
func TestStreamParamsAndScalarUDF(t *testing.T) {
	e := parallelFixture(t, 300)
	e.RegisterScalar("twice", func(st *Stats, args []value.Value) (value.Value, error) {
		return value.Add(args[0], args[0]), nil
	})
	q := sqlparser.MustParse(`SELECT f_id, twice(f_val) FROM facts WHERE f_val > :cut`)
	params := map[string]value.Value{"cut": value.NewInt(800)}
	e.Parallelism, e.BatchSize = 1, 0
	want, err := e.Execute(q, params)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallelism, e.BatchSize = 4, 32
	got, err := e.Execute(q, params)
	if err != nil {
		t.Fatal(err)
	}
	if renderResult(t, got) != renderResult(t, want) {
		t.Errorf("streamed params/UDF result diverges")
	}
}
