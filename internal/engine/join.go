package engine

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// Join planning and execution. planJoin classifies the WHERE conjuncts of a
// comma-join FROM into per-table filters, hash-join edges, and residual
// predicates, then fixes the greedy join order; the materialized executor
// (joinAll) and the streamed-probe pipeline (stream.go) both execute the
// same plan, so their outputs are byte-identical by construction.
//
// The hash-join build side is partitioned by key hash across workers into
// per-partition maps — no global lock, and a key's row list is always in
// build-side row order regardless of worker count — while the probe side
// shards by contiguous row ranges like every other row loop (parallel.go).

// joinStep is one step of the greedy join order: attach FROM index next to
// the accumulated relation. Empty key lists mean a cross join; otherwise
// leftKeys evaluate against the accumulated (probe) side and rightKeys
// against rels[next] (the build side).
type joinStep struct {
	next      int
	leftKeys  []ast.Expr
	rightKeys []ast.Expr
}

// joinPlan is the classified FROM/WHERE of one query block.
type joinPlan struct {
	perTable [][]ast.Expr // single-table filters, by FROM index
	steps    []joinStep   // greedy join order starting from FROM index 0
	residual []ast.Expr   // predicates to apply after the join
}

// joinEdge is a usable equi-join predicate: an equality whose two sides
// each reference exactly one (distinct) table.
type joinEdge struct {
	expr   *ast.BinaryExpr
	lt, rt int // FROM index of each side
}

// planJoin classifies q's WHERE conjuncts and derives the join order. rels
// supply only column layouts (for unqualified-column resolution); their
// rows are never touched, so the streaming path can plan with layout-only
// relations.
func planJoin(q *ast.Query, refNames []string, rels []*relation) (*joinPlan, error) {
	plan := &joinPlan{perTable: make([][]ast.Expr, len(rels))}
	var edges []joinEdge
	for _, e := range ast.Conjuncts(q.Where) {
		if ast.HasSubquery(e) {
			plan.residual = append(plan.residual, e)
			continue
		}
		tables := map[int]bool{}
		for _, col := range ast.Columns(e) {
			idx, err := resolveTable(col, refNames, rels)
			if err != nil {
				return nil, err
			}
			if idx >= 0 {
				tables[idx] = true
			}
		}
		switch {
		case len(tables) == 0:
			// No table columns: constant or outer-only predicate; keep it
			// residual so correlated envs resolve.
			plan.residual = append(plan.residual, e)
		case len(tables) == 1:
			for idx := range tables {
				plan.perTable[idx] = append(plan.perTable[idx], e)
			}
		default:
			if edge, ok := asJoinEdge(e, refNames, rels); ok {
				edges = append(edges, edge)
				continue
			}
			// Multi-table inequality, three-or-more-table predicate, or an
			// equality with a mixed-side operand (e.g. a.x = a.y + b.z):
			// neither side can be evaluated against a single relation, so
			// the predicate filters the joined rows instead.
			plan.residual = append(plan.residual, e)
		}
	}

	// Greedy join order: start from table 0, repeatedly attach a table
	// connected by at least one usable edge; cross join as a last resort.
	joinedSet := map[int]bool{0: true}
	used := make([]bool, len(edges))
	for len(joinedSet) < len(rels) {
		next := -1
		for i, e := range edges {
			if used[i] {
				continue
			}
			if joinedSet[e.lt] != joinedSet[e.rt] {
				if joinedSet[e.lt] {
					next = e.rt
				} else {
					next = e.lt
				}
				break
			}
		}
		if next < 0 {
			// No connecting edge: cross join the lowest unjoined table.
			for i := range rels {
				if !joinedSet[i] {
					next = i
					break
				}
			}
			plan.steps = append(plan.steps, joinStep{next: next})
			joinedSet[next] = true
			continue
		}
		// Gather every edge connecting joinedSet to `next`, oriented so the
		// left side references the joined set and the right side `next`.
		step := joinStep{next: next}
		for i, e := range edges {
			if used[i] {
				continue
			}
			l, r := e.expr.Left, e.expr.Right
			switch {
			case e.rt == next && joinedSet[e.lt]:
				// already oriented
			case e.lt == next && joinedSet[e.rt]:
				l, r = r, l
			default:
				continue
			}
			step.leftKeys = append(step.leftKeys, l)
			step.rightKeys = append(step.rightKeys, r)
			used[i] = true
		}
		plan.steps = append(plan.steps, step)
		joinedSet[next] = true
	}

	// Any edges never used (e.g. both sides joined via other paths) become
	// residual filters.
	for i, e := range edges {
		if !used[i] {
			plan.residual = append(plan.residual, e.expr)
		}
	}
	return plan, nil
}

// asJoinEdge reports whether e is a hash-joinable equality: each side must
// reference exactly one table, and the two sides different ones. An
// equality where one side mixes tables (a.x = a.y + b.z) is NOT an edge —
// the mixed side cannot be evaluated against a single relation — and must
// stay a residual predicate.
func asJoinEdge(e ast.Expr, refNames []string, rels []*relation) (joinEdge, bool) {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != ast.OpEq {
		return joinEdge{}, false
	}
	lt, err := sideTable(be.Left, refNames, rels)
	if err != nil || lt < 0 {
		return joinEdge{}, false
	}
	rt, err := sideTable(be.Right, refNames, rels)
	if err != nil || rt < 0 || rt == lt {
		return joinEdge{}, false
	}
	return joinEdge{expr: be, lt: lt, rt: rt}, true
}

// joinAll combines the FROM relations using hash joins extracted from the
// WHERE clause. It returns the joined relation and the residual predicates
// that could not be applied as single-table filters or equi-join conditions
// (multi-table inequality predicates, predicates containing subqueries).
func (c *execCtx) joinAll(q *ast.Query, rels []*relation, outer *env) (*relation, []ast.Expr, error) {
	refNames := make([]string, len(q.From))
	for i := range q.From {
		refNames[i] = q.From[i].RefName()
	}
	plan, err := planJoin(q, refNames, rels)
	if err != nil {
		return nil, nil, err
	}

	// Apply single-table filters before joining.
	for i, preds := range plan.perTable {
		if len(preds) == 0 {
			continue
		}
		filtered, err := c.filter(rels[i], ast.AndAll(preds), outer)
		if err != nil {
			return nil, nil, err
		}
		rels[i] = filtered
	}

	cur := rels[0]
	for _, st := range plan.steps {
		if len(st.leftKeys) == 0 {
			cur, err = c.crossJoin(cur, rels[st.next])
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		build, err := c.buildJoinMap(rels[st.next], st.rightKeys, outer)
		if err != nil {
			return nil, nil, err
		}
		cur, err = c.probeJoin(cur, build, st.leftKeys, outer)
		if err != nil {
			return nil, nil, err
		}
	}
	return cur, plan.residual, nil
}

// resolveTable maps a column reference to its FROM index, or -1 (outer
// ref). An unqualified name that resolves in more than one FROM relation is
// an error (standard SQL ambiguity semantics) — binding it silently to the
// first match would filter or join the wrong table.
func resolveTable(col *ast.ColumnRef, refNames []string, rels []*relation) (int, error) {
	if col.Column == "*" {
		return -1, nil
	}
	if col.Table != "" {
		for i, n := range refNames {
			if n == col.Table {
				return i, nil
			}
		}
		return -1, nil
	}
	found := -1
	for i, r := range rels {
		if idx, err := r.indexOf("", col.Column); err == nil && idx >= 0 {
			if found >= 0 {
				return -1, fmt.Errorf("engine: column reference is ambiguous: %s (in %s and %s)",
					col.Column, refNames[found], refNames[i])
			}
			found = i
		}
	}
	return found, nil
}

// sideTable returns the single FROM index an expression references, or -1
// when it references none or mixes several.
func sideTable(e ast.Expr, refNames []string, rels []*relation) (int, error) {
	idx := -1
	for _, col := range ast.Columns(e) {
		t, err := resolveTable(col, refNames, rels)
		if err != nil {
			return -1, err
		}
		if t < 0 {
			continue
		}
		if idx >= 0 && idx != t {
			return -1, nil
		}
		idx = t
	}
	return idx, nil
}

// filter applies a predicate to a relation, sharding across workers when
// the predicate is subquery-free and the relation is large enough. Shard
// outputs concatenate in shard order, preserving row order.
func (c *execCtx) filter(r *relation, pred ast.Expr, outer *env) (*relation, error) {
	filterShard := func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		var out [][]value.Value
		for _, row := range r.rows[lo:hi] {
			en := &env{rel: r, row: row, outer: outer, ctx: sc}
			ok, err := evalBool(en, pred)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		return out, nil
	}

	shards := c.shardCount(len(r.rows))
	if shards <= 1 || !parallelSafe(outer, pred) {
		out, err := filterShard(c, 0, len(r.rows))
		if err != nil {
			return nil, err
		}
		return &relation{cols: r.cols, rows: out}, nil
	}
	out, err := c.shardedRows(shards, len(r.rows), filterShard)
	if err != nil {
		return nil, err
	}
	return &relation{cols: r.cols, rows: out}, nil
}

// joinBuild is a hash-join build side: either a materialized map
// partitioned by key hash, or (ix != nil) the base table's hash index
// serving lookups directly, with no map ever built. Each partition map is
// owned (built and read) without locks; a key's rows live entirely in one
// partition, appended in build-side row order, so probe output is
// independent of the partition count — and a posting list is ascending row
// ids, which is the same order.
type joinBuild struct {
	cols  []colInfo
	parts []map[string][][]value.Value
	rows  [][]value.Value // index-backed build: the base relation's rows
	ix    *storage.Index  // non-nil = lookups resolve through the index
}

// lookup returns the build rows matching one (non-NULL) probe key.
func (b *joinBuild) lookup(key string) [][]value.Value {
	if b.ix != nil {
		// Single-key joinKey renders HashKey + one separator byte; the
		// index posts under the bare HashKey.
		ids := b.ix.PostingsKey(key[:len(key)-1])
		if len(ids) == 0 {
			return nil
		}
		out := make([][]value.Value, len(ids))
		for i, id := range ids {
			out[i] = b.rows[id]
		}
		return out
	}
	return b.parts[joinPartition(key, len(b.parts))][key]
}

// joinPartition assigns a key to one of n partitions (FNV-1a).
func joinPartition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// buildJoinMap hashes the build side of one join. When the keys are
// subquery-free and the relation is large enough, construction is sharded
// in two lock-free phases: contiguous row-range workers evaluate every
// row's key and its partition id (NULL keys get partition -1 and are
// skipped), then one worker per partition collects the rows it owns,
// scanning in row order.
func (c *execCtx) buildJoinMap(right *relation, rightKeys []ast.Expr, outer *env) (*joinBuild, error) {
	if b := c.indexedBuild(right, rightKeys); b != nil {
		return b, nil
	}
	n := len(right.rows)
	shards := c.shardCount(n)
	if shards <= 1 || !parallelSafe(outer, rightKeys...) {
		m := make(map[string][][]value.Value, n)
		for _, row := range right.rows {
			en := &env{rel: right, row: row, outer: outer, ctx: c}
			key, null, err := joinKey(en, rightKeys)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			m[key] = append(m[key], row)
		}
		return &joinBuild{cols: right.cols, parts: []map[string][][]value.Value{m}}, nil
	}

	keys := make([]string, n)
	partIDs := make([]int32, n) // -1 = NULL key; hashed once, in phase 1
	if _, err := shardedCollect(c, shards, n, func(sc *execCtx, lo, hi int) (struct{}, error) {
		for i := lo; i < hi; i++ {
			en := &env{rel: right, row: right.rows[i], outer: outer, ctx: sc}
			key, null, err := joinKey(en, rightKeys)
			if err != nil {
				return struct{}{}, err
			}
			if null {
				partIDs[i] = -1
				continue
			}
			keys[i] = key
			partIDs[i] = int32(joinPartition(key, shards))
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}

	parts := make([]map[string][][]value.Value, shards)
	if err := parallelDo(shards, func(p int) error {
		m := make(map[string][][]value.Value, n/shards+1)
		for i, id := range partIDs {
			if id == int32(p) {
				m[keys[i]] = append(m[keys[i]], right.rows[i])
			}
		}
		parts[p] = m
		return nil
	}); err != nil {
		return nil, err
	}
	return &joinBuild{cols: right.cols, parts: parts}, nil
}

// probeJoin probes the accumulated relation against a materialized build.
// The probe side shards by contiguous row ranges when the keys are
// subquery-free; per-shard outputs concatenate in shard order, matching
// the sequential emit order.
func (c *execCtx) probeJoin(left *relation, build *joinBuild, leftKeys []ast.Expr, outer *env) (*relation, error) {
	cols := append(append([]colInfo(nil), left.cols...), build.cols...)
	probeShard := func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		var out [][]value.Value
		for _, lrow := range left.rows[lo:hi] {
			en := &env{rel: left, row: lrow, outer: outer, ctx: sc}
			key, null, err := joinKey(en, leftKeys)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			for _, rrow := range build.lookup(key) {
				combined := make([]value.Value, 0, len(lrow)+len(rrow))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				out = append(out, combined)
			}
		}
		return out, nil
	}

	shards := c.shardCount(len(left.rows))
	if shards <= 1 || !parallelSafe(outer, leftKeys...) {
		out, err := probeShard(c, 0, len(left.rows))
		if err != nil {
			return nil, err
		}
		return &relation{cols: cols, rows: out}, nil
	}
	out, err := c.shardedRows(shards, len(left.rows), probeShard)
	if err != nil {
		return nil, err
	}
	return &relation{cols: cols, rows: out}, nil
}

// joinKey evaluates key expressions into a composite hash key.
func joinKey(en *env, keys []ast.Expr) (string, bool, error) {
	var b strings.Builder
	for _, k := range keys {
		v, err := eval(en, k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		b.WriteString(v.HashKey())
		b.WriteByte(0)
	}
	return b.String(), false, nil
}

// maxJoinPrealloc caps a join operator's output preallocation, in rows.
// The exact cross-product size len(left)*len(right) can overflow int — and
// even in range it can demand a multi-GB allocation before a single row
// exists — so large outputs start at the cap and grow.
const maxJoinPrealloc = 1 << 16

// crossPrealloc sizes the output buffer for an l×r cross product. The
// overflow check divides instead of multiplying: l*r itself can wrap all
// the way back into small positive values (or exactly 0) for huge inputs.
func crossPrealloc(l, r int) int {
	if l == 0 || r == 0 {
		return 0
	}
	if l > maxJoinPrealloc/r {
		return maxJoinPrealloc
	}
	return l * r
}

// crossJoin produces the Cartesian product of two relations, sharding the
// outer (left) loop by contiguous row ranges; shard outputs concatenate in
// shard order, so row order matches the sequential nested loop.
func (c *execCtx) crossJoin(left, right *relation) (*relation, error) {
	cols := append(append([]colInfo(nil), left.cols...), right.cols...)
	crossShard := func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		out := make([][]value.Value, 0, crossPrealloc(hi-lo, len(right.rows)))
		for _, l := range left.rows[lo:hi] {
			for _, r := range right.rows {
				combined := make([]value.Value, 0, len(l)+len(r))
				combined = append(combined, l...)
				combined = append(combined, r...)
				out = append(out, combined)
			}
		}
		return out, nil
	}

	shards := c.shardCount(len(left.rows))
	if shards <= 1 {
		out, err := crossShard(c, 0, len(left.rows))
		if err != nil {
			return nil, err
		}
		return &relation{cols: cols, rows: out}, nil
	}
	out, err := c.shardedRows(shards, len(left.rows), crossShard)
	if err != nil {
		return nil, err
	}
	return &relation{cols: cols, rows: out}, nil
}
