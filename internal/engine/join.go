package engine

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// joinAll combines the FROM relations using hash joins extracted from the
// WHERE clause. It returns the joined relation and the residual predicates
// that could not be applied as single-table filters or equi-join conditions
// (multi-table inequality predicates, predicates containing subqueries).
func (c *execCtx) joinAll(q *ast.Query, rels []*relation, outer *env) (*relation, []ast.Expr, error) {
	refNames := make([]string, len(q.From))
	for i := range q.From {
		refNames[i] = q.From[i].RefName()
	}

	conjuncts := ast.Conjuncts(q.Where)
	type classified struct {
		expr   ast.Expr
		tables map[int]bool // FROM indexes referenced
		sub    bool         // contains a subquery
	}
	classify := func(e ast.Expr) classified {
		cl := classified{expr: e, tables: map[int]bool{}, sub: ast.HasSubquery(e)}
		for _, col := range ast.Columns(e) {
			if idx := resolveTable(col, refNames, rels); idx >= 0 {
				cl.tables[idx] = true
			}
		}
		return cl
	}

	var (
		perTable = make([][]ast.Expr, len(rels))
		edges    []classified // two-table equality predicates
		residual []ast.Expr
	)
	for _, e := range conjuncts {
		cl := classify(e)
		switch {
		case cl.sub:
			residual = append(residual, e)
		case len(cl.tables) == 0:
			// No table columns: constant or outer-only predicate; keep it
			// residual so correlated envs resolve.
			residual = append(residual, e)
		case len(cl.tables) == 1:
			for idx := range cl.tables {
				perTable[idx] = append(perTable[idx], e)
			}
		case len(cl.tables) == 2 && isEquiJoin(e):
			edges = append(edges, cl)
		default:
			residual = append(residual, e)
		}
	}

	// Apply single-table filters before joining.
	for i, preds := range perTable {
		if len(preds) == 0 {
			continue
		}
		pred := ast.AndAll(preds)
		filtered, err := c.filter(rels[i], pred, outer)
		if err != nil {
			return nil, nil, err
		}
		rels[i] = filtered
	}

	// Greedy join: start from table 0, repeatedly attach a table connected
	// by at least one usable equi-join edge; cross join as a last resort.
	joinedSet := map[int]bool{0: true}
	cur := rels[0]
	used := make([]bool, len(edges))
	for len(joinedSet) < len(rels) {
		next := -1
		for i, e := range edges {
			if used[i] {
				continue
			}
			in, out := 0, -1
			for t := range e.tables {
				if joinedSet[t] {
					in++
				} else {
					out = t
				}
			}
			if in == 1 && out >= 0 {
				next = out
				break
			}
		}
		if next < 0 {
			// no connecting edge: cross join the lowest unjoined table
			for i := range rels {
				if !joinedSet[i] {
					next = i
					break
				}
			}
			cur = crossJoin(cur, rels[next])
			joinedSet[next] = true
			continue
		}
		// Gather every edge connecting joinedSet to `next`.
		var leftKeys, rightKeys []ast.Expr
		for i, e := range edges {
			if used[i] {
				continue
			}
			if !e.tables[next] {
				continue
			}
			other := -1
			for t := range e.tables {
				if t != next {
					other = t
				}
			}
			if other < 0 || !joinedSet[other] {
				continue
			}
			be := e.expr.(*ast.BinaryExpr)
			// Orient: left side references the joined set, right side `next`.
			l, r := be.Left, be.Right
			if sideTable(l, refNames, rels) == next {
				l, r = r, l
			}
			leftKeys = append(leftKeys, l)
			rightKeys = append(rightKeys, r)
			used[i] = true
		}
		var err error
		cur, err = c.hashJoin(cur, rels[next], leftKeys, rightKeys, outer)
		if err != nil {
			return nil, nil, err
		}
		joinedSet[next] = true
	}

	// Any edges we never used (e.g. both sides joined via other paths)
	// become residual filters.
	for i, e := range edges {
		if !used[i] {
			residual = append(residual, e.expr)
		}
	}
	return cur, residual, nil
}

// resolveTable maps a column reference to its FROM index, or -1 (outer ref).
func resolveTable(col *ast.ColumnRef, refNames []string, rels []*relation) int {
	if col.Column == "*" {
		return -1
	}
	if col.Table != "" {
		for i, n := range refNames {
			if n == col.Table {
				return i
			}
		}
		return -1
	}
	for i, r := range rels {
		if idx, err := r.indexOf("", col.Column); err == nil && idx >= 0 {
			return i
		}
	}
	return -1
}

// isEquiJoin reports whether e is an equality between two expressions.
func isEquiJoin(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	return ok && b.Op == ast.OpEq
}

// sideTable returns the single FROM index an expression references, or -1.
func sideTable(e ast.Expr, refNames []string, rels []*relation) int {
	idx := -1
	for _, col := range ast.Columns(e) {
		t := resolveTable(col, refNames, rels)
		if t < 0 {
			continue
		}
		if idx >= 0 && idx != t {
			return -1
		}
		idx = t
	}
	return idx
}

// filter applies a predicate to a relation, sharding across workers when
// the predicate is subquery-free and the relation is large enough. Shard
// outputs concatenate in shard order, preserving row order.
func (c *execCtx) filter(r *relation, pred ast.Expr, outer *env) (*relation, error) {
	filterShard := func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		var out [][]value.Value
		for _, row := range r.rows[lo:hi] {
			en := &env{rel: r, row: row, outer: outer, ctx: sc}
			ok, err := evalBool(en, pred)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		return out, nil
	}

	shards := c.shardCount(len(r.rows))
	if shards <= 1 || !parallelSafe(outer, pred) {
		out, err := filterShard(c, 0, len(r.rows))
		if err != nil {
			return nil, err
		}
		return &relation{cols: r.cols, rows: out}, nil
	}
	out, err := c.shardedRows(shards, len(r.rows), filterShard)
	if err != nil {
		return nil, err
	}
	return &relation{cols: r.cols, rows: out}, nil
}

// hashJoin joins left and right on the given key expression lists.
// leftKeys[i] evaluates against left rows, rightKeys[i] against right rows.
func (c *execCtx) hashJoin(left, right *relation, leftKeys, rightKeys []ast.Expr, outer *env) (*relation, error) {
	build := make(map[string][][]value.Value, len(right.rows))
	for _, row := range right.rows {
		en := &env{rel: right, row: row, outer: outer, ctx: c}
		key, null, err := joinKey(en, rightKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		build[key] = append(build[key], row)
	}
	cols := append(append([]colInfo(nil), left.cols...), right.cols...)

	// Probe phase: shard the probe side when the keys are subquery-free;
	// per-shard outputs concatenate in shard order, matching the
	// sequential emit order.
	probeShard := func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		var out [][]value.Value
		for _, lrow := range left.rows[lo:hi] {
			en := &env{rel: left, row: lrow, outer: outer, ctx: sc}
			key, null, err := joinKey(en, leftKeys)
			if err != nil {
				return nil, err
			}
			if null {
				continue
			}
			for _, rrow := range build[key] {
				combined := make([]value.Value, 0, len(lrow)+len(rrow))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				out = append(out, combined)
			}
		}
		return out, nil
	}

	shards := c.shardCount(len(left.rows))
	if shards <= 1 || !parallelSafe(outer, leftKeys...) {
		out, err := probeShard(c, 0, len(left.rows))
		if err != nil {
			return nil, err
		}
		return &relation{cols: cols, rows: out}, nil
	}
	out, err := c.shardedRows(shards, len(left.rows), probeShard)
	if err != nil {
		return nil, err
	}
	return &relation{cols: cols, rows: out}, nil
}

// joinKey evaluates key expressions into a composite hash key.
func joinKey(en *env, keys []ast.Expr) (string, bool, error) {
	var b strings.Builder
	for _, k := range keys {
		v, err := eval(en, k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		b.WriteString(v.HashKey())
		b.WriteByte(0)
	}
	return b.String(), false, nil
}

// crossJoin produces the Cartesian product of two relations.
func crossJoin(left, right *relation) *relation {
	cols := append(append([]colInfo(nil), left.cols...), right.cols...)
	out := make([][]value.Value, 0, len(left.rows)*len(right.rows))
	for _, l := range left.rows {
		for _, r := range right.rows {
			combined := make([]value.Value, 0, len(l)+len(r))
			combined = append(combined, l...)
			combined = append(combined, r...)
			out = append(out, combined)
		}
	}
	return &relation{cols: cols, rows: out}
}
