package engine

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// Subquery execution. Uncorrelated subqueries are executed once and cached.
// Correlated subqueries whose correlation is expressed as top-level equality
// conjuncts (`inner.col = outer.col`) are decorrelated into a single grouped
// execution plus a hash lookup per outer row — the same rewrite modern
// optimizers perform. Anything else falls back to naive per-row execution
// (which is what makes the paper's Q21 the slow case at scale).

type subqMode int

const (
	subqScalar subqMode = iota
	subqIn
	subqExists
)

// subqPlan is the cached strategy + results for one subquery AST node.
type subqPlan struct {
	mode  subqMode
	naive bool

	// Uncorrelated results.
	uncorr    bool
	scalarVal value.Value
	inSet     map[string]bool
	existsVal bool

	// Decorrelated state.
	outerKeys []ast.Expr                 // evaluated in the outer env
	scalarMap map[string]value.Value     // scalar: key -> value
	inMap     map[string]map[string]bool // in: key -> set of member values
	buckets   map[string][][]value.Value // exists: key -> candidate rows
	bucketRel *relation                  // column layout of bucket rows
	residual  ast.Expr                   // extra correlated predicate (exists)
}

// scalarSubquery evaluates a scalar subquery for the current row.
func (c *execCtx) scalarSubquery(en *env, sub *ast.Query) (value.Value, error) {
	p, err := c.planSubquery(sub, en, subqScalar)
	if err != nil {
		return value.Value{}, err
	}
	if p.naive {
		rel, err := c.runNaive(sub, en)
		if err != nil {
			return value.Value{}, err
		}
		if len(rel.rows) == 0 {
			return value.NewNull(), nil
		}
		return rel.rows[0][0], nil
	}
	if p.uncorr {
		return p.scalarVal, nil
	}
	key, null, err := outerKey(en, p.outerKeys)
	if err != nil {
		return value.Value{}, err
	}
	if null {
		return value.NewNull(), nil
	}
	v, ok := p.scalarMap[key]
	if !ok {
		return value.NewNull(), nil
	}
	return v, nil
}

// evalIn evaluates e IN (...) including list and subquery forms.
func (c *execCtx) evalIn(en *env, x *ast.InExpr) (value.Value, error) {
	lhs, err := eval(en, x.E)
	if err != nil {
		return value.Value{}, err
	}
	if lhs.IsNull() {
		return value.NewNull(), nil
	}
	if x.Sub == nil {
		for _, item := range x.List {
			v, err := eval(en, item)
			if err != nil {
				return value.Value{}, err
			}
			if value.Equal(lhs, v) {
				return value.NewBool(!x.Not), nil
			}
		}
		return value.NewBool(x.Not), nil
	}

	p, err := c.planSubquery(x.Sub, en, subqIn)
	if err != nil {
		return value.Value{}, err
	}
	var member bool
	switch {
	case p.naive:
		rel, err := c.runNaive(x.Sub, en)
		if err != nil {
			return value.Value{}, err
		}
		for _, row := range rel.rows {
			if value.Equal(lhs, row[0]) {
				member = true
				break
			}
		}
	case p.uncorr:
		member = p.inSet[lhs.HashKey()]
	default:
		key, null, err := outerKey(en, p.outerKeys)
		if err != nil {
			return value.Value{}, err
		}
		if !null {
			member = p.inMap[key][lhs.HashKey()]
		}
	}
	return value.NewBool(member != x.Not), nil
}

// evalExists evaluates EXISTS (...) for the current row (negation is the
// caller's job).
func (c *execCtx) evalExists(en *env, x *ast.ExistsExpr) (bool, error) {
	p, err := c.planSubquery(x.Sub, en, subqExists)
	if err != nil {
		return false, err
	}
	var found bool
	switch {
	case p.naive:
		rel, err := c.runNaive(x.Sub, en)
		if err != nil {
			return false, err
		}
		found = len(rel.rows) > 0
	case p.uncorr:
		found = p.existsVal
	default:
		key, null, err := outerKey(en, p.outerKeys)
		if err != nil {
			return false, err
		}
		if null {
			break
		}
		rows := p.buckets[key]
		if p.residual == nil {
			found = len(rows) > 0
			break
		}
		for _, row := range rows {
			inner := &env{rel: p.bucketRel, row: row, outer: en, ctx: c}
			ok, err := evalBool(inner, p.residual)
			if err != nil {
				return false, err
			}
			if ok {
				found = true
				break
			}
		}
	}
	if x.Not {
		return !found, nil
	}
	return found, nil
}

// runNaive executes the subquery afresh for the current outer row.
func (c *execCtx) runNaive(sub *ast.Query, en *env) (*relation, error) {
	c.stats.SubqueryRuns++
	return c.execQuery(sub, en)
}

// outerKey evaluates the outer-side correlation key for the current row.
func outerKey(en *env, keys []ast.Expr) (string, bool, error) {
	var b strings.Builder
	for _, k := range keys {
		v, err := eval(en, k)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		b.WriteString(v.HashKey())
		b.WriteByte(0)
	}
	return b.String(), false, nil
}

// planSubquery prepares (once) the execution strategy for a subquery.
func (c *execCtx) planSubquery(sub *ast.Query, en *env, mode subqMode) (*subqPlan, error) {
	if p, ok := c.subq[sub]; ok {
		return p, nil
	}
	p := &subqPlan{mode: mode}
	c.subq[sub] = p

	free := c.freeColumns(sub)
	if len(free) == 0 {
		p.uncorr = true
		c.stats.SubqueryRuns++
		rel, err := c.execQuery(sub, nil)
		if err != nil {
			return nil, err
		}
		switch mode {
		case subqScalar:
			if len(rel.rows) == 0 {
				p.scalarVal = value.NewNull()
			} else {
				p.scalarVal = rel.rows[0][0]
			}
		case subqIn:
			p.inSet = make(map[string]bool, len(rel.rows))
			for _, row := range rel.rows {
				if !row[0].IsNull() {
					p.inSet[row[0].HashKey()] = true
				}
			}
		case subqExists:
			p.existsVal = len(rel.rows) > 0
		}
		return p, nil
	}

	// Correlated: attempt decorrelation via equality conjuncts.
	if err := c.decorrelate(p, sub, free); err != nil {
		p.naive = true
	}
	return p, nil
}

var errNoDecorrelate = fmt.Errorf("engine: subquery not decorrelatable")

// innerColumns returns the set of unqualified column names resolvable by
// sub's own FROM tables.
func (c *execCtx) innerColumns(sub *ast.Query) map[string]bool {
	inner := make(map[string]bool)
	for i := range sub.From {
		f := &sub.From[i]
		if f.Sub != nil {
			for _, p := range f.Sub.Projections {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*ast.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					inner[name] = true
				}
			}
			continue
		}
		if t, err := c.eng.Cat.Table(f.Name); err == nil {
			for _, col := range t.Schema.Cols {
				inner[col.Name] = true
			}
		}
	}
	return inner
}

// decorrelate builds hash-lookup state for an equality-correlated subquery.
func (c *execCtx) decorrelate(p *subqPlan, sub *ast.Query, free map[string]bool) error {
	inner := c.innerColumns(sub)
	isFree := func(col *ast.ColumnRef) bool { return free[col.SQL()] }
	onlyFree := func(e ast.Expr) bool {
		cols := ast.Columns(e)
		if len(cols) == 0 {
			return false
		}
		for _, col := range cols {
			if !isFree(col) {
				return false
			}
		}
		return !ast.HasSubquery(e)
	}
	onlyInner := func(e ast.Expr) bool {
		for _, col := range ast.Columns(e) {
			if isFree(col) {
				return false
			}
			if col.Table == "" && !inner[col.Column] {
				return false
			}
		}
		return !ast.HasSubquery(e)
	}

	// Free columns may only appear in WHERE (not projections, GROUP BY...).
	for _, pr := range sub.Projections {
		if exprHasFree(pr.Expr, free) {
			return errNoDecorrelate
		}
	}
	for _, g := range sub.GroupBy {
		if exprHasFree(g, free) {
			return errNoDecorrelate
		}
	}
	if sub.Having != nil && exprHasFree(sub.Having, free) {
		return errNoDecorrelate
	}

	var (
		innerPreds   []ast.Expr
		corrResidual []ast.Expr
		outerKeys    []ast.Expr
		innerKeys    []ast.Expr
	)
	for _, conj := range ast.Conjuncts(sub.Where) {
		if !exprHasFree(conj, free) {
			innerPreds = append(innerPreds, conj)
			continue
		}
		if be, ok := conj.(*ast.BinaryExpr); ok && be.Op == ast.OpEq {
			switch {
			case onlyFree(be.Left) && onlyInner(be.Right):
				outerKeys = append(outerKeys, be.Left)
				innerKeys = append(innerKeys, be.Right)
				continue
			case onlyFree(be.Right) && onlyInner(be.Left):
				outerKeys = append(outerKeys, be.Right)
				innerKeys = append(innerKeys, be.Left)
				continue
			}
		}
		corrResidual = append(corrResidual, conj)
	}
	if len(outerKeys) == 0 {
		return errNoDecorrelate
	}

	switch p.mode {
	case subqExists:
		if len(sub.GroupBy) > 0 || sub.Having != nil {
			return errNoDecorrelate
		}
		// Materialize the inner join with only inner predicates, then
		// bucket its rows by the correlation key.
		inq := sub.Clone()
		inq.Where = ast.AndAll(innerPreds)
		rel, err := c.execSource(inq, nil)
		if err != nil {
			return err
		}
		p.bucketRel = rel
		p.buckets = make(map[string][][]value.Value)
		for _, row := range rel.rows {
			en := &env{rel: rel, row: row, ctx: c}
			key, null, err := outerKey(en, innerKeys)
			if err != nil {
				return err
			}
			if null {
				continue
			}
			p.buckets[key] = append(p.buckets[key], row)
		}
		p.residual = ast.AndAll(corrResidual)
		p.outerKeys = outerKeys
		c.stats.SubqueryRuns++
		return nil

	case subqScalar:
		if len(corrResidual) > 0 || len(sub.GroupBy) > 0 || sub.Having != nil {
			return errNoDecorrelate
		}
		// Regroup the subquery by its correlation keys: one aggregate row
		// per distinct outer key.
		inq := sub.Clone()
		inq.Where = ast.AndAll(cloneAll(innerPreds))
		inq.GroupBy = cloneAll(innerKeys)
		for _, k := range innerKeys {
			inq.Projections = append(inq.Projections, ast.SelectItem{Expr: k.Clone()})
		}
		rel, err := c.execQuery(inq, nil)
		if err != nil {
			return err
		}
		p.scalarMap = make(map[string]value.Value, len(rel.rows))
		nk := len(innerKeys)
		for _, row := range rel.rows {
			var b strings.Builder
			null := false
			for _, v := range row[len(row)-nk:] {
				if v.IsNull() {
					null = true
					break
				}
				b.WriteString(v.HashKey())
				b.WriteByte(0)
			}
			if null {
				continue
			}
			p.scalarMap[b.String()] = row[0]
		}
		p.outerKeys = outerKeys
		c.stats.SubqueryRuns++
		return nil

	case subqIn:
		if len(corrResidual) > 0 || len(sub.GroupBy) > 0 || sub.Having != nil {
			return errNoDecorrelate
		}
		inq := sub.Clone()
		inq.Where = ast.AndAll(cloneAll(innerPreds))
		for _, k := range innerKeys {
			inq.Projections = append(inq.Projections, ast.SelectItem{Expr: k.Clone()})
		}
		rel, err := c.execQuery(inq, nil)
		if err != nil {
			return err
		}
		p.inMap = make(map[string]map[string]bool)
		nk := len(innerKeys)
		for _, row := range rel.rows {
			var b strings.Builder
			null := false
			for _, v := range row[len(row)-nk:] {
				if v.IsNull() {
					null = true
					break
				}
				b.WriteString(v.HashKey())
				b.WriteByte(0)
			}
			if null || row[0].IsNull() {
				continue
			}
			key := b.String()
			set := p.inMap[key]
			if set == nil {
				set = make(map[string]bool)
				p.inMap[key] = set
			}
			set[row[0].HashKey()] = true
		}
		p.outerKeys = outerKeys
		c.stats.SubqueryRuns++
		return nil
	}
	return errNoDecorrelate
}

func cloneAll(es []ast.Expr) []ast.Expr {
	out := make([]ast.Expr, len(es))
	for i, e := range es {
		out[i] = e.Clone()
	}
	return out
}

// exprHasFree reports whether e mentions any free (outer) column.
func exprHasFree(e ast.Expr, free map[string]bool) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) {
		if col, ok := x.(*ast.ColumnRef); ok && free[col.SQL()] {
			found = true
		}
	})
	if found {
		return true
	}
	for _, s := range ast.Subqueries(e) {
		for f := range freeOf(s, nil) {
			if free[f] {
				return true
			}
		}
	}
	return found
}

// freeColumns computes the column references in sub that cannot be resolved
// by sub's own FROM tables (i.e. correlated references to enclosing scopes).
// Keys are the rendered SQL of the reference.
func (c *execCtx) freeColumns(sub *ast.Query) map[string]bool {
	return freeOfWithCat(sub, c.eng)
}

func freeOf(sub *ast.Query, eng *Engine) map[string]bool { return freeOfWithCat(sub, eng) }

func freeOfWithCat(sub *ast.Query, eng *Engine) map[string]bool {
	refNames := make(map[string]bool)
	innerCols := make(map[string]bool)
	for i := range sub.From {
		f := &sub.From[i]
		refNames[f.RefName()] = true
		switch {
		case f.Sub != nil:
			for _, p := range f.Sub.Projections {
				name := p.Alias
				if name == "" {
					if cr, ok := p.Expr.(*ast.ColumnRef); ok {
						name = cr.Column
					}
				}
				if name != "" {
					innerCols[name] = true
				}
			}
		case eng != nil:
			if t, err := eng.Cat.Table(f.Name); err == nil {
				for _, col := range t.Schema.Cols {
					innerCols[col.Name] = true
				}
			}
		}
	}

	free := make(map[string]bool)
	checkCol := func(col *ast.ColumnRef) {
		if col.Column == "*" {
			return
		}
		if col.Table != "" {
			if !refNames[col.Table] {
				free[col.SQL()] = true
			}
			return
		}
		if !innerCols[col.Column] {
			free[col.SQL()] = true
		}
	}
	var visitExpr func(e ast.Expr)
	visitExpr = func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) {
			if col, ok := x.(*ast.ColumnRef); ok {
				checkCol(col)
			}
		})
		for _, s := range ast.Subqueries(e) {
			for f := range freeOfWithCat(s, eng) {
				// A free column of the nested subquery might still resolve
				// against *this* query's tables.
				parts := strings.SplitN(f, ".", 2)
				if len(parts) == 2 {
					if !refNames[parts[0]] {
						free[f] = true
					}
				} else if !innerCols[parts[0]] {
					free[f] = true
				}
			}
		}
	}
	for _, p := range sub.Projections {
		visitExpr(p.Expr)
	}
	if sub.Where != nil {
		visitExpr(sub.Where)
	}
	for _, g := range sub.GroupBy {
		visitExpr(g)
	}
	if sub.Having != nil {
		visitExpr(sub.Having)
	}
	for _, o := range sub.OrderBy {
		visitExpr(o.Expr)
	}
	return free
}
