package engine

import (
	"sync"

	"repro/internal/value"
)

// Sharded production of a single result stream. ExecuteStream has exactly
// one consumer, but nothing forces it to have one producer: a
// pipeline-eligible query's iterator chain evaluates rows [lo,hi)
// independently of every other range, so the stream's batches can be
// produced by Parallelism workers — each running its own chain over a
// contiguous row range — and emitted through one merger that drains the
// per-shard queues strictly in shard order. Concatenating shard outputs in
// shard order is the same contract Execute's sharded batch mode honors, so
// the merged stream carries exactly the rows, in exactly the order, the
// sequential one-puller stream emits.
//
// Shard ranges are aligned to batch-size multiples (shardStreamBounds), so
// every worker's scan batches coincide with the sequential scan's batch
// grid: for single-table chains the merged stream reproduces the
// sequential stream's batch *frames* too, not just its rows. (Streamed
// join probes may split an expansion at a shard seam, so only their rows —
// not their frame boundaries — are pinned.)
//
// Accounting is shard-merged, never racily added: each worker accumulates
// into its own shard context and attaches a cumulative Stats snapshot to
// every message; the merger folds the per-shard deltas into the stream's
// context as it receives them, and folds each worker's residual (work
// whose batches never shipped — trailing filtered-out scans, an abandoned
// stream's in-flight readahead) once the worker has provably exited. The
// consumer goroutine is therefore the only writer of the stream's Stats,
// mid-stream snapshots charge exactly the work whose output has been
// emitted (so TimeToFirstBatch stays batch-proportional at every
// parallelism level), and a drained stream's totals telescope to the
// sequential charges.
//
// A LIMIT bounds readahead two ways: each worker stops after producing
// `limit` output rows of its own range (a row past its shard's first
// `limit` can never be within the global first `limit`), and the consumer
// cancels all workers the moment the global countdown hits zero. With
// selective filters the scan work each worker performs before the cancel
// lands is inherently timing-dependent; only the emitted rows — and for a
// drained stream, the folded totals — are deterministic.

// shardStreamBuffer is the per-shard channel capacity: enough readahead to
// keep a worker busy while the merger drains an earlier shard, small
// enough that an abandoned or limited stream never buffers more than a few
// batches per worker.
const shardStreamBuffer = 2

// shardMsg is one producer→merger message: a batch (with dedup keys in
// distinct mode) plus the worker's cumulative stats at send time.
type shardMsg struct {
	rows [][]value.Value
	keys []string // distinct mode: rows[i]'s dedup key
	cum  Stats
	err  error
}

// shardStreamBounds splits n rows into at most `shards` contiguous ranges
// whose boundaries fall on multiples of the batch size, so each shard's
// scan batches land on the same grid a sequential scan uses (the final
// shard keeps the short tail batch).
func shardStreamBounds(n, shards, size int) [][2]int {
	if size <= 0 {
		size = DefaultBatchSize
	}
	nb := (n + size - 1) / size // scan batches on the sequential grid
	if shards > nb {
		shards = nb
	}
	out := make([][2]int, shards)
	blo := 0
	for i := 0; i < shards; i++ {
		bhi := blo + (nb-blo)/(shards-i)
		lo, hi := blo*size, bhi*size
		if hi > n {
			hi = n
		}
		out[i] = [2]int{lo, hi}
		blo = bhi
	}
	return out
}

// shardedStream is the multi-producer batchIterator: next() is the merger,
// close() the cancellation path. Producers start lazily on the first pull,
// so a stream that is closed (or LIMIT-0-satisfied) before anyone reads it
// never spawns a goroutine.
type shardedStream struct {
	c        *execCtx
	mkChain  func(sc *execCtx, lo, hi int) batchIterator
	bounds   [][2]int
	limit    int  // per-worker production cap (< 0 = unlimited)
	distinct bool // local pre-dedup in workers, global seen-set in merger

	started bool
	chans   []chan shardMsg
	scs     []*execCtx // worker contexts; stats readable once the worker exits
	folded  []Stats    // per-shard cumulative stats already folded into c
	settled []bool     // per-shard residual fold done
	done    chan struct{}
	wg      sync.WaitGroup
	stop    sync.Once

	cur  int
	seen map[string]bool // distinct mode: global first-occurrence filter
}

// newShardedStream builds the producer pool over the given (batch-aligned)
// bounds. mkChain must assemble an independent iterator chain over [lo,hi)
// evaluating on the given shard context.
func newShardedStream(c *execCtx, mkChain func(sc *execCtx, lo, hi int) batchIterator, bounds [][2]int, limit int, distinct bool) *shardedStream {
	return &shardedStream{
		c: c, mkChain: mkChain, bounds: bounds, limit: limit, distinct: distinct,
		done: make(chan struct{}),
	}
}

func (ss *shardedStream) start() {
	ss.chans = make([]chan shardMsg, len(ss.bounds))
	ss.scs = make([]*execCtx, len(ss.bounds))
	ss.folded = make([]Stats, len(ss.bounds))
	ss.settled = make([]bool, len(ss.bounds))
	if ss.distinct {
		ss.seen = make(map[string]bool)
	}
	for w := range ss.bounds {
		ch := make(chan shardMsg, shardStreamBuffer)
		sc := ss.c.shardCtx()
		ss.chans[w], ss.scs[w] = ch, sc
		ss.wg.Add(1)
		go ss.produce(w, sc, ch)
	}
}

// produce is one worker: it pulls its chain and pushes batches until the
// range is exhausted, its production cap is met, or the merger cancels.
func (ss *shardedStream) produce(w int, sc *execCtx, ch chan<- shardMsg) {
	defer ss.wg.Done()
	defer close(ch)
	it := ss.mkChain(sc, ss.bounds[w][0], ss.bounds[w][1])
	defer it.close()
	var localSeen map[string]bool
	if ss.distinct {
		localSeen = make(map[string]bool)
	}
	if ss.limit == 0 {
		return // LIMIT 0: nothing can ever be emitted
	}
	produced := 0
	for {
		select {
		case <-ss.done:
			return
		default:
		}
		b, err := it.next()
		if err != nil {
			select {
			case ch <- shardMsg{cum: *sc.stats, err: err}:
			case <-ss.done:
			}
			return
		}
		if b == nil {
			return
		}
		var keys []string
		if ss.distinct {
			// Local pre-dedup: within one shard only a key's first
			// occurrence can be globally first — later ones are duplicates
			// no matter what earlier shards hold, so they never cross the
			// channel. The survivors carry their rendered keys so the
			// merger's global pass is a map lookup, not a re-render.
			b, keys = dedupBatch(localSeen, b, nil)
			if len(b) == 0 {
				continue // charges ride the next message (or the residual fold)
			}
		}
		if ss.limit >= 0 {
			if rem := ss.limit - produced; len(b) > rem {
				b = b[:rem]
				if keys != nil {
					keys = keys[:rem]
				}
			}
		}
		select {
		case ch <- shardMsg{rows: b, keys: keys, cum: *sc.stats}:
			produced += len(b)
		case <-ss.done:
			return
		}
		if ss.limit >= 0 && produced >= ss.limit {
			return
		}
	}
}

// next merges: drain shard 0's queue to completion, then shard 1's, and so
// on — shard order is row order. Distinct mode filters each batch through
// the global seen-set; because shards are consumed strictly in order, the
// survivors are exactly the sequential scan's first occurrences.
func (ss *shardedStream) next() ([][]value.Value, error) {
	if !ss.started {
		ss.started = true
		ss.start()
	}
	for ss.cur < len(ss.chans) {
		msg, ok := <-ss.chans[ss.cur]
		if !ok {
			ss.settle(ss.cur)
			ss.cur++
			continue
		}
		ss.fold(ss.cur, msg.cum)
		if msg.err != nil {
			return nil, msg.err
		}
		rows := msg.rows
		if ss.distinct {
			rows, _ = dedupBatch(ss.seen, rows, msg.keys)
			if len(rows) == 0 {
				continue
			}
		}
		return rows, nil
	}
	return nil, nil
}

// fold accumulates the delta between a worker's cumulative snapshot and
// what has already been folded for that shard. Only the consumer goroutine
// calls it, so the stream's Stats have a single writer.
func (ss *shardedStream) fold(w int, cum Stats) {
	d := cum
	d.Sub(ss.folded[w])
	ss.folded[w] = cum
	ss.c.stats.Add(d)
}

// settle folds a worker's residual stats — work performed after its last
// message (trailing batches a filter emptied, readahead an abandoned
// stream never consumed). Safe only once the worker has exited: the
// channel close (or wg.Wait in close) happens-before this read.
func (ss *shardedStream) settle(w int) {
	if ss.settled[w] {
		return
	}
	ss.settled[w] = true
	ss.fold(w, *ss.scs[w].stats)
}

// close cancels in-flight producers, waits for every worker to exit, and
// folds their residual charges — an abandoned stream charges exactly the
// work its workers actually performed, and leaks nothing.
func (ss *shardedStream) close() {
	ss.stop.Do(func() {
		close(ss.done)
		if !ss.started {
			ss.started = true // never start a producer after close
			return
		}
		ss.wg.Wait()
		for w := range ss.scs {
			ss.settle(w)
		}
	})
}
