package engine

import (
	"repro/internal/ast"
	"repro/internal/value"
)

// Public streaming execution API. ExecuteStream is the pull counterpart of
// Execute: the same query semantics (projection, grouping, DISTINCT, ORDER
// BY, LIMIT — byte-identical rows), delivered as an incremental sequence of
// row batches instead of one materialized Result. It is the engine-side
// half of the streamed wire protocol: the server pulls batches from a
// ResultStream and frames each one onto the wire as it is produced, so for
// pipeline-eligible queries the first batch crosses the trust boundary
// while the scan is still running.
//
// Two delivery modes, chosen per query:
//
//   - Pipelined: a subquery-free, non-grouped query over base tables with
//     no ORDER BY or DISTINCT (the common RemoteSQL fetch shape) runs the
//     iterator chain of stream.go directly, one batch per Next call, with
//     LIMIT counting the stream down and closing the scan early. A
//     single-table query streams scan → filter → project; a multi-table
//     query streams the probe side of its joins (scan → filter → probe… →
//     residual → project) against build sides materialized before the
//     first batch. Beyond the build sides nothing is materialized;
//     time-to-first-batch is O(build + batch), not O(probe scan). The
//     chain is pulled sequentially — a stream has one consumer — so rows
//     match the materialized path exactly.
//   - Fallback: every other shape (grouped aggregation, ORDER BY, DISTINCT,
//     subqueries) executes through Execute — including its sharded
//     and batch-streamed internal paths — and the finished rows are emitted
//     in batch-size chunks. The first batch only becomes available once the
//     result exists, but the consumer still gets incremental delivery, and
//     emitted batches are released as they are consumed, so a large result
//     is dropped chunk-by-chunk as it ships instead of being retained
//     whole until the last byte is framed.
//
// A ResultStream is single-goroutine (one puller) and holds no goroutines
// itself: Close never leaks a worker, no matter how early the consumer
// abandons the stream.

// ResultStream is a pull-based streaming query result. The consumer calls
// Next until it returns nil (stream exhausted) and must call Close if it
// abandons the stream early.
type ResultStream struct {
	cols  []string
	ctx   *execCtx
	next  func() ([][]value.Value, error)
	close func()
	done  bool
}

// ExecuteStream starts q and returns its result as a batch stream. The
// column names are available immediately; batches arrive via Next. The
// batch size is Engine.BatchSize (DefaultBatchSize if unset), and the
// pipelined mode additionally requires BatchSize > 0 — with BatchSize 0
// every query takes the materialized fallback, chunked for delivery.
func (e *Engine) ExecuteStream(q *ast.Query, params map[string]value.Value) (*ResultStream, error) {
	ctx := &execCtx{
		eng: e, params: params, stats: &Stats{},
		subq:  make(map[*ast.Query]*subqPlan),
		par:   e.effectiveParallelism(),
		batch: e.BatchSize,
	}
	if s, ok := ctx.pipelinedStream(q); ok {
		return s, nil
	}
	// Fallback: run to completion through the full executor (sharded and
	// internally streamed as configured), then chunk the finished rows.
	res, err := e.Execute(q, params)
	if err != nil {
		return nil, err
	}
	*ctx.stats = res.Stats
	// RowsOut accumulates as batches are emitted (Next), mirroring the
	// pipelined path; reset the materialized total to avoid double count.
	ctx.stats.RowsOut = 0
	size := e.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	rows := res.Rows
	pos := 0
	return &ResultStream{
		cols: res.Cols,
		ctx:  ctx,
		next: func() ([][]value.Value, error) {
			if pos >= len(rows) {
				return nil, nil
			}
			end := pos + size
			if end > len(rows) {
				end = len(rows)
			}
			// Copy the row pointers out, then release the originals: once
			// the consumer has shipped a chunk, the stream must not pin it
			// (or the ciphertext blobs it references) until the end.
			b := make([][]value.Value, end-pos)
			copy(b, rows[pos:end])
			for i := pos; i < end; i++ {
				rows[i] = nil
			}
			pos = end
			return b, nil
		},
		close: func() {},
	}, nil
}

// pipelinedStream builds the incremental pipeline for q if it is
// pipeline-eligible — a subquery-free, non-grouped query over base tables
// with no ORDER BY or DISTINCT, either single-table (scan → filter →
// project) or multi-table (the streamed-probe join pipeline of
// stream.go's joinStream: scan → filter → probe… → residual → project,
// with every build side materialized up front) — ok=false means the
// caller must take the materialized fallback.
func (c *execCtx) pipelinedStream(q *ast.Query) (*ResultStream, bool) {
	if c.batch <= 0 || len(q.From) == 0 || streamBlocked(q) {
		return nil, false
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			return nil, false
		}
	}
	if c.isGrouped(q) || len(q.OrderBy) > 0 || q.Distinct {
		return nil, false
	}
	for i := range q.From {
		if _, err := c.eng.Cat.Table(q.From[i].Name); err != nil {
			// Let the fallback path report the unknown table consistently.
			return nil, false
		}
	}
	var it batchIterator
	if len(q.From) == 1 {
		t, _ := c.eng.Cat.Table(q.From[0].Name)
		cols := make([]colInfo, len(t.Schema.Cols))
		for i, col := range t.Schema.Cols {
			cols[i] = colInfo{table: q.From[0].RefName(), name: col.Name}
		}
		layout := &relation{cols: cols}
		it = c.streamPipeline(q, t, layout, aliasMap(q), nil, 0, len(t.Rows), true)
	} else {
		// The build sides materialize here, before the first Next: their
		// scan charges are part of time-to-first-batch, exactly as a real
		// hash join cannot probe before its builds finish. A planning or
		// build error falls back and surfaces identically from the
		// materialized executor.
		jit, _, err := c.joinStream(q, nil, true)
		if err != nil {
			return nil, false
		}
		it = jit
	}
	remaining := q.Limit // < 0 = unlimited
	var names []string
	for _, ci := range projectionCols(q) {
		names = append(names, ci.name)
	}
	s := &ResultStream{cols: names, ctx: c, close: it.close}
	s.next = func() ([][]value.Value, error) {
		if remaining == 0 {
			it.close()
			return nil, nil
		}
		b, err := it.next()
		if err != nil || b == nil {
			return nil, err
		}
		if remaining > 0 {
			if len(b) >= remaining {
				b = b[:remaining]
				remaining = 0
				it.close()
			} else {
				remaining -= len(b)
			}
		}
		return b, nil
	}
	return s, true
}

// Cols returns the result's column names (available before any batch).
func (s *ResultStream) Cols() []string { return s.cols }

// Next returns the next non-empty batch of rows, or nil when the stream is
// exhausted. Rows are delivered in exactly the order Execute would have
// returned them.
func (s *ResultStream) Next() ([][]value.Value, error) {
	if s.done {
		return nil, nil
	}
	b, err := s.next()
	if err != nil {
		s.done = true
		s.close()
		return nil, err
	}
	if b == nil {
		s.done = true
		return nil, nil
	}
	s.ctx.stats.RowsOut += int64(len(b))
	return b, nil
}

// Close releases the stream early (for example when the consumer has
// shipped enough rows). It is idempotent and safe after exhaustion.
func (s *ResultStream) Close() {
	if !s.done {
		s.done = true
		s.close()
	}
}

// Stats returns a snapshot of the execution statistics accumulated so far:
// scan charges grow batch by batch on the pipelined path, so a consumer
// can convert partial progress into simulated time mid-stream. After the
// stream is exhausted the snapshot equals the Stats a materialized Execute
// of the same query would report (modulo RowsOut counting only emitted
// rows).
func (s *ResultStream) Stats() Stats { return *s.ctx.stats }
