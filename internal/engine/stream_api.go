package engine

import (
	"repro/internal/ast"
	"repro/internal/value"
)

// Public streaming execution API. ExecuteStream is the pull counterpart of
// Execute: the same query semantics (projection, grouping, DISTINCT, ORDER
// BY, LIMIT — byte-identical rows), delivered as an incremental sequence of
// row batches instead of one materialized Result. It is the engine-side
// half of the streamed wire protocol: the server pulls batches from a
// ResultStream and frames each one onto the wire as it is produced, so for
// pipeline-eligible queries the first batch crosses the trust boundary
// while the scan is still running.
//
// Delivery modes, chosen per query shape (all subquery-free, over base
// tables, with a nil outer scope — the eligibility gate):
//
//   - Pipelined rows: a non-grouped query with no ORDER BY (the common
//     RemoteSQL fetch shape) runs the iterator chain of stream.go, one
//     batch per Next call, with LIMIT counting the stream down and closing
//     the scan early. A single-table query streams scan → filter →
//     project; a multi-table query streams the probe side of its joins
//     against build sides materialized before the first batch; DISTINCT
//     streams through a seen-set that emits first occurrences. When the
//     input is large enough, production shards: Parallelism workers each
//     run their own chain over a batch-aligned row range and a merger
//     emits the per-shard queues strictly in shard order (stream_shard.go)
//     — same rows, same order, one consumer, many producers.
//   - Grouped emission: a grouped query with no ORDER BY accumulates to
//     completion first (sharded, AggState.Merge in shard order), then
//     finalizes and emits completed groups in output batches (agg.go's
//     groupEmitter), fanning each batch's crypto-heavy Result work across
//     workers — so time-to-first-batch is accumulation + one batch of
//     finalization, not + all of it, and a LIMIT skips the unconsumed
//     groups' Paillier work entirely.
//   - Streamed top-N: ORDER BY … LIMIT runs the (sharded) bounded-heap
//     collection of stream.go on the first pull and emits the k winners in
//     batches; the full sort input never materializes, though the first
//     batch still requires the whole scan (a sort cannot emit early).
//   - Fallback: every other shape (full ORDER BY sorts, subqueries,
//     derived tables) executes through Execute — including its sharded and
//     batch-streamed internal paths — and the finished rows are emitted in
//     batch-size chunks, released as they are consumed.
//
// A ResultStream has exactly one consumer; its Close cancels any producer
// workers, waits for them to exit, and folds the stats of the work they
// actually performed — no goroutine outlives the stream, no matter how
// early the consumer abandons it.

// ResultStream is a pull-based streaming query result. The consumer calls
// Next until it returns nil (stream exhausted) and must call Close if it
// abandons the stream early.
type ResultStream struct {
	cols  []string
	ctx   *execCtx
	next  func() ([][]value.Value, error)
	close func()
	done  bool
}

// ExecuteStream starts q and returns its result as a batch stream. The
// column names are available immediately; batches arrive via Next. The
// batch size is Engine.BatchSize (DefaultBatchSize if unset), and the
// pipelined mode additionally requires BatchSize > 0 — with BatchSize 0
// every query takes the materialized fallback, chunked for delivery.
func (e *Engine) ExecuteStream(q *ast.Query, params map[string]value.Value) (*ResultStream, error) {
	ctx := &execCtx{
		eng: e, params: params, stats: &Stats{},
		subq:   make(map[*ast.Query]*subqPlan),
		par:    e.effectiveParallelism(),
		batch:  e.BatchSize,
		useIdx: e.UseIndexes,
	}
	if s, ok := ctx.pipelinedStream(q); ok {
		return s, nil
	}
	// Fallback: run to completion through the full executor (sharded and
	// internally streamed as configured), then chunk the finished rows.
	res, err := e.Execute(q, params)
	if err != nil {
		return nil, err
	}
	*ctx.stats = res.Stats
	// RowsOut accumulates as batches are emitted (Next), mirroring the
	// pipelined path; reset the materialized total to avoid double count.
	ctx.stats.RowsOut = 0
	size := e.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	// sliceIterator releases each chunk's row pointers as it is emitted:
	// once the consumer has shipped a chunk, the stream must not pin it
	// (or the ciphertext blobs it references) until the end.
	si := &sliceIterator{rows: res.Rows, size: size}
	return &ResultStream{cols: res.Cols, ctx: ctx, next: si.next, close: si.close}, nil
}

// pipelinedStream dispatches q to its incremental delivery mode (see the
// package comment above): pipelined rows, grouped emission, or streamed
// top-N. ok=false means the caller must take the materialized fallback.
func (c *execCtx) pipelinedStream(q *ast.Query) (*ResultStream, bool) {
	if c.batch <= 0 || len(q.From) == 0 || streamBlocked(q) {
		return nil, false
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			return nil, false
		}
	}
	for i := range q.From {
		if _, err := c.eng.Cat.Table(q.From[i].Name); err != nil {
			// Let the fallback path report the unknown table consistently.
			return nil, false
		}
	}
	grouped := c.isGrouped(q)
	if len(q.OrderBy) > 0 {
		// Full sorts fall back; ORDER BY … LIMIT over one table streams as
		// top-N (the grouped and DISTINCT variants still need the
		// materialized sort over their finished output).
		if grouped || q.Distinct || q.Limit < 0 || len(q.From) != 1 {
			return nil, false
		}
		return c.topNStream(q), true
	}
	if grouped {
		return c.groupedStream(q), true
	}
	return c.rowStream(q)
}

// newLimitedStream wraps a pipeline iterator in the public ResultStream,
// applying the LIMIT countdown: the producer is closed — cancelling any
// sharded workers — the moment enough rows have been emitted.
func (c *execCtx) newLimitedStream(q *ast.Query, it batchIterator) *ResultStream {
	remaining := q.Limit // < 0 = unlimited
	var names []string
	for _, ci := range projectionCols(q) {
		names = append(names, ci.name)
	}
	s := &ResultStream{cols: names, ctx: c, close: it.close}
	s.next = func() ([][]value.Value, error) {
		if remaining == 0 {
			it.close()
			return nil, nil
		}
		b, err := it.next()
		if err != nil || b == nil {
			return nil, err
		}
		if remaining > 0 {
			if len(b) >= remaining {
				b = b[:remaining]
				remaining = 0
				it.close()
			} else {
				remaining -= len(b)
			}
		}
		return b, nil
	}
	return s
}

// rowStream builds the non-grouped pipelined producer: scan → filter →
// [probe… → residual →] project [→ distinct], sharded across Parallelism
// workers through the shard-order merger when the input is large enough.
// For a multi-table q the build sides materialize here, before the first
// Next: their scan charges are part of time-to-first-batch, exactly as a
// real hash join cannot probe before its builds finish. A planning or
// build error falls back and surfaces identically from the materialized
// executor.
func (c *execCtx) rowStream(q *ast.Query) (*ResultStream, bool) {
	var n int
	var mkChain func(sc *execCtx, lo, hi int) batchIterator
	if len(q.From) == 1 {
		t, _ := c.eng.Cat.Table(q.From[0].Name)
		layout := tableLayout(t, q.From[0].RefName())
		aliases := aliasMap(q)
		src := c.indexSource(q, t, q.From[0].RefName())
		n = src.n()
		mkChain = func(sc *execCtx, lo, hi int) batchIterator {
			return sc.streamPipeline(q, src, layout, aliases, nil, lo, hi, true)
		}
	} else {
		jp, err := c.prepareJoinStream(q, nil)
		if err != nil {
			return nil, false
		}
		n = jp.t0.NumRows()
		mkChain = func(sc *execCtx, lo, hi int) batchIterator {
			return jp.chain(sc, nil, lo, hi, true)
		}
	}
	var it batchIterator
	if shards := c.shardCount(n); shards > 1 {
		it = newShardedStream(c, mkChain, shardStreamBounds(n, shards, c.batch), q.Limit, q.Distinct)
	} else {
		it = mkChain(c, 0, n)
		if q.Distinct {
			it = &distinctIterator{in: it}
		}
	}
	return c.newLimitedStream(q, it), true
}

// groupedStream builds the grouped-emission producer: the (sharded)
// accumulation runs on the first pull, then the completed groups finalize
// and emit in batches. DISTINCT over grouped output dedups the emitted
// batches in-stream.
func (c *execCtx) groupedStream(q *ast.Query) *ResultStream {
	var it batchIterator = &lazyIterator{mk: func() (batchIterator, error) {
		return c.accumulateGroupedStream(q)
	}}
	if q.Distinct {
		it = &distinctIterator{in: it}
	}
	return c.newLimitedStream(q, it)
}

// accumulateGroupedStream runs grouped accumulation for q — the sharded
// scan→filter[→probe…] stream folding into per-shard groupSets merged in
// shard order — and returns the batch emitter over the finished groups.
func (c *execCtx) accumulateGroupedStream(q *ast.Query) (batchIterator, error) {
	specs := c.collectAggSpecs(q)
	var groups *groupSet
	var layout *relation
	var err error
	if len(q.From) == 1 {
		t, _ := c.eng.Cat.Table(q.From[0].Name)
		layout = tableLayout(t, q.From[0].RefName())
		src := c.indexSource(q, t, q.From[0].RefName())
		groups, err = c.streamGroups(specs, src.n(), func(sc *execCtx, gs *groupSet, lo, hi int) error {
			return sc.accumulateStream(q, specs, gs, layout, nil, lo, hi, src)
		})
	} else {
		var jp *joinStreamPlan
		jp, err = c.prepareJoinStream(q, nil)
		if err != nil {
			return nil, err
		}
		layout = jp.joined
		groups, err = c.streamGroups(specs, jp.t0.NumRows(), func(sc *execCtx, gs *groupSet, lo, hi int) error {
			return sc.accumulateJoinStream(q, specs, gs, jp, nil, lo, hi)
		})
	}
	if err != nil {
		return nil, err
	}
	return c.newGroupEmitter(q, specs, groups, layout, nil)
}

// topNStream builds the ORDER BY … LIMIT producer: the sharded bounded-
// heap collection of streamTopN runs on the first pull and the k winners
// emit in batches.
func (c *execCtx) topNStream(q *ast.Query) *ResultStream {
	t, _ := c.eng.Cat.Table(q.From[0].Name)
	layout := tableLayout(t, q.From[0].RefName())
	src := c.indexSource(q, t, q.From[0].RefName())
	size := c.batch
	if size <= 0 {
		size = DefaultBatchSize
	}
	it := &lazyIterator{mk: func() (batchIterator, error) {
		rel, err := c.streamTopN(q, src, layout, nil)
		if err != nil {
			return nil, err
		}
		return &sliceIterator{rows: rel.rows, size: size}, nil
	}}
	return c.newLimitedStream(q, it)
}

// Cols returns the result's column names (available before any batch).
func (s *ResultStream) Cols() []string { return s.cols }

// Next returns the next non-empty batch of rows, or nil when the stream is
// exhausted. Rows are delivered in exactly the order Execute would have
// returned them.
func (s *ResultStream) Next() ([][]value.Value, error) {
	if s.done {
		return nil, nil
	}
	b, err := s.next()
	if err != nil {
		s.done = true
		s.close()
		return nil, err
	}
	if b == nil {
		s.done = true
		return nil, nil
	}
	s.ctx.stats.RowsOut += int64(len(b))
	return b, nil
}

// Close releases the stream early (for example when the consumer has
// shipped enough rows). It is idempotent and safe after exhaustion.
func (s *ResultStream) Close() {
	if !s.done {
		s.done = true
		s.close()
	}
}

// Stats returns a snapshot of the execution statistics accumulated so far:
// scan charges grow batch by batch on the pipelined path, so a consumer
// can convert partial progress into simulated time mid-stream. After the
// stream is exhausted the snapshot equals the Stats a materialized Execute
// of the same query would report (modulo RowsOut counting only emitted
// rows).
func (s *ResultStream) Stats() Stats { return *s.ctx.stats }
