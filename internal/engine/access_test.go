package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// accessFixture builds ev(e_id, e_cat, e_val, e_opt) with seeded random
// rows — including NULLs in the indexed columns — plus a dimension table
// dim(d_cat, d_w) for join-build coverage, and indexes: a hash index on
// e_cat and d_cat (equality/IN/join), an ordered index on e_val (ranges,
// ORDER BY). 600 rows is enough for sharding and multi-batch streaming.
func accessFixture(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cat := storage.NewCatalog()
	ev, err := cat.Create(storage.Schema{
		Name: "ev",
		Cols: []storage.Column{
			{Name: "e_id", Type: storage.TInt},
			{Name: "e_cat", Type: storage.TStr},
			{Name: "e_val", Type: storage.TInt},
			{Name: "e_opt", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"ale", "bock", "cider", "dubbel"}
	for i := 0; i < 600; i++ {
		c := value.NewStr(cats[rng.Intn(len(cats))])
		v := value.NewInt(rng.Int63n(1000))
		if rng.Intn(20) == 0 {
			c = value.Value{} // NULL key: indexed predicates must skip it
		}
		if rng.Intn(20) == 0 {
			v = value.Value{}
		}
		ev.MustInsert([]value.Value{value.NewInt(int64(i)), c, v, value.NewInt(rng.Int63n(7))})
	}
	if _, err := ev.EnsureIndex("e_cat", storage.HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.EnsureIndex("e_val", storage.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	dim, err := cat.Create(storage.Schema{
		Name: "dim",
		Cols: []storage.Column{
			{Name: "d_cat", Type: storage.TStr},
			{Name: "d_w", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range append(cats, "stray") {
		dim.MustInsert([]value.Value{value.NewStr(c), value.NewInt(int64(i))})
		if i%2 == 0 { // duplicate build keys
			dim.MustInsert([]value.Value{value.NewStr(c), value.NewInt(int64(i + 10))})
		}
	}
	dim.MustInsert([]value.Value{{}, value.NewInt(99)}) // NULL build key
	if _, err := dim.EnsureIndex("d_cat", storage.HashIndex); err != nil {
		t.Fatal(err)
	}
	return New(cat)
}

// renderResult canonicalizes a result verbatim: rows, order, and encodings
// all participate in the comparison.
func renderAccess(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Cols, ","))
	for _, row := range res.Rows {
		b.WriteByte('\n')
		for j, v := range row {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.HashKey())
		}
	}
	return b.String()
}

// accessShapes are the query shapes the index paths can serve (plus shapes
// that must fall back), each run with and without indexes.
var accessShapes = []string{
	// DET hash probes
	`SELECT e_id, e_val FROM ev WHERE e_cat = 'ale'`,
	`SELECT COUNT(*) FROM ev WHERE e_cat = 'bock' AND e_val > 500`,
	`SELECT e_id FROM ev WHERE e_cat IN ('ale', 'cider') AND e_opt < 3`,
	`SELECT e_id FROM ev WHERE 'dubbel' = e_cat`,
	// OPE range probes
	`SELECT e_id FROM ev WHERE e_val < 40`,
	`SELECT e_id, e_cat FROM ev WHERE e_val BETWEEN 100 AND 160`,
	`SELECT COUNT(*), SUM(e_val) FROM ev WHERE e_val >= 960`,
	`SELECT e_id FROM ev WHERE 120 >= e_val AND e_opt = 2`,
	// NULL-bound predicates match nothing, with or without indexes
	`SELECT e_id FROM ev WHERE e_cat = NULL`,
	`SELECT e_id FROM ev WHERE e_val < NULL`,
	// unselective: the cost rule must keep the scan
	`SELECT e_id FROM ev WHERE e_val >= 0`,
	`SELECT COUNT(*) FROM ev WHERE e_val <= 999`,
	// grouped and DISTINCT over an index-restricted source
	`SELECT e_cat, COUNT(*), SUM(e_val) FROM ev WHERE e_val < 300 GROUP BY e_cat ORDER BY e_cat`,
	`SELECT DISTINCT e_opt FROM ev WHERE e_cat = 'ale'`,
	// ordered emission and top-N
	`SELECT e_id, e_val FROM ev ORDER BY e_val`,
	`SELECT e_id, e_val FROM ev ORDER BY e_val DESC`,
	`SELECT e_id, e_val FROM ev WHERE e_cat = 'cider' ORDER BY e_val, e_id LIMIT 9`,
	// join: build side served from dim's hash index
	`SELECT e_id, d_w FROM ev, dim WHERE e_cat = d_cat AND e_val < 150`,
	`SELECT d_cat, COUNT(*) FROM ev, dim WHERE e_cat = d_cat GROUP BY d_cat ORDER BY d_cat`,
	// multi-conjunct intersection: several sargable conjuncts restrict one scan
	`SELECT e_id, e_val FROM ev WHERE e_cat = 'ale' AND e_val < 200`,
	`SELECT COUNT(*), SUM(e_val) FROM ev WHERE e_cat = 'cider' AND e_val BETWEEN 100 AND 300 AND e_val <= 220`,
	`SELECT e_id FROM ev WHERE e_cat = 'ale' AND e_cat = 'bock'`,
}

// TestAccessPathEquivalence pins every shape's result across UseIndexes ×
// Parallelism × BatchSize against the index-off sequential materialized
// baseline — the engine-level version of the byte-identity contract.
func TestAccessPathEquivalence(t *testing.T) {
	e := accessFixture(t)
	base := make(map[string]string)
	e.UseIndexes = false
	e.Parallelism = 1
	e.BatchSize = 0
	for _, sql := range accessShapes {
		base[sql] = renderAccess(run(t, e, sql, nil))
	}
	for _, idx := range []bool{false, true} {
		e.UseIndexes = idx
		for _, par := range []int{1, 4} {
			e.Parallelism = par
			for _, bs := range []int{0, 32} {
				e.BatchSize = bs
				for _, sql := range accessShapes {
					got := renderAccess(run(t, e, sql, nil))
					if got != base[sql] {
						t.Errorf("idx=%v p=%d bs=%d %s diverges:\n%s\nvs\n%s", idx, par, bs, sql, got, base[sql])
					}
				}
			}
		}
	}
	if lookups, _ := e.IndexStats(); lookups == 0 {
		t.Fatal("no index probe was ever taken")
	}
}

// TestAccessPathStreaming pins the streaming API the same way: every shape
// consumed through ExecuteStream with indexes on must equal the
// materialized index-off result, across parallelism and batch size.
func TestAccessPathStreaming(t *testing.T) {
	e := accessFixture(t)
	e.UseIndexes = false
	e.Parallelism = 1
	e.BatchSize = 0
	base := make(map[string]string)
	for _, sql := range accessShapes {
		base[sql] = renderAccess(run(t, e, sql, nil))
	}
	e.UseIndexes = true
	for _, par := range []int{1, 4} {
		e.Parallelism = par
		for _, bs := range []int{16, 128} {
			e.BatchSize = bs
			for _, sql := range accessShapes {
				q, err := sqlparser.Parse(sql)
				if err != nil {
					t.Fatal(err)
				}
				s, err := e.ExecuteStream(q, nil)
				if err != nil {
					t.Fatalf("p=%d bs=%d %s: %v", par, bs, sql, err)
				}
				res := &Result{Cols: s.Cols()}
				for {
					b, err := s.Next()
					if err != nil {
						t.Fatalf("p=%d bs=%d %s: %v", par, bs, sql, err)
					}
					if b == nil {
						break
					}
					res.Rows = append(res.Rows, b...)
				}
				if got := renderAccess(res); got != base[sql] {
					t.Errorf("p=%d bs=%d stream %s diverges:\n%s\nvs\n%s", par, bs, sql, got, base[sql])
				}
			}
		}
	}
}

// TestIndexCharging checks the cost model's visible side: a selective probe
// charges index lookups, skips most of the scan, and reads proportionally
// fewer bytes; an unselective range keeps the full scan and charges nothing.
func TestIndexCharging(t *testing.T) {
	e := accessFixture(t)
	e.UseIndexes = true
	full := run(t, e, `SELECT COUNT(*) FROM ev WHERE e_val >= 0`, nil)
	if full.Stats.IndexLookups != 0 || full.Stats.RowsSkippedByIndex != 0 {
		t.Errorf("unselective range used the index: %+v", full.Stats)
	}
	if full.Stats.RowsScanned != 600 {
		t.Errorf("full scan read %d rows, want 600", full.Stats.RowsScanned)
	}
	sel := run(t, e, `SELECT e_id FROM ev WHERE e_cat = 'ale'`, nil)
	if sel.Stats.IndexLookups != 1 {
		t.Errorf("IndexLookups = %d, want 1", sel.Stats.IndexLookups)
	}
	k := sel.Stats.RowsScanned
	if k == 0 || k >= 600 {
		t.Fatalf("index scan read %d rows", k)
	}
	if sel.Stats.RowsSkippedByIndex != 600-k {
		t.Errorf("RowsSkippedByIndex = %d, want %d", sel.Stats.RowsSkippedByIndex, 600-k)
	}
	if sel.Stats.BytesScanned >= full.Stats.BytesScanned {
		t.Errorf("index scan charged %d bytes, full scan %d", sel.Stats.BytesScanned, full.Stats.BytesScanned)
	}
	lookups, skipped := e.IndexStats()
	if lookups != 1 || skipped != 600-k {
		t.Errorf("cumulative counters = (%d, %d), want (1, %d)", lookups, skipped, 600-k)
	}
}

// TestAccessHintScan checks the planner's negative hint: AccessScan
// suppresses index resolution even for a selective probe. An AccessIndex
// hint stays advisory — the engine still takes the index only when its own
// cost rule agrees.
func TestAccessHintScan(t *testing.T) {
	e := accessFixture(t)
	e.UseIndexes = true
	q, err := sqlparser.Parse(`SELECT e_id FROM ev WHERE e_cat = 'ale'`)
	if err != nil {
		t.Fatal(err)
	}
	q.Hint = &ast.AccessHint{Path: ast.AccessScan}
	res, err := e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexLookups != 0 || res.Stats.RowsScanned != 600 {
		t.Errorf("AccessScan hint did not suppress the index: %+v", res.Stats)
	}
	q.Hint = &ast.AccessHint{Path: ast.AccessIndex, Column: "e_cat"}
	res, err = e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexLookups != 1 {
		t.Errorf("AccessIndex hint: %+v", res.Stats)
	}
}

// TestAccessParams checks parameter-bound sargable predicates: the probe
// value arrives at execution time, and a NaN parameter disables the index
// without changing results.
func TestAccessParams(t *testing.T) {
	e := accessFixture(t)
	params := map[string]value.Value{"c": value.NewStr("bock"), "v": value.NewInt(200)}
	e.UseIndexes = false
	want := renderAccess(run(t, e, `SELECT e_id FROM ev WHERE e_cat = :c AND e_val < :v`, params))
	e.UseIndexes = true
	res := run(t, e, `SELECT e_id FROM ev WHERE e_cat = :c AND e_val < :v`, params)
	if got := renderAccess(res); got != want {
		t.Errorf("param probe diverges:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.IndexLookups == 0 {
		t.Error("param-bound predicate did not probe the index")
	}
	nan := map[string]value.Value{"v": value.NewFloat(fmtNaN())}
	r2 := run(t, e, `SELECT COUNT(*) FROM ev WHERE e_val < :v`, nan)
	if r2.Stats.IndexLookups != 0 {
		t.Errorf("NaN constant must not probe the index: %+v", r2.Stats)
	}
}

func fmtNaN() float64 {
	var f float64
	return f / f * 0 // NaN via 0/0; avoids importing math just for this
}

// TestOrderedEmissionStability pins ordered emission against the sort:
// ascending (NULLs first) and descending (NULLs last) with duplicate keys,
// where row id must break ties exactly like the stable sort.
func TestOrderedEmissionStability(t *testing.T) {
	e := accessFixture(t)
	e.UseIndexes = false
	wantAsc := renderAccess(run(t, e, `SELECT e_id, e_val FROM ev ORDER BY e_val`, nil))
	wantDesc := renderAccess(run(t, e, `SELECT e_id, e_val FROM ev ORDER BY e_val DESC`, nil))
	e.UseIndexes = true
	asc := run(t, e, `SELECT e_id, e_val FROM ev ORDER BY e_val`, nil)
	if got := renderAccess(asc); got != wantAsc {
		t.Errorf("ordered emission asc diverges")
	}
	if asc.Stats.IndexLookups != 1 {
		t.Errorf("asc emission did not use the ordered index: %+v", asc.Stats)
	}
	if got := renderAccess(run(t, e, `SELECT e_id, e_val FROM ev ORDER BY e_val DESC`, nil)); got != wantDesc {
		t.Errorf("ordered emission desc diverges")
	}
}

// TestAccessMultiConjunctIntersection pins the multi-conjunct index path:
// every sargable conjunct contributes its ascending id list, the lists are
// intersected before the residual filter, and the charged stats reflect one
// probe per conjunct plus the rows the intersection avoided fetching.
func TestAccessMultiConjunctIntersection(t *testing.T) {
	e := accessFixture(t)
	sql := `SELECT e_id, e_val FROM ev WHERE e_cat = 'ale' AND e_val < 200`
	e.UseIndexes = false
	want := renderAccess(run(t, e, sql, nil))
	e.UseIndexes = true
	res := run(t, e, sql, nil)
	if got := renderAccess(res); got != want {
		t.Errorf("intersection path diverges:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.IndexLookups != 2 {
		t.Errorf("IndexLookups = %d, want 2 (one per sargable conjunct)", res.Stats.IndexLookups)
	}
	// The intersection fetches strictly fewer rows than either conjunct's
	// list alone (124 'ale' postings, 116 in the range, 26 in both).
	eq := run(t, e, `SELECT e_id FROM ev WHERE e_cat = 'ale'`, nil).Stats.RowsScanned
	rng := run(t, e, `SELECT e_id FROM ev WHERE e_val < 200`, nil).Stats.RowsScanned
	if res.Stats.RowsScanned == 0 || res.Stats.RowsScanned >= eq || res.Stats.RowsScanned >= rng {
		t.Errorf("intersection scanned %d rows; single conjuncts scanned %d and %d", res.Stats.RowsScanned, eq, rng)
	}
	if res.Stats.RowsSkippedByIndex != 600-res.Stats.RowsScanned {
		t.Errorf("RowsSkippedByIndex = %d with %d rows scanned", res.Stats.RowsSkippedByIndex, res.Stats.RowsScanned)
	}

	// A conjunct too unselective to win the cost rule ALONE ('cider' has
	// 159 postings, 159*4 >= 600) still participates: the rule judges the
	// final intersection, not each list.
	sql3 := `SELECT e_id FROM ev WHERE e_cat = 'cider' AND e_val BETWEEN 100 AND 300 AND e_val <= 220`
	e.UseIndexes = false
	want3 := renderAccess(run(t, e, sql3, nil))
	e.UseIndexes = true
	r3 := run(t, e, sql3, nil)
	if got := renderAccess(r3); got != want3 {
		t.Errorf("three-conjunct intersection diverges:\n%s\nvs\n%s", got, want3)
	}
	if r3.Stats.IndexLookups != 3 {
		t.Errorf("IndexLookups = %d, want 3", r3.Stats.IndexLookups)
	}
	if r3.Stats.RowsScanned >= 159 {
		t.Errorf("three-conjunct intersection scanned %d rows, want fewer than the 'cider' postings", r3.Stats.RowsScanned)
	}

	// Contradictory equalities intersect to the empty list: the index path
	// answers without fetching a single row.
	rc := run(t, e, `SELECT e_id FROM ev WHERE e_cat = 'ale' AND e_cat = 'bock'`, nil)
	if len(rc.Rows) != 0 || rc.Stats.RowsScanned != 0 {
		t.Errorf("contradiction fetched rows: %+v", rc.Stats)
	}
	if rc.Stats.IndexLookups != 2 || rc.Stats.RowsSkippedByIndex != 600 {
		t.Errorf("contradiction stats = %+v, want 2 lookups and 600 skipped", rc.Stats)
	}
}

// TestAccessIndexedINParams pins index-served IN over bound parameters —
// the shape the plan cache produces when it hoists repeated literal IN
// lists into :cpN params — one hash probe per non-NULL element, results
// identical to the index-off scan.
func TestAccessIndexedINParams(t *testing.T) {
	e := accessFixture(t)
	sql := `SELECT e_id, e_opt FROM ev WHERE e_cat IN (:a, :b)`
	params := map[string]value.Value{"a": value.NewStr("ale"), "b": value.NewStr("stray")}
	e.UseIndexes = false
	want := renderAccess(run(t, e, sql, params))
	e.UseIndexes = true
	res := run(t, e, sql, params)
	if got := renderAccess(res); got != want {
		t.Errorf("IN over params diverges:\n%s\nvs\n%s", got, want)
	}
	if res.Stats.IndexLookups != 2 {
		t.Errorf("IndexLookups = %d, want 2 (one per IN element)", res.Stats.IndexLookups)
	}
	if res.Stats.RowsScanned == 0 || res.Stats.RowsScanned >= 600 {
		t.Errorf("IN over params scanned %d rows", res.Stats.RowsScanned)
	}

	// Mixed literal and parameter elements probe the same way, and a second
	// sargable conjunct intersects on top of the IN union.
	mixed := `SELECT e_id FROM ev WHERE e_cat IN ('ale', :b) AND e_val < 200`
	e.UseIndexes = false
	wantMixed := renderAccess(run(t, e, mixed, params))
	e.UseIndexes = true
	rm := run(t, e, mixed, params)
	if got := renderAccess(rm); got != wantMixed {
		t.Errorf("mixed IN diverges:\n%s\nvs\n%s", got, wantMixed)
	}
	if rm.Stats.IndexLookups != 3 {
		t.Errorf("IndexLookups = %d, want 3 (two IN elements + one range)", rm.Stats.IndexLookups)
	}

	// A NULL-bound element matches nothing and is skipped without a probe;
	// the remaining element still serves the query.
	pn := map[string]value.Value{"a": value.NewStr("ale"), "b": value.NewNull()}
	e.UseIndexes = false
	wantNull := renderAccess(run(t, e, sql, pn))
	e.UseIndexes = true
	rn := run(t, e, sql, pn)
	if got := renderAccess(rn); got != wantNull {
		t.Errorf("NULL-element IN diverges:\n%s\nvs\n%s", got, wantNull)
	}
	if rn.Stats.IndexLookups != 1 {
		t.Errorf("IndexLookups = %d, want 1 (NULL element costs no probe)", rn.Stats.IndexLookups)
	}
}
