package engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sqlparser"
	"repro/internal/value"
)

// Sharded single-stream production: ExecuteStream's batches may be
// produced by Parallelism workers feeding the shard-order merger, but the
// stream a consumer sees must be indistinguishable from the sequential
// puller — same rows, same order, and for single-table pipelines the same
// batch frames. Close must cancel and join every producer; Stats must be
// shard-merged exactly once; LIMIT must bound worker readahead.

// shardStreamQueries covers every pipelined producer shape: plain and
// filtered scans, expression projection, streaming DISTINCT (with and
// without LIMIT), grouped emission (builtin, UDF, HAVING, implicit single
// group, LIMIT), the streamed join probe, and streamed top-N.
var shardStreamQueries = []string{
	`SELECT f_id, f_val FROM facts`,
	`SELECT f_id FROM facts WHERE f_val > 500`,
	`SELECT f_id, f_val * 2 + 1 FROM facts WHERE f_val < 900`,
	`SELECT f_id FROM facts WHERE f_val > 500 LIMIT 100`,
	`SELECT f_id FROM facts LIMIT 0`,
	`SELECT DISTINCT f_tag FROM facts`,
	`SELECT DISTINCT f_tag, f_dim FROM facts WHERE f_val > 200`,
	`SELECT DISTINCT f_tag FROM facts LIMIT 2`,
	`SELECT f_dim, SUM(f_val), COUNT(*) FROM facts GROUP BY f_dim`,
	`SELECT f_dim, my_sum(f_val) FROM facts GROUP BY f_dim`,
	`SELECT f_dim, SUM(f_val) s FROM facts GROUP BY f_dim HAVING s > 3000`,
	`SELECT f_dim, COUNT(*) FROM facts GROUP BY f_dim LIMIT 10`,
	`SELECT SUM(f_val), COUNT(*) FROM facts WHERE f_val > 100000`,
	`SELECT d_name, f_id FROM facts, dims WHERE f_dim = d_id AND f_val > 400`,
	`SELECT d_name, SUM(f_val) FROM facts, dims WHERE f_dim = d_id GROUP BY d_name`,
	`SELECT f_id, f_val FROM facts WHERE f_val < 900 ORDER BY f_val DESC, f_id LIMIT 37`,
}

// drainFrames collects a stream's batches without merging them, so frame
// boundaries are observable.
func drainFrames(t testing.TB, s *ResultStream) [][][]value.Value {
	t.Helper()
	var frames [][][]value.Value
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return frames
		}
		frames = append(frames, b)
	}
}

func renderFrames(frames [][][]value.Value, withBounds bool) string {
	var b []byte
	for _, f := range frames {
		if withBounds {
			b = append(b, fmt.Sprintf("-- %d\n", len(f))...)
		}
		for _, row := range f {
			for j, v := range row {
				if j > 0 {
					b = append(b, '|')
				}
				b = append(b, v.String()...)
			}
			b = append(b, '\n')
		}
	}
	return string(b)
}

// TestShardedStreamMatchesSequentialPuller is the tentpole identity test:
// across every producer shape, the stream at p>1 must emit exactly the
// rows (and, for single-table pipelines, exactly the batch frames — shard
// bounds are batch-aligned) that the sequential one-puller stream emits.
func TestShardedStreamMatchesSequentialPuller(t *testing.T) {
	e := parallelFixture(t, 2000)
	registerMySum(e)
	for _, sql := range shardStreamQueries {
		q := sqlparser.MustParse(sql)
		multiTable := len(q.From) > 1
		for _, bs := range []int{7, 64} {
			e.Parallelism, e.BatchSize = 1, bs
			s, err := e.ExecuteStream(q, nil)
			if err != nil {
				t.Fatalf("bs=%d p=1 %s: %v", bs, sql, err)
			}
			seq := drainFrames(t, s)
			seqStats := s.Stats()
			for _, p := range []int{2, 4, 8} {
				e.Parallelism = p
				s, err := e.ExecuteStream(q, nil)
				if err != nil {
					t.Fatalf("bs=%d p=%d %s: %v", bs, p, sql, err)
				}
				got := drainFrames(t, s)
				// Join probes may split an expansion at a shard seam, so
				// only rows are pinned there; single-table pipelines must
				// reproduce the frame boundaries too.
				if g, w := renderFrames(got, !multiTable), renderFrames(seq, !multiTable); g != w {
					t.Errorf("bs=%d p=%d %s diverges from sequential puller\ngot:\n%s\nwant:\n%s", bs, p, sql, g, w)
				}
				if q.Limit < 0 {
					// Drained without a limit, the shard-merged charges must
					// telescope to exactly the sequential stream's.
					if st := s.Stats(); st != seqStats {
						t.Errorf("bs=%d p=%d %s: drained stats %+v != sequential %+v", bs, p, sql, st, seqStats)
					}
				}
			}
		}
	}
}

// TestShardedStreamStatsNoDoubleCount extends the PR 2 no-double-count
// regression to the multi-producer stream: a drained sharded stream must
// charge each row and byte exactly once — identical totals at every
// parallelism level, including the batch count (shard bounds sit on the
// sequential batch grid).
func TestShardedStreamStatsNoDoubleCount(t *testing.T) {
	const rows = 2000
	e := parallelFixture(t, rows)
	tbl, err := e.Cat.Table("facts")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`SELECT f_id, f_val FROM facts`,
		`SELECT f_id FROM facts WHERE f_val > 500`,
		`SELECT DISTINCT f_tag FROM facts`,
		`SELECT f_dim, SUM(f_val) FROM facts GROUP BY f_dim`,
	} {
		q := sqlparser.MustParse(sql)
		for _, p := range []int{1, 4} {
			e.Parallelism, e.BatchSize = p, 64
			s, err := e.ExecuteStream(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			frames := drainFrames(t, s)
			st := s.Stats()
			if st.RowsScanned != rows || st.BytesScanned != tbl.Bytes {
				t.Errorf("p=%d %s: scan charges %d rows / %d bytes, want exactly %d / %d",
					p, sql, st.RowsScanned, st.BytesScanned, rows, tbl.Bytes)
			}
			if st.RowsStreamed != rows {
				t.Errorf("p=%d %s: RowsStreamed = %d, want %d", p, sql, st.RowsStreamed, rows)
			}
			if want := int64((rows + 63) / 64); st.BatchesStreamed != want {
				t.Errorf("p=%d %s: BatchesStreamed = %d, want %d", p, sql, st.BatchesStreamed, want)
			}
			emitted := 0
			for _, f := range frames {
				emitted += len(f)
			}
			if st.RowsOut != int64(emitted) {
				t.Errorf("p=%d %s: RowsOut = %d, emitted %d", p, sql, st.RowsOut, emitted)
			}
		}
	}
}

// TestShardedStreamCloseNoLeak abandons sharded streams mid-flight at p=4
// (the regression the merger's cancellation path must survive): Close must
// cancel the in-flight producers, join them, and fold the stats of the
// work they actually performed — repeatedly, without growing the
// process's goroutine count.
func TestShardedStreamCloseNoLeak(t *testing.T) {
	const rows = 8000
	e := parallelFixture(t, rows)
	e.Parallelism, e.BatchSize = 4, 32
	queries := []string{
		`SELECT f_id FROM facts WHERE f_val >= 0`,
		`SELECT DISTINCT f_tag, f_dim FROM facts`,
		`SELECT d_name, f_id FROM facts, dims WHERE f_dim = d_id`,
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		for _, sql := range queries {
			s, err := e.ExecuteStream(sqlparser.MustParse(sql), nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Next(); err != nil {
				t.Fatal(err)
			}
			s.Close()
			st := s.Stats()
			if st.RowsScanned == 0 {
				t.Fatal("abandoned stream folded no charges for the work performed")
			}
			if st.RowsScanned >= rows+100 {
				t.Fatalf("abandoned stream scanned everything (%d rows): workers not canceled", st.RowsScanned)
			}
			// Next after Close stays nil without error.
			if b, err := s.Next(); b != nil || err != nil {
				t.Fatalf("post-Close Next = (%v, %v)", b, err)
			}
		}
	}
	var after int
	for i := 0; i < 20; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: sharded streams leak producers", before, after)
	}
}

// TestShardedStreamLimit pins the LIMIT contract across sharded producers:
// exact rows (limit mid-batch, limit on a batch boundary, limit past the
// result, LIMIT 0), and bounded readahead — no worker may scan past the
// batches needed for its own `limit` output rows.
func TestShardedStreamLimit(t *testing.T) {
	const rows = 8000
	e := parallelFixture(t, rows)
	for _, tc := range []struct {
		limit, wantRows int
	}{
		{0, 0},
		{70, 70},   // straddles a batch boundary
		{64, 64},   // exactly one batch
		{128, 128}, // exactly two batches
		{9000, rows},
	} {
		sql := fmt.Sprintf(`SELECT f_id FROM facts LIMIT %d`, tc.limit)
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 4, 64
		s, err := e.ExecuteStream(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames := drainFrames(t, s)
		s.Close()
		n := 0
		for _, f := range frames {
			for _, row := range f {
				if row[0].AsInt() != int64(n) {
					t.Fatalf("%s: row %d = %v (order broken)", sql, n, row[0])
				}
				n++
			}
		}
		if n != tc.wantRows {
			t.Errorf("%s delivered %d rows", sql, n)
		}
		st := s.Stats()
		if tc.limit == 0 {
			if st.RowsScanned != 0 {
				t.Errorf("LIMIT 0 scanned %d rows", st.RowsScanned)
			}
			continue
		}
		// Each worker needs at most ceil(limit/bs) scan batches before its
		// production cap stops it; the cancel signal can only shrink that.
		maxScan := int64(4 * ((tc.limit + 63) / 64) * 64)
		if maxScan > rows {
			maxScan = rows
		}
		if st.RowsScanned > maxScan {
			t.Errorf("%s: scanned %d rows, readahead bound is %d", sql, st.RowsScanned, maxScan)
		}
	}
}

// countingUDF counts Result invocations through a shared atomic, proving
// which groups were actually finalized.
type countingUDF struct {
	sum     int64
	results *int64
}

func (u *countingUDF) Add(args []value.Value) error { u.sum += args[0].AsInt(); return nil }
func (u *countingUDF) Merge(o AggState) error       { u.sum += o.(*countingUDF).sum; return nil }
func (u *countingUDF) Result() (value.Value, error) {
	atomic.AddInt64(u.results, 1)
	return value.NewInt(u.sum), nil
}

// TestGroupedStreamLazyFinalization pins grouped emission's defining
// property: groups finalize one output batch at a time, so after the first
// batch only ~batch-size Result calls have happened, and a LIMIT leaves
// the cut-off groups' (in production: Paillier) finalization unperformed.
func TestGroupedStreamLazyFinalization(t *testing.T) {
	e := parallelFixture(t, 3000) // ~100 distinct f_dim groups
	var results int64
	e.RegisterAgg("counted_sum", func(st *Stats) AggState { return &countingUDF{results: &results} })
	q := sqlparser.MustParse(`SELECT f_dim, counted_sum(f_val) FROM facts GROUP BY f_dim`)
	e.Parallelism, e.BatchSize = 4, 8

	s, err := e.ExecuteStream(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Next()
	if err != nil || len(b) != 8 {
		t.Fatalf("first grouped batch: %d rows, err %v", len(b), err)
	}
	if n := atomic.LoadInt64(&results); n != 8 {
		t.Fatalf("first batch finalized %d groups, want 8 (lazy emission)", n)
	}
	rest := drainFrames(t, s)
	total := 8
	for _, f := range rest {
		total += len(f)
	}
	if n := atomic.LoadInt64(&results); n != int64(total) {
		t.Errorf("drained stream finalized %d groups for %d rows", n, total)
	}

	atomic.StoreInt64(&results, 0)
	lq := sqlparser.MustParse(`SELECT f_dim, counted_sum(f_val) FROM facts GROUP BY f_dim LIMIT 10`)
	s, err = e.ExecuteStream(lq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if frames := drainFrames(t, s); len(frames) == 0 {
		t.Fatal("LIMIT 10 grouped stream emitted nothing")
	}
	if n := atomic.LoadInt64(&results); n >= 100 || n < 10 {
		t.Errorf("LIMIT 10 finalized %d groups, want ≥10 and far fewer than all (~100)", n)
	}
}

// TestShardedStreamError: a worker's error must surface to the consumer
// with the sequential path's message, and the stream must still join every
// producer (raced in CI).
func TestShardedStreamError(t *testing.T) {
	e := parallelFixture(t, 2000)
	e.RegisterScalar("explode", func(st *Stats, args []value.Value) (value.Value, error) {
		if args[0].AsInt() == 1777 {
			return value.Value{}, fmt.Errorf("engine: explode(1777)")
		}
		return args[0], nil
	})
	q := sqlparser.MustParse(`SELECT explode(f_id) FROM facts`)
	e.BatchSize = 16
	e.Parallelism = 1
	s, err := e.ExecuteStream(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var seqErr error
	for {
		b, err := s.Next()
		if err != nil {
			seqErr = err
			break
		}
		if b == nil {
			break
		}
	}
	if seqErr == nil {
		t.Fatal("sequential stream did not error")
	}
	e.Parallelism = 4
	s, err = e.ExecuteStream(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for {
		b, err := s.Next()
		if err != nil {
			if err.Error() != seqErr.Error() {
				t.Fatalf("sharded error %q, sequential %q", err, seqErr)
			}
			return
		}
		if b == nil {
			t.Fatal("sharded stream swallowed the error")
		}
	}
}
