package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Sharded-execution equivalence: every query shape must produce results
// byte-identical to the sequential path at every parallelism level, and
// concurrent use of one engine must be race-free (run with -race).

// parallelFixture builds facts(f_id, f_dim, f_val, f_tag) with rows rows
// and dims(d_id, d_name) with 100 rows, seeded pseudo-random.
func parallelFixture(t testing.TB, rows int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cat := storage.NewCatalog()
	facts, err := cat.Create(storage.Schema{
		Name: "facts",
		Cols: []storage.Column{
			{Name: "f_id", Type: storage.TInt},
			{Name: "f_dim", Type: storage.TInt},
			{Name: "f_val", Type: storage.TInt},
			{Name: "f_tag", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dims, err := cat.Create(storage.Schema{
		Name: "dims",
		Cols: []storage.Column{
			{Name: "d_id", Type: storage.TInt},
			{Name: "d_name", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tags := []string{"red", "green", "blue", "cyan"}
	for i := 0; i < rows; i++ {
		facts.MustInsert([]value.Value{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(100)),
			value.NewInt(rng.Int63n(1000)),
			value.NewStr(tags[rng.Intn(len(tags))]),
		})
	}
	for i := 0; i < 100; i++ {
		dims.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("dim-%02d", i))})
	}
	return New(cat)
}

// equivalenceQueries covers each sharded loop: filter, hash-join probe,
// projection with ORDER BY, grouped aggregation (builtin, DISTINCT, UDF,
// star, empty input), HAVING, and the subquery fallback path.
var equivalenceQueries = []string{
	`SELECT f_id FROM facts WHERE f_val > 500`,
	`SELECT f_id, f_val * 2 + 1 FROM facts WHERE f_val < 900 ORDER BY f_val DESC, f_id LIMIT 37`,
	`SELECT DISTINCT f_tag FROM facts ORDER BY f_tag`,
	`SELECT f_dim, SUM(f_val), COUNT(*), AVG(f_val), MIN(f_val), MAX(f_val)
	   FROM facts GROUP BY f_dim ORDER BY f_dim`,
	`SELECT COUNT(DISTINCT f_val), SUM(DISTINCT f_val) FROM facts`,
	`SELECT f_tag, COUNT(DISTINCT f_dim) FROM facts GROUP BY f_tag ORDER BY f_tag`,
	`SELECT SUM(f_val), COUNT(*) FROM facts WHERE f_id < 700`,
	`SELECT SUM(f_val) FROM facts WHERE f_val > 100000`,
	`SELECT f_dim, SUM(f_val) s FROM facts GROUP BY f_dim HAVING s > 3000 ORDER BY s DESC, f_dim`,
	`SELECT d_name, SUM(f_val), my_sum(f_val) FROM facts, dims
	   WHERE f_dim = d_id AND f_val > 250 GROUP BY d_name ORDER BY d_name`,
	`SELECT COUNT(*) FROM facts, dims WHERE f_dim = d_id AND f_val + d_id < 400`,
	`SELECT COUNT(*) FROM dims WHERE EXISTS (
	   SELECT 1 FROM facts WHERE f_dim = d_id AND f_val > 900)`,
	`SELECT f_dim FROM facts WHERE f_val = (SELECT MAX(f_val) FROM facts)`,
}

func registerMySum(e *Engine) {
	e.RegisterAgg("my_sum", func(st *Stats) AggState { return &sumUDF{} })
}

func renderResult(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for j, v := range row {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestParallelMatchesSequential(t *testing.T) {
	e := parallelFixture(t, 2000)
	registerMySum(e)
	for _, sql := range equivalenceQueries {
		q := sqlparser.MustParse(sql)
		e.Parallelism = 1
		seqRes, seqErr := e.Execute(q, nil)
		for _, p := range []int{2, 3, 8, 64} {
			e.Parallelism = p
			res, err := e.Execute(q, nil)
			if (err == nil) != (seqErr == nil) {
				t.Fatalf("p=%d err=%v, sequential err=%v\n%s", p, err, seqErr, sql)
			}
			if err != nil {
				continue
			}
			if got, want := renderResult(t, res), renderResult(t, seqRes); got != want {
				t.Errorf("p=%d diverges on %s\ngot:\n%s\nwant:\n%s", p, sql, got, want)
			}
			// Stats that drive the cost model must not depend on sharding.
			if res.Stats.BytesScanned != seqRes.Stats.BytesScanned ||
				res.Stats.RowsScanned != seqRes.Stats.RowsScanned ||
				res.Stats.RowsOut != seqRes.Stats.RowsOut {
				t.Errorf("p=%d stats diverge on %s: %+v vs %+v", p, sql, res.Stats, seqRes.Stats)
			}
		}
	}
}

// TestParallelErrorMatchesSequential checks that an evaluation error deep in
// a later shard surfaces identically to the sequential scan.
func TestParallelErrorMatchesSequential(t *testing.T) {
	e := parallelFixture(t, 500)
	// The failing aggregate only sees rows past the filter, which all land
	// in late shards; the error must still surface exactly once.
	q := sqlparser.MustParse(`SELECT f_dim, my_bad(f_val) FROM facts WHERE f_id >= 400 GROUP BY f_dim`)
	e.RegisterAgg("my_bad", func(st *Stats) AggState { return &badUDF{} })
	e.Parallelism = 1
	_, seqErr := e.Execute(q, nil)
	if seqErr == nil {
		t.Fatal("expected sequential error")
	}
	e.Parallelism = 4
	_, parErr := e.Execute(q, nil)
	if parErr == nil || parErr.Error() != seqErr.Error() {
		t.Fatalf("parallel err %v, sequential err %v", parErr, seqErr)
	}
}

type badUDF struct{}

func (b *badUDF) Add(args []value.Value) error { return fmt.Errorf("engine: my_bad always fails") }
func (b *badUDF) Merge(other AggState) error   { return nil }
func (b *badUDF) Result() (value.Value, error) { return value.NewNull(), nil }

// TestBuiltinAggMerge exercises shard-partial merging directly, including
// DISTINCT replay and empty partials.
func TestBuiltinAggMerge(t *testing.T) {
	mk := func(fn ast.AggFunc, distinct bool, vals ...int64) *builtinAggState {
		s := &builtinAggState{fn: fn, distinct: distinct}
		for _, v := range vals {
			s.add(value.NewInt(v))
		}
		return s
	}
	cases := []struct {
		name string
		a, b *builtinAggState
		want string
	}{
		{"sum", mk(ast.AggSum, false, 1, 2), mk(ast.AggSum, false, 3), "6"},
		{"sum-empty-right", mk(ast.AggSum, false, 5), mk(ast.AggSum, false), "5"},
		{"sum-empty-left", mk(ast.AggSum, false), mk(ast.AggSum, false, 7), "7"},
		{"sum-both-empty", mk(ast.AggSum, false), mk(ast.AggSum, false), "NULL"},
		{"count", mk(ast.AggCount, false, 1, 1), mk(ast.AggCount, false, 1), "3"},
		{"avg", mk(ast.AggAvg, false, 1, 2), mk(ast.AggAvg, false, 6), "3"},
		{"min", mk(ast.AggMin, false, 5, 9), mk(ast.AggMin, false, 3), "3"},
		{"max", mk(ast.AggMax, false, 5), mk(ast.AggMax, false, 2, 4), "5"},
		{"min-empty-right", mk(ast.AggMin, false, 5), mk(ast.AggMin, false), "5"},
		{"sum-distinct", mk(ast.AggSum, true, 1, 2, 2), mk(ast.AggSum, true, 2, 3), "6"},
		{"count-distinct", mk(ast.AggCount, true, 1, 2), mk(ast.AggCount, true, 2, 3, 3), "3"},
	}
	for _, tc := range cases {
		tc.a.merge(tc.b)
		if got := tc.a.result().String(); got != tc.want {
			t.Errorf("%s: merged result = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestConcurrentExecutes runs many goroutines against one engine, each
// executing sharded queries, and checks every result against the expected
// sequential output. Run with -race to surface data races in the sharded
// paths.
func TestConcurrentExecutes(t *testing.T) {
	e := parallelFixture(t, 1200)
	registerMySum(e)
	queries := make([]*ast.Query, len(equivalenceQueries))
	want := make([]string, len(equivalenceQueries))
	e.Parallelism = 1
	for i, sql := range equivalenceQueries {
		queries[i] = sqlparser.MustParse(sql)
		res, err := e.Execute(queries[i], nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		want[i] = renderResult(t, res)
	}
	e.Parallelism = 4

	const workers = 8
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				for i, q := range queries {
					res, err := e.Execute(q, nil)
					if err != nil {
						errs <- fmt.Errorf("%s: %v", equivalenceQueries[i], err)
						return
					}
					if got := renderResult(t, res); got != want[i] {
						errs <- fmt.Errorf("%s: diverged under concurrency", equivalenceQueries[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {100, 7}, {64, 2}, {5, 5}, {0, 1}} {
		b := shardBounds(tc.n, tc.shards)
		if len(b) != tc.shards {
			t.Fatalf("shardBounds(%d,%d) has %d shards", tc.n, tc.shards, len(b))
		}
		prev := 0
		for _, r := range b {
			if r[0] != prev || r[1] < r[0] {
				t.Fatalf("shardBounds(%d,%d) = %v not contiguous", tc.n, tc.shards, b)
			}
			prev = r[1]
		}
		if prev != tc.n {
			t.Fatalf("shardBounds(%d,%d) = %v does not cover n", tc.n, tc.shards, b)
		}
	}
}
