package engine

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// aggSpec is one distinct aggregate to compute per group: either a builtin
// AggExpr or an aggregate-UDF FuncCall. Keyed by rendered SQL.
type aggSpec struct {
	key string
	agg *ast.AggExpr  // builtin; nil for UDFs
	udf *ast.FuncCall // aggregate UDF call; nil for builtins
}

// collectAggSpecs finds every distinct aggregate mentioned in the
// projections, HAVING, and ORDER BY of a grouped query.
func (c *execCtx) collectAggSpecs(q *ast.Query) []aggSpec {
	seen := make(map[string]bool)
	var specs []aggSpec
	visit := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) {
			switch n := x.(type) {
			case *ast.AggExpr:
				k := n.SQL()
				if !seen[k] {
					seen[k] = true
					specs = append(specs, aggSpec{key: k, agg: n})
				}
			case *ast.FuncCall:
				if c.eng.IsAggUDF(n.Name) {
					k := n.SQL()
					if !seen[k] {
						seen[k] = true
						specs = append(specs, aggSpec{key: k, udf: n})
					}
				}
			}
		})
	}
	for _, p := range q.Projections {
		visit(p.Expr)
	}
	if q.Having != nil {
		visit(q.Having)
	}
	for _, o := range q.OrderBy {
		visit(o.Expr)
	}
	return specs
}

// builtinAggState accumulates one builtin aggregate. DISTINCT states keep
// the deduplicated values in first-occurrence row order so shard partials
// can replay unseen values during merge deterministically: shard partials
// merge in shard order, so the replay order equals the first-occurrence
// order of a sequential scan.
type builtinAggState struct {
	fn           ast.AggFunc
	distinct     bool
	seen         map[string]bool
	distinctVals []value.Value // seen values in first-occurrence order
	count        int64
	sumI         int64
	sumF         float64
	isFloat      bool
	hasVal       bool
	minMax       value.Value
}

func (s *builtinAggState) add(v value.Value) {
	if v.IsNull() {
		return
	}
	if s.distinct {
		if s.seen == nil {
			s.seen = make(map[string]bool)
		}
		k := v.HashKey()
		if s.seen[k] {
			return
		}
		s.seen[k] = true
		s.distinctVals = append(s.distinctVals, v)
	}
	s.accumulate(v)
}

// accumulate folds one (already dedup'd) value into the running state.
func (s *builtinAggState) accumulate(v value.Value) {
	s.count++
	switch s.fn {
	case ast.AggSum, ast.AggAvg:
		if v.K == value.Float {
			s.isFloat = true
		}
		s.sumI += v.AsInt()
		s.sumF += v.AsFloat()
	case ast.AggMin:
		if !s.hasVal || value.Compare(v, s.minMax) < 0 {
			s.minMax = v
		}
	case ast.AggMax:
		if !s.hasVal || value.Compare(v, s.minMax) > 0 {
			s.minMax = v
		}
	}
	s.hasVal = true
}

// merge folds a shard partial (same aggregate over a disjoint, later row
// range) into s. DISTINCT partials replay only values s has not seen, in
// the partial's first-occurrence order.
func (s *builtinAggState) merge(o *builtinAggState) {
	if s.distinct {
		if s.seen == nil {
			s.seen = make(map[string]bool)
		}
		for _, v := range o.distinctVals {
			k := v.HashKey()
			if s.seen[k] {
				continue
			}
			s.seen[k] = true
			s.distinctVals = append(s.distinctVals, v)
			s.accumulate(v)
		}
		return
	}
	s.count += o.count
	s.sumI += o.sumI
	s.sumF += o.sumF
	if o.isFloat {
		s.isFloat = true
	}
	if o.hasVal {
		switch s.fn {
		case ast.AggMin:
			if !s.hasVal || value.Compare(o.minMax, s.minMax) < 0 {
				s.minMax = o.minMax
			}
		case ast.AggMax:
			if !s.hasVal || value.Compare(o.minMax, s.minMax) > 0 {
				s.minMax = o.minMax
			}
		}
		s.hasVal = true
	}
}

func (s *builtinAggState) result() value.Value {
	switch s.fn {
	case ast.AggCount:
		return value.NewInt(s.count)
	case ast.AggSum:
		if !s.hasVal {
			return value.NewNull()
		}
		if s.isFloat {
			return value.NewFloat(s.sumF)
		}
		return value.NewInt(s.sumI)
	case ast.AggAvg:
		if s.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(s.sumF / float64(s.count))
	case ast.AggMin, ast.AggMax:
		if !s.hasVal {
			return value.NewNull()
		}
		return s.minMax
	}
	return value.NewNull()
}

// aggGroup holds one group's accumulation state: one slot per aggSpec,
// exactly one of builtins[i]/udfs[i] non-nil.
type aggGroup struct {
	firstRow []value.Value
	builtins []*builtinAggState
	udfs     []AggState
}

// newAggGroup creates fresh states for one group. UDF states capture c's
// stats, so they must be created on the context that will call Result.
func (c *execCtx) newAggGroup(specs []aggSpec, row []value.Value) (*aggGroup, error) {
	g := &aggGroup{firstRow: row}
	for _, sp := range specs {
		if sp.agg != nil {
			g.builtins = append(g.builtins, &builtinAggState{fn: sp.agg.Func, distinct: sp.agg.Distinct})
			g.udfs = append(g.udfs, nil)
			continue
		}
		f, ok := c.eng.aggs[strings.ToLower(sp.udf.Name)]
		if !ok {
			return nil, fmt.Errorf("engine: unregistered aggregate UDF %s", sp.udf.Name)
		}
		g.builtins = append(g.builtins, nil)
		g.udfs = append(g.udfs, f(c.stats))
	}
	return g, nil
}

// merge folds another group's partial states (same specs, disjoint rows,
// later shard) into g.
func (g *aggGroup) merge(o *aggGroup) error {
	for i := range g.builtins {
		if g.builtins[i] != nil {
			g.builtins[i].merge(o.builtins[i])
			continue
		}
		if err := g.udfs[i].Merge(o.udfs[i]); err != nil {
			return err
		}
	}
	return nil
}

// groupSet is an insertion-ordered collection of groups.
type groupSet struct {
	m     map[string]*aggGroup
	order []string // group keys in order of first appearance
}

// newGroupSet creates an empty groupSet.
func newGroupSet() *groupSet { return &groupSet{m: make(map[string]*aggGroup)} }

// accumulateGroups folds rows [lo,hi) of in into a fresh groupSet,
// evaluating GROUP BY keys and aggregate arguments on c.
func (c *execCtx) accumulateGroups(q *ast.Query, specs []aggSpec, in *relation, outer *env, lo, hi int) (*groupSet, error) {
	gs := newGroupSet()
	if err := c.accumulateRows(q, specs, gs, in, in.rows[lo:hi], outer); err != nil {
		return nil, err
	}
	return gs, nil
}

// accumulateRows folds one slice of rows into gs. rel supplies only the
// column layout for name resolution — the rows themselves arrive in the
// slice, which lets the streaming path feed batches whose relation is
// never materialized (rel.rows stays nil there).
func (c *execCtx) accumulateRows(q *ast.Query, specs []aggSpec, gs *groupSet, rel *relation, rows [][]value.Value, outer *env) error {
	for _, row := range rows {
		en := &env{rel: rel, row: row, outer: outer, ctx: c}
		var kb strings.Builder
		for _, g := range q.GroupBy {
			v, err := eval(en, g)
			if err != nil {
				return err
			}
			kb.WriteString(v.HashKey())
			kb.WriteByte(0)
		}
		key := kb.String()
		grp, ok := gs.m[key]
		if !ok {
			var err error
			grp, err = c.newAggGroup(specs, row)
			if err != nil {
				return err
			}
			gs.m[key] = grp
			gs.order = append(gs.order, key)
		}
		for i, sp := range specs {
			switch {
			case sp.agg != nil:
				if sp.agg.Star {
					grp.builtins[i].count++
					grp.builtins[i].hasVal = true
					continue
				}
				v, err := eval(en, sp.agg.Arg)
				if err != nil {
					return err
				}
				grp.builtins[i].add(v)
			default:
				args := make([]value.Value, len(sp.udf.Args))
				for j, a := range sp.udf.Args {
					v, err := eval(en, a)
					if err != nil {
						return err
					}
					args[j] = v
				}
				if err := grp.udfs[i].Add(args); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// groupingExprs gathers the expressions the accumulation loop evaluates per
// row: GROUP BY keys and aggregate arguments.
func groupingExprs(q *ast.Query, specs []aggSpec) []ast.Expr {
	out := append([]ast.Expr(nil), q.GroupBy...)
	for _, sp := range specs {
		if sp.agg != nil {
			if !sp.agg.Star {
				out = append(out, sp.agg.Arg)
			}
			continue
		}
		out = append(out, sp.udf.Args...)
	}
	return out
}

// buildGroups accumulates in's rows into groups, sharding across workers
// when the context allows. Shard partials merge in shard order into fresh
// states created on c, so order-sensitive UDF states observe their inputs
// in the original row order and capture c's stats for Result.
func (c *execCtx) buildGroups(q *ast.Query, specs []aggSpec, in *relation, outer *env) (*groupSet, error) {
	shards := c.shardCount(len(in.rows))
	if shards <= 1 || !parallelSafe(outer, groupingExprs(q, specs)...) {
		return c.accumulateGroups(q, specs, in, outer, 0, len(in.rows))
	}
	parts, err := shardedCollect(c, shards, len(in.rows), func(sc *execCtx, lo, hi int) (*groupSet, error) {
		return sc.accumulateGroups(q, specs, in, outer, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	return c.mergeGroupParts(specs, parts)
}

// mergeGroupParts folds per-shard groupSets — in shard order, so group
// first-appearance order and order-sensitive aggregate states match a
// sequential scan — into fresh states created on c (whose stats the UDF
// states must capture for Result).
func (c *execCtx) mergeGroupParts(specs []aggSpec, parts []*groupSet) (*groupSet, error) {
	merged := newGroupSet()
	for _, part := range parts {
		for _, key := range part.order {
			grp, ok := merged.m[key]
			if !ok {
				var err error
				grp, err = c.newAggGroup(specs, part.m[key].firstRow)
				if err != nil {
					return nil, err
				}
				merged.m[key] = grp
				merged.order = append(merged.order, key)
			}
			if err := grp.merge(part.m[key]); err != nil {
				return nil, err
			}
		}
	}
	return merged, nil
}

// specsHaveUDF reports whether any aggregate is a UDF — the only states
// whose Result can be expensive enough (Paillier products and modular
// exponentiations on the server) to be worth fanning across workers.
func specsHaveUDF(specs []aggSpec) bool {
	for _, sp := range specs {
		if sp.udf != nil {
			return true
		}
	}
	return false
}

// resolveAggResults finalizes the aggregates of groups [lo,hi) in
// first-appearance order — one AggState.Result per (group, spec) —
// fanning contiguous group sub-ranges across the context's workers when
// UDF aggregates are present. The AggState contract requires Result to
// tolerate concurrent invocation across distinct states (the server's
// Paillier UDF accumulates its stats atomically for exactly this). Errors
// surface in group order, matching the sequential loop. Streamed grouped
// emission calls this one output batch of groups at a time, so the
// Paillier work both fans across workers and is never performed for
// groups a LIMIT cuts off.
func (c *execCtx) resolveAggResults(specs []aggSpec, groups *groupSet, lo, hi int) ([]map[string]value.Value, error) {
	n := hi - lo
	out := make([]map[string]value.Value, n)
	resolve := func(gi int) error {
		grp := groups.m[groups.order[lo+gi]]
		vals := make(map[string]value.Value, len(specs))
		for i, sp := range specs {
			if sp.agg != nil {
				vals[sp.key] = grp.builtins[i].result()
				continue
			}
			v, err := grp.udfs[i].Result()
			if err != nil {
				return err
			}
			vals[sp.key] = v
		}
		out[gi] = vals
		return nil
	}
	workers := c.par
	if workers > n {
		workers = n
	}
	if workers <= 1 || !specsHaveUDF(specs) {
		for gi := 0; gi < n; gi++ {
			if err := resolve(gi); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	bounds := shardBounds(n, workers)
	if err := parallelDo(workers, func(s int) error {
		for gi := bounds[s][0]; gi < bounds[s][1]; gi++ {
			if err := resolve(gi); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ensureGroup guarantees the single implicit group of an aggregate query
// without GROUP BY: even over zero input rows it produces exactly one row
// (COUNT(*) = 0, SUM = NULL).
func (c *execCtx) ensureGroup(q *ast.Query, specs []aggSpec, groups *groupSet) error {
	if len(q.GroupBy) > 0 || len(groups.order) > 0 {
		return nil
	}
	grp, err := c.newAggGroup(specs, nil)
	if err != nil {
		return err
	}
	groups.m[""] = grp
	groups.order = append(groups.order, "")
	return nil
}

// groupEnv builds the evaluation environment for one finalized group:
// the group's retained first row for GROUP BY column references, its
// resolved aggregate values, and the SELECT-list aliases.
func groupEnv(c *execCtx, in *relation, grp *aggGroup, aggVals map[string]value.Value, aliases map[string]ast.Expr, outer *env) *env {
	en := &env{rel: in, row: grp.firstRow, outer: outer, aggs: aggVals, aliases: aliases, ctx: c}
	if grp.firstRow == nil {
		en.rel = nil
	}
	return en
}

// finalizeGroup turns one resolved group into its output row on en —
// HAVING filter then projection; keep=false means HAVING dropped the
// group. Shared by the materialized finisher and the streamed emitter so
// the two grouped paths cannot diverge.
func finalizeGroup(en *env, q *ast.Query) ([]value.Value, bool, error) {
	if q.Having != nil {
		ok, err := evalBool(en, q.Having)
		if err != nil || !ok {
			return nil, false, err
		}
	}
	vals, err := projectRow(en, q)
	if err != nil {
		return nil, false, err
	}
	return vals, true, nil
}

// execGrouped handles the aggregation path: GROUP BY (possibly empty =
// single group), aggregate computation, HAVING, projection, ORDER BY.
func (c *execCtx) execGrouped(q *ast.Query, in *relation, outer *env) (*relation, error) {
	specs := c.collectAggSpecs(q)
	groups, err := c.buildGroups(q, specs, in, outer)
	if err != nil {
		return nil, err
	}
	return c.finishGrouped(q, specs, groups, in, outer)
}

// finishGrouped turns accumulated groups into output rows: aggregate
// finalization, HAVING, projection, ORDER BY. in supplies the column
// layout for name resolution; its rows are never touched (each group's
// environment row is the group's retained firstRow), so the streaming path
// passes a relation with nil rows.
func (c *execCtx) finishGrouped(q *ast.Query, specs []aggSpec, groups *groupSet, in *relation, outer *env) (*relation, error) {
	aliases := aliasMap(q)

	if err := c.ensureGroup(q, specs, groups); err != nil {
		return nil, err
	}

	// Finalize all groups' aggregates first — in parallel across groups
	// when UDF aggregates make it worthwhile (the per-group Paillier work
	// the ROADMAP flags); HAVING/projection below stay sequential, where
	// subqueries and outer references remain legal.
	resolved, err := c.resolveAggResults(specs, groups, 0, len(groups.order))
	if err != nil {
		return nil, err
	}

	outCols := projectionCols(q)
	outRows := make([]keyedRow, 0, len(groups.order))
	for gi, key := range groups.order {
		grp := groups.m[key]
		aggVals := resolved[gi]
		en := groupEnv(c, in, grp, aggVals, aliases, outer)
		vals, keep, err := finalizeGroup(en, q)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		k := keyedRow{row: vals}
		if len(q.OrderBy) > 0 {
			k.keys = make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				v, err := eval(en, o.Expr)
				if err != nil {
					return nil, err
				}
				k.keys[i] = v
			}
		}
		outRows = append(outRows, k)
	}
	sortKeyed(outRows, q.OrderBy)
	rows := make([][]value.Value, len(outRows))
	for i, k := range outRows {
		rows[i] = k.row
	}
	return &relation{cols: outCols, rows: rows}, nil
}

// groupEmitter streams grouped emission: once accumulation has completed,
// the finished groups finalize and emit in output batches instead of all
// at once — each next() call resolves one batch worth of groups
// (resolveAggResults fans their Paillier Result work across workers),
// applies HAVING, and projects the survivors. The materialized grouped
// result never exists, TimeToFirstBatch for a grouped stream is
// O(accumulation + one batch of finalization) rather than O(accumulation
// + all finalization), and a LIMIT that stops pulling leaves the
// remaining groups' (expensive, crypto-heavy) finalization unperformed.
// Emission requires no ORDER BY: group first-appearance order is the
// contract, exactly as the materialized path emits without a sort.
type groupEmitter struct {
	c       *execCtx
	q       *ast.Query
	specs   []aggSpec
	groups  *groupSet
	in      *relation // column layout for GROUP BY references; rows nil
	outer   *env
	aliases map[string]ast.Expr
	size    int
	pos     int
	closed  bool
}

// newGroupEmitter prepares batch emission over the accumulated groups.
func (c *execCtx) newGroupEmitter(q *ast.Query, specs []aggSpec, groups *groupSet, in *relation, outer *env) (*groupEmitter, error) {
	if err := c.ensureGroup(q, specs, groups); err != nil {
		return nil, err
	}
	size := c.batch
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &groupEmitter{
		c: c, q: q, specs: specs, groups: groups, in: in, outer: outer,
		aliases: aliasMap(q), size: size,
	}, nil
}

func (g *groupEmitter) next() ([][]value.Value, error) {
	for !g.closed && g.pos < len(g.groups.order) {
		lo := g.pos
		hi := lo + g.size
		if hi > len(g.groups.order) {
			hi = len(g.groups.order)
		}
		g.pos = hi
		resolved, err := g.c.resolveAggResults(g.specs, g.groups, lo, hi)
		if err != nil {
			return nil, err
		}
		out := make([][]value.Value, 0, hi-lo)
		for gi := lo; gi < hi; gi++ {
			grp := g.groups.m[g.groups.order[gi]]
			en := groupEnv(g.c, g.in, grp, resolved[gi-lo], g.aliases, g.outer)
			vals, keep, err := finalizeGroup(en, g.q)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, vals)
			}
		}
		// Release the emitted groups: a shipped batch must not stay
		// pinned (nor its accumulator states — for Paillier aggregates
		// the per-group state is the expensive part) until the stream
		// ends, mirroring sliceIterator's release-on-emit contract.
		for gi := lo; gi < hi; gi++ {
			delete(g.groups.m, g.groups.order[gi])
		}
		if len(out) > 0 {
			return out, nil
		}
	}
	return nil, nil
}

func (g *groupEmitter) close() { g.closed = true }
