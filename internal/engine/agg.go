package engine

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// aggSpec is one distinct aggregate to compute per group: either a builtin
// AggExpr or an aggregate-UDF FuncCall. Keyed by rendered SQL.
type aggSpec struct {
	key string
	agg *ast.AggExpr  // builtin; nil for UDFs
	udf *ast.FuncCall // aggregate UDF call; nil for builtins
}

// collectAggSpecs finds every distinct aggregate mentioned in the
// projections, HAVING, and ORDER BY of a grouped query.
func (c *execCtx) collectAggSpecs(q *ast.Query) []aggSpec {
	seen := make(map[string]bool)
	var specs []aggSpec
	visit := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) {
			switch n := x.(type) {
			case *ast.AggExpr:
				k := n.SQL()
				if !seen[k] {
					seen[k] = true
					specs = append(specs, aggSpec{key: k, agg: n})
				}
			case *ast.FuncCall:
				if c.eng.IsAggUDF(n.Name) {
					k := n.SQL()
					if !seen[k] {
						seen[k] = true
						specs = append(specs, aggSpec{key: k, udf: n})
					}
				}
			}
		})
	}
	for _, p := range q.Projections {
		visit(p.Expr)
	}
	if q.Having != nil {
		visit(q.Having)
	}
	for _, o := range q.OrderBy {
		visit(o.Expr)
	}
	return specs
}

// builtinAggState accumulates one builtin aggregate.
type builtinAggState struct {
	fn       ast.AggFunc
	distinct bool
	seen     map[string]bool
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	hasVal   bool
	minMax   value.Value
}

func (s *builtinAggState) add(v value.Value) {
	if v.IsNull() {
		return
	}
	if s.distinct {
		if s.seen == nil {
			s.seen = make(map[string]bool)
		}
		k := v.HashKey()
		if s.seen[k] {
			return
		}
		s.seen[k] = true
	}
	s.count++
	switch s.fn {
	case ast.AggSum, ast.AggAvg:
		if v.K == value.Float {
			s.isFloat = true
		}
		s.sumI += v.AsInt()
		s.sumF += v.AsFloat()
	case ast.AggMin:
		if !s.hasVal || value.Compare(v, s.minMax) < 0 {
			s.minMax = v
		}
	case ast.AggMax:
		if !s.hasVal || value.Compare(v, s.minMax) > 0 {
			s.minMax = v
		}
	}
	s.hasVal = true
}

func (s *builtinAggState) result() value.Value {
	switch s.fn {
	case ast.AggCount:
		return value.NewInt(s.count)
	case ast.AggSum:
		if !s.hasVal {
			return value.NewNull()
		}
		if s.isFloat {
			return value.NewFloat(s.sumF)
		}
		return value.NewInt(s.sumI)
	case ast.AggAvg:
		if s.count == 0 {
			return value.NewNull()
		}
		return value.NewFloat(s.sumF / float64(s.count))
	case ast.AggMin, ast.AggMax:
		if !s.hasVal {
			return value.NewNull()
		}
		return s.minMax
	}
	return value.NewNull()
}

// execGrouped handles the aggregation path: GROUP BY (possibly empty =
// single group), aggregate computation, HAVING, projection, ORDER BY.
func (c *execCtx) execGrouped(q *ast.Query, in *relation, outer *env) (*relation, error) {
	specs := c.collectAggSpecs(q)
	aliases := aliasMap(q)

	type group struct {
		firstRow []value.Value
		builtins []*builtinAggState
		udfs     []AggState
	}
	newGroup := func(row []value.Value) (*group, error) {
		g := &group{firstRow: row}
		for _, sp := range specs {
			if sp.agg != nil {
				g.builtins = append(g.builtins, &builtinAggState{fn: sp.agg.Func, distinct: sp.agg.Distinct})
				g.udfs = append(g.udfs, nil)
				continue
			}
			f, ok := c.eng.aggs[strings.ToLower(sp.udf.Name)]
			if !ok {
				return nil, fmt.Errorf("engine: unregistered aggregate UDF %s", sp.udf.Name)
			}
			g.builtins = append(g.builtins, nil)
			g.udfs = append(g.udfs, f(c.stats))
		}
		return g, nil
	}

	groups := make(map[string]*group)
	var order []string // group key order of first appearance
	for _, row := range in.rows {
		en := &env{rel: in, row: row, outer: outer, ctx: c}
		var kb strings.Builder
		for _, g := range q.GroupBy {
			v, err := eval(en, g)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.HashKey())
			kb.WriteByte(0)
		}
		key := kb.String()
		grp, ok := groups[key]
		if !ok {
			var err error
			grp, err = newGroup(row)
			if err != nil {
				return nil, err
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, sp := range specs {
			switch {
			case sp.agg != nil:
				if sp.agg.Star {
					grp.builtins[i].count++
					grp.builtins[i].hasVal = true
					continue
				}
				v, err := eval(en, sp.agg.Arg)
				if err != nil {
					return nil, err
				}
				grp.builtins[i].add(v)
			default:
				args := make([]value.Value, len(sp.udf.Args))
				for j, a := range sp.udf.Args {
					v, err := eval(en, a)
					if err != nil {
						return nil, err
					}
					args[j] = v
				}
				if err := grp.udfs[i].Add(args); err != nil {
					return nil, err
				}
			}
		}
	}

	// A query with aggregates but no GROUP BY produces exactly one group,
	// even over zero input rows.
	if len(q.GroupBy) == 0 && len(order) == 0 {
		grp, err := newGroup(nil)
		if err != nil {
			return nil, err
		}
		groups[""] = grp
		order = append(order, "")
	}

	outCols := projectionCols(q)
	outRows := make([]keyedRow, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		aggVals := make(map[string]value.Value, len(specs))
		for i, sp := range specs {
			if sp.agg != nil {
				aggVals[sp.key] = grp.builtins[i].result()
				continue
			}
			v, err := grp.udfs[i].Result()
			if err != nil {
				return nil, err
			}
			aggVals[sp.key] = v
		}
		en := &env{rel: in, row: grp.firstRow, outer: outer, aggs: aggVals, aliases: aliases, ctx: c}
		if grp.firstRow == nil {
			en.rel = nil
		}
		if q.Having != nil {
			ok, err := evalBool(en, q.Having)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		vals, err := projectRow(en, q)
		if err != nil {
			return nil, err
		}
		k := keyedRow{row: vals}
		if len(q.OrderBy) > 0 {
			k.keys = make([]value.Value, len(q.OrderBy))
			for i, o := range q.OrderBy {
				v, err := eval(en, o.Expr)
				if err != nil {
					return nil, err
				}
				k.keys[i] = v
			}
		}
		outRows = append(outRows, k)
	}
	sortKeyed(outRows, q.OrderBy)
	rows := make([][]value.Value, len(outRows))
	for i, k := range outRows {
		rows[i] = k.row
	}
	return &relation{cols: outCols, rows: rows}, nil
}
