package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Join-layer tests: classification regressions (mixed-side equalities,
// ambiguous unqualified columns), the cross-join preallocation cap, and
// byte-identity of the sharded build / partitioned dedup / streamed-probe
// paths against the sequential materialized baseline.

// joinFixture builds facts(f_id, f_dim, f_val) × dims(d_id, d_name) with
// duplicate build-side keys (two dim rows per id) and NULL join keys on
// both sides, sized so sharding and batching both engage.
func joinFixture(t testing.TB, facts, dimIDs int) *Engine {
	t.Helper()
	cat := storage.NewCatalog()
	ft, err := cat.Create(storage.Schema{
		Name: "facts",
		Cols: []storage.Column{
			{Name: "f_id", Type: storage.TInt},
			{Name: "f_dim", Type: storage.TInt},
			{Name: "f_val", Type: storage.TInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < facts; i++ {
		dim := value.NewInt(int64(i % dimIDs))
		if i%13 == 5 {
			dim = value.NewNull() // NULL join keys match nothing
		}
		ft.MustInsert([]value.Value{value.NewInt(int64(i)), dim, value.NewInt(int64(i % 337))})
	}
	dt, err := cat.Create(storage.Schema{
		Name: "dims",
		Cols: []storage.Column{
			{Name: "d_id", Type: storage.TInt},
			{Name: "d_name", Type: storage.TStr},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dimIDs; i++ {
		// Two rows per key: probe output must keep build-side row order.
		dt.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("dim-%03d-a", i))})
		dt.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("dim-%03d-b", i))})
	}
	dt.MustInsert([]value.Value{value.NewNull(), value.NewStr("dim-null")})
	return New(cat)
}

// renderResult flattens a result into comparable strings (kind-tagged, so
// NULL vs 0 vs "" cannot collide).
func renderJoinRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%d:%s", v.K, v.HashKey())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// joinModeQueries are the shapes the ⟨Parallelism, BatchSize⟩ grid pins:
// equi-join, residual-filtered join, grouped join, cross join (grouped and
// projected), LIMIT early exit, and a three-table chain via a derived
// self-reference of dims.
var joinModeQueries = []string{
	`SELECT f_id, d_name FROM facts, dims WHERE f_dim = d_id`,
	`SELECT f_id, d_name FROM facts, dims WHERE f_dim = d_id AND f_val > d_id + 100`,
	`SELECT d_name, SUM(f_val), COUNT(*) FROM facts, dims WHERE f_dim = d_id GROUP BY d_name ORDER BY d_name`,
	`SELECT COUNT(*), SUM(f_val) FROM facts, dims`,
	`SELECT f_id, d_name FROM facts, dims LIMIT 53`,
	`SELECT f_id, d_name FROM facts, dims WHERE f_dim = d_id LIMIT 31`,
	`SELECT f_id, d_name FROM facts, dims WHERE f_dim = d_id ORDER BY f_id, d_name LIMIT 20`,
	`SELECT DISTINCT d_name FROM facts, dims WHERE f_dim = d_id`,
	`SELECT a.f_id, d_name, b.f_val FROM facts a, dims, facts b
	   WHERE a.f_dim = d_id AND b.f_id = a.f_id AND a.f_val < 40`,
}

// TestJoinModesByteIdentical pins every join query's rows across the
// ⟨Parallelism, BatchSize⟩ grid against the sequential materialized
// baseline: the sharded partitioned build, the sharded probe, the sharded
// cross join, the partitioned DISTINCT dedup, and the streamed-probe
// pipeline must all emit byte-identical rows in identical order.
func TestJoinModesByteIdentical(t *testing.T) {
	e := joinFixture(t, 500, 40)
	for qi, sql := range joinModeQueries {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		base, err := e.Execute(q, nil)
		if err != nil {
			t.Fatalf("q%d baseline: %v", qi, err)
		}
		want := renderJoinRows(base)
		for _, par := range []int{1, 2, 4} {
			for _, bs := range []int{0, 1, 7, 64} {
				if par == 1 && bs == 0 {
					continue
				}
				e.Parallelism, e.BatchSize = par, bs
				res, err := e.Execute(q, nil)
				if err != nil {
					t.Fatalf("q%d p=%d bs=%d: %v", qi, par, bs, err)
				}
				got := renderJoinRows(res)
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Errorf("q%d p=%d bs=%d: %d rows diverge from baseline %d rows\n%s",
						qi, par, bs, len(got), len(want), sql)
				}
			}
		}
	}
}

// TestMixedSideEqualityIsResidual is the regression for the classifier
// bug: a two-table equality whose side mixes both tables (o_total =
// i_price + o_id + 59) is not a hash-join edge — orienting it would
// evaluate a left-table expression against the right-table environment.
// It must run as a residual filter over the joined rows.
func TestMixedSideEqualityIsResidual(t *testing.T) {
	e := fixture(t)
	for _, bs := range []int{0, 2} {
		e.BatchSize = bs
		res := run(t, e, `SELECT o_id, i_tag FROM orders, items
			WHERE o_id = i_order AND o_total = i_price + o_id + 59`, nil)
		if len(res.Rows) != 1 {
			t.Fatalf("bs=%d: rows = %d, want 1", bs, len(res.Rows))
		}
		if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].S != "green gadget" {
			t.Errorf("bs=%d: row = %v", bs, res.Rows[0])
		}
	}
	// Mirror image: the mixed side on the left of the equality.
	e.BatchSize = 0
	res := run(t, e, `SELECT o_id, i_tag FROM orders, items
		WHERE o_id = i_order AND i_price + o_id + 59 = o_total`, nil)
	if len(res.Rows) != 1 || res.Rows[0][1].S != "green gadget" {
		t.Errorf("mirrored: rows = %v", res.Rows)
	}
}

// TestAmbiguousColumnReference: an unqualified column that resolves in
// more than one FROM relation must be rejected (standard SQL), not bound
// silently to the first table.
func TestAmbiguousColumnReference(t *testing.T) {
	cat := storage.NewCatalog()
	for _, name := range []string{"t1", "t2"} {
		tb, err := cat.Create(storage.Schema{
			Name: name,
			Cols: []storage.Column{
				{Name: "k", Type: storage.TInt},
				{Name: "v_" + name, Type: storage.TInt},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.MustInsert([]value.Value{value.NewInt(1), value.NewInt(10)})
		tb.MustInsert([]value.Value{value.NewInt(2), value.NewInt(20)})
	}
	e := New(cat)
	for _, bs := range []int{0, 4} {
		e.BatchSize = bs
		q := sqlparser.MustParse(`SELECT v_t1 FROM t1, t2 WHERE k = 1`)
		_, err := e.Execute(q, nil)
		if err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Fatalf("bs=%d: err = %v, want ambiguous-column error", bs, err)
		}
	}
	// Qualified references stay legal.
	e.BatchSize = 0
	res := run(t, e, `SELECT v_t1, v_t2 FROM t1, t2 WHERE t1.k = t2.k`, nil)
	if len(res.Rows) != 2 {
		t.Fatalf("qualified join rows = %d, want 2", len(res.Rows))
	}
}

// TestCrossJoinPreallocCap: a cross product far larger than
// maxJoinPrealloc must still produce every row in nested-loop order — the
// cap only bounds the up-front allocation.
func TestCrossJoinPreallocCap(t *testing.T) {
	// 1<<30 fits int on 32-bit platforms too; the product would overflow
	// both int32 and (squared again) int64 — the divide guard never
	// multiplies, so the cap must come back regardless.
	if crossPrealloc(1<<30, 1<<30) != maxJoinPrealloc {
		t.Fatal("crossPrealloc must cap huge (overflowing) products")
	}
	if crossPrealloc(3, 4) != 12 {
		t.Fatal("crossPrealloc must size small products exactly")
	}
	left := &relation{cols: []colInfo{{name: "l"}}}
	right := &relation{cols: []colInfo{{name: "r"}}}
	const nl, nr = 300, 300 // 90000 rows > maxJoinPrealloc at shard sizes
	for i := 0; i < nl; i++ {
		left.rows = append(left.rows, []value.Value{value.NewInt(int64(i))})
	}
	for j := 0; j < nr; j++ {
		right.rows = append(right.rows, []value.Value{value.NewInt(int64(j))})
	}
	for _, par := range []int{1, 4} {
		c := &execCtx{eng: New(storage.NewCatalog()), stats: &Stats{}, par: par}
		out, err := c.crossJoin(left, right)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.rows) != nl*nr {
			t.Fatalf("p=%d: rows = %d, want %d", par, len(out.rows), nl*nr)
		}
		// Spot-check nested-loop order at the shard seams.
		for _, i := range []int{0, 1, nr - 1, nr, nl*nr/2 + 17, nl*nr - 1} {
			wantL, wantR := int64(i/nr), int64(i%nr)
			if out.rows[i][0].I != wantL || out.rows[i][1].I != wantR {
				t.Fatalf("p=%d row %d = (%d,%d), want (%d,%d)",
					par, i, out.rows[i][0].I, out.rows[i][1].I, wantL, wantR)
			}
		}
	}
}

// TestJoinExecuteStreamMatchesExecute: draining ExecuteStream on
// multi-table queries must reproduce Execute exactly — pipelined
// streamed-probe shapes and materialized-fallback shapes alike.
func TestJoinExecuteStreamMatchesExecute(t *testing.T) {
	e := joinFixture(t, 500, 40)
	for qi, sql := range joinModeQueries {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		want, err := e.Execute(q, nil)
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		for _, bs := range []int{0, 7, 64} {
			for _, p := range []int{1, 4} {
				e.Parallelism, e.BatchSize = p, bs
				s, err := e.ExecuteStream(q, nil)
				if err != nil {
					t.Fatalf("q%d bs=%d p=%d: %v", qi, bs, p, err)
				}
				got := drainStream(t, s)
				if strings.Join(renderJoinRows(got), "\n") != strings.Join(renderJoinRows(want), "\n") {
					t.Errorf("q%d bs=%d p=%d: stream diverges from Execute\n%s", qi, bs, p, sql)
				}
			}
		}
	}
}

// TestJoinStreamIncremental pins the streamed probe's defining property:
// after the first batch of a multi-table pipelined stream, the build side
// is fully charged but the probe side's scan has barely started — the
// engine half of the multi-table time-to-first-batch win.
func TestJoinStreamIncremental(t *testing.T) {
	const facts = 5000
	e := joinFixture(t, facts, 40)
	e.Parallelism, e.BatchSize = 1, 64
	q := sqlparser.MustParse(`SELECT f_id, d_name FROM facts, dims WHERE f_dim = d_id`)
	s, err := e.ExecuteStream(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Next()
	if err != nil || len(b) == 0 {
		t.Fatalf("first batch: %d rows, err %v", len(b), err)
	}
	mid := s.Stats()
	dims, _ := e.Cat.Table("dims")
	total := int64(facts + dims.NumRows())
	if mid.RowsScanned >= total/4 {
		t.Fatalf("first batch scanned %d of %d rows: probe is not streaming", mid.RowsScanned, total)
	}
	if mid.RowsScanned < int64(dims.NumRows())+64 {
		t.Fatalf("first batch scanned %d rows: build side not charged before probe", mid.RowsScanned)
	}
	if mid.RowsStreamed == 0 || mid.BatchesStreamed == 0 {
		t.Fatalf("probe scan not streamed: %+v", mid)
	}
	rest := drainStream(t, s)
	final := s.Stats()
	if final.RowsScanned != total {
		t.Errorf("drained stats scanned %d rows, want %d", final.RowsScanned, total)
	}
	if len(rest.Rows) == 0 {
		t.Error("stream delivered no further batches")
	}
	// Abandoning a fresh stream mid-probe stops the scan (no goroutines to
	// leak: the pull chain owns none).
	s2, err := e.ExecuteStream(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Next(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if st := s2.Stats(); st.RowsScanned >= total {
		t.Errorf("abandoned join stream scanned all %d rows", st.RowsScanned)
	}
}

// TestJoinStreamBatchCap: a probe row's fanout must not inflate output
// batches. A streamed cross join (every probe row matches the whole right
// side) still emits batch-sized frames, carrying the expansion across
// next calls — the property that keeps streamed-wire frames and the
// consumer's working set batch-sized.
func TestJoinStreamBatchCap(t *testing.T) {
	const bs = 32
	e := joinFixture(t, 200, 40) // dims: 81 rows ≫ bs, so one probe row overflows a batch
	e.Parallelism, e.BatchSize = 1, bs
	s, err := e.ExecuteStream(sqlparser.MustParse(`SELECT f_id, d_name FROM facts, dims`), nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if len(b) > bs {
			t.Fatalf("stream emitted a %d-row batch, cap is %d", len(b), bs)
		}
		total += len(b)
	}
	if want := 200 * 81; total != want {
		t.Fatalf("cross join streamed %d rows, want %d", total, want)
	}
}

// TestJoinBuildPartitioned: the sharded build must place every non-NULL
// key in exactly one partition, with its row list in build-side row order,
// and agree with the sequential single-partition build.
func TestJoinBuildPartitioned(t *testing.T) {
	e := joinFixture(t, 64, 50) // 101 dim rows: above the sharding floor
	tbl, err := e.Cat.Table("dims")
	if err != nil {
		t.Fatal(err)
	}
	tblRows, _, err := tbl.ScanRows(0, tbl.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	rel := &relation{rows: tblRows}
	for _, col := range tbl.Schema.Cols {
		rel.cols = append(rel.cols, colInfo{table: "dims", name: col.Name})
	}
	keys := []ast.Expr{&ast.ColumnRef{Column: "d_id"}}

	seqCtx := &execCtx{eng: e, stats: &Stats{}, par: 1}
	seq, err := seqCtx.buildJoinMap(rel, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	parCtx := &execCtx{eng: e, stats: &Stats{}, par: 4}
	par, err := parCtx.buildJoinMap(rel, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.parts) < 2 {
		t.Fatalf("parallel build produced %d partitions, want several", len(par.parts))
	}
	total := 0
	for p, m := range par.parts {
		for k, rows := range m {
			if joinPartition(k, len(par.parts)) != p {
				t.Fatalf("key %q landed in partition %d, owns %d", k, p, joinPartition(k, len(par.parts)))
			}
			want := seq.lookup(k)
			if len(rows) != len(want) {
				t.Fatalf("key %q: %d rows, sequential build has %d", k, len(rows), len(want))
			}
			for i := range rows {
				if rows[i][1].S != want[i][1].S {
					t.Fatalf("key %q row %d out of order: %q vs %q", k, i, rows[i][1].S, want[i][1].S)
				}
			}
			total += len(rows)
		}
	}
	if want := tbl.NumRows() - 1; total != want { // one NULL-key dim row skipped
		t.Fatalf("partitioned build holds %d rows, want %d", total, want)
	}
}
