package engine

import (
	"runtime"
	"sync"

	"repro/internal/ast"
	"repro/internal/value"
)

// Sharded execution. The engine parallelizes its row-at-a-time hot loops —
// filtering, hash-join probing, projection, and grouped aggregation — by
// partitioning the input relation into contiguous row-range shards executed
// by a worker pool. Shards accumulate into shard-local state (stats, group
// maps, output buffers) that is merged back in shard order, so the output —
// row order, group first-appearance order, and first-error choice — is
// byte-identical to the sequential path, with one carve-out: SUM/AVG over
// Float columns associates the float additions per shard rather than in
// one left fold, so those aggregates can differ from the sequential result
// in the last ULP (deterministically, for a fixed shard count).
//
// Expressions containing subqueries opt a loop out of sharding: subquery
// plans are memoized lazily on the execution context and their evaluation
// is not synchronized. Everything else an expression can touch during
// evaluation (relations, params, the catalog, registered UDFs) is read-only
// while a query runs.

// minShardRows is the smallest row range worth a goroutine; relations
// smaller than two shards' worth always run sequentially.
const minShardRows = 32

// effectiveParallelism resolves the engine's Parallelism knob: values < 1
// mean "use every core" (GOMAXPROCS), 1 forces the sequential path.
func (e *Engine) effectiveParallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// shardCount decides how many shards to split n rows into: at most the
// context's parallelism, and never so many that a shard drops below
// minShardRows.
func (c *execCtx) shardCount(n int) int {
	if c.par <= 1 || n < 2*minShardRows {
		return 1
	}
	s := n / minShardRows
	if s > c.par {
		s = c.par
	}
	return s
}

// shardBounds returns the half-open row ranges [lo,hi) of each shard,
// splitting n rows as evenly as possible.
func shardBounds(n, shards int) [][2]int {
	out := make([][2]int, shards)
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + (n-lo)/(shards-i)
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// parallelDo runs fn(0..shards-1) on separate goroutines and returns the
// first error in shard order (matching the row order a sequential scan
// would have hit it in).
func parallelDo(shards int, fn func(shard int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, shards)
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardCtx creates a child context for one shard: it shares the engine and
// params (both read-only during execution), accumulates stats locally, and
// never spawns nested shards. It gets its own subquery-plan map, though
// parallelSafe guards keep subqueries off sharded loops entirely. The
// batch size carries over so streamed shard workers pull the same batches
// a sequential stream would.
func (c *execCtx) shardCtx() *execCtx {
	return &execCtx{eng: c.eng, params: c.params, stats: &Stats{}, subq: make(map[*ast.Query]*subqPlan), par: 1, batch: c.batch, useIdx: c.useIdx}
}

// shardedCollect splits n input rows into shards, runs fn over each shard
// on its own child context, and returns the per-shard results in shard
// order. Shard stats fold into c after the barrier; on error no stats are
// folded (the query is abandoned anyway).
func shardedCollect[T any](c *execCtx, shards, n int, fn func(sc *execCtx, lo, hi int) (T, error)) ([]T, error) {
	return shardedCollectBounds(c, shardBounds(n, shards), fn)
}

// shardedCollectBounds is shardedCollect over caller-supplied shard
// ranges — how streaming loops pin their shards to the scan's batch grid
// (shardStreamBounds), so per-batch statistics stay identical to a
// sequential stream at every parallelism level.
func shardedCollectBounds[T any](c *execCtx, bounds [][2]int, fn func(sc *execCtx, lo, hi int) (T, error)) ([]T, error) {
	shards := len(bounds)
	parts := make([]T, shards)
	stats := make([]Stats, shards)
	err := parallelDo(shards, func(s int) error {
		sc := c.shardCtx()
		out, err := fn(sc, bounds[s][0], bounds[s][1])
		if err != nil {
			return err
		}
		parts[s] = out
		stats[s] = *sc.stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		c.stats.Add(st)
	}
	return parts, nil
}

// shardedRows is shardedCollect for row-producing shards, concatenating
// the per-shard outputs in shard order (preserving input row order).
func (c *execCtx) shardedRows(shards, n int, fn func(sc *execCtx, lo, hi int) ([][]value.Value, error)) ([][]value.Value, error) {
	return c.shardedRowsBounds(shardBounds(n, shards), fn)
}

// shardedRowsBounds is shardedRows over caller-supplied shard ranges.
func (c *execCtx) shardedRowsBounds(bounds [][2]int, fn func(sc *execCtx, lo, hi int) ([][]value.Value, error)) ([][]value.Value, error) {
	parts, err := shardedCollectBounds(c, bounds, fn)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([][]value.Value, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// parallelSafe reports whether a row loop evaluating the given expressions
// may be sharded. Two things force the sequential path:
//
//   - a non-nil outer environment: evaluation can escape into the
//     enclosing scope (alias fallback expands outer SELECT expressions on
//     the enclosing context), whose stats and subquery plans are not
//     synchronized — and naive correlated subqueries re-enter per outer
//     row anyway, where nested sharding would multiply goroutines;
//   - a subquery in any expression: subquery planning memoizes state on
//     the shared context.
func parallelSafe(outer *env, exprs ...ast.Expr) bool {
	if outer != nil {
		return false
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if ast.HasSubquery(e) {
			return false
		}
	}
	return true
}
