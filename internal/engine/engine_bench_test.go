package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Micro-benchmarks for the executor substrate: scan+filter, hash join, and
// grouped aggregation throughput at a fixed row count.

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	cat := storage.NewCatalog()
	t, err := cat.Create(storage.Schema{
		Name: "facts",
		Cols: []storage.Column{
			{Name: "f_id", Type: storage.TInt},
			{Name: "f_dim", Type: storage.TInt},
			{Name: "f_val", Type: storage.TInt},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := cat.Create(storage.Schema{
		Name: "dims",
		Cols: []storage.Column{
			{Name: "d_id", Type: storage.TInt},
			{Name: "d_name", Type: storage.TStr},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		t.MustInsert([]value.Value{
			value.NewInt(int64(i)), value.NewInt(int64(i % 100)), value.NewInt(int64(i % 1000)),
		})
	}
	for i := 0; i < 100; i++ {
		d.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("dim-%02d", i))})
	}
	return New(cat)
}

func runBench(b *testing.B, sql string, rows int) {
	e := benchEngine(b, rows)
	q := sqlparser.MustParse(sql)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter10k(b *testing.B) {
	runBench(b, `SELECT f_id FROM facts WHERE f_val > 500`, 10000)
}

func BenchmarkHashJoin10k(b *testing.B) {
	runBench(b, `SELECT COUNT(*) FROM facts, dims WHERE f_dim = d_id`, 10000)
}

func BenchmarkGroupedAggregate10k(b *testing.B) {
	runBench(b, `SELECT f_dim, SUM(f_val), COUNT(*) FROM facts GROUP BY f_dim`, 10000)
}

func BenchmarkDecorrelatedExists10k(b *testing.B) {
	runBench(b, `SELECT COUNT(*) FROM dims WHERE EXISTS (
		SELECT 1 FROM facts WHERE f_dim = d_id AND f_val > 900)`, 10000)
}
