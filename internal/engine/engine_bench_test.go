package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Micro-benchmarks for the executor substrate: scan+filter, hash join, and
// grouped aggregation throughput at a fixed row count.

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	cat := storage.NewCatalog()
	t, err := cat.Create(storage.Schema{
		Name: "facts",
		Cols: []storage.Column{
			{Name: "f_id", Type: storage.TInt},
			{Name: "f_dim", Type: storage.TInt},
			{Name: "f_val", Type: storage.TInt},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := cat.Create(storage.Schema{
		Name: "dims",
		Cols: []storage.Column{
			{Name: "d_id", Type: storage.TInt},
			{Name: "d_name", Type: storage.TStr},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		t.MustInsert([]value.Value{
			value.NewInt(int64(i)), value.NewInt(int64(i % 100)), value.NewInt(int64(i % 1000)),
		})
	}
	for i := 0; i < 100; i++ {
		d.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("dim-%02d", i))})
	}
	return New(cat)
}

func runBench(b *testing.B, sql string, rows int) {
	e := benchEngine(b, rows)
	q := sqlparser.MustParse(sql)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter10k(b *testing.B) {
	runBench(b, `SELECT f_id FROM facts WHERE f_val > 500`, 10000)
}

func BenchmarkHashJoin10k(b *testing.B) {
	runBench(b, `SELECT COUNT(*) FROM facts, dims WHERE f_dim = d_id`, 10000)
}

func BenchmarkGroupedAggregate10k(b *testing.B) {
	runBench(b, `SELECT f_dim, SUM(f_val), COUNT(*) FROM facts GROUP BY f_dim`, 10000)
}

func BenchmarkDecorrelatedExists10k(b *testing.B) {
	runBench(b, `SELECT COUNT(*) FROM dims WHERE EXISTS (
		SELECT 1 FROM facts WHERE f_dim = d_id AND f_val > 900)`, 10000)
}

// Sharded-execution benchmarks: the same queries at parallelism 1 (the
// sequential path) and at increasing worker counts. On a multi-core host
// the p>1 variants show the multi-core speedup of the sharded scan,
// filter, probe, and grouped-aggregation loops; on a single core they
// bound the sharding overhead.

func benchParallelLevels(b *testing.B, sql string, rows int) {
	b.Helper()
	e := benchEngine(b, rows)
	q := sqlparser.MustParse(sql)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			e.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupedAggregate200k is TPC-H-Q1-shaped grouped aggregation
// (few groups, several aggregates per row) over 200k rows — the paper's
// server-side hot path and the headline case for sharded execution.
func BenchmarkGroupedAggregate200k(b *testing.B) {
	benchParallelLevels(b,
		`SELECT f_dim, SUM(f_val), COUNT(*), AVG(f_val), MIN(f_val), MAX(f_val)
		   FROM facts GROUP BY f_dim`, 200000)
}

func BenchmarkScanFilter200k(b *testing.B) {
	benchParallelLevels(b, `SELECT f_id FROM facts WHERE f_val > 500`, 200000)
}

func BenchmarkHashJoinProbe200k(b *testing.B) {
	benchParallelLevels(b, `SELECT COUNT(*) FROM facts, dims WHERE f_dim = d_id AND f_val > 250`, 200000)
}

// Streamed-vs-materialized benchmarks: the same scan-shaped queries with
// the batch-at-a-time pipeline off (materialized intermediates) and on
// (BatchSize = DefaultBatchSize), at sequential and sharded parallelism.
// Streaming wins by skipping the materialized filter output and, for
// LIMIT, by stopping the scan early; results are byte-identical either
// way (see stream_test.go).

func benchStreamLevels(b *testing.B, sql string, rows int) {
	b.Helper()
	e := benchEngine(b, rows)
	q := sqlparser.MustParse(sql)
	for _, mode := range []struct {
		name  string
		batch int
	}{{"materialized", 0}, {"streamed", DefaultBatchSize}} {
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/p=%d", mode.name, p), func(b *testing.B) {
				e.Parallelism, e.BatchSize = p, mode.batch
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStreamScanFilter200k is the selective-scan hot path: the
// materialized engine allocates the filtered intermediate, the streamed
// engine pipelines it away.
func BenchmarkStreamScanFilter200k(b *testing.B) {
	benchStreamLevels(b, `SELECT f_id FROM facts WHERE f_val > 500`, 200000)
}

// BenchmarkStreamGroupedAggregate200k feeds grouped aggregation from the
// scan→filter stream (per-batch AggState updates) instead of a
// materialized filter output.
func BenchmarkStreamGroupedAggregate200k(b *testing.B) {
	benchStreamLevels(b,
		`SELECT f_dim, SUM(f_val), COUNT(*), AVG(f_val), MIN(f_val), MAX(f_val)
		   FROM facts WHERE f_val > 250 GROUP BY f_dim`, 200000)
}

// BenchmarkStreamLimit200k shows LIMIT early exit: the streamed pipeline
// stops after a few batches where the materialized scan reads all 200k
// rows.
func BenchmarkStreamLimit200k(b *testing.B) {
	benchStreamLevels(b, `SELECT f_id, f_val FROM facts WHERE f_val > 500 LIMIT 100`, 200000)
}

// Join-layer benchmarks: the sharded partitioned hash-join build (200k-row
// build side) and the streamed probe (200k-row probe side) against their
// sequential / materialized baselines.

// benchJoinEngine builds probe(p_id, p_key, p_val) × build(b_key, b_val)
// with ~one build row per 100 probe keys matching.
func benchJoinEngine(b *testing.B, probeRows, buildRows int) *Engine {
	b.Helper()
	cat := storage.NewCatalog()
	pt, err := cat.Create(storage.Schema{
		Name: "probe",
		Cols: []storage.Column{
			{Name: "p_id", Type: storage.TInt},
			{Name: "p_key", Type: storage.TInt},
			{Name: "p_val", Type: storage.TInt},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < probeRows; i++ {
		pt.MustInsert([]value.Value{
			value.NewInt(int64(i)), value.NewInt(int64(i % buildRows)), value.NewInt(int64(i % 1000)),
		})
	}
	bt, err := cat.Create(storage.Schema{
		Name: "build",
		Cols: []storage.Column{
			{Name: "b_key", Type: storage.TInt},
			{Name: "b_val", Type: storage.TInt},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < buildRows; i++ {
		bt.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(i % 97))})
	}
	return New(cat)
}

// BenchmarkJoinBuild200k stresses the build phase: a 200k-row build side
// hashed into partitioned maps (p>1) vs one sequential map (p=1); the
// 2k-row probe side keeps the probe phase negligible.
func BenchmarkJoinBuild200k(b *testing.B) {
	e := benchJoinEngine(b, 2000, 200000)
	q := sqlparser.MustParse(`SELECT COUNT(*) FROM probe, build WHERE p_key = b_key`)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			e.Parallelism = p
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamJoinProbe200k is the streamed-probe headline: a 200k-row
// probe side over a 100-row build side, materialized (the full join output
// exists) vs streamed (each probe batch flows through probe → project and
// is released). Grouped variant folds the joined batches straight into
// aggregation states.
func BenchmarkStreamJoinProbe200k(b *testing.B) {
	for _, sh := range []struct {
		name string
		sql  string
	}{
		{"projection", `SELECT p_id, b_val FROM probe, build WHERE p_key = b_key AND p_val > 250`},
		{"grouped", `SELECT b_val, SUM(p_val), COUNT(*) FROM probe, build WHERE p_key = b_key GROUP BY b_val`},
	} {
		e := benchJoinEngine(b, 200000, 100)
		q := sqlparser.MustParse(sh.sql)
		for _, mode := range []struct {
			name  string
			batch int
		}{{"materialized", 0}, {"streamed", DefaultBatchSize}} {
			b.Run(fmt.Sprintf("%s/%s", sh.name, mode.name), func(b *testing.B) {
				e.Parallelism, e.BatchSize = 1, mode.batch
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(q, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
