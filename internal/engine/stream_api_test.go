package engine

import (
	"fmt"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/value"
)

// Public streaming API equivalence: draining ExecuteStream must yield the
// same columns and rows, in the same order, as Execute — for pipelined
// shapes and for every materialized-fallback shape — and the pipelined
// path must deliver its first batch before the scan has been fully
// charged.

// drainStream collects a ResultStream into a Result-shaped value.
func drainStream(t testing.TB, s *ResultStream) *Result {
	t.Helper()
	res := &Result{Cols: s.Cols()}
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		res.Rows = append(res.Rows, b...)
	}
	res.Stats = s.Stats()
	return res
}

func TestExecuteStreamMatchesExecute(t *testing.T) {
	e := parallelFixture(t, 2000)
	registerMySum(e)
	for _, sql := range streamQueries {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		want, seqErr := e.Execute(q, nil)
		for _, bs := range []int{0, 7, 64} {
			for _, p := range []int{1, 4} {
				e.Parallelism, e.BatchSize = p, bs
				s, err := e.ExecuteStream(q, nil)
				if err != nil {
					if seqErr == nil {
						t.Fatalf("bs=%d p=%d stream err %v on %s", bs, p, err, sql)
					}
					continue
				}
				got := drainStream(t, s)
				if seqErr != nil {
					t.Fatalf("bs=%d p=%d stream succeeded where Execute fails on %s", bs, p, sql)
				}
				if g, w := renderResult(t, got), renderResult(t, want); g != w {
					t.Errorf("bs=%d p=%d stream diverges on %s\ngot:\n%s\nwant:\n%s", bs, p, sql, g, w)
				}
				if got.Stats.RowsOut != int64(len(got.Rows)) {
					t.Errorf("bs=%d p=%d %s: stream RowsOut = %d, emitted %d",
						bs, p, sql, got.Stats.RowsOut, len(got.Rows))
				}
			}
		}
	}
}

// TestExecuteStreamIncremental pins the pipelined mode's defining
// property: scan statistics grow batch by batch, so the first batch is
// available when only a prefix of the table has been charged — the
// engine-side half of time-to-first-batch < time-to-last-batch.
func TestExecuteStreamIncremental(t *testing.T) {
	e := parallelFixture(t, 5000)
	e.Parallelism, e.BatchSize = 1, 64
	s, err := e.ExecuteStream(sqlparser.MustParse(`SELECT f_id, f_val FROM facts`), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Next()
	if err != nil || len(b) != 64 {
		t.Fatalf("first batch: %d rows, err %v", len(b), err)
	}
	mid := s.Stats()
	if mid.RowsScanned != 64 {
		t.Fatalf("after one batch RowsScanned = %d, want 64", mid.RowsScanned)
	}
	tbl, _ := e.Cat.Table("facts")
	if mid.BytesScanned >= tbl.Bytes {
		t.Fatalf("first batch charged the whole table: %d of %d bytes", mid.BytesScanned, tbl.Bytes)
	}
	rest := drainStream(t, s)
	final := s.Stats()
	if final.RowsScanned != 5000 || final.BytesScanned != tbl.Bytes {
		t.Errorf("drained stats = %+v, want full scan", final)
	}
	if len(rest.Rows)+64 != 5000 {
		t.Errorf("stream delivered %d rows total", len(rest.Rows)+64)
	}
}

// TestExecuteStreamEarlyClose abandons a pipelined stream after one batch:
// the scan must stop (partial charges only) and, since the pull chain owns
// no goroutines, nothing can leak.
func TestExecuteStreamEarlyClose(t *testing.T) {
	e := parallelFixture(t, 10000)
	e.Parallelism, e.BatchSize = 4, 32
	s, err := e.ExecuteStream(sqlparser.MustParse(`SELECT f_id FROM facts WHERE f_val >= 0`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	st := s.Stats()
	if st.RowsScanned >= 10000 {
		t.Errorf("abandoned stream scanned all %d rows", st.RowsScanned)
	}
	// Next after Close stays nil without error.
	if b, err := s.Next(); b != nil || err != nil {
		t.Errorf("post-Close Next = (%v, %v)", b, err)
	}
}

// TestExecuteStreamLimit checks the pipelined LIMIT countdown: exact
// delivery, early scan exit, and LIMIT 0.
func TestExecuteStreamLimit(t *testing.T) {
	e := parallelFixture(t, 10000)
	e.Parallelism, e.BatchSize = 1, 32
	s, err := e.ExecuteStream(sqlparser.MustParse(`SELECT f_id FROM facts LIMIT 5`), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drainStream(t, s)
	if len(got.Rows) != 5 || got.Rows[4][0].AsInt() != 4 {
		t.Fatalf("LIMIT 5 stream = %v", got.Rows)
	}
	if got.Stats.RowsScanned != 32 {
		t.Errorf("LIMIT 5 scanned %d rows, want one batch (32)", got.Stats.RowsScanned)
	}
	s, err = e.ExecuteStream(sqlparser.MustParse(`SELECT f_id FROM facts LIMIT 0`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainStream(t, s); len(got.Rows) != 0 {
		t.Fatalf("LIMIT 0 delivered %d rows", len(got.Rows))
	}
}

// Streamed top-N: ORDER BY ... LIMIT under streaming must agree with the
// materialized sort at every batch size and shard count — including
// heavily tied keys, where the global-position tiebreak must reproduce the
// stable sort's input order exactly.
func TestStreamTopNMatchesMaterialized(t *testing.T) {
	e := parallelFixture(t, 2000)
	queries := []string{
		// f_tag has only four distinct values over 2000 rows: ties dominate.
		`SELECT f_tag, f_id FROM facts ORDER BY f_tag LIMIT 13`,
		`SELECT f_id, f_val FROM facts WHERE f_val > 200 ORDER BY f_val DESC, f_id LIMIT 37`,
		`SELECT f_id, f_val * 2 AS dbl FROM facts ORDER BY dbl DESC LIMIT 5`,
		`SELECT f_id FROM facts ORDER BY f_val LIMIT 0`,
		`SELECT f_id FROM facts WHERE f_val > 990 ORDER BY f_id LIMIT 5000`, // k > survivors
		`SELECT f_tag, f_dim, f_id FROM facts ORDER BY f_tag DESC, f_dim, f_id DESC LIMIT 29`,
		`SELECT f_id FROM facts WHERE f_val < 0 ORDER BY f_id LIMIT 10`, // empty input
	}
	for _, sql := range queries {
		q := sqlparser.MustParse(sql)
		e.Parallelism, e.BatchSize = 1, 0
		want, err := e.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{1, 16, 256} {
			for _, p := range []int{1, 2, 4} {
				e.Parallelism, e.BatchSize = p, bs
				got, err := e.Execute(q, nil)
				if err != nil {
					t.Fatalf("bs=%d p=%d %s: %v", bs, p, sql, err)
				}
				if g, w := renderResult(t, got), renderResult(t, want); g != w {
					t.Errorf("bs=%d p=%d top-N diverges on %s\ngot:\n%s\nwant:\n%s", bs, p, sql, g, w)
				}
				if got.Stats.RowsStreamed == 0 {
					t.Errorf("bs=%d p=%d %s: top-N did not stream its scan", bs, p, sql)
				}
			}
		}
	}
}

// TestStreamTopNStats: the bounded heap must still charge a full scan
// (sorting needs every row), identically at every batch size and shard
// count.
func TestStreamTopNStats(t *testing.T) {
	const rows = 2000
	e := parallelFixture(t, rows)
	tbl, _ := e.Cat.Table("facts")
	q := sqlparser.MustParse(`SELECT f_id FROM facts ORDER BY f_val LIMIT 7`)
	for _, bs := range []int{8, 512} {
		for _, p := range []int{1, 4} {
			e.Parallelism, e.BatchSize = p, bs
			res, err := e.Execute(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.RowsScanned != rows || res.Stats.BytesScanned != tbl.Bytes {
				t.Errorf("bs=%d p=%d top-N scan stats %+v, want full table", bs, p, res.Stats)
			}
			if res.Stats.RowsOut != 7 {
				t.Errorf("bs=%d p=%d RowsOut = %d", bs, p, res.Stats.RowsOut)
			}
		}
	}
}

// Parallel per-group finalization: a UDF-heavy grouped query must produce
// identical rows whether group Result calls run sequentially or fanned
// across workers (the Paillier-per-group ROADMAP item; raced in CI).
func TestParallelGroupFinalization(t *testing.T) {
	e := parallelFixture(t, 3000)
	registerMySum(e)
	// ~100 distinct f_dim groups: enough for every worker to own a range.
	q := sqlparser.MustParse(
		`SELECT f_dim, my_sum(f_val), COUNT(*) FROM facts GROUP BY f_dim ORDER BY f_dim`)
	e.Parallelism, e.BatchSize = 1, 0
	want, err := e.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 16} {
		for _, bs := range []int{0, 64} {
			e.Parallelism, e.BatchSize = p, bs
			got, err := e.Execute(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := renderResult(t, got), renderResult(t, want); g != w {
				t.Errorf("p=%d bs=%d parallel finalization diverges\ngot:\n%s\nwant:\n%s", p, bs, g, w)
			}
		}
	}
}

// TestParallelGroupFinalizationError: a Result error must surface in group
// order, exactly as the sequential loop reports it.
func TestParallelGroupFinalizationError(t *testing.T) {
	e := parallelFixture(t, 1000)
	e.RegisterAgg("bad_result", func(st *Stats) AggState { return &badResultUDF{} })
	q := sqlparser.MustParse(`SELECT f_dim, bad_result(f_val) FROM facts GROUP BY f_dim`)
	e.Parallelism = 1
	_, seqErr := e.Execute(q, nil)
	if seqErr == nil {
		t.Fatal("expected sequential error")
	}
	e.Parallelism = 8
	_, parErr := e.Execute(q, nil)
	if parErr == nil || parErr.Error() != seqErr.Error() {
		t.Fatalf("parallel err %v, sequential err %v", parErr, seqErr)
	}
}

// badResultUDF fails at finalization time (unlike badUDF, which fails on
// Add), exercising the parallel Result fan-out's error path.
type badResultUDF struct{ n int64 }

func (b *badResultUDF) Add(args []value.Value) error { b.n++; return nil }
func (b *badResultUDF) Merge(other AggState) error {
	b.n += other.(*badResultUDF).n
	return nil
}
func (b *badResultUDF) Result() (value.Value, error) {
	return value.Value{}, fmt.Errorf("engine: bad_result(%d) always fails", b.n)
}
