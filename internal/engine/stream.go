package engine

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// Streaming batch-at-a-time execution. When Engine.BatchSize > 0, queries
// whose source is a single base-table scan run through a pull-based
// (Volcano-style, vectorized) pipeline of fixed-size row batches instead of
// materializing each operator's full output:
//
//	scan ──batch──▶ filter ──batch──▶ project ──batch──▶ sink
//
// Only the final result is materialized; the filtered intermediate that the
// materialized path allocates never exists. Grouped aggregation consumes
// the scan→filter stream directly — each batch folds into the per-group
// AggState accumulators (the same states sharded execution merges with
// AggState.Merge) — so a TPC-H-Q1-shaped scan streams end to end, crypto
// UDFs included. LIMIT without ORDER BY stops pulling as soon as enough
// rows have been produced, cutting the scan (and its charged I/O bytes)
// short.
//
// Streaming composes with sharded execution: each worker runs its own
// iterator chain over its contiguous row range, pulling and pushing batches
// independently, and the per-shard outputs (row batches or group states)
// recombine in shard order exactly as the materialized sharded path does.
// Workers are joined before the query returns — early exit can never leak a
// goroutine, because no iterator owns one.
//
// Multi-table queries stream through the probe side of their joins: the
// build sides (every table the greedy join order attaches) materialize
// into partitioned hash tables, and table 0's scan streams through the
// probe chain one batch at a time (see joinStreamPlan.chain), feeding projection or
// grouped aggregation without the join output ever existing as a whole.
//
// DISTINCT without ORDER BY streams too: a seen-set filter over the
// projected stream emits each row's first occurrence batch-at-a-time
// (distinctIterator sequentially; streamDistinct's per-shard pre-dedup +
// shard-order replay when sharded), replacing the materialized keep-bitmap
// pass. Operators with no streaming form fall back to the materialized
// engine: full ORDER BY sorts (except streamed top-N) and (correlated)
// subqueries. ORDER BY over a single-table scan still streams the
// scan→filter front of the pipeline and materializes only the survivors
// ("partial" streaming); everything else — FROM subqueries, any subquery
// expression, correlated evaluation under a non-nil outer env — takes the
// fully materialized path. Sharded streaming loops pin their shard bounds
// to the sequential scan's batch grid (shardStreamBounds), so per-batch
// statistics — not just results — are identical at every parallelism
// level. Results are byte-identical to the materialized path at every
// batch size and parallelism level, with the same single carve-out
// documented in parallel.go: SUM/AVG over Float columns may differ in the
// last ULP when sharded, because per-shard partial sums regroup the float
// additions (batching alone does not reorder them).

// DefaultBatchSize is the batch size callers that just want streaming
// should use: large enough to amortize per-batch overhead, small enough
// that a pipeline's working set stays cache-resident.
const DefaultBatchSize = 1024

// batchIterator is the pull interface of the streaming pipeline. next
// returns the next batch of rows, or nil when the stream is exhausted;
// batches shrink through filters and are never re-compacted, so a batch is
// only guaranteed non-empty. close releases the stream early (LIMIT
// cut-off); next after close returns nil. Iterators are single-goroutine:
// a chain is pulled only by the worker that built it.
type batchIterator interface {
	next() ([][]value.Value, error)
	close()
}

// scanIterator streams a table's rows [lo,hi) in fixed-size batches,
// pulled from the storage backend one batch at a time and charging scan
// statistics as the batches are actually pulled: rows per batch, and bytes
// either as the backend's real physical page reads (paged backends) or as
// the cumulative difference of the table's row-proportional byte prefix,
// so per-batch charges telescope to exactly t.Bytes for a full in-memory
// scan at any batch size and shard count, while an early-exited scan
// charges only what it read.
type scanIterator struct {
	st        *Stats
	t         *storage.Table
	lo, hi    int // scanned row-id range
	tableRows int
	bytes     int64 // total table heap bytes
	size      int   // batch size
	pos       int   // next row id to pull
	closed    bool
}

func newScanIterator(st *Stats, t *storage.Table, lo, hi, size int) *scanIterator {
	return &scanIterator{
		st: st, t: t, lo: lo, hi: hi, pos: lo,
		tableRows: t.NumRows(), bytes: t.Bytes, size: size,
	}
}

// bytePrefix is the scan-byte charge for the table's first n rows.
func (it *scanIterator) bytePrefix(n int) int64 {
	return it.bytes * int64(n) / int64(it.tableRows)
}

func (it *scanIterator) next() ([][]value.Value, error) {
	if it.closed || it.pos >= it.hi {
		return nil, nil
	}
	end := it.pos + it.size
	if end > it.hi {
		end = it.hi
	}
	b, phys, err := it.t.ScanRows(it.pos, end)
	if err != nil {
		return nil, err
	}
	if it.t.Paged() {
		it.st.BytesScanned += phys
	} else {
		it.st.BytesScanned += it.bytePrefix(end) - it.bytePrefix(it.pos)
	}
	it.st.RowsScanned += int64(len(b))
	it.st.RowsStreamed += int64(len(b))
	it.st.BatchesStreamed++
	it.pos = end
	return b, nil
}

func (it *scanIterator) close() { it.closed = true }

// filterIterator applies a predicate row-at-a-time within each batch,
// emitting the surviving subset (input row order preserved). Batches the
// predicate empties entirely are skipped, not emitted.
type filterIterator struct {
	in    batchIterator
	rel   *relation // column layout only; rows stay in the batches
	pred  ast.Expr
	outer *env
	c     *execCtx
}

func (it *filterIterator) next() ([][]value.Value, error) {
	for {
		b, err := it.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		var out [][]value.Value
		for _, row := range b {
			en := &env{rel: it.rel, row: row, outer: it.outer, ctx: it.c}
			ok, err := evalBool(en, it.pred)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (it *filterIterator) close() { it.in.close() }

// projectIterator evaluates the SELECT list for each row of a batch.
type projectIterator struct {
	in      batchIterator
	q       *ast.Query
	rel     *relation
	aliases map[string]ast.Expr
	outer   *env
	c       *execCtx
}

func (it *projectIterator) next() ([][]value.Value, error) {
	b, err := it.in.next()
	if err != nil || b == nil {
		return nil, err
	}
	out := make([][]value.Value, len(b))
	for i, row := range b {
		en := &env{rel: it.rel, row: row, outer: it.outer, aliases: it.aliases, ctx: it.c}
		vals, err := projectRow(en, it.q)
		if err != nil {
			return nil, err
		}
		out[i] = vals
	}
	return out, nil
}

func (it *projectIterator) close() { it.in.close() }

// dedupBatch filters b down to the rows whose dedup key is not yet in
// seen, marking the survivors. keys, when non-nil, supplies the rows'
// pre-rendered keys (keys[i] belongs to b[i]); otherwise keys render
// here. Returns the surviving rows and their keys in a fresh slice
// (never aliasing b's backing array). Every streaming dedup — the
// sequential distinctIterator, the sharded producer's local pre-dedup,
// the merger's and streamDistinct's global first-occurrence filters —
// goes through this one loop.
func dedupBatch(seen map[string]bool, b [][]value.Value, keys []string) ([][]value.Value, []string) {
	kept := b[:0:0]
	var keptKeys []string
	for i, row := range b {
		var k string
		if keys != nil {
			k = keys[i]
		} else {
			k = distinctKey(row)
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, row)
		keptKeys = append(keptKeys, k)
	}
	return kept, keptKeys
}

// distinctIterator streams DISTINCT: a seen-set over the projected rows
// emits only each row's first occurrence, batch-at-a-time — the streaming
// replacement for the materialized keep-bitmap pass (engine.distinct) on
// single-consumer pipelines. Batches the dedup empties entirely are
// skipped, like filterIterator's.
type distinctIterator struct {
	in   batchIterator
	seen map[string]bool
}

func (it *distinctIterator) next() ([][]value.Value, error) {
	if it.seen == nil {
		it.seen = make(map[string]bool)
	}
	for {
		b, err := it.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		out, _ := dedupBatch(it.seen, b, nil)
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (it *distinctIterator) close() { it.in.close() }

// lazyIterator defers building its inner iterator to the first pull, so a
// stream whose production has an expensive up-front phase (grouped
// accumulation, a top-N scan) performs no work if the consumer closes it —
// or LIMIT-0s it — before reading.
type lazyIterator struct {
	mk     func() (batchIterator, error)
	it     batchIterator
	err    error
	closed bool
}

func (l *lazyIterator) next() ([][]value.Value, error) {
	if l.err != nil || l.closed {
		return nil, l.err
	}
	if l.it == nil {
		l.it, l.err = l.mk()
		if l.err != nil {
			return nil, l.err
		}
	}
	return l.it.next()
}

func (l *lazyIterator) close() {
	l.closed = true
	if l.it != nil {
		l.it.close()
	}
}

// sliceIterator chunks an already-materialized row set into batches,
// releasing each chunk's row pointers as it is emitted so a consumed
// prefix (and the ciphertext blobs it references) is collectable before
// the stream ends.
type sliceIterator struct {
	rows [][]value.Value
	size int
	pos  int
}

func (it *sliceIterator) next() ([][]value.Value, error) {
	if it.pos >= len(it.rows) {
		return nil, nil
	}
	end := it.pos + it.size
	if end > len(it.rows) {
		end = len(it.rows)
	}
	b := make([][]value.Value, end-it.pos)
	copy(b, it.rows[it.pos:end])
	for i := it.pos; i < end; i++ {
		it.rows[i] = nil
	}
	it.pos = end
	return b, nil
}

func (it *sliceIterator) close() { it.pos = len(it.rows) }

// probeIterator expands each probe-side batch through one join step: hash
// probe against a partitioned materialized build (build != nil) or cross
// join (cross != nil). Each probe row extends with its matching build rows
// in build-side row order — exactly the materialized probe's emit order —
// but output batches are capped at the pipeline batch size: a probe row
// with a large fanout (duplicate build keys, or a cross join's whole right
// side) is emitted across as many batches as it takes, with the expansion
// position carried between next calls. The cap is what keeps a streamed
// join's wire frames and the consumer's working set batch-sized even when
// the join output is far larger than its input.
type probeIterator struct {
	in    batchIterator
	rel   *relation  // layout of the incoming (probe-side) rows
	keys  []ast.Expr // probe key expressions (hash step)
	build *joinBuild // hash step: partitioned build side
	cross *relation  // cross step: full build side
	outer *env
	c     *execCtx

	// Expansion state carried across next calls.
	batch   [][]value.Value // input batch being consumed
	bi      int             // next input row in batch
	lrow    []value.Value   // probe row whose matches are mid-emission
	matches [][]value.Value // its remaining build rows start at mi
	mi      int
}

func (it *probeIterator) next() ([][]value.Value, error) {
	target := it.c.batch
	if target <= 0 {
		target = DefaultBatchSize
	}
	var out [][]value.Value
	for {
		// Drain the in-flight expansion first.
		for it.mi < len(it.matches) {
			if len(out) >= target {
				return out, nil
			}
			rrow := it.matches[it.mi]
			it.mi++
			combined := make([]value.Value, 0, len(it.lrow)+len(rrow))
			combined = append(combined, it.lrow...)
			combined = append(combined, rrow...)
			out = append(out, combined)
		}
		if it.bi >= len(it.batch) {
			b, err := it.in.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if len(out) > 0 {
					return out, nil
				}
				return nil, nil
			}
			it.batch, it.bi = b, 0
			continue
		}
		lrow := it.batch[it.bi]
		it.bi++
		if it.cross != nil {
			it.lrow, it.matches, it.mi = lrow, it.cross.rows, 0
			continue
		}
		en := &env{rel: it.rel, row: lrow, outer: it.outer, ctx: it.c}
		key, null, err := joinKey(en, it.keys)
		if err != nil {
			return nil, err
		}
		if null {
			continue
		}
		it.lrow, it.matches, it.mi = lrow, it.build.lookup(key), 0
	}
}

func (it *probeIterator) close() { it.in.close() }

// joinStreamPlan is the shared, read-only state of one streamed join:
// the probe table (table 0 — the probe side of every step, since the
// greedy order always grows from it), the join plan, the filtered and
// materialized build sides (hash partitions or cross buffers), and the
// layouts. Once prepared, any number of workers can assemble independent
// iterator chains over disjoint probe-row ranges.
type joinStreamPlan struct {
	q      *ast.Query
	t0     *storage.Table
	plan   *joinPlan
	rels   []*relation  // rels[0] is layout-only; rows stream
	builds []*joinBuild // one per plan step; nil for cross steps
	joined *relation    // joined layout (residual/grouping evaluation)
}

// prepareJoinStream plans a multi-table q and materializes every build
// side (charging the build-side scans and filters on c, with sharded
// builds). The caller must have verified stream eligibility (batch size,
// base tables, no subqueries) and that every FROM table exists.
func (c *execCtx) prepareJoinStream(q *ast.Query, outer *env) (*joinStreamPlan, error) {
	refNames := make([]string, len(q.From))
	for i := range q.From {
		refNames[i] = q.From[i].RefName()
	}
	t0, err := c.eng.Cat.Table(q.From[0].Name)
	if err != nil {
		return nil, err
	}
	rels := make([]*relation, len(q.From))
	cols0 := make([]colInfo, len(t0.Schema.Cols))
	for i, col := range t0.Schema.Cols {
		cols0[i] = colInfo{table: refNames[0], name: col.Name}
	}
	rels[0] = &relation{cols: cols0} // layout only; rows stream
	for i := 1; i < len(q.From); i++ {
		r, err := c.execFrom(&q.From[i], outer)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}

	plan, err := planJoin(q, refNames, rels)
	if err != nil {
		return nil, err
	}
	// Build-side single-table filters apply materialized; table 0's run
	// inside the stream.
	for i := 1; i < len(rels); i++ {
		if len(plan.perTable[i]) == 0 {
			continue
		}
		filtered, err := c.filter(rels[i], ast.AndAll(plan.perTable[i]), outer)
		if err != nil {
			return nil, err
		}
		rels[i] = filtered
	}

	jp := &joinStreamPlan{q: q, t0: t0, plan: plan, rels: rels}
	cols := append([]colInfo(nil), rels[0].cols...)
	for _, st := range plan.steps {
		var build *joinBuild
		if len(st.leftKeys) > 0 {
			build, err = c.buildJoinMap(rels[st.next], st.rightKeys, outer)
			if err != nil {
				return nil, err
			}
		}
		jp.builds = append(jp.builds, build)
		cols = append(cols[:len(cols):len(cols)], rels[st.next].cols...)
	}
	jp.joined = &relation{cols: cols}
	return jp, nil
}

// chain assembles one streamed-probe pipeline over probe rows [lo,hi),
// evaluating on sc (so a shard context accumulates its own stats):
//
//	scan(t0) ─batch─▶ filter ─▶ probe₁ ─▶ … ─▶ probeₙ ─▶ residual ─▶ project
//
// The pipeline executes exactly the joinAll plan, so rows and row order
// are byte-identical to the materialized path; what changes is that the
// join output — often the largest intermediate of the query — never
// exists as a whole, and the first joined batch is available after one
// probe batch instead of after the full probe scan.
func (jp *joinStreamPlan) chain(sc *execCtx, outer *env, lo, hi int, project bool) batchIterator {
	var it batchIterator = newScanIterator(sc.stats, jp.t0, lo, hi, sc.batch)
	if len(jp.plan.perTable[0]) > 0 {
		it = &filterIterator{in: it, rel: jp.rels[0], pred: ast.AndAll(jp.plan.perTable[0]), outer: outer, c: sc}
	}
	cols := jp.rels[0].cols
	for si, st := range jp.plan.steps {
		probeLayout := &relation{cols: cols}
		if jp.builds[si] == nil {
			it = &probeIterator{in: it, rel: probeLayout, cross: jp.rels[st.next], outer: outer, c: sc}
		} else {
			it = &probeIterator{in: it, rel: probeLayout, keys: st.leftKeys, build: jp.builds[si], outer: outer, c: sc}
		}
		cols = append(cols[:len(cols):len(cols)], jp.rels[st.next].cols...)
	}
	if len(jp.plan.residual) > 0 {
		it = &filterIterator{in: it, rel: jp.joined, pred: ast.AndAll(jp.plan.residual), outer: outer, c: sc}
	}
	if project {
		it = &projectIterator{in: it, q: jp.q, rel: jp.joined, aliases: aliasMap(jp.q), outer: outer, c: sc}
	}
	return it
}

// execJoinStreamed is the batch-mode entry for multi-table queries: the
// join input streams through the probe pipeline, composing with sharding
// exactly like single-table streaming — the build sides are prepared once
// and each worker runs its own chain over a contiguous probe-row range,
// with per-shard outputs (row batches or group states) recombining in
// shard order. Grouped queries fold each joined batch straight into the
// accumulation states (the join output is never materialized); non-grouped
// queries drain with LIMIT early exit (a limit forces the one sequential
// chain, as in streamRows); DISTINCT without ORDER BY streams through the
// per-shard dedup of streamDistinct. ORDER BY shapes fall back to the
// materialized operators.
func (c *execCtx) execJoinStreamed(q *ast.Query, outer *env) (*relation, bool, bool, error) {
	for i := range q.From {
		if _, err := c.eng.Cat.Table(q.From[i].Name); err != nil {
			// Let the materialized path report the unknown table
			// consistently.
			return nil, false, false, nil
		}
	}
	grouped := c.isGrouped(q)
	if !grouped && len(q.OrderBy) > 0 {
		return nil, false, false, nil
	}
	jp, err := c.prepareJoinStream(q, outer)
	if err != nil {
		return nil, true, false, err
	}
	n := jp.t0.NumRows()
	// Eligibility already guarantees parallelSafe: outer is nil and no
	// clause contains a subquery.
	shards := c.shardCount(n)

	if grouped {
		specs := c.collectAggSpecs(q)
		groups, err := c.streamGroups(specs, n, func(sc *execCtx, gs *groupSet, lo, hi int) error {
			return sc.accumulateJoinStream(q, specs, gs, jp, outer, lo, hi)
		})
		if err != nil {
			return nil, true, false, err
		}
		out, err := c.finishGrouped(q, specs, groups, jp.joined, outer)
		return out, true, false, err
	}

	if q.Distinct {
		rows, err := c.streamDistinct(q, n, func(sc *execCtx, lo, hi int) batchIterator {
			return jp.chain(sc, outer, lo, hi, true)
		})
		if err != nil {
			return nil, true, true, err
		}
		return &relation{cols: projectionCols(q), rows: rows}, true, true, nil
	}

	if shards <= 1 || q.Limit >= 0 {
		rows, err := drainLimit(jp.chain(c, outer, 0, n, true), q.Limit)
		if err != nil {
			return nil, true, false, err
		}
		return &relation{cols: projectionCols(q), rows: rows}, true, false, nil
	}
	rows, err := c.shardedRowsBounds(shardStreamBounds(n, shards, c.batch), func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		return drainLimit(jp.chain(sc, outer, lo, hi, true), -1)
	})
	if err != nil {
		return nil, true, false, err
	}
	return &relation{cols: projectionCols(q), rows: rows}, true, false, nil
}

// accumulateJoinStream pulls one shard's join chain over probe rows
// [lo,hi) and folds each joined batch into gs.
func (c *execCtx) accumulateJoinStream(q *ast.Query, specs []aggSpec, gs *groupSet, jp *joinStreamPlan, outer *env, lo, hi int) error {
	it := jp.chain(c, outer, lo, hi, false)
	for {
		b, err := it.next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := c.accumulateRows(q, specs, gs, jp.joined, b, outer); err != nil {
			return err
		}
	}
}

// streamPipeline assembles scan → [filter] → [project] over src's rows at
// positions [lo,hi), evaluating on c (so a shard context accumulates its
// own stats). src may be the whole table or an index-restricted id list —
// the residual filter re-applies the full WHERE either way.
func (c *execCtx) streamPipeline(q *ast.Query, src *rowSource, layout *relation, aliases map[string]ast.Expr, outer *env, lo, hi int, project bool) batchIterator {
	var it batchIterator = newSourceIterator(c.stats, src, lo, hi, c.batch)
	if q.Where != nil {
		it = &filterIterator{in: it, rel: layout, pred: q.Where, outer: outer, c: c}
	}
	if project {
		it = &projectIterator{in: it, q: q, rel: layout, aliases: aliases, outer: outer, c: c}
	}
	return it
}

// drainLimit pulls a stream to completion, or until limit rows (limit < 0 =
// unlimited) have been produced — the early exit that lets LIMIT stop the
// scan partway through the table.
func drainLimit(it batchIterator, limit int) ([][]value.Value, error) {
	var out [][]value.Value
	for {
		if limit >= 0 && len(out) >= limit {
			it.close()
			return out[:limit], nil
		}
		b, err := it.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// streamBlocked reports whether any clause of q contains a subquery, which
// forces the materialized path (subquery planning memoizes state on the
// execution context; see parallelSafe).
func streamBlocked(q *ast.Query) bool {
	exprs := []ast.Expr{q.Where, q.Having}
	for _, p := range q.Projections {
		exprs = append(exprs, p.Expr)
	}
	exprs = append(exprs, q.GroupBy...)
	for _, o := range q.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e != nil && ast.HasSubquery(e) {
			return true
		}
	}
	return false
}

// tableLayout builds the column layout of one base table scanned under the
// given alias — the relation whose rows stream instead of materializing.
func tableLayout(t *storage.Table, ref string) *relation {
	cols := make([]colInfo, len(t.Schema.Cols))
	for i, col := range t.Schema.Cols {
		cols[i] = colInfo{table: ref, name: col.Name}
	}
	return &relation{cols: cols}
}

// execStreamed attempts the batch-at-a-time path for q. It reports
// handled=false when the query is not streamable (the caller then runs the
// materialized path); the relation it returns is the pre-LIMIT output,
// exactly like execGrouped/execProject return it. deduped=true means
// DISTINCT was already applied in-stream (streamDistinct), so the caller
// must skip the materialized dedup pass.
func (c *execCtx) execStreamed(q *ast.Query, outer *env) (*relation, bool, bool, error) {
	if c.batch <= 0 || outer != nil || len(q.From) == 0 || streamBlocked(q) {
		return nil, false, false, nil
	}
	for i := range q.From {
		if q.From[i].Sub != nil {
			return nil, false, false, nil
		}
	}
	if len(q.From) > 1 {
		return c.execJoinStreamed(q, outer)
	}
	f := &q.From[0]
	t, err := c.eng.Cat.Table(f.Name)
	if err != nil {
		// Let the materialized path report the unknown table consistently.
		return nil, false, false, nil
	}
	layout := tableLayout(t, f.RefName())
	// Access-path selection: the scan may restrict through an index
	// (access.go); ids are ascending, so every downstream order-sensitive
	// stage (grouped first-encounter order, DISTINCT first occurrence,
	// top-N stability) sees table order, byte-identical to the full scan.
	src := c.indexSource(q, t, f.RefName())

	if c.isGrouped(q) {
		out, err := c.execGroupedStream(q, src, layout, outer)
		return out, true, false, err
	}

	if len(q.OrderBy) == 0 && !q.Distinct {
		rows, err := c.streamProject(q, src, layout, outer)
		if err != nil {
			return nil, true, false, err
		}
		return &relation{cols: projectionCols(q), rows: rows}, true, false, nil
	}

	// DISTINCT without ORDER BY: fully streamed dedup — the seen-set
	// emission of streamDistinct replaces the materialize-then-bitmap
	// pass, with LIMIT counting deduplicated rows.
	if q.Distinct && len(q.OrderBy) == 0 {
		aliases := aliasMap(q)
		rows, err := c.streamDistinct(q, src.n(), func(sc *execCtx, lo, hi int) batchIterator {
			return sc.streamPipeline(q, src, layout, aliases, outer, lo, hi, true)
		})
		if err != nil {
			return nil, true, true, err
		}
		return &relation{cols: projectionCols(q), rows: rows}, true, true, nil
	}

	// ORDER BY ... LIMIT k without DISTINCT: streamed top-N. A bounded
	// heap over the scan→filter stream keeps only the best k rows, so the
	// full sort input is never materialized.
	if len(q.OrderBy) > 0 && q.Limit >= 0 && !q.Distinct {
		out, err := c.streamTopN(q, src, layout, outer)
		return out, true, false, err
	}

	// Mid-query fallback: ORDER BY (with or without DISTINCT) needs the
	// materialized sort. The scan→filter front of the pipeline still
	// streams; only its survivors are materialized and handed to the
	// materialized projector. The scan iterator has already charged
	// BytesScanned/RowsScanned, so the drained relation must NOT go back
	// through execFrom — that would double-count the scan.
	rows, err := c.streamRows(q, src, layout, nil, outer, false, -1)
	if err != nil {
		return nil, true, false, err
	}
	out, err := c.execProject(q, &relation{cols: layout.cols, rows: rows}, outer)
	return out, true, false, err
}

// streamDistinct drains a projecting pipeline through streaming dedup.
// Sequentially, one seen-set filters the stream inline. Sharded, each
// worker drops its own shard's re-occurrences (only a shard's first
// occurrence of a key can be globally first) and returns the surviving
// candidates with their rendered keys; the candidates then replay in shard
// order through one global seen-set, so the kept rows — and their order —
// are exactly the sequential scan's first occurrences. A LIMIT counts
// deduplicated output rows and forces the sequential drain, as in
// streamRows.
func (c *execCtx) streamDistinct(q *ast.Query, n int, mkChain func(sc *execCtx, lo, hi int) batchIterator) ([][]value.Value, error) {
	shards := c.shardCount(n)
	if shards <= 1 || q.Limit >= 0 {
		return drainLimit(&distinctIterator{in: mkChain(c, 0, n)}, q.Limit)
	}
	type part struct {
		rows [][]value.Value
		keys []string
	}
	parts, err := shardedCollectBounds(c, shardStreamBounds(n, shards, c.batch), func(sc *execCtx, lo, hi int) (part, error) {
		it := mkChain(sc, lo, hi)
		defer it.close()
		seen := make(map[string]bool)
		var p part
		for {
			b, err := it.next()
			if err != nil {
				return part{}, err
			}
			if b == nil {
				return p, nil
			}
			kept, keys := dedupBatch(seen, b, nil)
			p.rows = append(p.rows, kept...)
			p.keys = append(p.keys, keys...)
		}
	})
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out [][]value.Value
	for _, p := range parts {
		kept, _ := dedupBatch(seen, p.rows, p.keys)
		out = append(out, kept...)
	}
	return out, nil
}

// streamProject runs the fully streamed non-grouped pipeline: scan →
// filter → project, with LIMIT early exit.
func (c *execCtx) streamProject(q *ast.Query, src *rowSource, layout *relation, outer *env) ([][]value.Value, error) {
	return c.streamRows(q, src, layout, aliasMap(q), outer, true, q.Limit)
}

// streamRows drains the (optionally projecting) pipeline over the whole
// table, sharding the row range across workers when it is large enough.
// Each worker pulls batches over its own contiguous range on its own shard
// context; the per-shard outputs concatenate in shard order, so row order —
// and therefore the final result — is byte-identical to a sequential
// stream and to the materialized path. A limit forces the sequential
// drain: only the global row-prefix matters, so one early-exiting stream
// is the least work possible, whereas sharding would make every worker
// scan for up to limit rows of its own range (most of them discarded) and
// leave the charged scan stats varying with the Parallelism knob.
func (c *execCtx) streamRows(q *ast.Query, src *rowSource, layout *relation, aliases map[string]ast.Expr, outer *env, project bool, limit int) ([][]value.Value, error) {
	n := src.n()
	shards := c.shardCount(n)
	if shards <= 1 || limit >= 0 {
		return drainLimit(c.streamPipeline(q, src, layout, aliases, outer, 0, n, project), limit)
	}
	return c.shardedRowsBounds(shardStreamBounds(n, shards, c.batch), func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		return drainLimit(sc.streamPipeline(q, src, layout, aliases, outer, lo, hi, project), limit)
	})
}

// execGroupedStream feeds grouped aggregation from the scan→filter stream:
// each batch folds into the per-group accumulation states, so the filtered
// input relation is never materialized.
func (c *execCtx) execGroupedStream(q *ast.Query, src *rowSource, layout *relation, outer *env) (*relation, error) {
	specs := c.collectAggSpecs(q)
	groups, err := c.streamGroups(specs, src.n(), func(sc *execCtx, gs *groupSet, lo, hi int) error {
		return sc.accumulateStream(q, specs, gs, layout, outer, lo, hi, src)
	})
	if err != nil {
		return nil, err
	}
	return c.finishGrouped(q, specs, groups, layout, outer)
}

// streamGroups runs the sharded grouped-stream protocol over n input rows:
// acc folds one contiguous row range into a fresh groupSet on a shard
// context, and the per-shard sets merge in shard order through the same
// AggState.Merge path the materialized sharded engine uses. Callers must
// already have established parallel safety (nil outer env, subquery-free
// clauses — the streaming eligibility gate).
func (c *execCtx) streamGroups(specs []aggSpec, n int, acc func(sc *execCtx, gs *groupSet, lo, hi int) error) (*groupSet, error) {
	shards := c.shardCount(n)
	if shards <= 1 {
		gs := newGroupSet()
		if err := acc(c, gs, 0, n); err != nil {
			return nil, err
		}
		return gs, nil
	}
	parts, err := shardedCollectBounds(c, shardStreamBounds(n, shards, c.batch), func(sc *execCtx, lo, hi int) (*groupSet, error) {
		gs := newGroupSet()
		if err := acc(sc, gs, lo, hi); err != nil {
			return nil, err
		}
		return gs, nil
	})
	if err != nil {
		return nil, err
	}
	return c.mergeGroupParts(specs, parts)
}

// Streamed top-N: ORDER BY ... LIMIT k over a streamed scan keeps only
// the k best rows in a bounded heap instead of materializing and sorting
// the whole filtered input. Rows are ranked by the ORDER BY keys with the
// global scan position as the final tiebreaker, which reproduces exactly
// the stable sort + truncate of the materialized path: equal-key rows keep
// their input order. Sharded execution collects a per-shard top-k (global
// positions stay comparable across contiguous shards) and merges the
// candidates with one final k-truncated sort, so results are byte-identical
// at every shard count. Only the k winners are projected.

// topNRow is one candidate: its ORDER BY key values, the input row (still
// unprojected), and its global scan position.
type topNRow struct {
	keys []value.Value
	row  []value.Value
	seq  int
}

// topNLess is the total order of the streamed top-N: ORDER BY keys first
// (Desc flips), global scan position as tiebreaker.
func topNLess(order []ast.OrderItem, a, b *topNRow) bool {
	for i, o := range order {
		cmp := value.Compare(a.keys[i], b.keys[i])
		if cmp == 0 {
			continue
		}
		if o.Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return a.seq < b.seq
}

// topNHeap is a bounded max-heap of the k best rows seen so far; the root
// is the worst kept row, so admission is one comparison against it.
type topNHeap struct {
	order []ast.OrderItem
	k     int
	rows  []topNRow
}

// admit offers one candidate. A full heap replaces its root only when the
// candidate ranks strictly before it.
func (h *topNHeap) admit(cand topNRow) {
	if h.k <= 0 {
		return
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, cand)
		h.siftUp(len(h.rows) - 1)
		return
	}
	if topNLess(h.order, &cand, &h.rows[0]) {
		h.rows[0] = cand
		h.siftDown(0)
	}
}

func (h *topNHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !topNLess(h.order, &h.rows[p], &h.rows[i]) {
			return
		}
		h.rows[p], h.rows[i] = h.rows[i], h.rows[p]
		i = p
	}
}

func (h *topNHeap) siftDown(i int) {
	n := len(h.rows)
	for {
		worst := i
		for _, ch := range []int{2*i + 1, 2*i + 2} {
			if ch < n && topNLess(h.order, &h.rows[worst], &h.rows[ch]) {
				worst = ch
			}
		}
		if worst == i {
			return
		}
		h.rows[i], h.rows[worst] = h.rows[worst], h.rows[i]
		i = worst
	}
}

// streamTopN runs the bounded-heap ORDER BY ... LIMIT pipeline. The scan
// streams (charging stats per batch) and filtering happens inline so each
// surviving row keeps its global position for the stability tiebreak.
func (c *execCtx) streamTopN(q *ast.Query, src *rowSource, layout *relation, outer *env) (*relation, error) {
	k := q.Limit
	n := src.n()
	aliases := aliasMap(q)
	collect := func(sc *execCtx, lo, hi int) ([]topNRow, error) {
		h := &topNHeap{order: q.OrderBy, k: k}
		it := newSourceIterator(sc.stats, src, lo, hi, sc.batch)
		pos := lo
		for {
			b, err := it.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return h.rows, nil
			}
			for _, row := range b {
				// The tiebreaker is the global table row id, not the scan
				// position: an index-restricted source skips rows but keeps
				// id order, so stability matches the full scan exactly.
				seq := src.rowID(pos)
				pos++
				if q.Where != nil {
					// Filter env carries no aliases, matching filterIterator
					// (WHERE cannot reference SELECT aliases).
					fen := &env{rel: layout, row: row, outer: outer, ctx: sc}
					ok, err := evalBool(fen, q.Where)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				if k == 0 {
					continue // LIMIT 0 still scans (stats match), keeps nothing
				}
				en := &env{rel: layout, row: row, outer: outer, aliases: aliases, ctx: sc}
				keys := make([]value.Value, len(q.OrderBy))
				for i, o := range q.OrderBy {
					v, err := eval(en, o.Expr)
					if err != nil {
						return nil, err
					}
					keys[i] = v
				}
				h.admit(topNRow{keys: keys, row: row, seq: seq})
			}
		}
	}

	shards := c.shardCount(n)
	var cands []topNRow
	if shards <= 1 {
		var err error
		cands, err = collect(c, 0, n)
		if err != nil {
			return nil, err
		}
	} else {
		parts, err := shardedCollectBounds(c, shardStreamBounds(n, shards, c.batch), collect)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			cands = append(cands, p...)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return topNLess(q.OrderBy, &cands[i], &cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	rows := make([][]value.Value, len(cands))
	for i := range cands {
		en := &env{rel: layout, row: cands[i].row, outer: outer, aliases: aliases, ctx: c}
		vals, err := projectRow(en, q)
		if err != nil {
			return nil, err
		}
		rows[i] = vals
	}
	return &relation{cols: projectionCols(q), rows: rows}, nil
}

// accumulateStream pulls the scan→filter pipeline over [lo,hi) and folds
// each batch into gs.
func (c *execCtx) accumulateStream(q *ast.Query, specs []aggSpec, gs *groupSet, layout *relation, outer *env, lo, hi int, src *rowSource) error {
	it := c.streamPipeline(q, src, layout, nil, outer, lo, hi, false)
	for {
		b, err := it.next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := c.accumulateRows(q, specs, gs, layout, b, outer); err != nil {
			return err
		}
	}
}
