package engine

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/storage"
	"repro/internal/value"
)

// Streaming batch-at-a-time execution. When Engine.BatchSize > 0, queries
// whose source is a single base-table scan run through a pull-based
// (Volcano-style, vectorized) pipeline of fixed-size row batches instead of
// materializing each operator's full output:
//
//	scan ──batch──▶ filter ──batch──▶ project ──batch──▶ sink
//
// Only the final result is materialized; the filtered intermediate that the
// materialized path allocates never exists. Grouped aggregation consumes
// the scan→filter stream directly — each batch folds into the per-group
// AggState accumulators (the same states sharded execution merges with
// AggState.Merge) — so a TPC-H-Q1-shaped scan streams end to end, crypto
// UDFs included. LIMIT without ORDER BY stops pulling as soon as enough
// rows have been produced, cutting the scan (and its charged I/O bytes)
// short.
//
// Streaming composes with sharded execution: each worker runs its own
// iterator chain over its contiguous row range, pulling and pushing batches
// independently, and the per-shard outputs (row batches or group states)
// recombine in shard order exactly as the materialized sharded path does.
// Workers are joined before the query returns — early exit can never leak a
// goroutine, because no iterator owns one.
//
// Operators with no streaming form fall back to the materialized engine:
// joins, DISTINCT, ORDER BY, and (correlated) subqueries. ORDER BY and
// DISTINCT over a single-table scan still stream the scan→filter front of
// the pipeline and materialize only the survivors ("partial" streaming);
// everything else — multi-table FROM, FROM subqueries, any subquery
// expression, correlated evaluation under a non-nil outer env — takes the
// fully materialized path. Results are byte-identical to the materialized
// path at every batch size and parallelism level, with the same single
// carve-out documented in parallel.go: SUM/AVG over Float columns may
// differ in the last ULP when sharded, because per-shard partial sums
// regroup the float additions (batching alone does not reorder them).

// DefaultBatchSize is the batch size callers that just want streaming
// should use: large enough to amortize per-batch overhead, small enough
// that a pipeline's working set stays cache-resident.
const DefaultBatchSize = 1024

// batchIterator is the pull interface of the streaming pipeline. next
// returns the next batch of rows, or nil when the stream is exhausted;
// batches shrink through filters and are never re-compacted, so a batch is
// only guaranteed non-empty. close releases the stream early (LIMIT
// cut-off); next after close returns nil. Iterators are single-goroutine:
// a chain is pulled only by the worker that built it.
type batchIterator interface {
	next() ([][]value.Value, error)
	close()
}

// scanIterator streams a table's rows [lo,hi) in fixed-size batches,
// charging scan statistics as the batches are actually pulled: rows
// per batch, and bytes as the cumulative difference of the table's
// row-proportional byte prefix, so per-batch charges telescope to exactly
// t.Bytes for a full scan at any batch size and shard count, while an
// early-exited scan charges only what it read.
type scanIterator struct {
	st        *Stats
	rows      [][]value.Value // the table's rows, restricted to [lo,hi)
	off       int             // global index of rows[0] in the table
	tableRows int
	bytes     int64 // total table heap bytes
	size      int   // batch size
	pos       int
	closed    bool
}

func newScanIterator(st *Stats, t *storage.Table, lo, hi, size int) *scanIterator {
	return &scanIterator{
		st: st, rows: t.Rows[lo:hi], off: lo,
		tableRows: len(t.Rows), bytes: t.Bytes, size: size,
	}
}

// bytePrefix is the scan-byte charge for the table's first n rows.
func (it *scanIterator) bytePrefix(n int) int64 {
	return it.bytes * int64(n) / int64(it.tableRows)
}

func (it *scanIterator) next() ([][]value.Value, error) {
	if it.closed || it.pos >= len(it.rows) {
		return nil, nil
	}
	end := it.pos + it.size
	if end > len(it.rows) {
		end = len(it.rows)
	}
	b := it.rows[it.pos:end]
	it.st.BytesScanned += it.bytePrefix(it.off+end) - it.bytePrefix(it.off+it.pos)
	it.st.RowsScanned += int64(len(b))
	it.st.RowsStreamed += int64(len(b))
	it.st.BatchesStreamed++
	it.pos = end
	return b, nil
}

func (it *scanIterator) close() { it.closed = true }

// filterIterator applies a predicate row-at-a-time within each batch,
// emitting the surviving subset (input row order preserved). Batches the
// predicate empties entirely are skipped, not emitted.
type filterIterator struct {
	in    batchIterator
	rel   *relation // column layout only; rows stay in the batches
	pred  ast.Expr
	outer *env
	c     *execCtx
}

func (it *filterIterator) next() ([][]value.Value, error) {
	for {
		b, err := it.in.next()
		if err != nil || b == nil {
			return nil, err
		}
		var out [][]value.Value
		for _, row := range b {
			en := &env{rel: it.rel, row: row, outer: it.outer, ctx: it.c}
			ok, err := evalBool(en, it.pred)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (it *filterIterator) close() { it.in.close() }

// projectIterator evaluates the SELECT list for each row of a batch.
type projectIterator struct {
	in      batchIterator
	q       *ast.Query
	rel     *relation
	aliases map[string]ast.Expr
	outer   *env
	c       *execCtx
}

func (it *projectIterator) next() ([][]value.Value, error) {
	b, err := it.in.next()
	if err != nil || b == nil {
		return nil, err
	}
	out := make([][]value.Value, len(b))
	for i, row := range b {
		en := &env{rel: it.rel, row: row, outer: it.outer, aliases: it.aliases, ctx: it.c}
		vals, err := projectRow(en, it.q)
		if err != nil {
			return nil, err
		}
		out[i] = vals
	}
	return out, nil
}

func (it *projectIterator) close() { it.in.close() }

// streamPipeline assembles scan → [filter] → [project] over t's rows
// [lo,hi), evaluating on c (so a shard context accumulates its own stats).
func (c *execCtx) streamPipeline(q *ast.Query, t *storage.Table, layout *relation, aliases map[string]ast.Expr, outer *env, lo, hi int, project bool) batchIterator {
	var it batchIterator = newScanIterator(c.stats, t, lo, hi, c.batch)
	if q.Where != nil {
		it = &filterIterator{in: it, rel: layout, pred: q.Where, outer: outer, c: c}
	}
	if project {
		it = &projectIterator{in: it, q: q, rel: layout, aliases: aliases, outer: outer, c: c}
	}
	return it
}

// drainLimit pulls a stream to completion, or until limit rows (limit < 0 =
// unlimited) have been produced — the early exit that lets LIMIT stop the
// scan partway through the table.
func drainLimit(it batchIterator, limit int) ([][]value.Value, error) {
	var out [][]value.Value
	for {
		if limit >= 0 && len(out) >= limit {
			it.close()
			return out[:limit], nil
		}
		b, err := it.next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// streamBlocked reports whether any clause of q contains a subquery, which
// forces the materialized path (subquery planning memoizes state on the
// execution context; see parallelSafe).
func streamBlocked(q *ast.Query) bool {
	exprs := []ast.Expr{q.Where, q.Having}
	for _, p := range q.Projections {
		exprs = append(exprs, p.Expr)
	}
	exprs = append(exprs, q.GroupBy...)
	for _, o := range q.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e != nil && ast.HasSubquery(e) {
			return true
		}
	}
	return false
}

// execStreamed attempts the batch-at-a-time path for q. It reports
// handled=false when the query is not streamable (the caller then runs the
// materialized path); the relation it returns is the pre-DISTINCT,
// pre-LIMIT output, exactly like execGrouped/execProject return it.
func (c *execCtx) execStreamed(q *ast.Query, outer *env) (*relation, bool, error) {
	if c.batch <= 0 || outer != nil || len(q.From) != 1 || q.From[0].Sub != nil || streamBlocked(q) {
		return nil, false, nil
	}
	f := &q.From[0]
	t, err := c.eng.Cat.Table(f.Name)
	if err != nil {
		// Let the materialized path report the unknown table consistently.
		return nil, false, nil
	}
	cols := make([]colInfo, len(t.Schema.Cols))
	for i, col := range t.Schema.Cols {
		cols[i] = colInfo{table: f.RefName(), name: col.Name}
	}
	layout := &relation{cols: cols}

	if c.isGrouped(q) {
		out, err := c.execGroupedStream(q, t, layout, outer)
		return out, true, err
	}

	if len(q.OrderBy) == 0 && !q.Distinct {
		rows, err := c.streamProject(q, t, layout, outer)
		if err != nil {
			return nil, true, err
		}
		return &relation{cols: projectionCols(q), rows: rows}, true, nil
	}

	// ORDER BY ... LIMIT k without DISTINCT: streamed top-N. A bounded
	// heap over the scan→filter stream keeps only the best k rows, so the
	// full sort input is never materialized.
	if len(q.OrderBy) > 0 && q.Limit >= 0 && !q.Distinct {
		out, err := c.streamTopN(q, t, layout, outer)
		return out, true, err
	}

	// Mid-query fallback: ORDER BY / DISTINCT need a materialized operator.
	// The scan→filter front of the pipeline still streams; only its
	// survivors are materialized and handed to the materialized projector.
	// The scan iterator has already charged BytesScanned/RowsScanned, so
	// the drained relation must NOT go back through execFrom — that would
	// double-count the scan.
	rows, err := c.streamRows(q, t, layout, nil, outer, false, -1)
	if err != nil {
		return nil, true, err
	}
	out, err := c.execProject(q, &relation{cols: cols, rows: rows}, outer)
	return out, true, err
}

// streamProject runs the fully streamed non-grouped pipeline: scan →
// filter → project, with LIMIT early exit.
func (c *execCtx) streamProject(q *ast.Query, t *storage.Table, layout *relation, outer *env) ([][]value.Value, error) {
	return c.streamRows(q, t, layout, aliasMap(q), outer, true, q.Limit)
}

// streamRows drains the (optionally projecting) pipeline over the whole
// table, sharding the row range across workers when it is large enough.
// Each worker pulls batches over its own contiguous range on its own shard
// context; the per-shard outputs concatenate in shard order, so row order —
// and therefore the final result — is byte-identical to a sequential
// stream and to the materialized path. A limit forces the sequential
// drain: only the global row-prefix matters, so one early-exiting stream
// is the least work possible, whereas sharding would make every worker
// scan for up to limit rows of its own range (most of them discarded) and
// leave the charged scan stats varying with the Parallelism knob.
func (c *execCtx) streamRows(q *ast.Query, t *storage.Table, layout *relation, aliases map[string]ast.Expr, outer *env, project bool, limit int) ([][]value.Value, error) {
	n := len(t.Rows)
	shards := c.shardCount(n)
	if shards <= 1 || limit >= 0 {
		return drainLimit(c.streamPipeline(q, t, layout, aliases, outer, 0, n, project), limit)
	}
	return c.shardedRows(shards, n, func(sc *execCtx, lo, hi int) ([][]value.Value, error) {
		return drainLimit(sc.streamPipeline(q, t, layout, aliases, outer, lo, hi, project), limit)
	})
}

// execGroupedStream feeds grouped aggregation from the scan→filter stream:
// each batch folds into the per-group accumulation states, so the filtered
// input relation is never materialized. Sharded execution accumulates one
// groupSet per worker range and merges them in shard order through the
// same AggState.Merge path the materialized sharded engine uses.
func (c *execCtx) execGroupedStream(q *ast.Query, t *storage.Table, layout *relation, outer *env) (*relation, error) {
	specs := c.collectAggSpecs(q)
	n := len(t.Rows)
	// Eligibility already guarantees parallelSafe: outer is nil and no
	// clause contains a subquery.
	shards := c.shardCount(n)
	var groups *groupSet
	if shards <= 1 {
		gs := newGroupSet()
		if err := c.accumulateStream(q, specs, gs, layout, outer, 0, n, t); err != nil {
			return nil, err
		}
		groups = gs
	} else {
		parts, err := shardedCollect(c, shards, n, func(sc *execCtx, lo, hi int) (*groupSet, error) {
			gs := newGroupSet()
			if err := sc.accumulateStream(q, specs, gs, layout, outer, lo, hi, t); err != nil {
				return nil, err
			}
			return gs, nil
		})
		if err != nil {
			return nil, err
		}
		groups, err = c.mergeGroupParts(specs, parts)
		if err != nil {
			return nil, err
		}
	}
	return c.finishGrouped(q, specs, groups, layout, outer)
}

// Streamed top-N: ORDER BY ... LIMIT k over a streamed scan keeps only
// the k best rows in a bounded heap instead of materializing and sorting
// the whole filtered input. Rows are ranked by the ORDER BY keys with the
// global scan position as the final tiebreaker, which reproduces exactly
// the stable sort + truncate of the materialized path: equal-key rows keep
// their input order. Sharded execution collects a per-shard top-k (global
// positions stay comparable across contiguous shards) and merges the
// candidates with one final k-truncated sort, so results are byte-identical
// at every shard count. Only the k winners are projected.

// topNRow is one candidate: its ORDER BY key values, the input row (still
// unprojected), and its global scan position.
type topNRow struct {
	keys []value.Value
	row  []value.Value
	seq  int
}

// topNLess is the total order of the streamed top-N: ORDER BY keys first
// (Desc flips), global scan position as tiebreaker.
func topNLess(order []ast.OrderItem, a, b *topNRow) bool {
	for i, o := range order {
		cmp := value.Compare(a.keys[i], b.keys[i])
		if cmp == 0 {
			continue
		}
		if o.Desc {
			return cmp > 0
		}
		return cmp < 0
	}
	return a.seq < b.seq
}

// topNHeap is a bounded max-heap of the k best rows seen so far; the root
// is the worst kept row, so admission is one comparison against it.
type topNHeap struct {
	order []ast.OrderItem
	k     int
	rows  []topNRow
}

// admit offers one candidate. A full heap replaces its root only when the
// candidate ranks strictly before it.
func (h *topNHeap) admit(cand topNRow) {
	if h.k <= 0 {
		return
	}
	if len(h.rows) < h.k {
		h.rows = append(h.rows, cand)
		h.siftUp(len(h.rows) - 1)
		return
	}
	if topNLess(h.order, &cand, &h.rows[0]) {
		h.rows[0] = cand
		h.siftDown(0)
	}
}

func (h *topNHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !topNLess(h.order, &h.rows[p], &h.rows[i]) {
			return
		}
		h.rows[p], h.rows[i] = h.rows[i], h.rows[p]
		i = p
	}
}

func (h *topNHeap) siftDown(i int) {
	n := len(h.rows)
	for {
		worst := i
		for _, ch := range []int{2*i + 1, 2*i + 2} {
			if ch < n && topNLess(h.order, &h.rows[worst], &h.rows[ch]) {
				worst = ch
			}
		}
		if worst == i {
			return
		}
		h.rows[i], h.rows[worst] = h.rows[worst], h.rows[i]
		i = worst
	}
}

// streamTopN runs the bounded-heap ORDER BY ... LIMIT pipeline. The scan
// streams (charging stats per batch) and filtering happens inline so each
// surviving row keeps its global position for the stability tiebreak.
func (c *execCtx) streamTopN(q *ast.Query, t *storage.Table, layout *relation, outer *env) (*relation, error) {
	k := q.Limit
	n := len(t.Rows)
	aliases := aliasMap(q)
	collect := func(sc *execCtx, lo, hi int) ([]topNRow, error) {
		h := &topNHeap{order: q.OrderBy, k: k}
		it := newScanIterator(sc.stats, t, lo, hi, sc.batch)
		pos := lo
		for {
			b, err := it.next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				return h.rows, nil
			}
			for _, row := range b {
				seq := pos
				pos++
				if q.Where != nil {
					// Filter env carries no aliases, matching filterIterator
					// (WHERE cannot reference SELECT aliases).
					fen := &env{rel: layout, row: row, outer: outer, ctx: sc}
					ok, err := evalBool(fen, q.Where)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				if k == 0 {
					continue // LIMIT 0 still scans (stats match), keeps nothing
				}
				en := &env{rel: layout, row: row, outer: outer, aliases: aliases, ctx: sc}
				keys := make([]value.Value, len(q.OrderBy))
				for i, o := range q.OrderBy {
					v, err := eval(en, o.Expr)
					if err != nil {
						return nil, err
					}
					keys[i] = v
				}
				h.admit(topNRow{keys: keys, row: row, seq: seq})
			}
		}
	}

	shards := c.shardCount(n)
	var cands []topNRow
	if shards <= 1 {
		var err error
		cands, err = collect(c, 0, n)
		if err != nil {
			return nil, err
		}
	} else {
		parts, err := shardedCollect(c, shards, n, collect)
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			cands = append(cands, p...)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return topNLess(q.OrderBy, &cands[i], &cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	rows := make([][]value.Value, len(cands))
	for i := range cands {
		en := &env{rel: layout, row: cands[i].row, outer: outer, aliases: aliases, ctx: c}
		vals, err := projectRow(en, q)
		if err != nil {
			return nil, err
		}
		rows[i] = vals
	}
	return &relation{cols: projectionCols(q), rows: rows}, nil
}

// accumulateStream pulls the scan→filter pipeline over [lo,hi) and folds
// each batch into gs.
func (c *execCtx) accumulateStream(q *ast.Query, specs []aggSpec, gs *groupSet, layout *relation, outer *env, lo, hi int, t *storage.Table) error {
	it := c.streamPipeline(q, t, layout, nil, outer, lo, hi, false)
	for {
		b, err := it.next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := c.accumulateRows(q, specs, gs, layout, b, outer); err != nil {
			return err
		}
	}
}
