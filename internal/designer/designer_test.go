package designer

import (
	"testing"

	"repro/internal/enc"
	"repro/internal/netsim"
	"repro/internal/planner"
	"repro/internal/tpch"
)

func setup(t testing.TB) (*Workload, *enc.KeyStore, *planner.CostModel, *tpchCat) {
	t.Helper()
	cat, err := tpch.Generate(0.001, 5)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := enc.NewKeyStore([]byte("designer-test"), 256)
	if err != nil {
		t.Fatal(err)
	}
	cost := planner.DefaultCostModel(netsim.Default())
	labeled := map[string]string{
		"Q01": tpch.Queries[1],
		"Q03": tpch.Queries[3],
		"Q06": tpch.Queries[6],
		"Q18": tpch.Queries[18],
	}
	w, err := ParseWorkload(labeled)
	if err != nil {
		t.Fatal(err)
	}
	return w, ks, cost, &tpchCat{cat}
}

type tpchCat struct{ cat catalog }

type catalog = interface {
	Names() []string
	TotalBytes() int64
}

func TestUnconstrainedDesign(t *testing.T) {
	w, ks, cost, _ := setup(t)
	cat, _ := tpch.Generate(0.001, 5)
	res, err := Run(cat, w, ks, cost, MonomiOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Design.Items) == 0 {
		t.Fatal("empty design")
	}
	schemes := map[enc.Scheme]int{}
	precomp := 0
	for _, it := range res.Design.Items {
		schemes[it.Scheme]++
		if it.IsPrecomputed() {
			precomp++
		}
	}
	if schemes[enc.DET] == 0 || schemes[enc.OPE] == 0 {
		t.Errorf("schemes = %v", schemes)
	}
	if precomp == 0 {
		t.Error("Q1's aggregates need precomputed expressions")
	}
	if len(res.PerQuery) != 4 {
		t.Errorf("per-query = %d", len(res.PerQuery))
	}
	if res.Vars == 0 || res.Constraints == 0 {
		t.Error("ILP accounting missing")
	}
	// Join groups must make o_orderkey/l_orderkey compatible.
	o, ok1 := res.Design.Find("orders", "o_orderkey", enc.DET)
	l, ok2 := res.Design.Find("lineitem", "l_orderkey", enc.DET)
	if !ok1 || !ok2 || o.KeyLabel() != l.KeyLabel() {
		t.Error("orderkey join group not shared")
	}
}

func TestSpaceBudgetShrinksDesign(t *testing.T) {
	w, ks, cost, _ := setup(t)
	catA, _ := tpch.Generate(0.001, 5)
	optsBig := MonomiOptions()
	optsBig.SpaceBudget = 2.0
	big, err := Run(catA, w, ks, cost, optsBig)
	if err != nil {
		t.Fatal(err)
	}
	catB, _ := tpch.Generate(0.001, 5)
	optsSmall := MonomiOptions()
	optsSmall.SpaceBudget = 1.05
	small, err := Run(catB, w, ks, cost, optsSmall)
	if err != nil {
		t.Fatal(err)
	}
	if small.EstBytes > big.EstBytes {
		t.Errorf("tighter budget produced a larger design: %v > %v", small.EstBytes, big.EstBytes)
	}
	if small.EstBytes > 1.10*small.PlainBytes {
		t.Errorf("S=1.05 design estimated at %.2fx plaintext", small.EstBytes/small.PlainBytes)
	}
	// Cost can only get worse as the budget tightens.
	var costBig, costSmall float64
	for i := range big.PerQuery {
		costBig += big.PerQuery[i].EstCost
		costSmall += small.PerQuery[i].EstCost
	}
	if costSmall+1e-9 < costBig {
		t.Errorf("tighter budget should not be cheaper: %v < %v", costSmall, costBig)
	}
}

func TestILPBeatsSpaceGreedy(t *testing.T) {
	w, ks, cost, _ := setup(t)
	budget := 1.15
	catA, _ := tpch.Generate(0.001, 5)
	ilpOpts := MonomiOptions()
	ilpOpts.SpaceBudget = budget
	ilpRes, err := Run(catA, w, ks, cost, ilpOpts)
	if err != nil {
		t.Fatal(err)
	}
	catB, _ := tpch.Generate(0.001, 5)
	sgOpts := MonomiOptions()
	sgOpts.SpaceBudget = budget
	sgOpts.SpaceGreedy = true
	sgRes, err := Run(catB, w, ks, cost, sgOpts)
	if err != nil {
		t.Fatal(err)
	}
	var ilpCost, sgCost float64
	for i := range ilpRes.PerQuery {
		ilpCost += ilpRes.PerQuery[i].EstCost
		sgCost += sgRes.PerQuery[i].EstCost
	}
	if ilpCost > sgCost+1e-9 {
		t.Errorf("ILP (%v) must not be worse than Space-Greedy (%v)", ilpCost, sgCost)
	}
}

func TestCryptDBModeExcludesPrecomputation(t *testing.T) {
	w, ks, cost, _ := setup(t)
	cat, _ := tpch.Generate(0.001, 5)
	opts := Options{AllItems: true, NoPrecomputation: true, OnionBaseline: true}
	res, err := Run(cat, w, ks, cost, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Design.Items {
		if it.IsPrecomputed() {
			t.Fatalf("precomputed item %s in CryptDB mode", it.Key())
		}
	}
	// Onion baseline: every column keeps an RND copy.
	rnd := 0
	for _, it := range res.Design.Items {
		if it.Scheme == enc.RND {
			rnd++
		}
	}
	if rnd < 60 {
		t.Errorf("onion baseline should cover all columns with RND, got %d", rnd)
	}
}

func TestDowngradeUnusedDET(t *testing.T) {
	cat, _ := tpch.Generate(0.001, 5)
	ks, _ := enc.NewKeyStore([]byte("k"), 256)
	ctx := planner.NewContext(cat, &enc.Design{}, ks, planner.DefaultCostModel(netsim.Default()))

	d := &enc.Design{}
	used := enc.ColumnItem("nation", "n_name", enc.DET, 3)
	unused := enc.ColumnItem("nation", "n_comment", enc.DET, 3)
	d.Add(used)
	d.Add(unused)
	out := downgradeUnusedDET(d, map[string]bool{used.Key(): true}, ctx, 1e12)
	if _, ok := out.Find("nation", "n_name", enc.DET); !ok {
		t.Error("used DET must survive")
	}
	if _, ok := out.Find("nation", "n_comment", enc.DET); ok {
		t.Error("unused DET must downgrade")
	}
	if _, ok := out.Find("nation", "n_comment", enc.RND); !ok {
		t.Error("downgraded column must keep an RND copy")
	}
	// With no spare space, nothing downgrades.
	kept := downgradeUnusedDET(d, map[string]bool{used.Key(): true}, ctx, 0)
	if _, ok := kept.Find("nation", "n_comment", enc.DET); !ok {
		t.Error("no spare space: DET must be kept")
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	if _, err := ParseWorkload(map[string]string{"bad": "SELECT FROM"}); err == nil {
		t.Error("bad SQL must fail")
	}
	w, err := ParseWorkload(map[string]string{"b": "SELECT 1 FROM t", "a": "SELECT 2 FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Labels[0] != "a" || w.Labels[1] != "b" {
		t.Errorf("labels must be sorted: %v", w.Labels)
	}
}

func TestInfeasibleBudget(t *testing.T) {
	w, ks, cost, _ := setup(t)
	cat, _ := tpch.Generate(0.001, 5)
	opts := MonomiOptions()
	opts.SpaceBudget = 0.01 // below even the DET baseline
	if _, err := Run(cat, w, ks, cost, opts); err == nil {
		t.Error("impossible budget should fail")
	}
}
