// Package designer implements MONOMI's physical database designer (§6):
// given a representative query workload and data statistics, it chooses the
// set of encrypted ⟨value, scheme⟩ columns to materialize on the untrusted
// server — unconstrained (union of each query's best plan's items, §6.2) or
// under a server space budget S via the ILP formulation (§6.5), with the
// paper's Space-Greedy heuristic as a baseline (§8.6).
package designer

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/ast"
	"repro/internal/enc"
	"repro/internal/ilp"
	"repro/internal/planner"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Options configures a designer run.
type Options struct {
	// SpaceBudget is the paper's S factor (total encrypted size ≤ S ×
	// plaintext size); 0 disables the constraint.
	SpaceBudget float64
	// SpaceGreedy replaces the ILP with the §8.6 baseline: start from the
	// unconstrained design and delete the largest column until it fits.
	SpaceGreedy bool
	// NoPrecomputation restricts the design to encryptions of base columns
	// (the CryptDB+Client configuration: no §5.1 precomputed expressions).
	NoPrecomputation bool
	// GroupedAddition and MultiRowPacking select the §5.2/§5.3 Paillier
	// layout. CryptDB+Client disables both (2,048-bit ciphertext per value).
	GroupedAddition bool
	MultiRowPacking bool
	// AllItems skips plan-driven selection and materializes every
	// candidate item (the Execution-Greedy configuration of §8.3).
	AllItems bool
	// OnionBaseline stores every column under RND + DET (+OPE for ordered
	// types), CryptDB's onion model. The default (false) is MONOMI's
	// security-conscious baseline: RND everywhere, with weaker schemes
	// materialized only where a query needs them — which is what makes the
	// paper's Table 3 census mostly RND/HOM/SEARCH.
	OnionBaseline bool
}

// MonomiOptions are the full-featured defaults the paper's MONOMI bars use.
func MonomiOptions() Options {
	return Options{GroupedAddition: true, MultiRowPacking: true}
}

// QueryPlanInfo records the designer's per-query decision.
type QueryPlanInfo struct {
	Label    string
	EstCost  float64 // seconds, §6.4 model
	NumCands int
	Items    []enc.Item // BestSet_i
}

// Result is a completed design.
type Result struct {
	Design  *enc.Design
	Context *planner.Context // planning context bound to the final design

	PerQuery []QueryPlanInfo

	// ILP statistics (§8.1 reports 713 variables / 612 constraints).
	Vars, Constraints, Nodes int

	PlainBytes    float64
	BaselineBytes float64
	EstBytes      float64 // estimated encrypted footprint of the design
	Elapsed       time.Duration
}

// Workload is a set of labeled queries (parameters already bound).
type Workload struct {
	Labels  []string
	Queries []*ast.Query
}

// ParseWorkload builds a workload from SQL texts.
func ParseWorkload(labeled map[string]string) (*Workload, error) {
	w := &Workload{}
	labels := make([]string, 0, len(labeled))
	for l := range labeled {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		q, err := sqlparser.Parse(labeled[l])
		if err != nil {
			return nil, fmt.Errorf("designer: query %s: %w", l, err)
		}
		w.Labels = append(w.Labels, l)
		w.Queries = append(w.Queries, q)
	}
	return w, nil
}

// Run executes the designer over a plaintext catalog and workload.
func Run(cat *storage.Catalog, w *Workload, ks *enc.KeyStore, cost *planner.CostModel, opts Options) (*Result, error) {
	start := time.Now()
	base := planner.NewContext(cat, &enc.Design{}, ks, cost)

	// Prepare queries and infer join groups from their equi-joins.
	prepared := make([]*ast.Query, len(w.Queries))
	for i, q := range w.Queries {
		p, err := planner.Prepare(q, nil)
		if err != nil {
			return nil, fmt.Errorf("designer: prepare %s: %w", w.Labels[i], err)
		}
		prepared[i] = p
	}
	base.JoinGroups = planner.BuildJoinGroups(base, prepared)

	// Baseline: every column gets a decryptable encryption so any residual
	// can fetch it — RND by default (no leakage), or CryptDB onions.
	baseline := BaselineDesign(cat, base.JoinGroups, opts.OnionBaseline)

	// Candidate items from every query's units.
	full := &enc.Design{
		GroupedAddition: opts.GroupedAddition,
		MultiRowPacking: opts.MultiRowPacking,
	}
	full.Merge(baseline)
	unitsPer := make([][]planner.Unit, len(prepared))
	for i, q := range prepared {
		units, err := base.ExtractUnits(q)
		if err != nil {
			return nil, fmt.Errorf("designer: units %s: %w", w.Labels[i], err)
		}
		if opts.NoPrecomputation {
			units = filterPrecomputed(units)
		}
		unitsPer[i] = units
		for _, u := range units {
			for _, it := range u.Items {
				full.Add(it)
			}
		}
	}

	res := &Result{PlainBytes: float64(cat.TotalBytes())}
	ctxFull := base.WithDesign(full)
	res.BaselineBytes = designBytes(base.WithDesign(withFlags(baseline, opts)), cat)

	if opts.AllItems {
		design := full
		if !opts.OnionBaseline {
			used := make(map[string]bool)
			ctxAll := base.WithDesign(full)
			for _, q := range prepared {
				if plan, err := ctxAll.Generate(q); err == nil {
					for _, it := range plan.UsedItems {
						used[it.Key()] = true
					}
				}
			}
			design = downgradeUnusedDET(design, used, ctxAll, math.Inf(1))
		}
		res.Design = design
		res.Context = base.WithDesign(design)
		res.EstBytes = designBytes(res.Context, cat)
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Per-query candidates against the full design.
	type candSet struct {
		cands []planner.Candidate
	}
	candsPer := make([]candSet, len(prepared))
	for i, q := range prepared {
		cands := ctxFull.Candidates(q, unitsPer[i])
		if len(cands) == 0 {
			return nil, fmt.Errorf("designer: no feasible candidate for %s", w.Labels[i])
		}
		candsPer[i] = candSet{cands: cands}
	}

	// Global index of non-baseline items.
	itemIdx := make(map[string]int)
	var items []enc.Item
	indexOf := func(it enc.Item) int {
		k := it.Key()
		if idx, ok := itemIdx[k]; ok {
			return idx
		}
		itemIdx[k] = len(items)
		items = append(items, it)
		return len(items) - 1
	}
	baselineKeys := make(map[string]bool)
	for _, it := range baseline.Items {
		baselineKeys[it.Key()] = true
	}

	prob := &ilp.Problem{}
	for i := range prepared {
		var cands []ilp.Candidate
		for _, c := range candsPer[i].cands {
			var need []int
			seen := map[int]bool{}
			for _, u := range c.Units {
				for _, it := range u.Items {
					if baselineKeys[it.Key()] {
						continue
					}
					idx := indexOf(it)
					if !seen[idx] {
						seen[idx] = true
						need = append(need, idx)
					}
				}
			}
			cands = append(cands, ilp.Candidate{Cost: c.Plan.EstTotal(), Items: need})
		}
		prob.Candidates = append(prob.Candidates, cands)
	}
	prob.Sizes = make([]float64, len(items))
	for k := range items {
		prob.Sizes[k] = itemBytes(ctxFull, &items[k], opts)
	}

	chosen := make([]int, len(prepared))
	switch {
	case opts.SpaceBudget <= 0:
		// Unconstrained §6.2: each query's cheapest candidate.
		for i := range prob.Candidates {
			bestJ, bestC := 0, math.Inf(1)
			for j, c := range prob.Candidates[i] {
				if c.Cost < bestC {
					bestC = c.Cost
					bestJ = j
				}
			}
			chosen[i] = bestJ
		}
	case opts.SpaceGreedy:
		chosen = spaceGreedy(prob, res.PlainBytes*opts.SpaceBudget-res.BaselineBytes)
	default:
		prob.Budget = res.PlainBytes*opts.SpaceBudget - res.BaselineBytes
		sol, ok := ilp.Solve(prob)
		if !ok {
			return nil, fmt.Errorf("designer: space budget S=%.2f infeasible", opts.SpaceBudget)
		}
		chosen = sol.Choice
		res.Nodes = sol.Nodes
	}
	res.Vars = prob.Vars()
	res.Constraints = prob.Constraints()

	// Final design: baseline plus items of the chosen candidates.
	design := withFlags(baseline, opts)
	for i, j := range chosen {
		for _, k := range prob.Candidates[i][j].Items {
			design.Add(items[k])
		}
		info := QueryPlanInfo{
			Label:    w.Labels[i],
			EstCost:  prob.Candidates[i][j].Cost,
			NumCands: len(prob.Candidates[i]),
		}
		for _, k := range prob.Candidates[i][j].Items {
			info.Items = append(info.Items, items[k])
		}
		res.PerQuery = append(res.PerQuery, info)
	}
	if !opts.OnionBaseline {
		used := make(map[string]bool)
		for i, j := range chosen {
			for _, c := range candsPer[i].cands[j : j+1] {
				for _, it := range c.Plan.UsedItems {
					used[it.Key()] = true
				}
			}
		}
		spare := math.Inf(1)
		if opts.SpaceBudget > 0 {
			spare = opts.SpaceBudget*res.PlainBytes - designBytes(base.WithDesign(design), cat)
		}
		design = downgradeUnusedDET(design, used, ctxFull, spare)
	}
	res.Design = design
	res.Context = base.WithDesign(design)
	res.EstBytes = designBytes(res.Context, cat)
	res.Elapsed = time.Since(start)
	return res, nil
}

// downgradeUnusedDET replaces base-column DET items that no chosen plan
// uses with RND — the security-conscious default that gives the paper's
// Table 3 its RND-majority census: a column reveals duplicates only if
// some query actually needs equality, grouping, or a join over it.
// RND costs 16 extra bytes per value, so under a space budget the
// cheapest-to-upgrade columns convert first and the rest stay DET once the
// spare space runs out.
func downgradeUnusedDET(d *enc.Design, usedKeys map[string]bool, ctx *planner.Context, spare float64) *enc.Design {
	type cand struct {
		idx  int
		cost float64
	}
	var cands []cand
	for i := range d.Items {
		it := &d.Items[i]
		if it.Scheme == enc.DET && !it.IsPrecomputed() && !usedKeys[it.Key()] {
			rows := float64(ctx.Stats.Table(it.Table).Rows)
			cands = append(cands, cand{idx: i, cost: rows * 16})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].cost < cands[b].cost })
	downgrade := make(map[int]bool)
	for _, c := range cands {
		if c.cost > spare {
			break
		}
		spare -= c.cost
		downgrade[c.idx] = true
	}
	out := &enc.Design{GroupedAddition: d.GroupedAddition, MultiRowPacking: d.MultiRowPacking}
	for i, it := range d.Items {
		if downgrade[i] {
			out.Add(enc.Item{Table: it.Table, Expr: it.Expr, Scheme: enc.RND, PlainKind: it.PlainKind})
			continue
		}
		out.Add(it)
	}
	return out
}

// withFlags clones a design with the option's Paillier layout flags.
func withFlags(d *enc.Design, opts Options) *enc.Design {
	out := &enc.Design{
		GroupedAddition: opts.GroupedAddition,
		MultiRowPacking: opts.MultiRowPacking,
	}
	out.Merge(d)
	return out
}

// spaceGreedy is the §8.6 baseline: take every item the unconstrained
// design wants, then delete the largest until the budget is met; each query
// then uses its best candidate among surviving items.
func spaceGreedy(prob *ilp.Problem, budget float64) []int {
	// Unconstrained choice and its item union.
	inUse := make(map[int]bool)
	for i := range prob.Candidates {
		bestJ, bestC := 0, math.Inf(1)
		for j, c := range prob.Candidates[i] {
			if c.Cost < bestC {
				bestC = c.Cost
				bestJ = j
			}
		}
		for _, k := range prob.Candidates[i][bestJ].Items {
			inUse[k] = true
		}
	}
	var used []int
	total := 0.0
	for k := range inUse {
		used = append(used, k)
		total += prob.Sizes[k]
	}
	sort.Slice(used, func(a, b int) bool { return prob.Sizes[used[a]] > prob.Sizes[used[b]] })
	for _, k := range used {
		if total <= budget {
			break
		}
		delete(inUse, k)
		total -= prob.Sizes[k]
	}
	// Re-choose each query's best candidate among surviving items.
	chosen := make([]int, len(prob.Candidates))
	for i := range prob.Candidates {
		bestJ, bestC := -1, math.Inf(1)
		for j, c := range prob.Candidates[i] {
			ok := true
			for _, k := range c.Items {
				if !inUse[k] {
					ok = false
					break
				}
			}
			if ok && c.Cost < bestC {
				bestC = c.Cost
				bestJ = j
			}
		}
		if bestJ < 0 {
			bestJ = 0 // should not happen: baseline candidates need no items
		}
		chosen[i] = bestJ
	}
	return chosen
}

// filterPrecomputed drops units requiring precomputed-expression items.
func filterPrecomputed(units []planner.Unit) []planner.Unit {
	var out []planner.Unit
	for _, u := range units {
		ok := true
		for i := range u.Items {
			if u.Items[i].IsPrecomputed() {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, u)
		}
	}
	return out
}

// BaselineDesign returns the always-present encryptions: DET for every
// column (the paper's S=1 anchor — length-preserving, so the baseline
// costs roughly the plaintext size). With onion=true it adds RND wrappers
// for every column and OPE for ordered types (CryptDB's onion layout).
func BaselineDesign(cat *storage.Catalog, joinGroups map[string]string, onion bool) *enc.Design {
	d := &enc.Design{}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			continue
		}
		for _, col := range t.Schema.Cols {
			kind := colKind(col.Type)
			det := enc.ColumnItem(name, col.Name, enc.DET, kind)
			if g, ok := joinGroups[name+"."+col.Name]; ok {
				det.JoinGroup = g
			}
			d.Add(det)
			if !onion {
				continue
			}
			d.Add(enc.ColumnItem(name, col.Name, enc.RND, kind))
			if kind == value.Int || kind == value.Date {
				d.Add(enc.ColumnItem(name, col.Name, enc.OPE, kind))
			}
		}
	}
	return d
}

func colKind(t storage.ColType) value.Kind {
	switch t {
	case storage.TInt:
		return value.Int
	case storage.TFloat:
		return value.Float
	case storage.TStr:
		return value.Str
	case storage.TDate:
		return value.Date
	case storage.TBytes:
		return value.Bytes
	case storage.TBool:
		return value.Bool
	}
	return value.Int
}

// itemBytes estimates one item's server footprint.
func itemBytes(ctx *planner.Context, it *enc.Item, opts Options) float64 {
	ts := ctx.Stats.Table(it.Table)
	rows := float64(ts.Rows)
	width := 8.0
	if cr, ok := it.Expr.(*ast.ColumnRef); ok {
		if l := ts.Col(cr.Column).AvgLen; l > 0 {
			width = float64(l)
		}
	}
	switch it.Scheme {
	case enc.DET:
		return rows * width // length-preserving (§5.2)
	case enc.OPE:
		return rows * 16
	case enc.RND:
		return rows * (width + 16)
	case enc.SEARCH:
		return rows * width * 1.4
	case enc.HOM:
		cipher := float64(ctx.Cost.HomCipherBytes)
		if !opts.MultiRowPacking {
			// One 2,048-bit ciphertext per row per column (CryptDB-era).
			return rows * cipher
		}
		// Packed: the item occupies ~45 bits of each packed row slot.
		plainBits := cipher * 8 / 2
		return rows * cipher * 45 / plainBits
	}
	return rows * width
}

// designBytes estimates the whole design's encrypted footprint.
func designBytes(ctx *planner.Context, cat *storage.Catalog) float64 {
	total := 0.0
	opts := Options{MultiRowPacking: ctx.Design.MultiRowPacking, GroupedAddition: ctx.Design.GroupedAddition}
	for _, name := range cat.Names() {
		hasHom := false
		for _, it := range ctx.Design.TableItems(name) {
			total += itemBytes(ctx, &it, opts)
			if it.Scheme == enc.HOM {
				hasHom = true
			}
		}
		ts := ctx.Stats.Table(name)
		total += float64(ts.Rows) * 24 // row overhead
		if hasHom {
			total += float64(ts.Rows) * 8 // row_id
		}
	}
	return total
}
