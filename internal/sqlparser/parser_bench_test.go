package sqlparser

import "testing"

// Parser throughput on a representative analytical query (TPC-H Q3 shape).
const benchSQL = `SELECT l_orderkey, SUM(l_extendedprice * (100 - l_discount)) AS revenue,
  o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate < date '1995-03-15' AND l_shipdate > date '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate LIMIT 10`

func BenchmarkParseAnalyticalQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderSQL(b *testing.B) {
	q := MustParse(benchSQL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.SQL()
	}
}
