package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

func parse(t *testing.T, src string) *ast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestSimpleSelect(t *testing.T) {
	q := parse(t, "SELECT a, b AS total FROM orders WHERE a = 1")
	if len(q.Projections) != 2 {
		t.Fatalf("projections = %d", len(q.Projections))
	}
	if q.Projections[1].Alias != "total" {
		t.Errorf("alias = %q", q.Projections[1].Alias)
	}
	if len(q.From) != 1 || q.From[0].Name != "orders" {
		t.Errorf("from = %+v", q.From)
	}
	b, ok := q.Where.(*ast.BinaryExpr)
	if !ok || b.Op != ast.OpEq {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestImplicitAlias(t *testing.T) {
	q := parse(t, "SELECT sum(price) total FROM orders o")
	if q.Projections[0].Alias != "total" {
		t.Errorf("implicit projection alias = %q", q.Projections[0].Alias)
	}
	if q.From[0].Alias != "o" {
		t.Errorf("implicit table alias = %q", q.From[0].Alias)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	q := parse(t, "SELECT a FROM t WHERE a + b * 2 = 7 AND c = 1 OR d = 2")
	// OR at top
	or, ok := q.Where.(*ast.BinaryExpr)
	if !ok || or.Op != ast.OpOr {
		t.Fatalf("top = %#v", q.Where)
	}
	and, ok := or.Left.(*ast.BinaryExpr)
	if !ok || and.Op != ast.OpAnd {
		t.Fatalf("left of or = %#v", or.Left)
	}
	eq := and.Left.(*ast.BinaryExpr)
	add := eq.Left.(*ast.BinaryExpr)
	if add.Op != ast.OpAdd {
		t.Fatalf("expected + at second level, got %v", add.Op)
	}
	if mul := add.Right.(*ast.BinaryExpr); mul.Op != ast.OpMul {
		t.Errorf("expected * bound tighter, got %v", mul.Op)
	}
}

func TestGroupByHavingOrderLimit(t *testing.T) {
	q := parse(t, `SELECT o, SUM(p) AS s FROM t GROUP BY o HAVING SUM(p) > 100 ORDER BY s DESC, o ASC LIMIT 10`)
	if len(q.GroupBy) != 1 {
		t.Fatalf("group by = %d", len(q.GroupBy))
	}
	if q.Having == nil {
		t.Fatal("missing having")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestSubqueries(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE a IN (SELECT b FROM u) AND EXISTS (SELECT 1 FROM v WHERE v.x = t.a) AND c > (SELECT AVG(d) FROM w)`)
	subs := ast.Subqueries(q.Where)
	if len(subs) != 3 {
		t.Fatalf("subqueries = %d", len(subs))
	}
}

func TestNotExists(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)`)
	ex, ok := q.Where.(*ast.ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestInList(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE m IN ('AIR', 'TRUCK') AND n NOT IN (1, 2, 3)`)
	conj := ast.Conjuncts(q.Where)
	in0 := conj[0].(*ast.InExpr)
	if len(in0.List) != 2 || in0.Not {
		t.Fatalf("in0 = %+v", in0)
	}
	in1 := conj[1].(*ast.InExpr)
	if len(in1.List) != 3 || !in1.Not {
		t.Fatalf("in1 = %+v", in1)
	}
}

func TestBetweenLikeIsNull(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE d BETWEEN 1 AND 10 AND s LIKE '%green%' AND u IS NOT NULL AND v NOT BETWEEN 2 AND 3`)
	conj := ast.Conjuncts(q.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if b := conj[0].(*ast.BetweenExpr); b.Not {
		t.Error("between not negated")
	}
	if l := conj[1].(*ast.LikeExpr); l.Pattern != "%green%" {
		t.Errorf("pattern = %q", l.Pattern)
	}
	if n := conj[2].(*ast.IsNullExpr); !n.Not {
		t.Error("IS NOT NULL")
	}
	if b := conj[3].(*ast.BetweenExpr); !b.Not {
		t.Error("NOT BETWEEN")
	}
}

func TestDateAndInterval(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE d >= date '1994-01-01' AND d < date '1994-01-01' + interval '1' year`)
	conj := ast.Conjuncts(q.Where)
	ge := conj[0].(*ast.BinaryExpr)
	lit := ge.Right.(*ast.Literal)
	if lit.Val.K != value.Date {
		t.Fatalf("right of >= should be date literal, got %v", lit.Val.K)
	}
	lt := conj[1].(*ast.BinaryExpr)
	add := lt.Right.(*ast.BinaryExpr)
	if _, ok := add.Right.(*ast.IntervalExpr); !ok {
		t.Fatalf("expected interval, got %#v", add.Right)
	}
}

func TestCaseExtractSubstring(t *testing.T) {
	q := parse(t, `SELECT CASE WHEN n = 'BRAZIL' THEN v ELSE 0 END, extract(year from d), substring(c from 1 for 2) FROM t`)
	if _, ok := q.Projections[0].Expr.(*ast.CaseExpr); !ok {
		t.Error("case expr")
	}
	f := q.Projections[1].Expr.(*ast.FuncCall)
	if f.Name != "extract_year" {
		t.Errorf("extract = %q", f.Name)
	}
	s := q.Projections[2].Expr.(*ast.FuncCall)
	if s.Name != "substring" || len(s.Args) != 3 {
		t.Errorf("substring = %+v", s)
	}
}

func TestAggregates(t *testing.T) {
	q := parse(t, `SELECT COUNT(*), COUNT(DISTINCT x), SUM(a*b), AVG(c), MIN(d), MAX(e) FROM t`)
	a0 := q.Projections[0].Expr.(*ast.AggExpr)
	if !a0.Star {
		t.Error("count(*)")
	}
	a1 := q.Projections[1].Expr.(*ast.AggExpr)
	if !a1.Distinct {
		t.Error("count distinct")
	}
	for i, want := range []ast.AggFunc{ast.AggCount, ast.AggCount, ast.AggSum, ast.AggAvg, ast.AggMin, ast.AggMax} {
		if got := q.Projections[i].Expr.(*ast.AggExpr).Func; got != want {
			t.Errorf("agg %d = %v want %v", i, got, want)
		}
	}
}

func TestParams(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE n = :1 AND m > :qty`)
	conj := ast.Conjuncts(q.Where)
	p0 := conj[0].(*ast.BinaryExpr).Right.(*ast.Param)
	if p0.Name != "1" {
		t.Errorf("param = %q", p0.Name)
	}
	p1 := conj[1].(*ast.BinaryExpr).Right.(*ast.Param)
	if p1.Name != "qty" {
		t.Errorf("param = %q", p1.Name)
	}
}

func TestJoinOnSugar(t *testing.T) {
	q := parse(t, `SELECT a FROM t JOIN u ON t.x = u.y JOIN v ON u.z = v.w WHERE t.a = 1`)
	if len(q.From) != 3 {
		t.Fatalf("from = %d", len(q.From))
	}
	conj := ast.Conjuncts(q.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d (ON folded into WHERE)", len(conj))
	}
}

func TestDerivedTable(t *testing.T) {
	q := parse(t, `SELECT s FROM (SELECT SUM(x) AS s FROM t GROUP BY k) sub WHERE s > 10`)
	if q.From[0].Sub == nil || q.From[0].Alias != "sub" {
		t.Fatalf("derived table = %+v", q.From[0])
	}
}

func TestStringEscapes(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE s = 'O''Brien'`)
	lit := q.Where.(*ast.BinaryExpr).Right.(*ast.Literal)
	if lit.Val.S != "O'Brien" {
		t.Errorf("unescaped = %q", lit.Val.S)
	}
}

func TestComments(t *testing.T) {
	parse(t, "SELECT a -- trailing comment\nFROM t -- another\n")
}

func TestNegativeNumbers(t *testing.T) {
	q := parse(t, `SELECT a FROM t WHERE x > -5 AND y < -1.5`)
	conj := ast.Conjuncts(q.Where)
	l0 := conj[0].(*ast.BinaryExpr).Right.(*ast.Literal)
	if l0.Val.AsInt() != -5 {
		t.Errorf("int literal = %v", l0.Val)
	}
	l1 := conj[1].(*ast.BinaryExpr).Right.(*ast.Literal)
	if l1.Val.F != -1.5 {
		t.Errorf("float literal = %v", l1.Val)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",              // missing FROM
		"SELECT a FROM",         // missing table
		"SELECT a FROM t WHERE", // missing predicate
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT a FROM t WHERE a ! b",
		"SELECT a FROM t GROUP x",
		"SELECT extract(century from d) FROM t",
		"SELECT a FROM t; SELECT b FROM u",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestRoundTripSQL(t *testing.T) {
	// Every parsed query should render to SQL that parses to the same SQL.
	srcs := []string{
		"SELECT a, b AS t FROM orders WHERE a = 1 AND b > 2",
		"SELECT SUM(a*b) AS v FROM t GROUP BY k HAVING SUM(a*b) > 10 ORDER BY v DESC",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u WHERE u.k = t.k)",
		"SELECT CASE WHEN a = 1 THEN b ELSE c END FROM t",
		"SELECT a FROM t WHERE d BETWEEN date '1994-01-01' AND date '1994-12-31'",
		"SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u) LIMIT 5",
		"SELECT DISTINCT a FROM t WHERE s LIKE '%x%'",
	}
	for _, src := range srcs {
		q1 := parse(t, src)
		sql1 := q1.SQL()
		q2 := parse(t, sql1)
		if sql2 := q2.SQL(); sql1 != sql2 {
			t.Errorf("round trip:\n  src  = %s\n  sql1 = %s\n  sql2 = %s", src, sql1, sql2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	q := parse(t, "SELECT a, SUM(b) FROM t WHERE c = 1 GROUP BY a HAVING SUM(b) > 2 ORDER BY a")
	c := q.Clone()
	if q.SQL() != c.SQL() {
		t.Fatal("clone should render identically")
	}
	// Mutate the clone; the original must be unaffected.
	c.Where = nil
	c.Projections[0].Alias = "zzz"
	if q.Where == nil || q.Projections[0].Alias == "zzz" {
		t.Error("clone aliases underlying nodes")
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("l_extendedprice * (1 - l_discount)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.SQL(), "*") {
		t.Errorf("expr = %s", e.SQL())
	}
	if _, err := ParseExpr("a +"); err == nil {
		t.Error("expected error for incomplete expr")
	}
}
