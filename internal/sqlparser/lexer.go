// Package sqlparser implements a lexer and recursive-descent parser for the
// analytical SQL dialect MONOMI handles: SELECT queries with comma joins,
// correlated and uncorrelated subqueries (scalar, IN, EXISTS), GROUP
// BY/HAVING, ORDER BY/LIMIT, CASE, EXTRACT, SUBSTRING, LIKE, BETWEEN, and
// date/interval arithmetic — everything the 19 TPC-H queries the paper's
// prototype supports (§8.1) use. It stands in for the SQL front end the
// paper's implementation (§7) borrows from its host DBMS.
package sqlparser

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // :name
	tokSym   // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers lowercased; strings unquoted
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
			continue
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start}, nil
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == ':':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return token{}, l.errf(start, "empty parameter name after ':'")
		}
		return token{kind: tokParam, text: l.src[s:l.pos], pos: start}, nil
	}
	// multi-char operators
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		return token{kind: tokSym, text: two, pos: start}, nil
	}
	switch c {
	case '(', ')', ',', '+', '-', '*', '/', '=', '<', '>', '.', ';':
		l.pos++
		return token{kind: tokSym, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
