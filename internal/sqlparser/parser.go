package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// Parse parses a single SELECT statement into an AST.
func Parse(src string) (*ast.Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSym && p.peek().text == ";" {
		p.advance()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek())
	}
	return q, nil
}

// MustParse parses src and panics on error; for fixtures and tests.
func MustParse(src string) *ast.Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseExpr parses a standalone expression (used in tests and the designer's
// workload-feature input).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek())
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token { // token after next
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return token{kind: tokEOF}
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	pos := p.peek().pos
	line, col := 1, 1
	for i := 0; i < pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// kw reports whether the next token is the given keyword (already lowercase).
func (p *parser) kw(word string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == word
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(word string) bool {
	if p.kw(word) {
		p.advance()
		return true
	}
	return false
}

// expectKw consumes the keyword or fails.
func (p *parser) expectKw(word string) error {
	if !p.acceptKw(word) {
		return p.errf("expected %s, found %q", strings.ToUpper(word), p.peek())
	}
	return nil
}

// sym reports whether the next token is the given symbol.
func (p *parser) sym(s string) bool {
	t := p.peek()
	return t.kind == tokSym && t.text == s
}

func (p *parser) acceptSym(s string) bool {
	if p.sym(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %q", s, p.peek())
	}
	return nil
}

// reserved words that terminate an implicit alias.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "and": true, "or": true, "not": true,
	"in": true, "exists": true, "between": true, "like": true, "is": true,
	"as": true, "on": true, "join": true, "inner": true, "left": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"distinct": true, "asc": true, "desc": true, "union": true, "by": true,
	"null": true, "interval": true, "date": true, "true": true, "false": true,
}

func (p *parser) parseQuery() (*ast.Query, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	q := ast.NewQuery()
	q.Distinct = p.acceptKw("distinct")

	// projections
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ast.SelectItem{Expr: e}
		if p.acceptKw("as") {
			t := p.advance()
			if t.kind != tokIdent {
				return nil, p.errf("expected alias after AS")
			}
			item.Alias = t.text
		} else if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
			item.Alias = p.advance().text
		}
		q.Projections = append(q.Projections, item)
		if !p.acceptSym(",") {
			break
		}
	}

	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		// JOIN ... ON sugar: fold the ON predicate into WHERE.
		for {
			inner := p.acceptKw("inner")
			if !p.acceptKw("join") {
				if inner {
					return nil, p.errf("expected JOIN after INNER")
				}
				break
			}
			r2, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, r2)
			if p.acceptKw("on") {
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				q.Where = ast.AndAll([]ast.Expr{q.Where, cond})
			}
		}
		if !p.acceptSym(",") {
			break
		}
	}

	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = ast.AndAll([]ast.Expr{q.Where, e})
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKw("desc") {
				item.Desc = true
			} else {
				p.acceptKw("asc")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		t := p.advance()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseTableRef() (ast.TableRef, error) {
	var ref ast.TableRef
	if p.acceptSym("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return ref, err
		}
		if err := p.expectSym(")"); err != nil {
			return ref, err
		}
		ref.Sub = sub
	} else {
		t := p.advance()
		if t.kind != tokIdent {
			return ref, p.errf("expected table name, found %q", t)
		}
		ref.Name = t.text
	}
	if p.acceptKw("as") {
		t := p.advance()
		if t.kind != tokIdent {
			return ref, p.errf("expected alias after AS")
		}
		ref.Alias = t.text
	} else if t := p.peek(); t.kind == tokIdent && !reserved[t.text] {
		ref.Alias = p.advance().text
	}
	if ref.Sub != nil && ref.Alias == "" {
		ref.Alias = "subquery"
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := additive ((=|<>|<|<=|>|>=) additive
//	           | [NOT] BETWEEN additive AND additive
//	           | [NOT] IN (...)
//	           | [NOT] LIKE 'pat'
//	           | IS [NOT] NULL)?
//	additive := multiplicative ((+|-) multiplicative)*
//	multiplicative := unary ((*|/) unary)*
//	unary   := - unary | primary
func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: ast.OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("and") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &ast.BinaryExpr{Op: ast.OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (ast.Expr, error) {
	if p.kw("not") && !(p.peek2().kind == tokIdent && p.peek2().text == "exists") {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{E: e}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]ast.BinOp{
	"=": ast.OpEq, "<>": ast.OpNe, "<": ast.OpLt, "<=": ast.OpLe, ">": ast.OpGt, ">=": ast.OpGe,
}

func (p *parser) parsePredicate() (ast.Expr, error) {
	// EXISTS / NOT EXISTS
	if p.kw("exists") || (p.kw("not") && p.peek2().kind == tokIdent && p.peek2().text == "exists") {
		not := p.acceptKw("not")
		p.advance() // exists
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &ast.ExistsExpr{Sub: sub, Not: not}, nil
	}

	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}

	if t := p.peek(); t.kind == tokSym {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &ast.BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}

	not := false
	if p.kw("not") {
		nxt := p.peek2()
		if nxt.kind == tokIdent && (nxt.text == "between" || nxt.text == "in" || nxt.text == "like") {
			p.advance()
			not = true
		}
	}
	switch {
	case p.acceptKw("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &ast.BetweenExpr{E: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.acceptKw("in"):
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		if p.kw("select") {
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &ast.InExpr{E: left, Sub: sub, Not: not}, nil
		}
		var list []ast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSym(",") {
				break
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &ast.InExpr{E: left, List: list, Not: not}, nil
	case p.acceptKw("like"):
		t := p.advance()
		if t.kind != tokString {
			return nil, p.errf("expected pattern string after LIKE")
		}
		return &ast.LikeExpr{E: left, Pattern: t.text, Not: not}, nil
	case p.kw("is"):
		p.advance()
		isNot := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &ast.IsNullExpr{E: left, Not: isNot}, nil
	}
	if not {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func (p *parser) parseAdditive() (ast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSym || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := ast.OpAdd
		if t.text == "-" {
			op = ast.OpSub
		}
		left = &ast.BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (ast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSym || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := ast.OpMul
		if t.text == "/" {
			op = ast.OpDiv
		}
		left = &ast.BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	if p.acceptSym("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*ast.Literal); ok {
			return &ast.Literal{Val: value.Neg(lit.Val)}, nil
		}
		return &ast.UnaryExpr{Neg: true, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &ast.Literal{Val: value.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &ast.Literal{Val: value.NewInt(n)}, nil
	case tokString:
		p.advance()
		return &ast.Literal{Val: value.NewStr(t.text)}, nil
	case tokParam:
		p.advance()
		return &ast.Param{Name: t.text}, nil
	case tokSym:
		if t.text == "(" {
			p.advance()
			if p.kw("select") {
				sub, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &ast.SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "*" {
			// COUNT(*) is handled in parseFuncOrColumn; bare * means
			// SELECT * which we expand as a special column ref.
			p.advance()
			return &ast.ColumnRef{Column: "*"}, nil
		}
	case tokIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q", t)
}

func (p *parser) parseIdentExpr() (ast.Expr, error) {
	t := p.advance()
	name := t.text
	switch name {
	case "null":
		return &ast.Literal{Val: value.NewNull()}, nil
	case "true":
		return &ast.Literal{Val: value.NewBool(true)}, nil
	case "false":
		return &ast.Literal{Val: value.NewBool(false)}, nil
	case "date":
		// date 'YYYY-MM-DD'
		s := p.advance()
		if s.kind != tokString {
			return nil, p.errf("expected date string literal")
		}
		d, err := value.ParseDate(s.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &ast.Literal{Val: value.NewDate(d)}, nil
	case "interval":
		s := p.advance()
		if s.kind != tokString {
			return nil, p.errf("expected interval quantity string")
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s.text), 10, 64)
		if err != nil {
			return nil, p.errf("bad interval quantity %q", s.text)
		}
		u := p.advance()
		if u.kind != tokIdent {
			return nil, p.errf("expected interval unit")
		}
		unit := strings.TrimSuffix(u.text, "s") // year(s), month(s), day(s)
		switch unit {
		case "year", "month", "day":
		default:
			return nil, p.errf("unsupported interval unit %q", u.text)
		}
		return &ast.IntervalExpr{N: n, Unit: unit}, nil
	case "case":
		return p.parseCase()
	case "extract":
		// extract(year from expr)
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		part := p.advance()
		if part.kind != tokIdent {
			return nil, p.errf("expected date part in EXTRACT")
		}
		if err := p.expectKw("from"); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		switch part.text {
		case "year", "month", "day":
		default:
			return nil, p.errf("unsupported EXTRACT part %q", part.text)
		}
		return &ast.FuncCall{Name: "extract_" + part.text, Args: []ast.Expr{arg}}, nil
	case "substring":
		// substring(expr from a for b)  or  substring(expr, a, b)
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var from, forN ast.Expr
		if p.acceptKw("from") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptKw("for") {
				forN, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		} else if p.acceptSym(",") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptSym(",") {
				forN, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		args := []ast.Expr{arg}
		if from != nil {
			args = append(args, from)
		}
		if forN != nil {
			args = append(args, forN)
		}
		return &ast.FuncCall{Name: "substring", Args: args}, nil
	}

	// aggregates
	if agg, ok := aggFuncs[name]; ok && p.sym("(") {
		p.advance()
		a := &ast.AggExpr{Func: agg}
		if p.acceptSym("*") {
			if agg != ast.AggCount {
				return nil, p.errf("* argument only valid in COUNT")
			}
			a.Star = true
		} else {
			a.Distinct = p.acceptKw("distinct")
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Arg = arg
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return a, nil
	}

	// generic function call (UDFs etc.)
	if p.sym("(") {
		p.advance()
		f := &ast.FuncCall{Name: name}
		if !p.sym(")") {
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, arg)
				if !p.acceptSym(",") {
					break
				}
			}
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return f, nil
	}

	// column reference, optionally qualified
	if p.sym(".") {
		p.advance()
		col := p.advance()
		if col.kind != tokIdent {
			return nil, p.errf("expected column after %q.", name)
		}
		return &ast.ColumnRef{Table: name, Column: col.text}, nil
	}
	return &ast.ColumnRef{Column: name}, nil
}

var aggFuncs = map[string]ast.AggFunc{
	"sum": ast.AggSum, "count": ast.AggCount, "avg": ast.AggAvg,
	"min": ast.AggMin, "max": ast.AggMax,
}

func (p *parser) parseCase() (ast.Expr, error) {
	c := &ast.CaseExpr{}
	for {
		if err := p.expectKw("when"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.CaseWhen{Cond: cond, Then: then})
		if !p.kw("when") {
			break
		}
	}
	if p.acceptKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}
