package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func testTable(t *testing.T, key ...string) *Table {
	t.Helper()
	return NewTable(Schema{
		Name: "t",
		Cols: []Column{
			{Name: "id", Type: TInt},
			{Name: "tag", Type: TStr},
		},
		Key: key,
	})
}

// TestHashIndexInterleavedInserts checks incremental maintenance: lookups
// interleaved with inserts always see every row inserted so far.
func TestHashIndexInterleavedInserts(t *testing.T) {
	tb := testTable(t)
	ix, err := tb.EnsureIndex("tag", HashIndex)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]int32{}
	for i := 0; i < 100; i++ {
		tag := fmt.Sprintf("tag%d", i%7)
		tb.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(tag)})
		want[tag] = append(want[tag], int32(i))
		got := ix.Postings(value.NewStr(tag))
		if len(got) != len(want[tag]) {
			t.Fatalf("after insert %d: postings(%q) = %v, want %v", i, tag, got, want[tag])
		}
		for j := range got {
			if got[j] != want[tag][j] {
				t.Fatalf("after insert %d: postings(%q) = %v, want %v", i, tag, got, want[tag])
			}
		}
	}
}

// TestOrderedIndexInterleavedInserts checks the lazy re-sort: ranges asked
// between inserts reflect all rows, in ascending row-id order.
func TestOrderedIndexInterleavedInserts(t *testing.T) {
	tb := NewTable(Schema{Name: "t", Cols: []Column{{Name: "v", Type: TInt}}})
	ix, err := tb.EnsureIndex("v", OrderedIndex)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var vals []int64
	for i := 0; i < 200; i++ {
		v := rng.Int63n(50)
		tb.MustInsert([]value.Value{value.NewInt(v)})
		vals = append(vals, v)
		if i%17 != 0 {
			continue
		}
		lo, hi := value.NewInt(10), value.NewInt(30)
		got := ix.Range(&lo, &hi, true, false)
		var want []int32
		for id, x := range vals {
			if x >= 10 && x < 30 {
				want = append(want, int32(id))
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("after insert %d: range = %v, want %v", i, got, want)
		}
	}
}

// TestIndexNullKeys: NULLs are invisible to point and range lookups in both
// index kinds, but ordered emission still accounts for them (NULLS FIRST
// ascending, last descending).
func TestIndexNullKeys(t *testing.T) {
	tb := NewTable(Schema{Name: "t", Cols: []Column{{Name: "v", Type: TInt}}})
	h, _ := tb.EnsureIndex("v", HashIndex)
	o, _ := tb.EnsureIndex("v", OrderedIndex)
	rows := []value.Value{value.NewInt(1), value.NewNull(), value.NewInt(1), value.NewNull(), value.NewInt(2)}
	for _, v := range rows {
		tb.MustInsert([]value.Value{v})
	}
	if got := h.Postings(value.NewNull()); got != nil {
		t.Fatalf("hash postings(NULL) = %v, want nil", got)
	}
	if got := h.Postings(value.NewInt(1)); fmt.Sprint(got) != "[0 2]" {
		t.Fatalf("hash postings(1) = %v", got)
	}
	if h.Len() != 3 || o.Len() != 3 {
		t.Fatalf("Len: hash %d ordered %d, want 3", h.Len(), o.Len())
	}
	if got := o.Range(nil, nil, true, true); fmt.Sprint(got) != "[0 2 4]" {
		t.Fatalf("open range = %v, want non-NULL rows [0 2 4]", got)
	}
	if got := o.EmitOrdered(false); fmt.Sprint(got) != "[1 3 0 2 4]" {
		t.Fatalf("asc emission = %v, want NULLs first [1 3 0 2 4]", got)
	}
	if got := o.EmitOrdered(true); fmt.Sprint(got) != "[4 0 2 1 3]" {
		t.Fatalf("desc emission = %v, want NULLs last [4 0 2 1 3]", got)
	}
}

// TestInternRoundTrip: duplicate strings share storage and the accounting
// reports both raw and resident bytes.
func TestInternRoundTrip(t *testing.T) {
	tb := testTable(t)
	for i := 0; i < 10; i++ {
		tb.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr("hello")})
	}
	allRows, _, _ := tb.ScanRows(0, tb.NumRows())
	for i, row := range allRows {
		if row[1].S != "hello" {
			t.Fatalf("row %d: interning changed the value: %v", i, row[1])
		}
	}
	// 10 ints + 1 full "hello" + 9 refs + overhead.
	wantRes := int64(10*8 + 5 + 9*internRefBytes + 10*rowOverhead)
	wantRaw := int64(10*8 + 10*5 + 10*rowOverhead)
	if tb.Bytes != wantRes || tb.RawBytes != wantRaw {
		t.Fatalf("Bytes = %d (want %d), RawBytes = %d (want %d)", tb.Bytes, wantRes, tb.RawBytes, wantRaw)
	}
	if tb.ColBytes[1] != 5+9*internRefBytes {
		t.Fatalf("ColBytes[tag] = %d", tb.ColBytes[1])
	}
}

// TestInternAdaptiveDisable: a high-cardinality column stops paying the
// dictionary cost once the hit rate proves hopeless; accounting falls back
// to full size for post-disable inserts.
func TestInternAdaptiveDisable(t *testing.T) {
	tb := testTable(t)
	for i := 0; i < internDisableAfter+100; i++ {
		tb.MustInsert([]value.Value{value.NewInt(int64(i)), value.NewStr(fmt.Sprintf("unique-%08d", i))})
	}
	d := tb.dicts[1]
	if !d.disabled || d.m != nil {
		t.Fatalf("dictionary not disabled after %d distinct values", internDisableAfter+100)
	}
	if tb.Bytes != tb.RawBytes {
		t.Fatalf("all-distinct column should have Bytes == RawBytes (%d != %d)", tb.Bytes, tb.RawBytes)
	}
}

// TestIndexScanEqualsFullScan is the property test: on random data with
// NULLs and duplicates, the row set an index answers equals the row set a
// full scan filter finds.
func TestIndexScanEqualsFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tb := NewTable(Schema{Name: "t", Cols: []Column{{Name: "v", Type: TInt}, {Name: "s", Type: TStr}}})
	h, _ := tb.EnsureIndex("s", HashIndex)
	o, _ := tb.EnsureIndex("v", OrderedIndex)
	for i := 0; i < 2000; i++ {
		var v, s value.Value
		if rng.Intn(10) == 0 {
			v = value.NewNull()
		} else {
			v = value.NewInt(rng.Int63n(100))
		}
		if rng.Intn(10) == 0 {
			s = value.NewNull()
		} else {
			s = value.NewStr(fmt.Sprintf("s%d", rng.Intn(40)))
		}
		tb.MustInsert([]value.Value{v, s})
	}
	for trial := 0; trial < 50; trial++ {
		probe := value.NewStr(fmt.Sprintf("s%d", rng.Intn(50)))
		var want []int32
		for id, row := range mustScan(t, tb) {
			if !row[1].IsNull() && value.Compare(row[1], probe) == 0 {
				want = append(want, int32(id))
			}
		}
		if got := h.Postings(probe); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("postings(%v) = %v, want %v", probe, got, want)
		}

		a, b := rng.Int63n(110)-5, rng.Int63n(110)-5
		if a > b {
			a, b = b, a
		}
		lo, hi := value.NewInt(a), value.NewInt(b)
		var wantR []int32
		for id, row := range mustScan(t, tb) {
			if !row[0].IsNull() && value.Compare(row[0], lo) >= 0 && value.Compare(row[0], hi) <= 0 {
				wantR = append(wantR, int32(id))
			}
		}
		if got := o.Range(&lo, &hi, true, true); fmt.Sprint(got) != fmt.Sprint(wantR) {
			t.Fatalf("range[%d,%d] = %v, want %v", a, b, got, wantR)
		}
	}
}

// TestUniqueKeyRejectsDuplicates: Schema.Key is enforced at insert time;
// NULL key components are exempt.
func TestUniqueKeyRejectsDuplicates(t *testing.T) {
	tb := testTable(t, "id")
	if !tb.HasKey() {
		t.Fatal("key index not built")
	}
	tb.MustInsert([]value.Value{value.NewInt(1), value.NewStr("a")})
	tb.MustInsert([]value.Value{value.NewInt(2), value.NewStr("b")})
	err := tb.Insert([]value.Value{value.NewInt(1), value.NewStr("c")})
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
	if tb.NumRows() != 2 || tb.Bytes == 0 {
		t.Fatalf("failed insert mutated the table: %d rows", tb.NumRows())
	}
	before := tb.Bytes
	if err := tb.Insert([]value.Value{value.NewNull(), value.NewStr("d")}); err != nil {
		t.Fatalf("NULL key rejected: %v", err)
	}
	if err := tb.Insert([]value.Value{value.NewNull(), value.NewStr("e")}); err != nil {
		t.Fatalf("second NULL key rejected: %v", err)
	}
	if tb.Bytes <= before {
		t.Fatal("NULL-key inserts not accounted")
	}
}

// TestUniqueKeyComposite: composite keys reject only full matches.
func TestUniqueKeyComposite(t *testing.T) {
	tb := NewTable(Schema{
		Name: "t",
		Cols: []Column{{Name: "a", Type: TInt}, {Name: "b", Type: TInt}},
		Key:  []string{"a", "b"},
	})
	tb.MustInsert([]value.Value{value.NewInt(1), value.NewInt(1)})
	tb.MustInsert([]value.Value{value.NewInt(1), value.NewInt(2)})
	tb.MustInsert([]value.Value{value.NewInt(2), value.NewInt(1)})
	if err := tb.Insert([]value.Value{value.NewInt(1), value.NewInt(2)}); err == nil {
		t.Fatal("composite duplicate accepted")
	}
}

// TestPutDropsDerivedState: replacing a table in the catalog clears the old
// table's indexes and key so a stale reference cannot serve lookups.
func TestPutDropsDerivedState(t *testing.T) {
	cat := NewCatalog()
	old := testTable(t, "id")
	old.MustInsert([]value.Value{value.NewInt(1), value.NewStr("a")})
	if _, err := old.EnsureIndex("tag", HashIndex); err != nil {
		t.Fatal(err)
	}
	cat.Put(old)
	cat.Put(testTable(t))
	if old.Index("tag", HashIndex) != nil {
		t.Fatal("replaced table kept its hash index")
	}
	if old.HasKey() {
		t.Fatal("replaced table kept its key index")
	}
	// Re-putting the same table must not self-destruct.
	fresh := testTable(t)
	if _, err := fresh.EnsureIndex("tag", HashIndex); err != nil {
		t.Fatal(err)
	}
	cat.Put(fresh)
	cat.Put(fresh)
	if fresh.Index("tag", HashIndex) == nil {
		t.Fatal("re-putting the same table dropped its index")
	}
}

// TestIndexClassGuards: a literal of the wrong kind class is not answerable
// (cross-kind Compare in the engine has quirks an index cannot mirror).
func TestIndexClassGuards(t *testing.T) {
	tb := NewTable(Schema{Name: "t", Cols: []Column{{Name: "v", Type: TInt}}})
	ix, _ := tb.EnsureIndex("v", HashIndex)
	tb.MustInsert([]value.Value{value.NewInt(1)})
	if !ix.Usable(value.Int) || !ix.Usable(value.Float) {
		t.Fatal("numeric literal should be usable on an int index")
	}
	if ix.Usable(value.Str) || ix.Usable(value.Null) {
		t.Fatal("cross-class literal must not be usable")
	}
}

// mustScan returns every row of tb (test iteration; queries use ScanRows
// with charging).
func mustScan(t *testing.T, tb *Table) [][]value.Value {
	t.Helper()
	rows, _, err := tb.ScanRows(0, tb.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}
