package storage

import (
	"fmt"

	"repro/internal/value"
)

// memStore is the in-memory backend: rows as a Go slice, exactly the store
// this package began as, now private behind the Backend seam. Scans return
// subslices (no copies), physical reads are always 0, and the engine keeps
// charging the resident-byte approximation (Paged() == false).
type memStore struct {
	rows [][]value.Value
}

func newMemStore() *memStore { return &memStore{} }

func (m *memStore) Append(row []value.Value) error {
	m.rows = append(m.rows, row)
	return nil
}

func (m *memStore) Scan(lo, hi int) ([][]value.Value, int64, error) {
	if lo < 0 || hi > len(m.rows) || lo > hi {
		return nil, 0, fmt.Errorf("storage: scan [%d,%d) out of range (%d rows)", lo, hi, len(m.rows))
	}
	return m.rows[lo:hi], 0, nil
}

func (m *memStore) Fetch(ids []int32) ([][]value.Value, int64, error) {
	out := make([][]value.Value, len(ids))
	for i, id := range ids {
		if int(id) < 0 || int(id) >= len(m.rows) {
			return nil, 0, fmt.Errorf("storage: fetch id %d out of range (%d rows)", id, len(m.rows))
		}
		out[i] = m.rows[id]
	}
	return out, 0, nil
}

func (m *memStore) NumRows() int { return len(m.rows) }

func (m *memStore) Paged() bool { return false }

func (m *memStore) Flush(*SegmentMeta) error { return nil }

func (m *memStore) Close() error { return nil }

func (m *memStore) IO() IOStats { return IOStats{} }
