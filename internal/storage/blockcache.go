package storage

import (
	"container/list"

	"repro/internal/value"
)

// blockCache is the disk backend's LRU page cache: decoded pages keyed by
// page index, evicted least-recently-used once the resident byte total
// exceeds the capacity. Caching decoded rows (not raw page bytes) means a
// hit costs neither a read nor a re-decode; accounting still uses the
// page's on-disk size, so the capacity is comparable to the file size and
// "table larger than the cache" means what it says.
//
// The cache is not internally synchronized: diskStore guards every access
// with its own mutex (shard workers scan concurrently).
type blockCache struct {
	cap   int64
	used  int64
	ll    *list.List // front = most recently used
	pages map[int]*list.Element

	hits, misses int64
}

// cachedPage is one resident decoded page.
type cachedPage struct {
	idx   int
	rows  [][]value.Value
	bytes int64 // on-disk page size, the accounting unit
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{cap: capBytes, ll: list.New(), pages: make(map[int]*list.Element)}
}

// get returns the decoded rows of page idx, or nil on a miss, updating the
// hit/miss counters and the recency order.
func (c *blockCache) get(idx int) [][]value.Value {
	el, ok := c.pages[idx]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cachedPage).rows
}

// put inserts a freshly read page, evicting from the LRU tail until the
// byte total fits. A page larger than the whole capacity is admitted alone
// (the next insert evicts it); refusing it would make oversized-row pages
// permanently uncacheable.
func (c *blockCache) put(idx int, rows [][]value.Value, bytes int64) {
	if el, ok := c.pages[idx]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.pages[idx] = c.ll.PushFront(&cachedPage{idx: idx, rows: rows, bytes: bytes})
	c.used += bytes
	for c.used > c.cap && c.ll.Len() > 1 {
		tail := c.ll.Back()
		p := tail.Value.(*cachedPage)
		c.ll.Remove(tail)
		delete(c.pages, p.idx)
		c.used -= p.bytes
	}
}

// drop removes a page (the tail page is re-read after being rewritten).
func (c *blockCache) drop(idx int) {
	if el, ok := c.pages[idx]; ok {
		p := el.Value.(*cachedPage)
		c.ll.Remove(el)
		delete(c.pages, p.idx)
		c.used -= p.bytes
	}
}
