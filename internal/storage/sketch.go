package storage

import (
	"hash/fnv"
	"math"

	"repro/internal/value"
)

// ColMeta is a snapshot of one column's insert-time statistics: the numbers
// the planner's CollectStats used to derive by enumerating Table.Rows, now
// maintained incrementally so they exist even when the backend cannot (or
// should not) re-read every row from disk.
type ColMeta struct {
	NDV      int64 // estimated distinct non-NULL values (exact below sparseNDVLimit)
	TotalLen int64 // summed encoded size of non-NULL values
	Min, Max int64 // numeric bounds via AsInt
	HasNum   bool  // Min/Max valid (at least one numeric value seen)
}

// colMeta is the live per-column state behind a ColMeta snapshot.
type colMeta struct {
	ndv      ndvSketch
	totalLen int64
	min, max int64
	hasNum   bool
}

// observe folds one inserted value into the column statistics. NULLs are
// skipped, matching the planner's historical enumeration.
func (m *colMeta) observe(v value.Value) {
	if v.IsNull() {
		return
	}
	m.ndv.add(v.HashKey())
	m.totalLen += int64(v.Size())
	if v.IsNumeric() {
		x := v.AsInt()
		if !m.hasNum || x < m.min {
			m.min = x
		}
		if !m.hasNum || x > m.max {
			m.max = x
		}
		m.hasNum = true
	}
}

func (m *colMeta) snapshot() ColMeta {
	return ColMeta{NDV: m.ndv.estimate(), TotalLen: m.totalLen, Min: m.min, Max: m.max, HasNum: m.hasNum}
}

// sparseNDVLimit is the distinct-hash count at which an ndvSketch stops
// being exact and collapses into HyperLogLog registers. Below the limit
// (every fixture and most dimension columns) the estimate is exact, so
// planner selectivities are unchanged from the enumerate-all-rows era.
const sparseNDVLimit = 8192

// hllM is the HyperLogLog register count (2^8; ~6.5% standard error, 256
// bytes per high-cardinality column).
const hllM = 256

// ndvSketch estimates a column's number of distinct values from a stream of
// hash keys. It starts as an exact set of 64-bit hashes and degrades to a
// fixed-size HyperLogLog only past sparseNDVLimit, trading the in-memory
// luxury of enumerating rows for a bounded footprint a disk-backed table
// can afford.
type ndvSketch struct {
	sparse map[uint64]struct{} // nil once collapsed
	regs   []uint8             // hllM registers once collapsed
}

// hashNDV hashes a value key to 64 uniform bits: FNV-64a followed by a
// 64-bit finalizer (FNV alone under-mixes the high byte, which is exactly
// the register selector). The finalizer is bijective, so the sparse
// regime's exactness is unaffected.
func hashNDV(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (s *ndvSketch) add(key string) {
	h := hashNDV(key)
	if s.regs == nil {
		if s.sparse == nil {
			s.sparse = make(map[uint64]struct{})
		}
		s.sparse[h] = struct{}{}
		if len(s.sparse) <= sparseNDVLimit {
			return
		}
		// Collapse: replay the exact set into registers.
		s.regs = make([]uint8, hllM)
		for seen := range s.sparse {
			s.addDense(seen)
		}
		s.sparse = nil
		return
	}
	s.addDense(h)
}

// addDense folds a hash into the HLL registers: the first 8 bits pick the
// register, the rank is the leading-zero run of the remaining 56 bits + 1.
func (s *ndvSketch) addDense(h uint64) {
	idx := h >> 56
	rest := h << 8
	rank := uint8(1)
	for rest&(1<<63) == 0 && rank < 57 {
		rank++
		rest <<= 1
	}
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// estimate returns the distinct count: exact in the sparse regime, the
// standard HLL estimator (with the small-range linear-counting correction)
// once collapsed.
func (s *ndvSketch) estimate() int64 {
	if s.regs == nil {
		return int64(len(s.sparse))
	}
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := alpha * float64(hllM) * float64(hllM) / sum
	if zeros > 0 && e <= 2.5*float64(hllM) {
		e = float64(hllM) * math.Log(float64(hllM)/float64(zeros))
	}
	return int64(e + 0.5)
}
