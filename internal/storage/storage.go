// Package storage implements the catalog and heap-table layer that backs
// both the plaintext database and the untrusted server's encrypted database.
//
// Tables are in-memory row stores with byte-accurate size accounting: every
// inserted value contributes its encoded size to per-table and per-column
// totals. The engine reports bytes scanned per query, which the cost model
// converts to simulated disk time — this is what makes ciphertext expansion
// slow queries down the same way it does on the paper's disk-bound testbed
// (§8.1, which flushes caches and caps RAM to keep scans I/O-bound).
package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// ColType is the declared type of a column.
type ColType uint8

// Column types.
const (
	TInt ColType = iota
	TFloat
	TStr
	TDate
	TBytes
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "string"
	case TDate:
		return "date"
	case TBytes:
		return "bytes"
	case TBool:
		return "bool"
	}
	return "?"
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name string
	Cols []Column
	Key  []string // primary key column names (informational)
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is an in-memory heap table with size accounting.
type Table struct {
	Schema   Schema
	Rows     [][]value.Value
	ColBytes []int64 // per-column accumulated bytes
	Bytes    int64   // total bytes (sum of ColBytes plus per-row overhead)
}

// rowOverhead models per-row header cost (Postgres-like tuple header).
const rowOverhead = 24

// NewTable creates an empty table with the given schema.
func NewTable(s Schema) *Table {
	return &Table{Schema: s, ColBytes: make([]int64, len(s.Cols))}
}

// Insert appends a row, validating arity and accounting its size.
func (t *Table) Insert(row []value.Value) error {
	if len(row) != len(t.Schema.Cols) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns",
			t.Schema.Name, len(row), len(t.Schema.Cols))
	}
	for i, v := range row {
		sz := int64(v.Size())
		t.ColBytes[i] += sz
		t.Bytes += sz
	}
	t.Bytes += rowOverhead
	t.Rows = append(t.Rows, row)
	return nil
}

// MustInsert inserts or panics; for generators and fixtures.
func (t *Table) MustInsert(row []value.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// AvgRowBytes returns the mean stored row size including overhead.
func (t *Table) AvgRowBytes() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	return float64(t.Bytes) / float64(len(t.Rows))
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create adds a new empty table; it fails if the name exists.
func (c *Catalog) Create(s Schema) (*Table, error) {
	if _, ok := c.tables[s.Name]; ok {
		return nil, fmt.Errorf("storage: table %s already exists", s.Name)
	}
	t := NewTable(s)
	c.tables[s.Name] = t
	return t, nil
}

// Put installs a table, replacing any existing one with the same name.
func (c *Catalog) Put(t *Table) { c.tables[t.Schema.Name] = t }

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// Drop removes a table if present.
func (c *Catalog) Drop(name string) { delete(c.tables, name) }

// Names returns the table names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes sums stored bytes across all tables.
func (c *Catalog) TotalBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.Bytes
	}
	return n
}
