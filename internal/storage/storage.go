// Package storage implements the catalog and heap-table layer that backs
// both the plaintext database and the untrusted server's encrypted database.
//
// A Table keeps the logical state — schema, secondary indexes, the unique
// key index, interning dictionaries, per-column statistics, byte-accurate
// size accounting — and delegates physical row storage to a Backend: the
// in-memory store (rows as Go slices, the original layout) or the paged
// disk store (append-only segment files with an LRU block cache, see
// diskstore.go). Row ids are assignment order under every backend, so the
// engine's sharded scans, streamed batches, and index posting lists behave
// identically no matter where the rows live.
//
// Size accounting feeds the cost model: every inserted value contributes
// its encoded size to per-table and per-column totals, and the engine
// reports bytes scanned per query, which the cost model converts to
// simulated disk time — this is what makes ciphertext expansion slow
// queries down the same way it does on the paper's disk-bound testbed
// (§8.1, which flushes caches and caps RAM to keep scans I/O-bound). A
// paged backend replaces that resident-byte approximation with its real
// physical page reads.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// ColType is the declared type of a column.
type ColType uint8

// Column types.
const (
	TInt ColType = iota
	TFloat
	TStr
	TDate
	TBytes
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "string"
	case TDate:
		return "date"
	case TBytes:
		return "bytes"
	case TBool:
		return "bool"
	}
	return "?"
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name string
	Cols []Column
	Key  []string // primary key column names (informational)
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is a heap table with size accounting, backed by a pluggable
// physical row store (Backend).
type Table struct {
	Schema   Schema
	ColBytes []int64 // per-column accumulated resident bytes
	// Bytes is the resident footprint: interned duplicates count at
	// internRefBytes, not their full ciphertext size. The netsim disk
	// model scans resident bytes, so interning honestly speeds scans.
	Bytes int64
	// RawBytes is what the table would occupy without dictionary
	// interning (every value at full size). RawBytes >= Bytes; the gap is
	// the interning saving.
	RawBytes int64

	be      Backend
	nrows   int
	meta    []colMeta // per-column insert-time statistics
	indexes map[indexTag]*Index
	dicts   []*internDict // per column; nil entries for non-internable types
	key     *keyIndex     // Schema.Key uniqueness, nil if keyless
}

// rowOverhead models per-row header cost (Postgres-like tuple header).
const rowOverhead = 24

// backfillChunk is the scan batch size for index backfills and
// rebuild-on-open: large enough to amortize page reads, small enough that
// a backfill never materializes the whole table.
const backfillChunk = 4096

// NewTable creates an empty in-memory table with the given schema. If the
// schema declares a Key whose columns all exist, a unique key index is
// built and enforced on every Insert.
func NewTable(s Schema) *Table {
	return newTableOn(s, newMemStore())
}

// newTableOn wires the logical table state over a physical backend.
func newTableOn(s Schema, be Backend) *Table {
	t := &Table{Schema: s, ColBytes: make([]int64, len(s.Cols)), be: be}
	t.meta = make([]colMeta, len(s.Cols))
	t.dicts = make([]*internDict, len(s.Cols))
	for i, c := range s.Cols {
		if c.Type == TStr || c.Type == TBytes {
			t.dicts[i] = &internDict{}
		}
	}
	if len(s.Key) > 0 {
		cols := make([]int, 0, len(s.Key))
		for _, name := range s.Key {
			ci := s.ColIndex(name)
			if ci < 0 {
				cols = nil
				break
			}
			cols = append(cols, ci)
		}
		if cols != nil {
			t.key = &keyIndex{cols: cols, seen: make(map[string]int32)}
		}
	}
	return t
}

// OpenTable reopens a disk-backed table from its segment file, rebuilding
// all derived state — interning accounting, column statistics, the unique
// key index, and every secondary index named in the segment metadata — by
// replaying the stored rows in id order (the replay is deterministic, so
// the rebuilt accounting equals the insert-time accounting). Any damage —
// truncation, checksum mismatch, or a duplicate key that insert-time
// enforcement would have rejected — fails with an error wrapping
// ErrCorruptSegment.
func OpenTable(path string, cfg BackendConfig) (*Table, error) {
	ds, meta, err := openDiskStore(path, cfg)
	if err != nil {
		return nil, err
	}
	t := newTableOn(meta.Schema, ds)
	nrows := ds.NumRows()
	for lo := 0; lo < nrows; lo += backfillChunk {
		hi := lo + backfillChunk
		if hi > nrows {
			hi = nrows
		}
		rows, _, err := ds.Scan(lo, hi)
		if err != nil {
			ds.Close()
			return nil, err
		}
		for k, row := range rows {
			if err := t.accountRow(row, false); err != nil {
				ds.Close()
				return nil, corruptf(path, -1, "row %d: %v", lo+k, err)
			}
		}
	}
	for _, spec := range meta.Indexes {
		if _, err := t.EnsureIndex(spec.Col, spec.Kind); err != nil {
			ds.Close()
			return nil, err
		}
	}
	return t, nil
}

// Insert appends a row, validating arity, enforcing the unique key,
// interning repeated string/bytes values, accounting resident and raw
// size, maintaining column statistics and every secondary index, and
// storing the row in the backend.
func (t *Table) Insert(row []value.Value) error {
	if err := t.accountRow(row, true); err != nil {
		return err
	}
	return t.be.Append(row)
}

// accountRow runs the full derived-state maintenance for the row taking id
// t.nrows: arity and key checks, interning (canonicalizing row values in
// place when canon is true), size accounting, column statistics, and index
// maintenance. Insert follows it with a backend append; rebuild-on-open
// replays it over rows the backend already holds.
func (t *Table) accountRow(row []value.Value, canon bool) error {
	if len(row) != len(t.Schema.Cols) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns",
			t.Schema.Name, len(row), len(t.Schema.Cols))
	}
	var key string
	if t.key != nil {
		k, ok := t.key.keyOf(row)
		if ok {
			if prev, dup := t.key.seen[k]; dup {
				return fmt.Errorf("storage: table %s: duplicate key %v (rows %d and %d)",
					t.Schema.Name, t.keyVals(row), prev, t.nrows)
			}
			key = k
		}
	}
	id := int32(t.nrows)
	for i, v := range row {
		t.RawBytes += int64(v.Size())
		sz := int64(v.Size())
		if d := t.dicts[i]; d != nil && !v.IsNull() {
			cv, csz := d.add(v)
			sz = csz
			if canon {
				row[i] = cv
			}
		}
		t.ColBytes[i] += sz
		t.Bytes += sz
		t.meta[i].observe(row[i])
	}
	t.Bytes += rowOverhead
	t.RawBytes += rowOverhead
	t.nrows++
	if t.key != nil && key != "" {
		t.key.seen[key] = id
	}
	for tag, ix := range t.indexes {
		ix.add(row[t.Schema.ColIndex(tag.col)], id)
	}
	return nil
}

// keyVals extracts the key column values of a row for error messages.
func (t *Table) keyVals(row []value.Value) []value.Value {
	vals := make([]value.Value, len(t.key.cols))
	for i, ci := range t.key.cols {
		vals[i] = row[ci]
	}
	return vals
}

// ScanRows returns the rows with ids in [lo, hi) in id order, plus the
// physical bytes the backend read to serve them (0 for in-memory tables).
// The batch may alias backend memory and must be treated as read-only.
func (t *Table) ScanRows(lo, hi int) ([][]value.Value, int64, error) {
	return t.be.Scan(lo, hi)
}

// FetchRows returns the rows named by an ascending id list, plus the
// physical bytes read (the access path's row-source shape).
func (t *Table) FetchRows(ids []int32) ([][]value.Value, int64, error) {
	return t.be.Fetch(ids)
}

// Row returns one row by id, panicking on out-of-range ids; for tests and
// fixtures (queries go through ScanRows/FetchRows and get byte accounting).
func (t *Table) Row(id int) []value.Value {
	rows, _, err := t.be.Fetch([]int32{int32(id)})
	if err != nil {
		panic(err)
	}
	return rows[0]
}

// Paged reports whether the backend's Scan/Fetch byte counts are real
// medium reads the engine should charge instead of the resident-byte
// approximation.
func (t *Table) Paged() bool { return t.be.Paged() }

// IO returns the backend's cumulative physical-read counters.
func (t *Table) IO() IOStats { return t.be.IO() }

// ColMeta returns the insert-time statistics of column ci.
func (t *Table) ColMeta(ci int) ColMeta { return t.meta[ci].snapshot() }

// Flush persists buffered rows and current table metadata (schema, index
// specs, row count) to the backend; a no-op for in-memory tables.
func (t *Table) Flush() error {
	return t.be.Flush(t.segmentMeta())
}

// Close flushes and releases the backend.
func (t *Table) Close() error {
	if err := t.Flush(); err != nil {
		t.be.Close()
		return err
	}
	return t.be.Close()
}

// segmentMeta snapshots the durable metadata a paged backend persists.
func (t *Table) segmentMeta() *SegmentMeta {
	m := &SegmentMeta{Schema: t.Schema, Rows: t.nrows}
	for _, ix := range t.Indexes() {
		m.Indexes = append(m.Indexes, IndexSpec{Col: ix.Col, Kind: ix.Kind})
	}
	return m
}

// EnsureIndex builds (or returns) the index of the given kind over the
// named column, backfilling existing rows with chunked backend scans.
// Later Inserts maintain it.
func (t *Table) EnsureIndex(col string, kind IndexKind) (*Index, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s: no column %s to index", t.Schema.Name, col)
	}
	tag := indexTag{col: col, kind: kind}
	if ix, ok := t.indexes[tag]; ok {
		return ix, nil
	}
	ix := newIndex(col, kind)
	for lo := 0; lo < t.nrows; lo += backfillChunk {
		hi := lo + backfillChunk
		if hi > t.nrows {
			hi = t.nrows
		}
		rows, _, err := t.be.Scan(lo, hi)
		if err != nil {
			return nil, err
		}
		for k, row := range rows {
			ix.add(row[ci], int32(lo+k))
		}
	}
	if t.indexes == nil {
		t.indexes = make(map[indexTag]*Index)
	}
	t.indexes[tag] = ix
	return ix, nil
}

// Index returns the index of the given kind on the named column, or nil.
func (t *Table) Index(col string, kind IndexKind) *Index {
	return t.indexes[indexTag{col: col, kind: kind}]
}

// Indexes returns every secondary index of the table.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// HasKey reports whether the table enforces a unique Schema.Key.
func (t *Table) HasKey() bool { return t.key != nil }

// dropDerived discards all derived state — secondary indexes, the unique
// key index, and interning dictionaries — so nothing stale survives a
// catalog replacement. Rows and size accounting are untouched.
func (t *Table) dropDerived() {
	t.indexes = nil
	t.key = nil
	for i := range t.dicts {
		if t.dicts[i] != nil {
			t.dicts[i] = &internDict{disabled: true}
		}
	}
}

// MustInsert inserts or panics; for generators and fixtures.
func (t *Table) MustInsert(row []value.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.nrows }

// AvgRowBytes returns the mean stored row size including overhead.
func (t *Table) AvgRowBytes() float64 {
	if t.nrows == 0 {
		return 0
	}
	return float64(t.Bytes) / float64(t.nrows)
}

// Catalog is a named collection of tables. Its BackendConfig decides where
// Create puts new tables' rows; tables installed with Put keep whatever
// backend they were built on.
type Catalog struct {
	tables map[string]*Table
	cfg    BackendConfig
}

// NewCatalog returns an empty catalog creating in-memory tables.
func NewCatalog() *Catalog { return NewCatalogWith(BackendConfig{}) }

// NewCatalogWith returns an empty catalog creating tables on the
// configured backend.
func NewCatalogWith(cfg BackendConfig) *Catalog {
	return &Catalog{tables: make(map[string]*Table), cfg: cfg}
}

// Create adds a new empty table on the catalog's backend; it fails if the
// name exists.
func (c *Catalog) Create(s Schema) (*Table, error) {
	if _, ok := c.tables[s.Name]; ok {
		return nil, fmt.Errorf("storage: table %s already exists", s.Name)
	}
	var t *Table
	if c.cfg.Kind == BackendDisk {
		ds, err := createDiskStore(c.cfg, &SegmentMeta{Schema: s})
		if err != nil {
			return nil, err
		}
		t = newTableOn(s, ds)
	} else {
		t = NewTable(s)
	}
	c.tables[s.Name] = t
	return t, nil
}

// Put installs a table, replacing any existing one with the same name.
// The replaced table's derived state (secondary indexes, key index,
// interning dictionaries) is dropped so stale structures cannot answer
// queries through a dangling reference.
func (c *Catalog) Put(t *Table) {
	if old, ok := c.tables[t.Schema.Name]; ok && old != t {
		old.dropDerived()
	}
	c.tables[t.Schema.Name] = t
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// Drop removes a table if present.
func (c *Catalog) Drop(name string) { delete(c.tables, name) }

// Names returns the table names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Flush persists every table's buffered rows and metadata.
func (c *Catalog) Flush() error {
	for _, name := range c.Names() {
		if err := c.tables[name].Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every table, returning the first error.
func (c *Catalog) Close() error {
	var first error
	for _, name := range c.Names() {
		if err := c.tables[name].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// IO sums the backends' physical-read counters across all tables.
func (c *Catalog) IO() IOStats {
	var io IOStats
	for _, t := range c.tables {
		io.Add(t.IO())
	}
	return io
}

// TotalBytes sums resident (interned) bytes across all tables.
func (c *Catalog) TotalBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.Bytes
	}
	return n
}

// TotalRawBytes sums pre-interning bytes across all tables; the ratio
// TotalBytes/TotalRawBytes is the interning saving.
func (c *Catalog) TotalRawBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.RawBytes
	}
	return n
}
