// Package storage implements the catalog and heap-table layer that backs
// both the plaintext database and the untrusted server's encrypted database.
//
// Tables are in-memory row stores with byte-accurate size accounting: every
// inserted value contributes its encoded size to per-table and per-column
// totals. The engine reports bytes scanned per query, which the cost model
// converts to simulated disk time — this is what makes ciphertext expansion
// slow queries down the same way it does on the paper's disk-bound testbed
// (§8.1, which flushes caches and caps RAM to keep scans I/O-bound).
package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// ColType is the declared type of a column.
type ColType uint8

// Column types.
const (
	TInt ColType = iota
	TFloat
	TStr
	TDate
	TBytes
	TBool
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "string"
	case TDate:
		return "date"
	case TBytes:
		return "bytes"
	case TBool:
		return "bool"
	}
	return "?"
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table.
type Schema struct {
	Name string
	Cols []Column
	Key  []string // primary key column names (informational)
}

// ColIndex returns the position of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table is an in-memory heap table with size accounting.
type Table struct {
	Schema   Schema
	Rows     [][]value.Value
	ColBytes []int64 // per-column accumulated resident bytes
	// Bytes is the resident footprint: interned duplicates count at
	// internRefBytes, not their full ciphertext size. The netsim disk
	// model scans resident bytes, so interning honestly speeds scans.
	Bytes int64
	// RawBytes is what the table would occupy without dictionary
	// interning (every value at full size). RawBytes >= Bytes; the gap is
	// the interning saving.
	RawBytes int64

	indexes map[indexTag]*Index
	dicts   []*internDict // per column; nil entries for non-internable types
	key     *keyIndex     // Schema.Key uniqueness, nil if keyless
}

// rowOverhead models per-row header cost (Postgres-like tuple header).
const rowOverhead = 24

// NewTable creates an empty table with the given schema. If the schema
// declares a Key whose columns all exist, a unique key index is built and
// enforced on every Insert.
func NewTable(s Schema) *Table {
	t := &Table{Schema: s, ColBytes: make([]int64, len(s.Cols))}
	t.dicts = make([]*internDict, len(s.Cols))
	for i, c := range s.Cols {
		if c.Type == TStr || c.Type == TBytes {
			t.dicts[i] = &internDict{}
		}
	}
	if len(s.Key) > 0 {
		cols := make([]int, 0, len(s.Key))
		for _, name := range s.Key {
			ci := s.ColIndex(name)
			if ci < 0 {
				cols = nil
				break
			}
			cols = append(cols, ci)
		}
		if cols != nil {
			t.key = &keyIndex{cols: cols, seen: make(map[string]int32)}
		}
	}
	return t
}

// Insert appends a row, validating arity, enforcing the unique key,
// interning repeated string/bytes values, accounting resident and raw
// size, and maintaining every secondary index.
func (t *Table) Insert(row []value.Value) error {
	if len(row) != len(t.Schema.Cols) {
		return fmt.Errorf("storage: table %s: row has %d values, schema has %d columns",
			t.Schema.Name, len(row), len(t.Schema.Cols))
	}
	var key string
	if t.key != nil {
		k, ok := t.key.keyOf(row)
		if ok {
			if prev, dup := t.key.seen[k]; dup {
				return fmt.Errorf("storage: table %s: duplicate key %v (rows %d and %d)",
					t.Schema.Name, t.keyVals(row), prev, len(t.Rows))
			}
			key = k
		}
	}
	id := int32(len(t.Rows))
	for i, v := range row {
		t.RawBytes += int64(v.Size())
		sz := int64(v.Size())
		if d := t.dicts[i]; d != nil && !v.IsNull() {
			row[i], sz = d.add(v)
		}
		t.ColBytes[i] += sz
		t.Bytes += sz
	}
	t.Bytes += rowOverhead
	t.RawBytes += rowOverhead
	t.Rows = append(t.Rows, row)
	if t.key != nil && key != "" {
		t.key.seen[key] = id
	}
	for tag, ix := range t.indexes {
		ix.add(row[t.Schema.ColIndex(tag.col)], id)
	}
	return nil
}

// keyVals extracts the key column values of a row for error messages.
func (t *Table) keyVals(row []value.Value) []value.Value {
	vals := make([]value.Value, len(t.key.cols))
	for i, ci := range t.key.cols {
		vals[i] = row[ci]
	}
	return vals
}

// EnsureIndex builds (or returns) the index of the given kind over the
// named column, backfilling existing rows. Later Inserts maintain it.
func (t *Table) EnsureIndex(col string, kind IndexKind) (*Index, error) {
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: table %s: no column %s to index", t.Schema.Name, col)
	}
	tag := indexTag{col: col, kind: kind}
	if ix, ok := t.indexes[tag]; ok {
		return ix, nil
	}
	ix := newIndex(col, kind)
	for id, row := range t.Rows {
		ix.add(row[ci], int32(id))
	}
	if t.indexes == nil {
		t.indexes = make(map[indexTag]*Index)
	}
	t.indexes[tag] = ix
	return ix, nil
}

// Index returns the index of the given kind on the named column, or nil.
func (t *Table) Index(col string, kind IndexKind) *Index {
	return t.indexes[indexTag{col: col, kind: kind}]
}

// Indexes returns every secondary index of the table.
func (t *Table) Indexes() []*Index {
	out := make([]*Index, 0, len(t.indexes))
	for _, ix := range t.indexes {
		out = append(out, ix)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// HasKey reports whether the table enforces a unique Schema.Key.
func (t *Table) HasKey() bool { return t.key != nil }

// dropDerived discards all derived state — secondary indexes, the unique
// key index, and interning dictionaries — so nothing stale survives a
// catalog replacement. Rows and size accounting are untouched.
func (t *Table) dropDerived() {
	t.indexes = nil
	t.key = nil
	for i := range t.dicts {
		if t.dicts[i] != nil {
			t.dicts[i] = &internDict{disabled: true}
		}
	}
}

// MustInsert inserts or panics; for generators and fixtures.
func (t *Table) MustInsert(row []value.Value) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Rows) }

// AvgRowBytes returns the mean stored row size including overhead.
func (t *Table) AvgRowBytes() float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	return float64(t.Bytes) / float64(len(t.Rows))
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Create adds a new empty table; it fails if the name exists.
func (c *Catalog) Create(s Schema) (*Table, error) {
	if _, ok := c.tables[s.Name]; ok {
		return nil, fmt.Errorf("storage: table %s already exists", s.Name)
	}
	t := NewTable(s)
	c.tables[s.Name] = t
	return t, nil
}

// Put installs a table, replacing any existing one with the same name.
// The replaced table's derived state (secondary indexes, key index,
// interning dictionaries) is dropped so stale structures cannot answer
// queries through a dangling reference.
func (c *Catalog) Put(t *Table) {
	if old, ok := c.tables[t.Schema.Name]; ok && old != t {
		old.dropDerived()
	}
	c.tables[t.Schema.Name] = t
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: no such table %s", name)
	}
	return t, nil
}

// Drop removes a table if present.
func (c *Catalog) Drop(name string) { delete(c.tables, name) }

// Names returns the table names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalBytes sums resident (interned) bytes across all tables.
func (c *Catalog) TotalBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.Bytes
	}
	return n
}

// TotalRawBytes sums pre-interning bytes across all tables; the ratio
// TotalBytes/TotalRawBytes is the interning saving.
func (c *Catalog) TotalRawBytes() int64 {
	var n int64
	for _, t := range c.tables {
		n += t.RawBytes
	}
	return n
}
