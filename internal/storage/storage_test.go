package storage

import (
	"testing"

	"repro/internal/value"
)

func testSchema() Schema {
	return Schema{
		Name: "orders",
		Cols: []Column{
			{Name: "o_orderkey", Type: TInt},
			{Name: "o_comment", Type: TStr},
		},
		Key: []string{"o_orderkey"},
	}
}

func TestInsertAndAccounting(t *testing.T) {
	tb := NewTable(testSchema())
	if err := tb.Insert([]value.Value{value.NewInt(1), value.NewStr("hello")}); err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	// 8 bytes int + 5 bytes string + 24 overhead
	if tb.Bytes != 8+5+rowOverhead {
		t.Errorf("bytes = %d", tb.Bytes)
	}
	if tb.ColBytes[0] != 8 || tb.ColBytes[1] != 5 {
		t.Errorf("col bytes = %v", tb.ColBytes)
	}
	if got := tb.AvgRowBytes(); got != float64(8+5+rowOverhead) {
		t.Errorf("avg row bytes = %v", got)
	}
}

func TestInsertArityError(t *testing.T) {
	tb := NewTable(testSchema())
	if err := tb.Insert([]value.Value{value.NewInt(1)}); err == nil {
		t.Error("expected arity error")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := testSchema()
	if s.ColIndex("o_comment") != 1 {
		t.Error("ColIndex o_comment")
	}
	if s.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tb, err := c.Create(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create(testSchema()); err == nil {
		t.Error("duplicate create should fail")
	}
	got, err := c.Table("orders")
	if err != nil || got != tb {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Error("missing table should error")
	}
	tb.MustInsert([]value.Value{value.NewInt(1), value.NewStr("x")})
	if c.TotalBytes() != tb.Bytes {
		t.Error("TotalBytes mismatch")
	}
	c2, _ := c.Create(Schema{Name: "aaa", Cols: []Column{{Name: "x", Type: TInt}}})
	_ = c2
	names := c.Names()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "orders" {
		t.Errorf("names = %v", names)
	}
	c.Drop("aaa")
	if len(c.Names()) != 1 {
		t.Error("drop failed")
	}
}

func TestEmptyTableAvg(t *testing.T) {
	tb := NewTable(testSchema())
	if tb.AvgRowBytes() != 0 {
		t.Error("empty table avg should be 0")
	}
}
