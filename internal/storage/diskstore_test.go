package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/value"
)

func diskCatalog(t *testing.T, cfg BackendConfig) (*Catalog, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Kind = BackendDisk
	cfg.Dir = dir
	return NewCatalogWith(cfg), dir
}

func fixtureSchema() Schema {
	return Schema{
		Name: "orders",
		Cols: []Column{
			{Name: "id", Type: TInt},
			{Name: "region", Type: TStr},
			{Name: "total", Type: TFloat},
			{Name: "day", Type: TDate},
			{Name: "blob", Type: TBytes},
			{Name: "rush", Type: TBool},
			{Name: "note", Type: TStr},
		},
		Key: []string{"id"},
	}
}

func fixtureRow(i int) []value.Value {
	note := value.NewNull()
	if i%3 == 0 {
		note = value.NewStr(fmt.Sprintf("note for order %d with some padding text", i))
	}
	return []value.Value{
		value.NewInt(int64(i)),
		value.NewStr([]string{"east", "west", "north"}[i%3]), // interns heavily
		value.NewFloat(float64(i) * 1.5),
		value.NewDate(int64(20130800 + i%28)),
		value.NewBytes([]byte{byte(i), byte(i >> 8), 0xfe}),
		value.NewBool(i%2 == 0),
		note,
	}
}

func loadFixture(t *testing.T, cat *Catalog, n int) *Table {
	t.Helper()
	tb, err := cat.Create(fixtureSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EnsureIndex("region", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EnsureIndex("day", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tb.MustInsert(fixtureRow(i))
	}
	return tb
}

func sameRows(t *testing.T, got, want *Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	g, _, err := got.ScanRows(0, got.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := want.ScanRows(0, want.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if len(g[i]) != len(w[i]) {
			t.Fatalf("row %d: %d values, want %d", i, len(g[i]), len(w[i]))
		}
		for j := range w[i] {
			if g[i][j].IsNull() && w[i][j].IsNull() {
				continue // SQL NULL != NULL; storage-wise they are the same
			}
			if g[i][j].K != w[i][j].K || !value.Equal(g[i][j], w[i][j]) {
				t.Fatalf("row %d col %d: %v (kind %v), want %v (kind %v)",
					i, j, g[i][j], g[i][j].K, w[i][j], w[i][j].K)
			}
		}
	}
}

// TestDiskStoreMatchesMem: the disk backend stores and returns exactly what
// the in-memory backend does — rows, kinds (Bool included, which the bare
// wire codec would flatten), accounting, and index behavior.
func TestDiskStoreMatchesMem(t *testing.T) {
	cat, _ := diskCatalog(t, BackendConfig{PageBytes: 512, CacheBytes: 4096})
	dt := loadFixture(t, cat, 300)
	mt := loadFixture(t, NewCatalog(), 300)

	if !dt.Paged() || mt.Paged() {
		t.Fatal("Paged() backwards")
	}
	sameRows(t, dt, mt)
	if dt.Bytes != mt.Bytes || dt.RawBytes != mt.RawBytes {
		t.Errorf("accounting: disk %d/%d, mem %d/%d", dt.Bytes, dt.RawBytes, mt.Bytes, mt.RawBytes)
	}
	probe := value.NewStr("west")
	if g, w := dt.Index("region", HashIndex).Postings(probe), mt.Index("region", HashIndex).Postings(probe); fmt.Sprint(g) != fmt.Sprint(w) {
		t.Errorf("postings diverge: %v vs %v", g, w)
	}
	// Batch scans hit the block cache; physical reads are real and bounded.
	mid, phys, err := dt.ScanRows(40, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 40 || mid[0][0].AsInt() != 40 {
		t.Fatalf("mid scan wrong: %d rows, first id %v", len(mid), mid[0][0])
	}
	if phys < 0 {
		t.Fatalf("negative phys %d", phys)
	}
	io := dt.IO()
	if io.PageReads == 0 || io.PageReads != io.CacheMisses || io.BytesRead == 0 {
		t.Errorf("io counters inconsistent: %+v", io)
	}
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreReopen: write, close, reopen — rows, accounting, interning,
// key uniqueness, and both secondary indexes all survive the round trip.
func TestDiskStoreReopen(t *testing.T) {
	cat, dir := diskCatalog(t, BackendConfig{PageBytes: 512, CacheBytes: 8192})
	orig := loadFixture(t, cat, 260)
	mem := loadFixture(t, NewCatalog(), 260)
	origBytes, origRaw := orig.Bytes, orig.RawBytes
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTable(filepath.Join(dir, "orders.seg"), BackendConfig{PageBytes: 512, CacheBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sameRows(t, re, mem)
	if re.Bytes != origBytes || re.RawBytes != origRaw {
		t.Errorf("accounting rebuilt as %d/%d, want %d/%d", re.Bytes, re.RawBytes, origBytes, origRaw)
	}
	// Index specs persisted and rebuilt.
	if re.Index("region", HashIndex) == nil || re.Index("day", OrderedIndex) == nil {
		t.Fatalf("indexes not rebuilt: %v", re.Indexes())
	}
	probe := value.NewStr("north")
	if g, w := re.Index("region", HashIndex).Postings(probe), mem.Index("region", HashIndex).Postings(probe); fmt.Sprint(g) != fmt.Sprint(w) {
		t.Errorf("rebuilt postings diverge: %v vs %v", g, w)
	}
	lo, hi := value.NewDate(20130805), value.NewDate(20130810)
	if g, w := re.Index("day", OrderedIndex).Range(&lo, &hi, true, true), mem.Index("day", OrderedIndex).Range(&lo, &hi, true, true); fmt.Sprint(g) != fmt.Sprint(w) {
		t.Errorf("rebuilt range diverges: %v vs %v", g, w)
	}
	// Key uniqueness survives: a duplicate id is rejected, a fresh one
	// appends and is readable.
	if !re.HasKey() {
		t.Fatal("key index not rebuilt")
	}
	if err := re.Insert(fixtureRow(7)); err == nil {
		t.Fatal("duplicate key accepted after reopen")
	}
	if err := re.Insert(fixtureRow(260)); err != nil {
		t.Fatal(err)
	}
	if got := re.Row(260)[0].AsInt(); got != 260 {
		t.Fatalf("appended row id = %d", got)
	}
	// Column stats rebuilt for the planner.
	if cm := re.ColMeta(0); cm.NDV != 261 || !cm.HasNum || cm.Min != 0 || cm.Max != 260 {
		t.Errorf("id ColMeta = %+v", cm)
	}
	if cm := re.ColMeta(1); cm.NDV != 3 {
		t.Errorf("region NDV = %d, want 3", cm.NDV)
	}
}

// TestDiskStoreReopenAppendReopen: rows appended after a reopen persist
// through a second close/reopen cycle (the reopened tail starts a fresh
// page).
func TestDiskStoreReopenAppendReopen(t *testing.T) {
	cfg := BackendConfig{PageBytes: 512}
	cat, dir := diskCatalog(t, cfg)
	loadFixture(t, cat, 50)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "orders.seg")

	re, err := OpenTable(seg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 120; i++ {
		re.MustInsert(fixtureRow(i))
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	re2, err := OpenTable(seg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	mem := loadFixture(t, NewCatalog(), 120)
	sameRows(t, re2, mem)
}

// TestDiskStoreOversizedRow: a row larger than the page size gets its own
// oversized page and round-trips.
func TestDiskStoreOversizedRow(t *testing.T) {
	cfg := BackendConfig{PageBytes: 256}
	cat, dir := diskCatalog(t, cfg)
	s := Schema{Name: "big", Cols: []Column{{Name: "id", Type: TInt}, {Name: "body", Type: TBytes}}}
	tb, err := cat.Create(s)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 2000)
	for i := range big {
		big[i] = byte(i * 7)
	}
	tb.MustInsert([]value.Value{value.NewInt(1), value.NewBytes([]byte("small"))})
	tb.MustInsert([]value.Value{value.NewInt(2), value.NewBytes(big)})
	tb.MustInsert([]value.Value{value.NewInt(3), value.NewBytes([]byte("after"))})
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenTable(filepath.Join(dir, "big.seg"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumRows() != 3 {
		t.Fatalf("rows = %d", re.NumRows())
	}
	if got := re.Row(1)[1]; len(got.B) != len(big) || got.B[1999] != big[1999] {
		t.Fatalf("oversized row damaged: %d bytes", len(got.B))
	}
	if got := re.Row(2)[1]; string(got.B) != "after" {
		t.Fatalf("row after oversized page = %q", got.B)
	}
}

// TestDiskStoreTruncated: a segment cut short fails to open with the typed
// corruption error.
func TestDiskStoreTruncated(t *testing.T) {
	cfg := BackendConfig{PageBytes: 512}
	cat, dir := diskCatalog(t, cfg)
	loadFixture(t, cat, 200)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "orders.seg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-300); err != nil {
		t.Fatal(err)
	}
	_, err = OpenTable(seg, cfg)
	if err == nil {
		t.Fatal("truncated segment opened cleanly")
	}
	if !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("error %v does not wrap ErrCorruptSegment", err)
	}
	var se *SegmentError
	if !errors.As(err, &se) || se.Path != seg {
		t.Fatalf("error %v is not a *SegmentError for %s", err, seg)
	}
}

// TestDiskStoreCorrupted: a flipped payload byte fails the page checksum
// during rebuild-on-open with the typed corruption error.
func TestDiskStoreCorrupted(t *testing.T) {
	cfg := BackendConfig{PageBytes: 512}
	cat, dir := diskCatalog(t, cfg)
	loadFixture(t, cat, 200)
	if err := cat.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "orders.seg")
	f, err := os.OpenFile(seg, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload of the second data page.
	if _, err := f.WriteAt([]byte{0xff}, 512+512+pageHeaderLen+20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = OpenTable(seg, cfg)
	if err == nil {
		t.Fatal("corrupted segment opened cleanly")
	}
	if !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("error %v does not wrap ErrCorruptSegment", err)
	}
}

// TestDiskStoreBadMagic: a file that is not a segment is rejected.
func TestDiskStoreBadMagic(t *testing.T) {
	dir := t.TempDir()
	seg := filepath.Join(dir, "orders.seg")
	if err := os.WriteFile(seg, []byte("definitely not a MONOSEG1 file, just text"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenTable(seg, BackendConfig{})
	if !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("error %v does not wrap ErrCorruptSegment", err)
	}
}

// TestDiskStoreCacheEviction: a table larger than the block cache misses on
// a cold sequential scan and hits when rescanning inside the cache window.
func TestDiskStoreCacheEviction(t *testing.T) {
	// ~300 rows over 512-byte pages, cache of 2 pages.
	cat, _ := diskCatalog(t, BackendConfig{PageBytes: 512, CacheBytes: 1024})
	tb := loadFixture(t, cat, 300)
	defer cat.Close()
	base := tb.IO()
	if _, _, err := tb.ScanRows(0, 300); err != nil {
		t.Fatal(err)
	}
	afterCold := tb.IO()
	coldReads := afterCold.PageReads - base.PageReads
	if coldReads < 5 {
		t.Fatalf("cold scan read only %d pages; table should span many pages", coldReads)
	}
	// Rescan of the final rows stays within the cache.
	if _, _, err := tb.ScanRows(290, 300); err != nil {
		t.Fatal(err)
	}
	afterWarm := tb.IO()
	if afterWarm.PageReads != afterCold.PageReads {
		t.Errorf("warm rescan of cached tail read %d pages", afterWarm.PageReads-afterCold.PageReads)
	}
	if afterWarm.CacheHits <= afterCold.CacheHits {
		t.Errorf("warm rescan recorded no cache hits")
	}
	if hr := afterWarm.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate %v out of (0,1)", hr)
	}
}

// TestParseBackendKind covers the flag surface.
func TestParseBackendKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want BackendKind
		err  bool
	}{
		{"", BackendMem, false},
		{"mem", BackendMem, false},
		{"memory", BackendMem, false},
		{"disk", BackendDisk, false},
		{"tape", BackendMem, true},
	} {
		got, err := ParseBackendKind(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseBackendKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if BackendDisk.String() != "disk" || BackendMem.String() != "mem" {
		t.Error("BackendKind.String wrong")
	}
}
