package storage

import (
	"math"
	"sort"

	"repro/internal/value"
)

// IndexKind distinguishes the two physical index structures the encrypted
// schemes admit: DET ciphertexts preserve equality, so they support a hash
// index; OPE ciphertexts preserve order, so they support an ordered run.
type IndexKind uint8

// Index kinds.
const (
	// HashIndex maps a key to the ascending posting list of row ids that
	// hold it. Serves `=` and `IN` predicates and hash-join builds.
	HashIndex IndexKind = iota
	// OrderedIndex keeps a lazily-sorted run of (key, row id) entries.
	// Serves range predicates and ordered emission for prefix ORDER BY.
	OrderedIndex
)

func (k IndexKind) String() string {
	if k == HashIndex {
		return "hash"
	}
	return "ordered"
}

// kindClass buckets value kinds into comparison-compatible classes. Within
// a class, value.Compare is a total order consistent with value.HashKey
// equality; across classes Compare degenerates (e.g. Str vs Int compares
// the string against ""), so an index only answers predicates whose
// literal falls in the index's class.
type kindClass int8

const (
	classNone kindClass = iota
	classNum            // Int, Float, Date: mutually comparable
	classStr
	classBool
	classBytes
	classMixed // more than one class was inserted; ordered runs degenerate
)

func classOf(k value.Kind) kindClass {
	switch k {
	case value.Int, value.Float, value.Date:
		return classNum
	case value.Str:
		return classStr
	case value.Bool:
		return classBool
	case value.Bytes:
		return classBytes
	}
	return classNone
}

// ordEntry is one (key, row) pair of an ordered run.
type ordEntry struct {
	v   value.Value
	row int32
}

// Index is a secondary index over one column of a Table, maintained
// incrementally by Insert. NULL keys are never indexed: every sargable
// predicate evaluates to non-true on NULL, and ordered emission tracks
// NULL rows separately so a full ordered walk can still reproduce the
// engine's NULLS-FIRST stable sort.
type Index struct {
	Col  string
	Kind IndexKind

	class kindClass

	// HashIndex state: value.HashKey -> ascending row ids.
	post map[string][]int32

	// OrderedIndex state.
	run   []ordEntry
	dirty bool    // run has unsorted suffix
	nulls []int32 // rows with NULL key, ascending
}

func newIndex(col string, kind IndexKind) *Index {
	ix := &Index{Col: col, Kind: kind, class: classNone}
	if kind == HashIndex {
		ix.post = make(map[string][]int32)
	}
	return ix
}

// add indexes one value at the given row id. Row ids arrive in ascending
// order (Insert appends), which keeps posting lists sorted for free.
func (ix *Index) add(v value.Value, row int32) {
	if v.IsNull() {
		if ix.Kind == OrderedIndex {
			ix.nulls = append(ix.nulls, row)
		}
		return
	}
	if v.K == value.Float && math.IsNaN(v.F) {
		// NaN Compare-equals every numeric but hashes uniquely; no index
		// structure can mirror the evaluator, so the column degenerates.
		ix.class = classMixed
	} else if c := classOf(v.K); ix.class == classNone {
		ix.class = c
	} else if ix.class != c {
		ix.class = classMixed
	}
	if ix.Kind == HashIndex {
		k := v.HashKey()
		ix.post[k] = append(ix.post[k], row)
		return
	}
	ix.run = append(ix.run, ordEntry{v: v, row: row})
	ix.dirty = true
}

// Usable reports whether the index can answer predicates whose literal has
// kind lk. A mixed-class ordered run has no total order and answers
// nothing; a class mismatch would silently miss rows that the engine's
// cross-kind Compare quirks would have matched.
func (ix *Index) Usable(lk value.Kind) bool {
	if ix.class == classMixed && ix.Kind == OrderedIndex {
		return false
	}
	c := classOf(lk)
	return c != classNone && (ix.class == c || ix.class == classNone)
}

// Len returns the number of indexed (non-NULL) entries.
func (ix *Index) Len() int {
	if ix.Kind == HashIndex {
		n := 0
		for _, p := range ix.post {
			n += len(p)
		}
		return n
	}
	return len(ix.run)
}

// Postings returns the ascending row ids holding exactly v, or nil.
// Only valid on a HashIndex.
func (ix *Index) Postings(v value.Value) []int32 {
	if v.IsNull() || ix.post == nil {
		return nil
	}
	return ix.post[v.HashKey()]
}

// PostingsKey returns the posting list for a pre-rendered value.HashKey.
// Hash-join builds match keys by HashKey equality on both sides, exactly
// like this map, so no kind-class guard is needed here.
func (ix *Index) PostingsKey(hashKey string) []int32 {
	if ix.post == nil {
		return nil
	}
	return ix.post[hashKey]
}

// ensureSorted sorts the run by (key, row id). The sort is lazy so bulk
// loads stay O(n) per insert; the first lookup after a batch of inserts
// pays one O(n log n) sort.
func (ix *Index) ensureSorted() {
	if !ix.dirty {
		return
	}
	sort.Slice(ix.run, func(i, j int) bool {
		c := value.Compare(ix.run[i].v, ix.run[j].v)
		if c != 0 {
			return c < 0
		}
		return ix.run[i].row < ix.run[j].row
	})
	ix.dirty = false
}

// rangeBounds locates the sorted-run segment [start, end) matching the
// bounds. A nil bound is open; loIncl/hiIncl select closed vs open
// endpoints. Callers must hold an up-to-date run (ensureSorted).
func (ix *Index) rangeBounds(lo, hi *value.Value, loIncl, hiIncl bool) (start, end int) {
	start = 0
	if lo != nil {
		start = sort.Search(len(ix.run), func(i int) bool {
			c := value.Compare(ix.run[i].v, *lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	end = len(ix.run)
	if hi != nil {
		end = sort.Search(len(ix.run), func(i int) bool {
			c := value.Compare(ix.run[i].v, *hi)
			if hiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	return start, end
}

// RangeCount reports how many row ids Range would return, from the
// boundary searches alone — O(log n), no id materialization — so a caller
// can reject an unselective range probe before paying for its ids.
func (ix *Index) RangeCount(lo, hi *value.Value, loIncl, hiIncl bool) int {
	if ix.Kind != OrderedIndex {
		return 0
	}
	ix.ensureSorted()
	start, end := ix.rangeBounds(lo, hi, loIncl, hiIncl)
	if start >= end {
		return 0
	}
	return end - start
}

// Range returns the ascending row ids whose key falls in the given bounds.
// Only valid on an OrderedIndex.
func (ix *Index) Range(lo, hi *value.Value, loIncl, hiIncl bool) []int32 {
	if ix.Kind != OrderedIndex {
		return nil
	}
	ix.ensureSorted()
	start, end := ix.rangeBounds(lo, hi, loIncl, hiIncl)
	if start >= end {
		return nil
	}
	ids := make([]int32, end-start)
	for i := start; i < end; i++ {
		ids[i-start] = ix.run[i].row
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EmitOrdered returns every row id (including NULL-key rows) in the order
// a stable sort on the indexed column would produce: ascending keys with
// NULLs first, row id breaking ties — exactly the engine's ORDER BY. For
// desc, equal-key groups reverse as blocks but rows within a group keep
// ascending row order (stable sort on a descending comparator), and NULLs
// move last.
func (ix *Index) EmitOrdered(desc bool) []int32 {
	if ix.Kind != OrderedIndex || ix.class == classMixed {
		return nil
	}
	ix.ensureSorted()
	ids := make([]int32, 0, len(ix.run)+len(ix.nulls))
	if !desc {
		ids = append(ids, ix.nulls...)
		for _, e := range ix.run {
			ids = append(ids, e.row)
		}
		return ids
	}
	// Walk equal-key groups from the high end; rows inside a group stay
	// ascending.
	for end := len(ix.run); end > 0; {
		start := end - 1
		for start > 0 && value.Compare(ix.run[start-1].v, ix.run[end-1].v) == 0 {
			start--
		}
		for i := start; i < end; i++ {
			ids = append(ids, ix.run[i].row)
		}
		end = start
	}
	return append(ids, ix.nulls...)
}

// indexTag names one (column, kind) index slot of a table.
type indexTag struct {
	col  string
	kind IndexKind
}

// keyIndex enforces Schema.Key uniqueness: the concatenated HashKey of the
// key columns maps to the owning row. Rows with any NULL key component are
// exempt (SQL UNIQUE semantics).
type keyIndex struct {
	cols []int // schema positions of the key columns
	seen map[string]int32
}

func (k *keyIndex) keyOf(row []value.Value) (string, bool) {
	s := ""
	for _, ci := range k.cols {
		v := row[ci]
		if v.IsNull() {
			return "", false
		}
		s += v.HashKey() + "\x00"
	}
	return s, true
}

// internRefBytes is the accounted resident size of a dictionary reference:
// a duplicate ciphertext occupies one 4-byte id in the row instead of a
// fresh copy of its bytes.
const internRefBytes = 4

// internDisableAfter / internDisableRatio: once a column has seen this
// many distinct values with a hit rate below 1/internDisableRatio, the
// dictionary is clearly not paying for itself (high-cardinality or random
// ciphertexts like RND) and is dropped to avoid doubling resident memory.
const (
	internDisableAfter = 4096
	internDisableRatio = 16
)

// internDict interns repeated string/bytes values of one column: the first
// occurrence is canonical, later equal values share its backing and are
// accounted at internRefBytes.
type internDict struct {
	m        map[string]value.Value
	hits     int64
	disabled bool
}

// add returns the canonical value and the resident bytes to charge.
func (d *internDict) add(v value.Value) (value.Value, int64) {
	if d.disabled {
		return v, int64(v.Size())
	}
	if d.m == nil {
		d.m = make(map[string]value.Value)
	}
	var key string
	if v.K == value.Bytes {
		key = string(v.B)
	} else {
		key = v.S
	}
	if cv, ok := d.m[key]; ok {
		d.hits++
		return cv, internRefBytes
	}
	d.m[key] = v
	if len(d.m) >= internDisableAfter &&
		d.hits*internDisableRatio < d.hits+int64(len(d.m)) {
		d.disabled = true
		d.m = nil
	}
	return v, int64(v.Size())
}
