package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/value"
	"repro/internal/wire"
)

// diskStore is the paged disk backend: one append-only segment file per
// table.
//
// Segment layout:
//
//	offset 0              ┌──────────────────────────────────────────┐
//	                      │ magic "MONOSEG1" (8) │ version u32       │
//	                      │ pageSize u32 │ metaLen u32 │ meta JSON   │
//	                      │ (schema, index specs, row count)  … pad  │
//	offset pageSize       ├──────────────────────────────────────────┤
//	                      │ page 0: nrows u32 │ used u32 │ crc32 u32 │
//	                      │   row: len u32 │ value frames …          │
//	                      │   row: len u32 │ value frames …   … pad  │
//	offset pageSize*2     ├──────────────────────────────────────────┤
//	                      │ page 1: …                                │
//	                      └──────────────────────────────────────────┘
//
// Pages are fixed-size (pageSize); a single row too large for one page
// gets an oversized page of exactly header+row bytes, so page offsets stay
// derivable by one forward header walk. Values use the wire encoding
// (internal/wire) except Bool, which the wire flattens into Int — the page
// codec adds a local tag so every column kind round-trips. Rows are
// buffered in an in-memory tail page and written out when the page fills
// or on Flush (the tail page is rewritten in place until it seals), so an
// encryption-time bulk load writes each page roughly once.
//
// Reads go through an LRU block cache of decoded pages with hit/miss
// counters; a cache miss is exactly one physical page read, and Scan/Fetch
// report the bytes those misses read — the number the engine charges in
// place of the in-memory resident-byte approximation (Paged() == true).
//
// Every integrity failure — bad magic or geometry, truncated or
// checksum-corrupt page, undecodable row, a row count short of the
// metadata — returns a *SegmentError wrapping ErrCorruptSegment.
type diskStore struct {
	path     string
	f        *os.File
	pageSize int

	mu       sync.Mutex
	dir      []pageMeta      // sealed pages, in file order
	nflushed int             // rows held by sealed pages
	tail     [][]value.Value // rows not yet in a sealed page (decoded)
	tailBuf  []byte          // their encoded payload
	tailOff  int64           // file offset the tail page writes to
	cache    *blockCache
	io       IOStats
}

// pageMeta locates one sealed page.
type pageMeta struct {
	off     int64
	physLen int64
	first   int // row id of the page's first row
	nrows   int
}

const (
	segMagic      = "MONOSEG1"
	segVersion    = 1
	segHeaderLen  = 8 + 4 + 4 + 4 // magic, version, pageSize, metaLen
	pageHeaderLen = 4 + 4 + 4     // nrows, used, crc32
	// pageTagBool is the page codec's local tag for Bool values: the wire
	// encoding (reused for every other kind) flattens Bool into Int, which
	// must not survive a round trip through the row store.
	pageTagBool = 6
)

// segPath is the segment file of a table.
func segPath(dir, table string) string { return filepath.Join(dir, table+".seg") }

// createDiskStore starts an empty segment file, writing the header and the
// initial metadata.
func createDiskStore(cfg BackendConfig, meta *SegmentMeta) (*diskStore, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("storage: disk backend needs BackendConfig.Dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	path := segPath(cfg.Dir, meta.Schema.Name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	ds := &diskStore{
		path: path, f: f, pageSize: cfg.pageBytes(),
		tailOff: int64(cfg.pageBytes()),
		cache:   newBlockCache(cfg.cacheBytes()),
	}
	if err := ds.writeMeta(meta); err != nil {
		f.Close()
		return nil, err
	}
	return ds, nil
}

// openDiskStore opens an existing segment, verifies its geometry and every
// page checksum (the directory walk reads only headers; checksums verify
// lazily as pages are read, and the caller's rebuild scan reads them all),
// and returns the store plus the persisted metadata.
func openDiskStore(path string, cfg BackendConfig) (*diskStore, *SegmentMeta, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	ds := &diskStore{path: path, f: f}
	meta, err := ds.readHeader()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	ds.cache = newBlockCache(cfg.cacheBytes())
	if err := ds.buildDir(); err != nil {
		f.Close()
		return nil, nil, err
	}
	if ds.nflushed != meta.Rows {
		off := int64(ds.pageSize)
		if n := len(ds.dir); n > 0 {
			off = ds.dir[n-1].off
		}
		f.Close()
		return nil, nil, corruptf(path, off, "segment holds %d rows, metadata promises %d (truncated?)", ds.nflushed, meta.Rows)
	}
	return ds, meta, nil
}

// writeMeta serializes the table metadata into the header area. The header
// region is the first page; metadata that outgrows it is a configuration
// error, not data corruption.
func (ds *diskStore) writeMeta(meta *SegmentMeta) error {
	body, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if segHeaderLen+len(body) > ds.pageSize {
		return fmt.Errorf("storage: segment %s: metadata (%d bytes) exceeds page size %d", ds.path, len(body), ds.pageSize)
	}
	buf := make([]byte, 0, segHeaderLen+len(body))
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint32(buf, segVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(ds.pageSize))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	_, err = ds.f.WriteAt(buf, 0)
	return err
}

// readHeader parses the segment header and metadata.
func (ds *diskStore) readHeader() (*SegmentMeta, error) {
	hdr := make([]byte, segHeaderLen)
	if _, err := ds.f.ReadAt(hdr, 0); err != nil {
		return nil, corruptf(ds.path, 0, "short header: %v", err)
	}
	if string(hdr[:8]) != segMagic {
		return nil, corruptf(ds.path, 0, "bad magic %q", hdr[:8])
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != segVersion {
		return nil, corruptf(ds.path, 8, "unsupported version %d", v)
	}
	ds.pageSize = int(binary.BigEndian.Uint32(hdr[12:16]))
	if ds.pageSize < segHeaderLen+pageHeaderLen || ds.pageSize > 1<<26 {
		return nil, corruptf(ds.path, 12, "implausible page size %d", ds.pageSize)
	}
	metaLen := int(binary.BigEndian.Uint32(hdr[16:20]))
	if segHeaderLen+metaLen > ds.pageSize {
		return nil, corruptf(ds.path, 16, "metadata length %d exceeds page size %d", metaLen, ds.pageSize)
	}
	body := make([]byte, metaLen)
	if _, err := ds.f.ReadAt(body, segHeaderLen); err != nil {
		return nil, corruptf(ds.path, segHeaderLen, "short metadata: %v", err)
	}
	meta := &SegmentMeta{}
	if err := json.Unmarshal(body, meta); err != nil {
		return nil, corruptf(ds.path, segHeaderLen, "undecodable metadata: %v", err)
	}
	return meta, nil
}

// buildDir walks the page headers from the first data offset to the end of
// the file, reconstructing the page directory.
func (ds *diskStore) buildDir() error {
	fi, err := ds.f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	off := int64(ds.pageSize)
	for off < size {
		hdr := make([]byte, pageHeaderLen)
		if off+pageHeaderLen > size {
			return corruptf(ds.path, off, "truncated page header")
		}
		if _, err := ds.f.ReadAt(hdr, off); err != nil {
			return corruptf(ds.path, off, "unreadable page header: %v", err)
		}
		nrows := int(binary.BigEndian.Uint32(hdr[0:4]))
		used := int(binary.BigEndian.Uint32(hdr[4:8]))
		physLen := int64(ds.pageSize)
		if int64(pageHeaderLen+used) > physLen {
			physLen = int64(pageHeaderLen + used)
		}
		if off+physLen > size {
			return corruptf(ds.path, off, "truncated page: %d payload bytes past end of file", off+physLen-size)
		}
		if nrows == 0 || used == 0 {
			return corruptf(ds.path, off, "empty page (%d rows, %d bytes)", nrows, used)
		}
		ds.dir = append(ds.dir, pageMeta{off: off, physLen: physLen, first: ds.nflushed, nrows: nrows})
		ds.nflushed += nrows
		off += physLen
	}
	ds.tailOff = off
	return nil
}

// --- value codec (wire encoding + a Bool tag) ---

// appendRow frames one row: u32 total value-frame length, then each value.
func appendRow(dst []byte, row []value.Value) ([]byte, error) {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	var err error
	for _, v := range row {
		if v.K == value.Bool {
			b := byte(0)
			if v.I != 0 {
				b = 1
			}
			dst = append(dst, pageTagBool, b)
			continue
		}
		if dst, err = wire.AppendValue(dst, v); err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-start))
	return dst, nil
}

// decodeRowAt decodes the row frame starting at b[pos], returning the row
// and the next position.
func decodeRowAt(b []byte, pos int) ([]value.Value, int, error) {
	if pos+4 > len(b) {
		return nil, 0, fmt.Errorf("truncated row length")
	}
	n := int(binary.BigEndian.Uint32(b[pos : pos+4]))
	pos += 4
	if pos+n > len(b) {
		return nil, 0, fmt.Errorf("row frame (%d bytes) past end of page", n)
	}
	end := pos + n
	var row []value.Value
	for pos < end {
		if b[pos] == pageTagBool {
			if pos+2 > end {
				return nil, 0, fmt.Errorf("truncated bool")
			}
			row = append(row, value.NewBool(b[pos+1] != 0))
			pos += 2
			continue
		}
		v, used, err := wire.DecodeValue(b[pos:end])
		if err != nil {
			return nil, 0, err
		}
		row = append(row, v)
		pos += used
	}
	return row, end, nil
}

// --- writes ---

func (ds *diskStore) Append(row []value.Value) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	before := len(ds.tailBuf)
	buf, err := appendRow(ds.tailBuf, row)
	if err != nil {
		return err
	}
	frame := len(buf) - before
	// A full tail page seals before this row starts a fresh one; a row that
	// alone overflows a page seals immediately as an oversized page.
	if before > 0 && len(buf)+pageHeaderLen > ds.pageSize {
		ds.tailBuf = buf[:before]
		if err := ds.sealTail(); err != nil {
			return err
		}
		buf = append(ds.tailBuf, buf[before:before+frame]...)
	}
	ds.tailBuf = buf
	ds.tail = append(ds.tail, row)
	if len(ds.tailBuf)+pageHeaderLen >= ds.pageSize {
		return ds.sealTail()
	}
	return nil
}

// writeTailPage writes the current tail rows as a page at tailOff and
// returns its physical length. Padding zero-fills to the page size.
func (ds *diskStore) writeTailPage() (int64, error) {
	used := len(ds.tailBuf)
	physLen := ds.pageSize
	if pageHeaderLen+used > physLen {
		physLen = pageHeaderLen + used
	}
	page := make([]byte, physLen)
	binary.BigEndian.PutUint32(page[0:4], uint32(len(ds.tail)))
	binary.BigEndian.PutUint32(page[4:8], uint32(used))
	binary.BigEndian.PutUint32(page[8:12], crc32.ChecksumIEEE(ds.tailBuf))
	copy(page[pageHeaderLen:], ds.tailBuf)
	if _, err := ds.f.WriteAt(page, ds.tailOff); err != nil {
		return 0, err
	}
	return int64(physLen), nil
}

// sealTail writes the tail page out and starts a new one.
func (ds *diskStore) sealTail() error {
	if len(ds.tail) == 0 {
		return nil
	}
	physLen, err := ds.writeTailPage()
	if err != nil {
		return err
	}
	// The partial tail may have been written by an earlier Flush and cached
	// by a read since; it just changed shape.
	ds.cache.drop(len(ds.dir))
	ds.dir = append(ds.dir, pageMeta{off: ds.tailOff, physLen: physLen, first: ds.nflushed, nrows: len(ds.tail)})
	ds.nflushed += len(ds.tail)
	ds.tailOff += physLen
	ds.tail = nil
	ds.tailBuf = nil
	return nil
}

func (ds *diskStore) Flush(meta *SegmentMeta) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	// The partial tail page is written in place but stays open in memory:
	// later appends extend it and rewrite the same offset.
	if len(ds.tail) > 0 {
		if _, err := ds.writeTailPage(); err != nil {
			return err
		}
	}
	return ds.writeMeta(meta)
}

func (ds *diskStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.f == nil {
		return nil
	}
	err := ds.f.Sync()
	cerr := ds.f.Close()
	ds.f = nil
	if err == nil {
		err = cerr
	}
	return err
}

// --- reads ---

func (ds *diskStore) NumRows() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.nflushed + len(ds.tail)
}

func (ds *diskStore) Paged() bool { return true }

func (ds *diskStore) IO() IOStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.io
}

// pageAt returns the directory position of the sealed page holding row id.
func (ds *diskStore) pageAt(id int) int {
	return sort.Search(len(ds.dir), func(i int) bool {
		return ds.dir[i].first+ds.dir[i].nrows > id
	})
}

// readPage returns the decoded rows of sealed page pi, via the block
// cache; the second result is the physical bytes this call read (the
// page's size on a miss, 0 on a hit). Callers hold ds.mu.
func (ds *diskStore) readPage(pi int) ([][]value.Value, int64, error) {
	if rows := ds.cache.get(pi); rows != nil {
		return rows, 0, nil
	}
	pm := ds.dir[pi]
	raw := make([]byte, pm.physLen)
	if _, err := ds.f.ReadAt(raw, pm.off); err != nil {
		return nil, 0, corruptf(ds.path, pm.off, "unreadable page: %v", err)
	}
	nrows := int(binary.BigEndian.Uint32(raw[0:4]))
	used := int(binary.BigEndian.Uint32(raw[4:8]))
	sum := binary.BigEndian.Uint32(raw[8:12])
	if nrows != pm.nrows || pageHeaderLen+used > len(raw) {
		return nil, 0, corruptf(ds.path, pm.off, "page header changed shape (%d rows, %d bytes)", nrows, used)
	}
	payload := raw[pageHeaderLen : pageHeaderLen+used]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, corruptf(ds.path, pm.off, "page checksum mismatch")
	}
	rows := make([][]value.Value, 0, nrows)
	pos := 0
	for r := 0; r < nrows; r++ {
		row, next, err := decodeRowAt(payload, pos)
		if err != nil {
			return nil, 0, corruptf(ds.path, pm.off+int64(pageHeaderLen+pos), "row %d: %v", pm.first+r, err)
		}
		rows = append(rows, row)
		pos = next
	}
	if pos != used {
		return nil, 0, corruptf(ds.path, pm.off, "page has %d trailing payload bytes", used-pos)
	}
	ds.cache.put(pi, rows, pm.physLen)
	ds.io.PageReads++
	ds.io.BytesRead += pm.physLen
	return rows, pm.physLen, nil
}

func (ds *diskStore) Scan(lo, hi int) ([][]value.Value, int64, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	n := ds.nflushed + len(ds.tail)
	if lo < 0 || hi > n || lo > hi {
		return nil, 0, fmt.Errorf("storage: scan [%d,%d) out of range (%d rows)", lo, hi, n)
	}
	out := make([][]value.Value, 0, hi-lo)
	var phys int64
	for id := lo; id < hi && id < ds.nflushed; {
		pi := ds.pageAt(id)
		pm := ds.dir[pi]
		rows, p, err := ds.readPage(pi)
		if err != nil {
			return nil, 0, err
		}
		phys += p
		end := pm.first + pm.nrows
		if end > hi {
			end = hi
		}
		out = append(out, rows[id-pm.first:end-pm.first]...)
		id = end
	}
	if hi > ds.nflushed {
		start := lo
		if start < ds.nflushed {
			start = ds.nflushed
		}
		out = append(out, ds.tail[start-ds.nflushed:hi-ds.nflushed]...)
	}
	ds.mirrorIO(phys)
	return out, phys, nil
}

func (ds *diskStore) Fetch(ids []int32) ([][]value.Value, int64, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	n := ds.nflushed + len(ds.tail)
	out := make([][]value.Value, len(ids))
	var phys int64
	for i, id32 := range ids {
		id := int(id32)
		if id < 0 || id >= n {
			return nil, 0, fmt.Errorf("storage: fetch id %d out of range (%d rows)", id, n)
		}
		if id >= ds.nflushed {
			out[i] = ds.tail[id-ds.nflushed]
			continue
		}
		pi := ds.pageAt(id)
		rows, p, err := ds.readPage(pi)
		if err != nil {
			return nil, 0, err
		}
		phys += p
		out[i] = rows[id-ds.dir[pi].first]
	}
	ds.mirrorIO(phys)
	return out, phys, nil
}

// mirrorIO folds the cache's hit/miss counters into the IO snapshot (the
// cache mutates under ds.mu, so a plain copy is race-free).
func (ds *diskStore) mirrorIO(int64) {
	ds.io.CacheHits = ds.cache.hits
	ds.io.CacheMisses = ds.cache.misses
}
