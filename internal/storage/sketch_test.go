package storage

import (
	"fmt"
	"testing"

	"repro/internal/value"
)

// TestNDVSketchExactBelowLimit: the sketch is exact while sparse, so small
// tables (every fixture) keep the planner selectivities of the
// enumerate-all-rows era.
func TestNDVSketchExactBelowLimit(t *testing.T) {
	var s ndvSketch
	for i := 0; i < 5000; i++ {
		s.add(fmt.Sprintf("k%d", i%1000))
	}
	if got := s.estimate(); got != 1000 {
		t.Fatalf("sparse estimate = %d, want exactly 1000", got)
	}
}

// TestNDVSketchDenseAccuracy: past the sparse limit the HLL estimate stays
// within a loose error band (m=256 → ~6.5% standard error).
func TestNDVSketchDenseAccuracy(t *testing.T) {
	for _, n := range []int{10000, 50000, 200000} {
		var s ndvSketch
		for i := 0; i < n; i++ {
			s.add(fmt.Sprintf("key-%d", i))
		}
		got := float64(s.estimate())
		if got < 0.75*float64(n) || got > 1.25*float64(n) {
			t.Errorf("estimate(%d distinct) = %.0f, off by more than 25%%", n, got)
		}
	}
}

// TestNDVSketchDuplicatesDense: duplicates past the collapse never inflate
// the estimate.
func TestNDVSketchDuplicatesDense(t *testing.T) {
	var s ndvSketch
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 20000; i++ {
			s.add(fmt.Sprintf("key-%d", i))
		}
	}
	got := float64(s.estimate())
	if got < 0.75*20000 || got > 1.25*20000 {
		t.Errorf("estimate after duplicate passes = %.0f, want ~20000", got)
	}
}

// TestColMetaObserve: column metadata tracks width, bounds, and NDV the way
// the planner's old row enumeration did (NULLs skipped).
func TestColMetaObserve(t *testing.T) {
	var m colMeta
	m.observe(value.NewInt(7))
	m.observe(value.NewInt(-3))
	m.observe(value.NewInt(7))
	m.observe(value.NewNull())
	cm := m.snapshot()
	if cm.NDV != 2 {
		t.Errorf("NDV = %d, want 2", cm.NDV)
	}
	if !cm.HasNum || cm.Min != -3 || cm.Max != 7 {
		t.Errorf("bounds = [%d,%d] hasNum=%v", cm.Min, cm.Max, cm.HasNum)
	}
	if cm.TotalLen != 24 {
		t.Errorf("TotalLen = %d, want 24 (3 non-NULL ints)", cm.TotalLen)
	}

	var ms colMeta
	ms.observe(value.NewStr("abc"))
	ms.observe(value.NewStr("abc"))
	cs := ms.snapshot()
	if cs.NDV != 1 || cs.HasNum || cs.TotalLen != 6 {
		t.Errorf("str meta = %+v", cs)
	}
}
