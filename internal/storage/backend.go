package storage

import (
	"errors"
	"fmt"

	"repro/internal/value"
)

// Backend is the physical row store behind a Table. The Table keeps every
// derived structure — secondary indexes, the unique-key index, interning
// dictionaries, per-column metadata, byte accounting — and delegates only
// raw row storage: ordered append, batch scans by row-id range, and point
// fetches by id list (the access path's shape). Row ids are assignment
// order (0-based), identical across backends, so everything layered above
// (sharded scans, streamed batches, index posting lists, the differential
// grid) is byte-identical no matter which backend holds the rows.
//
// Scan and Fetch additionally report the physical bytes read from the
// medium to serve the call: a paged backend counts block-cache misses
// times the page size, while the in-memory backend reports 0 and leaves
// the engine's resident-byte approximation in charge (Table.Paged picks
// the charging rule).
type Backend interface {
	// Append stores one row at the next row id. Values are already
	// canonicalized (interning) and validated by the Table.
	Append(row []value.Value) error
	// Scan returns the rows with ids in [lo, hi) in id order, plus the
	// physical bytes read. The returned batch may alias backend memory and
	// must be treated as read-only.
	Scan(lo, hi int) ([][]value.Value, int64, error)
	// Fetch returns the rows named by an ascending id list, in list order,
	// plus the physical bytes read.
	Fetch(ids []int32) ([][]value.Value, int64, error)
	// NumRows is the stored row count.
	NumRows() int
	// Paged reports whether Scan/Fetch byte counts are real medium reads
	// (true: the engine charges them; false: the engine charges the
	// resident-byte approximation).
	Paged() bool
	// Flush persists buffered rows and the given table metadata. A no-op
	// for in-memory backends.
	Flush(meta *SegmentMeta) error
	// Close flushes and releases the backend's resources.
	Close() error
	// IO returns cumulative physical-read counters (zero for in-memory
	// backends).
	IO() IOStats
}

// BackendKind selects a Table's physical row store.
type BackendKind uint8

// Backend kinds.
const (
	// BackendMem holds rows as Go slices (the original store).
	BackendMem BackendKind = iota
	// BackendDisk holds rows in an append-only paged segment file with an
	// LRU block cache (diskstore.go).
	BackendDisk
)

func (k BackendKind) String() string {
	if k == BackendDisk {
		return "disk"
	}
	return "mem"
}

// ParseBackendKind maps a CLI flag value to a BackendKind.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "", "mem", "memory":
		return BackendMem, nil
	case "disk":
		return BackendDisk, nil
	}
	return BackendMem, fmt.Errorf("storage: unknown backend %q (want mem or disk)", s)
}

// Default disk-backend geometry.
const (
	// DefaultPageBytes is the segment page size: large enough that row
	// framing overhead is noise, small enough that a cache of a few
	// hundred pages tracks the working set.
	DefaultPageBytes = 8192
	// DefaultCacheBytes is the block-cache capacity (128 pages at the
	// default page size).
	DefaultCacheBytes = 1 << 20
)

// BackendConfig selects and tunes the backend a Catalog creates tables on.
// The zero value is the in-memory store.
type BackendConfig struct {
	Kind BackendKind
	// Dir is where BackendDisk places its one segment file per table.
	Dir string
	// PageBytes is the segment page size (0 = DefaultPageBytes).
	PageBytes int
	// CacheBytes is the block-cache capacity in bytes (0 = DefaultCacheBytes).
	CacheBytes int64
}

func (c BackendConfig) pageBytes() int {
	if c.PageBytes <= 0 {
		return DefaultPageBytes
	}
	return c.PageBytes
}

func (c BackendConfig) cacheBytes() int64 {
	if c.CacheBytes <= 0 {
		return DefaultCacheBytes
	}
	return c.CacheBytes
}

// IOStats counts a backend's physical reads. PageReads == CacheMisses
// (every miss is exactly one page read); both are kept so callers can
// report a hit rate and a read count without inferring one from the other.
type IOStats struct {
	PageReads   int64 // pages read from the medium
	CacheHits   int64 // page lookups served by the block cache
	CacheMisses int64 // page lookups that went to the medium
	BytesRead   int64 // physical bytes read from the medium
}

// Add accumulates o into s.
func (s *IOStats) Add(o IOStats) {
	s.PageReads += o.PageReads
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.BytesRead += o.BytesRead
}

// HitRate is the block-cache hit fraction (1 when no lookups happened).
func (s IOStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 1
	}
	return float64(s.CacheHits) / float64(total)
}

// IndexSpec names one secondary index for segment metadata, so a reopened
// table rebuilds exactly the indexes it was closed with.
type IndexSpec struct {
	Col  string    `json:"col"`
	Kind IndexKind `json:"kind"`
}

// SegmentMeta is the durable table metadata a paged backend persists
// alongside the rows: the schema (with its unique key), the secondary
// indexes to rebuild on open, and the row count (a reopen that finds fewer
// rows than the metadata promises knows the segment was truncated).
type SegmentMeta struct {
	Schema  Schema      `json:"schema"`
	Indexes []IndexSpec `json:"indexes,omitempty"`
	Rows    int         `json:"rows"`
}

// ErrCorruptSegment is the sentinel every segment-integrity failure wraps:
// bad magic, version or geometry mismatch, truncated page, checksum
// mismatch, undecodable row, or a row count short of the metadata.
// Callers test with errors.Is.
var ErrCorruptSegment = errors.New("storage: corrupt segment")

// SegmentError is the typed error for a damaged segment file. It wraps
// ErrCorruptSegment and records where and why the segment failed.
type SegmentError struct {
	Path   string // segment file path
	Offset int64  // byte offset of the failure (-1 when not positional)
	Reason string
}

func (e *SegmentError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("storage: segment %s: offset %d: %s", e.Path, e.Offset, e.Reason)
	}
	return fmt.Sprintf("storage: segment %s: %s", e.Path, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCorruptSegment) hold.
func (e *SegmentError) Unwrap() error { return ErrCorruptSegment }

func corruptf(path string, off int64, format string, args ...any) error {
	return &SegmentError{Path: path, Offset: off, Reason: fmt.Sprintf(format, args...)}
}
