package transport

// The serving side: a TCP (optionally TLS) listener multiplexing many
// concurrent client sessions onto one server.Server. Each accepted
// connection becomes a session with two goroutines:
//
//   - the read loop owns the socket's read half: it performs the
//     handshake, decodes query frames into jobs for the executor, and
//     handles cancel frames immediately — which is why it must never
//     execute queries itself;
//   - the executor drains the session's job queue one query at a time
//     (queries on one session are ordered, like any SQL connection;
//     concurrency comes from many sessions), acquiring the global
//     in-flight slot, streaming the result through data frames, and
//     closing with a done or error frame.
//
// Admission control is two gates with fail-fast rejection frames: the
// connection cap rejects at accept time (reject frame, close), and the
// in-flight query cap bounds globally concurrent executions — a query
// that cannot get a slot within QueryWait is rejected with an error frame
// (CodeQueryRejected) while its session stays healthy. Backpressure
// inside an admitted query is the socket itself: data frames are written
// as the engine produces batches, so a slow client stalls its own
// session's scan (the engine's bounded shard queues hold the readahead)
// without consuming more than its one in-flight slot.

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/server"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// Config tunes a transport server.
type Config struct {
	// MaxConns caps concurrently accepted sessions; connection MaxConns+1
	// receives a reject frame and is closed. 0 = unlimited.
	MaxConns int
	// MaxInFlight caps globally concurrent query executions across all
	// sessions. 0 = unlimited.
	MaxInFlight int
	// QueryWait is how long a query may wait for an in-flight slot before
	// being rejected. 0 = fail fast: reject immediately when saturated.
	QueryWait time.Duration
	// HandshakeTimeout bounds the hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write, so a peer that stops reading
	// cannot pin a session goroutine forever (default 30s; the session
	// closes on expiry).
	WriteTimeout time.Duration
	// TLS, when set, wraps accepted connections in server-side TLS.
	TLS *tls.Config
	// QueryQueue is the per-session pipeline depth: queries decoded but
	// not yet executing (default 16). The read loop blocks past it.
	QueryQueue int
}

func (c Config) withDefaults() Config {
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.QueryQueue <= 0 {
		c.QueryQueue = 16
	}
	return c
}

// ServerStats is a server-wide counter snapshot.
type ServerStats struct {
	Accepted      int64 // sessions admitted (handshake completed)
	RejectedConns int64 // connections refused by the connection cap
	Queries       int64 // queries executed (successfully or not)
	RejectedQs    int64 // queries refused by the in-flight cap
	Cancelled     int64 // queries aborted by a cancel frame
	Errors        int64 // queries that failed (parse or execution)
	Prepared      int64 // statements registered by prepare frames
	StmtExecs     int64 // executions that ran via a prepared statement
}

// SessionStats is one session's accounting: every counter reflects only
// that session's own queries, so a client can reconcile what it received
// against what the server believes it shipped.
type SessionStats struct {
	Queries   int64 // completed successfully
	Rejected  int64 // refused by the in-flight cap
	Cancelled int64
	Errors    int64
	Prepared  int64 // statements this session registered
	StmtExecs int64 // executions that ran via a prepared statement
	Rows      int64 // result rows shipped (sum of done-frame Rows)
	Batches   int64 // result batches shipped
	WireBytes int64 // framed result-stream bytes shipped (the wire.Batch* bytes)
}

// Server accepts transport sessions and runs their queries on a
// server.Server (the untrusted half of the split execution).
type Server struct {
	backend *server.Server
	cfg     Config
	ln      net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	inflight chan struct{} // nil = unlimited

	mu        sync.Mutex
	sessions  map[uint64]*session
	stats     map[uint64]*SessionStats // retained after session close
	nextSID   uint64
	acceptErr error

	accepted, rejectedConns, queries, rejectedQs, cancelled, errors int64
	prepared, stmtExecs                                             int64
}

// Listen starts a server on addr (e.g. "127.0.0.1:0" or ":7077").
func Listen(backend *server.Server, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(backend, ln, cfg), nil
}

// Serve starts accepting sessions from ln. The returned Server owns the
// listener; Close stops accepting, tears down live sessions, and joins
// every goroutine.
func Serve(backend *server.Server, ln net.Listener, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.TLS != nil {
		ln = tls.NewListener(ln, cfg.TLS)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		backend:  backend,
		cfg:      cfg,
		ln:       ln,
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[uint64]*session),
		stats:    make(map[uint64]*SessionStats),
	}
	if cfg.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInFlight)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr is the listener's address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, closes every live session, and waits for all
// session goroutines to exit.
func (s *Server) Close() error {
	s.cancel()
	err := s.ln.Close()
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Stats returns a snapshot of the server-wide counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Accepted:      atomic.LoadInt64(&s.accepted),
		RejectedConns: atomic.LoadInt64(&s.rejectedConns),
		Queries:       atomic.LoadInt64(&s.queries),
		RejectedQs:    atomic.LoadInt64(&s.rejectedQs),
		Cancelled:     atomic.LoadInt64(&s.cancelled),
		Errors:        atomic.LoadInt64(&s.errors),
		Prepared:      atomic.LoadInt64(&s.prepared),
		StmtExecs:     atomic.LoadInt64(&s.stmtExecs),
	}
}

// SessionStats returns the accounting for one session (live or closed).
func (s *Server) SessionStats(id uint64) (SessionStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[id]
	if !ok {
		return SessionStats{}, false
	}
	return *st, true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			if s.ctx.Err() == nil {
				s.acceptErr = err
			}
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns {
			s.mu.Unlock()
			atomic.AddInt64(&s.rejectedConns, 1)
			// Fail fast with a clean rejection frame, but off the accept
			// loop (a wedged peer must not stall admission), and read the
			// client's hello before closing: closing with unread inbound
			// data RSTs the connection, which can discard the reject frame
			// before the peer sees it.
			s.wg.Add(1)
			go func(conn net.Conn) {
				defer s.wg.Done()
				defer conn.Close()
				deadline := time.Now().Add(2 * time.Second)
				conn.SetDeadline(deadline)
				readFrame(conn)
				writeFrame(conn, frameReject, rejectPayload(CodeConnRejected,
					fmt.Sprintf("server at connection capacity (%d)", s.cfg.MaxConns)))
			}(conn)
			continue
		}
		s.nextSID++
		sess := newSession(s, conn, s.nextSID)
		s.sessions[sess.id] = sess
		s.stats[sess.id] = &sess.stats
		s.mu.Unlock()
		atomic.AddInt64(&s.accepted, 1)
		s.wg.Add(1)
		go sess.run()
	}
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
}

// queryJob is one decoded query frame queued for the session executor.
// Statement executions carry the stored statement's already-parsed AST in
// q (resolved at frame-decode time, so a close-stmt frame racing behind
// the exec frame cannot invalidate it) and leave sql empty.
type queryJob struct {
	qid    uint64
	sql    string
	q      *ast.Query
	stmt   bool
	params map[string]value.Value
	ctx    context.Context
	cancel context.CancelFunc
}

// preparedStmt is one registered statement: the parsed query and its fixed
// prepare-time parameter values (the hoisted ciphertext constants).
type preparedStmt struct {
	q      *ast.Query
	params map[string]value.Value
}

// session is one accepted connection.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64

	ctx    context.Context
	cancel context.CancelFunc

	wmu sync.Mutex // frame-writer lock (single logical writer)

	pmu     sync.Mutex
	pending map[uint64]*queryJob

	stmu  sync.Mutex
	stmts map[uint64]*preparedStmt

	jobs chan *queryJob

	smu   sync.Mutex
	stats SessionStats
}

func newSession(s *Server, conn net.Conn, id uint64) *session {
	ctx, cancel := context.WithCancel(s.ctx)
	return &session{
		srv: s, conn: conn, id: id,
		ctx: ctx, cancel: cancel,
		pending: make(map[uint64]*queryJob),
		stmts:   make(map[uint64]*preparedStmt),
		jobs:    make(chan *queryJob, s.cfg.QueryQueue),
	}
}

// writeFrame writes one frame under the session's writer lock with the
// configured write deadline; a deadline expiry poisons the connection
// (framing can no longer be trusted), so the session tears down.
func (s *session) writeFrame(tag byte, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.conn.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout))
	err := writeFrame(s.conn, tag, payload)
	if err != nil {
		s.conn.Close()
	}
	return err
}

// run is the session's read loop (see the file comment for the split of
// responsibilities between it and the executor).
func (s *session) run() {
	defer s.srv.wg.Done()
	defer s.conn.Close()
	defer s.cancel()
	defer s.srv.dropSession(s)

	if err := s.handshake(); err != nil {
		return
	}

	// Executor: one query at a time, in arrival order.
	var ewg sync.WaitGroup
	ewg.Add(1)
	go func() {
		defer ewg.Done()
		for job := range s.jobs {
			s.runQuery(job)
		}
	}()
	// LIFO: close the job queue, cancel any running query, then join the
	// executor — so a disconnect aborts an in-flight scan instead of
	// letting it run to completion against a dead socket.
	defer ewg.Wait()
	defer s.cancel()
	defer close(s.jobs) // read loop is the only sender

	for {
		tag, payload, err := readFrame(s.conn)
		if err != nil {
			return // EOF / disconnect / server close
		}
		switch tag {
		case frameQuery:
			qid, sql, params, err := parseQuery(payload)
			if err != nil {
				s.writeFrame(frameError, errorPayload(qid, CodeProtocol, err.Error()))
				return
			}
			qctx, qcancel := context.WithCancel(s.ctx)
			job := &queryJob{qid: qid, sql: sql, params: params, ctx: qctx, cancel: qcancel}
			s.pmu.Lock()
			s.pending[qid] = job
			s.pmu.Unlock()
			select {
			case s.jobs <- job:
			case <-s.ctx.Done():
				qcancel()
				return
			}
		case frameCancel:
			qid, err := parseCancel(payload)
			if err != nil {
				s.writeFrame(frameError, errorPayload(0, CodeProtocol, err.Error()))
				return
			}
			// Unknown qid is benign: the query may already have completed.
			s.pmu.Lock()
			if job, ok := s.pending[qid]; ok {
				job.cancel()
			}
			s.pmu.Unlock()
		case framePrepare:
			// Prepare is handled inline on the read loop (parse only — no
			// execution), so the ack is ordered before any later frame's
			// effect and an immediately following exec-stmt always resolves.
			id, sql, params, err := parseQuery(payload)
			if err != nil {
				s.writeFrame(frameError, errorPayload(id, CodeProtocol, err.Error()))
				return
			}
			q, perr := sqlparser.Parse(sql)
			if perr != nil {
				// A bad statement fails the prepare, not the session.
				s.countError()
				s.writeFrame(frameError, errorPayload(id, CodeQueryError, perr.Error()))
				continue
			}
			s.stmu.Lock()
			s.stmts[id] = &preparedStmt{q: q, params: params}
			s.stmu.Unlock()
			atomic.AddInt64(&s.srv.prepared, 1)
			s.smu.Lock()
			s.stats.Prepared++
			s.smu.Unlock()
			if s.writeFrame(framePrepareOK, prepareOKPayload(id)) != nil {
				return
			}
		case frameExecStmt:
			qid, stmtID, params, err := parseExecStmt(payload)
			if err != nil {
				s.writeFrame(frameError, errorPayload(qid, CodeProtocol, err.Error()))
				return
			}
			s.stmu.Lock()
			ps, ok := s.stmts[stmtID]
			s.stmu.Unlock()
			if !ok {
				// Unknown or closed id fails this execution with a clean
				// error frame; the session stays healthy.
				s.countError()
				s.writeFrame(frameError, errorPayload(qid, CodeUnknownStmt,
					fmt.Sprintf("statement %d is not prepared on this session", stmtID)))
				continue
			}
			merged := ps.params
			if len(params) > 0 {
				merged = make(map[string]value.Value, len(ps.params)+len(params))
				for k, v := range ps.params {
					merged[k] = v
				}
				for k, v := range params {
					merged[k] = v
				}
			}
			qctx, qcancel := context.WithCancel(s.ctx)
			job := &queryJob{qid: qid, q: ps.q, stmt: true, params: merged, ctx: qctx, cancel: qcancel}
			s.pmu.Lock()
			s.pending[qid] = job
			s.pmu.Unlock()
			select {
			case s.jobs <- job:
			case <-s.ctx.Done():
				qcancel()
				return
			}
		case frameCloseStmt:
			id, err := parseCloseStmt(payload)
			if err != nil {
				s.writeFrame(frameError, errorPayload(0, CodeProtocol, err.Error()))
				return
			}
			// Unknown id is benign (idempotent close).
			s.stmu.Lock()
			delete(s.stmts, id)
			s.stmu.Unlock()
		default:
			s.writeFrame(frameError, errorPayload(0, CodeProtocol,
				fmt.Sprintf("unexpected frame %#x", tag)))
			return
		}
	}
}

// handshake validates the client hello within the handshake deadline.
func (s *session) handshake() error {
	s.conn.SetReadDeadline(time.Now().Add(s.srv.cfg.HandshakeTimeout))
	defer s.conn.SetReadDeadline(time.Time{})
	tag, payload, err := readFrame(s.conn)
	if err != nil {
		return err
	}
	if tag != frameHello {
		s.writeFrame(frameReject, rejectPayload(CodeProtocol, "expected hello frame"))
		return errors.New("transport: no hello")
	}
	if err := parseHello(payload); err != nil {
		s.writeFrame(frameReject, rejectPayload(CodeProtocol, err.Error()))
		return err
	}
	return s.writeFrame(frameHelloOK, helloOKPayload(s.id))
}

// runQuery executes one job end to end: admission, parse, stream, close
// frame. It always unregisters the job's cancel handle.
func (s *session) runQuery(job *queryJob) {
	defer func() {
		s.pmu.Lock()
		delete(s.pending, job.qid)
		s.pmu.Unlock()
		job.cancel()
	}()

	if job.ctx.Err() != nil { // cancelled while queued
		s.countCancel()
		s.writeFrame(frameError, errorPayload(job.qid, CodeCancelled, "cancelled while queued"))
		return
	}

	// Admission: the global in-flight slot, waited for at most QueryWait.
	if s.srv.inflight != nil {
		if !s.acquireSlot(job) {
			return
		}
		defer func() { <-s.srv.inflight }()
	}

	q := job.q
	if q == nil {
		var err error
		q, err = sqlparser.Parse(job.sql)
		if err != nil {
			s.countError()
			s.writeFrame(frameError, errorPayload(job.qid, CodeQueryError, err.Error()))
			return
		}
	}

	cw := &chunkWriter{sess: s, qid: job.qid}
	st, err := s.srv.backend.ExecuteStreamCtx(job.ctx, q, job.params, cw)
	atomic.AddInt64(&s.srv.queries, 1)
	if job.stmt {
		atomic.AddInt64(&s.srv.stmtExecs, 1)
		s.smu.Lock()
		s.stats.StmtExecs++
		s.smu.Unlock()
	}
	if err != nil {
		code := CodeQueryError
		if job.ctx.Err() != nil {
			code = CodeCancelled
			s.countCancel()
		} else {
			s.countError()
		}
		s.writeFrame(frameError, errorPayload(job.qid, code, err.Error()))
		return
	}
	s.smu.Lock()
	s.stats.Queries++
	s.stats.Rows += st.Rows
	s.stats.Batches += st.Batches
	s.stats.WireBytes += st.WireBytes
	s.smu.Unlock()
	s.writeFrame(frameDone, donePayload(job.qid, st))
}

// acquireSlot waits for an in-flight slot, honouring QueryWait (0 = fail
// fast) and cancellation. It reports whether the slot was acquired; on
// rejection the error frame has already been written.
func (s *session) acquireSlot(job *queryJob) bool {
	reject := func(msg string) bool {
		atomic.AddInt64(&s.srv.rejectedQs, 1)
		s.smu.Lock()
		s.stats.Rejected++
		s.smu.Unlock()
		s.writeFrame(frameError, errorPayload(job.qid, CodeQueryRejected, msg))
		return false
	}
	if s.srv.cfg.QueryWait <= 0 {
		select {
		case s.srv.inflight <- struct{}{}:
			return true
		default:
			return reject(fmt.Sprintf("server at in-flight query capacity (%d)", s.srv.cfg.MaxInFlight))
		}
	}
	t := time.NewTimer(s.srv.cfg.QueryWait)
	defer t.Stop()
	select {
	case s.srv.inflight <- struct{}{}:
		return true
	case <-t.C:
		return reject(fmt.Sprintf("no in-flight slot within %v (cap %d)",
			s.srv.cfg.QueryWait, s.srv.cfg.MaxInFlight))
	case <-job.ctx.Done():
		s.countCancel()
		s.writeFrame(frameError, errorPayload(job.qid, CodeCancelled, "cancelled while waiting for a slot"))
		return false
	}
}

func (s *session) countCancel() {
	atomic.AddInt64(&s.srv.cancelled, 1)
	s.smu.Lock()
	s.stats.Cancelled++
	s.smu.Unlock()
}

func (s *session) countError() {
	atomic.AddInt64(&s.srv.errors, 1)
	s.smu.Lock()
	s.stats.Errors++
	s.smu.Unlock()
}

// chunkWriter carries one query's result stream as data frames. The
// engine-side BatchWriter sees a plain io.Writer, so the framed stream
// bytes are exactly the in-process stream's bytes, chunked into data
// frames for transport.
type chunkWriter struct {
	sess *session
	qid  uint64
	hdr  [8]byte
	set  bool
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	if !c.set {
		// qid prefix, encoded once.
		for i := 0; i < 8; i++ {
			c.hdr[i] = byte(c.qid >> (8 * (7 - i)))
		}
		c.set = true
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > dataChunkSize {
			n = dataChunkSize
		}
		payload := make([]byte, 0, 8+n)
		payload = append(payload, c.hdr[:]...)
		payload = append(payload, p[:n]...)
		if err := c.sess.writeFrame(frameData, payload); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}
