package transport

// Admission-control behaviour: the connection cap rejects the (C+1)th
// client with a clean frame, the in-flight query cap fail-fasts or waits
// per QueryWait, and nothing deadlocks at the caps (run with -race).

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sqlparser"
)

func TestConnCap(t *testing.T) {
	backend := testBackend(t, 50)
	s := startServer(t, backend, Config{MaxConns: 2})

	c1 := dialTest(t, s)
	c2 := dialTest(t, s)

	// The third connection is rejected with a typed frame, not a hang or
	// a bare reset.
	_, err := Dial(s.Addr().String())
	if err == nil {
		t.Fatal("dial beyond the connection cap succeeded")
	}
	if !IsRejected(err) {
		t.Fatalf("over-cap dial failed with %v, want an admission rejection", err)
	}
	if re, ok := err.(*RejectError); ok && re.Code != CodeConnRejected {
		t.Fatalf("over-cap dial code = %v, want CodeConnRejected", re.Code)
	}
	if got := s.Stats().RejectedConns; got != 1 {
		t.Fatalf("RejectedConns = %d, want 1", got)
	}

	// Admitted sessions are unaffected.
	var buf bytes.Buffer
	if _, err := c1.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &buf); err != nil {
		t.Fatal(err)
	}

	// Closing a session frees its slot; a retry gets in (teardown is
	// asynchronous, so poll).
	c2.Close()
	var c3 *Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		var derr error
		c3, derr = Dial(s.Addr().String())
		if derr == nil {
			break
		}
		if !IsRejected(derr) {
			t.Fatal(derr)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer c3.Close()
	buf.Reset()
	if _, err := c3.ExecuteStream(sqlparser.MustParse(`SELECT v FROM t`), nil, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestInFlightCapFailFast(t *testing.T) {
	backend := testBackend(t, 300)
	release := gateUDF(backend, 0) // every call blocks until released
	defer release()
	s := startServer(t, backend, Config{MaxInFlight: 1, QueryWait: 0})

	c1 := dialTest(t, s)
	c2 := dialTest(t, s)

	// c1 occupies the only slot, wedged inside the gate UDF.
	done := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		_, err := c1.ExecuteStream(sqlparser.MustParse(`SELECT gate(v) FROM t WHERE v < 10`), nil, &buf)
		done <- err
	}()
	waitInFlight(t, s, 1)

	// c2 is rejected immediately: QueryWait 0 means fail fast.
	var buf bytes.Buffer
	_, err := c2.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &buf)
	if !IsRejected(err) {
		t.Fatalf("saturated query failed with %v, want an admission rejection", err)
	}
	if re := err.(*RejectError); re.Code != CodeQueryRejected {
		t.Fatalf("code = %v, want CodeQueryRejected", re.Code)
	}
	if got := s.Stats().RejectedQs; got != 1 {
		t.Fatalf("RejectedQs = %d, want 1", got)
	}
	ss, _ := s.SessionStats(c2.SessionID())
	if ss.Rejected != 1 {
		t.Fatalf("session Rejected = %d, want 1", ss.Rejected)
	}

	// Releasing the gate lets c1 finish; the slot frees and c2's retry
	// succeeds.
	release()
	if err := <-done; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	buf.Reset()
	if _, err := c2.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &buf); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

func TestInFlightCapQueryWait(t *testing.T) {
	backend := testBackend(t, 300)
	release := gateUDF(backend, 0)
	defer release()
	s := startServer(t, backend, Config{MaxInFlight: 1, QueryWait: 30 * time.Second})

	c1 := dialTest(t, s)
	c2 := dialTest(t, s)

	hold := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		_, err := c1.ExecuteStream(sqlparser.MustParse(`SELECT gate(v) FROM t WHERE v < 10`), nil, &buf)
		hold <- err
	}()
	waitInFlight(t, s, 1)

	// c2's query queues behind the cap instead of failing.
	waiting := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		_, err := c2.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &buf)
		waiting <- err
	}()
	select {
	case err := <-waiting:
		t.Fatalf("waiting query returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Slot frees → the waiter proceeds; no deadlock at the cap.
	release()
	if err := <-hold; err != nil {
		t.Fatalf("slot holder failed: %v", err)
	}
	select {
	case err := <-waiting:
		if err != nil {
			t.Fatalf("waiting query failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiting query never proceeded after the slot freed")
	}
	if got := s.Stats().RejectedQs; got != 0 {
		t.Fatalf("RejectedQs = %d, want 0 (the waiter should have been admitted)", got)
	}
}

// TestQueryWaitTimeout: a bounded wait that elapses still rejects cleanly.
func TestQueryWaitTimeout(t *testing.T) {
	backend := testBackend(t, 300)
	release := gateUDF(backend, 0)
	defer release()
	s := startServer(t, backend, Config{MaxInFlight: 1, QueryWait: 30 * time.Millisecond})

	c1 := dialTest(t, s)
	c2 := dialTest(t, s)
	hold := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		_, err := c1.ExecuteStream(sqlparser.MustParse(`SELECT gate(v) FROM t WHERE v < 10`), nil, &buf)
		hold <- err
	}()
	waitInFlight(t, s, 1)

	var buf bytes.Buffer
	_, err := c2.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &buf)
	if !IsRejected(err) {
		t.Fatalf("timed-out wait failed with %v, want an admission rejection", err)
	}
	release()
	if err := <-hold; err != nil {
		t.Fatal(err)
	}
}

// waitInFlight polls until n queries hold in-flight slots.
func waitInFlight(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d in-flight queries", n)
		}
		time.Sleep(time.Millisecond)
	}
}
