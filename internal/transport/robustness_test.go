package transport

// Hostile-input behaviour: malformed and truncated frames from a raw TCP
// client must produce a typed error frame (or a clean close) — never a
// panic, never a hung session — and the frame parsers must survive
// arbitrary bytes (fuzz).

import (
	"net"
	"testing"
	"time"

	"repro/internal/sqlparser"
)

// rawDial opens a bare TCP connection to the server.
func rawDial(t *testing.T, s *Server) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	return c
}

func mustHandshake(t *testing.T, c net.Conn) {
	t.Helper()
	if err := writeFrame(c, frameHello, helloPayload()); err != nil {
		t.Fatal(err)
	}
	if tag, _, err := readFrame(c); err != nil || tag != frameHelloOK {
		t.Fatalf("handshake: tag=%#x err=%v", tag, err)
	}
}

// expectClosed asserts the server eventually closes the connection.
func expectClosed(t *testing.T, c net.Conn) {
	t.Helper()
	buf := make([]byte, 64)
	for {
		if _, err := c.Read(buf); err != nil {
			return // EOF or reset: closed either way, and we never hung
		}
	}
}

func TestBadHello(t *testing.T) {
	s := startServer(t, testBackend(t, 10), Config{})

	// Wrong magic.
	c := rawDial(t, s)
	if err := writeFrame(c, frameHello, []byte("NOPE\x00\x01")); err != nil {
		t.Fatal(err)
	}
	if tag, payload, err := readFrame(c); err != nil || tag != frameReject {
		t.Fatalf("bad magic: tag=%#x err=%v", tag, err)
	} else if re := parseReject(payload); re.Code != CodeProtocol {
		t.Fatalf("bad magic code = %v, want CodeProtocol", re.Code)
	}
	expectClosed(t, c)

	// Wrong first frame entirely.
	c2 := rawDial(t, s)
	if err := writeFrame(c2, frameCancel, cancelPayload(1)); err != nil {
		t.Fatal(err)
	}
	if tag, _, err := readFrame(c2); err != nil || tag != frameReject {
		t.Fatalf("non-hello first frame: tag=%#x err=%v", tag, err)
	}
	expectClosed(t, c2)
}

func TestUnknownFrameTag(t *testing.T) {
	s := startServer(t, testBackend(t, 10), Config{})
	c := rawDial(t, s)
	mustHandshake(t, c)
	if err := writeFrame(c, 0xEE, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	tag, payload, err := readFrame(c)
	if err != nil || tag != frameError {
		t.Fatalf("unknown tag: tag=%#x err=%v", tag, err)
	}
	if _, re, _ := parseError(payload); re == nil || re.Code != CodeProtocol {
		t.Fatalf("unknown tag reply = %v, want CodeProtocol", re)
	}
	expectClosed(t, c)
}

func TestMalformedQueryFrame(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"short header":     {0, 0, 0, 1},
		"sql overrun":      {0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff},
		"huge param count": append(make([]byte, 8), 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff),
		"truncated param":  append(make([]byte, 8), 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 9),
		"trailing bytes":   append(make([]byte, 8), 0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3),
		"bad param value":  append(make([]byte, 8), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 'x', 0xee),
	}
	s := startServer(t, testBackend(t, 10), Config{})
	for name, payload := range cases {
		c := rawDial(t, s)
		mustHandshake(t, c)
		if err := writeFrame(c, frameQuery, payload); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tag, reply, err := readFrame(c)
		if err != nil || tag != frameError {
			t.Fatalf("%s: tag=%#x err=%v, want an error frame", name, tag, err)
		}
		if _, re, perr := parseError(reply); perr != nil || re.Code != CodeProtocol {
			t.Fatalf("%s: reply %v, want CodeProtocol", name, re)
		}
		expectClosed(t, c)
		c.Close()
	}
}

func TestUnparsableSQLKeepsSession(t *testing.T) {
	s := startServer(t, testBackend(t, 10), Config{})
	c := rawDial(t, s)
	mustHandshake(t, c)

	payload, err := queryPayload(1, "SELEC nonsense FRM", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c, frameQuery, payload); err != nil {
		t.Fatal(err)
	}
	tag, reply, err := readFrame(c)
	if err != nil || tag != frameError {
		t.Fatalf("tag=%#x err=%v", tag, err)
	}
	if _, re, _ := parseError(reply); re == nil || re.Code != CodeQueryError {
		t.Fatalf("reply %v, want CodeQueryError", re)
	}

	// A query error is not a protocol error: the session keeps serving.
	good, err := buildQueryPayload(2, sqlparser.MustParse(`SELECT k FROM t`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c, frameQuery, good); err != nil {
		t.Fatal(err)
	}
	for {
		tag, _, err := readFrame(c)
		if err != nil {
			t.Fatalf("session died after a query error: %v", err)
		}
		if tag == frameDone {
			return
		}
		if tag != frameData {
			t.Fatalf("unexpected tag %#x", tag)
		}
	}
}

func TestTruncatedFrameNoHang(t *testing.T) {
	s := startServer(t, testBackend(t, 10), Config{})

	// Declare a payload, send half of it, hang up. The server must tear
	// the session down (readFrame fails), not wait forever.
	c := rawDial(t, s)
	mustHandshake(t, c)
	c.Write([]byte{frameQuery, 0, 0, 1, 0})
	c.Write(make([]byte, 128))
	c.Close()

	// An oversized declared length is rejected before any allocation.
	c2 := rawDial(t, s)
	mustHandshake(t, c2)
	c2.Write([]byte{frameQuery, 0xff, 0xff, 0xff, 0xff})
	expectClosed(t, c2)

	// The server is still healthy for real clients.
	conn, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(sqlparser.MustParse(`SELECT COUNT(*) FROM t`), nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseQuery: the query-frame parser must never panic on arbitrary
// bytes.
func FuzzParseQuery(f *testing.F) {
	good, _ := queryPayload(3, "SELECT k FROM t WHERE v = :tp0", nil, nil)
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 2, 'h', 'i', 0, 0, 0, 1, 0, 0, 0, 1, 'x', 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		parseQuery(data)
	})
}

// FuzzParseFrames: every other server- and client-side payload parser on
// arbitrary bytes.
func FuzzParseFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(helloPayload())
	f.Add(helloOKPayload(9))
	f.Add(rejectPayload(CodeConnRejected, "full"))
	f.Add(errorPayload(4, CodeQueryError, "boom"))
	f.Add(cancelPayload(4))
	f.Fuzz(func(t *testing.T, data []byte) {
		parseHello(data)
		parseHelloOK(data)
		parseReject(data)
		parseError(data)
		parseCancel(data)
		parseDone(data)
	})
}
