package transport

// Prepared-statement protocol tests: PREPARE/EXECUTE/CLOSE round-trips
// against real loopback TCP, error behaviour for unknown and closed
// statement ids (a clean error frame — the session survives), server-side
// parse failure at prepare time, statement accounting, and fuzzing of the
// prepared-frame parsers alongside FuzzParseFrames.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/value"
)

// TestPreparedRoundTrip: prepare once, execute many times with different
// parameters — materialized and streamed — each result identical to the
// unprepared path, with exact statement accounting on both ends.
func TestPreparedRoundTrip(t *testing.T) {
	backend := testBackend(t, 300)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	q := sqlparser.MustParse(`SELECT v, s FROM t WHERE k = 3 AND v >= :lo ORDER BY v`)
	id, err := c.PrepareStmt(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, lo := range []int64{0, 50, 150, 250, 50} {
		params := map[string]value.Value{"lo": value.NewInt(lo)}
		got, err := c.ExecuteStmt(id, params)
		if err != nil {
			t.Fatalf("lo=%d: %v", lo, err)
		}
		want, err := backend.Execute(q, params)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Result.Rows) != len(want.Result.Rows) {
			t.Fatalf("lo=%d: %d rows, want %d", lo, len(got.Result.Rows), len(want.Result.Rows))
		}
		for i := range want.Result.Rows {
			for j := range want.Result.Rows[i] {
				if value.Compare(want.Result.Rows[i][j], got.Result.Rows[i][j]) != 0 {
					t.Fatalf("lo=%d row %d col %d: %v vs %v", lo, i, j,
						got.Result.Rows[i][j], want.Result.Rows[i][j])
				}
			}
		}

		// The streamed execution must be byte-identical to the in-process
		// stream, like ExecuteStream is.
		var wantBuf, gotBuf bytes.Buffer
		if _, err := backend.ExecuteStream(q, params, &wantBuf); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ExecuteStmtStream(id, params, &gotBuf); err != nil {
			t.Fatalf("lo=%d stream: %v", lo, err)
		}
		if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
			t.Fatalf("lo=%d: prepared stream differs from in-process stream", lo)
		}
	}
	st := s.Stats()
	if st.Prepared != 1 {
		t.Errorf("server Prepared = %d, want 1", st.Prepared)
	}
	if st.StmtExecs != 10 {
		t.Errorf("server StmtExecs = %d, want 10", st.StmtExecs)
	}
	ss, ok := s.SessionStats(c.SessionID())
	if !ok || ss.Prepared != 1 || ss.StmtExecs != 10 {
		t.Errorf("session stats %+v, want Prepared=1 StmtExecs=10", ss)
	}
}

// TestExecuteUnknownStmt: executing a never-prepared or already-closed id
// yields CodeUnknownStmt and the session keeps serving.
func TestExecuteUnknownStmt(t *testing.T) {
	backend := testBackend(t, 50)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	wantUnknown := func(what string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: expected an error", what)
		}
		var re *RejectError
		if !errors.As(err, &re) || re.Code != CodeUnknownStmt {
			t.Fatalf("%s: got %v, want CodeUnknownStmt", what, err)
		}
	}
	_, err := c.ExecuteStmt(999, nil)
	wantUnknown("never-prepared id", err)

	q := sqlparser.MustParse(`SELECT k FROM t WHERE v < 10`)
	id, err := c.PrepareStmt(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteStmt(id, nil); err != nil {
		t.Fatalf("live statement: %v", err)
	}
	if err := c.CloseStmt(id); err != nil {
		t.Fatal(err)
	}
	_, err = c.ExecuteStmt(id, nil)
	wantUnknown("closed id", err)
	// Closing again (or closing garbage) is idempotent fire-and-forget.
	if err := c.CloseStmt(id); err != nil {
		t.Fatal(err)
	}
	if err := c.CloseStmt(424242); err != nil {
		t.Fatal(err)
	}

	// The session survived every failure above: ad-hoc queries and fresh
	// prepares still work.
	if _, err := c.Execute(q, nil); err != nil {
		t.Fatalf("session should survive unknown-stmt errors: %v", err)
	}
	id2, err := c.PrepareStmt(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteStmt(id2, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Errors; got < 2 {
		t.Errorf("server Errors = %d, want >= 2 (two unknown-stmt executions)", got)
	}
}

// TestPrepareBadSQLKeepsSession: a prepare whose SQL does not parse gets a
// CodeQueryError error frame — a query-level failure, not a protocol
// violation — and the session keeps serving.
func TestPrepareBadSQLKeepsSession(t *testing.T) {
	s := startServer(t, testBackend(t, 10), Config{})
	c := rawDial(t, s)
	mustHandshake(t, c)

	payload, err := queryPayload(1, "PREPARE ME GARBAGE", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c, framePrepare, payload); err != nil {
		t.Fatal(err)
	}
	tag, reply, err := readFrame(c)
	if err != nil || tag != frameError {
		t.Fatalf("tag=%#x err=%v, want an error frame", tag, err)
	}
	if _, re, _ := parseError(reply); re == nil || re.Code != CodeQueryError {
		t.Fatalf("reply %v, want CodeQueryError", re)
	}

	// A well-formed prepare on the same session still acks.
	good, err := queryPayload(2, "SELECT k FROM t", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(c, framePrepare, good); err != nil {
		t.Fatal(err)
	}
	tag, reply, err = readFrame(c)
	if err != nil || tag != framePrepareOK {
		t.Fatalf("tag=%#x err=%v, want prepare-ok", tag, err)
	}
	if id, err := parsePrepareOK(reply); err != nil || id != 2 {
		t.Fatalf("prepare-ok id=%d err=%v", id, err)
	}
}

// TestMalformedPreparedFrames: protocol-level garbage in the new frames
// tears the session down with a typed error, like malformed query frames.
func TestMalformedPreparedFrames(t *testing.T) {
	cases := []struct {
		tag     byte
		payload []byte
	}{
		{framePrepare, []byte{}},
		{framePrepare, []byte{0, 0, 0, 1}},
		{frameExecStmt, []byte{}},
		{frameExecStmt, make([]byte, 12)},
		{frameExecStmt, append(make([]byte, 16), 0xff, 0xff, 0xff, 0xff)},
		{frameCloseStmt, []byte{1, 2, 3}},
	}
	s := startServer(t, testBackend(t, 10), Config{})
	for i, tc := range cases {
		c := rawDial(t, s)
		mustHandshake(t, c)
		if err := writeFrame(c, tc.tag, tc.payload); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		tag, reply, err := readFrame(c)
		if err != nil || tag != frameError {
			t.Fatalf("case %d: tag=%#x err=%v, want an error frame", i, tag, err)
		}
		if _, re, perr := parseError(reply); perr != nil || re.Code != CodeProtocol {
			t.Fatalf("case %d: reply %v, want CodeProtocol", i, re)
		}
		expectClosed(t, c)
		c.Close()
	}
}

// TestPreparedConcurrentClients: several sessions each prepare and
// re-execute their own statements concurrently; ids are per-session and
// must not bleed. Run with -race.
func TestPreparedConcurrentClients(t *testing.T) {
	backend := testBackend(t, 200)
	s := startServer(t, backend, Config{})

	const clients = 6
	const rounds = 5
	errs := make(chan error, clients)
	done := make(chan struct{})
	for i := 0; i < clients; i++ {
		go func(id int) {
			defer func() { done <- struct{}{} }()
			c, err := Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			q := sqlparser.MustParse(fmt.Sprintf(`SELECT v FROM t WHERE k = %d AND v >= :lo ORDER BY v`, id%7))
			sid, err := c.PrepareStmt(q)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				params := map[string]value.Value{"lo": value.NewInt(int64(r * 20))}
				got, err := c.ExecuteStmt(sid, params)
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", id, r, err)
					return
				}
				want, err := backend.Execute(q, params)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Result.Rows) != len(want.Result.Rows) {
					errs <- fmt.Errorf("client %d round %d: %d rows, want %d (cross-session bleed?)",
						id, r, len(got.Result.Rows), len(want.Result.Rows))
					return
				}
			}
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-done
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().StmtExecs; got != clients*rounds {
		t.Errorf("server StmtExecs = %d, want %d", got, clients*rounds)
	}
}

// FuzzPreparedFrames: the prepared-statement payload parsers must never
// panic on arbitrary bytes.
func FuzzPreparedFrames(f *testing.F) {
	f.Add([]byte{})
	f.Add(prepareOKPayload(7))
	f.Add(closeStmtPayload(9))
	if p, err := execStmtPayload(3, 7, map[string]value.Value{"lo": value.NewInt(5)}, []string{"lo"}); err == nil {
		f.Add(p)
	}
	if p, err := queryPayload(1, "SELECT k FROM t WHERE v = :tp0", nil, nil); err == nil {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		parsePrepareOK(data)
		parseExecStmt(data)
		parseCloseStmt(data)
	})
}
