package transport

// Literal hoisting: the query frame ships SQL text, but RemoteSQL over an
// encrypted database is full of ciphertext constants (DET/OPE byte
// strings) that have no re-parsable SQL spelling. hoistLiterals rewrites
// every literal in the query — at any depth, including subqueries — into
// a named parameter and returns the values separately; the frame carries
// the parameterized text plus the values in the wire encoding, and the
// server's engine resolves them at evaluation time exactly like
// user-supplied parameters. This round-trips every value kind (bytes,
// dates, floats, NULL) without touching the SQL grammar.
//
// The traversal itself lives in planner.HoistLiterals — the client's plan
// cache normalizes query shapes with the same machinery.

import (
	"repro/internal/ast"
	"repro/internal/planner"
	"repro/internal/value"
)

// hoistPrefix names the transport's hoisted-literal parameter slots (:tpN).
const hoistPrefix = "tp"

// hoistLiterals returns a copy of q with every literal replaced by a
// parameter reference :tpN, the parameter values, and their order (for
// deterministic framing).
func hoistLiterals(q *ast.Query) (*ast.Query, map[string]value.Value, []string) {
	return planner.HoistLiterals(q, hoistPrefix)
}
