package transport

// Literal hoisting: the query frame ships SQL text, but RemoteSQL over an
// encrypted database is full of ciphertext constants (DET/OPE byte
// strings) that have no re-parsable SQL spelling. hoistLiterals rewrites
// every literal in the query — at any depth, including subqueries — into
// a named parameter and returns the values separately; the frame carries
// the parameterized text plus the values in the wire encoding, and the
// server's engine resolves them at evaluation time exactly like
// user-supplied parameters. This round-trips every value kind (bytes,
// dates, floats, NULL) without touching the SQL grammar.

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/value"
)

// hoistLiterals returns a copy of q with every literal replaced by a
// parameter reference :tpN, the parameter values, and their order (for
// deterministic framing).
func hoistLiterals(q *ast.Query) (*ast.Query, map[string]value.Value, []string) {
	h := &hoister{params: make(map[string]value.Value)}
	out := h.query(q.Clone())
	return out, h.params, h.order
}

type hoister struct {
	params map[string]value.Value
	order  []string
	n      int
}

func (h *hoister) query(q *ast.Query) *ast.Query {
	if q == nil {
		return nil
	}
	for i := range q.Projections {
		q.Projections[i].Expr = h.expr(q.Projections[i].Expr)
	}
	for i := range q.From {
		q.From[i].Sub = h.query(q.From[i].Sub)
	}
	q.Where = h.expr(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = h.expr(q.GroupBy[i])
	}
	q.Having = h.expr(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = h.expr(q.OrderBy[i].Expr)
	}
	return q
}

func (h *hoister) expr(e ast.Expr) ast.Expr {
	return ast.RewriteExpr(e, func(x ast.Expr) ast.Expr {
		switch n := x.(type) {
		case *ast.Literal:
			name := "tp" + strconv.Itoa(h.n)
			h.n++
			h.params[name] = n.Val
			h.order = append(h.order, name)
			return &ast.Param{Name: name}
		case *ast.SubqueryExpr:
			return &ast.SubqueryExpr{Sub: h.query(n.Sub)}
		case *ast.ExistsExpr:
			return &ast.ExistsExpr{Sub: h.query(n.Sub), Not: n.Not}
		case *ast.InExpr:
			if n.Sub != nil {
				n.Sub = h.query(n.Sub)
			}
			return n
		}
		return nil
	})
}
