package transport

// The dialing side: Conn implements client.Executor over a socket, so the
// trusted client library runs unchanged against a remote monomi-server —
// planning, decryption, and residual execution all stay client-side; only
// the two executor calls cross the network.
//
// A Conn serializes its queries (one in flight per session, like a SQL
// connection); open several Conns for concurrency. ExecuteStream writes
// the query frame and then copies data-frame payloads straight into the
// caller's writer — the concatenated payloads are byte-for-byte the
// stream server.ExecuteStream would have written in-process. If the
// caller's writer fails mid-stream (the in-process abandon path), the
// Conn sends a cancel frame and drains until the server confirms, so the
// session stays usable and the server's scan stops early.

import (
	"bytes"
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/wire"
)

// ConnStats is the client-side accounting mirror of the server's
// SessionStats: accumulated from done frames, so a test can reconcile the
// two ends exactly.
type ConnStats struct {
	Queries   int64
	Rows      int64
	Batches   int64
	WireBytes int64
}

// Conn is one dialed transport session.
type Conn struct {
	conn      net.Conn
	sessionID uint64

	qmu sync.Mutex // one query in flight per session
	wmu sync.Mutex // frame-write lock (cancel frames interleave with queries)

	smu   sync.Mutex
	stats ConnStats

	nextQID uint64 // guarded by qmu

	bmu    sync.Mutex
	broken error // first fatal transport error; poisons the session
}

// Dial connects and handshakes with a monomi-server at addr.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return handshake(c)
}

// DialTLS connects over TLS. cfg must trust the server's certificate (or
// set InsecureSkipVerify for tests).
func DialTLS(addr string, cfg *tls.Config) (*Conn, error) {
	c, err := tls.Dial("tcp", addr, cfg)
	if err != nil {
		return nil, err
	}
	return handshake(c)
}

func handshake(c net.Conn) (*Conn, error) {
	if err := writeFrame(c, frameHello, helloPayload()); err != nil {
		c.Close()
		return nil, err
	}
	tag, payload, err := readFrame(c)
	if err != nil {
		c.Close()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The accept loop may close a rejected connection before our
			// read of its reject frame completes.
			return nil, &RejectError{Code: CodeConnRejected, Msg: "connection closed during handshake"}
		}
		return nil, err
	}
	switch tag {
	case frameHelloOK:
		sid, err := parseHelloOK(payload)
		if err != nil {
			c.Close()
			return nil, err
		}
		return &Conn{conn: c, sessionID: sid}, nil
	case frameReject:
		c.Close()
		return nil, parseReject(payload)
	default:
		c.Close()
		return nil, fmt.Errorf("transport: unexpected handshake frame %#x", tag)
	}
}

// SessionID is the server-assigned session identifier from the handshake.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Stats snapshots the client-side session accounting.
func (c *Conn) Stats() ConnStats {
	c.smu.Lock()
	defer c.smu.Unlock()
	return c.stats
}

// Close tears down the session. A query in flight on another goroutine
// fails with a connection error.
func (c *Conn) Close() error {
	c.poison(fmt.Errorf("transport: connection closed"))
	return c.conn.Close()
}

func (c *Conn) poison(err error) {
	c.bmu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.bmu.Unlock()
}

func (c *Conn) poisoned() error {
	c.bmu.Lock()
	defer c.bmu.Unlock()
	return c.broken
}

func (c *Conn) writeFrame(tag byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.conn, tag, payload); err != nil {
		c.poison(err)
		c.conn.Close()
		return err
	}
	return nil
}

// Execute runs one RemoteSQL to completion and materializes the result —
// the remote counterpart of server.Execute. It streams under the covers
// and decodes the buffered stream with the same wire.BatchReader the
// streamed path uses, so both executor calls exercise one wire format.
func (c *Conn) Execute(q *ast.Query, params map[string]value.Value) (*server.Response, error) {
	var buf bytes.Buffer
	st, err := c.ExecuteStream(q, params, &buf)
	if err != nil {
		return nil, err
	}
	return materialize(&buf, st)
}

// materialize decodes a buffered result stream into a Response.
func materialize(buf *bytes.Buffer, st *server.StreamStats) (*server.Response, error) {
	br, err := wire.NewBatchReader(buf)
	if err != nil {
		return nil, fmt.Errorf("transport: decoding result stream: %w", err)
	}
	res := &engine.Result{Cols: br.Cols()}
	for {
		rows, err := br.Next()
		if err != nil {
			return nil, fmt.Errorf("transport: decoding result stream: %w", err)
		}
		if rows == nil {
			break
		}
		res.Rows = append(res.Rows, rows...)
	}
	return &server.Response{
		Result:         res,
		ServerTime:     st.ServerTime,
		WallServerTime: st.WallServerTime,
		WireBytes:      st.WireBytes,
	}, nil
}

// ExecuteStream runs one RemoteSQL on the remote server, writing the
// framed batch stream to w as data frames arrive.
func (c *Conn) ExecuteStream(q *ast.Query, params map[string]value.Value, w io.Writer) (*server.StreamStats, error) {
	return c.ExecuteStreamCtx(context.Background(), q, params, w)
}

// ExecuteStreamCtx is ExecuteStream with cancellation: when ctx is
// cancelled mid-query, the Conn sends a cancel frame and the call returns
// once the server confirms the abort (CodeCancelled).
func (c *Conn) ExecuteStreamCtx(ctx context.Context, q *ast.Query, params map[string]value.Value, w io.Writer) (*server.StreamStats, error) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if err := c.poisoned(); err != nil {
		return nil, err
	}

	c.nextQID++
	qid := c.nextQID
	payload, err := buildQueryPayload(qid, q, params)
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(frameQuery, payload); err != nil {
		return nil, err
	}
	return c.awaitResult(ctx, qid, w)
}

// awaitResult reads the frames of one in-flight query (qid) to completion,
// copying data-frame payloads into w. Caller holds qmu.
func (c *Conn) awaitResult(ctx context.Context, qid uint64, w io.Writer) (*server.StreamStats, error) {
	// Cancel watcher: translate ctx cancellation into a cancel frame. The
	// read loop below then runs to the server's CodeCancelled error frame.
	watchDone := make(chan struct{})
	defer close(watchDone)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				c.writeFrame(frameCancel, cancelPayload(qid))
			case <-watchDone:
			}
		}()
	}

	// abandon is set when the caller's writer failed: we cancelled the
	// query ourselves and are draining to the server's confirmation, after
	// which the writer's error is the call's result (matching the
	// in-process semantics, where ExecuteStream returns the write error).
	var abandon error
	for {
		tag, payload, err := readFrame(c.conn)
		if err != nil {
			err = fmt.Errorf("transport: connection lost mid-query: %w", err)
			c.poison(err)
			c.conn.Close()
			return nil, err
		}
		switch tag {
		case frameData:
			if len(payload) < 8 {
				return nil, c.protocolFail("short data frame")
			}
			if decodeQID(payload) != qid {
				continue // late frames from a cancelled predecessor
			}
			if abandon != nil {
				continue // draining
			}
			if _, werr := w.Write(payload[8:]); werr != nil {
				abandon = werr
				c.writeFrame(frameCancel, cancelPayload(qid))
			}
		case frameDone:
			doneQID, st, err := parseDone(payload)
			if err != nil {
				return nil, c.protocolFail(err.Error())
			}
			if doneQID != qid {
				continue
			}
			if abandon != nil {
				// The whole stream beat our cancel frame; the query still
				// failed from the caller's perspective.
				return nil, abandon
			}
			c.smu.Lock()
			c.stats.Queries++
			c.stats.Rows += st.Rows
			c.stats.Batches += st.Batches
			c.stats.WireBytes += st.WireBytes
			c.smu.Unlock()
			return st, nil
		case frameError:
			errQID, re, perr := parseError(payload)
			if perr != nil {
				return nil, c.protocolFail(perr.Error())
			}
			if errQID != 0 && errQID != qid {
				continue
			}
			if abandon != nil {
				return nil, abandon
			}
			if ctx.Err() != nil && re.Code == CodeCancelled {
				return nil, ctx.Err()
			}
			return nil, re
		default:
			return nil, c.protocolFail(fmt.Sprintf("unexpected frame %#x", tag))
		}
	}
}

// protocolFail poisons the session on an unrecoverable framing violation.
func (c *Conn) protocolFail(msg string) error {
	err := fmt.Errorf("transport: protocol violation: %s", msg)
	c.poison(err)
	c.conn.Close()
	return err
}

func decodeQID(p []byte) uint64 {
	var q uint64
	for _, b := range p[:8] {
		q = q<<8 | uint64(b)
	}
	return q
}

// PrepareStmt registers q as a server-side prepared statement and returns
// its id. The query's literals are hoisted exactly as Execute would hoist
// them and shipped once as the statement's fixed parameters; later
// ExecuteStmt calls ship only per-execution parameters. Statement ids come
// from the session's query-id sequence, so error frames are unambiguous.
func (c *Conn) PrepareStmt(q *ast.Query) (uint64, error) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if err := c.poisoned(); err != nil {
		return 0, err
	}
	c.nextQID++
	id := c.nextQID
	hq, hoisted, order := hoistLiterals(q)
	payload, err := queryPayload(id, hq.SQL(), hoisted, order)
	if err != nil {
		return 0, err
	}
	if err := c.writeFrame(framePrepare, payload); err != nil {
		return 0, err
	}
	for {
		tag, payload, err := readFrame(c.conn)
		if err != nil {
			err = fmt.Errorf("transport: connection lost mid-prepare: %w", err)
			c.poison(err)
			c.conn.Close()
			return 0, err
		}
		switch tag {
		case framePrepareOK:
			okID, err := parsePrepareOK(payload)
			if err != nil {
				return 0, c.protocolFail(err.Error())
			}
			if okID != id {
				continue
			}
			return id, nil
		case frameData, frameDone:
			continue // late frames from a cancelled predecessor
		case frameError:
			errID, re, perr := parseError(payload)
			if perr != nil {
				return 0, c.protocolFail(perr.Error())
			}
			if errID != id {
				continue
			}
			return 0, re
		default:
			return 0, c.protocolFail(fmt.Sprintf("unexpected frame %#x", tag))
		}
	}
}

// ExecuteStmt runs a prepared statement to completion and materializes the
// result — the statement counterpart of Execute.
func (c *Conn) ExecuteStmt(id uint64, params map[string]value.Value) (*server.Response, error) {
	var buf bytes.Buffer
	st, err := c.ExecuteStmtStream(id, params, &buf)
	if err != nil {
		return nil, err
	}
	return materialize(&buf, st)
}

// ExecuteStmtStream runs a prepared statement, writing the framed batch
// stream to w as data frames arrive.
func (c *Conn) ExecuteStmtStream(id uint64, params map[string]value.Value, w io.Writer) (*server.StreamStats, error) {
	return c.ExecuteStmtStreamCtx(context.Background(), id, params, w)
}

// ExecuteStmtStreamCtx is ExecuteStmtStream with cancellation.
func (c *Conn) ExecuteStmtStreamCtx(ctx context.Context, id uint64, params map[string]value.Value, w io.Writer) (*server.StreamStats, error) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if err := c.poisoned(); err != nil {
		return nil, err
	}
	c.nextQID++
	qid := c.nextQID
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	payload, err := execStmtPayload(qid, id, params, names)
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(frameExecStmt, payload); err != nil {
		return nil, err
	}
	return c.awaitResult(ctx, qid, w)
}

// CloseStmt releases a server-side prepared statement. Fire-and-forget:
// the server deletes the statement when the frame arrives; executions
// already decoded keep their resolved statement and finish normally.
func (c *Conn) CloseStmt(id uint64) error {
	if err := c.poisoned(); err != nil {
		return err
	}
	return c.writeFrame(frameCloseStmt, closeStmtPayload(id))
}

// buildQueryPayload renders q for the wire: every literal hoisted to a
// :tpN parameter (ciphertext byte strings have no SQL spelling), merged
// with the caller's own parameters.
func buildQueryPayload(qid uint64, q *ast.Query, params map[string]value.Value) ([]byte, error) {
	hq, hoisted, order := hoistLiterals(q)
	for name := range params {
		if strings.HasPrefix(name, "tp") {
			if _, clash := hoisted[name]; clash {
				return nil, fmt.Errorf("transport: parameter name %s collides with a hoisted literal", name)
			}
		}
	}
	callerNames := make([]string, 0, len(params))
	for name := range params {
		callerNames = append(callerNames, name)
	}
	sort.Strings(callerNames)
	for _, name := range callerNames {
		hoisted[name] = params[name]
		order = append(order, name)
	}
	return queryPayload(qid, hq.SQL(), hoisted, order)
}
