package transport

// Round-trip, stats-accounting, concurrency-stress, cancellation,
// disconnect-teardown, and TLS tests for the transport layer, all against
// real loopback TCP. The backend is a plaintext catalog (the transport is
// agnostic to what the engine scans; encrypted end-to-end coverage lives
// in the root package's network differential).

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/enc"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// testBackend builds a plaintext-backed server.Server with rows rows.
func testBackend(tb testing.TB, rows int) *server.Server {
	tb.Helper()
	cat := storage.NewCatalog()
	tbl, err := cat.Create(storage.Schema{
		Name: "t",
		Cols: []storage.Column{
			{Name: "k", Type: storage.TInt},
			{Name: "v", Type: storage.TInt},
			{Name: "s", Type: storage.TStr},
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tbl.MustInsert([]value.Value{
			value.NewInt(int64(i % 7)),
			value.NewInt(int64(i)),
			value.NewStr(fmt.Sprintf("row-%d", i%13)),
		})
	}
	srv := server.New(&enc.DB{Cat: cat}, netsim.Default())
	srv.SetParallelism(2)
	srv.SetBatchSize(64)
	return srv
}

// startServer listens on an ephemeral loopback port.
func startServer(tb testing.TB, backend *server.Server, cfg Config) *Server {
	tb.Helper()
	s, err := Listen(backend, "127.0.0.1:0", cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { s.Close() })
	return s
}

func dialTest(tb testing.TB, s *Server) *Conn {
	tb.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	return c
}

// TestStreamByteIdentity: the remote stream must be byte-for-byte the
// in-process stream — the transport carries it verbatim.
func TestStreamByteIdentity(t *testing.T) {
	backend := testBackend(t, 500)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	queries := []string{
		`SELECT k, v FROM t WHERE v >= 100`,
		`SELECT DISTINCT s FROM t`,
		`SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k`,
		`SELECT v, s FROM t WHERE s = 'row-3' ORDER BY v DESC LIMIT 10`,
	}
	for _, sql := range queries {
		q := sqlparser.MustParse(sql)
		var want bytes.Buffer
		wantSt, err := backend.ExecuteStream(q, nil, &want)
		if err != nil {
			t.Fatalf("%s: in-process: %v", sql, err)
		}
		var got bytes.Buffer
		gotSt, err := c.ExecuteStream(q, nil, &got)
		if err != nil {
			t.Fatalf("%s: remote: %v", sql, err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("%s: remote stream differs from in-process (%d vs %d bytes)",
				sql, got.Len(), want.Len())
		}
		if gotSt.Rows != wantSt.Rows || gotSt.Batches != wantSt.Batches ||
			gotSt.WireBytes != wantSt.WireBytes {
			t.Errorf("%s: stats diverge: remote %+v, in-process %+v", sql, gotSt, wantSt)
		}
	}
}

// TestExecuteMaterialized: the Execute call (materialized wire) decodes to
// the same rows the in-process server returns.
func TestExecuteMaterialized(t *testing.T) {
	backend := testBackend(t, 300)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	q := sqlparser.MustParse(`SELECT k, SUM(v) FROM t WHERE v < 250 GROUP BY k ORDER BY k`)
	want, err := backend.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Execute(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Result.Cols, got.Result.Cols) {
		t.Fatalf("cols: %v vs %v", got.Result.Cols, want.Result.Cols)
	}
	if len(want.Result.Rows) != len(got.Result.Rows) {
		t.Fatalf("rows: %d vs %d", len(got.Result.Rows), len(want.Result.Rows))
	}
	for i := range want.Result.Rows {
		for j := range want.Result.Rows[i] {
			if value.Compare(want.Result.Rows[i][j], got.Result.Rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j,
					got.Result.Rows[i][j], want.Result.Rows[i][j])
			}
		}
	}
	if got.ServerTime <= 0 || got.WireBytes <= 0 {
		t.Error("simulated accounting missing from remote response")
	}
}

// TestParamsAndLiterals: caller parameters and hoisted literals of every
// kind survive the frame; bytes values (ciphertext constants in the real
// deployment) round-trip even though they have no SQL spelling.
func TestParamsAndLiterals(t *testing.T) {
	backend := testBackend(t, 100)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	q := sqlparser.MustParse(`SELECT v FROM t WHERE k = 3 AND v >= :lo AND s = 'row-3'`)
	resp, err := c.Execute(q, map[string]value.Value{"lo": value.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := backend.Execute(q, map[string]value.Value{"lo": value.NewInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Rows) != len(want.Result.Rows) || len(resp.Result.Rows) == 0 {
		t.Fatalf("rows: remote %d, in-process %d (want >0)",
			len(resp.Result.Rows), len(want.Result.Rows))
	}

	// Frame-level round-trip of a query no SQL text can express: a bytes
	// literal (what every DET/OPE ciphertext constant is).
	raw := sqlparser.MustParse(`SELECT k FROM t WHERE s = 'placeholder'`)
	hq, params, order := hoistLiterals(raw)
	params[order[0]] = value.NewBytes([]byte{0x00, 0xff, 0x10, 0x20})
	payload, err := queryPayload(7, hq.SQL(), params, order)
	if err != nil {
		t.Fatal(err)
	}
	qid, sql, got, err := parseQuery(payload)
	if err != nil {
		t.Fatal(err)
	}
	if qid != 7 || sql != hq.SQL() {
		t.Fatalf("qid=%d sql=%q", qid, sql)
	}
	if v := got[order[0]]; v.K != value.Bytes || !bytes.Equal(v.B, []byte{0x00, 0xff, 0x10, 0x20}) {
		t.Fatalf("bytes literal did not round-trip: %v", v)
	}
}

// TestConcurrentSessions is the stress test: many sessions, each running a
// mix of query shapes concurrently, with exact per-session accounting and
// no cross-session bleed. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	backend := testBackend(t, 400)
	s := startServer(t, backend, Config{})

	shapes := []string{
		`SELECT k, v FROM t WHERE v >= 50`,
		`SELECT DISTINCT s FROM t`,
		`SELECT k, COUNT(*) FROM t GROUP BY k`,
		`SELECT v FROM t ORDER BY v DESC LIMIT 25`,
	}
	// Expected streams, computed once in-process.
	want := make([][]byte, len(shapes))
	for i, sql := range shapes {
		var buf bytes.Buffer
		if _, err := backend.ExecuteStream(sqlparser.MustParse(sql), nil, &buf); err != nil {
			t.Fatal(err)
		}
		want[i] = buf.Bytes()
	}

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	conns := make([]*Conn, clients)
	for i := range conns {
		conns[i] = dialTest(t, s)
	}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int, c *Conn) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				shape := (id + r) % len(shapes)
				var buf bytes.Buffer
				if _, err := c.ExecuteStream(sqlparser.MustParse(shapes[shape]), nil, &buf); err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", id, r, err)
					return
				}
				if !bytes.Equal(buf.Bytes(), want[shape]) {
					errs <- fmt.Errorf("client %d round %d: stream differs (cross-session bleed?)", id, r)
					return
				}
			}
		}(i, conns[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Per-session accounting must match exactly on both ends.
	for i, c := range conns {
		cs := c.Stats()
		if cs.Queries != rounds {
			t.Fatalf("client %d ran %d queries, stats say %d", i, rounds, cs.Queries)
		}
		ss, ok := s.SessionStats(c.SessionID())
		if !ok {
			t.Fatalf("no server stats for session %d", c.SessionID())
		}
		if ss.Queries != cs.Queries || ss.Rows != cs.Rows ||
			ss.Batches != cs.Batches || ss.WireBytes != cs.WireBytes {
			t.Fatalf("session %d accounting diverges: server %+v, client %+v",
				c.SessionID(), ss, cs)
		}
	}
	if got := s.Stats().Queries; got != clients*rounds {
		t.Fatalf("server counted %d queries, want %d", got, clients*rounds)
	}
}

// gateUDF registers a scalar UDF on the backend that blocks every call
// after the first `free` until the gate is released.
func gateUDF(backend *server.Server, free int64) (release func()) {
	gate := make(chan struct{})
	var calls int64
	var once sync.Once
	backend.Engine.RegisterScalar("gate", func(st *engine.Stats, args []value.Value) (value.Value, error) {
		if atomic.AddInt64(&calls, 1) > free {
			<-gate
		}
		return args[0], nil
	})
	return func() { once.Do(func() { close(gate) }) }
}

// TestCancelFrame: a context cancellation mid-stream sends a cancel frame;
// the server aborts the scan, accounts the cancellation, and the session
// remains usable for the next query.
func TestCancelFrame(t *testing.T) {
	backend := testBackend(t, 2000)
	// First ~2 batches flow freely, then the scan wedges until released.
	release := gateUDF(backend, 160)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	sess := liveSession(t, s, c.SessionID())
	var once sync.Once
	fw := &funcWriter{fn: func(p []byte) (int, error) {
		// Cancel as soon as the first stream bytes arrive; wait for the
		// cancel frame to actually land (the job's context flips), and only
		// then unblock the scan so the server's between-batch cancellation
		// check deterministically fires before the query can complete.
		once.Do(func() {
			cancel()
			for {
				sess.pmu.Lock()
				job := sess.pending[1]
				sess.pmu.Unlock()
				if job == nil || job.ctx.Err() != nil {
					break
				}
				time.Sleep(time.Millisecond)
			}
			release()
		})
		return len(p), nil
	}}
	_, err := c.ExecuteStreamCtx(ctx, sqlparser.MustParse(`SELECT gate(v) FROM t`), nil, fw)
	if err != context.Canceled {
		t.Fatalf("cancelled query returned %v, want context.Canceled", err)
	}

	// The session survives cancellation: a fresh query still runs.
	var buf bytes.Buffer
	if _, err := c.ExecuteStream(sqlparser.MustParse(`SELECT k FROM t WHERE v < 10`), nil, &buf); err != nil {
		t.Fatalf("query after cancel: %v", err)
	}

	ss, _ := s.SessionStats(c.SessionID())
	if ss.Cancelled != 1 || ss.Queries != 1 {
		t.Fatalf("session stats after cancel: %+v (want Cancelled=1, Queries=1)", ss)
	}
	if got := s.Stats().Cancelled; got != 1 {
		t.Fatalf("server Cancelled = %d, want 1", got)
	}
}

// liveSession fetches a registered session by ID.
func liveSession(t *testing.T, s *Server, id uint64) *session {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessions[id]
	if sess == nil {
		t.Fatalf("session %d not registered", id)
	}
	return sess
}

type funcWriter struct{ fn func([]byte) (int, error) }

func (w *funcWriter) Write(p []byte) (int, error) { return w.fn(p) }

// TestAbandonWriter: the in-process abandon semantics over the wire — a
// failing client writer cancels the query server-side and the session
// stays healthy.
func TestAbandonWriter(t *testing.T) {
	backend := testBackend(t, 5000)
	s := startServer(t, backend, Config{})
	c := dialTest(t, s)

	boom := fmt.Errorf("sink full")
	n := 0
	fw := &funcWriter{fn: func(p []byte) (int, error) {
		n++
		if n > 1 {
			return 0, boom
		}
		return len(p), nil
	}}
	_, err := c.ExecuteStream(sqlparser.MustParse(`SELECT v FROM t`), nil, fw)
	if err != boom {
		t.Fatalf("abandoned query returned %v, want the writer's error", err)
	}
	var buf bytes.Buffer
	if _, err := c.ExecuteStream(sqlparser.MustParse(`SELECT COUNT(*) FROM t`), nil, &buf); err != nil {
		t.Fatalf("query after abandon: %v", err)
	}
}

// waitGoroutines asserts the goroutine count settles back to the baseline.
func waitGoroutines(t *testing.T, before int, what string) {
	t.Helper()
	var after int
	for i := 0; i < 50; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d: %s leaks", before, after, what)
	}
}

// TestDisconnectMidStreamNoLeak: a client that vanishes mid-stream (no
// cancel frame, no clean shutdown) must not leak server goroutines or pin
// the scan.
func TestDisconnectMidStreamNoLeak(t *testing.T) {
	backend := testBackend(t, 8000)
	s := startServer(t, backend, Config{WriteTimeout: time.Second})

	before := runtime.NumGoroutine()
	for i := 0; i < 15; i++ {
		raw, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(raw, frameHello, helloPayload()); err != nil {
			t.Fatal(err)
		}
		if tag, _, err := readFrame(raw); err != nil || tag != frameHelloOK {
			t.Fatalf("handshake: tag=%#x err=%v", tag, err)
		}
		payload, err := buildQueryPayload(1, sqlparser.MustParse(`SELECT k, v, s FROM t`), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(raw, frameQuery, payload); err != nil {
			t.Fatal(err)
		}
		// Read a single frame to ensure the query is executing, then hang up.
		if tag, _, err := readFrame(raw); err != nil || tag != frameData {
			t.Fatalf("first frame: tag=%#x err=%v", tag, err)
		}
		raw.Close()
	}
	waitGoroutines(t, before, "mid-stream disconnect")
	s.mu.Lock()
	live := len(s.sessions)
	s.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d sessions still registered after disconnects", live)
	}
}

// TestServerCloseJoins: Close with live sessions tears everything down and
// joins every goroutine.
func TestServerCloseJoins(t *testing.T) {
	backend := testBackend(t, 100)
	before := runtime.NumGoroutine()
	s, err := Listen(backend, "127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]*Conn, 4)
	for i := range conns {
		c, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Queries on closed sessions fail rather than hang.
	if _, err := conns[0].ExecuteStream(sqlparser.MustParse(`SELECT k FROM t`), nil, &bytes.Buffer{}); err == nil {
		t.Fatal("query on a closed server succeeded")
	}
	for _, c := range conns {
		c.Close()
	}
	waitGoroutines(t, before, "server close")
}

// selfSignedTLS builds a throwaway server certificate and a client config
// trusting it.
func selfSignedTLS(t *testing.T) (*tls.Config, *tls.Config) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "monomi-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(cert)
	srvCfg := &tls.Config{Certificates: []tls.Certificate{{
		Certificate: [][]byte{der}, PrivateKey: key,
	}}}
	cliCfg := &tls.Config{RootCAs: pool, ServerName: "127.0.0.1"}
	return srvCfg, cliCfg
}

// TestTLSLoopback: the same protocol over TLS.
func TestTLSLoopback(t *testing.T) {
	backend := testBackend(t, 200)
	srvCfg, cliCfg := selfSignedTLS(t)
	s := startServer(t, backend, Config{TLS: srvCfg})
	c, err := DialTLS(s.Addr().String(), cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := sqlparser.MustParse(`SELECT k, COUNT(*) FROM t GROUP BY k`)
	var want, got bytes.Buffer
	if _, err := backend.ExecuteStream(q, nil, &want); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteStream(q, nil, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("TLS stream differs from in-process stream")
	}
}
