// Package transport is MONOMI's real network layer: the request/response
// protocol a remote trusted client speaks to the untrusted server over TCP
// (optionally TLS). Everything before this package ran in-process with
// netsim charging simulated time; transport keeps that cost model (the
// server still reports simulated scan/CPU charges in its stats frame) but
// moves the bytes over an actual socket, with sessions multiplexing many
// concurrent clients onto server.ExecuteStreamCtx, per-query context
// cancellation, and admission control (connection cap, in-flight query
// cap).
//
// The protocol is frame-based. Every frame is
//
//	tag byte | u32 payload length | payload
//
// with client→server tags
//
//	hello:      0xC1  magic "MNM1" + u16 version
//	query:      0xC4  u64 qid | u32 sql len | sql | u32 nparams |
//	                  nparams × (u32 name len | name | wire-framed value)
//	cancel:     0xC5  u64 qid
//	prepare:    0xC9  u64 stmt id | u32 sql len | sql | u32 nparams | ...
//	                  (same layout as query: the fixed hoisted literals)
//	exec-stmt:  0xCB  u64 qid | u64 stmt id | u32 nparams | ...
//	close-stmt: 0xCC  u64 stmt id             (fire and forget)
//
// and server→client tags
//
//	hello-ok:   0xC2  u16 version | u64 session id
//	reject:     0xC3  u16 code | message      (connection-level; closes)
//	data:       0xC6  u64 qid | stream bytes  (a chunk of the result stream)
//	done:       0xC7  u64 qid | 7 × u64 stats
//	error:      0xC8  u64 qid | u16 code | message
//	prepare-ok: 0xCA  u64 stmt id
//
// Prepared statements (PREPARE/EXECUTE): a prepare frame registers a
// parameterized query under a client-chosen statement id — the server
// parses it once, stores the AST with the prepare-time parameter values
// (the hoisted ciphertext constants), and acks with prepare-ok. Each
// exec-stmt frame then re-executes the stored statement with only the
// fresh per-execution parameters on the wire, merged over the fixed ones.
// Statement ids are drawn from the same per-session sequence as query ids,
// so an error frame's id field is never ambiguous. Executing an unknown or
// closed id fails that execution with CodeUnknownStmt; the session
// survives.
//
// A query's result is the existing internal/wire batch stream
// (header/batch/end frames), carried verbatim as the concatenated payloads
// of its data frames — the transport never re-frames result rows, so the
// streamed bytes are byte-identical to what server.ExecuteStream writes
// in-process, and the client feeds them to the same wire.BatchReader. The
// done frame carries the server's StreamStats (simulated times, wire
// size), preserving the netsim accounting across the real socket.
//
// Queries containing ciphertext constants do not render to re-parsable
// SQL (byte-string literals have no SQL spelling here), so the query frame
// ships the AST with every literal hoisted into a named parameter: SQL
// text with :p references plus the literal values in the wire value
// encoding (params.go). The server parses the text and the engine resolves
// the parameters at evaluation time — the same mechanism user-supplied
// parameters already use.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/server"
	"repro/internal/value"
	"repro/internal/wire"
)

// Protocol identity.
const (
	protoMagic   = "MNM1"
	protoVersion = 1
)

// Frame tags. Disjoint from wire's value tags (0–5) and stream-frame tags
// (0xA1–0xA3) so a desynchronized reader fails on the first byte.
const (
	frameHello     byte = 0xC1
	frameHelloOK   byte = 0xC2
	frameReject    byte = 0xC3
	frameQuery     byte = 0xC4
	frameCancel    byte = 0xC5
	frameData      byte = 0xC6
	frameDone      byte = 0xC7
	frameError     byte = 0xC8
	framePrepare   byte = 0xC9
	framePrepareOK byte = 0xCA
	frameExecStmt  byte = 0xCB
	frameCloseStmt byte = 0xCC
)

// Sanity bounds: frames announcing more are corrupt, and rejecting them
// early keeps a fuzzed or malicious peer from driving huge allocations.
const (
	maxFramePayload = 1 << 26 // any single frame
	maxQueryParams  = 1 << 16
	dataChunkSize   = 64 << 10 // result stream bytes per data frame
)

// Code classifies rejections and errors on the wire.
type Code uint16

// Rejection and error codes.
const (
	// CodeQueryError: the query failed to parse or execute.
	CodeQueryError Code = 1
	// CodeCancelled: the query was cancelled by a cancel frame (or the
	// session closed under it).
	CodeCancelled Code = 2
	// CodeQueryRejected: admission control — the in-flight query cap was
	// reached and no slot freed within the server's QueryWait.
	CodeQueryRejected Code = 3
	// CodeConnRejected: admission control — the connection cap.
	CodeConnRejected Code = 4
	// CodeProtocol: malformed frame; the session closes after reporting.
	CodeProtocol Code = 5
	// CodeShutdown: the server is shutting down.
	CodeShutdown Code = 6
	// CodeUnknownStmt: an exec-stmt frame named a statement id this session
	// never prepared (or already closed). Fails the execution, not the
	// session.
	CodeUnknownStmt Code = 7
)

func (c Code) String() string {
	switch c {
	case CodeQueryError:
		return "query error"
	case CodeCancelled:
		return "cancelled"
	case CodeQueryRejected:
		return "query rejected (in-flight cap)"
	case CodeConnRejected:
		return "connection rejected (connection cap)"
	case CodeProtocol:
		return "protocol error"
	case CodeShutdown:
		return "server shutting down"
	case CodeUnknownStmt:
		return "unknown prepared statement"
	}
	return fmt.Sprintf("code %d", uint16(c))
}

// RejectError is a server-initiated rejection or failure, carrying the
// protocol code so callers can distinguish admission-control rejections
// (retryable) from query errors (not).
type RejectError struct {
	Code Code
	Msg  string
}

func (e *RejectError) Error() string {
	if e.Msg == "" {
		return "transport: " + e.Code.String()
	}
	return "transport: " + e.Code.String() + ": " + e.Msg
}

// IsRejected reports whether err is or wraps an admission-control
// rejection (connection or in-flight query cap).
func IsRejected(err error) bool {
	var re *RejectError
	return errors.As(err, &re) && (re.Code == CodeQueryRejected || re.Code == CodeConnRejected)
}

// writeFrame writes one complete frame as a single Write call, so a
// concurrent writer holding the same lock can never interleave bytes
// mid-frame.
func writeFrame(w io.Writer, tag byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: frame payload of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 0, 5+len(payload))
	buf = append(buf, tag)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, enforcing the payload bound.
func readFrame(r io.Reader) (tag byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("transport: frame %#x declares %d payload bytes", hdr[0], n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("transport: truncated frame %#x: %w", hdr[0], err)
	}
	return hdr[0], payload, nil
}

// --- payload encodings ---

func helloPayload() []byte {
	b := make([]byte, 0, 6)
	b = append(b, protoMagic...)
	return binary.BigEndian.AppendUint16(b, protoVersion)
}

func parseHello(p []byte) error {
	if len(p) != 6 || string(p[:4]) != protoMagic {
		return fmt.Errorf("transport: bad hello (not a monomi client?)")
	}
	if v := binary.BigEndian.Uint16(p[4:]); v != protoVersion {
		return fmt.Errorf("transport: protocol version %d, server speaks %d", v, protoVersion)
	}
	return nil
}

func helloOKPayload(sessionID uint64) []byte {
	b := binary.BigEndian.AppendUint16(nil, protoVersion)
	return binary.BigEndian.AppendUint64(b, sessionID)
}

func parseHelloOK(p []byte) (sessionID uint64, err error) {
	if len(p) != 10 {
		return 0, fmt.Errorf("transport: bad hello-ok frame")
	}
	if v := binary.BigEndian.Uint16(p); v != protoVersion {
		return 0, fmt.Errorf("transport: server speaks protocol version %d, want %d", v, protoVersion)
	}
	return binary.BigEndian.Uint64(p[2:]), nil
}

func rejectPayload(code Code, msg string) []byte {
	b := binary.BigEndian.AppendUint16(nil, uint16(code))
	return append(b, msg...)
}

func parseReject(p []byte) *RejectError {
	if len(p) < 2 {
		return &RejectError{Code: CodeProtocol, Msg: "malformed reject frame"}
	}
	return &RejectError{Code: Code(binary.BigEndian.Uint16(p)), Msg: string(p[2:])}
}

func errorPayload(qid uint64, code Code, msg string) []byte {
	b := binary.BigEndian.AppendUint64(nil, qid)
	b = binary.BigEndian.AppendUint16(b, uint16(code))
	return append(b, msg...)
}

func parseError(p []byte) (qid uint64, e *RejectError, err error) {
	if len(p) < 10 {
		return 0, nil, fmt.Errorf("transport: malformed error frame")
	}
	return binary.BigEndian.Uint64(p),
		&RejectError{Code: Code(binary.BigEndian.Uint16(p[8:])), Msg: string(p[10:])}, nil
}

// appendParams encodes a parameter set in slot order:
// u32 count | count × (u32 name len | name | wire-framed value).
func appendParams(b []byte, params map[string]value.Value, order []string) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, uint32(len(order)))
	var err error
	for _, name := range order {
		b = binary.BigEndian.AppendUint32(b, uint32(len(name)))
		b = append(b, name...)
		if b, err = wire.AppendValue(b, params[name]); err != nil {
			return nil, fmt.Errorf("transport: encoding parameter %s: %w", name, err)
		}
	}
	return b, nil
}

// decodeParams decodes an appendParams-encoded set, returning the unread
// remainder. Decoded byte strings are copied — the decoded values outlive
// the frame's scratch payload.
func decodeParams(p []byte) (params map[string]value.Value, rest []byte, err error) {
	if len(p) < 4 {
		return nil, nil, fmt.Errorf("missing parameter count")
	}
	np := binary.BigEndian.Uint32(p)
	p = p[4:]
	if np > maxQueryParams {
		return nil, nil, fmt.Errorf("parameter count exceeds limit")
	}
	if np > 0 {
		params = make(map[string]value.Value, np)
	}
	for i := uint32(0); i < np; i++ {
		if len(p) < 4 {
			return nil, nil, fmt.Errorf("truncated parameter name length")
		}
		ln := binary.BigEndian.Uint32(p)
		p = p[4:]
		if uint32(len(p)) < ln {
			return nil, nil, fmt.Errorf("parameter name overruns payload")
		}
		name := string(p[:ln])
		p = p[ln:]
		v, n, err := wire.DecodeValue(p)
		if err != nil {
			return nil, nil, fmt.Errorf("bad parameter value: %w", err)
		}
		if v.K == value.Bytes {
			v.B = append([]byte(nil), v.B...)
		}
		params[name] = v
		p = p[n:]
	}
	return params, p, nil
}

// queryPayload frames one query: id, parameterized SQL text, and the
// hoisted literal values. The prepare frame reuses the layout (the id is a
// statement id and the values are the fixed prepare-time constants).
func queryPayload(qid uint64, sql string, params map[string]value.Value, order []string) ([]byte, error) {
	b := binary.BigEndian.AppendUint64(nil, qid)
	b = binary.BigEndian.AppendUint32(b, uint32(len(sql)))
	b = append(b, sql...)
	return appendParams(b, params, order)
}

func parseQuery(p []byte) (qid uint64, sql string, params map[string]value.Value, err error) {
	fail := func(what string) (uint64, string, map[string]value.Value, error) {
		return 0, "", nil, fmt.Errorf("transport: malformed query frame: %s", what)
	}
	if len(p) < 12 {
		return fail("short header")
	}
	qid = binary.BigEndian.Uint64(p)
	p = p[8:]
	n := binary.BigEndian.Uint32(p)
	p = p[4:]
	if uint32(len(p)) < n {
		return fail("sql length overruns payload")
	}
	sql = string(p[:n])
	p = p[n:]
	params, p, perr := decodeParams(p)
	if perr != nil {
		return fail(perr.Error())
	}
	if len(p) != 0 {
		return fail("trailing bytes")
	}
	return qid, sql, params, nil
}

// prepareOKPayload acks a prepare frame.
func prepareOKPayload(stmtID uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, stmtID)
}

func parsePrepareOK(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("transport: malformed prepare-ok frame")
	}
	return binary.BigEndian.Uint64(p), nil
}

// execStmtPayload frames one execution of a prepared statement: the query
// id, the statement id, and only the per-execution parameters.
func execStmtPayload(qid, stmtID uint64, params map[string]value.Value, order []string) ([]byte, error) {
	b := binary.BigEndian.AppendUint64(nil, qid)
	b = binary.BigEndian.AppendUint64(b, stmtID)
	return appendParams(b, params, order)
}

func parseExecStmt(p []byte) (qid, stmtID uint64, params map[string]value.Value, err error) {
	fail := func(what string) (uint64, uint64, map[string]value.Value, error) {
		return 0, 0, nil, fmt.Errorf("transport: malformed exec-stmt frame: %s", what)
	}
	if len(p) < 20 {
		return fail("short header")
	}
	qid = binary.BigEndian.Uint64(p)
	stmtID = binary.BigEndian.Uint64(p[8:])
	params, rest, perr := decodeParams(p[16:])
	if perr != nil {
		return fail(perr.Error())
	}
	if len(rest) != 0 {
		return fail("trailing bytes")
	}
	return qid, stmtID, params, nil
}

func closeStmtPayload(stmtID uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, stmtID)
}

func parseCloseStmt(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("transport: malformed close-stmt frame")
	}
	return binary.BigEndian.Uint64(p), nil
}

func cancelPayload(qid uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, qid)
}

func parseCancel(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("transport: malformed cancel frame")
	}
	return binary.BigEndian.Uint64(p), nil
}

// donePayload frames a completed query's StreamStats.
func donePayload(qid uint64, st *server.StreamStats) []byte {
	b := binary.BigEndian.AppendUint64(nil, qid)
	for _, v := range [...]uint64{
		uint64(st.TimeToFirstBatch), uint64(st.ServerTime), uint64(st.WallServerTime),
		uint64(st.FirstFrameBytes), uint64(st.WireBytes), uint64(st.Batches), uint64(st.Rows),
	} {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

func parseDone(p []byte) (qid uint64, st *server.StreamStats, err error) {
	if len(p) != 8+7*8 {
		return 0, nil, fmt.Errorf("transport: malformed done frame")
	}
	qid = binary.BigEndian.Uint64(p)
	u := func(i int) uint64 { return binary.BigEndian.Uint64(p[8+8*i:]) }
	return qid, &server.StreamStats{
		TimeToFirstBatch: time.Duration(u(0)),
		ServerTime:       time.Duration(u(1)),
		WallServerTime:   time.Duration(u(2)),
		FirstFrameBytes:  int64(u(3)),
		WireBytes:        int64(u(4)),
		Batches:          int64(u(5)),
		Rows:             int64(u(6)),
	}, nil
}
