package wire

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func TestRoundTripAllKinds(t *testing.T) {
	vals := []value.Value{
		value.NewNull(),
		value.NewInt(-12345),
		value.NewInt(1 << 60),
		value.NewFloat(3.14159),
		value.NewStr("hello"),
		value.NewStr(""),
		value.NewBytes([]byte{0, 1, 2, 255}),
		value.NewDate(9131),
	}
	var buf []byte
	var err error
	for _, v := range vals {
		if buf, err = AppendValue(buf, v); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if vals[i].K != got[i].K && !(vals[i].K == value.Bool && got[i].K == value.Int) {
			t.Errorf("value %d kind %v -> %v", i, vals[i].K, got[i].K)
		}
		if !vals[i].IsNull() && value.Compare(vals[i], got[i]) != 0 {
			t.Errorf("value %d: %v -> %v", i, vals[i], got[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty input")
	}
	if _, _, err := DecodeValue([]byte{1, 0}); err == nil {
		t.Error("truncated int")
	}
	if _, _, err := DecodeValue([]byte{3, 0, 0, 0, 10, 'a'}); err == nil {
		t.Error("truncated string payload")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("unknown tag")
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(b []byte, s string, i int64) bool {
		var buf []byte
		buf, err1 := AppendValue(buf, value.NewBytes(b))
		buf, err2 := AppendValue(buf, value.NewStr(s))
		buf, err3 := AppendValue(buf, value.NewInt(i))
		got, err := DecodeAll(buf)
		if err1 != nil || err2 != nil || err3 != nil || err != nil || len(got) != 3 {
			return false
		}
		return string(got[0].B) == string(b) && got[1].S == s && got[2].I == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAppendValueUnknownKind pins the fix for the silent tagNull
// fallthrough: framing a value of an out-of-vocabulary kind must surface
// an error, not ship a NULL.
func TestAppendValueUnknownKind(t *testing.T) {
	bogus := value.Value{K: value.Kind(250)}
	if _, err := AppendValue(nil, bogus); err == nil {
		t.Fatal("unknown kind framed silently")
	}
}
