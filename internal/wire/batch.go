package wire

// Streamed result protocol. A result stream is one header frame, any
// number of batch frames, and one end frame:
//
//	header: 0xA1 | u32 ncols | ncols × (u32 len | name bytes)
//	batch:  0xA2 | u32 nrows | u32 payload len | nrows × ncols framed values
//	end:    0xA3 | u64 total rows
//
// Values inside a batch reuse the per-value tags of wire.go (the same
// encoding GROUP_CONCAT blobs use), so the streamed and materialized wire
// speak one value vocabulary. The end frame carries the total row count as
// an integrity check: a reader that sees end with a mismatched count — or
// EOF with no end frame — reports a truncated stream instead of returning
// a silently short result.

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/value"
)

// Frame type tags. Distinct from the value tags (0–5) so a reader
// desynchronized into value territory fails immediately.
const (
	frameHeader byte = 0xA1
	frameBatch  byte = 0xA2
	frameEnd    byte = 0xA3
)

// Sanity bounds: a frame announcing more than these is corrupt, and
// rejecting it early keeps a fuzzed or truncated stream from driving a
// multi-gigabyte allocation.
const (
	maxCols         = 1 << 16
	maxRowsPerBatch = 1 << 24
	maxBatchPayload = 1 << 30
	maxNameLen      = 1 << 16
)

// ResultHeader describes a streamed result before any rows arrive.
type ResultHeader struct {
	Cols []string
}

// AppendHeader appends the header frame for cols to dst.
func AppendHeader(dst []byte, cols []string) ([]byte, error) {
	if len(cols) > maxCols {
		return dst, fmt.Errorf("wire: %d columns exceeds frame limit", len(cols))
	}
	dst = append(dst, frameHeader)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(cols)))
	for _, c := range cols {
		if len(c) > maxNameLen {
			return dst, fmt.Errorf("wire: column name of %d bytes exceeds frame limit", len(c))
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(c)))
		dst = append(dst, c...)
	}
	return dst, nil
}

// BatchWriter frames a result stream onto w: the header at construction,
// one batch frame per WriteBatch, the end frame at Close.
type BatchWriter struct {
	w     io.Writer
	ncols int
	buf   []byte
	bytes int64
	rows  int64
}

// NewBatchWriter writes the header frame for cols and returns a writer for
// the stream's batches.
func NewBatchWriter(w io.Writer, cols []string) (*BatchWriter, error) {
	bw := &BatchWriter{w: w, ncols: len(cols)}
	b, err := AppendHeader(bw.buf[:0], cols)
	if err != nil {
		return nil, err
	}
	if err := bw.flush(b); err != nil {
		return nil, err
	}
	return bw, nil
}

// WriteBatch frames one batch of rows. Every row must have exactly the
// header's column count — the reader reconstructs row boundaries from it.
func (bw *BatchWriter) WriteBatch(rows [][]value.Value) error {
	if len(rows) > maxRowsPerBatch {
		return fmt.Errorf("wire: batch of %d rows exceeds frame limit", len(rows))
	}
	b := append(bw.buf[:0], frameBatch)
	b = binary.BigEndian.AppendUint32(b, uint32(len(rows)))
	b = binary.BigEndian.AppendUint32(b, 0) // payload length, patched below
	payloadStart := len(b)
	var err error
	for _, row := range rows {
		if len(row) != bw.ncols {
			return fmt.Errorf("wire: row has %d values, header declares %d columns", len(row), bw.ncols)
		}
		for _, v := range row {
			if b, err = AppendValue(b, v); err != nil {
				return err
			}
		}
	}
	payload := len(b) - payloadStart
	if payload > maxBatchPayload {
		return fmt.Errorf("wire: batch payload of %d bytes exceeds frame limit", payload)
	}
	binary.BigEndian.PutUint32(b[payloadStart-4:payloadStart], uint32(payload))
	bw.rows += int64(len(rows))
	return bw.flush(b)
}

// Close writes the end frame. It does not close the underlying writer.
func (bw *BatchWriter) Close() error {
	b := append(bw.buf[:0], frameEnd)
	b = binary.BigEndian.AppendUint64(b, uint64(bw.rows))
	return bw.flush(b)
}

// flush writes one complete frame and recycles its buffer.
func (bw *BatchWriter) flush(b []byte) error {
	bw.buf = b[:0]
	n, err := bw.w.Write(b)
	bw.bytes += int64(n)
	return err
}

// BytesWritten reports the total framed bytes written so far — the
// streamed result's size on the wire.
func (bw *BatchWriter) BytesWritten() int64 { return bw.bytes }

// RowsWritten reports the rows framed so far.
func (bw *BatchWriter) RowsWritten() int64 { return bw.rows }

// BatchReader decodes a result stream from r, validating framing as it
// goes: truncated or corrupt frames return errors, never short results.
type BatchReader struct {
	r     io.Reader
	hdr   ResultHeader
	buf   []byte
	bytes int64
	rows  int64
	done  bool
}

// NewBatchReader reads the header frame (blocking until the producer has
// written it) and returns a reader positioned at the first batch.
func NewBatchReader(r io.Reader) (*BatchReader, error) {
	br := &BatchReader{r: r}
	tag, err := br.readByte()
	if err != nil {
		return nil, fmt.Errorf("wire: reading stream header: %w", err)
	}
	if tag != frameHeader {
		return nil, fmt.Errorf("wire: stream starts with tag %#x, want header", tag)
	}
	ncols, err := br.readUint32()
	if err != nil {
		return nil, fmt.Errorf("wire: reading column count: %w", err)
	}
	if ncols > maxCols {
		return nil, fmt.Errorf("wire: header declares %d columns", ncols)
	}
	br.hdr.Cols = make([]string, ncols)
	for i := range br.hdr.Cols {
		n, err := br.readUint32()
		if err != nil {
			return nil, fmt.Errorf("wire: reading column %d name length: %w", i, err)
		}
		if n > maxNameLen {
			return nil, fmt.Errorf("wire: column %d name of %d bytes", i, n)
		}
		b, err := br.readN(int(n))
		if err != nil {
			return nil, fmt.Errorf("wire: reading column %d name: %w", i, err)
		}
		br.hdr.Cols[i] = string(b)
	}
	return br, nil
}

// Header returns the stream's result header.
func (br *BatchReader) Header() ResultHeader { return br.hdr }

// Cols returns the streamed result's column names.
func (br *BatchReader) Cols() []string { return br.hdr.Cols }

// Next returns the next batch of rows, or nil after the end frame has been
// consumed and validated. An EOF before the end frame is a truncated
// stream and reported as an error.
func (br *BatchReader) Next() ([][]value.Value, error) {
	if br.done {
		return nil, nil
	}
	tag, err := br.readByte()
	if err != nil {
		return nil, fmt.Errorf("wire: stream truncated before end frame: %w", err)
	}
	switch tag {
	case frameEnd:
		total, err := br.readUint64()
		if err != nil {
			return nil, fmt.Errorf("wire: truncated end frame: %w", err)
		}
		if total != uint64(br.rows) {
			return nil, fmt.Errorf("wire: stream delivered %d rows, end frame declares %d", br.rows, total)
		}
		br.done = true
		return nil, nil
	case frameBatch:
		return br.readBatch()
	}
	return nil, fmt.Errorf("wire: unknown frame tag %#x", tag)
}

// readBatch decodes one batch frame's rows, checking the payload decodes
// to exactly nrows × ncols values with no bytes left over.
func (br *BatchReader) readBatch() ([][]value.Value, error) {
	nrows, err := br.readUint32()
	if err != nil {
		return nil, fmt.Errorf("wire: truncated batch row count: %w", err)
	}
	if nrows > maxRowsPerBatch {
		return nil, fmt.Errorf("wire: batch declares %d rows", nrows)
	}
	payload, err := br.readUint32()
	if err != nil {
		return nil, fmt.Errorf("wire: truncated batch payload length: %w", err)
	}
	if payload > maxBatchPayload {
		return nil, fmt.Errorf("wire: batch declares %d payload bytes", payload)
	}
	b, err := br.readN(int(payload))
	if err != nil {
		return nil, fmt.Errorf("wire: truncated batch payload: %w", err)
	}
	ncols := len(br.hdr.Cols)
	rows := make([][]value.Value, nrows)
	for i := range rows {
		row := make([]value.Value, ncols)
		for j := range row {
			v, n, err := DecodeValue(b)
			if err != nil {
				return nil, fmt.Errorf("wire: batch row %d col %d: %w", i, j, err)
			}
			row[j] = v
			b = b[n:]
		}
		rows[i] = row
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: batch payload has %d trailing bytes", len(b))
	}
	br.rows += int64(nrows)
	return rows, nil
}

// BytesRead reports the framed bytes consumed so far.
func (br *BatchReader) BytesRead() int64 { return br.bytes }

// RowsRead reports the rows decoded so far.
func (br *BatchReader) RowsRead() int64 { return br.rows }

func (br *BatchReader) readByte() (byte, error) {
	b, err := br.readN(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (br *BatchReader) readUint32() (uint32, error) {
	b, err := br.readN(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (br *BatchReader) readUint64() (uint64, error) {
	b, err := br.readN(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

// readN reads exactly n bytes into the reader's scratch buffer. The
// returned slice is valid until the next readN call.
func (br *BatchReader) readN(n int) ([]byte, error) {
	if cap(br.buf) < n {
		br.buf = make([]byte, n)
	}
	b := br.buf[:n]
	m, err := io.ReadFull(br.r, b)
	br.bytes += int64(m)
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	return b, nil
}
