// Package wire frames SQL values for transport between the untrusted
// server and the trusted client: the GROUP_CONCAT aggregate UDF — the
// paper's GROUP() operator for split aggregation over grouped data (§5.3)
// — ships every ciphertext of a group to the client in one framed blob,
// and the client decodes it back into values to decrypt and aggregate
// locally.
//
// On top of the per-value frames, batch.go defines the streamed result
// protocol: a ResultHeader naming the columns followed by incremental row
// batches (BatchWriter/BatchReader over io.Writer/io.Reader), so the
// server can ship encrypted intermediate results mid-scan and the client
// can begin decrypting before the server's scan finishes.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/value"
)

// kind tags mirror value.Kind but are pinned for wire stability.
const (
	tagNull  = 0
	tagInt   = 1
	tagBytes = 2
	tagStr   = 3
	tagDate  = 4
	tagFloat = 5
)

// AppendValue appends the framed encoding of v to dst. A kind outside the
// wire vocabulary is a framing bug in the caller, not data: it returns an
// error naming the kind so the corruption surfaces at the encoder instead
// of silently shipping a NULL.
func AppendValue(dst []byte, v value.Value) ([]byte, error) {
	switch v.K {
	case value.Null:
		return append(dst, tagNull), nil
	case value.Int, value.Bool:
		dst = append(dst, tagInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.I)), nil
	case value.Date:
		dst = append(dst, tagDate)
		return binary.BigEndian.AppendUint64(dst, uint64(v.I)), nil
	case value.Float:
		dst = append(dst, tagFloat)
		// floats only appear in already-plaintext aggregates; round-trip
		// through the integer bits representation.
		return binary.BigEndian.AppendUint64(dst, floatBits(v.F)), nil
	case value.Str:
		dst = append(dst, tagStr)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.S)))
		return append(dst, v.S...), nil
	case value.Bytes:
		dst = append(dst, tagBytes)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.B)))
		return append(dst, v.B...), nil
	}
	return dst, fmt.Errorf("wire: cannot frame value of kind %v", v.K)
}

// DecodeValue decodes one framed value from b, returning it and the number
// of bytes consumed.
func DecodeValue(b []byte) (value.Value, int, error) {
	if len(b) == 0 {
		return value.Value{}, 0, fmt.Errorf("wire: empty input")
	}
	switch b[0] {
	case tagNull:
		return value.NewNull(), 1, nil
	case tagInt, tagDate, tagFloat:
		if len(b) < 9 {
			return value.Value{}, 0, fmt.Errorf("wire: truncated integer")
		}
		x := binary.BigEndian.Uint64(b[1:9])
		switch b[0] {
		case tagDate:
			return value.NewDate(int64(x)), 9, nil
		case tagFloat:
			return value.NewFloat(bitsFloat(x)), 9, nil
		default:
			return value.NewInt(int64(x)), 9, nil
		}
	case tagStr, tagBytes:
		if len(b) < 5 {
			return value.Value{}, 0, fmt.Errorf("wire: truncated length")
		}
		n := int(binary.BigEndian.Uint32(b[1:5]))
		if len(b) < 5+n {
			return value.Value{}, 0, fmt.Errorf("wire: truncated payload (need %d bytes)", n)
		}
		if b[0] == tagStr {
			return value.NewStr(string(b[5 : 5+n])), 5 + n, nil
		}
		return value.NewBytes(append([]byte(nil), b[5:5+n]...)), 5 + n, nil
	}
	return value.Value{}, 0, fmt.Errorf("wire: unknown tag %d", b[0])
}

// DecodeAll decodes a concatenation of framed values.
func DecodeAll(b []byte) ([]value.Value, error) {
	var out []value.Value
	for len(b) > 0 {
		v, n, err := DecodeValue(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(x uint64) float64 { return math.Float64frombits(x) }
