package wire

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/internal/value"
)

// streamFixture frames a three-column stream with mixed kinds and batch
// shapes (incl. an empty batch) and returns the wire bytes plus the rows.
func streamFixture(t testing.TB) ([]byte, []string, [][][]value.Value) {
	t.Helper()
	cols := []string{"id", "blob", "name"}
	batches := [][][]value.Value{
		{
			{value.NewInt(1), value.NewBytes([]byte{0xde, 0xad}), value.NewStr("alpha")},
			{value.NewInt(-2), value.NewNull(), value.NewStr("")},
		},
		{},
		{
			{value.NewDate(9131), value.NewBytes(nil), value.NewStr("β")},
			{value.NewFloat(2.5), value.NewBytes([]byte{0}), value.NewNull()},
			{value.NewInt(1 << 60), value.NewNull(), value.NewStr("tail")},
		},
	}
	var buf bytes.Buffer
	bw, err := NewBatchWriter(&buf, cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := bw.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if bw.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, wrote %d", bw.BytesWritten(), buf.Len())
	}
	return buf.Bytes(), cols, batches
}

func TestBatchRoundTrip(t *testing.T) {
	wireBytes, cols, batches := streamFixture(t)
	br, err := NewBatchReader(bytes.NewReader(wireBytes))
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Cols(); len(got) != len(cols) || got[0] != "id" || got[2] != "name" {
		t.Fatalf("cols = %v, want %v", got, cols)
	}
	var wantRows, gotRows [][]value.Value
	for _, b := range batches {
		wantRows = append(wantRows, b...)
	}
	for {
		b, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		gotRows = append(gotRows, b...)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("decoded %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i, want := range wantRows {
		for j, wv := range want {
			gv := gotRows[i][j]
			if wv.IsNull() != gv.IsNull() {
				t.Fatalf("row %d col %d: null mismatch", i, j)
			}
			if !wv.IsNull() && value.Compare(wv, gv) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, j, gv, wv)
			}
		}
	}
	if br.BytesRead() != int64(len(wireBytes)) {
		t.Errorf("BytesRead = %d, stream is %d", br.BytesRead(), len(wireBytes))
	}
	// Next after the end frame keeps returning nil.
	if b, err := br.Next(); b != nil || err != nil {
		t.Errorf("post-end Next = (%v, %v)", b, err)
	}
}

// TestBatchTruncation cuts the stream at every possible byte boundary: a
// reader over any strict prefix must return an error — never a silently
// short result — and never panic.
func TestBatchTruncation(t *testing.T) {
	wireBytes, _, _ := streamFixture(t)
	for cut := 0; cut < len(wireBytes); cut++ {
		br, err := NewBatchReader(bytes.NewReader(wireBytes[:cut]))
		if err != nil {
			continue // truncated inside the header: fine, it errored
		}
		rows := 0
		for {
			b, nerr := br.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if b == nil {
				break
			}
			rows += len(b)
		}
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly with %d rows", cut, len(wireBytes), rows)
		}
	}
}

// TestBatchCorruption flips each byte of the stream and requires the
// reader to either fail or decode the same row count — never panic, never
// fabricate rows beyond the end-frame total.
func TestBatchCorruption(t *testing.T) {
	wireBytes, _, batches := streamFixture(t)
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	for i := range wireBytes {
		corrupt := append([]byte(nil), wireBytes...)
		corrupt[i] ^= 0xff
		br, err := NewBatchReader(bytes.NewReader(corrupt))
		if err != nil {
			continue
		}
		rows := 0
		for {
			b, nerr := br.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if b == nil {
				break
			}
			rows += len(b)
		}
		if err == nil && rows != total {
			t.Fatalf("flipping byte %d decoded cleanly with %d rows, want %d", i, rows, total)
		}
	}
}

func TestBatchWriterRejectsBadRows(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBatchWriter(&buf, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBatch([][]value.Value{{value.NewInt(1)}}); err == nil {
		t.Error("arity mismatch framed silently")
	}
	bogus := value.Value{K: value.Kind(250)}
	if err := bw.WriteBatch([][]value.Value{{value.NewInt(1), bogus}}); err == nil {
		t.Error("unknown kind framed silently")
	}
}

// TestBatchEndFrameCountMismatch hand-crafts a stream whose end frame
// declares more rows than were delivered.
func TestBatchEndFrameCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBatchWriter(&buf, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBatch([][]value.Value{{value.NewInt(7)}}); err != nil {
		t.Fatal(err)
	}
	// End frame claiming 99 rows.
	end := append([]byte{frameEnd}, 0, 0, 0, 0, 0, 0, 0, 99)
	buf.Write(end)
	br, err := NewBatchReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

// TestBatchReaderStreamsIncrementally proves the reader does not buffer
// the whole stream: batches written one at a time through an in-process
// pipe are readable before the writer closes the stream.
func TestBatchReaderStreamsIncrementally(t *testing.T) {
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	step := make(chan struct{})
	go func() {
		bw, err := NewBatchWriter(pw, []string{"x"})
		if err != nil {
			errc <- err
			return
		}
		for i := 0; i < 3; i++ {
			<-step
			if err := bw.WriteBatch([][]value.Value{{value.NewInt(int64(i))}}); err != nil {
				errc <- err
				return
			}
		}
		<-step
		errc <- bw.Close()
		pw.Close()
	}()
	// Reading the header unblocks the writer's pipe write; each step then
	// releases exactly one batch (or the end frame) into the pipe.
	br, err := NewBatchReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		step <- struct{}{} // release batch i
		rows, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 || rows[0][0].I != int64(i) {
			t.Fatalf("batch %d = %v", i, rows)
		}
	}
	step <- struct{}{} // release the end frame
	if rows, err := br.Next(); rows != nil || err != nil {
		t.Fatalf("end = (%v, %v)", rows, err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchReader feeds arbitrary bytes to the reader: it must never
// panic, and any clean decode must satisfy the end-frame row count.
func FuzzBatchReader(f *testing.F) {
	wireBytes, _, _ := streamFixture(f)
	f.Add(wireBytes)
	f.Add([]byte{})
	f.Add([]byte{frameHeader, 0, 0, 0, 0, frameEnd, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{frameBatch, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		br, err := NewBatchReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		rows := int64(0)
		for i := 0; i < 1<<16; i++ {
			b, err := br.Next()
			if err != nil {
				return
			}
			if b == nil {
				if rows != br.RowsRead() {
					t.Fatalf("rows counted %d, reader says %d", rows, br.RowsRead())
				}
				return
			}
			rows += int64(len(b))
		}
	})
}

// TestStreamFixtureSelfCheck keeps the fixture honest about sizes used in
// the sibling tests' messages.
func TestStreamFixtureSelfCheck(t *testing.T) {
	wireBytes, cols, _ := streamFixture(t)
	if len(wireBytes) == 0 || len(cols) != 3 {
		t.Fatal(fmt.Errorf("bad fixture: %d bytes, %d cols", len(wireBytes), len(cols)))
	}
}
