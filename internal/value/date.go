package value

import (
	"fmt"
	"time"
)

// Dates are stored as int64 days since 1970-01-01 so they can be encrypted
// with the integer DET/OPE schemes. These helpers convert between day counts
// and calendar components without pulling time-zone state into the engine.

const dateLayout = "2006-01-02"

// ParseDate converts a 'YYYY-MM-DD' literal into days since the epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.ParseInLocation(dateLayout, s, time.UTC)
	if err != nil {
		return 0, fmt.Errorf("value: bad date %q: %w", s, err)
	}
	return int64(t.Unix() / 86400), nil
}

// MustParseDate is ParseDate for literals known to be valid (test fixtures,
// generated data). It panics on malformed input.
func MustParseDate(s string) int64 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders days-since-epoch as 'YYYY-MM-DD'.
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format(dateLayout)
}

// dateTime converts days-since-epoch to a UTC time.Time.
func dateTime(days int64) time.Time { return time.Unix(days*86400, 0).UTC() }

// ExtractYear returns the calendar year of a date value.
func ExtractYear(days int64) int64 { return int64(dateTime(days).Year()) }

// ExtractMonth returns the calendar month (1-12) of a date value.
func ExtractMonth(days int64) int64 { return int64(dateTime(days).Month()) }

// ExtractDay returns the day of month of a date value.
func ExtractDay(days int64) int64 { return int64(dateTime(days).Day()) }

// AddInterval adds an SQL interval to a date. Unit is one of "year",
// "month", "day"; n may be negative.
func AddInterval(days int64, n int64, unit string) int64 {
	t := dateTime(days)
	switch unit {
	case "year":
		t = t.AddDate(int(n), 0, 0)
	case "month":
		t = t.AddDate(0, int(n), 0)
	case "day":
		t = t.AddDate(0, 0, int(n))
	}
	return t.Unix() / 86400
}

// MakeDate builds a days-since-epoch date from calendar components.
func MakeDate(year, month, day int) int64 {
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC).Unix() / 86400
}
