// Package value defines the SQL value model shared by the storage engine,
// the expression evaluator, and the encryption layer.
//
// MONOMI's evaluation replaces DECIMAL columns with scaled integers (§8.1 of
// the paper), so the numeric kinds here are int64 (covering integers, scaled
// decimals, and dates encoded as days since the Unix epoch) and float64
// (used only for averages and derived ratios). Ciphertexts are carried as
// Bytes values so that encrypted tables flow through the very same engine
// that executes plaintext queries.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported kinds.
const (
	Null  Kind = iota
	Int        // int64: integers, scaled decimals, dates (days since epoch)
	Float      // float64: AVG results and arithmetic involving division
	Str        // string
	Bool       // boolean
	Bytes      // opaque byte string (ciphertexts)
	Date       // int64 days since 1970-01-01, kept distinct for EXTRACT
)

func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Int:
		return "int"
	case Float:
		return "float"
	case Str:
		return "string"
	case Bool:
		return "bool"
	case Bytes:
		return "bytes"
	case Date:
		return "date"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a dynamically typed SQL value. The zero Value is SQL NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B []byte
}

// Constructors.

// NewNull returns the SQL NULL value.
func NewNull() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: Int, I: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{K: Float, F: f} }

// NewStr returns a string value.
func NewStr(s string) Value { return Value{K: Str, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	v := Value{K: Bool}
	if b {
		v.I = 1
	}
	return v
}

// NewBytes returns an opaque byte-string value (ciphertexts).
func NewBytes(b []byte) Value { return Value{K: Bytes, B: b} }

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: Date, I: days} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == Null }

// AsBool reports the truth value of v; NULL and non-bool values are false.
func (v Value) AsBool() bool { return v.K == Bool && v.I != 0 }

// AsInt returns the value as an int64, coercing floats and dates.
func (v Value) AsInt() int64 {
	switch v.K {
	case Int, Date, Bool:
		return v.I
	case Float:
		return int64(v.F)
	}
	return 0
}

// AsFloat returns the value as a float64, coercing integers and dates.
func (v Value) AsFloat() float64 {
	switch v.K {
	case Int, Date, Bool:
		return float64(v.I)
	case Float:
		return v.F
	}
	return 0
}

// IsNumeric reports whether v participates in arithmetic.
func (v Value) IsNumeric() bool { return v.K == Int || v.K == Float || v.K == Date }

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.K {
	case Null:
		return "NULL"
	case Int:
		return strconv.FormatInt(v.I, 10)
	case Float:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Str:
		return v.S
	case Bool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case Bytes:
		return fmt.Sprintf("0x%x", v.B)
	case Date:
		return FormatDate(v.I)
	}
	return "?"
}

// Size returns the approximate on-disk size in bytes of the value, used by
// the storage layer's I/O accounting and by the designer's space model.
func (v Value) Size() int {
	switch v.K {
	case Null:
		return 1
	case Int, Date:
		return 8
	case Float:
		return 8
	case Bool:
		return 1
	case Str:
		return len(v.S)
	case Bytes:
		return len(v.B)
	}
	return 0
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; cross-numeric comparisons coerce to float.
func Compare(v, o Value) int {
	if v.K == Null || o.K == Null {
		switch {
		case v.K == Null && o.K == Null:
			return 0
		case v.K == Null:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.K == Float || o.K == Float {
			a, b := v.AsFloat(), o.AsFloat()
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}
		a, b := v.I, o.I
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch v.K {
	case Str:
		return strings.Compare(v.S, o.S)
	case Bool:
		return int(v.I - o.I)
	case Bytes:
		a, b := v.B, o.B
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports SQL equality (NULL != NULL here; three-valued logic is the
// evaluator's concern — Equal is used for grouping/join keys where NULLs
// have already been screened).
func Equal(v, o Value) bool { return v.K != Null && o.K != Null && Compare(v, o) == 0 }

// HashKey returns a string usable as a map key for grouping and hash joins.
// Numeric values of equal magnitude map to the same key.
func (v Value) HashKey() string {
	switch v.K {
	case Null:
		return "\x00N"
	case Int, Date, Bool:
		return "\x01" + strconv.FormatInt(v.I, 10)
	case Float:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return "\x01" + strconv.FormatInt(int64(v.F), 10)
		}
		return "\x02" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case Str:
		return "\x03" + v.S
	case Bytes:
		return "\x04" + string(v.B)
	}
	return "\x05"
}

// Add returns v + o with numeric coercion; NULL if either operand is NULL.
func Add(v, o Value) Value { return arith(v, o, '+') }

// Sub returns v - o.
func Sub(v, o Value) Value { return arith(v, o, '-') }

// Mul returns v * o.
func Mul(v, o Value) Value { return arith(v, o, '*') }

// Div returns v / o. Integer division by zero and NULL operands yield NULL.
// Division always produces a float to match analytical-query expectations.
func Div(v, o Value) Value {
	if v.K == Null || o.K == Null {
		return NewNull()
	}
	d := o.AsFloat()
	if d == 0 {
		return NewNull()
	}
	return NewFloat(v.AsFloat() / d)
}

func arith(v, o Value, op byte) Value {
	if v.K == Null || o.K == Null {
		return NewNull()
	}
	if v.K == Float || o.K == Float {
		a, b := v.AsFloat(), o.AsFloat()
		switch op {
		case '+':
			return NewFloat(a + b)
		case '-':
			return NewFloat(a - b)
		case '*':
			return NewFloat(a * b)
		}
	}
	a, b := v.AsInt(), o.AsInt()
	var r int64
	switch op {
	case '+':
		r = a + b
	case '-':
		r = a - b
	case '*':
		r = a * b
	}
	if v.K == Date && o.K == Int && (op == '+' || op == '-') {
		return NewDate(r)
	}
	return NewInt(r)
}

// Neg returns -v.
func Neg(v Value) Value {
	switch v.K {
	case Int:
		return NewInt(-v.I)
	case Float:
		return NewFloat(-v.F)
	case Null:
		return NewNull()
	}
	return NewNull()
}
