package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NewNull(), Null, "NULL"},
		{NewInt(42), Int, "42"},
		{NewFloat(1.5), Float, "1.5"},
		{NewStr("abc"), Str, "abc"},
		{NewBool(true), Bool, "true"},
		{NewBool(false), Bool, "false"},
		{NewBytes([]byte{0xde, 0xad}), Bytes, "0xdead"},
		{NewDate(0), Date, "1970-01-01"},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.K, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	if Compare(NewInt(3), NewFloat(3.0)) != 0 {
		t.Error("int 3 should equal float 3.0")
	}
	if Compare(NewInt(3), NewFloat(3.5)) != -1 {
		t.Error("3 < 3.5")
	}
	if Compare(NewDate(10), NewInt(10)) != 0 {
		t.Error("date and int with same magnitude compare equal")
	}
}

func TestCompareNullOrdering(t *testing.T) {
	if Compare(NewNull(), NewInt(0)) != -1 {
		t.Error("NULL sorts before values")
	}
	if Compare(NewInt(0), NewNull()) != 1 {
		t.Error("values sort after NULL")
	}
	if Compare(NewNull(), NewNull()) != 0 {
		t.Error("NULL vs NULL compares 0 for sorting")
	}
	if Equal(NewNull(), NewNull()) {
		t.Error("Equal treats NULL as not equal to NULL")
	}
}

func TestCompareBytes(t *testing.T) {
	a := NewBytes([]byte{1, 2})
	b := NewBytes([]byte{1, 2, 3})
	c := NewBytes([]byte{1, 3})
	if Compare(a, b) != -1 || Compare(b, a) != 1 {
		t.Error("prefix ordering")
	}
	if Compare(a, c) != -1 {
		t.Error("lexicographic ordering")
	}
	if Compare(a, a) != 0 {
		t.Error("self equal")
	}
}

func TestHashKeyDistinctness(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewStr("1")},
		{NewStr("a"), NewBytes([]byte("a"))},
		{NewNull(), NewInt(0)},
		{NewBool(true), NewInt(1)}, // bools hash as ints deliberately: GROUP BY on 0/1
	}
	for i, p := range pairs {
		same := p[0].HashKey() == p[1].HashKey()
		wantSame := i == 3
		if same != wantSame {
			t.Errorf("pair %d: same=%v want %v", i, same, wantSame)
		}
	}
	if NewInt(7).HashKey() != NewFloat(7).HashKey() {
		t.Error("int 7 and float 7.0 must group together")
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got.AsInt() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := Mul(NewInt(2), NewFloat(1.5)); got.K != Float || got.F != 3 {
		t.Errorf("2*1.5 = %v", got)
	}
	if got := Sub(NewDate(100), NewInt(1)); got.K != Date || got.I != 99 {
		t.Errorf("date-1 = %v", got)
	}
	if !Div(NewInt(1), NewInt(0)).IsNull() {
		t.Error("div by zero yields NULL")
	}
	if got := Div(NewInt(7), NewInt(2)); got.K != Float || got.F != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if !Add(NewNull(), NewInt(1)).IsNull() {
		t.Error("NULL propagates through +")
	}
	if got := Neg(NewInt(4)); got.AsInt() != -4 {
		t.Errorf("neg = %v", got)
	}
	if got := Neg(NewFloat(2.5)); got.F != -2.5 {
		t.Errorf("neg float = %v", got)
	}
}

func TestSizeAccounting(t *testing.T) {
	if NewInt(1).Size() != 8 {
		t.Error("int size 8")
	}
	if NewStr("hello").Size() != 5 {
		t.Error("string size = len")
	}
	if NewBytes(make([]byte, 256)).Size() != 256 {
		t.Error("bytes size = len")
	}
}

func TestDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "1992-02-29", "1998-12-01", "2024-06-12"} {
		d, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", s, err)
		}
		if got := FormatDate(d); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for bad date")
	}
}

func TestExtractAndInterval(t *testing.T) {
	d := MustParseDate("1995-03-15")
	if ExtractYear(d) != 1995 || ExtractMonth(d) != 3 || ExtractDay(d) != 15 {
		t.Errorf("extract parts of 1995-03-15 = %d/%d/%d",
			ExtractYear(d), ExtractMonth(d), ExtractDay(d))
	}
	if got := FormatDate(AddInterval(d, 1, "year")); got != "1996-03-15" {
		t.Errorf("+1 year = %s", got)
	}
	if got := FormatDate(AddInterval(d, 3, "month")); got != "1995-06-15" {
		t.Errorf("+3 months = %s", got)
	}
	if got := FormatDate(AddInterval(d, -15, "day")); got != "1995-02-28" {
		t.Errorf("-15 days = %s", got)
	}
	if MakeDate(1995, 3, 15) != d {
		t.Error("MakeDate mismatch")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		c1, c2 := Compare(va, vb), Compare(vb, va)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HashKey equality implies Compare equality for ints and floats.
func TestHashKeyConsistencyProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if va.HashKey() == vb.HashKey() {
			return Compare(va, vb) == 0
		}
		return Compare(va, vb) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: date round-trips through interval identity.
func TestDateIntervalInverseProperty(t *testing.T) {
	f := func(n uint16, months int8) bool {
		d := int64(n) // dates 1970..~2149
		fwd := AddInterval(d, int64(months), "day")
		back := AddInterval(fwd, -int64(months), "day")
		return back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatHashKeyNonIntegral(t *testing.T) {
	if NewFloat(1.5).HashKey() == NewFloat(2.5).HashKey() {
		t.Error("distinct non-integral floats must hash differently")
	}
	if NewFloat(math.NaN()).HashKey() == NewFloat(1).HashKey() {
		t.Error("NaN should not collide with 1")
	}
}

func TestAsCoercions(t *testing.T) {
	if NewFloat(3.9).AsInt() != 3 {
		t.Error("float truncates to int")
	}
	if NewInt(3).AsFloat() != 3.0 {
		t.Error("int widens to float")
	}
	if NewBool(true).AsInt() != 1 {
		t.Error("bool as int")
	}
	if NewStr("x").AsInt() != 0 || NewStr("x").AsFloat() != 0 {
		t.Error("non-numeric coerces to zero")
	}
	if NewInt(1).AsBool() {
		t.Error("AsBool is strict about kind")
	}
	if !NewBool(true).AsBool() {
		t.Error("AsBool true")
	}
}
