// Package packing implements MONOMI's space-efficient Paillier packing
// (§5.2) and grouped homomorphic addition (§5.3), following Ge–Zdonik.
//
// A Layout places k aggregatable columns of a row side by side in one
// plaintext slot (grouped addition: one modular multiplication per row sums
// all k columns simultaneously) and stacks r rows of slots into a single
// 1,024-bit Paillier plaintext (multi-row packing: ~90% less ciphertext
// space per value). Each column field is padded with enough zero bits that
// summing every row in the table cannot carry into the neighboring field —
// the paper uses log2(max rows) ≈ 27 bits of padding.
//
// A Store is the paper's "ciphertext file" (§7): packed ciphertexts are
// kept outside the row store and addressed by row_id, with the server-side
// UDF computing the pack index from the row_id.
package packing

import (
	"fmt"
	"math/big"

	"repro/internal/crypto/paillier"
)

// Col describes one packed column: its name and value width in bits.
type Col struct {
	Name string
	Bits int
}

// Layout is the bit-level plan for packing rows into Paillier plaintexts.
type Layout struct {
	Cols          []Col
	PadBits       int // zero padding per field to absorb carries
	RowsPerCipher int // how many rows share one ciphertext
}

// MaxRowsPerCipher caps multi-row packing so a partial-pack row mask fits
// in a uint64 on the wire.
const MaxRowsPerCipher = 64

// NewLayout computes a layout for the given columns: fields of
// (bits+padBits) each, rows packed to fill plainBits (e.g. the Paillier
// key's usable plaintext width), capped at MaxRowsPerCipher. multiRow=false
// forces one row per ciphertext (the paper's per-row Paillier baseline).
func NewLayout(cols []Col, padBits, plainBits int, multiRow bool) (Layout, error) {
	if len(cols) == 0 {
		return Layout{}, fmt.Errorf("packing: no columns")
	}
	l := Layout{Cols: cols, PadBits: padBits}
	rb := l.RowBits()
	if rb > plainBits {
		return Layout{}, fmt.Errorf("packing: row needs %d bits, plaintext has %d", rb, plainBits)
	}
	if !multiRow {
		l.RowsPerCipher = 1
		return l, nil
	}
	l.RowsPerCipher = plainBits / rb
	if l.RowsPerCipher > MaxRowsPerCipher {
		l.RowsPerCipher = MaxRowsPerCipher
	}
	return l, nil
}

// FieldBits is the width of one column field including padding.
func (l *Layout) FieldBits(j int) int { return l.Cols[j].Bits + l.PadBits }

// RowBits is the width of one row's slot.
func (l *Layout) RowBits() int {
	n := 0
	for j := range l.Cols {
		n += l.FieldBits(j)
	}
	return n
}

// fieldOffset returns the bit offset (from the LSB) of (row i, col j).
func (l *Layout) fieldOffset(i, j int) int {
	off := i * l.RowBits()
	for t := 0; t < j; t++ {
		off += l.FieldBits(t)
	}
	return off
}

// Pack packs up to RowsPerCipher rows into one plaintext. Each row supplies
// one non-negative value per column; missing rows are zero.
func (l *Layout) Pack(rows [][]int64) (*big.Int, error) {
	if len(rows) > l.RowsPerCipher {
		return nil, fmt.Errorf("packing: %d rows exceed layout capacity %d", len(rows), l.RowsPerCipher)
	}
	m := new(big.Int)
	tmp := new(big.Int)
	for i, row := range rows {
		if len(row) != len(l.Cols) {
			return nil, fmt.Errorf("packing: row has %d values, layout has %d columns", len(row), len(l.Cols))
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("packing: negative value %d in column %s", v, l.Cols[j].Name)
			}
			if bits := big.NewInt(v).BitLen(); bits > l.Cols[j].Bits {
				return nil, fmt.Errorf("packing: value %d needs %d bits, column %s has %d",
					v, bits, l.Cols[j].Name, l.Cols[j].Bits)
			}
			tmp.SetInt64(v)
			tmp.Lsh(tmp, uint(l.fieldOffset(i, j)))
			m.Add(m, tmp)
		}
	}
	return m, nil
}

// Unpack splits a (decrypted, possibly summed) plaintext back into
// per-row per-column field values.
func (l *Layout) Unpack(m *big.Int) [][]int64 {
	out := make([][]int64, l.RowsPerCipher)
	mask := new(big.Int)
	tmp := new(big.Int)
	for i := 0; i < l.RowsPerCipher; i++ {
		out[i] = make([]int64, len(l.Cols))
		for j := range l.Cols {
			fb := uint(l.FieldBits(j))
			mask.Lsh(big.NewInt(1), fb)
			mask.Sub(mask, big.NewInt(1))
			tmp.Rsh(m, uint(l.fieldOffset(i, j)))
			tmp.And(tmp, mask)
			out[i][j] = tmp.Int64()
		}
	}
	return out
}

// ColumnSums collapses an Unpack result into one sum per column — the
// client-side last step of grouped homomorphic addition.
func (l *Layout) ColumnSums(m *big.Int) []int64 {
	rows := l.Unpack(m)
	sums := make([]int64, len(l.Cols))
	for _, row := range rows {
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// Store is one column-group's ciphertext file: packed Paillier ciphertexts
// addressed by row_id. The Store lives on the untrusted server (it is the
// paper's §7 "ciphertext file"), so it carries only the public half of
// the keypair — enough for the homomorphic fold and for size accounting,
// never enough to decrypt. The trustflow analyzer (internal/lint) keys on
// this: a Store that embedded the full *paillier.Key would poison every
// server-side struct that holds one.
type Store struct {
	Name    string
	Key     *paillier.PublicKey
	Layout  Layout
	Ciphers []*big.Int
	NumRows int
}

// BuildStore packs and encrypts all rows of a column group. rows[i] holds
// the plaintext values for row_id i, one per layout column. Encryption
// happens on the trusted side (the caller holds the full key); the
// returned Store retains only the public half.
func BuildStore(name string, key *paillier.Key, layout Layout, rows [][]int64) (*Store, error) {
	s := &Store{Name: name, Key: key.Public(), Layout: layout, NumRows: len(rows)}
	for start := 0; start < len(rows); start += layout.RowsPerCipher {
		end := start + layout.RowsPerCipher
		if end > len(rows) {
			end = len(rows)
		}
		m, err := layout.Pack(rows[start:end])
		if err != nil {
			return nil, err
		}
		c, err := key.Encrypt(m)
		if err != nil {
			return nil, err
		}
		s.Ciphers = append(s.Ciphers, c)
	}
	return s, nil
}

// PackIndex returns which ciphertext holds a row and the row's offset
// within the pack.
func (s *Store) PackIndex(rowID int) (pack, offset int) {
	return rowID / s.Layout.RowsPerCipher, rowID % s.Layout.RowsPerCipher
}

// RowsInPack returns how many real rows pack p holds (the final pack may be
// short).
func (s *Store) RowsInPack(p int) int {
	start := p * s.Layout.RowsPerCipher
	n := s.NumRows - start
	if n > s.Layout.RowsPerCipher {
		n = s.Layout.RowsPerCipher
	}
	if n < 0 {
		n = 0
	}
	return n
}

// CipherBytes is the serialized size of one ciphertext.
func (s *Store) CipherBytes() int { return s.Key.CiphertextSize() }

// Bytes is the total size of the ciphertext file, for space accounting.
func (s *Store) Bytes() int64 { return int64(len(s.Ciphers)) * int64(s.CipherBytes()) }
