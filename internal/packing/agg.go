package packing

import (
	"encoding/binary"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"repro/internal/crypto/paillier"
)

// Grouped homomorphic aggregation protocol.
//
// The server-side UDF receives the row_ids of a group's matching rows and
// produces a compact wire result:
//
//   - every pack whose rows ALL matched is folded into a single running
//     product (one modular multiplication per pack — §5.3's "one modular
//     multiplication per row" collapses to per-pack with multi-row packing);
//   - packs that matched only partially are shipped whole, with a bitmask
//     of which of their rows matched; the client decrypts those few packs
//     and adds only the masked slots.
//
// With RowsPerCipher = 1 (per-row Paillier, the CryptDB-era baseline) every
// pack is trivially fully matched and the protocol degenerates to the
// classic PAILLIER_SUM.

// wireVersion tags the aggregation wire format.
const wireVersion = 1

// SumResult is the server's aggregation output before encoding.
type SumResult struct {
	Product  *big.Int // product of fully-matched pack ciphertexts; nil if none
	Partials []Partial
	// SawRows distinguishes "the group had rows but none matched the
	// conditional" (sum = 0) from "the aggregate ran over zero rows"
	// (sum = NULL). The UDF sets it when it observed any input row.
	SawRows  bool
	MulOps   int   // modular multiplications performed (server CPU model)
	ReadSize int64 // ciphertext bytes read from the pack store
}

// Partial is one partially-matched pack.
type Partial struct {
	Mask   uint64 // bit i set = row at offset i of the pack matched
	Cipher *big.Int
}

// HomSum aggregates the given row IDs on the server sequentially. rowIDs
// need not be sorted; duplicates are rejected.
func HomSum(s *Store, rowIDs []int) (*SumResult, error) {
	return HomSumParallel(s, rowIDs, 1)
}

// minPacksPerShard is the smallest ciphertext batch worth a goroutine: a
// modular multiplication of 2,048-bit ciphertexts is expensive, but not so
// expensive that two of them justify a spawn.
const minPacksPerShard = 16

// HomSumParallel is HomSum with the modular multiplications of
// fully-matched packs batched into per-shard ciphertext products computed
// by parallelism workers, whose partial products then combine. The result
// is identical to the sequential fold (ciphertext multiplication mod N² is
// commutative and associative); MulOps counts every multiplication
// performed, which the sharding does not change.
func HomSumParallel(s *Store, rowIDs []int, parallelism int) (*SumResult, error) {
	type packAcc struct {
		mask  uint64
		count int
	}
	packs := make(map[int]*packAcc)
	for _, id := range rowIDs {
		if id < 0 || id >= s.NumRows {
			return nil, fmt.Errorf("packing: row id %d out of range [0,%d)", id, s.NumRows)
		}
		p, off := s.PackIndex(id)
		acc := packs[p]
		if acc == nil {
			acc = &packAcc{}
			packs[p] = acc
		}
		bit := uint64(1) << uint(off)
		if acc.mask&bit != 0 {
			return nil, fmt.Errorf("packing: duplicate row id %d", id)
		}
		acc.mask |= bit
		acc.count++
	}

	// Split packs into fully matched (foldable server-side) and partial
	// (shipped whole with a row mask). Visiting packs in index order keeps
	// the output — and the wire encoding — deterministic regardless of map
	// iteration order.
	ids := make([]int, 0, len(packs))
	for p := range packs {
		ids = append(ids, p)
	}
	sort.Ints(ids)
	res := &SumResult{}
	var full []*big.Int
	for _, p := range ids {
		acc := packs[p]
		res.ReadSize += int64(s.CipherBytes())
		if acc.count == s.RowsInPack(p) {
			full = append(full, s.Ciphers[p])
			continue
		}
		res.Partials = append(res.Partials, Partial{Mask: acc.mask, Cipher: s.Ciphers[p]})
	}
	if len(full) == 0 {
		return res, nil
	}
	res.MulOps = len(full) - 1

	shards := parallelism
	if max := len(full) / minPacksPerShard; shards > max {
		shards = max
	}
	if shards <= 1 {
		res.Product = s.Key.ProductCipher(full)
		return res, nil
	}
	partials := make([]*big.Int, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	lo := 0
	for i := 0; i < shards; i++ {
		hi := lo + (len(full)-lo)/(shards-i)
		go func(i, lo, hi int) {
			defer wg.Done()
			partials[i] = s.Key.ProductCipher(full[lo:hi])
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
	res.Product = s.Key.ProductCipher(partials)
	return res, nil
}

// Encode serializes the result for transfer to the client. cipherBytes is
// the fixed ciphertext width.
func (r *SumResult) Encode(cipherBytes int) []byte {
	size := 3 + 4 + len(r.Partials)*(8+cipherBytes)
	if r.Product != nil {
		size += cipherBytes
	}
	out := make([]byte, 0, size)
	out = append(out, wireVersion)
	if r.SawRows {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	if r.Product != nil {
		out = append(out, 1)
		buf := make([]byte, cipherBytes)
		r.Product.FillBytes(buf)
		out = append(out, buf...)
	} else {
		out = append(out, 0)
	}
	var n4 [4]byte
	binary.BigEndian.PutUint32(n4[:], uint32(len(r.Partials)))
	out = append(out, n4[:]...)
	for _, p := range r.Partials {
		var m8 [8]byte
		binary.BigEndian.PutUint64(m8[:], p.Mask)
		out = append(out, m8[:]...)
		buf := make([]byte, cipherBytes)
		p.Cipher.FillBytes(buf)
		out = append(out, buf...)
	}
	return out
}

// DecodeSumResult parses the wire format.
func DecodeSumResult(wire []byte, cipherBytes int) (*SumResult, error) {
	if len(wire) < 6 {
		return nil, fmt.Errorf("packing: truncated aggregation result")
	}
	if wire[0] != wireVersion {
		return nil, fmt.Errorf("packing: unknown wire version %d", wire[0])
	}
	res := &SumResult{}
	pos := 1
	res.SawRows = wire[pos] == 1
	pos++
	if len(wire) < pos+1 {
		return nil, fmt.Errorf("packing: truncated header")
	}
	hasProduct := wire[pos] == 1
	pos++
	if hasProduct {
		if len(wire) < pos+cipherBytes {
			return nil, fmt.Errorf("packing: truncated product ciphertext")
		}
		res.Product = new(big.Int).SetBytes(wire[pos : pos+cipherBytes])
		pos += cipherBytes
	}
	if len(wire) < pos+4 {
		return nil, fmt.Errorf("packing: truncated partial count")
	}
	n := int(binary.BigEndian.Uint32(wire[pos : pos+4]))
	pos += 4
	for i := 0; i < n; i++ {
		if len(wire) < pos+8+cipherBytes {
			return nil, fmt.Errorf("packing: truncated partial %d", i)
		}
		mask := binary.BigEndian.Uint64(wire[pos : pos+8])
		pos += 8
		c := new(big.Int).SetBytes(wire[pos : pos+cipherBytes])
		pos += cipherBytes
		res.Partials = append(res.Partials, Partial{Mask: mask, Cipher: c})
	}
	return res, nil
}

// plainCacheShards is the lock-striping factor of PlainCache: enough that
// a client fanning batch decryption across a few workers rarely contends,
// small enough that an idle cache stays negligible.
const plainCacheShards = 8

// PlainCache memoizes Paillier decryptions of partial packs. The same pack
// ciphertext reaches the client once per group that touches it (e.g. Q1's
// four groups interleave within packs); one decryption recovers every slot,
// so caching by ciphertext collapses the repeats. Safe for concurrent use:
// entries stripe across mutex-guarded shards, so the streamed wire's
// parallel batch decoders share one cache without serializing on it.
type PlainCache struct {
	shards [plainCacheShards]plainShard
}

type plainShard struct {
	mu sync.Mutex
	m  map[string]*big.Int
}

// NewPlainCache creates an empty cache.
func NewPlainCache() *PlainCache { return &PlainCache{} }

// shard picks the stripe for a key (FNV-1a over the ciphertext bytes).
func (c *PlainCache) shard(key string) *plainShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%plainCacheShards]
}

// Get returns the memoized plaintext for key, or nil.
func (c *PlainCache) Get(key string) *big.Int {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Put memoizes one decryption.
func (c *PlainCache) Put(key string, m *big.Int) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*big.Int)
	}
	s.m[key] = m
}

// Len reports the number of memoized packs (for tests).
func (c *PlainCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// ClientSums finishes the aggregation on the trusted client: decrypt the
// product and each partial pack, then add up the relevant slots. Returns
// one sum per layout column and the number of Paillier decryptions
// performed (the dominant client CPU cost the planner models, §6.4).
// cache may be nil.
func ClientSums(key *paillier.Key, layout Layout, res *SumResult, cache *PlainCache) ([]int64, int, error) {
	sums := make([]int64, len(layout.Cols))
	decrypts := 0
	if res.Product != nil {
		m, err := key.Decrypt(res.Product)
		if err != nil {
			return nil, 0, err
		}
		decrypts++
		for j, v := range layout.ColumnSums(m) {
			sums[j] += v
		}
	}
	for _, p := range res.Partials {
		var m *big.Int
		ck := ""
		if cache != nil {
			ck = string(key.CiphertextBytes(p.Cipher))
			m = cache.Get(ck)
		}
		if m == nil {
			var err error
			m, err = key.Decrypt(p.Cipher)
			if err != nil {
				return nil, 0, err
			}
			decrypts++
			if cache != nil {
				cache.Put(ck, m)
			}
		}
		rows := layout.Unpack(m)
		for i, row := range rows {
			if p.Mask&(1<<uint(i)) == 0 {
				continue
			}
			for j, v := range row {
				sums[j] += v
			}
		}
	}
	return sums, decrypts, nil
}
