package packing

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/crypto/paillier"
)

const testKeyBits = 256

func testKey(t testing.TB) *paillier.Key {
	t.Helper()
	k, err := paillier.GenerateKey(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func twoColLayout(t *testing.T, plainBits int, multiRow bool) Layout {
	t.Helper()
	l, err := NewLayout([]Col{{Name: "a", Bits: 20}, {Name: "b", Bits: 16}}, 8, plainBits, multiRow)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutGeometry(t *testing.T) {
	l := twoColLayout(t, 254, true)
	if l.RowBits() != 20+8+16+8 {
		t.Errorf("row bits = %d", l.RowBits())
	}
	if l.RowsPerCipher != 254/52 {
		t.Errorf("rows per cipher = %d", l.RowsPerCipher)
	}
	single := twoColLayout(t, 254, false)
	if single.RowsPerCipher != 1 {
		t.Errorf("single-row layout rows = %d", single.RowsPerCipher)
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := NewLayout(nil, 8, 254, true); err == nil {
		t.Error("empty layout should fail")
	}
	if _, err := NewLayout([]Col{{Name: "x", Bits: 300}}, 8, 254, true); err == nil {
		t.Error("oversized row should fail")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	l := twoColLayout(t, 254, true)
	rows := [][]int64{{100, 7}, {1 << 19, 1 << 15}, {0, 0}, {12345, 678}}
	m, err := l.Pack(rows)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Unpack(m)
	for i, row := range rows {
		for j, v := range row {
			if got[i][j] != v {
				t.Errorf("slot (%d,%d) = %d, want %d", i, j, got[i][j], v)
			}
		}
	}
	// rows beyond input are zero
	for i := len(rows); i < l.RowsPerCipher; i++ {
		if got[i][0] != 0 || got[i][1] != 0 {
			t.Errorf("slot (%d,*) should be zero", i)
		}
	}
}

func TestPackValidation(t *testing.T) {
	l := twoColLayout(t, 254, true)
	if _, err := l.Pack([][]int64{{-1, 0}}); err == nil {
		t.Error("negative value should fail")
	}
	if _, err := l.Pack([][]int64{{1 << 21, 0}}); err == nil {
		t.Error("overflowing value should fail")
	}
	if _, err := l.Pack([][]int64{{1}}); err == nil {
		t.Error("arity mismatch should fail")
	}
	tooMany := make([][]int64, l.RowsPerCipher+1)
	for i := range tooMany {
		tooMany[i] = []int64{0, 0}
	}
	if _, err := l.Pack(tooMany); err == nil {
		t.Error("too many rows should fail")
	}
}

// Property: the arithmetic identity behind grouped homomorphic addition —
// Pack(a) + Pack(b) unpacks to the per-slot sums, provided padding absorbs
// the carries.
func TestGroupedAdditionIdentityProperty(t *testing.T) {
	l := twoColLayout(t, 254, true)
	f := func(a0, a1, b0, b1 uint16) bool {
		ma, err1 := l.Pack([][]int64{{int64(a0), int64(a1 % 1 << 15)}})
		mb, err2 := l.Pack([][]int64{{int64(b0), int64(b1 % 1 << 15)}})
		if err1 != nil || err2 != nil {
			return false
		}
		sum := new(big.Int).Add(ma, mb)
		got := l.Unpack(sum)
		return got[0][0] == int64(a0)+int64(b0) && got[0][1] == int64(a1%1<<15)+int64(b1%1<<15)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStoreGeometry(t *testing.T) {
	key := testKey(t)
	l := twoColLayout(t, key.PlaintextBits(), true)
	rows := make([][]int64, 11)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i * 2)}
	}
	s, err := BuildStore("g", key, l, rows)
	if err != nil {
		t.Fatal(err)
	}
	wantPacks := (len(rows) + l.RowsPerCipher - 1) / l.RowsPerCipher
	if len(s.Ciphers) != wantPacks {
		t.Errorf("packs = %d, want %d", len(s.Ciphers), wantPacks)
	}
	if s.Bytes() != int64(wantPacks*key.CiphertextSize()) {
		t.Errorf("bytes = %d", s.Bytes())
	}
	p, off := s.PackIndex(l.RowsPerCipher + 2)
	if p != 1 || off != 2 {
		t.Errorf("PackIndex = (%d,%d)", p, off)
	}
	if s.RowsInPack(wantPacks-1) != len(rows)-(wantPacks-1)*l.RowsPerCipher {
		t.Errorf("last pack rows = %d", s.RowsInPack(wantPacks-1))
	}
}

func TestHomSumFullAndPartialPacks(t *testing.T) {
	key := testKey(t)
	l := twoColLayout(t, key.PlaintextBits(), true)
	n := l.RowsPerCipher*2 + 3 // two full packs plus a short one
	rows := make([][]int64, n)
	var wantA, wantB int64
	for i := range rows {
		rows[i] = []int64{int64(i + 1), int64(2 * (i + 1))}
	}
	s, err := BuildStore("g", key, l, rows)
	if err != nil {
		t.Fatal(err)
	}

	// Select all of pack 0, half of pack 1, all of the short pack 2.
	var ids []int
	for i := 0; i < l.RowsPerCipher; i++ {
		ids = append(ids, i)
	}
	for i := l.RowsPerCipher; i < l.RowsPerCipher+l.RowsPerCipher/2; i++ {
		ids = append(ids, i)
	}
	for i := 2 * l.RowsPerCipher; i < n; i++ {
		ids = append(ids, i)
	}
	for _, id := range ids {
		wantA += rows[id][0]
		wantB += rows[id][1]
	}

	res, err := HomSum(s, ids)
	if err != nil {
		t.Fatal(err)
	}
	if res.Product == nil {
		t.Fatal("expected a product of fully-matched packs")
	}
	if len(res.Partials) != 1 {
		t.Fatalf("partials = %d, want 1", len(res.Partials))
	}
	if res.MulOps != 1 { // two full packs -> one multiplication
		t.Errorf("mul ops = %d, want 1", res.MulOps)
	}

	// Round trip through the wire format.
	wire := res.Encode(s.CipherBytes())
	decoded, err := DecodeSumResult(wire, s.CipherBytes())
	if err != nil {
		t.Fatal(err)
	}
	sums, decrypts, err := ClientSums(key, l, decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != wantA || sums[1] != wantB {
		t.Errorf("sums = %v, want [%d %d]", sums, wantA, wantB)
	}
	if decrypts != 2 { // product + one partial
		t.Errorf("decrypts = %d, want 2", decrypts)
	}
}

func TestHomSumPerRowDegenerate(t *testing.T) {
	key := testKey(t)
	l := twoColLayout(t, key.PlaintextBits(), false) // RowsPerCipher = 1
	rows := [][]int64{{10, 1}, {20, 2}, {30, 3}}
	s, err := BuildStore("g", key, l, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := HomSum(s, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Partials) != 0 {
		t.Errorf("per-row packing should never be partial, got %d", len(res.Partials))
	}
	sums, _, err := ClientSums(key, l, res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 40 || sums[1] != 4 {
		t.Errorf("sums = %v", sums)
	}
}

func TestHomSumErrors(t *testing.T) {
	key := testKey(t)
	l := twoColLayout(t, key.PlaintextBits(), true)
	s, err := BuildStore("g", key, l, [][]int64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HomSum(s, []int{5}); err == nil {
		t.Error("out-of-range row id should fail")
	}
	if _, err := HomSum(s, []int{0, 0}); err == nil {
		t.Error("duplicate row id should fail")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeSumResult([]byte{1, 2}, 64); err == nil {
		t.Error("truncated input should fail")
	}
	if _, err := DecodeSumResult([]byte{9, 0, 0, 0, 0, 0}, 64); err == nil {
		t.Error("bad version should fail")
	}
	if _, err := DecodeSumResult([]byte{1, 1, 0, 0, 0, 0}, 64); err == nil {
		t.Error("truncated product should fail")
	}
}

func TestEmptyHomSum(t *testing.T) {
	key := testKey(t)
	l := twoColLayout(t, key.PlaintextBits(), true)
	s, _ := BuildStore("g", key, l, [][]int64{{1, 1}})
	res, err := HomSum(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	wire := res.Encode(s.CipherBytes())
	decoded, err := DecodeSumResult(wire, s.CipherBytes())
	if err != nil {
		t.Fatal(err)
	}
	sums, decrypts, err := ClientSums(key, l, decoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 0 || sums[1] != 0 || decrypts != 0 {
		t.Errorf("empty sum = %v, decrypts = %d", sums, decrypts)
	}
}
